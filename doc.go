// Package repro is a from-scratch Go reproduction of "Rehearsal: A
// Configuration Verification Tool for Puppet" (Shambaugh, Weiss, Guha —
// PLDI 2016): a sound, complete and scalable determinacy analysis for
// Puppet manifests, plus idempotence and invariant checking built on it.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the command-line tools under cmd/, runnable examples under
// examples/, and the benchmark harness regenerating every figure of the
// paper's evaluation in bench_test.go and cmd/experiments.
package repro
