package repro

// One benchmark per table/figure of the paper's evaluation (section 6).
// Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure series are also printed in paper-style tables by
// cmd/experiments; EXPERIMENTS.md records paper-vs-measured shapes.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

func loadOrFatal(b *testing.B, src string, opts core.Options) *core.System {
	b.Helper()
	sys, err := core.Load(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkFig11aPaths reports the paths-per-state metric of figure 11a:
// modeled paths before (unpruned) and after (pruned) elimination+pruning,
// per benchmark.
func BenchmarkFig11aPaths(b *testing.B) {
	for _, bench := range benchmarks.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var pruned, unpruned int
			for i := 0; i < b.N; i++ {
				sys := loadOrFatal(b, bench.Source, core.DefaultOptions())
				res, err := sys.CheckDeterminism()
				if err != nil {
					b.Fatal(err)
				}
				pruned, unpruned = res.Stats.Paths, res.Stats.TotalPaths
			}
			b.ReportMetric(float64(unpruned), "paths-unpruned")
			b.ReportMetric(float64(pruned), "paths-pruned")
		})
	}
}

// BenchmarkFig11bPruning measures the determinacy check with the full
// analysis (pruning+elimination on) versus with shrinking disabled, both
// with commutativity checking — figure 11b.
func BenchmarkFig11bPruning(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		prune bool
	}{{"PruneOff", false}, {"PruneOn", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for _, bench := range benchmarks.All() {
				bench := bench
				b.Run(bench.Name, func(b *testing.B) {
					opts := core.DefaultOptions()
					opts.Pruning = cfg.prune
					opts.Elimination = cfg.prune
					opts.Timeout = time.Minute
					for i := 0; i < b.N; i++ {
						sys := loadOrFatal(b, bench.Source, opts)
						if _, err := sys.CheckDeterminism(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkFig11cCommutativity measures the determinacy check with and
// without commutativity-based partial-order reduction (pruning off in
// both) — figure 11c. The Off configuration explodes factorially on the
// larger benchmarks, reproducing the paper's timeouts; it runs under a
// short deadline and reports timeouts-per-op instead of failing.
func BenchmarkFig11cCommutativity(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		commut bool
	}{{"CommutOff", false}, {"CommutOn", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for _, bench := range benchmarks.All() {
				bench := bench
				b.Run(bench.Name, func(b *testing.B) {
					opts := core.DefaultOptions()
					opts.Commutativity = cfg.commut
					opts.Pruning = false
					opts.Elimination = false
					opts.Timeout = 5 * time.Second
					timeouts := 0
					for i := 0; i < b.N; i++ {
						sys := loadOrFatal(b, bench.Source, opts)
						if _, err := sys.CheckDeterminism(); err == core.ErrTimeout {
							timeouts++
						} else if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(timeouts)/float64(b.N), "timeouts/op")
				})
			}
		})
	}
}

// BenchmarkFig12Idempotence measures the idempotence check on the
// verified suite (seven deterministic benchmarks plus six fixes) —
// figure 12.
func BenchmarkFig12Idempotence(b *testing.B) {
	for _, bench := range benchmarks.Verified() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			sys := loadOrFatal(b, bench.Source, core.DefaultOptions())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sys.CheckIdempotence()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Idempotent {
					b.Fatalf("%s not idempotent", bench.Name)
				}
			}
		})
	}
}

// fig13Manifest builds the paper's synthetic worst case: n conflicting
// packages all creating /opt/a, forced deterministic by a final file
// resource — the solver must prove unsatisfiability over n! orders.
func fig13Manifest(n int) (string, pkgdb.Provider) {
	catalog := pkgdb.DefaultCatalog()
	manifest := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("conflict-a-%d", i)
		catalog.Add("ubuntu", &pkgdb.Package{
			Name:    name,
			Version: "1.0",
			Files:   []string{"/opt/a", fmt.Sprintf("/opt/own-%d", i)},
		})
		manifest += fmt.Sprintf("package{'%s': before => File['/opt/a'] }\n", name)
	}
	manifest += "file{'/opt/a': content => 'x' }\n"
	return manifest, catalog
}

// BenchmarkFig13Scaling measures the deliberate worst case of figure 13
// for n = 2..6 interfering resources; the time grows super-linearly with
// the factorial number of linearizations.
func BenchmarkFig13Scaling(b *testing.B) {
	for n := 2; n <= 6; n++ {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			manifest, provider := fig13Manifest(n)
			opts := core.DefaultOptions()
			opts.Provider = provider
			opts.MaxSequences = 1000000
			for i := 0; i < b.N; i++ {
				sys := loadOrFatal(b, manifest, opts)
				res, err := sys.CheckDeterminism()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Deterministic {
					b.Fatal("fig 13 manifest must be deterministic")
				}
			}
		})
	}
}

// BenchmarkBugsFound measures the full section-6 bug-finding pass: check
// all thirteen benchmarks and verify the six fixes.
func BenchmarkBugsFound(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Timeout = time.Minute
	for i := 0; i < b.N; i++ {
		found := 0
		for _, bench := range benchmarks.All() {
			sys := loadOrFatal(b, bench.Source, opts)
			res, err := sys.CheckDeterminism()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Deterministic {
				found++
			}
		}
		if found != 6 {
			b.Fatalf("found %d bugs, want 6", found)
		}
	}
}

// sleepSetWorkload builds the shape that separates the two POR designs:
// two file resources managing the same path (a genuine conflict) plus k
// users. The users commute with each other but each also touches the
// shared /etc directory the files read, so no ready resource ever
// qualifies as a figure-9a pivot: pivot-only exploration is factorial in
// k+2, while sleep sets bound it by the number of Mazurkiewicz traces
// (quadratic in k here: the users' relative order never matters).
func sleepSetWorkload(k int) string {
	manifest := `
file {'motd-a': path => '/etc/motd', content => 'a' }
file {'motd-b': path => '/etc/motd', content => 'b' }
`
	for i := 0; i < k; i++ {
		manifest += fmt.Sprintf("user {'u%d': ensure => present }\n", i)
	}
	return manifest
}

// BenchmarkAblationSleepSets measures the design choice DESIGN.md calls
// out: the pivot rule alone versus pivot + sleep sets.
func BenchmarkAblationSleepSets(b *testing.B) {
	manifest := sleepSetWorkload(6)
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"PivotOnly", true}, {"PivotPlusSleep", false}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Elimination = false // keep the conflict in the graph
			opts.Pruning = false
			opts.DisableSleepSets = cfg.disable
			opts.Timeout = 15 * time.Second
			timeouts := 0
			for i := 0; i < b.N; i++ {
				sys := loadOrFatal(b, manifest, opts)
				res, err := sys.CheckDeterminism()
				if err == core.ErrTimeout {
					timeouts++
				} else if err != nil {
					b.Fatal(err)
				} else if res.Deterministic {
					b.Fatal("conflicting motd contents must be non-deterministic")
				}
			}
			b.ReportMetric(float64(timeouts)/float64(b.N), "timeouts/op")
		})
	}
}

// BenchmarkAblationSemanticCommute measures the semantic-commutativity
// extension on three packages with overlapping dependency closures (git,
// amavisd-new and golang-go all pull in perl): syntactically every pair
// conflicts, so all 3! traces must be enumerated and solved jointly;
// semantically the pairs commute and the whole check collapses to
// elimination (measured ~11x faster).
func BenchmarkAblationSemanticCommute(b *testing.B) {
	const manifest = `
package {'git': ensure => present }
package {'amavisd-new': ensure => present }
package {'golang-go': ensure => present }
`
	for _, cfg := range []struct {
		name     string
		semantic bool
	}{{"Syntactic", false}, {"Semantic", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.SemanticCommute = cfg.semantic
			opts.Timeout = 2 * time.Minute
			for i := 0; i < b.N; i++ {
				sys := loadOrFatal(b, manifest, opts)
				res, err := sys.CheckDeterminism()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Deterministic {
					b.Fatal("overlapping closures must be deterministic")
				}
			}
		})
	}
}

// BenchmarkParallelSpeedup measures the parallel determinacy engine on
// the semantic-commute-heavy workload (8 packages with overlapping
// dependency closures, 28 pairwise solver queries) at 1/2/4/8 workers.
// The Native series runs real in-process queries — its speedup is bounded
// by the host's core count (flat on a single-core host). The ModeledZ3
// series adds a modeled external-solver round trip per query (the
// paper's Z3 ran behind IPC, like the dynamic baseline's modeled
// container latency), demonstrating query overlap on any host. Each
// iteration uses a cold private cache so runs are comparable; see
// BENCH_parallel.json for a recorded trajectory point
// (cmd/experiments -parallel-bench -parallel-out BENCH_parallel.json).
func BenchmarkParallelSpeedup(b *testing.B) {
	manifest, provider := experiments.ParallelWorkload(experiments.ParallelWorkloadSize)
	for _, series := range []struct {
		name    string
		latency time.Duration
	}{{"Native", 0}, {"ModeledZ3", experiments.ModeledZ3Latency}} {
		series := series
		b.Run(series.name, func(b *testing.B) {
			for _, workers := range []int{1, 2, 4, 8} {
				workers := workers
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					opts := core.DefaultOptions()
					opts.Provider = provider
					opts.SemanticCommute = true
					opts.Parallelism = workers
					opts.PerQueryLatency = series.latency
					opts.Timeout = 5 * time.Minute
					for i := 0; i < b.N; i++ {
						opts.SharedQueryCache = qcache.New() // cold cache per run
						sys := loadOrFatal(b, manifest, opts)
						res, err := sys.CheckDeterminism()
						if err != nil {
							b.Fatal(err)
						}
						if !res.Deterministic {
							b.Fatal("parallel workload must be deterministic")
						}
					}
				})
			}
		})
	}
}

// BenchmarkIncrementalSpeedup measures the incremental SMT backend on the
// semantic-commute-heavy workload at 4 workers, fresh solvers vs the
// pooled incremental path with a cold and a warm pool. The Native series
// runs real in-process queries (pooling trades a wider shared vocabulary
// for amortized compilation — roughly break-even in-process); the
// ModeledZ3 series adds the modeled external-solver costs the backend
// targets: solver construction per query on the fresh path vs per pool
// miss on the pooled path. Each iteration uses a cold private cache, and
// the pool registry is reset (or pre-warmed) per mode so runs are
// comparable; see BENCH_incremental.json for a recorded trajectory point
// (cmd/experiments -incremental-bench -incremental-out
// BENCH_incremental.json).
func BenchmarkIncrementalSpeedup(b *testing.B) {
	manifest, provider := experiments.ParallelWorkload(experiments.ParallelWorkloadSize)
	for _, series := range []struct {
		name           string
		query, startup time.Duration
	}{
		{"Native", 0, 0},
		{"ModeledZ3", experiments.ModeledIncrementalLatency, experiments.ModeledSolverStartup},
	} {
		series := series
		b.Run(series.name, func(b *testing.B) {
			for _, mode := range []struct {
				name  string
				fresh bool
				warm  bool
			}{{"fresh", true, false}, {"pooled-cold", false, false}, {"pooled-warm", false, true}} {
				mode := mode
				b.Run(mode.name, func(b *testing.B) {
					opts := core.DefaultOptions()
					opts.Provider = provider
					opts.SemanticCommute = true
					opts.Parallelism = experiments.IncrementalWorkers
					opts.FreshSolvers = mode.fresh
					opts.PerQueryLatency = series.query
					opts.PerSolverLatency = series.startup
					opts.Timeout = 5 * time.Minute
					run := func() *core.DeterminismResult {
						opts.SharedQueryCache = qcache.New() // cold cache per run
						sys := loadOrFatal(b, manifest, opts)
						res, err := sys.CheckDeterminism()
						if err != nil {
							b.Fatal(err)
						}
						if !res.Deterministic {
							b.Fatal("incremental workload must be deterministic")
						}
						return res
					}
					core.ResetSolverPools()
					if mode.warm {
						run() // prime the pool outside the timer
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if !mode.warm && !mode.fresh {
							b.StopTimer()
							core.ResetSolverPools() // cold pool per iteration
							b.StartTimer()
						}
						res := run()
						if !mode.fresh && res.Stats.SolverReuses == 0 {
							b.Fatal("pooled run reported no solver reuse")
						}
					}
				})
			}
		})
	}
}

// BenchmarkInterningSpeedup measures the hash-consed IR on the semantic-
// commute-heavy workload at one worker: the Encode series compares plain
// trees on fresh solvers (four modeled subtree compilations per query)
// against interned models on cold and warm memoized sessions, and the Disk
// series compares a cold on-disk verdict store against a warm-started one
// (the warm run must answer every query from disk — the experiment errors
// otherwise). Per-mode wall times are reported as metrics; see
// BENCH_interning.json for a recorded trajectory point (cmd/experiments
// -interning-bench -interning-out BENCH_interning.json).
func BenchmarkInterningSpeedup(b *testing.B) {
	b.Run("Encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := experiments.EncodeMemoSpeedup(5*time.Minute, experiments.ModeledEncodeLatency)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				b.ReportMetric(r.Seconds, r.Mode+"-s")
			}
		}
	})
	b.Run("Disk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := experiments.DiskCacheSpeedup(5*time.Minute, experiments.ModeledZ3Latency)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				b.ReportMetric(r.Seconds, r.Mode+"-s")
			}
		}
	})
}

// BenchmarkDiffSpeedup measures differential verification on the
// synthetic edit workload: a full determinacy check of the head version
// from a cold cache versus core.VerifyDiff against a base warmed into a
// shared cache, at a 1-of-8-packages edit. The Native series runs real
// in-process queries (the diff path still pays load and exploration, so
// the gap is modest); the ModeledZ3 series adds a modeled external-
// solver round trip per query — the work inheritance avoids. Soundness
// (matching verdicts, exact inheritance, zero solver queries for
// inherited pairs) is enforced inside experiments.DiffSpeedup; see
// BENCH_diff.json for a recorded trajectory point (cmd/experiments
// -diff-bench -diff-out BENCH_diff.json).
func BenchmarkDiffSpeedup(b *testing.B) {
	for _, series := range []struct {
		name    string
		latency time.Duration
	}{{"Native", 0}, {"ModeledZ3", experiments.ModeledDiffQueryLatency}} {
		series := series
		b.Run(series.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.DiffSpeedup(5*time.Minute, 8, []int{12}, []int{4}, series.latency)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					b.ReportMetric(r.FullSeconds, "full-s")
					b.ReportMetric(r.DiffSeconds, "diff-s")
					b.ReportMetric(float64(r.PairsReused), "pairs-reused")
				}
			}
		})
	}
}

// BenchmarkDynamicBaseline measures the dynamic enumeration baseline of
// section 4.5 on a small benchmark, for comparison with the static check
// (the paper reports hours of container time; the simulated baseline
// reports its modeled cost as a metric).
func BenchmarkDynamicBaseline(b *testing.B) {
	bench, err := benchmarks.Get("monit")
	if err != nil {
		b.Fatal(err)
	}
	sys := loadOrFatal(b, bench.Source, core.DefaultOptions())
	g := sys.ExprGraph()
	var modeled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := dynamic.Run(g, dynamic.Options{PerResourceLatency: 3 * time.Second})
		if !res.Deterministic {
			b.Fatal("monit should be deterministic")
		}
		modeled = res.ModeledCost
	}
	b.ReportMetric(modeled.Seconds(), "modeled-container-s")
}
