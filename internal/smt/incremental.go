package smt

// Incremental solving support. A Solver can answer many structurally
// related queries without rebuilding the term DAG or its Tseitin
// compilation:
//
//   - Push opens an assertion scope guarded by a fresh activation literal;
//     Assert inside the scope adds clauses of the form (¬act ∨ C) and Check
//     passes act as an extra assumption, so scoped constraints are live
//     only while the scope is open.
//   - Pop retires the scope: the activation literal is permanently negated
//     (sat.ReleaseVar), which satisfies — and lets the next preprocessing
//     pass physically delete — every clause the scope asserted. The term
//     DAG and the compile memo are NOT rolled back: terms interned in any
//     scope stay compiled forever, because Tseitin definitional clauses
//     only define fresh variables and are sound at any scope depth.
//   - Learnt clauses survive Pop. Conflict analysis folds assumption
//     negations into learnt clauses, so each one is implied by the problem
//     clauses alone and remains sound for every later query.
//
// This is what makes per-worker solver pooling (internal/core) pay off:
// queries over the same vocabulary share hash-consing, compilation and
// learnt clauses, paying only for the activation-literal bookkeeping.

import (
	"errors"

	"repro/internal/sat"
)

// ErrNoModel is returned by BoolValue and EnumValue when no model is
// available: Check has not been called, its last call did not return
// sat.Sat, or the model was invalidated by a later Assert, Push or Pop.
var ErrNoModel = errors.New("smt: no model available (last Check did not return sat)")

// scope is one open Push frame.
type scope struct {
	act      sat.Lit // activation literal guarding the scope's assertions
	asserted int     // length of Solver.asserted when the scope opened
}

// Push opens a new assertion scope. Constraints asserted until the matching
// Pop are retired together; scopes nest and must pop LIFO.
func (s *Solver) Push() {
	act := sat.PosLit(s.sat.NewVar())
	s.scopes = append(s.scopes, scope{act: act, asserted: len(s.asserted)})
}

// Pop closes the innermost scope, retiring its assertions. Terms created in
// the scope remain valid (and compiled); only the constraints go away. The
// underlying activation variable is recycled by the solver's next
// preprocessing pass.
func (s *Solver) Pop() {
	n := len(s.scopes)
	if n == 0 {
		panic("smt: Pop without matching Push")
	}
	sc := s.scopes[n-1]
	s.scopes = s.scopes[:n-1]
	s.asserted = s.asserted[:sc.asserted]
	s.lastStatus = sat.Unknown
	s.sat.ReleaseVar(sc.act.Neg())
}

// ScopeDepth returns the number of open Push scopes.
func (s *Solver) ScopeDepth() int { return len(s.scopes) }

// Simplify runs the underlying solver's root-level preprocessing pass
// immediately (Check also runs it lazily when clauses were added). Returns
// false if the permanent constraints are unsatisfiable.
func (s *Solver) Simplify() bool {
	s.lastStatus = sat.Unknown
	return s.sat.Simplify()
}

// LearntClauses returns the number of learnt clauses currently retained by
// the underlying SAT solver.
func (s *Solver) LearntClauses() int { return s.sat.LearntClauses() }

// ClearLearnts drops the retained learnt clauses, e.g. before reusing a
// pooled solver for a very different query mix.
func (s *Solver) ClearLearnts() { s.sat.ClearLearnts() }

// SimplifyCounters returns the underlying solver's cumulative preprocessing
// counters.
func (s *Solver) SimplifyCounters() sat.SimplifyStats { return s.sat.SimplifyCounters() }
