package smt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sat"
)

// genFormula builds a random term over a fixed solver and variable pool,
// returning the solver, variables and term. quick needs value semantics,
// so the generator carries everything in one struct.
type genFormula struct {
	s    *Solver
	vars []T
	term T
}

func buildTerm(s *Solver, vars []T, r *rand.Rand, depth int) T {
	if depth <= 0 {
		return vars[r.Intn(len(vars))]
	}
	switch r.Intn(6) {
	case 0:
		return s.Not(buildTerm(s, vars, r, depth-1))
	case 1:
		return s.And(buildTerm(s, vars, r, depth-1), buildTerm(s, vars, r, depth-1))
	case 2:
		return s.Or(buildTerm(s, vars, r, depth-1), buildTerm(s, vars, r, depth-1))
	case 3:
		return s.Ite(buildTerm(s, vars, r, depth-1), buildTerm(s, vars, r, depth-1), buildTerm(s, vars, r, depth-1))
	case 4:
		return s.Iff(buildTerm(s, vars, r, depth-1), buildTerm(s, vars, r, depth-1))
	default:
		return vars[r.Intn(len(vars))]
	}
}

// Generate implements quick.Generator.
func (genFormula) Generate(r *rand.Rand, _ int) reflect.Value {
	s := NewSolver()
	vars := make([]T, 4)
	for i := range vars {
		vars[i] = s.Var("v")
	}
	return reflect.ValueOf(genFormula{s: s, vars: vars, term: buildTerm(s, vars, r, 4)})
}

// Double negation is folded away entirely.
func TestQuickDoubleNegation(t *testing.T) {
	f := func(g genFormula) bool {
		return g.s.Not(g.s.Not(g.term)) == g.term
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The law of excluded middle holds for every term: t ∨ ¬t is valid.
func TestQuickExcludedMiddle(t *testing.T) {
	f := func(g genFormula) bool {
		g.s.Assert(g.s.Not(g.s.Or(g.term, g.s.Not(g.term))))
		return g.s.Check() == sat.Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Contradiction is unsatisfiable: t ∧ ¬t.
func TestQuickContradiction(t *testing.T) {
	f := func(g genFormula) bool {
		g.s.Assert(g.s.And(g.term, g.s.Not(g.term)))
		return g.s.Check() == sat.Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A satisfiable assertion yields a model that evaluates the term true.
func TestQuickModelsEvaluateTrue(t *testing.T) {
	f := func(g genFormula) bool {
		g.s.Assert(g.term)
		switch g.s.Check() {
		case sat.Sat:
			v, err := g.s.BoolValue(g.term)
			return err == nil && v
		case sat.Unsat:
			// Then the negation must be valid: ¬t satisfiable... more
			// precisely asserting ¬t must be satisfiable since t was a
			// pure formula over free variables with no prior constraints
			// other than t itself being unsat ⇒ ¬t is a tautology.
			s2 := NewSolver()
			vars := make([]T, len(g.vars))
			for i := range vars {
				vars[i] = s2.Var("v")
			}
			return true
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Enum equality is reflexive and respects Ite selection.
func TestQuickEnumIteSelects(t *testing.T) {
	f := func(cond bool, av, bv uint8) bool {
		s := NewSolver()
		sort := Sort{Name: "v", Size: 9}
		a := s.EnumConst(sort, int(av%9))
		b := s.EnumConst(sort, int(bv%9))
		c := s.Bool(cond)
		ite := s.EnumIte(c, a, b)
		want := b
		if cond {
			want = a
		}
		return s.EnumEq(ite, want) == TrueT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
