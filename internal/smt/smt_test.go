package smt

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// mustBool and mustEnum unwrap model accessors in contexts where a model is
// known to exist (Check just returned Sat).
func mustBool(t *testing.T, s *Solver, term T) bool {
	t.Helper()
	v, err := s.BoolValue(term)
	if err != nil {
		t.Fatalf("BoolValue: %v", err)
	}
	return v
}

func mustEnum(t *testing.T, s *Solver, e Enum) int {
	t.Helper()
	v, err := s.EnumValue(e)
	if err != nil {
		t.Fatalf("EnumValue: %v", err)
	}
	return v
}

func TestConstants(t *testing.T) {
	s := NewSolver()
	if s.Bool(true) != TrueT || s.Bool(false) != FalseT {
		t.Fatal("Bool constants")
	}
	s.Assert(TrueT)
	if s.Check() != sat.Sat {
		t.Fatal("true should be sat")
	}
	s.Assert(FalseT)
	if s.Check() != sat.Unsat {
		t.Fatal("false should be unsat")
	}
}

func TestFolding(t *testing.T) {
	s := NewSolver()
	a := s.Var("a")
	cases := []struct{ got, want T }{
		{s.Not(s.Not(a)), a},
		{s.And(a, TrueT), a},
		{s.And(a, FalseT), FalseT},
		{s.Or(a, FalseT), a},
		{s.Or(a, TrueT), TrueT},
		{s.And(a, a), a},
		{s.Or(a, a), a},
		{s.And(a, s.Not(a)), FalseT},
		{s.Or(a, s.Not(a)), TrueT},
		{s.And(), TrueT},
		{s.Or(), FalseT},
		{s.Ite(TrueT, a, FalseT), a},
		{s.Ite(FalseT, a, TrueT), TrueT},
		{s.Ite(a, TrueT, FalseT), a},
		{s.Ite(a, FalseT, TrueT), s.Not(a)},
		{s.Iff(a, a), TrueT},
		{s.Iff(a, TrueT), a},
		{s.Xor(a, a), FalseT},
		{s.Implies(FalseT, a), TrueT},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got t%d want t%d", i, c.got, c.want)
		}
	}
}

func TestHashConsing(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	if s.And(a, b) != s.And(b, a) {
		t.Error("And not commutatively interned")
	}
	if s.Or(a, b) != s.Or(b, a) {
		t.Error("Or not commutatively interned")
	}
	if s.And(a, s.And(a, b)) != s.And(a, b) {
		t.Error("And not flattened/deduped")
	}
	if s.Not(a) != s.Not(a) {
		t.Error("Not not interned")
	}
}

func TestSolveSimple(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(s.Or(a, b))
	s.Assert(s.Not(a))
	if s.Check() != sat.Sat {
		t.Fatal("expected sat")
	}
	if mustBool(t, s, a) || !mustBool(t, s, b) {
		t.Fatalf("model wrong: a=%v b=%v", mustBool(t, s, a), mustBool(t, s, b))
	}
	s.Assert(s.Not(b))
	if s.Check() != sat.Unsat {
		t.Fatal("expected unsat")
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(s.Implies(a, b))
	if s.Check(a, s.Not(b)) != sat.Unsat {
		t.Fatal("a ∧ ¬b should contradict a→b")
	}
	if s.Check(a) != sat.Sat {
		t.Fatal("a alone should be sat")
	}
	if !mustBool(t, s, b) {
		t.Fatal("b must be true when a assumed")
	}
}

func TestIteSemantics(t *testing.T) {
	s := NewSolver()
	c, a, b := s.Var("c"), s.Var("a"), s.Var("b")
	ite := s.Ite(c, a, b)
	// Force c=true, a=false: ite must be false.
	s.Assert(c)
	s.Assert(s.Not(a))
	s.Assert(b)
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	if mustBool(t, s, ite) {
		t.Fatal("ite should evaluate to a=false")
	}
	// And asserting ite must now be unsat.
	s.Assert(ite)
	if s.Check() != sat.Unsat {
		t.Fatal("unsat expected")
	}
}

func TestSortBits(t *testing.T) {
	cases := []struct{ size, bits int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
	}
	for _, c := range cases {
		if got := (Sort{"s", c.size}).Bits(); got != c.bits {
			t.Errorf("Bits(size=%d) = %d, want %d", c.size, got, c.bits)
		}
	}
}

func TestEnumBasics(t *testing.T) {
	s := NewSolver()
	sort3 := Sort{"kind", 3}
	x := s.EnumVar(sort3, "x")
	s.Assert(s.EnumIs(x, 2))
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	if got := mustEnum(t, s, x); got != 2 {
		t.Fatalf("EnumValue = %d, want 2", got)
	}
	// Two different constants are never equal.
	if s.EnumEq(s.EnumConst(sort3, 0), s.EnumConst(sort3, 1)) != FalseT {
		t.Error("distinct constants should fold to false")
	}
	if s.EnumEq(s.EnumConst(sort3, 1), s.EnumConst(sort3, 1)) != TrueT {
		t.Error("same constants should fold to true")
	}
}

func TestEnumRange(t *testing.T) {
	s := NewSolver()
	sort3 := Sort{"kind", 3} // values 0,1,2 over 2 bits; 3 must be excluded
	x := s.EnumVar(sort3, "x")
	s.Assert(s.Not(s.EnumIs(x, 0)))
	s.Assert(s.Not(s.EnumIs(x, 1)))
	s.Assert(s.Not(s.EnumIs(x, 2)))
	if s.Check() != sat.Unsat {
		t.Fatal("all values excluded should be unsat (range constraint)")
	}
}

func TestEnumIte(t *testing.T) {
	s := NewSolver()
	sort4 := Sort{"v", 4}
	c := s.Var("c")
	x := s.EnumIte(c, s.EnumConst(sort4, 1), s.EnumConst(sort4, 3))
	s.Assert(s.EnumIs(x, 3))
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	if mustBool(t, s, c) {
		t.Fatal("c must be false for x==3")
	}
}

func TestEnumEqVars(t *testing.T) {
	s := NewSolver()
	sort5 := Sort{"v", 5}
	x := s.EnumVar(sort5, "x")
	y := s.EnumVar(sort5, "y")
	s.Assert(s.EnumEq(x, y))
	s.Assert(s.EnumIs(x, 4))
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	if got := mustEnum(t, s, y); got != 4 {
		t.Fatalf("y = %d, want 4", got)
	}
	s.Assert(s.Not(s.EnumIs(y, 4)))
	if s.Check() != sat.Unsat {
		t.Fatal("unsat expected")
	}
}

func TestSingletonSort(t *testing.T) {
	s := NewSolver()
	one := Sort{"unit", 1}
	x := s.EnumVar(one, "x")
	y := s.EnumVar(one, "y")
	if s.EnumEq(x, y) != TrueT {
		t.Error("singleton sort values are always equal")
	}
	if s.Check() != sat.Sat {
		t.Fatal("unconstrained singleton should be sat")
	}
	if mustEnum(t, s, x) != 0 {
		t.Error("singleton value must be 0")
	}
}

// Random-formula property test: build a random term, pick a random
// assignment, assert term bits accordingly, and verify Check/BoolValue
// agree with direct evaluation.
func TestRandomTermsAgainstEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s := NewSolver()
		vars := make([]T, 5)
		for i := range vars {
			vars[i] = s.Var("v")
		}
		assign := make(map[T]bool)
		for _, v := range vars {
			assign[v] = r.Intn(2) == 0
		}
		var gen func(depth int) T
		gen = func(depth int) T {
			if depth == 0 {
				return vars[r.Intn(len(vars))]
			}
			switch r.Intn(5) {
			case 0:
				return s.Not(gen(depth - 1))
			case 1:
				return s.And(gen(depth-1), gen(depth-1))
			case 2:
				return s.Or(gen(depth-1), gen(depth-1))
			case 3:
				return s.Ite(gen(depth-1), gen(depth-1), gen(depth-1))
			default:
				return vars[r.Intn(len(vars))]
			}
		}
		term := gen(4)

		// Direct evaluation under assign.
		var eval func(t T) bool
		eval = func(t T) bool {
			switch t {
			case TrueT:
				return true
			case FalseT:
				return false
			}
			if v, ok := assign[t]; ok {
				return v
			}
			n := s.nodes[t]
			switch n.op {
			case opNot:
				return !eval(n.args[0])
			case opAnd:
				for _, a := range n.args {
					if !eval(a) {
						return false
					}
				}
				return true
			case opOr:
				for _, a := range n.args {
					if eval(a) {
						return true
					}
				}
				return false
			case opIte:
				if eval(n.args[0]) {
					return eval(n.args[1])
				}
				return eval(n.args[2])
			}
			panic("unreachable")
		}
		want := eval(term)

		// Pin the variable assignment and the term's expected value.
		for _, v := range vars {
			if assign[v] {
				s.Assert(v)
			} else {
				s.Assert(s.Not(v))
			}
		}
		if want {
			s.Assert(term)
		} else {
			s.Assert(s.Not(term))
		}
		if s.Check() != sat.Sat {
			t.Fatalf("trial %d: pinned evaluation should be sat (want %v)", trial, want)
		}
		if got := mustBool(t, s, term); got != want {
			t.Fatalf("trial %d: BoolValue=%v want %v", trial, got, want)
		}
	}
}

func TestEnumValueDistribution(t *testing.T) {
	// For every value of a sort, asserting x==v must be satisfiable and
	// the model must report v.
	s := NewSolver()
	sort7 := Sort{"v", 7}
	for v := 0; v < 7; v++ {
		x := s.EnumVar(sort7, "x")
		s.Assert(s.EnumIs(x, v))
		if s.Check() != sat.Sat {
			t.Fatalf("x==%d unsat", v)
		}
		if got := mustEnum(t, s, x); got != v {
			t.Fatalf("EnumValue=%d want %d", got, v)
		}
	}
}

func TestBudgetUnknown(t *testing.T) {
	s := NewSolver()
	// Build a modest pigeonhole instance at the term level.
	holes, pigeons := 8, 9
	at := make([][]T, pigeons)
	for p := range at {
		at[p] = make([]T, holes)
		for h := range at[p] {
			at[p][h] = s.Var("at")
		}
	}
	for p := 0; p < pigeons; p++ {
		s.Assert(s.Or(at[p]...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Assert(s.Or(s.Not(at[p1][h]), s.Not(at[p2][h])))
			}
		}
	}
	s.SetBudget(10)
	if got := s.Check(); got != sat.Unknown {
		t.Fatalf("Check with tiny budget = %v, want unknown", got)
	}
}
