// Package smt is a small finite-domain SMT layer on top of the CDCL solver
// in package sat. It provides a hash-consed boolean term DAG with constant
// folding, Tseitin conversion to CNF, and enum-sorted terms in a binary
// (bit-vector) encoding.
//
// Rehearsal's formulas (paper section 4.1) range over a finite domain: the
// state of each path is one of {does-not-exist, directory, file(c)} with c
// drawn from a finite content vocabulary, so every formula the checker
// emits is expressible here. This is the substitution for Z3 described in
// DESIGN.md.
package smt

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/sat"
)

// T identifies a boolean term in a Solver's term DAG. The constants
// TrueT/FalseT are valid in every solver.
type T int32

// The two constant terms.
const (
	FalseT T = 0
	TrueT  T = 1
)

type op uint8

const (
	opConst op = iota // value in aux: 0 false, 1 true
	opVar             // fresh boolean variable
	opNot             // args[0]
	opAnd             // args (n-ary, sorted)
	opOr              // args (n-ary, sorted)
	opIte             // args[0] ? args[1] : args[2]
)

type node struct {
	op   op
	args []T
	name string // for opVar, diagnostic only
}

// Sort is a finite enumeration sort with values 0..Size-1.
type Sort struct {
	Name string
	Size int
}

// Bits returns the number of bits of the binary encoding of the sort.
func (s Sort) Bits() int {
	if s.Size <= 1 {
		return 0
	}
	n := 0
	for v := s.Size - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// Enum is a term of an enumeration sort, encoded as bits (little-endian).
// Enums are created through Solver methods and may only be combined with
// Enums of the same sort.
type Enum struct {
	Sort Sort
	bits []T
}

// Same reports whether two enums are syntactically identical terms (same
// sort and bit-for-bit equal). Same implies semantic equality; the converse
// requires the solver.
func (e Enum) Same(o Enum) bool {
	if e.Sort != o.Sort || len(e.bits) != len(o.bits) {
		return false
	}
	for i := range e.bits {
		if e.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Solver couples a term DAG with a sat.Solver. Terms are built with the
// construction methods, constraints added with Assert, and satisfiability
// decided with Check.
type Solver struct {
	sat   *sat.Solver
	nodes []node
	memo  map[string]T

	compiled map[T]sat.Lit
	trueLit  sat.Lit

	asserted []T
	nextTmp  int

	// Incremental state (see incremental.go): open assertion scopes, each
	// guarded by an activation literal, and the status of the most recent
	// Check — model accessors require it to be sat.Sat.
	scopes     []scope
	lastStatus sat.Status
}

// NewSolver creates an empty solver containing only the constant terms.
func NewSolver() *Solver { return NewSolverConfig(sat.Config{}) }

// NewSolverConfig creates an empty solver whose SAT backend uses the
// given search configuration (see sat.Config; the zero value is the
// default). The configuration steers search order only — it can never
// change a Check verdict.
func NewSolverConfig(cfg sat.Config) *Solver {
	s := &Solver{
		sat:      sat.NewWithConfig(cfg),
		memo:     make(map[string]T),
		compiled: make(map[T]sat.Lit),
	}
	// Nodes 0 and 1 are the constants.
	s.nodes = append(s.nodes,
		node{op: opConst},
		node{op: opConst},
	)
	v := s.sat.NewVar()
	s.trueLit = sat.PosLit(v)
	s.sat.AddClause(s.trueLit)
	s.compiled[TrueT] = s.trueLit
	s.compiled[FalseT] = s.trueLit.Neg()
	return s
}

// SetBudget bounds the number of SAT conflicts per Check call; 0 means
// unlimited. Exhausted budgets make Check return sat.Unknown.
func (s *Solver) SetBudget(conflicts int64) { s.sat.Budget = conflicts }

// SetDeadline makes Check return sat.Unknown once the deadline passes; the
// zero time removes the deadline.
func (s *Solver) SetDeadline(t time.Time) { s.sat.Deadline = t }

// SetStop installs (or with nil clears) a cancellation flag on the SAT
// backend: a running Check returns sat.Unknown shortly after the flag
// becomes true, leaving the solver reusable. The portfolio runner uses
// it to cancel losing configs.
func (s *Solver) SetStop(f *atomic.Bool) { s.sat.SetStop(f) }

// Counters returns the SAT backend's cumulative search counters.
func (s *Solver) Counters() sat.Counters { return s.sat.Counters() }

// ConfigName returns the name of the SAT backend's search configuration.
func (s *Solver) ConfigName() string { return s.sat.ConfigName() }

// Stats reports the underlying SAT solver statistics.
func (s *Solver) Stats() string { return s.sat.Stats() }

// NumTerms returns the number of distinct terms created.
func (s *Solver) NumTerms() int { return len(s.nodes) }

func (s *Solver) intern(key string, n node) T {
	if t, ok := s.memo[key]; ok {
		return t
	}
	t := T(len(s.nodes))
	s.nodes = append(s.nodes, n)
	s.memo[key] = t
	return t
}

// Bool returns the constant term for b.
func (s *Solver) Bool(b bool) T {
	if b {
		return TrueT
	}
	return FalseT
}

// Var creates a fresh boolean variable term. The name is diagnostic only;
// distinct calls always create distinct variables.
func (s *Solver) Var(name string) T {
	t := T(len(s.nodes))
	s.nodes = append(s.nodes, node{op: opVar, name: name})
	return t
}

// Not returns the negation of t.
func (s *Solver) Not(t T) T {
	switch t {
	case TrueT:
		return FalseT
	case FalseT:
		return TrueT
	}
	if n := s.nodes[t]; n.op == opNot {
		return n.args[0]
	}
	return s.intern(fmt.Sprintf("!%d", t), node{op: opNot, args: []T{t}})
}

// And returns the conjunction of the terms, folding constants and
// deduplicating arguments.
func (s *Solver) And(ts ...T) T {
	return s.nary(opAnd, FalseT, TrueT, ts)
}

// Or returns the disjunction of the terms.
func (s *Solver) Or(ts ...T) T {
	return s.nary(opOr, TrueT, FalseT, ts)
}

// nary builds an n-ary gate; dominant annihilates (false for and, true for
// or), identity is dropped.
func (s *Solver) nary(o op, dominant, identity T, ts []T) T {
	args := make([]T, 0, len(ts))
	seen := make(map[T]bool, len(ts))
	for _, t := range ts {
		if t == dominant {
			return dominant
		}
		if t == identity || seen[t] {
			continue
		}
		// Flatten nested gates of the same kind.
		if n := s.nodes[t]; n.op == o {
			for _, a := range n.args {
				if a == dominant {
					return dominant
				}
				if a == identity || seen[a] {
					continue
				}
				seen[a] = true
				args = append(args, a)
			}
			continue
		}
		seen[t] = true
		args = append(args, t)
	}
	// x ∧ ¬x = false; x ∨ ¬x = true.
	for _, a := range args {
		if seen[s.rawNot(a)] {
			return dominant
		}
	}
	switch len(args) {
	case 0:
		return identity
	case 1:
		return args[0]
	}
	sortTs(args)
	var b strings.Builder
	if o == opAnd {
		b.WriteByte('&')
	} else {
		b.WriteByte('|')
	}
	for _, a := range args {
		fmt.Fprintf(&b, ",%d", a)
	}
	return s.intern(b.String(), node{op: o, args: args})
}

// rawNot returns the existing negation term of t if one exists (or computes
// the trivial cases) without creating new nodes; returns -1 when unknown.
func (s *Solver) rawNot(t T) T {
	switch t {
	case TrueT:
		return FalseT
	case FalseT:
		return TrueT
	}
	if n := s.nodes[t]; n.op == opNot {
		return n.args[0]
	}
	if existing, ok := s.memo[fmt.Sprintf("!%d", t)]; ok {
		return existing
	}
	return -1
}

// Implies returns a → b.
func (s *Solver) Implies(a, b T) T { return s.Or(s.Not(a), b) }

// Iff returns a ↔ b.
func (s *Solver) Iff(a, b T) T {
	if a == b {
		return TrueT
	}
	switch {
	case a == TrueT:
		return b
	case b == TrueT:
		return a
	case a == FalseT:
		return s.Not(b)
	case b == FalseT:
		return s.Not(a)
	}
	return s.Ite(a, b, s.Not(b))
}

// Xor returns a ⊕ b.
func (s *Solver) Xor(a, b T) T { return s.Not(s.Iff(a, b)) }

// Ite returns c ? a : b.
func (s *Solver) Ite(c, a, b T) T {
	switch {
	case c == TrueT:
		return a
	case c == FalseT:
		return b
	case a == b:
		return a
	case a == TrueT && b == FalseT:
		return c
	case a == FalseT && b == TrueT:
		return s.Not(c)
	case a == TrueT:
		return s.Or(c, b)
	case a == FalseT:
		return s.And(s.Not(c), b)
	case b == TrueT:
		return s.Or(s.Not(c), a)
	case b == FalseT:
		return s.And(c, a)
	}
	return s.intern(fmt.Sprintf("?%d,%d,%d", c, a, b), node{op: opIte, args: []T{c, a, b}})
}

// Assert adds t as a constraint for subsequent Check calls. Inside a Push
// scope the constraint is retired again by the matching Pop; at the top
// level it is permanent. Asserting invalidates any previously found model.
func (s *Solver) Assert(t T) {
	s.asserted = append(s.asserted, t)
	s.lastStatus = sat.Unknown
	l := s.compile(t)
	if n := len(s.scopes); n > 0 {
		// Guard by the innermost activation literal only: scopes pop LIFO,
		// so releasing that literal is what retires this clause.
		s.sat.AddClause(s.scopes[n-1].act.Neg(), l)
		return
	}
	s.sat.AddClause(l)
}

// Check decides satisfiability of the asserted constraints under the given
// assumption terms. Constraints asserted in open scopes participate via
// their activation literals.
func (s *Solver) Check(assumptions ...T) sat.Status {
	lits := make([]sat.Lit, 0, len(assumptions)+len(s.scopes))
	for _, a := range assumptions {
		lits = append(lits, s.compile(a))
	}
	for _, sc := range s.scopes {
		lits = append(lits, sc.act)
	}
	st := s.sat.Solve(lits...)
	s.lastStatus = st
	return st
}

// BoolValue returns t's value in the model found by the last Check. It
// returns ErrNoModel unless that Check returned sat.Sat and no assertion or
// scope change has invalidated the model since.
func (s *Solver) BoolValue(t T) (bool, error) {
	if s.lastStatus != sat.Sat {
		return false, ErrNoModel
	}
	return s.eval(t, make(map[T]bool)), nil
}

func (s *Solver) eval(t T, memo map[T]bool) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	n := s.nodes[t]
	var v bool
	switch n.op {
	case opConst:
		v = t == TrueT
	case opVar:
		if l, ok := s.compiled[t]; ok {
			v = s.sat.Value(l.Var()) == l.IsPos()
		} else {
			v = false // variable never used in a constraint: any value works
		}
	case opNot:
		v = !s.eval(n.args[0], memo)
	case opAnd:
		v = true
		for _, a := range n.args {
			if !s.eval(a, memo) {
				v = false
				break
			}
		}
	case opOr:
		v = false
		for _, a := range n.args {
			if s.eval(a, memo) {
				v = true
				break
			}
		}
	case opIte:
		if s.eval(n.args[0], memo) {
			v = s.eval(n.args[1], memo)
		} else {
			v = s.eval(n.args[2], memo)
		}
	}
	memo[t] = v
	return v
}

// compile Tseitin-encodes t and returns its representative literal.
func (s *Solver) compile(t T) sat.Lit {
	if l, ok := s.compiled[t]; ok {
		return l
	}
	n := s.nodes[t]
	var l sat.Lit
	switch n.op {
	case opVar:
		l = sat.PosLit(s.sat.NewVar())
	case opNot:
		l = s.compile(n.args[0]).Neg()
	case opAnd:
		args := make([]sat.Lit, len(n.args))
		for i, a := range n.args {
			args[i] = s.compile(a)
		}
		l = sat.PosLit(s.sat.NewVar())
		// l ↔ ∧args
		long := make([]sat.Lit, 0, len(args)+1)
		long = append(long, l)
		for _, a := range args {
			s.sat.AddClause(l.Neg(), a)
			long = append(long, a.Neg())
		}
		s.sat.AddClause(long...)
	case opOr:
		args := make([]sat.Lit, len(n.args))
		for i, a := range n.args {
			args[i] = s.compile(a)
		}
		l = sat.PosLit(s.sat.NewVar())
		// l ↔ ∨args
		long := make([]sat.Lit, 0, len(args)+1)
		long = append(long, l.Neg())
		for _, a := range args {
			s.sat.AddClause(l, a.Neg())
			long = append(long, a)
		}
		s.sat.AddClause(long...)
	case opIte:
		c := s.compile(n.args[0])
		a := s.compile(n.args[1])
		b := s.compile(n.args[2])
		l = sat.PosLit(s.sat.NewVar())
		// l ↔ (c ? a : b)
		s.sat.AddClause(l.Neg(), c.Neg(), a)
		s.sat.AddClause(l, c.Neg(), a.Neg())
		s.sat.AddClause(l.Neg(), c, b)
		s.sat.AddClause(l, c, b.Neg())
		// Redundant but propagation-strengthening:
		s.sat.AddClause(l.Neg(), a, b)
		s.sat.AddClause(l, a.Neg(), b.Neg())
	default:
		panic("smt: compiling constant should have been cached")
	}
	s.compiled[t] = l
	return l
}

// EnumConst returns the constant term of sort with the given value.
func (s *Solver) EnumConst(sort Sort, value int) Enum {
	if value < 0 || value >= sort.Size {
		panic(fmt.Sprintf("smt: value %d out of range for sort %s (size %d)", value, sort.Name, sort.Size))
	}
	bits := make([]T, sort.Bits())
	for i := range bits {
		bits[i] = s.Bool(value>>i&1 == 1)
	}
	return Enum{Sort: sort, bits: bits}
}

// EnumVar creates a fresh variable of the sort and asserts that its value
// is within range.
func (s *Solver) EnumVar(sort Sort, name string) Enum {
	bits := make([]T, sort.Bits())
	for i := range bits {
		bits[i] = s.Var(fmt.Sprintf("%s#%d", name, i))
	}
	e := Enum{Sort: sort, bits: bits}
	s.Assert(s.enumInRange(e))
	return e
}

// enumInRange returns the term asserting e < e.Sort.Size.
func (s *Solver) enumInRange(e Enum) T {
	max := e.Sort.Size - 1
	// e ≤ max, most-significant-bit first comparison.
	lt := FalseT // strictly less given higher bits equal so far
	eq := TrueT  // equal so far
	for i := len(e.bits) - 1; i >= 0; i-- {
		mbit := max>>i&1 == 1
		if mbit {
			lt = s.Or(lt, s.And(eq, s.Not(e.bits[i])))
			eq = s.And(eq, e.bits[i])
		} else {
			eq = s.And(eq, s.Not(e.bits[i]))
		}
	}
	return s.Or(lt, eq)
}

// EnumIte returns c ? a : b for enums of the same sort.
func (s *Solver) EnumIte(c T, a, b Enum) Enum {
	if a.Sort != b.Sort {
		panic("smt: EnumIte sorts differ")
	}
	bits := make([]T, len(a.bits))
	for i := range bits {
		bits[i] = s.Ite(c, a.bits[i], b.bits[i])
	}
	return Enum{Sort: a.Sort, bits: bits}
}

// EnumEq returns the term a == b for enums of the same sort.
func (s *Solver) EnumEq(a, b Enum) T {
	if a.Sort != b.Sort {
		panic("smt: EnumEq sorts differ")
	}
	parts := make([]T, len(a.bits))
	for i := range parts {
		parts[i] = s.Iff(a.bits[i], b.bits[i])
	}
	return s.And(parts...)
}

// EnumIs returns the term e == value.
func (s *Solver) EnumIs(e Enum, value int) T {
	return s.EnumEq(e, s.EnumConst(e.Sort, value))
}

// EnumValue returns e's value in the current model. It returns ErrNoModel
// unless the last Check returned sat.Sat and no assertion or scope change
// has invalidated the model since.
func (s *Solver) EnumValue(e Enum) (int, error) {
	if s.lastStatus != sat.Sat {
		return 0, ErrNoModel
	}
	memo := make(map[T]bool)
	v := 0
	for i, b := range e.bits {
		if s.eval(b, memo) {
			v |= 1 << i
		}
	}
	if v >= e.Sort.Size {
		// An unconstrained variable bit pattern outside the range; clamp to
		// a legal value (the range assertion prevents this for variables
		// that feed constraints).
		v = 0
	}
	return v, nil
}

func sortTs(ts []T) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
