package smt

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// TestNoModelError: model accessors must refuse to guess before a SAT Check
// and after anything invalidates the model.
func TestNoModelError(t *testing.T) {
	s := NewSolver()
	a := s.Var("a")
	if _, err := s.BoolValue(a); !errors.Is(err, ErrNoModel) {
		t.Fatalf("BoolValue before Check: err = %v, want ErrNoModel", err)
	}
	sort3 := Sort{"kind", 3}
	x := s.EnumVar(sort3, "x")
	if _, err := s.EnumValue(x); !errors.Is(err, ErrNoModel) {
		t.Fatalf("EnumValue before Check: err = %v, want ErrNoModel", err)
	}
	s.Assert(a)
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	if v, err := s.BoolValue(a); err != nil || !v {
		t.Fatalf("BoolValue after Sat = (%v, %v), want (true, nil)", v, err)
	}
	// A later assertion invalidates the model.
	s.Assert(s.Not(a))
	if _, err := s.BoolValue(a); !errors.Is(err, ErrNoModel) {
		t.Fatalf("BoolValue after invalidating Assert: err = %v, want ErrNoModel", err)
	}
	if s.Check() != sat.Unsat {
		t.Fatal("unsat expected")
	}
	if _, err := s.BoolValue(a); !errors.Is(err, ErrNoModel) {
		t.Fatalf("BoolValue after Unsat: err = %v, want ErrNoModel", err)
	}
}

// TestPushPopBasic: scoped assertions are live inside the scope and retired
// by Pop; top-level assertions persist.
func TestPushPopBasic(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(s.Or(a, b))
	s.Push()
	s.Assert(s.Not(a))
	s.Assert(s.Not(b))
	if s.Check() != sat.Unsat {
		t.Fatal("scoped contradiction should be unsat")
	}
	if s.ScopeDepth() != 1 {
		t.Fatalf("ScopeDepth = %d, want 1", s.ScopeDepth())
	}
	s.Pop()
	if s.ScopeDepth() != 0 {
		t.Fatalf("ScopeDepth after Pop = %d, want 0", s.ScopeDepth())
	}
	if s.Check() != sat.Sat {
		t.Fatal("formula must be sat again after Pop")
	}
	v1, err1 := s.BoolValue(a)
	v2, err2 := s.BoolValue(b)
	if err1 != nil || err2 != nil || (!v1 && !v2) {
		t.Fatalf("model must satisfy a ∨ b: a=%v(%v) b=%v(%v)", v1, err1, v2, err2)
	}
}

// TestPushPopNested: inner scopes retire before outer ones (LIFO).
func TestPushPopNested(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	s.Assert(s.Or(a, b, c))
	s.Push()
	s.Assert(s.Not(a))
	s.Push()
	s.Assert(s.Not(b))
	s.Assert(s.Not(c))
	if s.Check() != sat.Unsat {
		t.Fatal("inner scope should be unsat")
	}
	s.Pop() // drops ¬b, ¬c
	if s.Check() != sat.Sat {
		t.Fatal("outer scope alone should be sat")
	}
	if v := mustBool(t, s, a); v {
		t.Fatal("¬a from the outer scope must still hold")
	}
	s.Pop()
	if s.Check(s.Not(b), s.Not(c)) != sat.Sat {
		t.Fatal("after both pops, a must be free again")
	}
	if v := mustBool(t, s, a); !v {
		t.Fatal("a must be forced once b and c are assumed false")
	}
}

// TestPopWithoutPushPanics documents the misuse contract.
func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop without Push should panic")
		}
	}()
	NewSolver().Pop()
}

// TestPushPopDifferential: a long-lived solver answering scoped queries must
// agree verdict-for-verdict with fresh solvers built per query. Terms are
// built once in the shared solver — the point of the incremental layer is
// that their compilation is reused across scopes.
func TestPushPopDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		inc := NewSolver()
		nvars := 4 + r.Intn(4)
		vars := make([]T, nvars)
		for i := range vars {
			vars[i] = inc.Var("v")
		}
		// randTerm builds a term in solver s over the given vars, driven by
		// a replayable op stream so the fresh solver builds the same term.
		type opRec struct{ kind, a, b, c int }
		genOps := func() []opRec {
			n := 1 + r.Intn(6)
			ops := make([]opRec, n)
			for i := range ops {
				ops[i] = opRec{r.Intn(4), r.Intn(nvars), r.Intn(nvars), r.Intn(nvars)}
			}
			return ops
		}
		buildTerm := func(s *Solver, vs []T, ops []opRec) T {
			acc := vs[ops[0].a]
			for _, o := range ops {
				switch o.kind {
				case 0:
					acc = s.And(acc, vs[o.a])
				case 1:
					acc = s.Or(acc, s.Not(vs[o.b]))
				case 2:
					acc = s.Ite(vs[o.c], acc, vs[o.a])
				default:
					acc = s.Xor(acc, vs[o.b])
				}
			}
			return acc
		}
		baseOps := genOps()
		inc.Assert(buildTerm(inc, vars, baseOps))
		for q := 0; q < 10; q++ {
			qOps := genOps()
			inc.Push()
			inc.Assert(buildTerm(inc, vars, qOps))
			got := inc.Check()

			fresh := NewSolver()
			fvars := make([]T, nvars)
			for i := range fvars {
				fvars[i] = fresh.Var("v")
			}
			fresh.Assert(buildTerm(fresh, fvars, baseOps))
			fresh.Assert(buildTerm(fresh, fvars, qOps))
			want := fresh.Check()

			if got != want {
				t.Fatalf("trial %d q %d: incremental=%v fresh=%v", trial, q, got, want)
			}
			if got == sat.Sat {
				// The incremental model must satisfy base and query terms.
				if !mustBool(t, inc, buildTerm(inc, vars, baseOps)) ||
					!mustBool(t, inc, buildTerm(inc, vars, qOps)) {
					t.Fatalf("trial %d q %d: incremental model violates assertions", trial, q)
				}
			}
			inc.Pop()
		}
		// Pops retire their activation variables; preprocessing recycles them.
		if !inc.Simplify() {
			t.Fatalf("trial %d: base became unsat after pops", trial)
		}
		if inc.SimplifyCounters().VarsRecycled == 0 {
			t.Errorf("trial %d: no scope variables recycled", trial)
		}
	}
}

// TestCompilationReuseAcrossScopes: popping a scope must not discard the
// Tseitin compilation of terms created inside it.
func TestCompilationReuseAcrossScopes(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Push()
	conj := s.And(a, b)
	s.Assert(conj)
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	s.Pop()
	if _, ok := s.compiled[conj]; !ok {
		t.Fatal("compilation of scoped term dropped by Pop")
	}
	nv := s.sat.NumVars()
	s.Push()
	s.Assert(conj) // must not re-Tseitin: no new sat vars beyond the act literal
	s.Pop()
	if got := s.sat.NumVars(); got > nv+1 {
		t.Fatalf("re-asserting a compiled term allocated %d new vars, want ≤ 1", got-nv)
	}
}

// TestLearntRetainedAcrossScopes: learnt clauses accumulated inside a scope
// survive Pop and later queries still answer correctly.
func TestLearntRetainedAcrossScopes(t *testing.T) {
	s := NewSolver()
	holes, pigeons := 6, 7
	at := make([][]T, pigeons)
	for p := range at {
		at[p] = make([]T, holes)
		for h := range at[p] {
			at[p][h] = s.Var("at")
		}
	}
	s.Push()
	for p := 0; p < pigeons; p++ {
		s.Assert(s.Or(at[p]...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Assert(s.Not(s.And(at[p1][h], at[p2][h])))
			}
		}
	}
	if s.Check() != sat.Unsat {
		t.Fatal("pigeonhole should be unsat")
	}
	learnt := s.LearntClauses()
	if learnt == 0 {
		t.Fatal("expected learnt clauses from the pigeonhole search")
	}
	s.Pop()
	if s.Check() != sat.Sat {
		t.Fatal("after Pop the solver must be sat again")
	}
	s.ClearLearnts()
	if s.LearntClauses() != 0 {
		t.Fatal("ClearLearnts left learnt clauses behind")
	}
	if s.Check() != sat.Sat {
		t.Fatal("solver must stay usable after ClearLearnts")
	}
}
