// Package pkgdb is the package-metadata substrate of section 3.3: the
// paper models a package resource as the directory tree plus file list the
// package installs, obtained from apt-file/repoquery through a caching web
// service. This package provides the same data in a standardized format
// from a synthetic catalog (see DESIGN.md for the substitution argument),
// an HTTP listing service, and a caching client.
package pkgdb

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/fs"
)

// Errors reported by providers.
var (
	ErrUnknownPlatform = errors.New("pkgdb: unknown platform")
	ErrUnknownPackage  = errors.New("pkgdb: unknown package")

	// ErrUnavailable reports an infrastructure failure: the listing
	// service could not produce an answer within the client's retry
	// budget (network errors, 5xx responses, torn bodies, an open circuit
	// breaker) and no cached or snapshot fallback applied. It is the
	// boundary between "the manifest is wrong" and "the service is down" —
	// callers (cmd/rehearsal) map it to a distinct exit code.
	ErrUnavailable = errors.New("pkgdb: listing service unavailable")
)

// Package is the standardized package listing: the files and directories
// the package installs and its direct dependencies.
type Package struct {
	Name    string   `json:"name"`
	Version string   `json:"version"`
	Files   []string `json:"files"`   // absolute paths of regular files
	Dirs    []string `json:"dirs"`    // directories, ancestors included
	Depends []string `json:"depends"` // direct dependencies
}

// Provider answers package-listing queries for a platform, mirroring the
// endpoints of the paper's web service.
type Provider interface {
	// Lookup returns the listing of a single package.
	Lookup(platform, name string) (*Package, error)
	// Closure returns the package and its transitive dependencies in
	// dependency order (dependencies before dependents).
	Closure(platform, name string) ([]*Package, error)
	// ReverseDependents returns the packages that transitively depend on
	// name, in an order suitable for removal (dependents before
	// dependencies).
	ReverseDependents(platform, name string) ([]*Package, error)
}

// ContextProvider is a Provider whose queries honor a context for
// cancellation and deadlines. Client implements it; the analysis pipeline
// (internal/core) binds its run context to the provider via BindContext so
// canceling a check also abandons its in-flight package fetches.
type ContextProvider interface {
	Provider
	LookupContext(ctx context.Context, platform, name string) (*Package, error)
	ClosureContext(ctx context.Context, platform, name string) ([]*Package, error)
	ReverseDependentsContext(ctx context.Context, platform, name string) ([]*Package, error)
}

// BindContext returns a Provider that forwards every query to p under ctx
// when p implements ContextProvider, and p unchanged otherwise (an
// in-memory Catalog cannot block, so it has nothing to cancel).
func BindContext(ctx context.Context, p Provider) Provider {
	if cp, ok := p.(ContextProvider); ok && ctx != nil {
		return &boundProvider{ctx: ctx, p: cp}
	}
	return p
}

type boundProvider struct {
	ctx context.Context
	p   ContextProvider
}

func (b *boundProvider) Lookup(platform, name string) (*Package, error) {
	return b.p.LookupContext(b.ctx, platform, name)
}

func (b *boundProvider) Closure(platform, name string) ([]*Package, error) {
	return b.p.ClosureContext(b.ctx, platform, name)
}

func (b *boundProvider) ReverseDependents(platform, name string) ([]*Package, error) {
	return b.p.ReverseDependentsContext(b.ctx, platform, name)
}

// Catalog is an in-memory Provider.
type Catalog struct {
	platforms map[string]map[string]*Package
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{platforms: make(map[string]map[string]*Package)}
}

// Add registers a package. Directories are normalized: every ancestor of
// every file and declared directory is added, sorted root-first, so the
// resource compiler can create trees in order.
func (c *Catalog) Add(platform string, p *Package) {
	plat, ok := c.platforms[platform]
	if !ok {
		plat = make(map[string]*Package)
		c.platforms[platform] = plat
	}
	cp := *p
	cp.Files = append([]string(nil), p.Files...)
	sort.Strings(cp.Files)
	cp.Dirs = normalizeDirs(cp.Files, p.Dirs)
	cp.Depends = append([]string(nil), p.Depends...)
	sort.Strings(cp.Depends)
	plat[p.Name] = &cp
}

func normalizeDirs(files, dirs []string) []string {
	set := make(map[string]struct{})
	addAncestors := func(p fs.Path) {
		for _, a := range p.Ancestors() {
			set[string(a)] = struct{}{}
		}
	}
	for _, f := range files {
		addAncestors(fs.ParsePath(f))
	}
	for _, d := range dirs {
		p := fs.ParsePath(d)
		if !p.IsRoot() {
			set[string(p)] = struct{}{}
		}
		addAncestors(p)
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	// Root-first: shorter (ancestor) paths sort before their descendants
	// under depth-then-lexicographic order.
	sort.Slice(out, func(i, j int) bool {
		di, dj := fs.Path(out[i]).Depth(), fs.Path(out[j]).Depth()
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// Platforms returns the registered platform names, sorted.
func (c *Catalog) Platforms() []string {
	out := make([]string, 0, len(c.platforms))
	for p := range c.platforms {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Packages returns the package names of a platform, sorted.
func (c *Catalog) Packages(platform string) ([]string, error) {
	plat, ok := c.platforms[platform]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlatform, platform)
	}
	out := make([]string, 0, len(plat))
	for n := range plat {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Lookup implements Provider.
func (c *Catalog) Lookup(platform, name string) (*Package, error) {
	plat, ok := c.platforms[platform]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlatform, platform)
	}
	p, ok := plat[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", ErrUnknownPackage, name, platform)
	}
	return p, nil
}

// Closure implements Provider: dependencies come before their dependents.
func (c *Catalog) Closure(platform, name string) ([]*Package, error) {
	var out []*Package
	seen := make(map[string]bool)
	var visit func(n string) error
	visit = func(n string) error {
		if seen[n] {
			return nil
		}
		seen[n] = true
		p, err := c.Lookup(platform, n)
		if err != nil {
			return err
		}
		for _, d := range p.Depends {
			if err := visit(d); err != nil {
				return fmt.Errorf("dependency of %q: %w", n, err)
			}
		}
		out = append(out, p)
		return nil
	}
	if err := visit(name); err != nil {
		return nil, err
	}
	return out, nil
}

// ReverseDependents implements Provider: every package whose dependency
// closure includes name, ordered dependents-first (safe removal order),
// excluding name itself.
func (c *Catalog) ReverseDependents(platform, name string) ([]*Package, error) {
	plat, ok := c.platforms[platform]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlatform, platform)
	}
	if _, ok := plat[name]; !ok {
		return nil, fmt.Errorf("%w: %q on %q", ErrUnknownPackage, name, platform)
	}
	// Build the reverse edge set restricted to this platform.
	dependents := make(map[string][]string)
	for n, p := range plat {
		for _, d := range p.Depends {
			dependents[d] = append(dependents[d], n)
		}
	}
	// Collect the transitive dependents of name.
	inSet := make(map[string]bool)
	var collect func(n string)
	collect = func(n string) {
		for _, d := range dependents[n] {
			if !inSet[d] {
				inSet[d] = true
				collect(d)
			}
		}
	}
	collect(name)

	// Topologically order the set so that every dependent precedes the
	// packages it depends on (safe removal order): DFS postorder over
	// dependency edges within the set emits dependencies first; reversing
	// yields dependents-first.
	var post []string
	visited := make(map[string]bool)
	var visit func(n string)
	visit = func(n string) {
		visited[n] = true
		deps := append([]string(nil), plat[n].Depends...)
		sort.Strings(deps)
		for _, d := range deps {
			if inSet[d] && !visited[d] {
				visit(d)
			}
		}
		post = append(post, n)
	}
	roots := make([]string, 0, len(inSet))
	for n := range inSet {
		roots = append(roots, n)
	}
	sort.Strings(roots)
	for _, n := range roots {
		if !visited[n] {
			visit(n)
		}
	}
	out := make([]*Package, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, plat[post[i]])
	}
	return out, nil
}
