package pkgdb

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Handler serves package listings over HTTP in the standardized JSON
// format, mirroring the paper's portable package-listing web service:
//
//	GET /v1/platforms                     → ["centos","ubuntu"]
//	GET /v1/{platform}/packages           → ["apache2", ...]
//	GET /v1/{platform}/package/{name}     → Package
//	GET /v1/{platform}/closure/{name}     → [Package, ...] (deps first)
//	GET /v1/{platform}/revdeps/{name}     → [Package, ...] (dependents first)
func Handler(c *Catalog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/v1/")
		parts := strings.Split(strings.Trim(rest, "/"), "/")
		switch {
		case len(parts) == 1 && parts[0] == "platforms":
			writeJSON(w, c.Platforms())
		case len(parts) == 2 && parts[1] == "packages":
			names, err := c.Packages(parts[0])
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, names)
		case len(parts) == 3 && parts[1] == "package":
			p, err := c.Lookup(parts[0], parts[2])
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, p)
		case len(parts) == 3 && parts[1] == "closure":
			ps, err := c.Closure(parts[0], parts[2])
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, ps)
		case len(parts) == 3 && parts[1] == "revdeps":
			ps, err := c.ReverseDependents(parts[0], parts[2])
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, ps)
		default:
			http.NotFound(w, r)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, ErrUnknownPackage) || errors.Is(err, ErrUnknownPlatform) {
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}
