package pkgdb_test

import (
	"fmt"
	"log"

	"repro/internal/pkgdb"
)

// The dependency closure of a package, in installation order — the
// listing the resource compiler turns into an FS program.
func ExampleCatalog_Closure() {
	catalog := pkgdb.DefaultCatalog()
	closure, err := catalog.Closure("ubuntu", "golang-go")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range closure {
		fmt.Println(p.Name)
	}
	// Output:
	// perl
	// golang-go
}

// Reverse dependents, in safe removal order.
func ExampleCatalog_ReverseDependents() {
	catalog := pkgdb.NewCatalog()
	catalog.Add("test", &pkgdb.Package{Name: "libc"})
	catalog.Add("test", &pkgdb.Package{Name: "ssl", Depends: []string{"libc"}})
	catalog.Add("test", &pkgdb.Package{Name: "web", Depends: []string{"ssl"}})
	rd, err := catalog.ReverseDependents("test", "libc")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rd {
		fmt.Println(p.Name)
	}
	// Output:
	// web
	// ssl
}
