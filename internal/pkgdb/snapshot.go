package pkgdb

// Catalog snapshots: a JSON serialization of a full catalog that a client
// can attach as its fallback of last resort. The paper's deployment keeps
// the listing service's cache on disk for exactly this reason — package
// listings change rarely, so an analysis run against a slightly stale
// snapshot is far more useful than one that fails because the service is
// down. `pkgserver -write-snapshot` produces one; `rehearsal -snapshot`
// consumes it.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SnapshotVersion identifies the snapshot file format.
const SnapshotVersion = 1

// snapshotFile is the on-disk snapshot structure.
type snapshotFile struct {
	Version   int                            `json:"version"`
	Platforms map[string]map[string]*Package `json:"platforms"`
}

// WriteSnapshot serializes the catalog to w in snapshot format.
func (c *Catalog) WriteSnapshot(w io.Writer) error {
	snap := snapshotFile{Version: SnapshotVersion, Platforms: make(map[string]map[string]*Package)}
	for plat, pkgs := range c.platforms {
		out := make(map[string]*Package, len(pkgs))
		for name, p := range pkgs {
			out[name] = p
		}
		snap.Platforms[plat] = out
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// WriteSnapshotFile writes the catalog snapshot to path atomically (temp
// file + rename), so a crashed writer can never leave a torn snapshot for
// a later AttachSnapshot to trip over.
func WriteSnapshotFile(c *Catalog, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	if err := c.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadSnapshot parses a snapshot and rebuilds the catalog. Packages pass
// through Catalog.Add, so normalization (sorted files, ancestor-closed
// dirs) is re-derived rather than trusted from the file.
func ReadSnapshot(r io.Reader) (*Catalog, error) {
	var snap snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("pkgdb: corrupt snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("pkgdb: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	cat := NewCatalog()
	for plat, pkgs := range snap.Platforms {
		for _, p := range pkgs {
			cat.Add(plat, p)
		}
	}
	return cat, nil
}

// ReadSnapshotFile reads a snapshot from path.
func ReadSnapshotFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
