package pkgdb

// Fault-injection tests for the hardened client: every tolerance the
// client claims (retries, breaker, negative cache, snapshot fallback,
// context cancellation, response bounds) is exercised against an injected
// failure. Designed to run under -race.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// fastCfg is a test config with negligible backoff so retry paths run in
// microseconds.
func fastCfg() ClientConfig {
	return ClientConfig{
		HTTPClient:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		AttemptTimeout: 2 * time.Second,
		Attempts:       4,
		RetryBackoff:   time.Microsecond,
		MaxBackoff:     time.Millisecond,
	}
}

func TestClientRetriesTransientFaults(t *testing.T) {
	// Every distinct path fails its first two requests (a 503 and a torn
	// connection) and succeeds afterwards: within the default retry
	// budget, so every query must come back correct.
	plan := faults.NewPlan(faults.Config{Burst: 2, Kinds: []faults.Kind{faults.Status, faults.Reset}})
	srv := httptest.NewServer(faults.Middleware(plan, Handler(DefaultCatalog())))
	defer srv.Close()

	c := NewClientConfig(srv.URL, fastCfg())
	p, err := c.Lookup("ubuntu", "nginx")
	if err != nil {
		t.Fatalf("lookup under transient faults: %v", err)
	}
	if p.Name != "nginx" || len(p.Files) == 0 {
		t.Errorf("damaged package: %+v", p)
	}
	ps, err := c.Closure("ubuntu", "nginx")
	if err != nil {
		t.Fatalf("closure under transient faults: %v", err)
	}
	if len(ps) != 2 || ps[0].Name != "nginx-common" {
		t.Errorf("closure = %v", ps)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Errorf("no retries recorded despite injected faults: %+v", st)
	}
}

func TestClientRetriesCorruptBodies(t *testing.T) {
	// Truncated and corrupted JSON must be retried like any transient
	// fault, never half-decoded into a cached listing.
	plan := faults.NewPlan(faults.Config{Burst: 2, Kinds: []faults.Kind{faults.Truncate, faults.Corrupt}})
	srv := httptest.NewServer(faults.Middleware(plan, Handler(DefaultCatalog())))
	defer srv.Close()

	c := NewClientConfig(srv.URL, fastCfg())
	p, err := c.Lookup("ubuntu", "git")
	if err != nil {
		t.Fatalf("lookup under torn bodies: %v", err)
	}
	if p.Name != "git" || len(p.Files) < 500 {
		t.Errorf("damaged package survived retries: name=%q files=%d", p.Name, len(p.Files))
	}
}

func TestClientFailsFastBeyondBudget(t *testing.T) {
	// A burst longer than the retry budget must produce a typed
	// ErrUnavailable — promptly, not after hanging.
	plan := faults.NewPlan(faults.Config{Burst: 1000, Kinds: []faults.Kind{faults.Status}})
	srv := httptest.NewServer(faults.Middleware(plan, Handler(DefaultCatalog())))
	defer srv.Close()

	cfg := fastCfg()
	cfg.Attempts = 3
	c := NewClientConfig(srv.URL, cfg)
	start := time.Now()
	_, err := c.Lookup("ubuntu", "nginx")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("fail-fast took %v", d)
	}
	if st := c.Stats(); st.Attempts != 3 {
		t.Errorf("attempts = %d, want exactly the budget of 3", st.Attempts)
	}
}

func TestNegativeCache(t *testing.T) {
	var hits atomic.Int64
	inner := Handler(DefaultCatalog())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewClientConfig(srv.URL, fastCfg())
	if _, err := c.Lookup("ubuntu", "no-such-pkg"); !errors.Is(err, ErrUnknownPackage) {
		t.Fatalf("first miss: %v", err)
	}
	n := hits.Load()
	if n != 1 {
		t.Fatalf("conclusive 404 was retried: %d requests", n)
	}
	// The second miss must come from the negative cache, not the wire.
	if _, err := c.Lookup("ubuntu", "no-such-pkg"); !errors.Is(err, ErrUnknownPackage) {
		t.Fatalf("second miss: %v", err)
	}
	if hits.Load() != n {
		t.Error("repeated miss hit the service")
	}
	if st := c.Stats(); st.NegativeHits != 1 {
		t.Errorf("negative hits = %d, want 1", st.NegativeHits)
	}
	// Unknown platforms are negative-cached too.
	if _, err := c.Closure("freebsd", "nginx"); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("platform miss: %v", err)
	}
	before := hits.Load()
	if _, err := c.Closure("freebsd", "nginx"); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("repeated platform miss: %v", err)
	}
	if hits.Load() != before {
		t.Error("repeated platform miss hit the service")
	}
}

func TestNegativeCacheBounded(t *testing.T) {
	n := newNegCache(2)
	n.put("a", ErrUnknownPackage)
	n.put("b", ErrUnknownPackage)
	n.put("c", ErrUnknownPackage)
	if n.len() != 2 {
		t.Errorf("len = %d, want 2", n.len())
	}
	if _, ok := n.get("a"); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := n.get("c"); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCircuitBreaker(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	var hits atomic.Int64
	inner := Handler(DefaultCatalog())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if down.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.Attempts = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 50 * time.Millisecond
	c := NewClientConfig(srv.URL, cfg)

	// Two failures open the breaker.
	for _, name := range []string{"nginx", "git"} {
		if _, err := c.Lookup("ubuntu", name); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("lookup %s: %v", name, err)
		}
	}
	if st := c.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", st.BreakerOpens)
	}
	// While open: fail fast, no wire traffic.
	before := hits.Load()
	if _, err := c.Lookup("ubuntu", "vim"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker lookup: %v", err)
	}
	if hits.Load() != before {
		t.Error("open breaker let a request through")
	}
	if st := c.Stats(); st.BreakerFastFails != 1 {
		t.Errorf("fast fails = %d, want 1", st.BreakerFastFails)
	}
	// After the cooldown the half-open trial reaches a recovered service.
	down.Store(false)
	time.Sleep(60 * time.Millisecond)
	p, err := c.Lookup("ubuntu", "vim")
	if err != nil || p.Name != "vim" {
		t.Fatalf("post-recovery lookup: %v, %v", p, err)
	}
}

func TestSnapshotFallback(t *testing.T) {
	// Write a snapshot of the default catalog, then point the client at a
	// dead server: everything the snapshot knows must still resolve.
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := WriteSnapshotFile(DefaultCatalog(), path); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(DefaultCatalog()))
	srv.Close() // dead on arrival

	cfg := fastCfg()
	cfg.Attempts = 2
	c := NewClientConfig(srv.URL, cfg)
	if _, err := c.Lookup("ubuntu", "nginx"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead server without snapshot: %v", err)
	}
	if err := c.AttachSnapshot(path); err != nil {
		t.Fatal(err)
	}
	p, err := c.Lookup("ubuntu", "git")
	if err != nil {
		t.Fatalf("snapshot lookup: %v", err)
	}
	if p.Name != "git" || len(p.Files) < 500 {
		t.Errorf("snapshot package damaged: name=%q files=%d", p.Name, len(p.Files))
	}
	ps, err := c.Closure("ubuntu", "nginx")
	if err != nil || len(ps) != 2 {
		t.Fatalf("snapshot closure: %v, %v", ps, err)
	}
	rd, err := c.ReverseDependents("ubuntu", "perl")
	if err != nil || len(rd) == 0 {
		t.Fatalf("snapshot revdeps: %v, %v", rd, err)
	}
	// A package the snapshot doesn't know stays an infrastructure error,
	// not a fabricated "unknown package".
	if _, err := c.Lookup("ubuntu", "no-such-pkg"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("snapshot miss: %v", err)
	}
	if st := c.Stats(); st.SnapshotServes < 3 {
		t.Errorf("snapshot serves = %d, want >= 3", st.SnapshotServes)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteSnapshotFile(DefaultCatalog(), path); err != nil {
		t.Fatal(err)
	}
	cat, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := DefaultCatalog().Lookup("ubuntu", "git")
	got, err := cat.Lookup("ubuntu", "git")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != orig.Version || len(got.Files) != len(orig.Files) || len(got.Dirs) != len(orig.Dirs) {
		t.Errorf("round-trip damaged git: %d/%d files, %d/%d dirs",
			len(got.Files), len(orig.Files), len(got.Dirs), len(orig.Dirs))
	}
	// A torn snapshot is a load-time error, never a half-loaded catalog.
	if err := faults.TruncateFile(path, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Error("torn snapshot loaded")
	}
}

func TestContextCancellation(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	c := NewClientConfig(srv.URL, fastCfg())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.LookupContext(ctx, "ubuntu", "nginx")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
		if errors.Is(err, ErrUnavailable) {
			t.Error("caller cancellation misclassified as a service outage")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock the lookup")
	}
}

func TestOversizeResponseRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("[" + strings.Repeat(`"x",`, 4096) + `"x"]`))
	}))
	defer srv.Close()
	cfg := fastCfg()
	cfg.Attempts = 2
	cfg.MaxResponseBytes = 1024
	c := NewClientConfig(srv.URL, cfg)
	if _, err := c.Lookup("ubuntu", "nginx"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("oversized response: %v, want ErrUnavailable", err)
	}
}
