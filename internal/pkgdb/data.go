package pkgdb

import "fmt"

// spec is a compact description of a synthetic package expanded into a full
// listing by build.
type spec struct {
	name    string
	version string
	deps    []string
	files   []string // notable files (configuration, etc.), absolute paths
	sbin    []string // daemon binaries under /usr/sbin
	bin     []string // user binaries under /usr/bin
	doc     int      // generated files under /usr/share/doc/<name>/
	lib     int      // generated files under /usr/lib/<name>/
}

func (s spec) build() *Package {
	p := &Package{Name: s.name, Version: s.version, Depends: s.deps}
	p.Files = append(p.Files, s.files...)
	for _, b := range s.sbin {
		p.Files = append(p.Files, "/usr/sbin/"+b)
	}
	for _, b := range s.bin {
		p.Files = append(p.Files, "/usr/bin/"+b)
	}
	for i := 0; i < s.doc; i++ {
		p.Files = append(p.Files, fmt.Sprintf("/usr/share/doc/%s/doc%03d", s.name, i))
	}
	for i := 0; i < s.lib; i++ {
		p.Files = append(p.Files, fmt.Sprintf("/usr/lib/%s/lib%03d", s.name, i))
	}
	return p
}

// ubuntuSpecs is the synthetic catalog for the "ubuntu" platform. File
// counts are sized like the real packages the paper's benchmarks install
// (tens to hundreds of files; git exceeds 500, as the paper notes), and the
// dependency shapes reproduce the behaviors the paper discusses — notably
// golang-go depending on perl (section 2.2, figure 3c).
var ubuntuSpecs = []spec{
	{name: "apache2", version: "2.4.7-1ubuntu4", deps: []string{"apache2-bin", "apache2-data"},
		files: []string{
			"/etc/apache2/apache2.conf",
			"/etc/apache2/ports.conf",
			"/etc/apache2/envvars",
			"/etc/apache2/magic",
			"/etc/apache2/sites-available/000-default.conf",
			"/etc/apache2/sites-available/default-ssl.conf",
			"/etc/apache2/mods-available/alias.conf",
			"/etc/apache2/mods-available/dir.conf",
			"/etc/apache2/mods-available/mime.conf",
			"/etc/apache2/conf-available/charset.conf",
			"/etc/apache2/conf-available/security.conf",
		},
		sbin: []string{"a2ensite", "a2dissite", "apache2ctl"}, doc: 25},
	{name: "apache2-bin", version: "2.4.7-1ubuntu4",
		sbin: []string{"apache2"}, lib: 85, doc: 10},
	{name: "apache2-data", version: "2.4.7-1ubuntu4", doc: 55},
	{name: "nginx", version: "1.4.6-1ubuntu3", deps: []string{"nginx-common"},
		files: []string{"/etc/nginx/sites-available/default"},
		sbin:  []string{"nginx"}, doc: 15, lib: 30},
	{name: "nginx-common", version: "1.4.6-1ubuntu3",
		files: []string{
			"/etc/nginx/nginx.conf",
			"/etc/nginx/mime.types",
			"/etc/nginx/fastcgi_params",
			"/etc/nginx/proxy_params",
			"/etc/nginx/koi-utf",
			"/etc/nginx/koi-win",
			"/etc/nginx/win-utf",
		}, doc: 12},
	{name: "ntp", version: "4.2.6.p5", deps: []string{"libopts25"},
		files: []string{"/etc/ntp.conf"},
		sbin:  []string{"ntpd"}, bin: []string{"ntpq", "ntpdc"}, doc: 20},
	{name: "libopts25", version: "5.18-2", lib: 8},
	{name: "bind9", version: "9.9.5", deps: []string{"bind9utils"},
		files: []string{
			"/etc/bind/named.conf",
			"/etc/bind/named.conf.options",
			"/etc/bind/named.conf.local",
			"/etc/bind/named.conf.default-zones",
			"/etc/bind/db.local",
			"/etc/bind/db.root",
			"/etc/bind/rndc.key",
			"/etc/bind/zones.rfc1918",
		},
		sbin: []string{"named", "rndc"}, doc: 30, lib: 25},
	{name: "bind9utils", version: "9.9.5", bin: []string{"dnssec-keygen", "named-checkconf", "named-checkzone"}, doc: 8},
	{name: "clamav", version: "0.98.7", deps: []string{"clamav-base", "libclamav6"},
		files: []string{"/etc/clamav/clamd.conf", "/etc/clamav/freshclam.conf"},
		bin:   []string{"clamscan", "freshclam", "sigtool"}, doc: 18},
	{name: "clamav-base", version: "0.98.7", doc: 22},
	{name: "libclamav6", version: "0.98.7", lib: 40},
	{name: "amavisd-new", version: "2.7.1", deps: []string{"perl", "spamassassin"},
		files: []string{
			"/etc/amavis/conf.d/05-node_id",
			"/etc/amavis/conf.d/15-content_filter_mode",
			"/etc/amavis/conf.d/20-debian_defaults",
			"/etc/amavis/conf.d/50-user",
		},
		sbin: []string{"amavisd-new"}, doc: 35, lib: 30},
	{name: "spamassassin", version: "3.4.0", deps: []string{"perl"},
		files: []string{"/etc/spamassassin/local.cf", "/etc/spamassassin/init.pre"},
		bin:   []string{"spamassassin", "sa-learn"}, doc: 25, lib: 60},
	{name: "postfix", version: "2.11.0",
		files: []string{"/etc/postfix/main.cf", "/etc/postfix/master.cf"},
		sbin:  []string{"postfix", "postconf"}, doc: 30, lib: 45},
	{name: "rsyslog", version: "7.4.4",
		files: []string{"/etc/rsyslog.conf", "/etc/rsyslog.d/50-default.conf"},
		sbin:  []string{"rsyslogd"}, doc: 15, lib: 20},
	{name: "xinetd", version: "2.3.15",
		files: []string{
			"/etc/xinetd.conf",
			"/etc/xinetd.d/daytime",
			"/etc/xinetd.d/echo",
			"/etc/xinetd.d/time",
		},
		sbin: []string{"xinetd"}, doc: 10},
	{name: "monit", version: "5.6-2",
		files: []string{"/etc/monit/monitrc"},
		bin:   []string{"monit"}, doc: 12},
	{name: "logstash", version: "1.4.2", deps: []string{"openjdk-7-jre-headless"},
		files: []string{
			"/opt/logstash/bin/logstash",
			"/opt/logstash/bin/plugin",
			"/etc/logstash/conf.d/placeholder",
		}, doc: 20, lib: 90},
	{name: "openjdk-7-jre-headless", version: "7u51",
		bin: []string{"java", "keytool"}, lib: 340, doc: 15},
	{name: "tomcat7", version: "7.0.52", deps: []string{"openjdk-7-jre-headless"},
		files: []string{
			"/etc/tomcat7/server.xml",
			"/etc/tomcat7/web.xml",
			"/etc/tomcat7/tomcat-users.xml",
			"/etc/tomcat7/context.xml",
		}, doc: 18, lib: 110},
	{name: "ngircd", version: "20.3",
		files: []string{"/etc/ngircd/ngircd.conf", "/etc/ngircd/ngircd.motd"},
		sbin:  []string{"ngircd"}, doc: 9},
	{name: "mysql-server", version: "5.5.35", deps: []string{"mysql-common", "mysql-client"},
		files: []string{"/etc/mysql/my.cnf", "/etc/mysql/debian.cnf"},
		sbin:  []string{"mysqld"}, doc: 30, lib: 70},
	{name: "mysql-common", version: "5.5.35", files: []string{"/etc/mysql/conf.d/mysqld_safe_syslog.cnf"}, doc: 5},
	{name: "mysql-client", version: "5.5.35", bin: []string{"mysql", "mysqldump"}, doc: 12, lib: 25},
	{name: "php5", version: "5.5.9", deps: []string{"libapache2-mod-php5"},
		files: []string{"/etc/php5/cli/php.ini"}, bin: []string{"php"}, doc: 15},
	{name: "libapache2-mod-php5", version: "5.5.9",
		files: []string{"/etc/php5/apache2/php.ini", "/etc/php5/apache2/conf.d/module.ini"},
		lib:   35},
	{name: "openssh-server", version: "6.6p1", deps: []string{"openssh-client"},
		files: []string{"/etc/ssh/sshd_config"},
		sbin:  []string{"sshd"}, doc: 14},
	{name: "openssh-client", version: "6.6p1",
		files: []string{"/etc/ssh/ssh_config"},
		bin:   []string{"ssh", "scp", "ssh-keygen"}, doc: 16, lib: 10},
	// The paper's section 2.2 quirk: on Ubuntu 14.04 the Go compiler
	// depends on Perl, so "remove perl, install golang-go" is unrealizable.
	{name: "golang-go", version: "1.2.1", deps: []string{"perl"},
		bin: []string{"go", "gofmt"}, lib: 120, doc: 10},
	{name: "perl", version: "5.18.2",
		bin: []string{"perl", "perldoc", "cpan"}, lib: 150, doc: 20},
	{name: "git", version: "1.9.1", deps: []string{"perl"},
		files: []string{"/etc/bash_completion.d/git"},
		bin:   []string{"git", "git-shell", "git-upload-pack"}, lib: 480, doc: 30},
	{name: "vim", version: "7.4.052", files: []string{"/etc/vim/vimrc"}, bin: []string{"vim", "vimtutor"}, doc: 20, lib: 45},
	{name: "m4", version: "1.4.17", bin: []string{"m4"}, doc: 6},
	{name: "make", version: "3.81", bin: []string{"make"}, doc: 8},
	{name: "gcc", version: "4.8.2", deps: []string{"make"},
		bin: []string{"gcc", "cpp", "gcov"}, lib: 95, doc: 12},
	{name: "ocaml", version: "4.01.0", deps: []string{"m4"},
		bin: []string{"ocaml", "ocamlc", "ocamlopt"}, lib: 130, doc: 15},
	{name: "curl", version: "7.35.0", bin: []string{"curl"}, doc: 8, lib: 12},
	{name: "wget", version: "1.15", files: []string{"/etc/wgetrc"}, bin: []string{"wget"}, doc: 6},
	{name: "cron", version: "3.0pl1", files: []string{"/etc/crontab"}, sbin: []string{"cron"}, bin: []string{"crontab"}, doc: 7},
}

// centosSpecs is a reduced catalog for the "centos" platform with Red
// Hat-style package names, demonstrating the paper's platform flag.
var centosSpecs = []spec{
	{name: "httpd", version: "2.4.6-40.el7", deps: []string{"httpd-tools"},
		files: []string{
			"/etc/httpd/conf/httpd.conf",
			"/etc/httpd/conf.d/welcome.conf",
			"/etc/httpd/conf.d/autoindex.conf",
		},
		sbin: []string{"httpd", "apachectl"}, doc: 30, lib: 60},
	{name: "httpd-tools", version: "2.4.6-40.el7", bin: []string{"ab", "htpasswd"}, doc: 8},
	{name: "nginx", version: "1.6.3", files: []string{"/etc/nginx/nginx.conf", "/etc/nginx/mime.types"},
		sbin: []string{"nginx"}, doc: 15, lib: 30},
	{name: "ntp", version: "4.2.6p5", files: []string{"/etc/ntp.conf"}, sbin: []string{"ntpd"}, doc: 18},
	{name: "bind", version: "9.9.4", files: []string{"/etc/named.conf", "/etc/named.rfc1912.zones"},
		sbin: []string{"named"}, doc: 25, lib: 22},
	{name: "rsyslog", version: "7.4.7", files: []string{"/etc/rsyslog.conf"}, sbin: []string{"rsyslogd"}, doc: 12, lib: 18},
	{name: "xinetd", version: "2.3.15", files: []string{"/etc/xinetd.conf", "/etc/xinetd.d/daytime"}, sbin: []string{"xinetd"}, doc: 9},
	{name: "monit", version: "5.14", files: []string{"/etc/monitrc"}, bin: []string{"monit"}, doc: 10},
	{name: "clamav", version: "0.99", files: []string{"/etc/clamd.conf", "/etc/freshclam.conf"},
		bin: []string{"clamscan", "freshclam"}, doc: 16, lib: 38},
	{name: "perl", version: "5.16.3", bin: []string{"perl"}, lib: 140, doc: 18},
	{name: "golang", version: "1.4.2", deps: []string{"perl"}, bin: []string{"go", "gofmt"}, lib: 115, doc: 9},
	{name: "git", version: "1.8.3", deps: []string{"perl"}, bin: []string{"git"}, lib: 460, doc: 25},
	{name: "openssh-server", version: "6.6.1p1", files: []string{"/etc/ssh/sshd_config"}, sbin: []string{"sshd"}, doc: 12},
	{name: "vim-enhanced", version: "7.4.160", files: []string{"/etc/vimrc"}, bin: []string{"vim"}, doc: 15, lib: 40},
	{name: "cronie", version: "1.4.11", files: []string{"/etc/crontab"}, sbin: []string{"crond"}, bin: []string{"crontab"}, doc: 6},
}

// DefaultCatalog builds the synthetic catalog with the "ubuntu" and
// "centos" platforms used throughout the benchmarks and examples.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	for _, s := range ubuntuSpecs {
		c.Add("ubuntu", s.build())
	}
	for _, s := range centosSpecs {
		c.Add("centos", s.build())
	}
	return c
}
