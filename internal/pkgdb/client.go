package pkgdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qcache"
)

// Default client hardening parameters. The listing service is network
// infrastructure the paper treats as infallible (§5's caching server); a
// production analysis cannot, so every request runs under a per-attempt
// timeout, transient failures retry with backoff, and a clearly-down
// service trips a circuit breaker instead of wedging the worker pool.
const (
	// DefaultAttemptTimeout bounds one HTTP attempt.
	DefaultAttemptTimeout = 5 * time.Second
	// DefaultAttempts is the total tries per request (1 + retries).
	DefaultAttempts = 4
	// DefaultRetryBackoff is the base backoff before the first retry;
	// subsequent retries double it (with jitter) up to DefaultMaxBackoff.
	DefaultRetryBackoff = 50 * time.Millisecond
	// DefaultMaxBackoff caps a single backoff sleep.
	DefaultMaxBackoff = 2 * time.Second
	// DefaultBreakerThreshold is the consecutive-failure count that opens
	// the circuit breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker fails fast
	// before allowing a half-open trial request.
	DefaultBreakerCooldown = 10 * time.Second
	// DefaultMaxResponseBytes bounds a response body; a bigger body is
	// treated as corrupt (the largest legitimate listing is well under a
	// megabyte), so a misbehaving server cannot balloon client memory.
	DefaultMaxResponseBytes = 8 << 20
	// DefaultNegativeCacheCap bounds the negative cache (conclusive
	// unknown-package/platform answers remembered per client).
	DefaultNegativeCacheCap = 1024
)

// drainLimit bounds how much of an already-consumed body the client reads
// while draining for connection reuse.
const drainLimit = 256 << 10

// ClientConfig tunes the hardened client. The zero value means "all
// defaults"; any field left zero takes its Default* constant.
type ClientConfig struct {
	// HTTPClient performs requests; nil means a client with sane dial,
	// TLS, and response-header timeouts (NOT http.DefaultClient, which
	// has none and can hang forever on a wedged server).
	HTTPClient *http.Client
	// AttemptTimeout bounds each individual HTTP attempt; < 0 disables.
	AttemptTimeout time.Duration
	// Attempts is the total number of tries per request; < 0 means 1.
	Attempts int
	// RetryBackoff is the base backoff between attempts (exponential,
	// jittered); MaxBackoff caps a single sleep.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// BreakerThreshold consecutive failures open the circuit breaker for
	// BreakerCooldown; < 0 disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxResponseBytes bounds a response body; < 0 disables the bound.
	MaxResponseBytes int64
	// NegativeCacheCap bounds the negative cache; < 0 disables it.
	NegativeCacheCap int
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = defaultHTTPClient()
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.Attempts == 0 {
		cfg.Attempts = DefaultAttempts
	}
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.MaxResponseBytes == 0 {
		cfg.MaxResponseBytes = DefaultMaxResponseBytes
	}
	if cfg.NegativeCacheCap == 0 {
		cfg.NegativeCacheCap = DefaultNegativeCacheCap
	}
	return cfg
}

// defaultHTTPClient builds the client used when ClientConfig.HTTPClient is
// nil: every phase of a request (dial, TLS, response headers, total) is
// bounded, unlike http.DefaultClient.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second, // hard ceiling; per-attempt contexts bind first
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 10 * time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   8,
		},
	}
}

// ClientStats counts the client's interactions with the listing service
// and its fallbacks.
type ClientStats struct {
	Attempts         int64 // HTTP attempts issued (including retries)
	Retries          int64 // attempts beyond the first for a request
	NegativeHits     int64 // queries answered by the negative cache
	SnapshotServes   int64 // queries answered by the snapshot fallback
	BreakerFastFails int64 // queries refused by an open breaker
	BreakerOpens     int64 // times the breaker (re-)opened
}

// Client is a Provider backed by a package-listing service (see Handler).
// Results are cached for the lifetime of the client, mirroring the paper's
// server-side cache: the underlying package tools take seconds per query,
// so reported analysis times exclude them. Concurrent cache misses for the
// same key are coalesced into a single fetch, so parallel manifest checks
// that resolve overlapping packages do not stampede the listing service.
//
// The client is hardened against a flaky or down service: requests run
// under per-attempt timeouts and honor the caller's context, transient
// failures (network errors, 5xx, torn or corrupt JSON bodies) retry with
// jittered exponential backoff — all requests are idempotent GETs — and a
// consistently failing service trips a circuit breaker. Degradation order
// for each query: live service (with retries) → in-memory cache (entries
// never expire, so previously fetched listings keep serving during an
// outage) → attached catalog snapshot (AttachSnapshot) → a typed
// ErrUnavailable. Conclusive negative answers are cached in a bounded
// negative cache so repeated misses do not hammer the service.
type Client struct {
	base string
	http *http.Client
	cfg  ClientConfig

	mu       sync.Mutex
	pkgs     map[string]*Package   // platform/name → listing
	lists    map[string][]*Package // kind/platform/name → closure or revdeps
	snapshot *Catalog              // optional on-disk fallback catalog

	neg     *negCache
	breaker *breaker

	attempts         atomic.Int64
	retries          atomic.Int64
	negativeHits     atomic.Int64
	snapshotServes   atomic.Int64
	breakerFastFails atomic.Int64
	breakerOpens     atomic.Int64

	sleep func(ctx context.Context, d time.Duration) error // test hook

	pkgFlight  qcache.Group[string, *Package]
	listFlight qcache.Group[string, []*Package]
}

// NewClient creates a client for the service at base (e.g.
// "http://localhost:8373") with default hardening. If httpClient is nil, a
// client with sane timeouts is used — never http.DefaultClient, whose
// missing timeout turns one hung server into a hung analysis.
func NewClient(base string, httpClient *http.Client) *Client {
	return NewClientConfig(base, ClientConfig{HTTPClient: httpClient})
}

// NewClientConfig creates a client with explicit hardening parameters.
func NewClientConfig(base string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		base:    strings.TrimRight(base, "/"),
		http:    cfg.HTTPClient,
		cfg:     cfg,
		pkgs:    make(map[string]*Package),
		lists:   make(map[string][]*Package),
		neg:     newNegCache(cfg.NegativeCacheCap),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		sleep:   sleepCtx,
	}
}

// AttachSnapshot loads a catalog snapshot (see WriteSnapshot) from path
// and serves it as the fallback of last resort: when the live service and
// the in-memory cache cannot answer a query, the snapshot does, so an
// analysis degrades to yesterday's catalog instead of failing.
func (c *Client) AttachSnapshot(path string) error {
	cat, err := ReadSnapshotFile(path)
	if err != nil {
		return err
	}
	c.AttachSnapshotCatalog(cat)
	return nil
}

// AttachSnapshotCatalog installs cat as the fallback catalog; nil detaches.
func (c *Client) AttachSnapshotCatalog(cat *Catalog) {
	c.mu.Lock()
	c.snapshot = cat
	c.mu.Unlock()
}

// BreakerOpen reports whether the circuit breaker is currently refusing
// requests: the service has failed consecutively past the threshold and
// the cooldown window has not yet passed. Health probes (a daemon's
// /readyz) use it to reflect listing-service availability.
func (c *Client) BreakerOpen() bool { return !c.breaker.allow() }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Attempts:         c.attempts.Load(),
		Retries:          c.retries.Load(),
		NegativeHits:     c.negativeHits.Load(),
		SnapshotServes:   c.snapshotServes.Load(),
		BreakerFastFails: c.breakerFastFails.Load(),
		BreakerOpens:     c.breakerOpens.Load(),
	}
}

// terminalError marks an attempt outcome that retrying cannot change: the
// service answered conclusively (404, unexpected 4xx). The wrapped error
// is what the caller sees.
type terminalError struct{ err error }

func (t *terminalError) Error() string { return t.err.Error() }
func (t *terminalError) Unwrap() error { return t.err }

// fetchJSON performs a GET with the client's full retry discipline and
// decodes the body into a fresh T per attempt (a torn body must not leave
// half-decoded fields behind for the retry).
func fetchJSON[T any](c *Client, ctx context.Context, path string) (T, error) {
	var zero T
	if !c.breaker.allow() {
		c.breakerFastFails.Add(1)
		return zero, fmt.Errorf("%w: circuit breaker open for %s", ErrUnavailable, c.base)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if err := c.sleep(ctx, backoffDelay(c.cfg.RetryBackoff, c.cfg.MaxBackoff, attempt)); err != nil {
				lastErr = err
				break
			}
		}
		v, err := attemptJSON[T](c, ctx, path)
		if err == nil {
			c.breaker.success()
			return v, nil
		}
		var term *terminalError
		if errors.As(err, &term) {
			// The service answered conclusively; this is not an outage.
			c.breaker.success()
			return zero, term.err
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the caller is gone; do not burn the retry budget
		}
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Caller cancellation is not the service's fault: report it as
		// such and leave the breaker alone.
		return zero, fmt.Errorf("pkgdb client: GET %s: %w", path, ctxErr)
	}
	if c.breaker.failure() {
		c.breakerOpens.Add(1)
	}
	return zero, fmt.Errorf("%w: GET %s: %v", ErrUnavailable, path, lastErr)
}

// attemptJSON is one bounded HTTP attempt. Non-terminal errors are
// retryable: network failures, 5xx/429 statuses, oversized, truncated or
// corrupt bodies — for an idempotent GET, retrying any of them is safe.
func attemptJSON[T any](c *Client, ctx context.Context, path string) (T, error) {
	var zero T
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return zero, &terminalError{fmt.Errorf("pkgdb client: %w", err)}
	}
	c.attempts.Add(1)
	resp, err := c.http.Do(req)
	if err != nil {
		return zero, fmt.Errorf("pkgdb client: %w", err)
	}
	defer drainClose(resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		limit := c.cfg.MaxResponseBytes
		var r io.Reader = resp.Body
		if limit > 0 {
			r = io.LimitReader(resp.Body, limit+1)
		}
		body, err := io.ReadAll(r)
		if err != nil {
			return zero, fmt.Errorf("pkgdb client: reading %s: %w", path, err)
		}
		if limit > 0 && int64(len(body)) > limit {
			return zero, fmt.Errorf("pkgdb client: response for %s exceeds %d bytes", path, limit)
		}
		var v T
		if err := json.Unmarshal(body, &v); err != nil {
			return zero, fmt.Errorf("pkgdb client: corrupt response for %s: %w", path, err)
		}
		return v, nil
	case resp.StatusCode == http.StatusNotFound:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		msg := strings.TrimSpace(string(body))
		if strings.Contains(msg, "platform") {
			return zero, &terminalError{fmt.Errorf("%w: %s", ErrUnknownPlatform, msg)}
		}
		return zero, &terminalError{fmt.Errorf("%w: %s", ErrUnknownPackage, msg)}
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		return zero, fmt.Errorf("pkgdb client: retryable status %s", resp.Status)
	default:
		return zero, &terminalError{fmt.Errorf("pkgdb client: unexpected status %s", resp.Status)}
	}
}

// drainClose discards what remains of a response body (bounded) and closes
// it, so the underlying connection returns to the keep-alive pool instead
// of being torn down.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, drainLimit))
	_ = body.Close()
}

// conclusive reports whether err is a conclusive negative answer (as
// opposed to an infrastructure failure).
func conclusive(err error) bool {
	return errors.Is(err, ErrUnknownPackage) || errors.Is(err, ErrUnknownPlatform)
}

// Lookup implements Provider.
func (c *Client) Lookup(platform, name string) (*Package, error) {
	return c.LookupContext(context.Background(), platform, name)
}

// LookupContext is Lookup under a caller context.
func (c *Client) LookupContext(ctx context.Context, platform, name string) (*Package, error) {
	key := platform + "/" + name
	c.mu.Lock()
	if p, ok := c.pkgs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	if err, ok := c.neg.get(key); ok {
		c.negativeHits.Add(1)
		return nil, err
	}
	p, err, _ := c.pkgFlight.Do(key, func() (*Package, error) {
		v, err := fetchJSON[Package](c, ctx, "/v1/"+url.PathEscape(platform)+"/package/"+url.PathEscape(name))
		if err != nil {
			if conclusive(err) {
				c.neg.put(key, err)
				return nil, err
			}
			if p, ok := c.snapshotPkg(platform, name); ok {
				return p, nil
			}
			return nil, err
		}
		p := &v
		c.mu.Lock()
		c.pkgs[key] = p
		c.mu.Unlock()
		return p, nil
	})
	return p, err
}

func (c *Client) list(ctx context.Context, kind, platform, name string) ([]*Package, error) {
	key := kind + "/" + platform + "/" + name
	c.mu.Lock()
	if ps, ok := c.lists[key]; ok {
		c.mu.Unlock()
		return ps, nil
	}
	c.mu.Unlock()
	if err, ok := c.neg.get(key); ok {
		c.negativeHits.Add(1)
		return nil, err
	}
	ps, err, _ := c.listFlight.Do(key, func() ([]*Package, error) {
		v, err := fetchJSON[[]*Package](c, ctx, "/v1/"+url.PathEscape(platform)+"/"+kind+"/"+url.PathEscape(name))
		if err != nil {
			if conclusive(err) {
				c.neg.put(key, err)
				return nil, err
			}
			if ps, ok := c.snapshotList(kind, platform, name); ok {
				return ps, nil
			}
			return nil, err
		}
		c.mu.Lock()
		c.lists[key] = v
		c.mu.Unlock()
		return v, nil
	})
	return ps, err
}

// snapshotPkg answers a package lookup from the attached snapshot, if one
// is attached and knows the package. Snapshot answers are deliberately not
// written into the in-memory cache: once the live service recovers, fresh
// data wins again.
func (c *Client) snapshotPkg(platform, name string) (*Package, bool) {
	c.mu.Lock()
	snap := c.snapshot
	c.mu.Unlock()
	if snap == nil {
		return nil, false
	}
	p, err := snap.Lookup(platform, name)
	if err != nil {
		return nil, false
	}
	c.snapshotServes.Add(1)
	return p, true
}

// snapshotList answers a closure/revdeps query from the attached snapshot.
func (c *Client) snapshotList(kind, platform, name string) ([]*Package, bool) {
	c.mu.Lock()
	snap := c.snapshot
	c.mu.Unlock()
	if snap == nil {
		return nil, false
	}
	var ps []*Package
	var err error
	switch kind {
	case "closure":
		ps, err = snap.Closure(platform, name)
	case "revdeps":
		ps, err = snap.ReverseDependents(platform, name)
	default:
		return nil, false
	}
	if err != nil {
		return nil, false
	}
	c.snapshotServes.Add(1)
	return ps, true
}

// Closure implements Provider.
func (c *Client) Closure(platform, name string) ([]*Package, error) {
	return c.ClosureContext(context.Background(), platform, name)
}

// ClosureContext is Closure under a caller context.
func (c *Client) ClosureContext(ctx context.Context, platform, name string) ([]*Package, error) {
	return c.list(ctx, "closure", platform, name)
}

// ReverseDependents implements Provider.
func (c *Client) ReverseDependents(platform, name string) ([]*Package, error) {
	return c.ReverseDependentsContext(context.Background(), platform, name)
}

// ReverseDependentsContext is ReverseDependents under a caller context.
func (c *Client) ReverseDependentsContext(ctx context.Context, platform, name string) ([]*Package, error) {
	return c.list(ctx, "revdeps", platform, name)
}

var _ ContextProvider = (*Client)(nil)
