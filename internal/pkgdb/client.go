package pkgdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/qcache"
)

// Client is a Provider backed by a package-listing service (see Handler).
// Results are cached for the lifetime of the client, mirroring the paper's
// server-side cache: the underlying package tools take seconds per query,
// so reported analysis times exclude them. Concurrent cache misses for the
// same key are coalesced into a single fetch, so parallel manifest checks
// that resolve overlapping packages do not stampede the listing service.
type Client struct {
	base string
	http *http.Client

	mu    sync.Mutex
	pkgs  map[string]*Package   // platform/name → listing
	lists map[string][]*Package // kind/platform/name → closure or revdeps

	pkgFlight  qcache.Group[string, *Package]
	listFlight qcache.Group[string, []*Package]
}

// NewClient creates a client for the service at base (e.g.
// "http://localhost:8373"). If httpClient is nil, http.DefaultClient is
// used.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(base, "/"),
		http:  httpClient,
		pkgs:  make(map[string]*Package),
		lists: make(map[string][]*Package),
	}
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("pkgdb client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		msg := strings.TrimSpace(string(body))
		if strings.Contains(msg, "platform") {
			return fmt.Errorf("%w: %s", ErrUnknownPlatform, msg)
		}
		return fmt.Errorf("%w: %s", ErrUnknownPackage, msg)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pkgdb client: unexpected status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Lookup implements Provider.
func (c *Client) Lookup(platform, name string) (*Package, error) {
	key := platform + "/" + name
	c.mu.Lock()
	if p, ok := c.pkgs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err, _ := c.pkgFlight.Do(key, func() (*Package, error) {
		var p Package
		if err := c.get("/v1/"+url.PathEscape(platform)+"/package/"+url.PathEscape(name), &p); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.pkgs[key] = &p
		c.mu.Unlock()
		return &p, nil
	})
	return p, err
}

func (c *Client) list(kind, platform, name string) ([]*Package, error) {
	key := kind + "/" + platform + "/" + name
	c.mu.Lock()
	if ps, ok := c.lists[key]; ok {
		c.mu.Unlock()
		return ps, nil
	}
	c.mu.Unlock()
	ps, err, _ := c.listFlight.Do(key, func() ([]*Package, error) {
		var ps []*Package
		if err := c.get("/v1/"+url.PathEscape(platform)+"/"+kind+"/"+url.PathEscape(name), &ps); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.lists[key] = ps
		c.mu.Unlock()
		return ps, nil
	})
	return ps, err
}

// Closure implements Provider.
func (c *Client) Closure(platform, name string) ([]*Package, error) {
	return c.list("closure", platform, name)
}

// ReverseDependents implements Provider.
func (c *Client) ReverseDependents(platform, name string) ([]*Package, error) {
	return c.list("revdeps", platform, name)
}
