package pkgdb

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fs"
)

func TestCatalogLookup(t *testing.T) {
	c := DefaultCatalog()
	p, err := c.Lookup("ubuntu", "apache2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "apache2" || p.Version == "" {
		t.Errorf("bad package: %+v", p)
	}
	found := false
	for _, f := range p.Files {
		if f == "/etc/apache2/sites-available/000-default.conf" {
			found = true
		}
	}
	if !found {
		t.Error("apache2 missing its default site config")
	}
	if _, err := c.Lookup("ubuntu", "no-such-pkg"); !errors.Is(err, ErrUnknownPackage) {
		t.Errorf("want ErrUnknownPackage, got %v", err)
	}
	if _, err := c.Lookup("freebsd", "apache2"); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("want ErrUnknownPlatform, got %v", err)
	}
}

func TestDirsNormalized(t *testing.T) {
	c := NewCatalog()
	c.Add("t", &Package{Name: "p", Files: []string{"/a/b/c/f", "/a/d"}})
	p, err := c.Lookup("t", "p")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"/a": true, "/a/b": true, "/a/b/c": true}
	if len(p.Dirs) != len(want) {
		t.Fatalf("Dirs = %v", p.Dirs)
	}
	for _, d := range p.Dirs {
		if !want[d] {
			t.Errorf("unexpected dir %q", d)
		}
	}
	// Root-first order: every ancestor precedes its descendants.
	pos := map[string]int{}
	for i, d := range p.Dirs {
		pos[d] = i
	}
	for _, d := range p.Dirs {
		for _, a := range fs.ParsePath(d).Ancestors() {
			if pos[string(a)] > pos[d] {
				t.Errorf("dir %q precedes its ancestor %q", d, a)
			}
		}
	}
}

func TestClosure(t *testing.T) {
	c := DefaultCatalog()
	ps, err := c.Closure("ubuntu", "logstash")
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, p := range ps {
		idx[p.Name] = i
	}
	jre, ok := idx["openjdk-7-jre-headless"]
	if !ok {
		t.Fatal("closure missing the JRE dependency")
	}
	if jre > idx["logstash"] {
		t.Error("dependency must precede dependent")
	}
	// golang-go pulls in perl (the fig-3c quirk).
	ps, err = c.Closure("ubuntu", "golang-go")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "perl" || ps[1].Name != "golang-go" {
		names := make([]string, len(ps))
		for i, p := range ps {
			names[i] = p.Name
		}
		t.Errorf("golang-go closure = %v", names)
	}
}

func TestReverseDependents(t *testing.T) {
	c := DefaultCatalog()
	ps, err := c.ReverseDependents("ubuntu", "perl")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	// Direct dependents...
	for _, want := range []string{"golang-go", "git", "spamassassin"} {
		if !names[want] {
			t.Errorf("revdeps(perl) missing %q", want)
		}
	}
	// ...and transitive ones (amavisd-new → spamassassin → perl).
	if !names["amavisd-new"] {
		t.Error("revdeps(perl) missing transitive dependent amavisd-new")
	}
	if names["perl"] {
		t.Error("revdeps must exclude the package itself")
	}
	// Removal order: a dependent appears before its own dependencies.
	pos := map[string]int{}
	for i, p := range ps {
		pos[p.Name] = i
	}
	if pos["amavisd-new"] > pos["spamassassin"] {
		t.Error("amavisd-new must be removed before spamassassin")
	}
}

func TestPlatformsAndPackages(t *testing.T) {
	c := DefaultCatalog()
	plats := c.Platforms()
	if len(plats) != 2 || plats[0] != "centos" || plats[1] != "ubuntu" {
		t.Errorf("Platforms = %v", plats)
	}
	names, err := c.Packages("ubuntu")
	if err != nil || len(names) < 20 {
		t.Errorf("Packages: %d, err=%v", len(names), err)
	}
	if _, err := c.Packages("freebsd"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestGitIsLarge(t *testing.T) {
	// The paper notes git has over 500 files; the synthetic catalog
	// preserves that scale for the pruning benchmarks.
	c := DefaultCatalog()
	p, err := c.Lookup("ubuntu", "git")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Files) < 500 {
		t.Errorf("git has %d files, want ≥ 500", len(p.Files))
	}
}

func TestServerAndClient(t *testing.T) {
	srv := httptest.NewServer(Handler(DefaultCatalog()))
	defer srv.Close()
	cl := NewClient(srv.URL, srv.Client())

	p, err := cl.Lookup("ubuntu", "nginx")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "nginx" || len(p.Files) == 0 || len(p.Dirs) == 0 {
		t.Errorf("bad package over HTTP: %+v", p)
	}
	// Cache: a second lookup must return the same pointer (no refetch).
	p2, err := cl.Lookup("ubuntu", "nginx")
	if err != nil {
		t.Fatal(err)
	}
	if p != p2 {
		t.Error("client did not cache")
	}

	ps, err := cl.Closure("ubuntu", "nginx")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "nginx-common" {
		t.Errorf("closure over HTTP: %v", ps)
	}

	rd, err := cl.ReverseDependents("ubuntu", "perl")
	if err != nil || len(rd) == 0 {
		t.Errorf("revdeps over HTTP: %v, %v", rd, err)
	}

	if _, err := cl.Lookup("ubuntu", "no-such"); !errors.Is(err, ErrUnknownPackage) {
		t.Errorf("missing package error: %v", err)
	}
	if _, err := cl.Lookup("freebsd", "nginx"); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("missing platform error: %v", err)
	}
}

func TestServerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(DefaultCatalog()))
	defer srv.Close()
	for _, path := range []string{
		"/v1/platforms",
		"/v1/ubuntu/packages",
		"/v1/ubuntu/package/vim",
		"/v1/ubuntu/closure/gcc",
		"/v1/ubuntu/revdeps/make",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %s", path, resp.Status)
		}
		resp.Body.Close()
	}
	// Unknown routes 404; POST is rejected.
	resp, _ := srv.Client().Get(srv.URL + "/v1/bogus")
	if resp.StatusCode != 404 {
		t.Errorf("bogus route: %s", resp.Status)
	}
	resp.Body.Close()
	resp, _ = srv.Client().Post(srv.URL+"/v1/platforms", "text/plain", strings.NewReader("x"))
	if resp.StatusCode != 405 {
		t.Errorf("POST: %s", resp.Status)
	}
	resp.Body.Close()
}

// Every package's dependencies must resolve within its own platform, so
// Closure never fails at resource-compile time.
func TestCatalogDependenciesResolve(t *testing.T) {
	c := DefaultCatalog()
	for _, plat := range c.Platforms() {
		names, err := c.Packages(plat)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if _, err := c.Closure(plat, n); err != nil {
				t.Errorf("%s/%s: %v", plat, n, err)
			}
		}
	}
}

// Concurrent cache misses for the same package must coalesce into a
// single fetch (stampede prevention); designed to run under -race.
func TestClientCoalescesConcurrentLookups(t *testing.T) {
	var fetches atomic.Int64
	inner := Handler(DefaultCatalog())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the in-flight window
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, nil)
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.Lookup("ubuntu", "ntp")
			if err != nil {
				t.Error(err)
				return
			}
			if p == nil || p.Name != "ntp" {
				t.Errorf("lookup = %+v", p)
			}
			if _, err := c.Closure("ubuntu", "ntp"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Ideally one /package fetch plus one /closure fetch; a caller that
	// misses the cache just as the in-flight call completes can legally
	// refetch, so allow a little slack — without coalescing this would be
	// 2*callers fetches.
	if n := fetches.Load(); n > 4 {
		t.Errorf("%d upstream fetches for %d concurrent callers, want <= 4", n, callers)
	}
	// Subsequent calls are pure cache hits.
	before := fetches.Load()
	if _, err := c.Lookup("ubuntu", "ntp"); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != before {
		t.Error("cached lookup hit the server")
	}
}
