package pkgdb

// Retry discipline for the hardened client: exponential backoff with full
// jitter, a consecutive-failure circuit breaker, and a bounded negative
// cache. All three exist to keep a flaky or down listing service from
// wedging an analysis run — the client retries what is safe to retry
// (idempotent GETs, retryable statuses), stops hammering a service that is
// clearly down, and never re-fetches a conclusive "no such package".

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// backoffDelay returns the sleep before retry attempt (attempt >= 1):
// base·2^(attempt-1) capped at max, with full jitter in [d/2, d] so
// synchronized workers retrying the same outage spread out instead of
// stampeding.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if max > 0 && d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breaker is a consecutive-failure circuit breaker. After threshold
// consecutive request failures the breaker opens for cooldown: requests
// fail fast without touching the network, so a down service costs one
// timeout per cooldown window instead of one per query. When the window
// passes the breaker is half-open — the next request runs as a trial, and
// its outcome closes or re-opens the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed (closed or half-open).
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.now().Before(b.openUntil)
}

// success closes the circuit.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records a request failure; it reports whether this failure
// opened (or re-opened) the circuit.
func (b *breaker) failure() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// negCache is a bounded FIFO cache of conclusive negative answers
// (ErrUnknownPackage / ErrUnknownPlatform). Positive listings are cached
// for the client's lifetime, so without this the asymmetry meant every
// repeated miss hit the service again.
type negCache struct {
	cap  int
	mu   sync.Mutex
	m    map[string]error
	fifo []string
}

func newNegCache(cap int) *negCache {
	return &negCache{cap: cap, m: make(map[string]error)}
}

func (n *negCache) get(key string) (error, bool) {
	if n.cap <= 0 {
		return nil, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	err, ok := n.m[key]
	return err, ok
}

func (n *negCache) put(key string, err error) {
	if n.cap <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.m[key]; dup {
		return
	}
	if len(n.fifo) >= n.cap {
		oldest := n.fifo[0]
		n.fifo = n.fifo[1:]
		delete(n.m, oldest)
	}
	n.m[key] = err
	n.fifo = append(n.fifo, key)
}

func (n *negCache) len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.m)
}
