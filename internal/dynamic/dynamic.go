// Package dynamic implements the dynamic determinacy baseline the paper
// compares against (section 4.5): install the resources in every valid
// permutation inside isolated environments and diff the resulting
// filesystems. The paper used Docker containers and reports that the
// approach took hours for manifests with fewer than ten resources; here
// the "containers" are simulated filesystems with a configurable
// per-resource application latency, preserving both the enumeration
// structure and the verdicts while serving as a test oracle for the static
// checker.
package dynamic

import (
	"time"

	"repro/internal/fs"
	"repro/internal/graph"
)

// Options configures the baseline.
type Options struct {
	// PerResourceLatency simulates the time to apply one resource in a
	// container (package installation takes seconds in reality). The
	// baseline's modeled cost is Permutations × Resources × this latency;
	// Run also sleeps that long per resource when Sleep is true.
	PerResourceLatency time.Duration
	Sleep              bool
	// MaxPermutations bounds the enumeration; 0 means exhaustive.
	MaxPermutations int
	// Inputs are the initial filesystems to test from; empty means a
	// single empty filesystem (a fresh container image).
	Inputs []fs.State
}

// Result reports the baseline's findings.
type Result struct {
	Deterministic bool
	// Input/OrderA/OrderB witness a divergence when non-deterministic.
	Input          fs.State
	OrderA, OrderB []graph.Node
	Permutations   int           // permutations actually executed
	Exhaustive     bool          // false when MaxPermutations truncated
	ModeledCost    time.Duration // Permutations × Resources × latency
}

// outcome is a container's final state.
type outcome struct {
	ok    bool
	state fs.State
	order []graph.Node
}

// Run applies every valid permutation of the resource graph to every
// input and compares outcomes.
func Run(g *graph.Graph[fs.Expr], opts Options) *Result {
	inputs := opts.Inputs
	if len(inputs) == 0 {
		inputs = []fs.State{fs.NewState()}
	}
	res := &Result{Deterministic: true, Exhaustive: true}
	for _, input := range inputs {
		var first *outcome
		complete := g.Linearizations(opts.MaxPermutations, func(order []graph.Node) bool {
			res.Permutations++
			st := input.Clone()
			ok := true
			for _, n := range order {
				if opts.Sleep && opts.PerResourceLatency > 0 {
					time.Sleep(opts.PerResourceLatency)
				}
				var applied fs.State
				applied, ok = fs.Eval(g.Label(n), st)
				if !ok {
					break
				}
				st = applied
			}
			out := &outcome{ok: ok, state: st, order: order}
			if first == nil {
				first = out
				return true
			}
			if differs(first, out) {
				res.Deterministic = false
				res.Input = input
				res.OrderA = first.order
				res.OrderB = out.order
				return false
			}
			return true
		})
		if !complete && res.Deterministic {
			res.Exhaustive = false
		}
		if !res.Deterministic {
			break
		}
	}
	res.ModeledCost = time.Duration(res.Permutations*g.Len()) * opts.PerResourceLatency
	return res
}

func differs(a, b *outcome) bool {
	if a.ok != b.ok {
		return true
	}
	if !a.ok {
		return false
	}
	return !a.state.Equal(b.state)
}

// CheckIdempotence applies the first valid permutation once and twice from
// each input and compares, mirroring test-based idempotence checking
// (section 7 discusses Hummer et al.'s approach for Chef).
func CheckIdempotence(g *graph.Graph[fs.Expr], inputs []fs.State) (bool, fs.State) {
	if len(inputs) == 0 {
		inputs = []fs.State{fs.NewState()}
	}
	order, err := g.TopoSort()
	if err != nil {
		return false, nil
	}
	apply := func(st fs.State) (fs.State, bool) {
		for _, n := range order {
			next, ok := fs.Eval(g.Label(n), st)
			if !ok {
				return nil, false
			}
			st = next
		}
		return st, true
	}
	for _, input := range inputs {
		once, ok1 := apply(input.Clone())
		var twice fs.State
		ok2 := false
		if ok1 {
			twice, ok2 = apply(once)
		}
		if ok1 != ok2 {
			return false, input
		}
		if ok1 && !once.Equal(twice) {
			return false, input
		}
	}
	return true, nil
}
