package dynamic

import (
	"testing"
	"time"

	"repro/internal/fs"
	"repro/internal/graph"
)

func exprGraph(exprs []fs.Expr, edges [][2]int) *graph.Graph[fs.Expr] {
	g := graph.New[fs.Expr]()
	nodes := make([]graph.Node, len(exprs))
	for i, e := range exprs {
		nodes[i] = g.Add(e)
	}
	for _, e := range edges {
		if err := g.AddEdge(nodes[e[0]], nodes[e[1]]); err != nil {
			panic(err)
		}
	}
	return g
}

func TestDeterministicGraph(t *testing.T) {
	// Two independent writes to different paths.
	g := exprGraph([]fs.Expr{
		fs.Creat{Path: "/a", Content: "1"},
		fs.Creat{Path: "/b", Content: "2"},
	}, nil)
	res := Run(g, Options{})
	if !res.Deterministic || !res.Exhaustive {
		t.Fatalf("expected deterministic exhaustive run: %+v", res)
	}
	if res.Permutations != 2 {
		t.Errorf("permutations: %d", res.Permutations)
	}
}

func TestNondeterministicGraph(t *testing.T) {
	// Conflicting overwrite-style writes to the same path.
	over := func(content string) fs.Expr {
		return fs.SeqAll(
			fs.Guard(fs.IsFile{Path: "/f"}, fs.Rm{Path: "/f"}),
			fs.Creat{Path: "/f", Content: content},
		)
	}
	g := exprGraph([]fs.Expr{over("1"), over("2")}, nil)
	res := Run(g, Options{})
	if res.Deterministic {
		t.Fatal("conflicting writes not detected")
	}
	if res.OrderA == nil || res.OrderB == nil {
		t.Error("orders not reported")
	}
}

func TestEdgesRestrictOrders(t *testing.T) {
	over := func(content string) fs.Expr {
		return fs.SeqAll(
			fs.Guard(fs.IsFile{Path: "/f"}, fs.Rm{Path: "/f"}),
			fs.Creat{Path: "/f", Content: content},
		)
	}
	// Ordered: only one permutation, so deterministic.
	g := exprGraph([]fs.Expr{over("1"), over("2")}, [][2]int{{0, 1}})
	res := Run(g, Options{})
	if !res.Deterministic || res.Permutations != 1 {
		t.Fatalf("ordered graph: %+v", res)
	}
}

func TestInputsMatter(t *testing.T) {
	// err-if-file(/flag) vs creat(/flag): from empty the creat order
	// always errs...: actually both orders err from empty? creat-first
	// then check → errs; check-first (absent → ok) then creat → ok. So
	// even from empty this diverges. Use a pair that only diverges on a
	// non-empty input: overwrite(/f) vs read-content... simplest: rm(/f)
	// and guarded creat: from empty, rm always errs in both orders; from
	// {f} they diverge.
	g := exprGraph([]fs.Expr{
		fs.Rm{Path: "/f"},
		fs.Guard(fs.IsNone{Path: "/f"}, fs.Creat{Path: "/f", Content: "x"}),
	}, nil)
	res := Run(g, Options{Inputs: []fs.State{fs.NewState()}})
	// From empty: order rm-first errs; order guarded-creat-first creates
	// /f then rm removes it → success. Diverges already.
	if res.Deterministic {
		t.Fatal("should diverge from empty")
	}
	// From a state where /f is a non-empty directory, both orders error
	// (rm refuses), so restricted to that input the pair is deterministic.
	withDir := fs.State{"/f": fs.DirContent(), "/f/child": fs.FileContent("y")}
	res = Run(g, Options{Inputs: []fs.State{withDir}})
	if !res.Deterministic {
		t.Fatal("with /f a non-empty dir both orders err")
	}
}

func TestMaxPermutations(t *testing.T) {
	exprs := make([]fs.Expr, 6)
	for i := range exprs {
		exprs[i] = fs.MkdirIfMissing(fs.Path("/d" + string(rune('a'+i))))
	}
	g := exprGraph(exprs, nil)
	res := Run(g, Options{MaxPermutations: 10})
	if res.Exhaustive {
		t.Error("6 free nodes cannot be exhausted in 10 permutations")
	}
	if res.Permutations != 10 {
		t.Errorf("permutations: %d", res.Permutations)
	}
}

func TestModeledCost(t *testing.T) {
	g := exprGraph([]fs.Expr{
		fs.Creat{Path: "/a", Content: "1"},
		fs.Creat{Path: "/b", Content: "2"},
	}, nil)
	res := Run(g, Options{PerResourceLatency: time.Second})
	if res.ModeledCost != 4*time.Second { // 2 perms × 2 resources × 1s
		t.Errorf("modeled cost: %v", res.ModeledCost)
	}
}

func TestCheckIdempotence(t *testing.T) {
	// Guarded creation is idempotent.
	g := exprGraph([]fs.Expr{fs.MkdirIfMissing("/d")}, nil)
	ok, _ := CheckIdempotence(g, nil)
	if !ok {
		t.Error("guarded mkdir should be idempotent")
	}
	// Copy-then-delete-source (fig 3d) is not, from a state with /src.
	g = exprGraph([]fs.Expr{fs.SeqAll(
		fs.Cp{Src: "/src", Dst: "/dst"},
		fs.Rm{Path: "/src"},
	)}, nil)
	ok, witness := CheckIdempotence(g, []fs.State{{"/src": fs.FileContent("x")}})
	if ok {
		t.Error("fig 3d should not be idempotent")
	}
	if witness == nil {
		t.Error("witness missing")
	}
}
