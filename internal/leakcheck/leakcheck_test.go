package leakcheck

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestSettleCleanWorkload(t *testing.T) {
	base := Take()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { <-done }()
	}
	close(done)
	if err := Settle(base, Opts{}); err != nil {
		t.Fatalf("clean workload reported a leak: %v", err)
	}
}

func TestSettleReportsStrandedGoroutine(t *testing.T) {
	base := Take()
	hang := make(chan struct{})
	defer close(hang)
	for i := 0; i < 8; i++ {
		go func() { <-hang }()
	}
	err := Settle(base, Opts{Timeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("stranded goroutines not reported")
	}
	if !strings.Contains(err.Error(), "goroutines grew") {
		t.Errorf("diagnostic should name the goroutine growth: %v", err)
	}
	if !strings.Contains(err.Error(), "leakcheck_test.go") {
		t.Errorf("diagnostic should include a stack dump naming this file: %v", err)
	}
}

func TestSettleReportsLeakedFD(t *testing.T) {
	if Take().FDs < 0 {
		t.Skip("fd counting unsupported on this platform")
	}
	base := Take()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serr := Settle(base, Opts{Timeout: 200 * time.Millisecond})
	if serr == nil {
		t.Fatal("open listener not reported as an fd leak")
	}
	if !strings.Contains(serr.Error(), "open fds grew") {
		t.Errorf("diagnostic should name the fd growth: %v", serr)
	}
	l.Close()
	if err := Settle(base, Opts{}); err != nil {
		t.Fatalf("closed listener still reported: %v", err)
	}
}

func TestHeapBudget(t *testing.T) {
	base := Take()
	if err := Settle(base, Opts{HeapBudget: 1 << 30}); err != nil {
		t.Fatalf("1 GiB budget exceeded at rest: %v", err)
	}
}

type fakeTB struct {
	testing.TB
	failed bool
}

func (f *fakeTB) Helper()               {}
func (f *fakeTB) Fatalf(string, ...any) { f.failed = true }

func TestAssertAdapter(t *testing.T) {
	base := Take()
	ft := &fakeTB{}
	AssertOpts(ft, base, Opts{Timeout: 100 * time.Millisecond})
	if ft.failed {
		t.Fatal("Assert failed on a settled process")
	}
	hang := make(chan struct{})
	defer close(hang)
	for i := 0; i < 8; i++ {
		go func() { <-hang }()
	}
	AssertOpts(ft, base, Opts{Timeout: 100 * time.Millisecond})
	if !ft.failed {
		t.Fatal("Assert passed with stranded goroutines")
	}
}
