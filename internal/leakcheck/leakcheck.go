// Package leakcheck is the shared resource-leak oracle: snapshot the
// process's goroutine count, open file descriptors and heap before a
// workload, run it, and assert that everything settled back afterwards.
// The service, cluster, solver-racing and fault tests all need the same
// discipline — "this code path must not strand a goroutine or socket" —
// and the soak rig (cmd/rehearsal-load) enforces it over minutes-long
// runs, so the snapshot/settle/diff logic lives here once instead of as
// per-test ad-hoc loops.
//
// The check is necessarily a settle, not an instantaneous compare:
// HTTP keep-alive reapers, test-server accept loops and runtime helpers
// wind down asynchronously after the workload stops. Settle therefore
// polls until the counts return to (base + slack) or the deadline
// passes, and on failure reports the diff alongside a full stack dump so
// the stranded goroutines are named, not just counted.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// Snapshot is one observation of the process's leakable resources.
type Snapshot struct {
	// Goroutines is runtime.NumGoroutine at snapshot time.
	Goroutines int
	// FDs is the number of open file descriptors, or -1 where the
	// platform offers no cheap way to count them (non-Linux).
	FDs int
	// HeapBytes is runtime.MemStats.HeapAlloc. Take does not force a GC;
	// pair Settle's heap budget with an explicit runtime.GC() when exact
	// accounting matters.
	HeapBytes uint64
}

// Take observes the current goroutine, fd and heap state.
func Take() Snapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Snapshot{
		Goroutines: runtime.NumGoroutine(),
		FDs:        countFDs(),
		HeapBytes:  ms.HeapAlloc,
	}
}

// countFDs counts open descriptors via /proc/self/fd; -1 when the proc
// filesystem is unavailable. The readdir fd itself is excluded.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents) - 1
}

// Opts tunes a Settle check; the zero value is the strict default every
// in-repo caller wants.
type Opts struct {
	// GoroutineSlack is how many goroutines above base still count as
	// settled; 0 means 3 (runtime and net/http helpers churn a little).
	GoroutineSlack int
	// FDSlack is how many descriptors above base still count as settled.
	// 0 means 0: sockets and files must all be returned.
	FDSlack int
	// HeapBudget bounds heap growth in bytes; 0 skips the heap check
	// (most tests churn the allocator legitimately — only long soaks
	// care).
	HeapBudget uint64
	// Timeout bounds the settle poll; 0 means 5s.
	Timeout time.Duration
}

func (o Opts) withDefaults() Opts {
	if o.GoroutineSlack <= 0 {
		o.GoroutineSlack = 3
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// Settle waits for the process to return to the base snapshot (within
// opts' slack) and returns a diagnostic error — including a full stack
// dump when goroutines are stranded — if it never does.
func Settle(base Snapshot, opts Opts) error {
	opts = opts.withDefaults()
	deadline := time.Now().Add(opts.Timeout)
	var now Snapshot
	for {
		now = Take()
		if settled(base, now, opts) {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var problems []string
	if g := now.Goroutines - base.Goroutines; g > opts.GoroutineSlack {
		problems = append(problems, fmt.Sprintf("goroutines grew %d → %d (slack %d)",
			base.Goroutines, now.Goroutines, opts.GoroutineSlack))
	}
	if base.FDs >= 0 && now.FDs >= 0 && now.FDs-base.FDs > opts.FDSlack {
		problems = append(problems, fmt.Sprintf("open fds grew %d → %d (slack %d)",
			base.FDs, now.FDs, opts.FDSlack))
	}
	if opts.HeapBudget > 0 && now.HeapBytes > base.HeapBytes+opts.HeapBudget {
		problems = append(problems, fmt.Sprintf("heap grew %d → %d bytes (budget %d)",
			base.HeapBytes, now.HeapBytes, opts.HeapBudget))
	}
	if len(problems) == 0 {
		// The combination regressed transiently but no single check holds
		// at deadline — re-poll once more and accept.
		if settled(base, Take(), opts) {
			return nil
		}
		problems = append(problems, "resources did not settle")
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return fmt.Errorf("leakcheck: %s\n%s", joinProblems(problems), buf[:n])
}

func settled(base, now Snapshot, opts Opts) bool {
	if now.Goroutines-base.Goroutines > opts.GoroutineSlack {
		return false
	}
	if base.FDs >= 0 && now.FDs >= 0 && now.FDs-base.FDs > opts.FDSlack {
		return false
	}
	if opts.HeapBudget > 0 && now.HeapBytes > base.HeapBytes+opts.HeapBudget {
		return false
	}
	return true
}

func joinProblems(ps []string) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

// TB is the subset of testing.TB the test adapter needs (an interface so
// this package stays importable from non-test binaries like the soak
// rig).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Assert is the test-side entry point: call with a snapshot taken before
// the workload; it fails the test with the settle diagnostic when the
// workload leaked. Defaults match the historical per-test loops (5s
// deadline, small goroutine slack, fds exact).
func Assert(t TB, base Snapshot) {
	t.Helper()
	AssertOpts(t, base, Opts{})
}

// AssertOpts is Assert with explicit tolerances.
func AssertOpts(t TB, base Snapshot, opts Opts) {
	t.Helper()
	if err := Settle(base, opts); err != nil {
		t.Fatalf("%v", err)
	}
}
