// Package resources implements the compilation function C : R → e of
// section 3.3: each primitive Puppet resource becomes an FS program that
// validates its attributes, checks its preconditions and applies its
// effect. The models follow the paper:
//
//   - file manages files and directories, with content or copy sources;
//   - package expands to the directory tree and file list of the package
//     and its dependency closure (queried from pkgdb, the stand-in for the
//     paper's apt-file/repoquery web service), each file with unique
//     contents, guarded by an installed-marker per package — which
//     reproduces both the fig-3c silent failure and stale-inventory
//     non-idempotence;
//   - ssh_authorized_key places each key in its own file under a
//     directory-modeled authorized_keys with unique content, and requires
//     the owning user to exist;
//   - user, group, service, cron and host manage marker files in disjoint
//     portions of the filesystem;
//   - exec is rejected (section 8: shell scripts have arbitrary effects).
package resources

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fs"
	"repro/internal/pkgdb"
	"repro/internal/puppet"
)

// Well-known model locations.
const (
	// PkgMarkerDir holds one marker file per installed package; its
	// presence is the model of the package manager's installed state.
	PkgMarkerDir fs.Path = "/var/lib/pkgdb"
	// UserDir holds one marker file per existing user account.
	UserDir fs.Path = "/etc/users"
	// GroupDir holds one marker file per existing group.
	GroupDir fs.Path = "/etc/groups"
	// ServiceDir holds one state file per managed service.
	ServiceDir fs.Path = "/var/run/services"
	// CronDir holds one file per cron job.
	CronDir fs.Path = "/var/spool/cron/jobs"
	// HostsDir holds one file per managed host entry (the logical
	// structure of /etc/hosts, per the ssh-key modeling technique).
	HostsDir fs.Path = "/etc/hosts.d"
	// FstabDir holds one file per managed mount (the logical structure of
	// /etc/fstab, same technique).
	FstabDir fs.Path = "/etc/fstab.d"
)

// Compiler compiles resources for one platform.
type Compiler struct {
	provider pkgdb.Provider
	platform string
}

// NewCompiler creates a compiler that models packages using the given
// provider and platform.
func NewCompiler(provider pkgdb.Provider, platform string) *Compiler {
	return &Compiler{provider: provider, platform: platform}
}

// Platform returns the platform the compiler models.
func (c *Compiler) Platform() string { return c.platform }

// Compile translates one primitive resource into its FS model.
func (c *Compiler) Compile(r *puppet.Resource) (fs.Expr, error) {
	switch r.Type {
	case "file":
		return c.compileFile(r)
	case "package":
		return c.compilePackage(r)
	case "user":
		return c.compileUser(r)
	case "group":
		return c.compileGroup(r)
	case "service":
		return c.compileService(r)
	case "ssh_authorized_key":
		return c.compileSSHKey(r)
	case "cron":
		return c.compileCron(r)
	case "host":
		return c.compileHost(r)
	case "mount":
		return c.compileMount(r)
	case "notify":
		return fs.Id{}, nil
	case "exec":
		return nil, fmt.Errorf("%s: exec resources are not supported: shell scripts have arbitrary effects (paper section 8)", r)
	default:
		return nil, fmt.Errorf("%s: unknown resource type %q", r, r.Type)
	}
}

// cosmeticAttrs are accepted on any resource and have no effect in the FS
// model (permissions and ownership are not modeled; see paper section 3.2).
var cosmeticAttrs = map[string]bool{
	"owner": true, "group": true, "mode": true, "backup": true,
	"loglevel": true, "noop": true, "alias": true, "tag": true,
}

// checkAttrs rejects attributes that are neither known nor cosmetic,
// catching typos like "contnet".
func checkAttrs(r *puppet.Resource, known ...string) error {
	ok := make(map[string]bool, len(known))
	for _, k := range known {
		ok[k] = true
	}
	var bad []string
	for name := range r.Attrs {
		if !ok[name] && !cosmeticAttrs[name] {
			bad = append(bad, name)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("%s: unknown attribute(s) %s", r, strings.Join(bad, ", "))
	}
	return nil
}

// attrOr returns a string attribute or a default.
func attrOr(r *puppet.Resource, name, def string) string {
	if v, ok := r.AttrString(name); ok {
		return v
	}
	return def
}

// boolAttr interprets an attribute as a boolean.
func boolAttr(r *puppet.Resource, name string) bool {
	v, ok := r.Attrs[name]
	if !ok {
		return false
	}
	if b, isBool := v.(puppet.BoolV); isBool {
		return bool(b)
	}
	return strings.EqualFold(puppet.ValueString(v), "true")
}

// modelPath validates and normalizes a path used by a resource model.
func modelPath(r *puppet.Resource, raw string) (fs.Path, error) {
	if !strings.HasPrefix(raw, "/") {
		return "", fmt.Errorf("%s: path %q is not absolute", r, raw)
	}
	p := fs.ParsePath(raw)
	if p.IsRoot() {
		return "", fmt.Errorf("%s: cannot manage the root directory", r)
	}
	for _, component := range strings.Split(string(p), "/") {
		if component == fs.FreshChildName {
			return "", fmt.Errorf("%s: path %q uses the reserved component %q", r, raw, fs.FreshChildName)
		}
	}
	return p, nil
}

// nameComponent validates a single path component derived from a title or
// name attribute.
func nameComponent(r *puppet.Resource, what, raw string) (string, error) {
	if raw == "" || strings.Contains(raw, "/") || raw == fs.FreshChildName {
		return "", fmt.Errorf("%s: invalid %s %q", r, what, raw)
	}
	return raw, nil
}

// ensureTree emits guarded mkdirs for p and every ancestor, root-first —
// the idempotent directory-creation idiom the commutativity analysis
// recognizes as a D effect (section 4.3).
func ensureTree(p fs.Path) fs.Expr {
	var parts []fs.Expr
	for _, q := range p.Ancestors() {
		parts = append(parts, fs.MkdirIfMissing(q))
	}
	parts = append(parts, fs.MkdirIfMissing(p))
	return fs.SeqAll(parts...)
}

// overwriteFile emits the idempotent file-overwrite idiom: remove an
// existing file, then create with the given contents. It errors when the
// path is a directory or the parent is missing, matching Puppet.
func overwriteFile(p fs.Path, content string) fs.Expr {
	return fs.SeqAll(
		fs.Guard(fs.IsFile{Path: p}, fs.Rm{Path: p}),
		fs.Creat{Path: p, Content: content},
	)
}

// removeFileIfPresent removes a file when present; errors when the path is
// a directory.
func removeFileIfPresent(p fs.Path) fs.Expr {
	return fs.If{
		A:    fs.IsNone{Path: p},
		Then: fs.Id{},
		Else: fs.Rm{Path: p},
	}
}

func (c *Compiler) compileFile(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "path", "ensure", "content", "source", "target", "force", "recurse", "purge", "replace"); err != nil {
		return nil, err
	}
	p, err := modelPath(r, attrOr(r, "path", r.Title))
	if err != nil {
		return nil, err
	}
	content, hasContent := r.AttrString("content")
	source, hasSource := r.AttrString("source")
	if hasContent && hasSource {
		return nil, fmt.Errorf("%s: content and source are mutually exclusive", r)
	}
	ensure := attrOr(r, "ensure", "")
	if ensure == "" {
		if hasContent || hasSource {
			ensure = "file"
		} else {
			ensure = "present"
		}
	}
	switch ensure {
	case "file", "present":
		if hasSource {
			src, err := modelPath(r, source)
			if err != nil {
				return nil, err
			}
			return fs.SeqAll(
				fs.Guard(fs.IsFile{Path: p}, fs.Rm{Path: p}),
				fs.Cp{Src: src, Dst: p},
			), nil
		}
		return overwriteFile(p, content), nil
	case "directory":
		if hasContent {
			return nil, fmt.Errorf("%s: a directory cannot have content", r)
		}
		// Unlike package models, a single file resource manages exactly one
		// directory and fails if the parent is absent (Puppet behavior).
		return fs.MkdirIfMissing(p), nil
	case "link":
		// FS has no symlink value (the paper's model omits links for
		// portability); a link is modeled as a regular file whose content
		// records the target, which preserves every interaction the
		// analyses observe: creation requires the parent, overwrites
		// conflict, and two links to different targets do not commute.
		target, ok := r.AttrString("target")
		if !ok {
			return nil, fmt.Errorf("%s: ensure => link requires a target", r)
		}
		return overwriteFile(p, "symlink:"+target), nil
	case "absent":
		// Removes a file or an empty directory; errors on a non-empty
		// directory (Puppet requires force/purge for recursive deletion,
		// which the model does not support).
		return fs.If{A: fs.IsNone{Path: p}, Then: fs.Id{}, Else: fs.Rm{Path: p}}, nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

// pkgContent is the unique content token for a package-installed file
// (section 3.3: "we simply give every file p in a package a unique
// content").
func pkgContent(pkg, file string) string { return "pkg:" + pkg + ":" + file }

// markerPath is the installed-marker of a package.
func markerPath(name string) fs.Path { return PkgMarkerDir.Join(name) }

// installPackageFiles builds the unguarded install block of one package:
// directory tree root-first, then every file with unique content, then the
// installed marker.
func installPackageFiles(p *pkgdb.Package) fs.Expr {
	var parts []fs.Expr
	for _, d := range p.Dirs {
		parts = append(parts, fs.MkdirIfMissing(fs.ParsePath(d)))
	}
	for _, f := range p.Files {
		parts = append(parts, fs.Creat{Path: fs.ParsePath(f), Content: pkgContent(p.Name, f)})
	}
	parts = append(parts, fs.Creat{Path: markerPath(p.Name), Content: "installed:" + p.Name})
	return fs.SeqAll(parts...)
}

func (c *Compiler) compilePackage(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "provider", "source", "responsefile", "install_options"); err != nil {
		return nil, err
	}
	name, err := nameComponent(r, "package name", attrOr(r, "name", r.Title))
	if err != nil {
		return nil, err
	}
	ensure := attrOr(r, "ensure", "present")
	switch ensure {
	case "present", "installed", "latest":
		closure, err := c.provider.Closure(c.platform, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r, err)
		}
		// Mirror the package manager: if the requested package is already
		// installed, do nothing — even when its dependencies have been
		// removed since. This check-then-act is what makes fig 3c
		// manifests non-idempotent.
		var install []fs.Expr
		for _, p := range closure {
			if p.Name == name {
				install = append(install, installPackageFiles(p))
				continue
			}
			install = append(install, fs.Guard(
				fs.Not{P: fs.IsFile{Path: markerPath(p.Name)}},
				installPackageFiles(p),
			))
		}
		return fs.SeqAll(
			ensureTree(PkgMarkerDir),
			fs.Guard(
				fs.Not{P: fs.IsFile{Path: markerPath(name)}},
				fs.SeqAll(install...),
			),
		), nil
	case "absent", "purged":
		// Remove only the named package's own files, like the low-level
		// "dpkg -r": cascading removal of dependents is the package
		// manager's hidden behavior that the model (like apt-file) cannot
		// see — which is exactly what makes fig 3c a silent failure.
		pkg, err := c.provider.Lookup(c.platform, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r, err)
		}
		var remove []fs.Expr
		for i := len(pkg.Files) - 1; i >= 0; i-- {
			remove = append(remove, removeFileIfPresent(fs.ParsePath(pkg.Files[i])))
		}
		remove = append(remove, fs.Rm{Path: markerPath(name)})
		return fs.SeqAll(
			ensureTree(PkgMarkerDir),
			fs.Guard(fs.IsFile{Path: markerPath(name)}, fs.SeqAll(remove...)),
		), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

func (c *Compiler) compileUser(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "managehome", "home", "shell", "uid", "gid", "groups", "comment", "password"); err != nil {
		return nil, err
	}
	name, err := nameComponent(r, "user name", attrOr(r, "name", r.Title))
	if err != nil {
		return nil, err
	}
	marker := UserDir.Join(name)
	switch ensure := attrOr(r, "ensure", "present"); ensure {
	case "present":
		parts := []fs.Expr{
			ensureTree(UserDir),
			fs.Guard(fs.Not{P: fs.IsFile{Path: marker}}, fs.Creat{Path: marker, Content: "user:" + name}),
		}
		if boolAttr(r, "managehome") {
			home, err := modelPath(r, attrOr(r, "home", "/home/"+name))
			if err != nil {
				return nil, err
			}
			parts = append(parts, ensureTree(home))
		}
		return fs.SeqAll(parts...), nil
	case "absent":
		// Removing an account does not remove the home directory (userdel
		// without -r).
		return fs.SeqAll(
			ensureTree(UserDir),
			removeFileIfPresent(marker),
		), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

func (c *Compiler) compileGroup(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "gid", "members"); err != nil {
		return nil, err
	}
	name, err := nameComponent(r, "group name", attrOr(r, "name", r.Title))
	if err != nil {
		return nil, err
	}
	marker := GroupDir.Join(name)
	switch ensure := attrOr(r, "ensure", "present"); ensure {
	case "present":
		return fs.SeqAll(
			ensureTree(GroupDir),
			fs.Guard(fs.Not{P: fs.IsFile{Path: marker}}, fs.Creat{Path: marker, Content: "group:" + name}),
		), nil
	case "absent":
		return fs.SeqAll(
			ensureTree(GroupDir),
			removeFileIfPresent(marker),
		), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

func (c *Compiler) compileService(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "enable", "binary", "hasrestart", "hasstatus", "restart", "start", "stop", "status"); err != nil {
		return nil, err
	}
	name, err := nameComponent(r, "service name", attrOr(r, "name", r.Title))
	if err != nil {
		return nil, err
	}
	state := attrOr(r, "ensure", "running")
	switch state {
	case "running", "true":
		state = "running"
	case "stopped", "false":
		state = "stopped"
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, state)
	}
	var parts []fs.Expr
	// Starting a service requires its binary when one is declared; this
	// models "service fails to start because the package is missing".
	if bin, ok := r.AttrString("binary"); ok && state == "running" {
		binPath, err := modelPath(r, bin)
		if err != nil {
			return nil, err
		}
		parts = append(parts, fs.If{A: fs.IsFile{Path: binPath}, Then: fs.Id{}, Else: fs.Err{}})
	}
	parts = append(parts,
		ensureTree(ServiceDir),
		overwriteFile(ServiceDir.Join(name), "service:"+name+":"+state),
	)
	return fs.SeqAll(parts...), nil
}

func (c *Compiler) compileSSHKey(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "user", "type", "key", "options", "target"); err != nil {
		return nil, err
	}
	user, ok := r.AttrString("user")
	if !ok {
		return nil, fmt.Errorf("%s: ssh_authorized_key requires a user attribute", r)
	}
	if _, err := nameComponent(r, "user name", user); err != nil {
		return nil, err
	}
	title, err := nameComponent(r, "key title", strings.ReplaceAll(attrOr(r, "name", r.Title), " ", "_"))
	if err != nil {
		return nil, err
	}
	// The authorized_keys file is modeled as a *directory* holding one
	// file per key with unique content (section 3.3): keys for the same
	// user leave each other's entries alone, while a file resource
	// overwriting /home/u/.ssh/authorized_keys conflicts with the whole
	// set. Because Puppet rewrites the authorized_keys file when managing
	// keys, the model converts a plain file at that path into the managed
	// directory — which is what makes the file-vs-key conflict
	// *asymmetric* (key-then-file errors, file-then-key succeeds) and
	// therefore detectable as non-determinism.
	keyDir := fs.MakePath("home", user, ".ssh", "authorized_keys")
	keyFile := keyDir.Join(title)
	content := "sshkey:" + user + ":" + title + ":" + attrOr(r, "key", "")
	switch ensure := attrOr(r, "ensure", "present"); ensure {
	case "present":
		return fs.SeqAll(
			// The owning account must exist; the home directory tree is
			// ensured (idempotently) below it.
			fs.If{A: fs.IsFile{Path: UserDir.Join(user)}, Then: fs.Id{}, Else: fs.Err{}},
			ensureTree(keyDir.Parent()),
			fs.Guard(fs.IsFile{Path: keyDir}, fs.Rm{Path: keyDir}),
			fs.MkdirIfMissing(keyDir),
			overwriteFile(keyFile, content),
		), nil
	case "absent":
		return removeFileIfPresent(keyFile), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

func (c *Compiler) compileCron(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "command", "user", "minute", "hour", "monthday", "month", "weekday"); err != nil {
		return nil, err
	}
	title, err := nameComponent(r, "cron title", strings.ReplaceAll(attrOr(r, "name", r.Title), " ", "_"))
	if err != nil {
		return nil, err
	}
	jobFile := CronDir.Join(title)
	switch ensure := attrOr(r, "ensure", "present"); ensure {
	case "present":
		content := fmt.Sprintf("cron:%s:%s %s %s %s %s %s",
			attrOr(r, "user", "root"),
			attrOr(r, "minute", "*"), attrOr(r, "hour", "*"),
			attrOr(r, "monthday", "*"), attrOr(r, "month", "*"),
			attrOr(r, "weekday", "*"), attrOr(r, "command", ""))
		return fs.SeqAll(
			ensureTree(CronDir),
			overwriteFile(jobFile, content),
		), nil
	case "absent":
		return removeFileIfPresent(jobFile), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

// compileMount models a mount: an fstab entry (one file per mount in
// FstabDir, like the ssh-key technique) plus, when mounted, the mountpoint
// directory itself — which must already exist, matching mount(8).
func (c *Compiler) compileMount(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "device", "fstype", "options", "atboot", "dump", "pass", "remounts"); err != nil {
		return nil, err
	}
	point, err := modelPath(r, attrOr(r, "name", r.Title))
	if err != nil {
		return nil, err
	}
	entry := FstabDir.Join(strings.ReplaceAll(strings.TrimPrefix(string(point), "/"), "/", "-"))
	content := fmt.Sprintf("mount:%s:%s:%s:%s",
		attrOr(r, "device", ""), point, attrOr(r, "fstype", "auto"), attrOr(r, "options", "defaults"))
	switch ensure := attrOr(r, "ensure", "mounted"); ensure {
	case "mounted":
		return fs.SeqAll(
			// Mounting requires an existing mountpoint directory.
			fs.If{A: fs.IsDir{Path: point}, Then: fs.Id{}, Else: fs.Err{}},
			ensureTree(FstabDir),
			overwriteFile(entry, content),
		), nil
	case "present", "unmounted":
		// Entry managed without touching the mountpoint.
		return fs.SeqAll(
			ensureTree(FstabDir),
			overwriteFile(entry, content),
		), nil
	case "absent":
		return removeFileIfPresent(entry), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}

func (c *Compiler) compileHost(r *puppet.Resource) (fs.Expr, error) {
	if err := checkAttrs(r, "name", "ensure", "ip", "host_aliases", "target"); err != nil {
		return nil, err
	}
	name, err := nameComponent(r, "host name", attrOr(r, "name", r.Title))
	if err != nil {
		return nil, err
	}
	entry := HostsDir.Join(name)
	switch ensure := attrOr(r, "ensure", "present"); ensure {
	case "present":
		content := "host:" + name + ":" + attrOr(r, "ip", "") + ":" + attrOr(r, "host_aliases", "")
		return fs.SeqAll(
			ensureTree(HostsDir),
			overwriteFile(entry, content),
		), nil
	case "absent":
		return removeFileIfPresent(entry), nil
	default:
		return nil, fmt.Errorf("%s: unsupported ensure value %q", r, ensure)
	}
}
