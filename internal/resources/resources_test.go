package resources

import (
	"strings"
	"testing"

	"repro/internal/fs"
	"repro/internal/pkgdb"
	"repro/internal/puppet"
	"repro/internal/sym"
)

func compiler() *Compiler {
	return NewCompiler(pkgdb.DefaultCatalog(), "ubuntu")
}

func res(typ, title string, attrs map[string]puppet.Value) *puppet.Resource {
	if attrs == nil {
		attrs = map[string]puppet.Value{}
	}
	return &puppet.Resource{Type: typ, Title: title, Attrs: attrs}
}

func mustCompile(t *testing.T, r *puppet.Resource) fs.Expr {
	t.Helper()
	e, err := compiler().Compile(r)
	if err != nil {
		t.Fatalf("Compile(%s): %v", r, err)
	}
	return e
}

func apply(t *testing.T, e fs.Expr, in fs.State) fs.State {
	t.Helper()
	out, ok := fs.Eval(e, in)
	if !ok {
		t.Fatalf("model errored on %s\nexpr: %s", fs.StateString(in), fs.String(e))
	}
	return out
}

func TestFileContent(t *testing.T) {
	e := mustCompile(t, res("file", "/etc/motd", map[string]puppet.Value{
		"content": puppet.StrV("hello"),
	}))
	out := apply(t, e, fs.State{"/etc": fs.DirContent()})
	if out["/etc/motd"] != fs.FileContent("hello") {
		t.Errorf("motd = %v", out["/etc/motd"])
	}
	// Overwrites an existing file.
	out = apply(t, e, fs.State{"/etc": fs.DirContent(), "/etc/motd": fs.FileContent("old")})
	if out["/etc/motd"] != fs.FileContent("hello") {
		t.Errorf("not overwritten: %v", out["/etc/motd"])
	}
	// Errors without the parent directory.
	if _, ok := fs.Eval(e, fs.NewState()); ok {
		t.Error("should error without /etc")
	}
	// Errors when the path is a directory.
	if _, ok := fs.Eval(e, fs.State{"/etc": fs.DirContent(), "/etc/motd": fs.DirContent()}); ok {
		t.Error("should error on a directory")
	}
}

func TestFileSourceAndEnsure(t *testing.T) {
	e := mustCompile(t, res("file", "/dst", map[string]puppet.Value{
		"source": puppet.StrV("/src"),
	}))
	out := apply(t, e, fs.State{"/src": fs.FileContent("data")})
	if out["/dst"] != fs.FileContent("data") {
		t.Errorf("dst = %v", out["/dst"])
	}
	// Directory.
	e = mustCompile(t, res("file", "/srv/www", map[string]puppet.Value{
		"ensure": puppet.StrV("directory"),
	}))
	out = apply(t, e, fs.State{"/srv": fs.DirContent()})
	if !out.IsDir("/srv/www") {
		t.Error("dir not created")
	}
	// Idempotent on re-run.
	out2 := apply(t, e, out)
	if !out2.Equal(out) {
		t.Error("dir creation not idempotent")
	}
	// Absent.
	e = mustCompile(t, res("file", "/tmp/junk", map[string]puppet.Value{
		"ensure": puppet.StrV("absent"),
	}))
	out = apply(t, e, fs.State{"/tmp": fs.DirContent(), "/tmp/junk": fs.FileContent("x")})
	if out.Exists("/tmp/junk") {
		t.Error("not removed")
	}
	out = apply(t, e, fs.State{"/tmp": fs.DirContent()}) // already absent
	if out.Exists("/tmp/junk") {
		t.Error("appeared?")
	}
}

func TestFileLink(t *testing.T) {
	e := mustCompile(t, res("file", "/etc/alternatives/editor", map[string]puppet.Value{
		"ensure": puppet.StrV("link"),
		"target": puppet.StrV("/usr/bin/vim"),
	}))
	in := fs.State{"/etc": fs.DirContent(), "/etc/alternatives": fs.DirContent()}
	out := apply(t, e, in)
	if c := out["/etc/alternatives/editor"]; c != fs.FileContent("symlink:/usr/bin/vim") {
		t.Errorf("link model: %v", c)
	}
	// Re-pointing an existing link overwrites it.
	in2 := in.Clone()
	in2["/etc/alternatives/editor"] = fs.FileContent("symlink:/usr/bin/nano")
	out = apply(t, e, in2)
	if c := out["/etc/alternatives/editor"]; c != fs.FileContent("symlink:/usr/bin/vim") {
		t.Errorf("link not re-pointed: %v", c)
	}
	// Missing target is rejected.
	if _, err := compiler().Compile(res("file", "/l", map[string]puppet.Value{
		"ensure": puppet.StrV("link"),
	})); err == nil {
		t.Error("link without target accepted")
	}
	// Two links to different targets at the same path conflict; verified
	// symbolically by inequivalence of the two orders.
	mk := func(target string) fs.Expr {
		e, err := compiler().Compile(res("file", "/l", map[string]puppet.Value{
			"ensure": puppet.StrV("link"), "target": puppet.StrV(target),
		}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk("/t1"), mk("/t2")
	eq, _, err := sym.Equiv(fs.Seq{E1: a, E2: b}, fs.Seq{E1: b, E2: a}, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("conflicting links should not commute")
	}
}

func TestFileValidation(t *testing.T) {
	c := compiler()
	cases := []*puppet.Resource{
		res("file", "relative/path", nil),
		res("file", "/", nil),
		res("file", "/x", map[string]puppet.Value{"content": puppet.StrV("a"), "source": puppet.StrV("/s")}),
		res("file", "/x", map[string]puppet.Value{"ensure": puppet.StrV("directory"), "content": puppet.StrV("a")}),
		res("file", "/x", map[string]puppet.Value{"ensure": puppet.StrV("bogus")}),
		res("file", "/x", map[string]puppet.Value{"contnet": puppet.StrV("typo")}),
		res("file", "/x/"+fs.FreshChildName, nil),
	}
	for _, r := range cases {
		if _, err := c.Compile(r); err == nil {
			t.Errorf("Compile(%s %v) should fail", r, r.Attrs)
		}
	}
}

func TestPackageInstall(t *testing.T) {
	e := mustCompile(t, res("package", "ntp", nil))
	out := apply(t, e, fs.NewState())
	if out[markerPath("ntp")] == (fs.Content{}) {
		// presence check below
	}
	if !out.IsFile(markerPath("ntp")) {
		t.Error("ntp marker missing")
	}
	if !out.IsFile(markerPath("libopts25")) {
		t.Error("dependency libopts25 not installed")
	}
	if !out.IsFile("/etc/ntp.conf") {
		t.Error("ntp.conf missing")
	}
	if !out.IsDir("/usr/share/doc/ntp") {
		t.Error("doc dir missing")
	}
	// Re-install is a no-op.
	out2 := apply(t, e, out)
	if !out2.Equal(out) {
		t.Error("reinstall changed state")
	}
	// Installing when a dependency is present only adds the rest.
	pre := apply(t, mustCompile(t, res("package", "libopts25", nil)), fs.NewState())
	out3 := apply(t, e, pre)
	if !out3.IsFile("/etc/ntp.conf") {
		t.Error("install on top of dep failed")
	}
}

func TestPackageRemove(t *testing.T) {
	installed := apply(t, mustCompile(t, res("package", "ntp", nil)), fs.NewState())
	e := mustCompile(t, res("package", "ntp", map[string]puppet.Value{
		"ensure": puppet.StrV("absent"),
	}))
	out := apply(t, e, installed)
	if out.IsFile(markerPath("ntp")) || out.Exists("/etc/ntp.conf") {
		t.Error("ntp not removed")
	}
	// Dependencies stay installed (no cascading).
	if !out.IsFile(markerPath("libopts25")) {
		t.Error("dependency should remain")
	}
	// Removing an absent package is a no-op.
	out2 := apply(t, e, fs.NewState())
	if len(out2) == 0 {
		t.Error("marker tree should still be ensured")
	}
}

func TestPackageUniqueContents(t *testing.T) {
	// Files of different packages always have different model contents,
	// so overlapping packages are conservatively non-deterministic
	// (section 3.3).
	if pkgContent("a", "/f") == pkgContent("b", "/f") {
		t.Error("contents not unique per package")
	}
	if pkgContent("a", "/f") == pkgContent("a", "/g") {
		t.Error("contents not unique per file")
	}
}

func TestPackageUnknown(t *testing.T) {
	if _, err := compiler().Compile(res("package", "no-such-package", nil)); err == nil {
		t.Error("unknown package accepted")
	}
	c := NewCompiler(pkgdb.DefaultCatalog(), "freebsd")
	if _, err := c.Compile(res("package", "ntp", nil)); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestUser(t *testing.T) {
	e := mustCompile(t, res("user", "carol", map[string]puppet.Value{
		"managehome": puppet.BoolV(true),
	}))
	out := apply(t, e, fs.NewState())
	if !out.IsFile(UserDir.Join("carol")) {
		t.Error("user marker missing")
	}
	if !out.IsDir("/home/carol") {
		t.Error("home missing")
	}
	// Idempotent.
	if out2 := apply(t, e, out); !out2.Equal(out) {
		t.Error("user not idempotent")
	}
	// Without managehome, no home dir.
	e = mustCompile(t, res("user", "dave", nil))
	out = apply(t, e, fs.NewState())
	if out.Exists("/home/dave") {
		t.Error("home should not be created")
	}
	// Absent removes the marker but not the home.
	e = mustCompile(t, res("user", "carol", map[string]puppet.Value{
		"ensure": puppet.StrV("absent"),
	}))
	out2 := apply(t, e, out.Clone())
	_ = out2
	withHome := fs.State{
		"/etc": fs.DirContent(), "/etc/users": fs.DirContent(),
		UserDir.Join("carol"): fs.FileContent("user:carol"),
		"/home":               fs.DirContent(), "/home/carol": fs.DirContent(),
	}
	out3 := apply(t, e, withHome)
	if out3.Exists(UserDir.Join("carol")) {
		t.Error("marker not removed")
	}
	if !out3.IsDir("/home/carol") {
		t.Error("home should remain")
	}
}

func TestGroupServiceCronHost(t *testing.T) {
	out := apply(t, mustCompile(t, res("group", "admin", nil)), fs.NewState())
	if !out.IsFile(GroupDir.Join("admin")) {
		t.Error("group marker missing")
	}
	out = apply(t, mustCompile(t, res("service", "nginx", map[string]puppet.Value{
		"ensure": puppet.StrV("running"),
	})), fs.NewState())
	if c := out[ServiceDir.Join("nginx")]; !strings.Contains(c.Data, "running") {
		t.Errorf("service state: %v", c)
	}
	out = apply(t, mustCompile(t, res("cron", "logrotate", map[string]puppet.Value{
		"command": puppet.StrV("/usr/sbin/logrotate"),
		"hour":    puppet.StrV("3"),
	})), fs.NewState())
	if c := out[CronDir.Join("logrotate")]; !strings.Contains(c.Data, "logrotate") {
		t.Errorf("cron entry: %v", c)
	}
	out = apply(t, mustCompile(t, res("host", "db01", map[string]puppet.Value{
		"ip": puppet.StrV("10.0.0.5"),
	})), fs.NewState())
	if c := out[HostsDir.Join("db01")]; !strings.Contains(c.Data, "10.0.0.5") {
		t.Errorf("host entry: %v", c)
	}
}

func TestServiceBinaryPrecondition(t *testing.T) {
	e := mustCompile(t, res("service", "nginx", map[string]puppet.Value{
		"ensure": puppet.StrV("running"),
		"binary": puppet.StrV("/usr/sbin/nginx"),
	}))
	if _, ok := fs.Eval(e, fs.NewState()); ok {
		t.Error("service should fail without its binary")
	}
	withBin := fs.State{
		"/usr": fs.DirContent(), "/usr/sbin": fs.DirContent(),
		"/usr/sbin/nginx": fs.FileContent("bin"),
	}
	apply(t, e, withBin)
}

func TestSSHKey(t *testing.T) {
	e := mustCompile(t, res("ssh_authorized_key", "alice@laptop", map[string]puppet.Value{
		"user": puppet.StrV("alice"),
		"key":  puppet.StrV("AAAA"),
	}))
	// Fails when the user does not exist.
	if _, ok := fs.Eval(e, fs.NewState()); ok {
		t.Error("key should require the user")
	}
	withUser := fs.State{
		"/etc": fs.DirContent(), "/etc/users": fs.DirContent(),
		UserDir.Join("alice"): fs.FileContent("user:alice"),
		"/home":               fs.DirContent(), "/home/alice": fs.DirContent(),
	}
	out := apply(t, e, withUser)
	keyFile := fs.Path("/home/alice/.ssh/authorized_keys/alice@laptop")
	if !out.IsFile(keyFile) {
		t.Errorf("key file missing: %s", fs.StateString(out))
	}
	// Converts a plain authorized_keys file into the managed directory.
	asFile := withUser.Clone()
	asFile["/home/alice/.ssh"] = fs.DirContent()
	asFile["/home/alice/.ssh/authorized_keys"] = fs.FileContent("old")
	out = apply(t, e, asFile)
	if !out.IsDir("/home/alice/.ssh/authorized_keys") {
		t.Error("file not converted to managed directory")
	}
	// Missing user attribute is an error.
	if _, err := compiler().Compile(res("ssh_authorized_key", "x", nil)); err == nil {
		t.Error("key without user accepted")
	}
}

func TestNotifyAndExec(t *testing.T) {
	e := mustCompile(t, res("notify", "hello world", nil))
	if _, ok := e.(fs.Id); !ok {
		t.Errorf("notify should be a no-op, got %s", fs.String(e))
	}
	if _, err := compiler().Compile(res("exec", "rm -rf /", nil)); err == nil {
		t.Error("exec accepted")
	}
	if _, err := compiler().Compile(res("zfs_pool", "tank", nil)); err == nil {
		t.Error("unknown type accepted")
	}
}

// Every compiled model must be idempotent in isolation (primitive
// resources are designed to be idempotent — section 2.2), verified
// symbolically.
func TestModelsIndividuallyIdempotent(t *testing.T) {
	rs := []*puppet.Resource{
		res("file", "/etc/motd", map[string]puppet.Value{"content": puppet.StrV("x")}),
		res("file", "/srv", map[string]puppet.Value{"ensure": puppet.StrV("directory")}),
		res("file", "/tmp/x", map[string]puppet.Value{"ensure": puppet.StrV("absent")}),
		res("user", "carol", map[string]puppet.Value{"managehome": puppet.BoolV(true)}),
		res("user", "gone", map[string]puppet.Value{"ensure": puppet.StrV("absent")}),
		res("group", "admin", nil),
		res("service", "ntp", map[string]puppet.Value{"ensure": puppet.StrV("running")}),
		res("cron", "job", map[string]puppet.Value{"command": puppet.StrV("true")}),
		res("host", "db", map[string]puppet.Value{"ip": puppet.StrV("10.0.0.1")}),
		res("package", "m4", nil),
		res("package", "m4", map[string]puppet.Value{"ensure": puppet.StrV("absent")}),
		res("ssh_authorized_key", "k", map[string]puppet.Value{"user": puppet.StrV("u"), "key": puppet.StrV("A")}),
	}
	for _, r := range rs {
		e := mustCompile(t, r)
		idem, cex, err := sym.Idempotent(e, sym.Options{})
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if !idem {
			t.Errorf("%s model is not idempotent:\n%s", r, cex)
		}
	}
}

// File resources with source are NOT necessarily idempotent in isolation
// if src == dst... but cp to a fresh path is: first run copies, second
// sees the file and overwrites it with the same content. Verify the
// interesting positive case.
func TestFileSourceIdempotent(t *testing.T) {
	e := mustCompile(t, res("file", "/dst", map[string]puppet.Value{"source": puppet.StrV("/src")}))
	idem, cex, err := sym.Idempotent(e, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !idem {
		t.Errorf("file-with-source should be idempotent: %s", cex)
	}
}

func TestMount(t *testing.T) {
	e := mustCompile(t, res("mount", "/data", map[string]puppet.Value{
		"device": puppet.StrV("/dev/sdb1"),
		"fstype": puppet.StrV("ext4"),
	}))
	// Mounting requires the mountpoint directory.
	if _, ok := fs.Eval(e, fs.NewState()); ok {
		t.Error("mount without mountpoint should fail")
	}
	in := fs.State{"/data": fs.DirContent()}
	out := apply(t, e, in)
	entry := FstabDir.Join("data")
	if c := out[entry]; !strings.Contains(c.Data, "/dev/sdb1") || !strings.Contains(c.Data, "ext4") {
		t.Errorf("fstab entry: %v", c)
	}
	// Idempotent.
	if out2 := apply(t, e, out); !out2.Equal(out) {
		t.Error("mount not idempotent")
	}
	// ensure => present manages the entry without the mountpoint.
	e = mustCompile(t, res("mount", "/backup", map[string]puppet.Value{
		"ensure": puppet.StrV("present"),
		"device": puppet.StrV("/dev/sdc1"),
	}))
	out = apply(t, e, fs.NewState())
	if !out.IsFile(FstabDir.Join("backup")) {
		t.Error("present entry missing")
	}
	// ensure => absent removes the entry.
	e = mustCompile(t, res("mount", "/backup", map[string]puppet.Value{
		"ensure": puppet.StrV("absent"),
	}))
	out2 := apply(t, e, out)
	if out2.Exists(FstabDir.Join("backup")) {
		t.Error("absent entry still present")
	}
	// Unknown ensure rejected.
	if _, err := compiler().Compile(res("mount", "/x", map[string]puppet.Value{
		"ensure": puppet.StrV("bogus"),
	})); err == nil {
		t.Error("bogus ensure accepted")
	}
}
