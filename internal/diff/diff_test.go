package diff

import (
	"reflect"
	"testing"

	"repro/internal/fs"
)

func dig(b byte) fs.Digest {
	var d fs.Digest
	d[0] = b
	return d
}

func TestComputePartition(t *testing.T) {
	base := map[string]fs.Digest{
		"file[/a]":    dig(1),
		"file[/b]":    dig(2),
		"package[x]":  dig(3),
		"file[/gone]": dig(4),
	}
	head := map[string]fs.Digest{
		"file[/a]":   dig(1), // unchanged
		"file[/b]":   dig(9), // changed
		"package[x]": dig(3), // unchanged
		"file[/new]": dig(5), // added
	}
	d := Compute(base, head)
	if got, want := d.Added, []string{"file[/new]"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Added = %v, want %v", got, want)
	}
	if got, want := d.Removed, []string{"file[/gone]"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Removed = %v, want %v", got, want)
	}
	if got, want := d.Changed, []string{"file[/b]"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Changed = %v, want %v", got, want)
	}
	if got, want := d.Unchanged, []string{"file[/a]", "package[x]"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Unchanged = %v, want %v", got, want)
	}
	if d.Dirty() != 2 {
		t.Errorf("Dirty = %d, want 2", d.Dirty())
	}
	if d.Empty() {
		t.Error("Empty = true for a non-trivial delta")
	}
	set := d.UnchangedSet()
	if !set["file[/a]"] || !set["package[x]"] || set["file[/b]"] {
		t.Errorf("UnchangedSet = %v", set)
	}
}

func TestComputeIdentical(t *testing.T) {
	m := map[string]fs.Digest{"a": dig(1), "b": dig(2)}
	d := Compute(m, m)
	if !d.Empty() {
		t.Errorf("identical maps should give an empty delta, got %+v", d)
	}
	if len(d.Unchanged) != 2 || d.Dirty() != 0 {
		t.Errorf("Unchanged = %v, Dirty = %d", d.Unchanged, d.Dirty())
	}
}

func TestComputeEmptyBase(t *testing.T) {
	head := map[string]fs.Digest{"a": dig(1)}
	d := Compute(nil, head)
	if len(d.Added) != 1 || len(d.Unchanged) != 0 || d.Dirty() != 1 {
		t.Errorf("delta from empty base = %+v", d)
	}
}
