// Package diff computes resource-level deltas between two compiled
// manifests. Each resource is keyed by the Merkle digest of its compiled
// filesystem model (internal/fs), so the delta sees through textual noise
// — reformatting, reordered declarations, renamed variables — and,
// conversely, catches semantic changes that leave the declaration
// untouched (a changed variable flowing into an unchanged template, a
// platform fact flipping a conditional). The determinacy checker's
// differential path (core.VerifyDiff) uses the delta to partition the
// pairwise commutativity matrix: pairs of unchanged resources inherit the
// base run's cached verdicts, pairs touching a changed resource are
// re-verified.
package diff

import (
	"sort"

	"repro/internal/fs"
)

// Delta is the resource-level difference between a base and a head
// manifest. The four slices partition the union of both resource sets by
// name; each is sorted for deterministic output.
type Delta struct {
	// Added names resources present only in head.
	Added []string
	// Removed names resources present only in base.
	Removed []string
	// Changed names resources present in both whose compiled-model digests
	// differ.
	Changed []string
	// Unchanged names resources present in both with identical digests.
	Unchanged []string
}

// Compute builds the delta between two digest maps (resource name →
// compiled-model digest, as returned by core's ResourceDigests).
func Compute(base, head map[string]fs.Digest) *Delta {
	d := &Delta{}
	for name, hd := range head {
		bd, ok := base[name]
		switch {
		case !ok:
			d.Added = append(d.Added, name)
		case bd != hd:
			d.Changed = append(d.Changed, name)
		default:
			d.Unchanged = append(d.Unchanged, name)
		}
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	sort.Strings(d.Unchanged)
	return d
}

// UnchangedSet returns the unchanged resource names as a set, the shape
// the checker's pair classification consumes.
func (d *Delta) UnchangedSet() map[string]bool {
	out := make(map[string]bool, len(d.Unchanged))
	for _, name := range d.Unchanged {
		out[name] = true
	}
	return out
}

// Dirty reports the number of head resources that cannot inherit base
// verdicts: changed plus added. (Removed resources need no verification —
// they have no pairs in head.)
func (d *Delta) Dirty() int { return len(d.Changed) + len(d.Added) }

// Empty reports whether head is digest-identical to base.
func (d *Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}
