package fs

// Pred is a predicate over filesystem states (figure 5). Predicates test
// only the *kind* of a path — whether it is a file, a directory, an empty
// directory, or absent — never file contents. This restriction is what makes
// the finite-domain symbolic encoding complete (see DESIGN.md).
type Pred interface{ isPred() }

// True is the predicate that always holds.
type True struct{}

// False is the predicate that never holds.
type False struct{}

// Not negates a predicate.
type Not struct{ P Pred }

// And is conjunction.
type And struct{ L, R Pred }

// Or is disjunction.
type Or struct{ L, R Pred }

// IsFile holds when Path is a regular file.
type IsFile struct{ Path Path }

// IsDir holds when Path is a directory.
type IsDir struct{ Path Path }

// IsEmptyDir holds when Path is a directory with no children.
type IsEmptyDir struct{ Path Path }

// IsNone holds when Path does not exist.
type IsNone struct{ Path Path }

func (True) isPred()       {}
func (False) isPred()      {}
func (Not) isPred()        {}
func (And) isPred()        {}
func (Or) isPred()         {}
func (IsFile) isPred()     {}
func (IsDir) isPred()      {}
func (IsEmptyDir) isPred() {}
func (IsNone) isPred()     {}

// AndAll folds predicates with conjunction; AndAll() == True.
func AndAll(preds ...Pred) Pred {
	var out Pred = True{}
	for i, p := range preds {
		if i == 0 {
			out = p
		} else {
			out = And{out, p}
		}
	}
	return out
}

// OrAll folds predicates with disjunction; OrAll() == False.
func OrAll(preds ...Pred) Pred {
	var out Pred = False{}
	for i, p := range preds {
		if i == 0 {
			out = p
		} else {
			out = Or{out, p}
		}
	}
	return out
}

// Expr is an FS expression (figure 5). Expressions denote functions from
// filesystem states to either a new state or the error state.
type Expr interface{ isExpr() }

// Id is the no-op expression.
type Id struct{}

// Err halts with an error.
type Err struct{}

// Mkdir creates directory Path; errors unless the parent is a directory and
// Path does not exist.
type Mkdir struct{ Path Path }

// Creat creates a regular file at Path with Content; errors unless the
// parent is a directory and Path does not exist.
type Creat struct {
	Path    Path
	Content string
}

// Rm removes a file or an empty directory; errors otherwise.
type Rm struct{ Path Path }

// Cp copies the file at Src to Dst; errors unless Src is a file, Dst's
// parent is a directory and Dst does not exist.
type Cp struct{ Src, Dst Path }

// Seq sequences two expressions, short-circuiting on error.
type Seq struct{ E1, E2 Expr }

// If branches on predicate A.
type If struct {
	A          Pred
	Then, Else Expr
}

func (Id) isExpr()    {}
func (Err) isExpr()   {}
func (Mkdir) isExpr() {}
func (Creat) isExpr() {}
func (Rm) isExpr()    {}
func (Cp) isExpr()    {}
func (Seq) isExpr()   {}
func (If) isExpr()    {}

// SeqAll sequences expressions left to right, dropping no-ops.
// SeqAll() == Id.
func SeqAll(exprs ...Expr) Expr {
	var out Expr = Id{}
	for _, e := range exprs {
		if _, ok := Unwrap(e).(Id); ok {
			continue
		}
		if _, ok := Unwrap(out).(Id); ok {
			out = e
		} else {
			out = Seq{out, e}
		}
	}
	return out
}

// Guard is the shorthand if (a) e from section 3.2: If(a, e, Id).
func Guard(a Pred, e Expr) Expr { return If{a, e, Id{}} }

// MkdirIfMissing is the idiomatic idempotent directory creation that the
// commutativity analysis recognizes as a D-effect (section 4.3):
//
//	if (¬dir?(p)) mkdir(p)
func MkdirIfMissing(p Path) Expr {
	return Guard(Not{IsDir{p}}, Mkdir{p})
}

// Size returns the number of AST nodes in e; used for reporting and tests.
func Size(e Expr) int {
	switch e := Unwrap(e).(type) {
	case Seq:
		return 1 + Size(e.E1) + Size(e.E2)
	case If:
		return 1 + predSize(e.A) + Size(e.Then) + Size(e.Else)
	default:
		return 1
	}
}

func predSize(a Pred) int {
	switch a := UnwrapPred(a).(type) {
	case Not:
		return 1 + predSize(a.P)
	case And:
		return 1 + predSize(a.L) + predSize(a.R)
	case Or:
		return 1 + predSize(a.L) + predSize(a.R)
	default:
		return 1
	}
}

// PredPaths returns the set of paths mentioned syntactically in a.
func PredPaths(a Pred) PathSet {
	s := make(PathSet)
	addPredPaths(a, s)
	return s
}

func addPredPaths(a Pred, s PathSet) {
	switch a := UnwrapPred(a).(type) {
	case Not:
		addPredPaths(a.P, s)
	case And:
		addPredPaths(a.L, s)
		addPredPaths(a.R, s)
	case Or:
		addPredPaths(a.L, s)
		addPredPaths(a.R, s)
	case IsFile:
		s.Add(a.Path)
	case IsDir:
		s.Add(a.Path)
	case IsEmptyDir:
		s.Add(a.Path)
	case IsNone:
		s.Add(a.Path)
	}
}

// ExprPaths returns the set of paths mentioned syntactically in e.
func ExprPaths(e Expr) PathSet {
	s := make(PathSet)
	addExprPaths(e, s)
	return s
}

func addExprPaths(e Expr, s PathSet) {
	switch e := Unwrap(e).(type) {
	case Mkdir:
		s.Add(e.Path)
	case Creat:
		s.Add(e.Path)
	case Rm:
		s.Add(e.Path)
	case Cp:
		s.Add(e.Src)
		s.Add(e.Dst)
	case Seq:
		addExprPaths(e.E1, s)
		addExprPaths(e.E2, s)
	case If:
		addPredPaths(e.A, s)
		addExprPaths(e.Then, s)
		addExprPaths(e.Else, s)
	}
}

// Contents returns the set of file-content literals appearing in e (from
// creat operations). The symbolic encoding uses this as part of its finite
// content vocabulary.
func Contents(e Expr) map[string]struct{} {
	s := make(map[string]struct{})
	addContents(e, s)
	return s
}

func addContents(e Expr, s map[string]struct{}) {
	switch e := Unwrap(e).(type) {
	case Creat:
		s[e.Content] = struct{}{}
	case Seq:
		addContents(e.E1, s)
		addContents(e.E2, s)
	case If:
		addContents(e.Then, s)
		addContents(e.Else, s)
	}
}

// Dom computes the bounded path domain of e per figure 8: the syntactic
// paths of e plus their parents (mkdir/creat/cp read the parent) plus a
// fresh child for every path that is removed or tested for emptiness, since
// the semantics of rm(p) and emptydir?(p) observe children of p that may not
// appear in the program text.
func Dom(e Expr) PathSet {
	s := make(PathSet)
	addDom(e, s)
	return s
}

func addDom(e Expr, s PathSet) {
	switch e := Unwrap(e).(type) {
	case Mkdir:
		s.Add(e.Path)
		addParent(e.Path, s)
	case Creat:
		s.Add(e.Path)
		addParent(e.Path, s)
	case Rm:
		s.Add(e.Path)
		s.Add(e.Path.FreshChild())
	case Cp:
		s.Add(e.Src)
		s.Add(e.Dst)
		addParent(e.Dst, s)
	case Seq:
		addDom(e.E1, s)
		addDom(e.E2, s)
	case If:
		addPredDom(e.A, s)
		addDom(e.Then, s)
		addDom(e.Else, s)
	}
}

func addPredDom(a Pred, s PathSet) {
	switch a := UnwrapPred(a).(type) {
	case Not:
		addPredDom(a.P, s)
	case And:
		addPredDom(a.L, s)
		addPredDom(a.R, s)
	case Or:
		addPredDom(a.L, s)
		addPredDom(a.R, s)
	case IsFile:
		s.Add(a.Path)
	case IsDir:
		s.Add(a.Path)
	case IsEmptyDir:
		s.Add(a.Path)
		s.Add(a.Path.FreshChild())
	case IsNone:
		s.Add(a.Path)
	}
}

func addParent(p Path, s PathSet) {
	if parent := p.Parent(); !parent.IsRoot() {
		s.Add(parent)
	}
}
