package fs

import (
	"strings"
	"testing"
)

func TestPredAndExprPaths(t *testing.T) {
	a := AndAll(IsFile{"/a"}, Or{L: IsDir{"/b"}, R: Not{P: IsEmptyDir{"/c"}}}, IsNone{"/d"})
	got := PredPaths(a)
	for _, want := range []Path{"/a", "/b", "/c", "/d"} {
		if !got.Has(want) {
			t.Errorf("PredPaths missing %s: %v", want, got.Sorted())
		}
	}
	if len(got) != 4 {
		t.Errorf("PredPaths = %v", got.Sorted())
	}

	e := SeqAll(
		Mkdir{"/m"},
		Creat{"/c", "x"},
		Rm{"/r"},
		Cp{"/s", "/t"},
		If{IsFile{"/p"}, Id{}, Err{}},
	)
	eg := ExprPaths(e)
	for _, want := range []Path{"/m", "/c", "/r", "/s", "/t", "/p"} {
		if !eg.Has(want) {
			t.Errorf("ExprPaths missing %s: %v", want, eg.Sorted())
		}
	}
	// Unlike Dom, ExprPaths reports only syntactic paths (no parents or
	// fresh children).
	if eg.Has(Path("/r").FreshChild()) {
		t.Error("ExprPaths should not include fresh children")
	}
}

func TestStatePathsAndString(t *testing.T) {
	s := State{"/b": FileContent("x"), "/a": DirContent()}
	paths := s.Paths()
	if len(paths) != 2 || paths[0] != "/a" || paths[1] != "/b" {
		t.Errorf("Paths = %v", paths)
	}
	str := StateString(s)
	if str != `{/a=dir, /b=file("x")}` {
		t.Errorf("StateString = %s", str)
	}
	if StateString(NewState()) != "{}" {
		t.Errorf("empty StateString = %s", StateString(NewState()))
	}
}

func TestPrintCoverage(t *testing.T) {
	// Exercise every constructor through the printers.
	e := If{
		A:    Or{L: And{L: True{}, R: False{}}, R: Not{P: IsEmptyDir{"/d"}}},
		Then: SeqAll(Mkdir{"/m"}, Creat{"/c", "x"}, Rm{"/r"}, Cp{"/s", "/t"}),
		Else: Err{},
	}
	s := String(e)
	for _, frag := range []string{"if", "emptydir?", "mkdir", "creat", "rm(", "cp(", "err", "true", "false"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}
