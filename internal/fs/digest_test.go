package fs

import "testing"

func TestDigestExprDeterministic(t *testing.T) {
	e := Seq{
		E1: If{A: IsDir{ParsePath("/usr")}, Then: Id{}, Else: Mkdir{ParsePath("/usr")}},
		E2: Creat{Path: ParsePath("/usr/f"), Content: "hello"},
	}
	if DigestExpr(e) != DigestExpr(e) {
		t.Error("digest of the same expression differs between calls")
	}
	// Structurally equal but separately constructed values must collide.
	e2 := Seq{
		E1: If{A: IsDir{ParsePath("/usr")}, Then: Id{}, Else: Mkdir{ParsePath("/usr")}},
		E2: Creat{Path: ParsePath("/usr/f"), Content: "hello"},
	}
	if DigestExpr(e) != DigestExpr(e2) {
		t.Error("structurally equal expressions digest differently")
	}
}

// Expressions that render similarly but differ structurally must not
// collide: the encoding is unambiguous (type tags + length-prefixed
// strings), not a pretty-print.
func TestDigestExprUnambiguous(t *testing.T) {
	distinct := []Expr{
		Id{},
		Err{},
		Mkdir{ParsePath("/a")},
		Mkdir{ParsePath("/b")},
		Rm{ParsePath("/a")},
		Creat{Path: ParsePath("/a"), Content: ""},
		Creat{Path: ParsePath("/a"), Content: "x"},
		Cp{Src: ParsePath("/a"), Dst: ParsePath("/b")},
		Cp{Src: ParsePath("/b"), Dst: ParsePath("/a")},
		Seq{E1: Mkdir{ParsePath("/a")}, E2: Id{}},
		Seq{E1: Id{}, E2: Mkdir{ParsePath("/a")}},
		// String-boundary attack: ("/ab", "c") vs ("/a", "bc") — the
		// length prefix must keep these apart.
		Creat{Path: ParsePath("/ab"), Content: "c"},
		Creat{Path: ParsePath("/a"), Content: "bc"},
		If{A: True{}, Then: Id{}, Else: Err{}},
		If{A: False{}, Then: Id{}, Else: Err{}},
		If{A: True{}, Then: Err{}, Else: Id{}},
		If{A: Not{True{}}, Then: Id{}, Else: Err{}},
		If{A: And{IsFile{ParsePath("/a")}, IsNone{ParsePath("/b")}}, Then: Id{}, Else: Err{}},
		If{A: Or{IsFile{ParsePath("/a")}, IsNone{ParsePath("/b")}}, Then: Id{}, Else: Err{}},
		If{A: IsDir{ParsePath("/a")}, Then: Id{}, Else: Err{}},
		If{A: IsEmptyDir{ParsePath("/a")}, Then: Id{}, Else: Err{}},
	}
	seen := make(map[Digest]int)
	for i, e := range distinct {
		d := DigestExpr(e)
		if j, dup := seen[d]; dup {
			t.Errorf("expressions %d and %d collide", j, i)
		}
		seen[d] = i
	}
}
