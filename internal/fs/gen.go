package fs

import "math/rand"

// This file provides random generators for FS programs and states. They are
// exported (rather than living in a _test file) because several packages'
// property-based tests cross-check the symbolic engine, the commutativity
// analysis and the pruner against the concrete evaluator on random programs.

// GenConfig controls random program generation.
type GenConfig struct {
	Paths    []Path   // path vocabulary; must be non-empty
	Contents []string // content vocabulary; must be non-empty
	MaxDepth int      // maximum AST nesting depth
}

// DefaultGenConfig is a small vocabulary that exercises parent/child
// interactions: sibling files, nested directories, a shared directory.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Paths: []Path{
			"/a", "/a/b", "/a/b/c", "/a/d", "/e", "/e/f",
		},
		Contents: []string{"x", "y"},
		MaxDepth: 4,
	}
}

func (c GenConfig) path(r *rand.Rand) Path {
	return c.Paths[r.Intn(len(c.Paths))]
}

func (c GenConfig) content(r *rand.Rand) string {
	return c.Contents[r.Intn(len(c.Contents))]
}

// GenPred generates a random predicate of at most the given depth.
func GenPred(r *rand.Rand, c GenConfig, depth int) Pred {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return IsFile{c.path(r)}
		case 1:
			return IsDir{c.path(r)}
		case 2:
			return IsEmptyDir{c.path(r)}
		default:
			return IsNone{c.path(r)}
		}
	}
	switch r.Intn(8) {
	case 0:
		return Not{GenPred(r, c, depth-1)}
	case 1:
		return And{GenPred(r, c, depth-1), GenPred(r, c, depth-1)}
	case 2:
		return Or{GenPred(r, c, depth-1), GenPred(r, c, depth-1)}
	case 3:
		return True{}
	default:
		return GenPred(r, c, 0)
	}
}

// GenExpr generates a random expression of at most the given depth.
func GenExpr(r *rand.Rand, c GenConfig, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return Id{}
		case 1:
			return Mkdir{c.path(r)}
		case 2:
			return Creat{c.path(r), c.content(r)}
		case 3:
			return Rm{c.path(r)}
		case 4:
			return Cp{c.path(r), c.path(r)}
		default:
			return Err{}
		}
	}
	switch r.Intn(4) {
	case 0:
		return Seq{GenExpr(r, c, depth-1), GenExpr(r, c, depth-1)}
	case 1:
		return If{GenPred(r, c, 2), GenExpr(r, c, depth-1), GenExpr(r, c, depth-1)}
	default:
		return GenExpr(r, c, 0)
	}
}

// GenState generates a random concrete filesystem over the vocabulary,
// including fresh children of vocabulary paths so that emptydir?/rm corner
// cases are exercised. The result is an arbitrary map, not necessarily a
// well-formed tree, matching the paper's semantics which quantifies over
// arbitrary maps.
func GenState(r *rand.Rand, c GenConfig) State {
	s := NewState()
	for _, p := range c.Paths {
		addRandomEntry(r, c, s, p)
		if r.Intn(4) == 0 {
			addRandomEntry(r, c, s, p.FreshChild())
		}
	}
	return s
}

// GenWellFormedState generates a random filesystem that is a well-formed
// tree: every present path has all ancestors present as directories.
func GenWellFormedState(r *rand.Rand, c GenConfig) State {
	s := GenState(r, c)
	for p, content := range s {
		keep := true
		for q := p.Parent(); !q.IsRoot(); q = q.Parent() {
			if !s.IsDir(q) {
				keep = false
				break
			}
		}
		if !keep {
			delete(s, p)
			continue
		}
		_ = content
	}
	return s
}

func addRandomEntry(r *rand.Rand, c GenConfig, s State, p Path) {
	switch r.Intn(3) {
	case 0:
		// absent
	case 1:
		s[p] = DirContent()
	case 2:
		s[p] = FileContent(c.content(r))
	}
}
