package fs

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestInternCanonical: structurally equal trees intern to the same pointer,
// distinct trees to distinct pointers.
func TestInternCanonical(t *testing.T) {
	in := NewInterner()
	a := Seq{E1: Mkdir{Path: "/a"}, E2: Creat{Path: "/a/b", Content: "x"}}
	b := Seq{E1: Mkdir{Path: "/a"}, E2: Creat{Path: "/a/b", Content: "x"}}
	c := Seq{E1: Mkdir{Path: "/a"}, E2: Creat{Path: "/a/b", Content: "y"}}
	ha, hb, hc := in.Intern(a), in.Intern(b), in.Intern(c)
	if ha != hb {
		t.Fatalf("structurally equal trees interned to distinct nodes")
	}
	if ha == hc {
		t.Fatalf("distinct trees interned to the same node")
	}
	if in.Intern(ha) != ha {
		t.Fatalf("re-interning an interned node is not the identity")
	}
}

// TestInternSharesSubtrees: a shared subtree appearing under two different
// roots is one canonical node, and interning the second root hits it.
func TestInternSharesSubtrees(t *testing.T) {
	in := NewInterner()
	shared := MkdirIfMissing("/usr/lib")
	r1 := Seq{E1: shared, E2: Creat{Path: "/usr/lib/a", Content: "a"}}
	r2 := Seq{E1: shared, E2: Creat{Path: "/usr/lib/b", Content: "b"}}
	h1, st1 := in.InternWithStats(r1)
	h2, st2 := in.InternWithStats(r2)
	if st1.Hits != 0 {
		t.Fatalf("first intern reported %d hits; want 0", st1.Hits)
	}
	if st2.Hits == 0 {
		t.Fatalf("second intern with a shared subtree reported no hits")
	}
	u1 := Unwrap(h1).(Seq)
	u2 := Unwrap(h2).(Seq)
	if u1.E1 != u2.E1 {
		t.Fatalf("shared subtree not canonicalized to one node")
	}
}

// TestInternDigestMatchesPlain: the stamped digest equals DigestExpr of the
// plain tree, for random expressions.
func TestInternDigestMatchesPlain(t *testing.T) {
	in := NewInterner()
	cfg := DefaultGenConfig()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		e := GenExpr(r, cfg, 5)
		h := in.Intern(e)
		if h.Digest() != DigestExpr(e) {
			t.Fatalf("interned digest differs from plain digest for %s", String(e))
		}
		if DigestExpr(h) != DigestExpr(e) {
			t.Fatalf("DigestExpr(interned) differs from DigestExpr(plain)")
		}
	}
}

// TestInternTransparent: every observation of an interned tree — size,
// printing, paths, contents, domain, evaluation — matches the plain tree.
func TestInternTransparent(t *testing.T) {
	cfg := DefaultGenConfig()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		e := GenExpr(r, cfg, 5)
		h := Intern(e)
		if Size(h) != Size(e) {
			t.Fatalf("Size differs: %d vs %d", Size(h), Size(e))
		}
		if String(h) != String(e) {
			t.Fatalf("String differs:\n%s\n%s", String(h), String(e))
		}
		if !reflect.DeepEqual(ExprPaths(h), ExprPaths(e)) {
			t.Fatalf("ExprPaths differs for %s", String(e))
		}
		if !reflect.DeepEqual(Contents(h), Contents(e)) {
			t.Fatalf("Contents differs for %s", String(e))
		}
		if !reflect.DeepEqual(Dom(h), Dom(e)) {
			t.Fatalf("Dom differs for %s", String(e))
		}
		for j := 0; j < 5; j++ {
			s := GenState(r, cfg)
			o1, ok1 := Eval(h, s)
			o2, ok2 := Eval(e, s)
			if ok1 != ok2 || (ok1 && !o1.Equal(o2)) {
				t.Fatalf("Eval differs on %s from %s", String(e), StateString(s))
			}
		}
	}
}

// TestInternPredTransparent mirrors TestInternTransparent for predicates.
func TestInternPredTransparent(t *testing.T) {
	cfg := DefaultGenConfig()
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		a := GenPred(r, cfg, 4)
		h := InternPred(a)
		if PredString(h) != PredString(a) {
			t.Fatalf("PredString differs")
		}
		if DigestPred(h) != DigestPred(a) {
			t.Fatalf("DigestPred differs")
		}
		if !reflect.DeepEqual(PredPaths(h), PredPaths(a)) {
			t.Fatalf("PredPaths differs")
		}
		for j := 0; j < 5; j++ {
			s := GenState(r, cfg)
			if EvalPred(h, s) != EvalPred(a, s) {
				t.Fatalf("EvalPred differs on %s", PredString(a))
			}
		}
	}
}

// TestInternConcurrent: concurrent interning of overlapping trees always
// converges to one canonical pointer per structure.
func TestInternConcurrent(t *testing.T) {
	in := NewInterner()
	cfg := DefaultGenConfig()
	exprs := make([]Expr, 64)
	r := rand.New(rand.NewSource(17))
	for i := range exprs {
		exprs[i] = GenExpr(r, cfg, 4)
	}
	results := make([][]*HExpr, 8)
	var wg sync.WaitGroup
	for w := 0; w < len(results); w++ {
		w := w
		results[w] = make([]*HExpr, len(exprs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, e := range exprs {
				results[w][i] = in.Intern(e)
			}
		}()
	}
	wg.Wait()
	for w := 1; w < len(results); w++ {
		for i := range exprs {
			if results[w][i] != results[0][i] {
				t.Fatalf("goroutine %d interned expr %d to a different node", w, i)
			}
		}
	}
}

// TestSeqAllUnwrapsInterned: SeqAll drops interned no-ops like plain ones.
func TestSeqAllUnwrapsInterned(t *testing.T) {
	id := Intern(Id{})
	mk := Intern(Mkdir{Path: "/a"})
	if got := SeqAll(id, mk, id); DigestExpr(got) != mk.Digest() {
		t.Fatalf("SeqAll with interned ids = %s; want mkdir(/a)", String(got))
	}
}
