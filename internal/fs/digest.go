package fs

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Digest is a canonical content hash of an expression: two expressions
// have equal digests iff they are structurally equal. It is the key
// material for the process-wide query cache (internal/qcache), which
// memoizes solver verdicts across manifests that share resource models.
type Digest [sha256.Size]byte

// DigestExpr computes the canonical digest of e. The encoding is an
// unambiguous preorder walk: every node contributes a type tag, and every
// string (path or content) is length-prefixed, so no two distinct ASTs
// serialize identically.
func DigestExpr(e Expr) Digest {
	h := sha256.New()
	writeExprHash(h, e)
	var d Digest
	h.Sum(d[:0])
	return d
}

// Node tags for the canonical encoding. Expressions and predicates share
// one tag space; values are fixed forever (digests are cache keys).
const (
	tagId byte = iota + 1
	tagErr
	tagMkdir
	tagCreat
	tagRm
	tagCp
	tagSeq
	tagIf
	tagTrue
	tagFalse
	tagNot
	tagAnd
	tagOr
	tagIsFile
	tagIsDir
	tagIsEmptyDir
	tagIsNone
)

func writeString(h hash.Hash, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func writeExprHash(h hash.Hash, e Expr) {
	switch e := e.(type) {
	case Id:
		h.Write([]byte{tagId})
	case Err:
		h.Write([]byte{tagErr})
	case Mkdir:
		h.Write([]byte{tagMkdir})
		writeString(h, string(e.Path))
	case Creat:
		h.Write([]byte{tagCreat})
		writeString(h, string(e.Path))
		writeString(h, e.Content)
	case Rm:
		h.Write([]byte{tagRm})
		writeString(h, string(e.Path))
	case Cp:
		h.Write([]byte{tagCp})
		writeString(h, string(e.Src))
		writeString(h, string(e.Dst))
	case Seq:
		h.Write([]byte{tagSeq})
		writeExprHash(h, e.E1)
		writeExprHash(h, e.E2)
	case If:
		h.Write([]byte{tagIf})
		writePredHash(h, e.A)
		writeExprHash(h, e.Then)
		writeExprHash(h, e.Else)
	default:
		panic("fs: unknown expression in DigestExpr")
	}
}

func writePredHash(h hash.Hash, a Pred) {
	switch a := a.(type) {
	case True:
		h.Write([]byte{tagTrue})
	case False:
		h.Write([]byte{tagFalse})
	case Not:
		h.Write([]byte{tagNot})
		writePredHash(h, a.P)
	case And:
		h.Write([]byte{tagAnd})
		writePredHash(h, a.L)
		writePredHash(h, a.R)
	case Or:
		h.Write([]byte{tagOr})
		writePredHash(h, a.L)
		writePredHash(h, a.R)
	case IsFile:
		h.Write([]byte{tagIsFile})
		writeString(h, string(a.Path))
	case IsDir:
		h.Write([]byte{tagIsDir})
		writeString(h, string(a.Path))
	case IsEmptyDir:
		h.Write([]byte{tagIsEmptyDir})
		writeString(h, string(a.Path))
	case IsNone:
		h.Write([]byte{tagIsNone})
		writeString(h, string(a.Path))
	default:
		panic("fs: unknown predicate in DigestExpr")
	}
}
