package fs

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// Digest is a canonical content hash of an expression: two expressions
// have equal digests iff they are structurally equal. It is the key
// material for the process-wide query cache (internal/qcache), which
// memoizes solver verdicts across manifests that share resource models.
type Digest [sha256.Size]byte

// DigestExpr computes the canonical digest of e. The scheme is a Merkle
// hash: a leaf digests its type tag and length-prefixed strings, an
// interior node digests its tag followed by its children's digests. The
// composition makes digests independent of sharing — an interned tree and
// the equivalent plain tree hash identically — and lets hash-consed nodes
// answer in O(1) from the digest stamped at construction (the fast path
// below and in the Interner, which folds cached child digests).
func DigestExpr(e Expr) Digest {
	if h, ok := e.(*HExpr); ok {
		return h.dig
	}
	h := sha256.New()
	switch e := e.(type) {
	case Id:
		h.Write([]byte{tagId})
	case Err:
		h.Write([]byte{tagErr})
	case Mkdir:
		h.Write([]byte{tagMkdir})
		writeString(h, string(e.Path))
	case Creat:
		h.Write([]byte{tagCreat})
		writeString(h, string(e.Path))
		writeString(h, e.Content)
	case Rm:
		h.Write([]byte{tagRm})
		writeString(h, string(e.Path))
	case Cp:
		h.Write([]byte{tagCp})
		writeString(h, string(e.Src))
		writeString(h, string(e.Dst))
	case Seq:
		h.Write([]byte{tagSeq})
		writeDigest(h, DigestExpr(e.E1))
		writeDigest(h, DigestExpr(e.E2))
	case If:
		h.Write([]byte{tagIf})
		writeDigest(h, DigestPred(e.A))
		writeDigest(h, DigestExpr(e.Then))
		writeDigest(h, DigestExpr(e.Else))
	default:
		panic("fs: unknown expression in DigestExpr")
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// DigestPred computes the canonical digest of a predicate, under the same
// Merkle scheme (the tag space is shared with expressions, so expression
// and predicate digests can never collide structurally).
func DigestPred(a Pred) Digest {
	if h, ok := a.(*HPred); ok {
		return h.dig
	}
	h := sha256.New()
	switch a := a.(type) {
	case True:
		h.Write([]byte{tagTrue})
	case False:
		h.Write([]byte{tagFalse})
	case Not:
		h.Write([]byte{tagNot})
		writeDigest(h, DigestPred(a.P))
	case And:
		h.Write([]byte{tagAnd})
		writeDigest(h, DigestPred(a.L))
		writeDigest(h, DigestPred(a.R))
	case Or:
		h.Write([]byte{tagOr})
		writeDigest(h, DigestPred(a.L))
		writeDigest(h, DigestPred(a.R))
	case IsFile:
		h.Write([]byte{tagIsFile})
		writeString(h, string(a.Path))
	case IsDir:
		h.Write([]byte{tagIsDir})
		writeString(h, string(a.Path))
	case IsEmptyDir:
		h.Write([]byte{tagIsEmptyDir})
		writeString(h, string(a.Path))
	case IsNone:
		h.Write([]byte{tagIsNone})
		writeString(h, string(a.Path))
	default:
		panic("fs: unknown predicate in DigestPred")
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Node tags for the canonical encoding. Expressions and predicates share
// one tag space; values are fixed forever (digests are cache keys).
const (
	tagId byte = iota + 1
	tagErr
	tagMkdir
	tagCreat
	tagRm
	tagCp
	tagSeq
	tagIf
	tagTrue
	tagFalse
	tagNot
	tagAnd
	tagOr
	tagIsFile
	tagIsDir
	tagIsEmptyDir
	tagIsNone
)

func writeString(h hash.Hash, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func writeDigest(h hash.Hash, d Digest) {
	h.Write(d[:])
}
