package fs

import (
	"math/rand"
	"testing"
)

func mustEval(t *testing.T, e Expr, s State) State {
	t.Helper()
	out, ok := Eval(e, s)
	if !ok {
		t.Fatalf("Eval(%s, %s) errored, want success", String(e), StateString(s))
	}
	return out
}

func mustErr(t *testing.T, e Expr, s State) {
	t.Helper()
	if out, ok := Eval(e, s); ok {
		t.Fatalf("Eval(%s, %s) = %s, want error", String(e), StateString(s), StateString(out))
	}
}

func TestMkdir(t *testing.T) {
	s := NewState()
	out := mustEval(t, Mkdir{"/a"}, s)
	if !out.IsDir("/a") {
		t.Error("/a not created")
	}
	// Parent must be a directory.
	mustErr(t, Mkdir{"/a/b"}, NewState())
	out2 := mustEval(t, Mkdir{"/a/b"}, out)
	if !out2.IsDir("/a/b") {
		t.Error("/a/b not created")
	}
	// Target must not exist.
	mustErr(t, Mkdir{"/a"}, out)
	// Parent that is a file.
	s2 := State{"/a": FileContent("x")}
	mustErr(t, Mkdir{"/a/b"}, s2)
	// Root cannot be created.
	mustErr(t, Mkdir{Root}, NewState())
}

func TestCreat(t *testing.T) {
	out := mustEval(t, Creat{"/f", "hello"}, NewState())
	if !out.IsFile("/f") || out["/f"].Data != "hello" {
		t.Errorf("creat result: %s", StateString(out))
	}
	mustErr(t, Creat{"/f", "x"}, out)          // exists
	mustErr(t, Creat{"/d/f", "x"}, NewState()) // parent missing
	mustErr(t, Creat{"/f/g", "x"}, out)        // parent is a file
	mustErr(t, Creat{Root, "x"}, NewState())   // root
	_ = mustEval(t, Seq{Mkdir{"/d"}, Creat{"/d/f", "x"}}, NewState())
}

func TestRm(t *testing.T) {
	s := State{"/f": FileContent("x"), "/d": DirContent(), "/d/g": FileContent("y")}
	out := mustEval(t, Rm{"/f"}, s)
	if out.Exists("/f") {
		t.Error("/f still present")
	}
	// Non-empty directory cannot be removed.
	mustErr(t, Rm{"/d"}, s)
	// Empty directory can.
	out2 := mustEval(t, Seq{Rm{"/d/g"}, Rm{"/d"}}, s)
	if out2.Exists("/d") {
		t.Error("/d still present")
	}
	mustErr(t, Rm{"/missing"}, s)
	mustErr(t, Rm{Root}, s)
}

func TestCp(t *testing.T) {
	s := State{"/src": FileContent("data"), "/d": DirContent()}
	out := mustEval(t, Cp{"/src", "/d/dst"}, s)
	if got := out["/d/dst"]; got != FileContent("data") {
		t.Errorf("cp copied %v", got)
	}
	mustErr(t, Cp{"/missing", "/d/dst"}, s) // src missing
	mustErr(t, Cp{"/d", "/d/dst"}, s)       // src is a dir
	mustErr(t, Cp{"/src", "/nodir/dst"}, s) // dst parent missing
	s2 := s.Clone()
	s2["/d/dst"] = FileContent("old")
	mustErr(t, Cp{"/src", "/d/dst"}, s2) // dst exists
}

func TestSeqShortCircuit(t *testing.T) {
	mustErr(t, Seq{Err{}, Mkdir{"/a"}}, NewState())
	out := mustEval(t, Seq{Id{}, Mkdir{"/a"}}, NewState())
	if !out.IsDir("/a") {
		t.Error("seq did not apply second expression")
	}
}

func TestIf(t *testing.T) {
	s := State{"/a": DirContent()}
	out := mustEval(t, If{IsDir{"/a"}, Creat{"/a/f", "x"}, Err{}}, s)
	if !out.IsFile("/a/f") {
		t.Error("then-branch not taken")
	}
	mustErr(t, If{IsDir{"/missing"}, Id{}, Err{}}, s)
}

func TestPredicates(t *testing.T) {
	s := State{
		"/f":   FileContent("x"),
		"/d":   DirContent(),
		"/e":   DirContent(),
		"/e/c": FileContent("y"),
	}
	cases := []struct {
		a    Pred
		want bool
	}{
		{True{}, true},
		{False{}, false},
		{IsFile{"/f"}, true},
		{IsFile{"/d"}, false},
		{IsDir{"/d"}, true},
		{IsDir{"/f"}, false},
		{IsDir{Root}, true},
		{IsEmptyDir{"/d"}, true},
		{IsEmptyDir{"/e"}, false},
		{IsEmptyDir{"/f"}, false},
		{IsNone{"/missing"}, true},
		{IsNone{"/f"}, false},
		{IsNone{Root}, false},
		{Not{IsFile{"/f"}}, false},
		{And{IsFile{"/f"}, IsDir{"/d"}}, true},
		{And{IsFile{"/f"}, IsDir{"/f"}}, false},
		{Or{IsFile{"/d"}, IsDir{"/d"}}, true},
		{Or{IsFile{"/d"}, IsDir{"/f"}}, false},
	}
	for _, c := range cases {
		if got := EvalPred(c.a, s); got != c.want {
			t.Errorf("EvalPred(%s) = %v, want %v", PredString(c.a), got, c.want)
		}
	}
}

func TestEvalDoesNotMutateInput(t *testing.T) {
	s := State{"/a": DirContent()}
	_, _ = Eval(Seq{Creat{"/a/f", "x"}, Rm{"/a/f"}}, s)
	if len(s) != 1 || !s.IsDir("/a") {
		t.Errorf("input state mutated: %s", StateString(s))
	}
}

func TestMkdirIfMissingIdempotent(t *testing.T) {
	e := MkdirIfMissing("/a")
	out1 := mustEval(t, e, NewState())
	out2 := mustEval(t, e, out1)
	if !out1.Equal(out2) {
		t.Error("guarded mkdir not idempotent")
	}
	// On a file it is a silent no-op (the guard fails only for dirs); the
	// inner mkdir errors because the path exists.
	s := State{"/a": FileContent("x")}
	mustErr(t, e, s)
}

// The paper's example equivalence (section 4.4):
//
//	mkdir(p); if (dir?(p)) id else err  ≡  mkdir(p)
func TestPaperEquivalenceExample(t *testing.T) {
	lhs := Seq{Mkdir{"/a/b"}, If{IsDir{"/a/b"}, Id{}, Err{}}}
	rhs := Mkdir{"/a/b"}
	r := rand.New(rand.NewSource(1))
	cfg := DefaultGenConfig()
	for i := 0; i < 500; i++ {
		s := GenState(r, cfg)
		if !EquivOn(lhs, rhs, s) {
			t.Fatalf("inequivalent on %s", StateString(s))
		}
	}
}

// Well-formedness is preserved by successful evaluation from well-formed
// inputs: mkdir/creat check the parent, rm only removes leaves, cp checks
// the destination parent.
func TestEvalPreservesWellFormedness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cfg := DefaultGenConfig()
	for i := 0; i < 2000; i++ {
		s := GenWellFormedState(r, cfg)
		if !s.IsWellFormed() {
			t.Fatalf("generator produced ill-formed state %s", StateString(s))
		}
		e := GenExpr(r, cfg, 4)
		out, ok := Eval(e, s)
		if ok && !out.IsWellFormed() {
			t.Fatalf("e=%s broke well-formedness: in=%s out=%s",
				String(e), StateString(s), StateString(out))
		}
	}
}

func TestDom(t *testing.T) {
	e := SeqAll(
		Mkdir{"/a/b"},
		Rm{"/c"},
		If{IsEmptyDir{"/d"}, Id{}, Err{}},
		Cp{"/s", "/t/u"},
	)
	d := Dom(e)
	for _, p := range []Path{
		"/a", "/a/b", // mkdir + parent
		"/c", Path("/c").FreshChild(), // rm + fresh child
		"/d", Path("/d").FreshChild(), // emptydir + fresh child
		"/s", "/t", "/t/u", // cp
	} {
		if !d.Has(p) {
			t.Errorf("Dom missing %q; got %v", p, d.Sorted())
		}
	}
}

func TestSizeAndStrings(t *testing.T) {
	e := Seq{Mkdir{"/a"}, If{IsDir{"/a"}, Creat{"/a/f", "x"}, Err{}}}
	if Size(e) < 4 {
		t.Errorf("Size = %d", Size(e))
	}
	if got := String(e); got == "" {
		t.Error("empty String")
	}
	if got := PredString(AndAll(IsDir{"/a"}, Not{IsFile{"/b"}}, True{})); got == "" {
		t.Error("empty PredString")
	}
	if got := String(SeqAll()); got != "id" {
		t.Errorf("SeqAll() = %s", got)
	}
	if PredString(OrAll()) != "false" || PredString(AndAll()) != "true" {
		t.Error("empty folds wrong")
	}
}

func TestContents(t *testing.T) {
	e := SeqAll(Creat{"/a", "x"}, If{True{}, Creat{"/b", "y"}, Creat{"/c", "x"}})
	got := Contents(e)
	if len(got) != 2 {
		t.Errorf("Contents = %v", got)
	}
	for _, want := range []string{"x", "y"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing content %q", want)
		}
	}
}
