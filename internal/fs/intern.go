package fs

// Hash-consing for FS expressions. An Interner canonicalizes structurally
// equal subtrees to a single immutable *HExpr/*HPred instance, stamped with
// its structural digest at construction. Downstream layers build on node
// identity: DigestExpr on an interned node is a pointer read (the qcache
// key material that used to re-serialize whole trees), the symbolic engine
// memoizes encode results per interned subtree, and the commutativity and
// pruning analyses memoize summaries per interned node.
//
// Interned nodes are transparent to every consumer: *HExpr implements Expr
// and *HPred implements Pred, and every structural walker in this
// repository switches on Unwrap(e)/UnwrapPred(a), which peels exactly one
// wrapper level. The children of an interned node's shallow node are
// themselves interned, so recursion through Unwrap stays within canonical
// nodes all the way down. Plain and interned trees are observationally
// identical — same evaluation, same printing, same digests — which is what
// lets the differential tests pin interned verdicts to the plain baseline.

import "sync"

// HExpr is a hash-consed expression: a canonical immutable instance of a
// structurally unique subtree, carrying its precomputed digest. Within one
// Interner, structural equality coincides with pointer equality.
type HExpr struct {
	node Expr // shallow node; child expressions/predicates are interned
	dig  Digest
}

func (*HExpr) isExpr() {}

// Node returns the shallow underlying node. Its children are themselves
// interned (*HExpr/*HPred).
func (h *HExpr) Node() Expr { return h.node }

// Digest returns the precomputed structural digest, equal to DigestExpr of
// the equivalent plain tree.
func (h *HExpr) Digest() Digest { return h.dig }

// HPred is the hash-consed counterpart for predicates.
type HPred struct {
	node Pred
	dig  Digest
}

func (*HPred) isPred() {}

// Node returns the shallow underlying predicate node.
func (h *HPred) Node() Pred { return h.node }

// Digest returns the precomputed structural digest of the predicate.
func (h *HPred) Digest() Digest { return h.dig }

// Unwrap peels one hash-consing wrapper, returning the shallow node of an
// interned expression and any other expression unchanged. Every structural
// type switch over Expr must switch on Unwrap(e).
func Unwrap(e Expr) Expr {
	if h, ok := e.(*HExpr); ok {
		return h.node
	}
	return e
}

// UnwrapPred is Unwrap for predicates.
func UnwrapPred(a Pred) Pred {
	if h, ok := a.(*HPred); ok {
		return h.node
	}
	return a
}

// exprKey identifies a shallow expression node up to structural equality of
// the whole subtree: leaves by their literal fields, interior nodes by the
// canonical pointers of their (already interned) children.
type exprKey struct {
	tag    byte
	s1, s2 string
	e1, e2 *HExpr
	p      *HPred
}

// predKey is exprKey for predicates.
type predKey struct {
	tag    byte
	s1     string
	p1, p2 *HPred
}

// InternOpStats counts the node lookups of one Intern call: Hits are
// subtrees already canonical (shared with earlier interned expressions),
// Misses are nodes interned for the first time.
type InternOpStats struct {
	Hits, Misses int64
}

// InternerStats are the cumulative counters of an interner.
type InternerStats struct {
	Hits   int64 // node lookups answered by an existing canonical instance
	Misses int64 // nodes interned for the first time
	Nodes  int   // distinct canonical nodes currently held
}

// maxInternedNodes bounds an interner's tables. On overflow the tables are
// cleared: previously returned nodes stay valid (they are self-contained),
// later interning of equal structures just mints fresh canonical instances.
// The bound is far above any real manifest's distinct-subtree count; it
// exists so a pathological long-running process cannot grow without limit.
const maxInternedNodes = 1 << 20

// Interner canonicalizes expressions. Safe for concurrent use.
type Interner struct {
	mu     sync.Mutex
	exprs  map[exprKey]*HExpr
	preds  map[predKey]*HPred
	hits   int64
	misses int64
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{
		exprs: make(map[exprKey]*HExpr),
		preds: make(map[predKey]*HPred),
	}
}

// Intern returns the canonical instance of e, interning every subtree.
// Passing an already interned expression is a no-op (and counts as a hit).
func (in *Interner) Intern(e Expr) *HExpr {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.intern(e)
}

// InternPred returns the canonical instance of a.
func (in *Interner) InternPred(a Pred) *HPred {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.internPred(a)
}

// InternWithStats is Intern plus the hit/miss delta of this call alone.
func (in *Interner) InternWithStats(e Expr) (*HExpr, InternOpStats) {
	in.mu.Lock()
	defer in.mu.Unlock()
	h0, m0 := in.hits, in.misses
	h := in.intern(e)
	return h, InternOpStats{Hits: in.hits - h0, Misses: in.misses - m0}
}

// Stats returns the cumulative counters.
func (in *Interner) Stats() InternerStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return InternerStats{Hits: in.hits, Misses: in.misses, Nodes: len(in.exprs) + len(in.preds)}
}

// intern recursively canonicalizes; callers hold in.mu.
func (in *Interner) intern(e Expr) *HExpr {
	if h, ok := e.(*HExpr); ok {
		in.hits++
		return h
	}
	switch e := e.(type) {
	case Id:
		return in.get(exprKey{tag: tagId}, func() Expr { return Id{} })
	case Err:
		return in.get(exprKey{tag: tagErr}, func() Expr { return Err{} })
	case Mkdir:
		return in.get(exprKey{tag: tagMkdir, s1: string(e.Path)}, func() Expr { return e })
	case Creat:
		return in.get(exprKey{tag: tagCreat, s1: string(e.Path), s2: e.Content}, func() Expr { return e })
	case Rm:
		return in.get(exprKey{tag: tagRm, s1: string(e.Path)}, func() Expr { return e })
	case Cp:
		return in.get(exprKey{tag: tagCp, s1: string(e.Src), s2: string(e.Dst)}, func() Expr { return e })
	case Seq:
		e1 := in.intern(e.E1)
		e2 := in.intern(e.E2)
		return in.get(exprKey{tag: tagSeq, e1: e1, e2: e2}, func() Expr { return Seq{E1: e1, E2: e2} })
	case If:
		a := in.internPred(e.A)
		t := in.intern(e.Then)
		el := in.intern(e.Else)
		return in.get(exprKey{tag: tagIf, p: a, e1: t, e2: el}, func() Expr { return If{A: a, Then: t, Else: el} })
	default:
		panic("fs: unknown expression in Intern")
	}
}

func (in *Interner) internPred(a Pred) *HPred {
	if h, ok := a.(*HPred); ok {
		in.hits++
		return h
	}
	switch a := a.(type) {
	case True:
		return in.getPred(predKey{tag: tagTrue}, func() Pred { return True{} })
	case False:
		return in.getPred(predKey{tag: tagFalse}, func() Pred { return False{} })
	case Not:
		p := in.internPred(a.P)
		return in.getPred(predKey{tag: tagNot, p1: p}, func() Pred { return Not{P: p} })
	case And:
		l := in.internPred(a.L)
		r := in.internPred(a.R)
		return in.getPred(predKey{tag: tagAnd, p1: l, p2: r}, func() Pred { return And{L: l, R: r} })
	case Or:
		l := in.internPred(a.L)
		r := in.internPred(a.R)
		return in.getPred(predKey{tag: tagOr, p1: l, p2: r}, func() Pred { return Or{L: l, R: r} })
	case IsFile:
		return in.getPred(predKey{tag: tagIsFile, s1: string(a.Path)}, func() Pred { return a })
	case IsDir:
		return in.getPred(predKey{tag: tagIsDir, s1: string(a.Path)}, func() Pred { return a })
	case IsEmptyDir:
		return in.getPred(predKey{tag: tagIsEmptyDir, s1: string(a.Path)}, func() Pred { return a })
	case IsNone:
		return in.getPred(predKey{tag: tagIsNone, s1: string(a.Path)}, func() Pred { return a })
	default:
		panic("fs: unknown predicate in Intern")
	}
}

// get returns the canonical node for k, building and digesting it on first
// sight. The digest of the shallow node folds the children's cached
// digests, so construction is O(1) per new node and the digest equals the
// plain tree's (the Merkle scheme of digest.go).
func (in *Interner) get(k exprKey, build func() Expr) *HExpr {
	if h, ok := in.exprs[k]; ok {
		in.hits++
		return h
	}
	in.evictIfFull()
	node := build()
	h := &HExpr{node: node, dig: DigestExpr(node)}
	in.exprs[k] = h
	in.misses++
	return h
}

func (in *Interner) getPred(k predKey, build func() Pred) *HPred {
	if h, ok := in.preds[k]; ok {
		in.hits++
		return h
	}
	in.evictIfFull()
	node := build()
	h := &HPred{node: node, dig: DigestPred(node)}
	in.preds[k] = h
	in.misses++
	return h
}

func (in *Interner) evictIfFull() {
	if len(in.exprs)+len(in.preds) >= maxInternedNodes {
		in.exprs = make(map[exprKey]*HExpr)
		in.preds = make(map[predKey]*HPred)
	}
}

// defaultInterner backs the package-level functions: one process-wide
// canonical node space, so pointer-keyed memos (sym sessions, commute and
// prune summaries) hit across independently loaded manifests that share
// resource models.
var defaultInterner = NewInterner()

// DefaultInterner returns the process-wide interner.
func DefaultInterner() *Interner { return defaultInterner }

// Intern canonicalizes e in the process-wide interner.
func Intern(e Expr) *HExpr { return defaultInterner.Intern(e) }

// InternPred canonicalizes a in the process-wide interner.
func InternPred(a Pred) *HPred { return defaultInterner.InternPred(a) }

// InternWithStats canonicalizes e in the process-wide interner, returning
// this call's hit/miss delta.
func InternWithStats(e Expr) (*HExpr, InternOpStats) {
	return defaultInterner.InternWithStats(e)
}
