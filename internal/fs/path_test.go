package fs

import (
	"reflect"
	"testing"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		in   string
		want Path
	}{
		{"/", "/"},
		{"", "/"},
		{"/a", "/a"},
		{"/a/", "/a"},
		{"//a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"a/b", "/a/b"},
	}
	for _, c := range cases {
		if got := ParsePath(c.in); got != c.want {
			t.Errorf("ParsePath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMakePath(t *testing.T) {
	if got := MakePath(); got != Root {
		t.Errorf("MakePath() = %q, want /", got)
	}
	if got := MakePath("etc", "nginx"); got != "/etc/nginx" {
		t.Errorf("MakePath(etc,nginx) = %q", got)
	}
}

func TestParentBase(t *testing.T) {
	cases := []struct {
		p      Path
		parent Path
		base   string
	}{
		{"/", "/", "/"},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		if got := c.p.Parent(); got != c.parent {
			t.Errorf("%q.Parent() = %q, want %q", c.p, got, c.parent)
		}
		if got := c.p.Base(); got != c.base {
			t.Errorf("%q.Base() = %q, want %q", c.p, got, c.base)
		}
	}
}

func TestJoin(t *testing.T) {
	if got := Root.Join("a"); got != "/a" {
		t.Errorf("Root.Join(a) = %q", got)
	}
	if got := Path("/a").Join("b"); got != "/a/b" {
		t.Errorf("/a.Join(b) = %q", got)
	}
}

func TestChildDescendant(t *testing.T) {
	if !Path("/a/b").IsChildOf("/a") {
		t.Error("/a/b should be child of /a")
	}
	if Path("/a/b/c").IsChildOf("/a") {
		t.Error("/a/b/c is not a direct child of /a")
	}
	if !Path("/a/b/c").IsDescendantOf("/a") {
		t.Error("/a/b/c should descend from /a")
	}
	if Path("/ab").IsDescendantOf("/a") {
		t.Error("/ab does not descend from /a (prefix trap)")
	}
	if Path("/a").IsDescendantOf("/a") {
		t.Error("a path does not descend from itself")
	}
	if !Path("/a").IsDescendantOf(Root) {
		t.Error("/a descends from the root")
	}
	if !Path("/a").IsChildOf(Root) {
		t.Error("/a is a child of the root")
	}
}

func TestAncestors(t *testing.T) {
	got := Path("/a/b/c").Ancestors()
	want := []Path{"/a", "/a/b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors = %v, want %v", got, want)
	}
	if got := Path("/a").Ancestors(); len(got) != 0 {
		t.Errorf("Ancestors(/a) = %v, want empty", got)
	}
}

func TestDepth(t *testing.T) {
	for p, d := range map[Path]int{"/": 0, "/a": 1, "/a/b": 2} {
		if got := p.Depth(); got != d {
			t.Errorf("%q.Depth() = %d, want %d", p, got, d)
		}
	}
}

func TestPathSet(t *testing.T) {
	s := NewPathSet("/b", "/a")
	if !s.Has("/a") || !s.Has("/b") || s.Has("/c") {
		t.Error("membership wrong")
	}
	if got := s.Sorted(); !reflect.DeepEqual(got, []Path{"/a", "/b"}) {
		t.Errorf("Sorted = %v", got)
	}
	other := NewPathSet("/c")
	if s.Intersects(other) {
		t.Error("disjoint sets reported intersecting")
	}
	other.Add("/b")
	if !s.Intersects(other) {
		t.Error("intersecting sets reported disjoint")
	}
	clone := s.Clone()
	clone.Add("/z")
	if s.Has("/z") {
		t.Error("Clone aliases original")
	}
}
