package fs

import "sort"

// ContentKind distinguishes directories from regular files.
type ContentKind uint8

// The two kinds of filesystem objects that FS models.
const (
	KindDir ContentKind = iota
	KindFile
)

// Content is the value stored at a path: either Dir or File(data).
type Content struct {
	Kind ContentKind
	Data string // file contents; meaningless for directories
}

// DirContent is the directory value.
func DirContent() Content { return Content{Kind: KindDir} }

// FileContent is a regular-file value with the given data.
func FileContent(data string) Content { return Content{Kind: KindFile, Data: data} }

// State is a concrete filesystem: a finite map from paths to contents
// (figure 5). The root directory is implicit — it is always a directory and
// never stored in the map.
type State map[Path]Content

// NewState builds an empty filesystem.
func NewState() State { return make(State) }

// Clone returns a copy of the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for p, c := range s {
		out[p] = c
	}
	return out
}

// Equal reports whether two states are identical maps.
func (s State) Equal(other State) bool {
	if len(s) != len(other) {
		return false
	}
	for p, c := range s {
		if oc, ok := other[p]; !ok || oc != c {
			return false
		}
	}
	return true
}

// IsDir reports whether p is a directory in s.
func (s State) IsDir(p Path) bool {
	if p.IsRoot() {
		return true
	}
	c, ok := s[p]
	return ok && c.Kind == KindDir
}

// IsFile reports whether p is a regular file in s.
func (s State) IsFile(p Path) bool {
	c, ok := s[p]
	return ok && c.Kind == KindFile
}

// Exists reports whether p is present in s (the root always exists).
func (s State) Exists(p Path) bool {
	if p.IsRoot() {
		return true
	}
	_, ok := s[p]
	return ok
}

// HasChild reports whether any direct child of p exists in s.
func (s State) HasChild(p Path) bool {
	for q := range s {
		if q.IsChildOf(p) {
			return true
		}
	}
	return false
}

// IsWellFormed reports whether every non-root path in s has all of its
// strict ancestors present as directories. Real machines always satisfy
// this; the paper's semantics quantifies over arbitrary maps.
func (s State) IsWellFormed() bool {
	for p := range s {
		for q := p.Parent(); !q.IsRoot(); q = q.Parent() {
			if c, ok := s[q]; !ok || c.Kind != KindDir {
				return false
			}
		}
	}
	return true
}

// Paths returns the sorted domain of the state.
func (s State) Paths() []Path {
	out := make([]Path, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvalPred evaluates a predicate on a state per figure 5.
func EvalPred(a Pred, s State) bool {
	switch a := UnwrapPred(a).(type) {
	case True:
		return true
	case False:
		return false
	case Not:
		return !EvalPred(a.P, s)
	case And:
		return EvalPred(a.L, s) && EvalPred(a.R, s)
	case Or:
		return EvalPred(a.L, s) || EvalPred(a.R, s)
	case IsFile:
		return s.IsFile(a.Path)
	case IsDir:
		return s.IsDir(a.Path)
	case IsEmptyDir:
		return s.IsDir(a.Path) && !a.Path.IsRoot() && !s.HasChild(a.Path)
	case IsNone:
		return !s.Exists(a.Path)
	default:
		panic("fs: unknown predicate")
	}
}

// Eval applies e to state s per the denotational semantics of figure 5.
// It returns the resulting state and ok=true, or (nil, false) for the error
// state. The input state is never mutated.
func Eval(e Expr, s State) (State, bool) {
	return evalIn(e, s.Clone())
}

// evalIn evaluates with an owned, mutable state.
func evalIn(e Expr, s State) (State, bool) {
	switch e := Unwrap(e).(type) {
	case Id:
		return s, true
	case Err:
		return nil, false
	case Mkdir:
		if e.Path.IsRoot() || !s.IsDir(e.Path.Parent()) || s.Exists(e.Path) {
			return nil, false
		}
		s[e.Path] = DirContent()
		return s, true
	case Creat:
		if e.Path.IsRoot() || !s.IsDir(e.Path.Parent()) || s.Exists(e.Path) {
			return nil, false
		}
		s[e.Path] = FileContent(e.Content)
		return s, true
	case Rm:
		if e.Path.IsRoot() {
			return nil, false
		}
		if s.IsFile(e.Path) || (s.IsDir(e.Path) && !s.HasChild(e.Path)) {
			delete(s, e.Path)
			return s, true
		}
		return nil, false
	case Cp:
		src, ok := s[e.Src]
		if !ok || src.Kind != KindFile {
			return nil, false
		}
		if e.Dst.IsRoot() || !s.IsDir(e.Dst.Parent()) || s.Exists(e.Dst) {
			return nil, false
		}
		s[e.Dst] = FileContent(src.Data)
		return s, true
	case Seq:
		s1, ok := evalIn(e.E1, s)
		if !ok {
			return nil, false
		}
		return evalIn(e.E2, s1)
	case If:
		if EvalPred(e.A, s) {
			return evalIn(e.Then, s)
		}
		return evalIn(e.Else, s)
	default:
		panic("fs: unknown expression")
	}
}

// EquivOn reports whether e1 and e2 agree (same error/success outcome and
// identical final state) on the single input state s. Used by tests and the
// dynamic baseline; the symbolic engine decides equivalence over all states.
func EquivOn(e1, e2 Expr, s State) bool {
	s1, ok1 := Eval(e1, s)
	s2, ok2 := Eval(e2, s)
	if ok1 != ok2 {
		return false
	}
	if !ok1 {
		return true
	}
	return s1.Equal(s2)
}
