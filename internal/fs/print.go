package fs

import (
	"fmt"
	"strings"
)

// PredString renders a predicate in the paper's concrete syntax.
func PredString(a Pred) string {
	var b strings.Builder
	writePred(&b, a, false)
	return b.String()
}

func writePred(b *strings.Builder, a Pred, paren bool) {
	switch a := UnwrapPred(a).(type) {
	case True:
		b.WriteString("true")
	case False:
		b.WriteString("false")
	case Not:
		b.WriteString("¬")
		writePred(b, a.P, true)
	case And:
		if paren {
			b.WriteByte('(')
		}
		writePred(b, a.L, true)
		b.WriteString(" ∧ ")
		writePred(b, a.R, true)
		if paren {
			b.WriteByte(')')
		}
	case Or:
		if paren {
			b.WriteByte('(')
		}
		writePred(b, a.L, true)
		b.WriteString(" ∨ ")
		writePred(b, a.R, true)
		if paren {
			b.WriteByte(')')
		}
	case IsFile:
		fmt.Fprintf(b, "file?(%s)", a.Path)
	case IsDir:
		fmt.Fprintf(b, "dir?(%s)", a.Path)
	case IsEmptyDir:
		fmt.Fprintf(b, "emptydir?(%s)", a.Path)
	case IsNone:
		fmt.Fprintf(b, "none?(%s)", a.Path)
	default:
		b.WriteString("<unknown-pred>")
	}
}

// String renders an expression in the paper's concrete syntax, on one line.
func String(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch e := Unwrap(e).(type) {
	case Id:
		b.WriteString("id")
	case Err:
		b.WriteString("err")
	case Mkdir:
		fmt.Fprintf(b, "mkdir(%s)", e.Path)
	case Creat:
		fmt.Fprintf(b, "creat(%s, %q)", e.Path, e.Content)
	case Rm:
		fmt.Fprintf(b, "rm(%s)", e.Path)
	case Cp:
		fmt.Fprintf(b, "cp(%s, %s)", e.Src, e.Dst)
	case Seq:
		writeExpr(b, e.E1)
		b.WriteString("; ")
		writeExpr(b, e.E2)
	case If:
		b.WriteString("if (")
		writePred(b, e.A, false)
		b.WriteString(") {")
		writeExpr(b, e.Then)
		b.WriteString("}")
		if _, isId := Unwrap(e.Else).(Id); !isId {
			b.WriteString(" else {")
			writeExpr(b, e.Else)
			b.WriteString("}")
		}
	default:
		b.WriteString("<unknown-expr>")
	}
}

// StateString renders a concrete filesystem compactly, e.g.
// "{/a=dir, /a/b=file(\"x\")}".
func StateString(s State) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Paths() {
		if i > 0 {
			b.WriteString(", ")
		}
		c := s[p]
		if c.Kind == KindDir {
			fmt.Fprintf(&b, "%s=dir", p)
		} else {
			fmt.Fprintf(&b, "%s=file(%q)", p, c.Data)
		}
	}
	b.WriteByte('}')
	return b.String()
}
