package fs

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// genPathString produces a plausible textual path (possibly messy: extra
// slashes, dots) for ParsePath robustness properties.
type genPathString string

// Generate implements quick.Generator.
func (genPathString) Generate(r *rand.Rand, _ int) reflect.Value {
	components := []string{"a", "b", "etc", "usr", "x1", ".", "", "deep"}
	n := r.Intn(5)
	var b strings.Builder
	b.WriteByte('/')
	for i := 0; i < n; i++ {
		b.WriteString(components[r.Intn(len(components))])
		b.WriteByte('/')
	}
	return reflect.ValueOf(genPathString(b.String()))
}

// genPath produces a normalized non-root Path.
type genPath Path

// Generate implements quick.Generator.
func (genPath) Generate(r *rand.Rand, _ int) reflect.Value {
	components := []string{"a", "b", "etc", "usr", "lib", "x"}
	n := 1 + r.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = components[r.Intn(len(components))]
	}
	return reflect.ValueOf(genPath(MakePath(parts...)))
}

func TestQuickParsePathIdempotent(t *testing.T) {
	f := func(s genPathString) bool {
		p := ParsePath(string(s))
		return ParsePath(string(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParentJoinInverse(t *testing.T) {
	f := func(gp genPath) bool {
		p := Path(gp)
		return p.Parent().Join(p.Base()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickChildImpliesDescendant(t *testing.T) {
	f := func(gp genPath, component uint8) bool {
		p := Path(gp)
		child := p.Join(string('a' + rune(component%26)))
		return child.IsChildOf(p) && child.IsDescendantOf(p) &&
			child.Parent() == p && child.Depth() == p.Depth()+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAncestorsAreDescendantsInverse(t *testing.T) {
	f := func(gp genPath) bool {
		p := Path(gp)
		for _, a := range p.Ancestors() {
			if !p.IsDescendantOf(a) {
				return false
			}
		}
		return len(p.Ancestors()) == p.Depth()-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// genState wraps a random concrete filesystem.
type genState struct{ s State }

// Generate implements quick.Generator.
func (genState) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genState{s: GenState(r, DefaultGenConfig())})
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(g genState) bool {
		c := g.s.Clone()
		if !c.Equal(g.s) || !g.s.Equal(c) {
			return false
		}
		// Mutating the clone must not affect the original.
		c["/mutation"] = FileContent("x")
		return !g.s.Exists("/mutation")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// genExpr wraps a random FS expression.
type genExpr struct{ e Expr }

// Generate implements quick.Generator.
func (genExpr) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genExpr{e: GenExpr(r, DefaultGenConfig(), 3)})
}

// Determinism of the evaluator itself: evaluating the same expression on
// the same state twice gives identical results (guards against hidden
// state in the evaluator).
func TestQuickEvalDeterministic(t *testing.T) {
	f := func(ge genExpr, g genState) bool {
		out1, ok1 := Eval(ge.e, g.s)
		out2, ok2 := Eval(ge.e, g.s)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || out1.Equal(out2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Sequencing is associative: (e1;e2);e3 ≡ e1;(e2;e3).
func TestQuickSeqAssociative(t *testing.T) {
	f := func(a, b, c genExpr, g genState) bool {
		lhs := Seq{Seq{a.e, b.e}, c.e}
		rhs := Seq{a.e, Seq{b.e, c.e}}
		return EquivOn(lhs, rhs, g.s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Id is a left and right identity of sequencing.
func TestQuickSeqIdentity(t *testing.T) {
	f := func(a genExpr, g genState) bool {
		return EquivOn(Seq{Id{}, a.e}, a.e, g.s) &&
			EquivOn(Seq{a.e, Id{}}, a.e, g.s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Dom is monotone under sequencing and covers both sides.
func TestQuickDomCoversSeq(t *testing.T) {
	f := func(a, b genExpr) bool {
		d := Dom(Seq{a.e, b.e})
		for p := range Dom(a.e) {
			if !d.Has(p) {
				return false
			}
		}
		for p := range Dom(b.e) {
			if !d.Has(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
