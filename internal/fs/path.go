// Package fs implements the FS language from section 3.2 of the Rehearsal
// paper: a loop-free imperative language of filesystem operations, together
// with its concrete semantics (figure 5) and the domain-bounding function
// (figure 8) used by the symbolic encoding.
package fs

import (
	"sort"
	"strings"
)

// Path is a normalized absolute filesystem path such as "/etc/nginx". The
// root directory is "/". Paths are plain strings so they can be used as map
// keys throughout the analyses.
type Path string

// Root is the filesystem root. It is always a directory in every state.
const Root Path = "/"

// FreshChildName is the path component appended by Dom for the fresh
// children that figure 8 introduces for rm(p) and emptydir?(p). Manifest
// paths never contain this component (the frontend rejects it).
const FreshChildName = ".rehearsal-fresh"

// MakePath builds a normalized Path from components, e.g.
// MakePath("etc", "nginx") == "/etc/nginx".
func MakePath(components ...string) Path {
	if len(components) == 0 {
		return Root
	}
	return Path("/" + strings.Join(components, "/"))
}

// ParsePath normalizes a textual path: collapses repeated slashes, removes
// trailing slashes and resolves "." components. It does not resolve "..".
func ParsePath(s string) Path {
	parts := strings.Split(s, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		if part == "" || part == "." {
			continue
		}
		out = append(out, part)
	}
	return MakePath(out...)
}

// IsRoot reports whether p is the root directory.
func (p Path) IsRoot() bool { return p == Root }

// Parent returns the parent directory of p. The parent of the root is the
// root itself.
func (p Path) Parent() Path {
	if p.IsRoot() {
		return Root
	}
	i := strings.LastIndexByte(string(p), '/')
	if i <= 0 {
		return Root
	}
	return p[:i]
}

// Base returns the final component of p, or "/" for the root.
func (p Path) Base() string {
	if p.IsRoot() {
		return "/"
	}
	i := strings.LastIndexByte(string(p), '/')
	return string(p[i+1:])
}

// Join appends a single component to p.
func (p Path) Join(component string) Path {
	if p.IsRoot() {
		return Path("/" + component)
	}
	return p + Path("/"+component)
}

// IsChildOf reports whether p is a direct child of dir.
func (p Path) IsChildOf(dir Path) bool {
	return !p.IsRoot() && p.Parent() == dir
}

// IsDescendantOf reports whether p is a strict descendant of dir.
func (p Path) IsDescendantOf(dir Path) bool {
	if p == dir {
		return false
	}
	if dir.IsRoot() {
		return !p.IsRoot()
	}
	return strings.HasPrefix(string(p), string(dir)+"/")
}

// Ancestors returns the strict ancestors of p ordered from the root down,
// excluding the root itself. Ancestors("/a/b/c") == ["/a", "/a/b"].
func (p Path) Ancestors() []Path {
	var out []Path
	for q := p.Parent(); !q.IsRoot(); q = q.Parent() {
		out = append(out, q)
	}
	// Reverse into root-first order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Depth returns the number of components in p; the root has depth 0.
func (p Path) Depth() int {
	if p.IsRoot() {
		return 0
	}
	return strings.Count(string(p), "/")
}

// FreshChild returns the synthetic child path used by Dom (figure 8).
func (p Path) FreshChild() Path { return p.Join(FreshChildName) }

// PathSet is a set of paths.
type PathSet map[Path]struct{}

// NewPathSet builds a set from the given paths.
func NewPathSet(paths ...Path) PathSet {
	s := make(PathSet, len(paths))
	for _, p := range paths {
		s.Add(p)
	}
	return s
}

// Add inserts p into the set.
func (s PathSet) Add(p Path) { s[p] = struct{}{} }

// Has reports membership.
func (s PathSet) Has(p Path) bool { _, ok := s[p]; return ok }

// AddAll inserts every path of other into s.
func (s PathSet) AddAll(other PathSet) {
	for p := range other {
		s.Add(p)
	}
}

// Intersects reports whether the two sets share any path.
func (s PathSet) Intersects(other PathSet) bool {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	for p := range small {
		if large.Has(p) {
			return true
		}
	}
	return false
}

// Sorted returns the paths in lexicographic order; useful for deterministic
// iteration and encoding.
func (s PathSet) Sorted() []Path {
	out := make([]Path, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a copy of the set.
func (s PathSet) Clone() PathSet {
	out := make(PathSet, len(s))
	out.AddAll(s)
	return out
}
