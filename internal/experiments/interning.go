package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/qcache"
)

// InterningRow is one configuration of the hash-consed-IR experiment.
type InterningRow struct {
	Mode           string        `json:"mode"`
	Time           time.Duration `json:"-"`
	Seconds        float64       `json:"seconds"`
	Queries        int           `json:"queries"`          // solver queries run
	InternHits     int64         `json:"intern_hits"`      // hash-consing table hits while compiling
	EncodeMemoHits int64         `json:"encode_memo_hits"` // symbolic applications served by session memos
	DiskCacheHits  int           `json:"disk_cache_hits"`  // verdicts answered by the on-disk tier
	TimedOut       bool          `json:"timed_out"`
}

// ModeledEncodeLatency is the modeled cost of compiling one component
// subtree of a commutativity query into an external solver's term language
// (transmitting and asserting a package model's guarded-mkdir tree over
// IPC). Sized well below the check round trip (ModeledZ3Latency): encoding
// is cheaper than solving, but a fresh query pays it four times while a
// warm memoized session pays it not at all.
const ModeledEncodeLatency = 25 * time.Millisecond

// InterningWorkers is the worker count of the interning experiment: one.
// The experiment varies the encode strategy, and a single worker keeps the
// comparison clean — one session sees every query (so the warm mode's memo
// coverage is total, not split across per-worker sessions) and modeled
// sleeps cannot overlap across workers.
const InterningWorkers = 1

// EncodeMemoSpeedup measures the determinacy check on the parallel
// workload under three encode strategies: fresh-plain (isolated solver per
// query over plain trees — every query compiles all four component
// subtrees from scratch), interned-cold (hash-consed models, pooled
// sessions starting empty — each distinct subtree compiles once) and
// interned-warm (sessions already primed by a previous check). Every run
// gets a private cold query cache; verdicts are identical across modes
// (internal/core's differential tests enforce it), so rows measure pure
// encode amortization under the modeled per-subtree latency.
func EncodeMemoSpeedup(timeout time.Duration, encodeLatency time.Duration) ([]InterningRow, error) {
	manifest, provider := ParallelWorkload(ParallelWorkloadSize)
	base := options(timeout)
	base.Provider = provider
	base.SemanticCommute = true
	base.Parallelism = InterningWorkers
	base.PerEncodeLatency = encodeLatency

	modes := []struct {
		name  string
		plain bool
		fresh bool
		reset bool
	}{
		{"fresh-plain", true, true, true},
		{"interned-cold", false, false, true},
		{"interned-warm", false, false, false}, // sessions primed by interned-cold
	}
	rows := make([]InterningRow, 0, len(modes))
	for _, m := range modes {
		if m.reset {
			core.ResetSolverPools()
		}
		opts := base
		opts.DisableInterning = m.plain
		opts.FreshSolvers = m.fresh
		opts.SharedQueryCache = qcache.New()
		res, elapsed, timedOut, err := check(manifest, opts)
		if err != nil {
			return nil, fmt.Errorf("interning workload (%s): %w", m.name, err)
		}
		row := InterningRow{Mode: m.name, Time: elapsed, Seconds: elapsed.Seconds(), TimedOut: timedOut}
		if res != nil {
			if !res.Deterministic {
				return nil, fmt.Errorf("interning workload must be deterministic")
			}
			row.Queries = res.Stats.SemQueries
			row.InternHits = res.Stats.InternHits
			row.EncodeMemoHits = res.Stats.EncodeMemoHits
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DiskCacheSpeedup measures the two-tier verdict cache across process
// restarts: a cold check (empty directory, every verdict solved and
// written through) and a warm check of the same manifest with a fresh
// memory tier over the same directory, under the modeled external-solver
// round trip. The warm run must answer every semantic decision from disk —
// zero solver queries — or the function errors; the CI smoke job leans on
// this self-check.
func DiskCacheSpeedup(timeout time.Duration, queryLatency time.Duration) ([]InterningRow, error) {
	dir, err := os.MkdirTemp("", "qcache-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	manifest, provider := ParallelWorkload(ParallelWorkloadSize)
	base := options(timeout)
	base.Provider = provider
	base.SemanticCommute = true
	base.Parallelism = InterningWorkers
	base.PerQueryLatency = queryLatency
	base.CacheDir = dir

	var rows []InterningRow
	for _, mode := range []string{"disk-cold", "disk-warm"} {
		core.ResetSolverPools() // warm pools would mask the disk tier
		opts := base
		opts.SharedQueryCache = qcache.New() // fresh memory tier each run
		res, elapsed, timedOut, err := check(manifest, opts)
		if err != nil {
			return nil, fmt.Errorf("disk-cache workload (%s): %w", mode, err)
		}
		row := InterningRow{Mode: mode, Time: elapsed, Seconds: elapsed.Seconds(), TimedOut: timedOut}
		if res != nil {
			row.Queries = res.Stats.SemQueries
			row.InternHits = res.Stats.InternHits
			row.DiskCacheHits = res.Stats.DiskCacheHits
		}
		rows = append(rows, row)
	}
	cold, warm := rows[0], rows[1]
	if warm.Queries != 0 {
		return nil, fmt.Errorf("warm disk-cache run executed %d solver queries; want 0", warm.Queries)
	}
	if cold.Queries > 0 && warm.DiskCacheHits == 0 {
		return nil, fmt.Errorf("cold run solved %d queries but warm run reported no disk hits", cold.Queries)
	}
	return rows, nil
}

// DigestSeries compares digesting the workload's resource models as plain
// trees (a full Merkle walk per call) against hash-consed nodes (a pointer
// read): the O(size) → O(1) shift every qcache key construction rides on.
type DigestSeries struct {
	Exprs           int     `json:"exprs"`            // models digested per pass
	Passes          int     `json:"passes"`           // digest passes timed
	PlainSeconds    float64 `json:"plain_seconds"`    // total, plain trees
	InternedSeconds float64 `json:"interned_seconds"` // total, interned nodes
	Speedup         float64 `json:"speedup"`          // plain / interned
}

// digestPasses is sized so the plain series takes milliseconds, not
// microseconds, on a typical host — enough to dominate timer noise.
const digestPasses = 200

func measureDigests(timeout time.Duration) (*DigestSeries, error) {
	manifest, provider := ParallelWorkload(ParallelWorkloadSize)
	load := func(plain bool) ([]fs.Expr, error) {
		opts := options(timeout)
		opts.Provider = provider
		opts.DisableInterning = plain
		sys, err := core.Load(manifest, opts)
		if err != nil {
			return nil, err
		}
		g := sys.ExprGraph()
		var exprs []fs.Expr
		for _, n := range g.Nodes() {
			exprs = append(exprs, g.Label(n))
		}
		return exprs, nil
	}
	plainExprs, err := load(true)
	if err != nil {
		return nil, err
	}
	internedExprs, err := load(false)
	if err != nil {
		return nil, err
	}
	time1 := func(exprs []fs.Expr) float64 {
		start := time.Now()
		var sink byte
		for i := 0; i < digestPasses; i++ {
			for _, e := range exprs {
				d := fs.DigestExpr(e)
				sink ^= d[0]
			}
		}
		_ = sink
		return time.Since(start).Seconds()
	}
	s := &DigestSeries{
		Exprs:           len(plainExprs),
		Passes:          digestPasses,
		PlainSeconds:    time1(plainExprs),
		InternedSeconds: time1(internedExprs),
	}
	if s.InternedSeconds > 0 {
		s.Speedup = s.PlainSeconds / s.InternedSeconds
	}
	return s, nil
}

// InterningReport is the BENCH_interning.json trajectory point: the
// encode-memoization series, the disk-tier series and the digest
// micro-series, plus host context.
type InterningReport struct {
	Benchmark              string         `json:"benchmark"`
	Workload               string         `json:"workload"`
	HostCPUs               int            `json:"host_cpus"`
	Workers                int            `json:"workers"`
	ModeledEncodeLatencyMS int64          `json:"modeled_encode_latency_ms"`
	ModeledQueryLatencyMS  int64          `json:"modeled_query_latency_ms"`
	Encode                 []InterningRow `json:"encode"`
	Disk                   []InterningRow `json:"disk"`
	Digest                 *DigestSeries  `json:"digest"`
	EncodeColdSpeedup      float64        `json:"encode_cold_speedup"` // fresh-plain / interned-cold
	EncodeWarmSpeedup      float64        `json:"encode_warm_speedup"` // fresh-plain / interned-warm
	DiskWarmSpeedup        float64        `json:"disk_warm_speedup"`   // disk-cold / disk-warm
}

// BuildInterningReport runs all three series of the interning experiment.
func BuildInterningReport(timeout time.Duration) (*InterningReport, error) {
	encode, err := EncodeMemoSpeedup(timeout, ModeledEncodeLatency)
	if err != nil {
		return nil, err
	}
	disk, err := DiskCacheSpeedup(timeout, ModeledZ3Latency)
	if err != nil {
		return nil, err
	}
	digest, err := measureDigests(timeout)
	if err != nil {
		return nil, err
	}
	return &InterningReport{
		Benchmark: "BenchmarkInterningSpeedup",
		Workload: fmt.Sprintf("%d packages with overlapping dependency closures: %d pairwise semantic-commutativity queries at %d worker(s)",
			ParallelWorkloadSize, ParallelWorkloadSize*(ParallelWorkloadSize-1)/2, InterningWorkers),
		HostCPUs:               runtime.NumCPU(),
		Workers:                InterningWorkers,
		ModeledEncodeLatencyMS: ModeledEncodeLatency.Milliseconds(),
		ModeledQueryLatencyMS:  ModeledZ3Latency.Milliseconds(),
		Encode:                 encode,
		Disk:                   disk,
		Digest:                 digest,
		EncodeColdSpeedup:      interningSpeedup(encode, "fresh-plain", "interned-cold"),
		EncodeWarmSpeedup:      interningSpeedup(encode, "fresh-plain", "interned-warm"),
		DiskWarmSpeedup:        interningSpeedup(disk, "disk-cold", "disk-warm"),
	}, nil
}

// Write writes the report as indented JSON to path.
func (r *InterningReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func interningSpeedup(rows []InterningRow, baseMode, mode string) float64 {
	var base, at float64
	for _, r := range rows {
		if r.Mode == baseMode {
			base = r.Seconds
		}
		if r.Mode == mode {
			at = r.Seconds
		}
	}
	if base == 0 || at == 0 {
		return 0
	}
	return base / at
}
