package experiments

// The portfolio-SAT experiment behind BENCH_sat.json: what racing k
// diverse solver configurations per hard query does to cold-query tail
// latency, and — just as important — that the race changes latency and
// nothing else.
//
// The query set is real: every syntactically-overlapping resource pair
// of the seed manifests (the pairs syntactic analysis cannot discharge,
// i.e. the candidate solver queries of a cold check), with hosting.pp
// additionally checked under the enriched LAMP catalog of the diff
// experiment so the heavyweight shared-closure queries are present.
// Every query is solved for real under every portfolio config and the
// bench hard-fails unless all configs return the same verdict and the
// byte-identical canonical witness; it then runs the actual race
// machinery (sym.PortfolioCommutes) at k=2 and k=4 and hard-fails on
// any divergence from the single-config result.
//
// The latency series is modeled, in this file's standing convention
// (ModeledZ3Latency, ModeledDiffQueryLatency): a per-conflict price
// converts each config's measured conflict count into solver time, and
// a deterministic per-(query, config) log-normal factor models the
// run-to-run variability of an external randomized CDCL backend — the
// heavy tail that makes portfolio racing pay (SATzilla/ppfolio-style:
// the minimum over diverse runs beats any single run at the tail).
// Native in-process queries on the seed manifests are microseconds to
// milliseconds and nearly tail-free, which would make any wall-clock
// claim about cold p99 meaningless; the modeled series prices the same
// measured search work the way a production solver backend pays for it.
// Everything that decides anything — verdicts, witnesses, conflict
// counts, escalation decisions, race winners — is a real measurement.
//
// The portfolio latency model mirrors the engine's escalation protocol
// (internal/core/parallel.go): a default-config attempt runs under a
// small conflict budget E; if the query needs more, a k-way race starts
// in which leg 0 RESUMES the default attempt (its learnt clauses and
// trail survive; it only has C_default - E conflicts left) while the
// other k-1 legs start fresh under diverse configs. Cold-query latency
// is therefore
//
//	single:            startup + C_default * unit * tail(q, default)
//	portfolio, easy:   identical to single (never escalates)
//	portfolio, hard:   startup + E * unit * tail(q, default)
//	                   + min( (C_default - E) * unit * tail(q, default),
//	                          min_i startup + C_i * unit * tail(q, cfg_i) )
//
// which is why the race can only help: the resume leg alone already
// bounds the portfolio at roughly the single-config time plus the
// escalation overhead E.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/qcache"
	"repro/internal/sat"
	"repro/internal/sym"
)

// SatBenchEscalateConflicts is the escalation budget E of the modeled
// series and of the engine-level differential run: small enough that
// the heavyweight shared-closure queries escalate to a race, large
// enough that the long easy tail of pair queries never pays any
// portfolio overhead.
const SatBenchEscalateConflicts = 64

// ModeledSatConflictLatency prices one conflict of external-solver
// search; ModeledSatStartupLatency is the per-attempt overhead (encode
// plus round trip). 0.5ms/conflict puts the heaviest seed query
// (hosting's LAMP pairs, ~400 conflicts) around the few-hundred-ms cold
// times rehearsald observes against a real backend.
const (
	ModeledSatConflictLatency = 500 * time.Microsecond
	ModeledSatStartupLatency  = 2 * time.Millisecond
)

// SatTailSigma is the log-normal sigma of the modeled run-to-run
// variability factor. Sigma 1.0 gives a median of 1x, a p99 near 10x —
// the documented heavy-tail regime of randomized CDCL restarts.
const SatTailSigma = 1.0

// SatSolveBudget caps each real measurement solve, matching the
// engine's full-query budget.
const SatSolveBudget = 200_000

// MinSatP99Speedup is the acceptance floor: the k=4 portfolio must cut
// the modeled cold-query p99 by at least this factor.
const MinSatP99Speedup = 1.5

// MinSatQueries guards against the harvest silently shrinking (a
// too-small query set would make the tail quantiles meaningless).
const MinSatQueries = 16

// SatQueryRow is one cold query of the distribution: one overlapping
// resource pair, its measured verdict and per-config difficulty, and
// its modeled latency under each racing width.
type SatQueryRow struct {
	Manifest         string  `json:"manifest"`
	Pair             string  `json:"pair"`
	Commutes         bool    `json:"commutes"`
	DefaultConflicts int64   `json:"default_conflicts"`
	BestConflicts    int64   `json:"best_conflicts"`
	BestConfig       string  `json:"best_config"`
	Escalated        bool    `json:"escalated"`
	SingleMS         float64 `json:"single_ms"`
	Portfolio2MS     float64 `json:"portfolio_k2_ms"`
	Portfolio4MS     float64 `json:"portfolio_k4_ms"`
	RaceWinner       string  `json:"race_winner"` // real k=4 race, not modeled
}

// SatSeries is the latency distribution of one racing width.
type SatSeries struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// SatEngineResult is the engine-level differential: the same manifest
// checked by core.CheckDeterminism with and without Options.Portfolio,
// which must agree byte for byte while the portfolio run actually
// escalates and races.
type SatEngineResult struct {
	Manifest         string         `json:"manifest"`
	Workers          int            `json:"workers"`
	Deterministic    bool           `json:"deterministic"`
	ReportIdentical  bool           `json:"report_identical"`
	Escalations      int            `json:"portfolio_escalations"`
	Races            int            `json:"portfolio_races"`
	WinnerByConfig   map[string]int `json:"winner_by_config,omitempty"`
	SingleSeconds    float64        `json:"single_seconds"`
	PortfolioSeconds float64        `json:"portfolio_seconds"`
}

// SatReport is the BENCH_sat.json trajectory point.
type SatReport struct {
	Benchmark                string           `json:"benchmark"`
	Workload                 string           `json:"workload"`
	HostCPUs                 int              `json:"host_cpus"`
	Configs                  []string         `json:"configs"`
	ModeledConflictLatencyUS int64            `json:"modeled_conflict_latency_us"`
	ModeledStartupLatencyMS  int64            `json:"modeled_startup_latency_ms"`
	TailSigma                float64          `json:"tail_sigma"`
	EscalateConflicts        int64            `json:"escalate_conflicts"`
	Queries                  int              `json:"queries"`
	WitnessQueries           int              `json:"witness_queries"`
	Escalations              int              `json:"escalations"`
	Rows                     []SatQueryRow    `json:"rows"`
	Single                   SatSeries        `json:"single"`
	Portfolio2               SatSeries        `json:"portfolio_k2"`
	Portfolio4               SatSeries        `json:"portfolio_k4"`
	P99Speedup2              float64          `json:"p99_speedup_k2"`
	P99Speedup4              float64          `json:"p99_speedup_k4"`
	P50Speedup4              float64          `json:"p50_speedup_k4"`
	VerdictsIdentical        bool             `json:"verdicts_identical"`
	WitnessesIdentical       bool             `json:"witnesses_identical"`
	RaceWinners              map[string]int   `json:"race_winners_k4"`
	Engine                   *SatEngineResult `json:"engine"`
}

// satQuery is one harvested overlapping resource pair.
type satQuery struct {
	manifest string
	pair     string
	e1, e2   fs.Expr
	key      string // content address of the query, seeds the tail draws
}

// harvestSatQueries collects every domain-overlapping resource pair of
// a manifest — the candidate solver queries of a cold check.
func harvestSatQueries(manifest, src string, opts core.Options) ([]satQuery, error) {
	sys, err := core.Load(src, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", manifest, err)
	}
	g := sys.ExprGraph()
	nodes := g.Nodes()
	exprs := make([]fs.Expr, 0, len(nodes))
	for _, n := range nodes {
		exprs = append(exprs, g.Label(n))
	}
	var out []satQuery
	for i := 0; i < len(exprs); i++ {
		for j := i + 1; j < len(exprs); j++ {
			d1, d2 := fs.Dom(exprs[i]), fs.Dom(exprs[j])
			overlap := false
			for p := range d1 {
				if _, ok := d2[p]; ok {
					overlap = true
					break
				}
			}
			if !overlap {
				continue
			}
			d := fs.DigestExpr(fs.Seq{E1: exprs[i], E2: exprs[j]})
			out = append(out, satQuery{
				manifest: manifest,
				pair:     fmt.Sprintf("%d-%d", i, j),
				e1:       exprs[i],
				e2:       exprs[j],
				key:      fmt.Sprintf("%x", d),
			})
		}
	}
	return out, nil
}

// satUniform hashes a seed string into (0, 1).
func satUniform(seed string) float64 {
	h := fnv.New64a()
	io.WriteString(h, seed)
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	const eps = 1.0 / float64(uint64(1)<<53)
	return math.Min(math.Max(u, eps), 1-eps)
}

// satTail is the deterministic modeled run-to-run variability of one
// (query, config) external solve: log-normal via Box-Muller over two
// hash-derived uniforms. A pure function of the query's content address
// and the config identity, so the whole series is reproducible.
func satTail(queryKey string, cfg sat.Config) float64 {
	seed := fmt.Sprintf("%s|%s|%d", queryKey, cfg.Name, cfg.Seed)
	u1, u2 := satUniform(seed+"|a"), satUniform(seed+"|b")
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(SatTailSigma * z)
}

// satWitness renders a counterexample for byte-identity comparison
// (empty string when the pair commutes).
func satWitness(cex *sym.Counterexample) string {
	if cex == nil {
		return ""
	}
	return cex.String()
}

// satMeasurement is one query solved for real under every config.
type satMeasurement struct {
	q         satQuery
	commutes  bool
	witness   string
	conflicts []int64 // by config index
}

// measureSatQuery solves q cold under each config (fresh encoder, full
// budget) and fails unless every config agrees on the verdict and on
// the byte-identical canonical witness.
func measureSatQuery(q satQuery, cfgs []sat.Config) (*satMeasurement, error) {
	m := &satMeasurement{q: q, conflicts: make([]int64, len(cfgs))}
	for i, cfg := range cfgs {
		var met sym.Metrics
		ok, cex, err := sym.Commutes(q.e1, q.e2, sym.Options{
			Budget:  SatSolveBudget,
			Config:  cfg,
			Metrics: &met,
		})
		if err != nil {
			return nil, fmt.Errorf("%s pair %s config %s: %w", q.manifest, q.pair, cfg.Name, err)
		}
		m.conflicts[i] = met.Counters().Conflicts
		w := satWitness(cex)
		if i == 0 {
			m.commutes, m.witness = ok, w
			continue
		}
		if ok != m.commutes {
			return nil, fmt.Errorf("%s pair %s: config %s verdict %v != default %v (configs must never change the verdict)",
				q.manifest, q.pair, cfg.Name, ok, m.commutes)
		}
		if w != m.witness {
			return nil, fmt.Errorf("%s pair %s: config %s produced a different canonical witness than default",
				q.manifest, q.pair, cfg.Name)
		}
	}
	return m, nil
}

// satModeledLatency prices one query at racing width k, in
// milliseconds, per the escalation protocol described at the top of the
// file. k <= 1 is the plain single-config solve.
func satModeledLatency(m *satMeasurement, cfgs []sat.Config, k int) float64 {
	unit := ModeledSatConflictLatency.Seconds() * 1e3
	startup := ModeledSatStartupLatency.Seconds() * 1e3
	tail0 := satTail(m.q.key, cfgs[0])
	cDef := float64(m.conflicts[0])
	single := startup + cDef*unit*tail0
	if k <= 1 || m.conflicts[0] <= SatBenchEscalateConflicts {
		return single
	}
	// Escalated: default attempt burns E conflicts, then the race. Leg 0
	// resumes the attempt (no fresh startup, C_default - E conflicts
	// left, same pace this run); fresh legs pay startup under their own
	// config's measured difficulty and tail draw.
	best := (cDef - SatBenchEscalateConflicts) * unit * tail0
	for i := 1; i < k && i < len(cfgs); i++ {
		leg := startup + float64(m.conflicts[i])*unit*satTail(m.q.key, cfgs[i])
		if leg < best {
			best = leg
		}
	}
	return startup + SatBenchEscalateConflicts*unit*tail0 + best
}

// raceSatQuery runs the real race machinery at width k and fails on
// any divergence from the single-config measurement. Returns the
// winning config's name.
func raceSatQuery(m *satMeasurement, cfgs []sat.Config, k int) (string, error) {
	ok, cex, w, err := sym.PortfolioCommutes(m.q.e1, m.q.e2, cfgs[:k], sym.Options{Budget: SatSolveBudget})
	if err != nil {
		return "", fmt.Errorf("%s pair %s k=%d race: %w", m.q.manifest, m.q.pair, k, err)
	}
	if ok != m.commutes {
		return "", fmt.Errorf("%s pair %s k=%d race: verdict %v != single-config %v", m.q.manifest, m.q.pair, k, ok, m.commutes)
	}
	if got := satWitness(cex); got != m.witness {
		return "", fmt.Errorf("%s pair %s k=%d race: witness differs from single-config canonical witness", m.q.manifest, m.q.pair, k)
	}
	if w < 0 || w >= k {
		return "", fmt.Errorf("%s pair %s k=%d race: winner index %d out of range", m.q.manifest, m.q.pair, k, w)
	}
	return cfgs[w].Name, nil
}

// satQuantile returns the q-quantile of a sorted series.
func satQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func satSeries(lat []float64) SatSeries {
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := 0.0
	if len(sorted) > 0 {
		mean = sum / float64(len(sorted))
	}
	return SatSeries{
		P50MS:  satQuantile(sorted, 0.50),
		P90MS:  satQuantile(sorted, 0.90),
		P99MS:  satQuantile(sorted, 0.99),
		MeanMS: mean,
	}
}

// satCoreWitness renders an engine-level determinism report for
// byte-identity comparison.
func satCoreWitness(res *core.DeterminismResult) string {
	if res.Counterexample == nil {
		return fmt.Sprintf("deterministic=%v", res.Deterministic)
	}
	c := res.Counterexample
	return fmt.Sprintf("deterministic=%v orders=%v|%v ok=%v|%v in=%s out1=%s out2=%s",
		res.Deterministic, c.Order1, c.Order2, c.Ok1, c.Ok2,
		fs.StateString(c.Input), fs.StateString(c.Out1), fs.StateString(c.Out2))
}

// satEngineDifferential checks hosting.pp under the enriched LAMP
// catalog with the full engine, portfolio off versus on: the reports
// must be byte-identical and the portfolio run must actually have
// escalated and raced (the LAMP shared-closure queries exceed E).
func satEngineDifferential(timeout time.Duration) (*SatEngineResult, error) {
	bench, err := benchmarks.Get("hosting")
	if err != nil {
		return nil, err
	}
	provider, err := hostingDiffCatalog()
	if err != nil {
		return nil, err
	}
	const workers = 4
	run := func(k int) (*core.DeterminismResult, time.Duration, error) {
		opts := options(timeout)
		opts.Provider = provider
		opts.SemanticCommute = true
		opts.Parallelism = workers
		opts.SharedQueryCache = qcache.New()
		if k > 1 {
			opts.Portfolio = core.PortfolioOptions{K: k, EscalateConflicts: SatBenchEscalateConflicts}
		}
		core.ResetSolverPools()
		res, elapsed, timedOut, err := check(bench.Source, opts)
		if err != nil {
			return nil, 0, err
		}
		if timedOut {
			return nil, 0, fmt.Errorf("check timed out")
		}
		return res, elapsed, nil
	}
	single, singleTime, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("sat engine single: %w", err)
	}
	portfolio, portfolioTime, err := run(4)
	if err != nil {
		return nil, fmt.Errorf("sat engine portfolio: %w", err)
	}
	identical := satCoreWitness(single) == satCoreWitness(portfolio)
	if !identical {
		return nil, fmt.Errorf("sat engine: portfolio report differs from single-config report")
	}
	if portfolio.Stats.PortfolioEscalations < 1 || portfolio.Stats.PortfolioRaces < 1 {
		return nil, fmt.Errorf("sat engine: portfolio run escalated %d times and raced %d times, want >=1 each (E=%d should trip on the LAMP queries)",
			portfolio.Stats.PortfolioEscalations, portfolio.Stats.PortfolioRaces, SatBenchEscalateConflicts)
	}
	return &SatEngineResult{
		Manifest:         bench.Name + "+deps",
		Workers:          workers,
		Deterministic:    portfolio.Deterministic,
		ReportIdentical:  identical,
		Escalations:      portfolio.Stats.PortfolioEscalations,
		Races:            portfolio.Stats.PortfolioRaces,
		WinnerByConfig:   portfolio.Stats.WinnerByConfig,
		SingleSeconds:    singleTime.Seconds(),
		PortfolioSeconds: portfolioTime.Seconds(),
	}, nil
}

// BuildSatReport runs the portfolio-SAT experiment and enforces its
// floors: identical verdicts and witnesses everywhere, real escalations
// and races in the engine differential, and the modeled cold-query p99
// speedup at k=4.
func BuildSatReport(timeout time.Duration) (*SatReport, error) {
	cfgs := sat.PortfolioConfigs(4)

	// Harvest the cold-query set: every seed manifest under the default
	// catalog, plus hosting under the enriched LAMP catalog (the
	// heavyweight shared-closure queries).
	var queries []satQuery
	for _, b := range benchmarks.All() {
		qs, err := harvestSatQueries(b.Name, b.Source, options(timeout))
		if err != nil {
			return nil, err
		}
		queries = append(queries, qs...)
	}
	provider, err := hostingDiffCatalog()
	if err != nil {
		return nil, err
	}
	hostingBench, err := benchmarks.Get("hosting")
	if err != nil {
		return nil, err
	}
	enrichedOpts := options(timeout)
	enrichedOpts.Provider = provider
	qs, err := harvestSatQueries("hosting+deps", hostingBench.Source, enrichedOpts)
	if err != nil {
		return nil, err
	}
	queries = append(queries, qs...)
	if len(queries) < MinSatQueries {
		return nil, fmt.Errorf("sat bench: harvested %d queries, want >=%d", len(queries), MinSatQueries)
	}

	var (
		rows                           []SatQueryRow
		single, portfolio2, portfolio4 []float64
		witnessQueries, escalations    int
		raceWinners                    = map[string]int{}
	)
	for _, q := range queries {
		m, err := measureSatQuery(q, cfgs)
		if err != nil {
			return nil, err
		}
		winner2, err := raceSatQuery(m, cfgs, 2)
		if err != nil {
			return nil, err
		}
		_ = winner2
		winner4, err := raceSatQuery(m, cfgs, 4)
		if err != nil {
			return nil, err
		}
		raceWinners[winner4]++

		best, bestCfg := m.conflicts[0], cfgs[0].Name
		for i := 1; i < len(cfgs); i++ {
			if m.conflicts[i] < best {
				best, bestCfg = m.conflicts[i], cfgs[i].Name
			}
		}
		s := satModeledLatency(m, cfgs, 1)
		p2 := satModeledLatency(m, cfgs, 2)
		p4 := satModeledLatency(m, cfgs, 4)
		single, portfolio2, portfolio4 = append(single, s), append(portfolio2, p2), append(portfolio4, p4)
		escalated := m.conflicts[0] > SatBenchEscalateConflicts
		if escalated {
			escalations++
		}
		if !m.commutes {
			witnessQueries++
		}
		rows = append(rows, SatQueryRow{
			Manifest:         q.manifest,
			Pair:             q.pair,
			Commutes:         m.commutes,
			DefaultConflicts: m.conflicts[0],
			BestConflicts:    best,
			BestConfig:       bestCfg,
			Escalated:        escalated,
			SingleMS:         s,
			Portfolio2MS:     p2,
			Portfolio4MS:     p4,
			RaceWinner:       winner4,
		})
	}
	if witnessQueries < 3 {
		return nil, fmt.Errorf("sat bench: only %d witness (non-commuting) queries in the set, want >=3 for canonical-extraction coverage", witnessQueries)
	}
	if escalations < 1 {
		return nil, fmt.Errorf("sat bench: no query exceeded the escalation budget E=%d; the tail is empty", SatBenchEscalateConflicts)
	}

	engine, err := satEngineDifferential(timeout)
	if err != nil {
		return nil, err
	}

	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	rep := &SatReport{
		Benchmark: "BenchmarkPortfolioSat",
		Workload: fmt.Sprintf("%d overlapping resource pairs from the seed manifests plus hosting.pp under the enriched LAMP catalog (%d witness queries, %d past E=%d conflicts)",
			len(rows), witnessQueries, escalations, SatBenchEscalateConflicts),
		HostCPUs:                 runtime.NumCPU(),
		Configs:                  names,
		ModeledConflictLatencyUS: ModeledSatConflictLatency.Microseconds(),
		ModeledStartupLatencyMS:  ModeledSatStartupLatency.Milliseconds(),
		TailSigma:                SatTailSigma,
		EscalateConflicts:        SatBenchEscalateConflicts,
		Queries:                  len(rows),
		WitnessQueries:           witnessQueries,
		Escalations:              escalations,
		Rows:                     rows,
		Single:                   satSeries(single),
		Portfolio2:               satSeries(portfolio2),
		Portfolio4:               satSeries(portfolio4),
		VerdictsIdentical:        true, // enforced per query above; any disagreement errors out
		WitnessesIdentical:       true,
		RaceWinners:              raceWinners,
		Engine:                   engine,
	}
	if rep.Portfolio2.P99MS > 0 {
		rep.P99Speedup2 = rep.Single.P99MS / rep.Portfolio2.P99MS
	}
	if rep.Portfolio4.P99MS > 0 {
		rep.P99Speedup4 = rep.Single.P99MS / rep.Portfolio4.P99MS
	}
	if rep.Portfolio4.P50MS > 0 {
		rep.P50Speedup4 = rep.Single.P50MS / rep.Portfolio4.P50MS
	}
	if rep.P99Speedup4 < MinSatP99Speedup {
		return nil, fmt.Errorf("sat bench: modeled cold-query p99 speedup %.2fx at k=4 below the %.1fx floor (single %.1fms vs portfolio %.1fms)",
			rep.P99Speedup4, MinSatP99Speedup, rep.Single.P99MS, rep.Portfolio4.P99MS)
	}
	return rep, nil
}

// Write writes the report as indented JSON to path.
func (r *SatReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
