package experiments

// The sharded-cluster experiment: what does a verdict-sharing rehearsald
// ring buy over one node? An in-process fleet of 1, 2 and 4 daemons —
// each with one worker, its own substrate, and the peer ring as its far
// verdict tier — receives the same zipfian job mix over HTTP:
//
//	cold   fresh fleet, empty caches — popular manifests repeat, so even
//	       this round exercises the ring (a repeat may land on a node
//	       that never solved its pairs)
//	warm   the same semantic mix under fresh digests — every pairwise
//	       verdict is already owned somewhere on the ring, so no node
//	       runs a single solver query
//
// Each job's execution time is floored by Config.ModeledJobLatency;
// sleeps don't burn CPU, so N colocated nodes keep their full modeled
// capacity and warm throughput measures routing and cache behavior, not
// core contention. Verdicts are fingerprinted (reports minus stats and
// timings) and must be byte-identical at every node count — the run
// fails otherwise, so a committed BENCH_cluster.json is itself evidence
// that sharding never changed an answer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/service"
)

// ClusterBenchConfig parameterizes the cluster experiment; zero values
// mean the defaults the committed BENCH_cluster.json is produced with.
type ClusterBenchConfig struct {
	// NodeCounts are the fleet sizes measured, in order; the first is the
	// verdict baseline the others must match byte-for-byte.
	NodeCounts []int
	// Jobs is the number of submissions per round.
	Jobs int
	// Pool is the number of distinct manifests the zipfian mix draws from.
	Pool int
	// Seed drives the zipfian draws; the whole experiment is deterministic
	// given a seed (advertise URLs are fixed, so ring placement is too).
	Seed int64
	// ModeledLatency floors each job's execution time (service
	// Config.ModeledJobLatency).
	ModeledLatency time.Duration
}

func (c ClusterBenchConfig) withDefaults() ClusterBenchConfig {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4}
	}
	if c.Jobs <= 0 {
		c.Jobs = 64
	}
	if c.Pool <= 0 {
		c.Pool = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ModeledLatency <= 0 {
		c.ModeledLatency = 5 * time.Millisecond
	}
	return c
}

// ClusterRow is one (fleet size, round) configuration.
type ClusterRow struct {
	Nodes      int     `json:"nodes"`
	Round      string  `json:"round"` // cold | warm
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	// Queries counts solver queries across the fleet this round (warm must
	// be 0); RemoteHits the verdicts answered by the peer ring.
	Queries    int `json:"solver_queries"`
	RemoteHits int `json:"remote_cache_hits"`
}

// ClusterScale summarizes one fleet size after both rounds.
type ClusterScale struct {
	Nodes          int     `json:"nodes"`
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"`
	// SpeedupOverOne is warm throughput relative to the single-node fleet.
	SpeedupOverOne float64 `json:"speedup_over_one_node"`
	RingHits       int64   `json:"ring_hits"`
	RingPuts       int64   `json:"ring_puts"`
	RoutedLocal    int64   `json:"jobs_routed_local"`
	RoutedProxied  int64   `json:"jobs_routed_proxied"`
	ProxyFallbacks int64   `json:"proxy_fallbacks"`
}

// ClusterReport is the BENCH_cluster.json trajectory point.
type ClusterReport struct {
	Benchmark string         `json:"benchmark"`
	Workload  string         `json:"workload"`
	HostCPUs  int            `json:"host_cpus"`
	Seed      int64          `json:"seed"`
	Rows      []ClusterRow   `json:"rows"`
	Scaling   []ClusterScale `json:"scaling"`
	// VerdictsIdentical is always true in a written report: the run fails
	// if any fleet size changes any verdict fingerprint.
	VerdictsIdentical bool `json:"verdicts_identical"`
}

// Write writes the report as indented JSON to path.
func (r *ClusterReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// hostRewriteTransport maps the fleet's stable advertise hosts to the
// ephemeral in-process listeners: ring placement depends on member URL
// strings, so fixed fake hosts make digest routing deterministic across
// runs while the real ports are not.
type hostRewriteTransport struct{ hosts map[string]string }

func (t hostRewriteTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if real, ok := t.hosts[r.URL.Host]; ok {
		r2 := r.Clone(r.Context())
		r2.URL.Host = real
		r2.URL.Scheme = "http"
		r = r2
	}
	return http.DefaultTransport.RoundTrip(r)
}

// clusterFleet is n in-process rehearsald nodes sharing one verdict ring.
type clusterFleet struct {
	members []string
	nodes   []*cluster.Node
	svcs    []*service.Server
	ts      []*httptest.Server
	client  *http.Client
}

func startClusterFleet(n int, timeout time.Duration, cfg ClusterBenchConfig) (*clusterFleet, error) {
	_, provider := ParallelWorkload(cfg.Pool)
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("http://node%d.cluster", i)
	}
	hosts := make(map[string]string, n)
	client := &http.Client{Transport: hostRewriteTransport{hosts: hosts}, Timeout: 30 * time.Second}
	f := &clusterFleet{members: members, client: client}
	core.ResetSolverPools()
	for i := 0; i < n; i++ {
		peers := make([]string, 0, n-1)
		for j, m := range members {
			if j != i {
				peers = append(peers, m)
			}
		}
		node := cluster.NewNode(members[i], peers)
		node.SetHTTPClient(client)
		sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: provider, RemoteTier: node.Tier()})
		if err != nil {
			f.close()
			return nil, err
		}
		base := options(timeout)
		base.Parallelism = 1
		svc, err := service.New(service.Config{
			Workers:           1, // fleet size is the variable
			QueueDepth:        4 * cfg.Jobs,
			JobTimeout:        timeout,
			Substrate:         sub,
			BaseOptions:       &base,
			Cluster:           node,
			ModeledJobLatency: cfg.ModeledLatency,
		})
		if err != nil {
			f.close()
			return nil, err
		}
		ts := httptest.NewServer(svc.Handler())
		hosts[fmt.Sprintf("node%d.cluster", i)] = ts.Listener.Addr().String()
		f.nodes = append(f.nodes, node)
		f.svcs = append(f.svcs, svc)
		f.ts = append(f.ts, ts)
	}
	return f, nil
}

func (f *clusterFleet) close() {
	for _, svc := range f.svcs {
		ctx, cancel := shutdownContext()
		_ = svc.Shutdown(ctx)
		cancel()
	}
	for _, ts := range f.ts {
		ts.Close()
	}
}

// zipfDraws fixes the semantic mix for every round and fleet size: a
// skewed popularity distribution over the manifest pool, as a real site's
// role manifests would show.
func zipfDraws(cfg ClusterBenchConfig) []int {
	r := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(r, 1.3, 1, uint64(cfg.Pool-1))
	draws := make([]int, cfg.Jobs)
	for i := range draws {
		draws[i] = int(z.Uint64())
	}
	return draws
}

// clusterManifest renders pool entry idx — a sliding package window, as
// in the service experiment — salted with the round and submission index
// so every submission has a distinct digest: nothing is answered by the
// dedup/result layer, and warm-round routing re-shards the whole mix.
func clusterManifest(pool, idx int, round string, job int) string {
	m := fmt.Sprintf("# %s cluster job %d (pool %d)\n", round, job, idx)
	for j := 0; j < serviceWindow; j++ {
		m += fmt.Sprintf("package {'svc-%d': ensure => present }\n", 1+(idx+j)%pool)
	}
	return m
}

// clusterFingerprint renders the verdict-relevant part of a report:
// everything except stats and timings. Two runs agree iff these bytes do.
func clusterFingerprint(rep *service.Report) (string, error) {
	cp := *rep
	cp.Stats = nil
	if cp.Determinism != nil {
		d := *cp.Determinism
		d.DurationMS = 0
		cp.Determinism = &d
	}
	if cp.Idempotence != nil {
		d := *cp.Idempotence
		d.DurationMS = 0
		cp.Idempotence = &d
	}
	if cp.Invariant != nil {
		inv := *cp.Invariant
		inv.DurationMS = 0
		cp.Invariant = &inv
	}
	b, err := json.Marshal(cp)
	return string(b), err
}

type clusterJobRef struct {
	id    string
	owner string // member URL to poll (the ring owner when proxied)
	idx   int    // pool index, for fingerprint bookkeeping
}

// submit posts one job to entry; routing may proxy it to its ring owner,
// in which case the X-Rehearsald-Owner header names where it lives.
func (f *clusterFleet) submit(entry string, req service.JobRequest) (clusterJobRef, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return clusterJobRef{}, err
	}
	resp, err := f.client.Post(entry+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return clusterJobRef{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return clusterJobRef{}, fmt.Errorf("submit to %s: %s: %s", entry, resp.Status, bytes.TrimSpace(msg))
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return clusterJobRef{}, err
	}
	owner := resp.Header.Get("X-Rehearsald-Owner")
	if owner == "" {
		owner = entry
	}
	return clusterJobRef{id: view.ID, owner: owner}, nil
}

// await polls a job until it reaches a terminal state.
func (f *clusterFleet) await(ref clusterJobRef, timeout time.Duration) (service.JobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := f.client.Get(ref.owner + "/v1/jobs/" + ref.id)
		if err != nil {
			return service.JobView{}, err
		}
		var view service.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return service.JobView{}, err
		}
		if view.State.Terminal() {
			return view, nil
		}
		if time.Now().After(deadline) {
			return view, fmt.Errorf("job %s on %s not terminal after %v", ref.id, ref.owner, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// runRound pushes one round through the fleet — submissions round-robin
// over the members, as behind a load balancer — and returns the row plus
// the verdict fingerprint of each pool entry seen.
func (f *clusterFleet) runRound(round string, draws []int, cfg ClusterBenchConfig, timeout time.Duration) (ClusterRow, map[int]string, error) {
	start := time.Now()
	refs := make([]clusterJobRef, 0, len(draws))
	for i, idx := range draws {
		req := service.JobRequest{
			Manifest:        clusterManifest(cfg.Pool, idx, round, i),
			SemanticCommute: true,
			Checks:          []string{service.CheckDeterminism},
		}
		ref, err := f.submit(f.members[i%len(f.members)], req)
		if err != nil {
			return ClusterRow{}, nil, fmt.Errorf("cluster round %s: %w", round, err)
		}
		ref.idx = idx
		refs = append(refs, ref)
	}
	queries, remoteHits := 0, 0
	fingerprints := make(map[int]string)
	lats := make([]time.Duration, 0, len(refs))
	for _, ref := range refs {
		view, err := f.await(ref, timeout)
		if err != nil {
			return ClusterRow{}, nil, fmt.Errorf("cluster round %s: %w", round, err)
		}
		lats = append(lats, time.Since(start))
		if view.State != service.JobDone || view.Report == nil || view.Report.Error != nil {
			return ClusterRow{}, nil, fmt.Errorf("cluster round %s: job %s finished %s: %+v",
				round, ref.id, view.State, view.Report)
		}
		if view.Report.Stats != nil {
			queries += view.Report.Stats.SemQueries
			remoteHits += view.Report.Stats.RemoteCacheHits
		}
		fp, err := clusterFingerprint(view.Report)
		if err != nil {
			return ClusterRow{}, nil, err
		}
		if prev, ok := fingerprints[ref.idx]; ok && prev != fp {
			return ClusterRow{}, nil, fmt.Errorf("cluster round %s: pool entry %d produced two verdicts:\n%s\n%s",
				round, ref.idx, prev, fp)
		}
		fingerprints[ref.idx] = fp
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return ClusterRow{
		Nodes:      len(f.members),
		Round:      round,
		Jobs:       len(draws),
		Seconds:    elapsed.Seconds(),
		JobsPerSec: float64(len(draws)) / elapsed.Seconds(),
		P50MS:      quantileMS(lats, 0.50),
		P99MS:      quantileMS(lats, 0.99),
		Queries:    queries,
		RemoteHits: remoteHits,
	}, fingerprints, nil
}

// clusterStats aggregates per-node routing and ring-tier counters.
func (f *clusterFleet) scale(warm ClusterRow) ClusterScale {
	sc := ClusterScale{Nodes: len(f.members), WarmJobsPerSec: warm.JobsPerSec}
	for i, node := range f.nodes {
		ts := node.TierStats()
		sc.RingHits += ts.Hits
		sc.RingPuts += ts.Puts
		var st service.ClusterStats
		resp, err := f.client.Get(f.members[i] + "/v1/cluster/stats")
		if err != nil {
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			continue
		}
		sc.RoutedLocal += st.RoutedLocal
		sc.RoutedProxied += st.RoutedProxied
		sc.ProxyFallbacks += st.ProxyFallbacks
	}
	return sc
}

// BuildClusterReport runs the cluster experiment end to end, enforcing
// its own acceptance checks: zero warm solver queries, ring hits at every
// multi-node size, byte-identical verdicts across fleet sizes, and warm
// throughput increasing monotonically with node count.
func BuildClusterReport(timeout time.Duration, cfg ClusterBenchConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	draws := zipfDraws(cfg)
	rep := &ClusterReport{
		Benchmark: "BenchmarkClusterShardedThroughput",
		Workload: fmt.Sprintf("%d jobs/round, zipfian(s=1.3) over %d role manifests (%d-package windows), distinct digests per submission, %v modeled job latency, 1 worker/node",
			cfg.Jobs, cfg.Pool, serviceWindow, cfg.ModeledLatency),
		HostCPUs:          runtime.NumCPU(),
		Seed:              cfg.Seed,
		VerdictsIdentical: true,
	}
	var baseline map[int]string
	for _, n := range cfg.NodeCounts {
		f, err := startClusterFleet(n, timeout, cfg)
		if err != nil {
			return nil, err
		}
		cold, coldFPs, err := f.runRound("cold", draws, cfg, timeout)
		if err == nil {
			var warm ClusterRow
			var warmFPs map[int]string
			warm, warmFPs, err = f.runRound("warm", draws, cfg, timeout)
			if err == nil {
				err = checkClusterRound(n, cold, warm, coldFPs, warmFPs, baseline)
			}
			if err == nil {
				sc := f.scale(warm)
				if sc.ProxyFallbacks > 0 {
					err = fmt.Errorf("%d nodes: %d submissions fell back to local execution (no peer was dead)", n, sc.ProxyFallbacks)
				} else {
					if n > 1 && sc.RingHits == 0 {
						err = fmt.Errorf("%d nodes: warm round never hit the peer ring", n)
					}
					rep.Rows = append(rep.Rows, cold, warm)
					rep.Scaling = append(rep.Scaling, sc)
					if baseline == nil {
						baseline = coldFPs
					}
				}
			}
		}
		f.close()
		if err != nil {
			return nil, err
		}
	}
	for i := range rep.Scaling {
		rep.Scaling[i].SpeedupOverOne = rep.Scaling[i].WarmJobsPerSec / rep.Scaling[0].WarmJobsPerSec
		if i > 0 && rep.Scaling[i].WarmJobsPerSec <= rep.Scaling[i-1].WarmJobsPerSec {
			return nil, fmt.Errorf("warm throughput not monotonic: %d nodes %.1f jobs/s vs %d nodes %.1f jobs/s",
				rep.Scaling[i-1].Nodes, rep.Scaling[i-1].WarmJobsPerSec,
				rep.Scaling[i].Nodes, rep.Scaling[i].WarmJobsPerSec)
		}
	}
	return rep, nil
}

// checkClusterRound enforces the per-fleet-size invariants.
func checkClusterRound(n int, cold, warm ClusterRow, coldFPs, warmFPs, baseline map[int]string) error {
	if warm.Queries != 0 {
		return fmt.Errorf("%d nodes: warm round ran %d solver queries (every verdict should be on the ring)", n, warm.Queries)
	}
	if cold.Queries == 0 {
		return fmt.Errorf("%d nodes: cold round ran no solver queries — the workload is degenerate", n)
	}
	for idx, fp := range warmFPs {
		if coldFPs[idx] != fp {
			return fmt.Errorf("%d nodes: pool entry %d verdict changed between cold and warm rounds", n, idx)
		}
	}
	if baseline != nil {
		if len(coldFPs) != len(baseline) {
			return fmt.Errorf("%d nodes: saw %d pool entries, baseline saw %d", n, len(coldFPs), len(baseline))
		}
		for idx, fp := range coldFPs {
			if baseline[idx] != fp {
				return fmt.Errorf("%d nodes: pool entry %d verdict differs from the single-node baseline:\n%s\n%s",
					n, idx, baseline[idx], fp)
			}
		}
	}
	return nil
}
