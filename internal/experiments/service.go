package experiments

// The rehearsald service experiment: what does a warm, shared substrate
// buy over one-shot verification? A fleet of manifests (sliding package
// windows over a common dependency pool, so their pairwise
// semantic-commutativity queries overlap heavily) is pushed through one
// daemon scheduler in three rounds:
//
//	cold      fresh substrate, empty caches — every semantic query solved
//	warm      equivalent manifests with distinct digests — same resource
//	          sets, so every query is answered by the substrate's shared
//	          verdict cache; only load/compile/explore is re-done
//	resubmit  byte-identical re-submissions — answered entirely by the
//	          scheduler's dedup/result layer, no engine work at all
//
// Rows record throughput and client-observed p50/p99 job latency at
// service worker counts 1, 4 and 8.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

func shutdownContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// ServiceRow is one (worker count, round) configuration of the service
// experiment.
type ServiceRow struct {
	Workers    int     `json:"workers"`
	Round      string  `json:"round"` // cold | warm | resubmit
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	// Queries counts solver queries actually run this round; CacheHits the
	// semantic verdicts answered from the substrate's shared cache.
	Queries   int `json:"queries"`
	CacheHits int `json:"cache_hits"`
	// Deduped counts submissions answered without creating a job.
	Deduped int `json:"deduped"`
}

// ServiceSpeedup summarizes one worker count: warm-over-cold is the
// substrate's cross-request cache payoff, resubmit-over-cold the result
// layer's.
type ServiceSpeedup struct {
	Workers          int     `json:"workers"`
	WarmOverCold     float64 `json:"warm_over_cold"`
	ResubmitOverCold float64 `json:"resubmit_over_cold"`
}

// ServiceWorkerCounts are the daemon worker-pool sizes measured.
var ServiceWorkerCounts = []int{1, 4, 8}

// serviceWindow is the number of packages per manifest in the fleet.
const serviceWindow = 4

// serviceFleet builds the job fleet: n manifests, each installing a
// k-package window (wrapping) of the shared workload pool. Neighboring
// windows share most of their package pairs, so the fleet's semantic
// queries overlap the way a real site's role manifests do.
func serviceFleet(n int, round string) []service.JobRequest {
	reqs := make([]service.JobRequest, 0, n)
	for i := 0; i < n; i++ {
		manifest := fmt.Sprintf("# %s fleet manifest %d\n", round, i)
		for j := 0; j < serviceWindow; j++ {
			manifest += fmt.Sprintf("package {'svc-%d': ensure => present }\n", 1+(i+j)%n)
		}
		reqs = append(reqs, service.JobRequest{
			Manifest:        manifest,
			SemanticCommute: true,
			Checks:          []string{service.CheckDeterminism},
		})
	}
	return reqs
}

// runServiceRound pushes one round of jobs through the scheduler and
// reports client-observed latencies plus the engine-work delta.
func runServiceRound(svc *service.Server, reqs []service.JobRequest, workers int, round string) (ServiceRow, error) {
	type outcome struct {
		job     *service.Job
		deduped bool
		lat     time.Duration
	}
	start := time.Now()
	outs := make([]outcome, 0, len(reqs))
	// Submit everything up front (the queue is sized for the fleet), then
	// wait: throughput is governed by the worker pool, as in production.
	for _, req := range reqs {
		job, deduped, err := svc.Submit(req)
		if err != nil {
			return ServiceRow{}, fmt.Errorf("service round %s: %w", round, err)
		}
		outs = append(outs, outcome{job: job, deduped: deduped})
	}
	queries, hits := 0, 0
	for i := range outs {
		<-outs[i].job.Done()
		outs[i].lat = time.Since(start)
		rep := outs[i].job.Report()
		if rep == nil || rep.Error != nil {
			return ServiceRow{}, fmt.Errorf("service round %s: job %s failed: %+v", round, outs[i].job.ID, rep)
		}
		if !outs[i].deduped && rep.Stats != nil {
			queries += rep.Stats.SemQueries
			hits += rep.Stats.SemCacheHits
		}
	}
	elapsed := time.Since(start)

	lats := make([]time.Duration, 0, len(outs))
	deduped := 0
	for _, o := range outs {
		lats = append(lats, o.lat)
		if o.deduped {
			deduped++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return ServiceRow{
		Workers:    workers,
		Round:      round,
		Jobs:       len(reqs),
		Seconds:    elapsed.Seconds(),
		JobsPerSec: float64(len(reqs)) / elapsed.Seconds(),
		P50MS:      quantileMS(lats, 0.50),
		P99MS:      quantileMS(lats, 0.99),
		Queries:    queries,
		CacheHits:  hits,
		Deduped:    deduped,
	}, nil
}

func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// ServiceBench runs the three rounds at each worker count. fleetSize is
// the number of manifests per round (0 means 12).
func ServiceBench(timeout time.Duration, fleetSize int) ([]ServiceRow, []ServiceSpeedup, error) {
	if fleetSize <= 0 {
		fleetSize = 12
	}
	_, provider := ParallelWorkload(fleetSize)
	rows := make([]ServiceRow, 0, 3*len(ServiceWorkerCounts))
	speedups := make([]ServiceSpeedup, 0, len(ServiceWorkerCounts))
	for _, workers := range ServiceWorkerCounts {
		core.ResetSolverPools()
		sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: provider})
		if err != nil {
			return nil, nil, err
		}
		base := options(timeout)
		base.Parallelism = 1 // service-level parallelism is the variable
		svc, err := service.New(service.Config{
			Workers:     workers,
			QueueDepth:  4 * fleetSize,
			JobTimeout:  timeout,
			Substrate:   sub,
			BaseOptions: &base,
		})
		if err != nil {
			return nil, nil, err
		}

		cold, err := runServiceRound(svc, serviceFleet(fleetSize, "cold"), workers, "cold")
		if err != nil {
			return nil, nil, err
		}
		warmFleet := serviceFleet(fleetSize, "warm")
		warm, err := runServiceRound(svc, warmFleet, workers, "warm")
		if err != nil {
			return nil, nil, err
		}
		resubmit, err := runServiceRound(svc, warmFleet, workers, "resubmit")
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, cold, warm, resubmit)
		sp := ServiceSpeedup{Workers: workers}
		if warm.Seconds > 0 {
			sp.WarmOverCold = cold.Seconds / warm.Seconds
		}
		if resubmit.Seconds > 0 {
			sp.ResubmitOverCold = cold.Seconds / resubmit.Seconds
		}
		speedups = append(speedups, sp)

		ctx, cancel := shutdownContext()
		err = svc.Shutdown(ctx)
		cancel()
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, speedups, nil
}

// ServiceReport is the BENCH_service.json trajectory point.
type ServiceReport struct {
	Benchmark string           `json:"benchmark"`
	Workload  string           `json:"workload"`
	HostCPUs  int              `json:"host_cpus"`
	Rows      []ServiceRow     `json:"rows"`
	Speedups  []ServiceSpeedup `json:"speedups"`
}

// BuildServiceReport runs the service experiment end to end.
func BuildServiceReport(timeout time.Duration) (*ServiceReport, error) {
	const fleetSize = 12
	rows, speedups, err := ServiceBench(timeout, fleetSize)
	if err != nil {
		return nil, err
	}
	return &ServiceReport{
		Benchmark: "BenchmarkServiceWarmSubstrate",
		Workload: fmt.Sprintf("%d role manifests, %d-package sliding windows over a shared dependency pool; rounds: cold substrate, warm substrate (distinct digests), identical resubmission",
			fleetSize, serviceWindow),
		HostCPUs: runtime.NumCPU(),
		Rows:     rows,
		Speedups: speedups,
	}, nil
}

// Write writes the report as indented JSON to path.
func (r *ServiceReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
