// Package experiments regenerates the data behind every table and figure
// of the paper's evaluation (section 6) as structured rows; cmd/experiments
// formats them as paper-style tables, and the root benchmark harness
// measures the same configurations under go test -bench.
package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/pkgdb"
)

func options(timeout time.Duration) core.Options {
	opts := core.DefaultOptions()
	opts.Timeout = timeout
	return opts
}

// check runs a determinacy analysis, translating deadline exhaustion into
// the timedOut flag.
func check(src string, opts core.Options) (*core.DeterminismResult, time.Duration, bool, error) {
	start := time.Now()
	sys, err := core.Load(src, opts)
	if err != nil {
		return nil, 0, false, err
	}
	res, err := sys.CheckDeterminism()
	elapsed := time.Since(start)
	if errors.Is(err, core.ErrTimeout) {
		return nil, elapsed, true, nil
	}
	if err != nil {
		return nil, elapsed, false, err
	}
	return res, elapsed, false, nil
}

// PathsRow is one line of figure 11a.
type PathsRow struct {
	Name     string
	Unpruned int
	Pruned   int
	TimedOut bool
}

// Fig11a computes paths per state with and without pruning/elimination.
func Fig11a(timeout time.Duration) ([]PathsRow, error) {
	var rows []PathsRow
	for _, b := range benchmarks.All() {
		res, _, timedOut, err := check(b.Source, options(timeout))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if timedOut {
			rows = append(rows, PathsRow{Name: b.Name, TimedOut: true})
			continue
		}
		rows = append(rows, PathsRow{
			Name:     b.Name,
			Unpruned: res.Stats.TotalPaths,
			Pruned:   res.Stats.Paths,
		})
	}
	return rows, nil
}

// TimeRow compares one benchmark under two configurations.
type TimeRow struct {
	Name       string
	Off, On    time.Duration
	OffTimeout bool
	OnTimeout  bool
}

// Fig11b compares determinacy time with pruning+elimination off versus on
// (commutativity on in both).
func Fig11b(timeout time.Duration) ([]TimeRow, error) {
	var rows []TimeRow
	for _, b := range benchmarks.All() {
		off := options(timeout)
		off.Pruning = false
		off.Elimination = false
		_, offTime, offTO, err := check(b.Source, off)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		_, onTime, onTO, err := check(b.Source, options(timeout))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, TimeRow{
			Name: b.Name,
			Off:  offTime, OffTimeout: offTO,
			On: onTime, OnTimeout: onTO,
		})
	}
	return rows, nil
}

// Fig11c compares determinacy time with commutativity checking off versus
// on (pruning and elimination off in both).
func Fig11c(timeout time.Duration) ([]TimeRow, error) {
	var rows []TimeRow
	for _, b := range benchmarks.All() {
		off := options(timeout)
		off.Commutativity = false
		off.Pruning = false
		off.Elimination = false
		_, offTime, offTO, err := check(b.Source, off)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		on := options(timeout)
		on.Pruning = false
		on.Elimination = false
		_, onTime, onTO, err := check(b.Source, on)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, TimeRow{
			Name: b.Name,
			Off:  offTime, OffTimeout: offTO,
			On: onTime, OnTimeout: onTO,
		})
	}
	return rows, nil
}

// IdemRow is one line of figure 12.
type IdemRow struct {
	Name       string
	Time       time.Duration
	Idempotent bool
	TimedOut   bool
}

// Fig12 measures the idempotence check on the verified suite (seven
// deterministic benchmarks plus the six fixes).
func Fig12(timeout time.Duration) ([]IdemRow, error) {
	var rows []IdemRow
	for _, b := range benchmarks.Verified() {
		sys, err := core.Load(b.Source, options(timeout))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		start := time.Now()
		res, err := sys.CheckIdempotence()
		elapsed := time.Since(start)
		if errors.Is(err, core.ErrTimeout) {
			rows = append(rows, IdemRow{Name: b.Name, Time: elapsed, TimedOut: true})
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, IdemRow{Name: b.Name, Time: elapsed, Idempotent: res.Idempotent})
	}
	return rows, nil
}

// ScaleRow is one point of figure 13.
type ScaleRow struct {
	N             int
	Time          time.Duration
	Sequences     int
	Deterministic bool
	TimedOut      bool
}

// Fig13Manifest builds the paper's synthetic worst case: n conflicting
// packages all creating the same file, forced deterministic by a final
// file resource (so the solver must prove unsatisfiability over n! orders).
func Fig13Manifest(n int) (string, pkgdb.Provider) {
	catalog := pkgdb.DefaultCatalog()
	manifest := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("conflict-a-%d", i)
		catalog.Add("ubuntu", &pkgdb.Package{
			Name:    name,
			Version: "1.0",
			Files:   []string{"/opt/a", fmt.Sprintf("/opt/own-%d", i)},
		})
		manifest += fmt.Sprintf("package{'%s': before => File['/opt/a'] }\n", name)
	}
	manifest += "file{'/opt/a': content => 'x' }\n"
	return manifest, catalog
}

// Fig13 measures the worst case for n = 2..maxN.
func Fig13(timeout time.Duration, maxN int) ([]ScaleRow, error) {
	var rows []ScaleRow
	for n := 2; n <= maxN; n++ {
		manifest, provider := Fig13Manifest(n)
		opts := options(timeout)
		opts.Provider = provider
		opts.MaxSequences = 1000000
		res, elapsed, timedOut, err := check(manifest, opts)
		if err != nil {
			return nil, err
		}
		if timedOut {
			rows = append(rows, ScaleRow{N: n, Time: elapsed, TimedOut: true})
			continue
		}
		rows = append(rows, ScaleRow{
			N: n, Time: elapsed,
			Sequences:     res.Stats.Sequences,
			Deterministic: res.Deterministic,
		})
	}
	return rows, nil
}

// BugRow is one line of the section-6 "Bugs found" summary.
type BugRow struct {
	Name          string
	Deterministic bool
	FixVerifies   bool // fix is deterministic AND idempotent
	TimedOut      bool
}

// Bugs checks every benchmark and verifies the fixes of the buggy ones.
func Bugs(timeout time.Duration) ([]BugRow, error) {
	var rows []BugRow
	for _, b := range benchmarks.All() {
		res, _, timedOut, err := check(b.Source, options(timeout))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if timedOut {
			rows = append(rows, BugRow{Name: b.Name, TimedOut: true})
			continue
		}
		row := BugRow{Name: b.Name, Deterministic: res.Deterministic}
		if !res.Deterministic {
			fixed, err := benchmarks.Get(b.FixedName)
			if err != nil {
				return nil, err
			}
			sys, err := core.Load(fixed.Source, options(timeout))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fixed.Name, err)
			}
			det, err := sys.CheckDeterminism()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fixed.Name, err)
			}
			idem, err := sys.CheckIdempotence()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fixed.Name, err)
			}
			row.FixVerifies = det.Deterministic && idem.Idempotent
		}
		rows = append(rows, row)
	}
	return rows, nil
}
