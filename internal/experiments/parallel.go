package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// ParallelRow is one configuration of the parallel-speedup experiment:
// the semantic-commute-heavy workload checked with a given worker count.
type ParallelRow struct {
	Workers   int           `json:"workers"`
	Time      time.Duration `json:"-"`
	Seconds   float64       `json:"seconds"`
	Queries   int           `json:"queries"`    // solver queries run
	CacheHits int           `json:"cache_hits"` // served by the shared cache
	TimedOut  bool          `json:"timed_out"`
}

// ParallelWorkloadSize is the number of mutually-overlapping packages in
// the speedup workload; every pair needs one solver query, so the check
// issues n(n-1)/2 independent semantic-commutativity queries.
const ParallelWorkloadSize = 8

// ParallelWorkload builds the semantic-commute-heavy manifest the speedup
// experiment checks: n packages that all depend on a shared library
// package. Syntactically every pair conflicts (both write the shared
// closure's files), so without the semantic check the exploration is
// factorial; semantically every pair commutes (both guard the shared
// files with the same installed-marker check), so the whole check reduces
// to n(n-1)/2 embarrassingly-parallel solver queries plus elimination.
func ParallelWorkload(n int) (string, pkgdb.Provider) {
	catalog := pkgdb.NewCatalog()
	lib := &pkgdb.Package{Name: "libcommon", Version: "1.0"}
	for i := 0; i < 16; i++ {
		lib.Files = append(lib.Files, fmt.Sprintf("/usr/lib/libcommon/lib%03d", i))
	}
	catalog.Add("ubuntu", lib)
	manifest := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("svc-%d", i)
		p := &pkgdb.Package{Name: name, Version: "1.0", Depends: []string{"libcommon"}}
		for j := 0; j < 8; j++ {
			p.Files = append(p.Files, fmt.Sprintf("/usr/lib/%s/lib%03d", name, j))
		}
		catalog.Add("ubuntu", p)
		manifest += fmt.Sprintf("package {'%s': ensure => present }\n", name)
	}
	return manifest, catalog
}

// ParallelSpeedup measures the determinacy check on the parallel workload
// at each worker count. Every run uses a private, cold query cache so the
// configurations are comparable; verdicts are identical at any worker
// count (the analysis order is sequential and the queries deterministic),
// so the rows measure pure solver-fan-out speedup.
//
// latency models an external solver round trip per query (see
// core.Options.PerQueryLatency); 0 measures native in-process queries,
// whose fan-out speedup is bounded by the host's core count.
func ParallelSpeedup(timeout time.Duration, workers []int, latency time.Duration) ([]ParallelRow, error) {
	manifest, provider := ParallelWorkload(ParallelWorkloadSize)
	rows := make([]ParallelRow, 0, len(workers))
	for _, w := range workers {
		opts := options(timeout)
		opts.Provider = provider
		opts.SemanticCommute = true
		opts.Parallelism = w
		opts.SharedQueryCache = qcache.New()
		opts.PerQueryLatency = latency
		res, elapsed, timedOut, err := check(manifest, opts)
		if err != nil {
			return nil, fmt.Errorf("parallel workload at %d workers: %w", w, err)
		}
		row := ParallelRow{Workers: w, Time: elapsed, Seconds: elapsed.Seconds(), TimedOut: timedOut}
		if res != nil {
			if !res.Deterministic {
				return nil, fmt.Errorf("parallel workload must be deterministic")
			}
			row.Queries = res.Stats.SemQueries
			row.CacheHits = res.Stats.SemCacheHits
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ParallelReport is the BENCH_parallel.json trajectory point: both series
// of the speedup experiment plus enough host context to interpret them.
// The Native series fans real in-process solver queries, so its speedup
// is bounded by HostCPUs; the ModeledZ3 series adds a modeled external-
// solver round trip per query (the paper's Z3 ran behind IPC), so it
// demonstrates the engine's query overlap even on single-core hosts.
type ParallelReport struct {
	Benchmark        string        `json:"benchmark"`
	Workload         string        `json:"workload"`
	HostCPUs         int           `json:"host_cpus"`
	ModeledLatencyMS int64         `json:"modeled_latency_ms"`
	Native           []ParallelRow `json:"native"`
	ModeledZ3        []ParallelRow `json:"modeled_z3"`
	NativeSpeedup4   float64       `json:"native_speedup_at_4"`
	ModeledSpeedup4  float64       `json:"modeled_speedup_at_4"`
}

// ModeledZ3Latency is the modeled external-solver round trip used by the
// ModeledZ3 series, sized like a fast local Z3 process call.
const ModeledZ3Latency = 250 * time.Millisecond

// BuildParallelReport runs both series of the speedup experiment.
func BuildParallelReport(timeout time.Duration, workers []int) (*ParallelReport, error) {
	native, err := ParallelSpeedup(timeout, workers, 0)
	if err != nil {
		return nil, err
	}
	modeled, err := ParallelSpeedup(timeout, workers, ModeledZ3Latency)
	if err != nil {
		return nil, err
	}
	rep := &ParallelReport{
		Benchmark: "BenchmarkParallelSpeedup",
		Workload: fmt.Sprintf("%d packages with overlapping dependency closures: %d pairwise semantic-commutativity queries",
			ParallelWorkloadSize, ParallelWorkloadSize*(ParallelWorkloadSize-1)/2),
		HostCPUs:         runtime.NumCPU(),
		ModeledLatencyMS: ModeledZ3Latency.Milliseconds(),
		Native:           native,
		ModeledZ3:        modeled,
		NativeSpeedup4:   speedupAt(native, 4),
		ModeledSpeedup4:  speedupAt(modeled, 4),
	}
	return rep, nil
}

// WriteParallelReport writes the report as indented JSON to path.
func (r *ParallelReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func speedupAt(rows []ParallelRow, workers int) float64 {
	var base, at float64
	for _, r := range rows {
		if r.Workers == 1 {
			base = r.Seconds
		}
		if r.Workers == workers {
			at = r.Seconds
		}
	}
	if base == 0 || at == 0 {
		return 0
	}
	return base / at
}
