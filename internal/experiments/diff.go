package experiments

// The differential-verification experiment behind BENCH_diff.json: how
// much of a full determinacy check the diff path (core.VerifyDiff)
// avoids when only a fraction of a manifest changed between versions.
//
// Two series:
//
//   - Synthetic matrix: the semantic-commute-heavy workload scaled to
//     DiffWorkloadSize packages, edited at 1/5/25% (each edit swaps one
//     package for an equivalent substitute) and checked at 1/4/8
//     workers. Full-from-scratch vs diff-against-a-warm-base, with a
//     modeled external-solver round trip per query so the avoided
//     solver work dominates the wall clock the way it does against a
//     real Z3 process.
//
//   - Hosting headline: the largest seed benchmark (hosting.pp) under a
//     catalog where the three LAMP packages share a base library, so a
//     full check pays pairwise semantic-commutativity queries. A
//     one-resource edit (one more Listen line in ports.conf) re-checks
//     under the diff path with every package pair inherited — zero
//     solver queries — which is where the ISSUE's >=5x modeled speedup
//     comes from.
//
// Both series self-check soundness, not just speed: diff verdicts must
// equal full verdicts, unchanged-pair inheritance must be exact (no
// inherit misses on these workloads) and inherited pairs must never
// reach the solver.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// DiffRow is one (edit fraction, worker count) configuration of the
// synthetic differential-verification matrix.
type DiffRow struct {
	EditPercent     int     `json:"edit_percent"`
	EditedResources int     `json:"edited_resources"`
	Workers         int     `json:"workers"`
	FullSeconds     float64 `json:"full_seconds"`
	DiffSeconds     float64 `json:"diff_seconds"`
	Speedup         float64 `json:"speedup"` // full / diff
	FullQueries     int     `json:"full_queries"`
	DiffQueries     int     `json:"diff_queries"`
	PairsReused     int     `json:"pairs_reused"`
	PairsReverified int     `json:"pairs_reverified"`
	InheritMisses   int     `json:"inherit_misses"`
	TimedOut        bool    `json:"timed_out"`
}

// DiffWorkloadSize is the package count of the synthetic series: large
// enough that the pairwise matrix (n(n-1)/2 = 66 queries) dwarfs the
// handful touched by a small edit, small enough that the one-worker
// full runs stay tractable (the pooled solver's shared vocabulary
// spans every closure in the check, so native per-query cost grows
// with n).
const DiffWorkloadSize = 12

// ModeledDiffQueryLatency is the modeled external-solver round trip of
// the synthetic series. Smaller than ModeledZ3Latency only to keep the
// 66-query full runs tractable at one worker; the full-vs-diff ratio
// is latency-independent once queries dominate.
const ModeledDiffQueryLatency = 25 * time.Millisecond

// DiffEditPercents are the edit fractions of the synthetic matrix.
var DiffEditPercents = []int{1, 5, 25}

// DiffWorkers are the worker counts of the synthetic matrix.
var DiffWorkers = []int{1, 4, 8}

// DiffWorkload builds the base and head versions of the synthetic
// differential workload: n packages that all depend on a shared library
// (every pair needs one semantic-commutativity query, as in
// ParallelWorkload), where head swaps the first `edits` packages for
// equivalently-shaped substitutes. Unchanged pairs number
// (n-edits)(n-edits-1)/2; every pair touching a swapped package must be
// re-verified.
func DiffWorkload(n, edits int) (base, head string, provider pkgdb.Provider) {
	catalog := pkgdb.NewCatalog()
	lib := &pkgdb.Package{Name: "libcommon", Version: "1.0"}
	for i := 0; i < 16; i++ {
		lib.Files = append(lib.Files, fmt.Sprintf("/usr/lib/libcommon/lib%03d", i))
	}
	catalog.Add("ubuntu", lib)
	add := func(name string) {
		p := &pkgdb.Package{Name: name, Version: "1.0", Depends: []string{"libcommon"}}
		for j := 0; j < 8; j++ {
			p.Files = append(p.Files, fmt.Sprintf("/usr/lib/%s/lib%03d", name, j))
		}
		catalog.Add("ubuntu", p)
	}
	var b, h strings.Builder
	for i := 1; i <= n; i++ {
		svc := fmt.Sprintf("svc-%d", i)
		add(svc)
		fmt.Fprintf(&b, "package {'%s': ensure => present }\n", svc)
		if i <= edits {
			alt := fmt.Sprintf("alt-%d", i)
			add(alt)
			fmt.Fprintf(&h, "package {'%s': ensure => present }\n", alt)
		} else {
			fmt.Fprintf(&h, "package {'%s': ensure => present }\n", svc)
		}
	}
	return b.String(), h.String(), catalog
}

// checkDiff times the incremental re-check: loading the head version
// and running core.VerifyDiff against a resident base system. The base
// is deliberately outside the timer — this is the rehearsald chaining
// scenario, where the daemon already holds the base job's compiled
// system and only the new manifest version arrives.
func checkDiff(baseSys *core.System, head string, opts core.Options) (*core.DeterminismResult, time.Duration, bool, error) {
	start := time.Now()
	headSys, err := core.Load(head, opts)
	if err != nil {
		return nil, 0, false, err
	}
	res, err := core.VerifyDiff(baseSys, headSys)
	elapsed := time.Since(start)
	if errors.Is(err, core.ErrTimeout) {
		return nil, elapsed, true, nil
	}
	if err != nil {
		return nil, elapsed, false, err
	}
	return res, elapsed, false, nil
}

// DiffSpeedup runs the synthetic matrix: for each edit fraction and
// worker count, a full check of the head version from a cold cache
// versus a differential check against a base warmed into a shared
// cache. Every row uses private caches and a reset solver pool so rows
// are independent; latency models the external-solver round trip per
// query (0 measures native in-process queries, where load and
// exploration — which the diff path still pays in full — compress the
// ratio).
func DiffSpeedup(timeout time.Duration, n int, percents, workers []int, latency time.Duration) ([]DiffRow, error) {
	var rows []DiffRow
	for _, pct := range percents {
		edits := n * pct / 100
		if edits < 1 {
			edits = 1
		}
		base, head, provider := DiffWorkload(n, edits)
		unchanged := n - edits
		wantReused := unchanged * (unchanged - 1) / 2
		for _, w := range workers {
			opts := options(timeout)
			opts.Provider = provider
			opts.SemanticCommute = true
			opts.Parallelism = w
			opts.PerQueryLatency = latency

			// Full verification of head, from scratch.
			fullOpts := opts
			fullOpts.SharedQueryCache = qcache.New()
			core.ResetSolverPools()
			full, fullTime, fullTO, err := check(head, fullOpts)
			if err != nil {
				return nil, fmt.Errorf("diff workload (%d%% edit, %d workers) full: %w", pct, w, err)
			}

			// Warm a shared cache with the base version (setup, untimed),
			// then the timed differential re-check of head against it.
			warmOpts := opts
			warmOpts.SharedQueryCache = qcache.New()
			baseSys, err := core.Load(base, warmOpts)
			if err != nil {
				return nil, fmt.Errorf("diff workload (%d%% edit) base: %w", pct, err)
			}
			baseRes, err := baseSys.CheckDeterminism()
			if err != nil {
				return nil, fmt.Errorf("diff workload (%d%% edit) base: %w", pct, err)
			}
			if !baseRes.Deterministic {
				return nil, fmt.Errorf("diff workload base must be deterministic")
			}
			core.ResetSolverPools()
			res, diffTime, diffTO, err := checkDiff(baseSys, head, warmOpts)
			if err != nil {
				return nil, fmt.Errorf("diff workload (%d%% edit, %d workers) diff: %w", pct, w, err)
			}

			row := DiffRow{
				EditPercent:     pct,
				EditedResources: edits,
				Workers:         w,
				FullSeconds:     fullTime.Seconds(),
				DiffSeconds:     diffTime.Seconds(),
				TimedOut:        fullTO || diffTO,
			}
			if full != nil && res != nil {
				// Soundness self-checks: the diff path must agree with the
				// full check and must not have guessed any verdict.
				if res.Deterministic != full.Deterministic {
					return nil, fmt.Errorf("diff workload (%d%% edit, %d workers): diff verdict %v != full %v",
						pct, w, res.Deterministic, full.Deterministic)
				}
				if res.Stats.PairsReused != wantReused {
					return nil, fmt.Errorf("diff workload (%d%% edit, %d workers): reused %d pairs, want %d",
						pct, w, res.Stats.PairsReused, wantReused)
				}
				if res.Stats.InheritMisses != 0 {
					return nil, fmt.Errorf("diff workload (%d%% edit, %d workers): %d inherit misses, want 0",
						pct, w, res.Stats.InheritMisses)
				}
				if res.Stats.SemQueries != res.Stats.PairsReverified {
					return nil, fmt.Errorf("diff workload (%d%% edit, %d workers): %d solver queries for %d re-verified pairs (inherited pairs must not reach the solver)",
						pct, w, res.Stats.SemQueries, res.Stats.PairsReverified)
				}
				row.FullQueries = full.Stats.SemQueries
				row.DiffQueries = res.Stats.SemQueries
				row.PairsReused = res.Stats.PairsReused
				row.PairsReverified = res.Stats.PairsReverified
				row.InheritMisses = res.Stats.InheritMisses
				if row.DiffSeconds > 0 {
					row.Speedup = row.FullSeconds / row.DiffSeconds
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// HostingDiffResult is the headline measurement: a one-resource edit of
// the largest seed manifest re-verified differentially versus in full.
type HostingDiffResult struct {
	Manifest         string  `json:"manifest"`
	Workers          int     `json:"workers"`
	ModeledLatencyMS int64   `json:"modeled_latency_ms"`
	FullSeconds      float64 `json:"full_seconds"`
	DiffSeconds      float64 `json:"diff_seconds"`
	Speedup          float64 `json:"speedup"`
	FullQueries      int     `json:"full_queries"`
	DiffQueries      int     `json:"diff_queries"`
	DiffChanged      int     `json:"diff_changed"`
	DiffUnchanged    int     `json:"diff_unchanged"`
	PairsReused      int     `json:"pairs_reused"`
	PairsReverified  int     `json:"pairs_reverified"`
	InheritMisses    int     `json:"inherit_misses"`
}

// HostingDiffWorkers pins the headline run to one worker: the modeled
// solver round trips serialize, matching the paper's single Z3 process.
const HostingDiffWorkers = 1

// hostingDiffCatalog builds the enriched catalog the hosting series
// checks under: the default closures of the three LAMP packages plus a
// shared base library they all depend on, so every package pair writes
// the same closure files (a syntactic conflict discharged by one
// semantic-commutativity query each — the solver work a small edit
// should not have to repeat).
func hostingDiffCatalog() (pkgdb.Provider, error) {
	def := pkgdb.DefaultCatalog()
	cat := pkgdb.NewCatalog()
	lib := &pkgdb.Package{Name: "libhosting-base", Version: "1.0"}
	for i := 0; i < 12; i++ {
		lib.Files = append(lib.Files, fmt.Sprintf("/usr/lib/libhosting-base/lib%03d", i))
	}
	cat.Add("ubuntu", lib)
	for _, name := range []string{"apache2", "mysql-server", "php5"} {
		closure, err := def.Closure("ubuntu", name)
		if err != nil {
			return nil, err
		}
		for _, p := range closure {
			q := *p
			if q.Name == name {
				q.Depends = append(append([]string(nil), q.Depends...), lib.Name)
			}
			cat.Add("ubuntu", &q)
		}
	}
	return cat, nil
}

// HostingDiffSpeedup measures a one-resource edit of hosting.pp (an
// extra Listen line in ports.conf) under the enriched catalog: a full
// check of the edited version versus a differential check against the
// original warmed into a shared cache. It self-checks soundness —
// matching verdicts, a one-resource delta, exact inheritance and zero
// solver queries on the diff run — and leaves the speedup threshold to
// the caller (native runs are dominated by load and exploration, which
// the diff path pays in full).
func HostingDiffSpeedup(timeout time.Duration, latency time.Duration) (*HostingDiffResult, error) {
	bench, err := benchmarks.Get("hosting")
	if err != nil {
		return nil, err
	}
	base := bench.Source
	// The manifest source spells newlines as literal \n escapes.
	const anchor = `Listen 80\nListen 443\n`
	head := strings.Replace(base, anchor, `Listen 80\nListen 443\nListen 8080\n`, 1)
	if head == base {
		return nil, fmt.Errorf("hosting diff: edit anchor %q not found in hosting.pp", anchor)
	}
	provider, err := hostingDiffCatalog()
	if err != nil {
		return nil, err
	}

	opts := options(timeout)
	opts.Provider = provider
	opts.SemanticCommute = true
	opts.Parallelism = HostingDiffWorkers
	opts.PerQueryLatency = latency

	fullOpts := opts
	fullOpts.SharedQueryCache = qcache.New()
	core.ResetSolverPools()
	full, fullTime, fullTO, err := check(head, fullOpts)
	if err != nil {
		return nil, fmt.Errorf("hosting diff full: %w", err)
	}
	if fullTO {
		return nil, fmt.Errorf("hosting diff: full check timed out")
	}
	if !full.Deterministic {
		return nil, fmt.Errorf("hosting diff: edited hosting.pp must stay deterministic")
	}
	if full.Stats.SemQueries < 3 {
		return nil, fmt.Errorf("hosting diff: full check ran %d semantic queries, want >=3 (the LAMP package pairs)", full.Stats.SemQueries)
	}

	warmOpts := opts
	warmOpts.SharedQueryCache = qcache.New()
	baseSys, err := core.Load(base, warmOpts)
	if err != nil {
		return nil, fmt.Errorf("hosting diff base: %w", err)
	}
	baseRes, err := baseSys.CheckDeterminism()
	if err != nil {
		return nil, fmt.Errorf("hosting diff base: %w", err)
	}
	if !baseRes.Deterministic {
		return nil, fmt.Errorf("hosting diff: hosting.pp must be deterministic")
	}
	core.ResetSolverPools()
	res, diffTime, diffTO, err := checkDiff(baseSys, head, warmOpts)
	if err != nil {
		return nil, fmt.Errorf("hosting diff: %w", err)
	}
	if diffTO {
		return nil, fmt.Errorf("hosting diff: diff check timed out")
	}
	if res.Deterministic != full.Deterministic {
		return nil, fmt.Errorf("hosting diff: diff verdict %v != full %v", res.Deterministic, full.Deterministic)
	}
	if res.Stats.DiffChanged != 1 {
		return nil, fmt.Errorf("hosting diff: delta classified %d resources changed, want 1", res.Stats.DiffChanged)
	}
	if res.Stats.InheritMisses != 0 {
		return nil, fmt.Errorf("hosting diff: %d inherit misses, want 0", res.Stats.InheritMisses)
	}
	if res.Stats.SemQueries != 0 {
		return nil, fmt.Errorf("hosting diff: diff run issued %d solver queries, want 0 (every package pair is unchanged)", res.Stats.SemQueries)
	}
	out := &HostingDiffResult{
		Manifest:         bench.Name,
		Workers:          HostingDiffWorkers,
		ModeledLatencyMS: latency.Milliseconds(),
		FullSeconds:      fullTime.Seconds(),
		DiffSeconds:      diffTime.Seconds(),
		FullQueries:      full.Stats.SemQueries,
		DiffQueries:      res.Stats.SemQueries,
		DiffChanged:      res.Stats.DiffChanged,
		DiffUnchanged:    res.Stats.DiffUnchanged,
		PairsReused:      res.Stats.PairsReused,
		PairsReverified:  res.Stats.PairsReverified,
		InheritMisses:    res.Stats.InheritMisses,
	}
	if out.DiffSeconds > 0 {
		out.Speedup = out.FullSeconds / out.DiffSeconds
	}
	return out, nil
}

// DiffReport is the BENCH_diff.json trajectory point: the synthetic
// edit-fraction x worker matrix plus the hosting headline, with enough
// host context to interpret the wall clocks.
type DiffReport struct {
	Benchmark             string             `json:"benchmark"`
	Workload              string             `json:"workload"`
	HostCPUs              int                `json:"host_cpus"`
	ModeledQueryLatencyMS int64              `json:"modeled_query_latency_ms"`
	Synthetic             []DiffRow          `json:"synthetic"`
	Hosting               *HostingDiffResult `json:"hosting"`
	OneEditSpeedup        float64            `json:"one_edit_speedup"` // smallest edit, most workers
	HostingSpeedup        float64            `json:"hosting_speedup"`
}

// MinHostingDiffSpeedup is the acceptance floor for the headline: a
// one-resource edit of the largest seed manifest must re-verify at
// least this much faster than a full modeled check.
const MinHostingDiffSpeedup = 5.0

// BuildDiffReport runs both series of the differential-verification
// experiment and enforces the headline threshold.
func BuildDiffReport(timeout time.Duration) (*DiffReport, error) {
	synthetic, err := DiffSpeedup(timeout, DiffWorkloadSize, DiffEditPercents, DiffWorkers, ModeledDiffQueryLatency)
	if err != nil {
		return nil, err
	}
	hosting, err := HostingDiffSpeedup(timeout, ModeledZ3Latency)
	if err != nil {
		return nil, err
	}
	if hosting.Speedup < MinHostingDiffSpeedup {
		return nil, fmt.Errorf("hosting diff: modeled speedup %.2fx below the %.0fx floor for a one-resource edit",
			hosting.Speedup, MinHostingDiffSpeedup)
	}
	rep := &DiffReport{
		Benchmark: "BenchmarkDiffSpeedup",
		Workload: fmt.Sprintf("%d packages with overlapping dependency closures (%d pairwise semantic queries), edited at %v%%, plus a one-resource edit of hosting.pp",
			DiffWorkloadSize, DiffWorkloadSize*(DiffWorkloadSize-1)/2, DiffEditPercents),
		HostCPUs:              runtime.NumCPU(),
		ModeledQueryLatencyMS: ModeledDiffQueryLatency.Milliseconds(),
		Synthetic:             synthetic,
		Hosting:               hosting,
		OneEditSpeedup:        diffSpeedupAt(synthetic, DiffEditPercents[0], DiffWorkers[len(DiffWorkers)-1]),
		HostingSpeedup:        hosting.Speedup,
	}
	return rep, nil
}

// Write writes the report as indented JSON to path.
func (r *DiffReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func diffSpeedupAt(rows []DiffRow, pct, workers int) float64 {
	for _, r := range rows {
		if r.EditPercent == pct && r.Workers == workers {
			return r.Speedup
		}
	}
	return 0
}
