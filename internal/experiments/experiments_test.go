package experiments

import (
	"testing"
	"time"
)

const timeout = 2 * time.Minute

func TestFig11aShape(t *testing.T) {
	rows, err := Fig11a(timeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.TimedOut {
			t.Errorf("%s timed out", r.Name)
			continue
		}
		// The paper's claim: pruning never increases the modeled paths,
		// and on the deterministic benchmarks the reduction is drastic.
		if r.Pruned > r.Unpruned {
			t.Errorf("%s: pruned %d > unpruned %d", r.Name, r.Pruned, r.Unpruned)
		}
		if r.Unpruned == 0 {
			t.Errorf("%s: no modeled paths", r.Name)
		}
	}
	// At least half the suite should shrink to nothing (fully eliminated).
	empty := 0
	for _, r := range rows {
		if r.Pruned == 0 {
			empty++
		}
	}
	if empty < 6 {
		t.Errorf("only %d benchmarks fully eliminated", empty)
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(timeout, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	factorial := []int{2, 6, 24}
	for i, r := range rows {
		if r.TimedOut {
			t.Fatalf("n=%d timed out", r.N)
		}
		if !r.Deterministic {
			t.Errorf("n=%d: not deterministic", r.N)
		}
		if r.Sequences != factorial[i] {
			t.Errorf("n=%d: %d sequences, want %d", r.N, r.Sequences, factorial[i])
		}
	}
	// Super-linear growth.
	if rows[2].Time < rows[0].Time {
		t.Errorf("no growth: n=2 %v vs n=4 %v", rows[0].Time, rows[2].Time)
	}
}

func TestBugsShape(t *testing.T) {
	rows, err := Bugs(timeout)
	if err != nil {
		t.Fatal(err)
	}
	buggy := 0
	for _, r := range rows {
		if r.TimedOut {
			t.Fatalf("%s timed out", r.Name)
		}
		if !r.Deterministic {
			buggy++
			if !r.FixVerifies {
				t.Errorf("%s: fix does not verify", r.Name)
			}
		}
	}
	if buggy != 6 {
		t.Errorf("found %d bugs, want 6 (paper section 6)", buggy)
	}
}

func TestDiffSpeedupShape(t *testing.T) {
	// Small native-latency instance of the synthetic matrix; the
	// soundness self-checks (matching verdicts, exact inheritance, zero
	// solver work for inherited pairs) run inside DiffSpeedup.
	const n = 6
	rows, err := DiffSpeedup(timeout, n, []int{25}, []int{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	r := rows[0]
	if r.TimedOut {
		t.Fatal("diff row timed out")
	}
	if r.EditedResources != 1 {
		t.Errorf("edited resources = %d, want 1", r.EditedResources)
	}
	if r.FullQueries != n*(n-1)/2 {
		t.Errorf("full queries = %d, want %d", r.FullQueries, n*(n-1)/2)
	}
	// One swapped package: the other n-1 pairs among unchanged resources
	// are inherited, and only pairs touching the swap are re-solved.
	if r.PairsReused != (n-1)*(n-2)/2 {
		t.Errorf("pairs reused = %d, want %d", r.PairsReused, (n-1)*(n-2)/2)
	}
	if r.DiffQueries >= r.FullQueries {
		t.Errorf("diff run solved %d queries, full %d — nothing was inherited", r.DiffQueries, r.FullQueries)
	}
	if r.InheritMisses != 0 {
		t.Errorf("inherit misses = %d", r.InheritMisses)
	}
}

func TestHostingDiffShape(t *testing.T) {
	// Native latency keeps the test fast; HostingDiffSpeedup enforces
	// the soundness invariants (one-resource delta, zero diff-run solver
	// queries, matching verdicts) internally.
	res, err := HostingDiffSpeedup(timeout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffQueries != 0 {
		t.Errorf("diff queries = %d, want 0", res.DiffQueries)
	}
	if res.PairsReused < 3 {
		t.Errorf("pairs reused = %d, want >=3 (the LAMP package pairs)", res.PairsReused)
	}
	if res.DiffChanged != 1 {
		t.Errorf("diff changed = %d, want 1", res.DiffChanged)
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(timeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.TimedOut {
			t.Errorf("%s timed out", r.Name)
			continue
		}
		if !r.Idempotent {
			t.Errorf("%s: not idempotent", r.Name)
		}
	}
}
