package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/qcache"
)

// IncrementalRow is one configuration of the incremental-backend
// experiment: the semantic-commute-heavy workload checked with a given
// solver strategy.
type IncrementalRow struct {
	Mode              string        `json:"mode"` // fresh | pooled-cold | pooled-warm
	Time              time.Duration `json:"-"`
	Seconds           float64       `json:"seconds"`
	Queries           int           `json:"queries"`            // solver queries run
	SolverReuses      int           `json:"solver_reuses"`      // queries answered by a pooled solver
	LearntRetained    int           `json:"learnt_retained"`    // learnt clauses alive in the pool afterwards
	PreprocessRemoved int64         `json:"preprocess_removed"` // clauses removed by root-level preprocessing
	TimedOut          bool          `json:"timed_out"`
}

// IncrementalWorkers is the worker count every incremental-experiment row
// runs at; the experiment varies solver strategy, not parallelism.
const IncrementalWorkers = 4

// Modeled latencies for the incremental experiment. With an external
// solver (the paper's Z3 behind IPC), a fresh-solver query pays process
// construction — spawn, theory setup and full problem transmission — on
// top of the check round trip; an incremental query against a pooled
// solver pays only the round trip, because the problem clauses, learnt
// clauses and compiled terms are already resident. ModeledSolverStartup
// reuses the ModeledZ3Latency sizing (construction is dominated by the
// same IPC and problem-loading costs the fresh round trip pays);
// ModeledIncrementalLatency is the far smaller assumption-scoped
// check-sat round trip.
const (
	ModeledSolverStartup      = ModeledZ3Latency
	ModeledIncrementalLatency = 50 * time.Millisecond
)

// IncrementalSpeedup measures the determinacy check on the parallel
// workload under three solver strategies: fresh (an isolated solver per
// query — the pre-incremental baseline), pooled-cold (incremental solver
// pool, starting empty) and pooled-warm (the pool already primed by a
// previous check of the same vocabulary). Every run uses a private, cold
// query cache so no row reads verdicts another row computed; verdicts are
// identical across strategies (the differential tests in internal/core
// enforce it), so the rows measure pure solver-reuse speedup.
//
// queryLatency and solverLatency model the external-solver costs
// described above; both 0 measures native in-process behavior, where the
// saving is the (much smaller) encoder/solver construction and
// re-compilation time.
func IncrementalSpeedup(timeout time.Duration, queryLatency, solverLatency time.Duration) ([]IncrementalRow, error) {
	manifest, provider := ParallelWorkload(ParallelWorkloadSize)
	base := options(timeout)
	base.Provider = provider
	base.SemanticCommute = true
	base.Parallelism = IncrementalWorkers
	base.PerQueryLatency = queryLatency
	base.PerSolverLatency = solverLatency

	modes := []struct {
		name  string
		fresh bool
		reset bool
	}{
		{"fresh", true, true},
		{"pooled-cold", false, true},
		{"pooled-warm", false, false}, // pool primed by the pooled-cold run
	}
	rows := make([]IncrementalRow, 0, len(modes))
	for _, m := range modes {
		if m.reset {
			core.ResetSolverPools()
		}
		opts := base
		opts.FreshSolvers = m.fresh
		opts.SharedQueryCache = qcache.New()
		res, elapsed, timedOut, err := check(manifest, opts)
		if err != nil {
			return nil, fmt.Errorf("incremental workload (%s): %w", m.name, err)
		}
		row := IncrementalRow{Mode: m.name, Time: elapsed, Seconds: elapsed.Seconds(), TimedOut: timedOut}
		if res != nil {
			if !res.Deterministic {
				return nil, fmt.Errorf("incremental workload must be deterministic")
			}
			row.Queries = res.Stats.SemQueries
			row.SolverReuses = res.Stats.SolverReuses
			row.LearntRetained = res.Stats.LearntRetained
			row.PreprocessRemoved = res.Stats.PreprocessRemoved
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// IncrementalReport is the BENCH_incremental.json trajectory point: both
// series of the incremental-backend experiment plus host context. The
// Native series measures real in-process solving, where pooling trades
// per-query vocabulary size (the shared vocabulary spans every resource in
// the check, not just the pair's) for amortized compilation — on in-process
// solvers that trade can come out at or below break-even. The ModeledZ3
// series adds the modeled external-solver costs the backend is built for:
// there the fresh path pays solver construction on every query and the
// pooled path only on pool misses, so warm pools win decisively.
type IncrementalReport struct {
	Benchmark              string           `json:"benchmark"`
	Workload               string           `json:"workload"`
	HostCPUs               int              `json:"host_cpus"`
	Workers                int              `json:"workers"`
	ModeledQueryLatencyMS  int64            `json:"modeled_query_latency_ms"`
	ModeledSolverStartupMS int64            `json:"modeled_solver_startup_ms"`
	Native                 []IncrementalRow `json:"native"`
	ModeledZ3              []IncrementalRow `json:"modeled_z3"`
	NativeWarmSpeedup      float64          `json:"native_warm_speedup"`  // fresh / pooled-warm, native
	ModeledWarmSpeedup     float64          `json:"modeled_warm_speedup"` // fresh / pooled-warm, modeled
	ModeledColdSpeedup     float64          `json:"modeled_cold_speedup"` // fresh / pooled-cold, modeled
}

// BuildIncrementalReport runs both series of the incremental experiment.
func BuildIncrementalReport(timeout time.Duration) (*IncrementalReport, error) {
	native, err := IncrementalSpeedup(timeout, 0, 0)
	if err != nil {
		return nil, err
	}
	modeled, err := IncrementalSpeedup(timeout, ModeledIncrementalLatency, ModeledSolverStartup)
	if err != nil {
		return nil, err
	}
	return &IncrementalReport{
		Benchmark: "BenchmarkIncrementalSpeedup",
		Workload: fmt.Sprintf("%d packages with overlapping dependency closures: %d pairwise semantic-commutativity queries at %d workers",
			ParallelWorkloadSize, ParallelWorkloadSize*(ParallelWorkloadSize-1)/2, IncrementalWorkers),
		HostCPUs:               runtime.NumCPU(),
		Workers:                IncrementalWorkers,
		ModeledQueryLatencyMS:  ModeledIncrementalLatency.Milliseconds(),
		ModeledSolverStartupMS: ModeledSolverStartup.Milliseconds(),
		Native:                 native,
		ModeledZ3:              modeled,
		NativeWarmSpeedup:      speedupOver(native, "fresh", "pooled-warm"),
		ModeledWarmSpeedup:     speedupOver(modeled, "fresh", "pooled-warm"),
		ModeledColdSpeedup:     speedupOver(modeled, "fresh", "pooled-cold"),
	}, nil
}

// Write writes the report as indented JSON to path.
func (r *IncrementalReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func speedupOver(rows []IncrementalRow, baseMode, mode string) float64 {
	var base, at float64
	for _, r := range rows {
		if r.Mode == baseMode {
			base = r.Seconds
		}
		if r.Mode == mode {
			at = r.Seconds
		}
	}
	if base == 0 || at == 0 {
		return 0
	}
	return base / at
}
