package sat

// Incremental solving support. Rehearsal's determinacy engine asks
// thousands of structurally related queries, so one Solver may outlive
// many Solve calls:
//
//   - Solve(assumptions...) decides satisfiability under per-call
//     assumption literals without touching the clause database. Callers
//     retire per-query clauses by guarding each batch with an activation
//     literal a (adding ¬a ∨ C), passing a as an assumption while the
//     batch is live, and calling ReleaseVar(¬a) when done.
//   - Learnt clauses survive across Solve calls. Assumptions are enqueued
//     as decisions, so conflict analysis folds their negations into the
//     learnt clauses it records — every learnt clause is implied by the
//     problem clauses alone and stays sound for later queries.
//   - Simplify is the root-level preprocessing pass: level-0 unit
//     propagation, satisfied-clause removal, false-literal strengthening
//     and (self-)subsumption. Solve runs it automatically whenever
//     clauses were added since the last pass.
//   - ClearLearnts drops the learnt-clause database without disturbing
//     the problem clauses, for callers that want a clean slate.

// SimplifyStats counts the work done by the preprocessing passes over the
// solver's lifetime.
type SimplifyStats struct {
	Removed      int64 // clauses deleted because satisfied at the root level
	Strengthened int64 // literals dropped from surviving clauses
	Subsumed     int64 // clauses deleted by (self-)subsumption
	VarsRecycled int64 // released variables scrubbed and handed back to NewVar
}

// SimplifyCounters returns the cumulative preprocessing counters.
func (s *Solver) SimplifyCounters() SimplifyStats { return s.simp }

// LearntClauses returns the number of live learnt clauses.
func (s *Solver) LearntClauses() int { return s.nLearnt }

// ReleaseVar permanently asserts l — typically the negation of an
// activation literal, retiring every clause guarded by it — and marks the
// variable for recycling. Once the next Simplify has scrubbed every
// remaining occurrence, NewVar hands the variable out again.
func (s *Solver) ReleaseVar(l Lit) {
	s.released = append(s.released, l.Var())
	s.AddClause(l)
}

// ClearLearnts removes every learnt clause. The problem clauses, the root
// trail and the variable activities are untouched.
func (s *Solver) ClearLearnts() {
	s.cancelUntil(0)
	// Root assignments stand on their own; drop references to learnt
	// reason clauses before freeing them.
	for _, l := range s.trail {
		s.reason[l.Var()] = nilClause
	}
	for i := range s.clauses {
		if c := &s.clauses[i]; c.learnt && c.lits != nil {
			s.removeClause(clauseRef(i))
		}
	}
	s.nLearnt = 0
}

// Simplify runs the root-level preprocessing pass: unit propagation at
// decision level 0, removal of satisfied clauses, strengthening of clauses
// by dropping root-false literals, a bounded (self-)subsumption pass over
// the problem clauses, and recycling of released variables. Every
// transformation preserves the set of models over the live variables, so
// Solve verdicts are unchanged. Returns false if the formula is
// unsatisfiable.
func (s *Solver) Simplify() bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Root assignments never need their reasons again (conflict analysis
	// skips level-0 literals); clear them so clause removal below cannot
	// leave dangling references.
	for _, l := range s.trail {
		s.reason[l.Var()] = nilClause
	}
	if s.propagate() != nilClause {
		s.unsat = true
		return false
	}
	if !s.removeSatisfiedLoop() {
		s.unsat = true
		return false
	}
	units, ok := s.subsumptionPass()
	if !ok {
		s.unsat = true
		return false
	}
	if units && !s.removeSatisfiedLoop() {
		s.unsat = true
		return false
	}
	s.recycleReleased()
	s.dirty = false
	s.subsumeHead = len(s.clauses)
	return true
}

// removeSatisfiedLoop sweeps the clause database until a fixpoint:
// satisfied clauses are removed, root-false literals are dropped, and
// clauses that become unit are propagated. Returns false on conflict.
func (s *Solver) removeSatisfiedLoop() bool {
	for {
		again, ok := s.removeSatisfiedSweep()
		if !ok {
			return false
		}
		if !again {
			return true
		}
	}
}

func (s *Solver) removeSatisfiedSweep() (again, ok bool) {
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.lits == nil {
			continue
		}
		cref := clauseRef(i)
		satisfied := false
		nFalse := 0
		for _, l := range c.lits {
			switch s.litValue(l) {
			case vTrue:
				satisfied = true
			case vFalse:
				nFalse++
			}
		}
		if satisfied {
			s.removeClause(cref)
			s.simp.Removed++
			continue
		}
		if nFalse == 0 {
			continue
		}
		// Strengthen: drop the root-false literals. Detach first — the
		// watched pair sits at positions 0 and 1 and is about to move.
		s.detach(cref)
		out := c.lits[:0]
		for _, l := range c.lits {
			if s.litValue(l) != vFalse {
				out = append(out, l)
			}
		}
		c.lits = out
		s.simp.Strengthened += int64(nFalse)
		if len(out) == 1 {
			// After a propagation fixpoint a non-satisfied clause keeps at
			// least one non-false literal, so the survivor is unassigned.
			s.enqueue(out[0], nilClause)
			s.freeClause(cref)
			if s.propagate() != nilClause {
				return false, false
			}
			again = true
			continue
		}
		s.attach(cref)
	}
	return again, true
}

// Bounds keeping the subsumption pass near-linear: clauses longer than
// subsumeMaxLen are never used as subsuming candidates, and occurrence
// lists longer than subsumeMaxOcc are not scanned.
const (
	subsumeMaxLen = 30
	subsumeMaxOcc = 500
)

// subsumptionPass runs bounded forward subsumption and self-subsumption
// over the problem clauses, using the clauses added since the last pass as
// candidates. For candidate C and literal l ∈ C: any clause D ⊇ C is
// removed (subsumption), and any clause D ∋ ¬l with C∖{l} ⊆ D is
// strengthened by dropping ¬l (the resolvent of C and D on l subsumes D).
// Returns whether any strengthening produced new unit clauses, and false
// in ok on conflict.
func (s *Solver) subsumptionPass() (units, ok bool) {
	// Occurrence lists and variable signatures over the problem clauses.
	sigs := make([]uint64, len(s.clauses))
	occ := make(map[Lit][]clauseRef)
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.lits == nil || c.learnt {
			continue
		}
		var sg uint64
		for _, l := range c.lits {
			sg |= 1 << (uint(l.Var()) % 64)
		}
		sigs[i] = sg
		for _, l := range c.lits {
			occ[l] = append(occ[l], clauseRef(i))
		}
	}
	inC := make(map[Lit]bool)
	for i := s.subsumeHead; i < len(s.clauses); i++ {
		c := &s.clauses[i]
		if c.lits == nil || c.learnt || len(c.lits) > subsumeMaxLen {
			continue
		}
		cref := clauseRef(i)
		for k := range inC {
			delete(inC, k)
		}
		for _, l := range c.lits {
			inC[l] = true
		}
		for _, l := range c.lits {
			if len(c.lits) == 0 { // c was strengthened away meanwhile
				break
			}
			// Subsumption: remove any D ⊇ C among the clauses containing l.
			if cands := occ[l]; len(cands) <= subsumeMaxOcc {
				for _, d := range cands {
					dc := &s.clauses[d]
					if d == cref || dc.lits == nil || dc.learnt ||
						len(dc.lits) < len(c.lits) || sigs[cref]&^sigs[d] != 0 {
						continue
					}
					hits := 0
					for _, dl := range dc.lits {
						if inC[dl] {
							hits++
						}
					}
					if hits == len(c.lits) {
						s.removeClause(d)
						s.simp.Subsumed++
					}
				}
			}
			// Self-subsumption: strengthen any D ∋ ¬l with C∖{l} ⊆ D.
			if cands := occ[l.Neg()]; len(cands) <= subsumeMaxOcc {
				for _, d := range cands {
					dc := &s.clauses[d]
					if d == cref || dc.lits == nil || dc.learnt ||
						len(dc.lits) < len(c.lits) {
						continue
					}
					hasNeg := false
					hits := 0
					for _, dl := range dc.lits {
						if dl == l.Neg() {
							hasNeg = true
						} else if inC[dl] {
							hits++
						}
					}
					if !hasNeg || hits < len(c.lits)-1 {
						continue
					}
					u, o := s.strengthenClause(d, l.Neg())
					if !o {
						return units, false
					}
					units = units || u
				}
			}
		}
	}
	return units, true
}

// strengthenClause removes drop from the clause, re-propagating if it
// becomes unit and discarding it if it becomes satisfied along the way.
// Returns whether a unit was enqueued, and false in ok on conflict.
func (s *Solver) strengthenClause(cref clauseRef, drop Lit) (unit, ok bool) {
	c := &s.clauses[cref]
	s.detach(cref)
	out := c.lits[:0]
	satisfied := false
	for _, l := range c.lits {
		if l == drop {
			continue
		}
		switch s.litValue(l) {
		case vTrue:
			satisfied = true
		case vFalse:
			// drop root-false literals too
		default:
			out = append(out, l)
		}
	}
	c.lits = out
	s.simp.Strengthened++
	if satisfied {
		s.freeClause(cref)
		s.simp.Removed++
		return false, true
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false, false
	case 1:
		s.enqueue(out[0], nilClause)
		s.freeClause(cref)
		if s.propagate() != nilClause {
			return true, false
		}
		return true, true
	}
	s.attach(cref)
	return false, true
}

// removeClause detaches and frees a clause.
func (s *Solver) removeClause(cref clauseRef) {
	s.detach(cref)
	s.freeClause(cref)
}

// freeClause clears the slot and recycles it for future learnt clauses.
// The caller must have detached the clause already.
func (s *Solver) freeClause(cref clauseRef) {
	if s.clauses[cref].learnt {
		s.nLearnt--
	}
	s.clauses[cref] = clause{}
	s.free = append(s.free, cref)
}

// recycleReleased scrubs released variables whose occurrences the
// preprocessing passes have eliminated: their root assignment is undone
// (it constrains nothing once no clause mentions the variable) and the
// variable becomes available to NewVar. Released variables still watched
// by some clause stay parked until a later pass. Processing follows the
// release order so variable reuse — and with it the search — stays
// deterministic.
func (s *Solver) recycleReleased() {
	if len(s.released) == 0 {
		return
	}
	keep := s.released[:0]
	var cleared []Var
	for _, v := range s.released {
		if len(s.watches[PosLit(v)]) != 0 || len(s.watches[NegLit(v)]) != 0 || s.assigns[v] == vUnknown {
			keep = append(keep, v)
			continue
		}
		cleared = append(cleared, v)
	}
	s.released = keep
	if len(cleared) == 0 {
		return
	}
	clearedSet := make(map[Var]bool, len(cleared))
	for _, v := range cleared {
		clearedSet[v] = true
	}
	out := s.trail[:0]
	for _, l := range s.trail {
		if !clearedSet[l.Var()] {
			out = append(out, l)
		}
	}
	s.trail = out
	s.qhead = len(s.trail)
	for _, v := range cleared {
		s.assigns[v] = vUnknown
		s.phase[v] = false
		s.level[v] = 0
		s.reason[v] = nilClause
		s.activity[v] = 0
		s.recycled = append(s.recycled, v)
		s.simp.VarsRecycled++
	}
}
