package sat

// Solver configuration and the portfolio config space.
//
// A Config captures every search-heuristic knob the CDCL core exposes:
// activity decay rates, phase-initialization policy, restart schedule,
// random-decision frequency, RNG seed and reduce-DB aggressiveness. None
// of these affect the SAT/UNSAT verdict — they only steer which proof or
// model the search finds first — which is exactly what makes racing
// diverse configs per query sound: the first verdict is the verdict.
//
// The zero Config reproduces the solver's historical behavior bit for
// bit, so New() remains NewWithConfig(Config{}) and every existing test
// and cached fingerprint is unaffected.

// PhasePolicy selects how a fresh variable's branching phase is
// initialized. Phase saving (updating the phase on every assignment)
// applies under all policies; the policy only sets the starting polarity.
type PhasePolicy int

// Phase-initialization policies.
const (
	PhaseSaved  PhasePolicy = iota // historical default: start false, then save
	PhaseTrue                      // start true
	PhaseRandom                    // start from the config's seeded RNG
)

func (p PhasePolicy) String() string {
	switch p {
	case PhaseTrue:
		return "true"
	case PhaseRandom:
		return "random"
	default:
		return "saved"
	}
}

// RestartPolicy selects the restart schedule.
type RestartPolicy int

// Restart schedules.
const (
	RestartLuby      RestartPolicy = iota // Luby sequence × RestartBase
	RestartGeometric                      // RestartBase × RestartGrowth^i
)

func (p RestartPolicy) String() string {
	if p == RestartGeometric {
		return "geometric"
	}
	return "luby"
}

// Config is a bundle of search-heuristic knobs. The zero value means
// "historical defaults" for every field; NewWithConfig normalizes it.
type Config struct {
	// Name identifies the config in stats, metrics and benchmark output.
	// Empty normalizes to "default".
	Name string

	// VarDecay is the VSIDS variable-activity decay factor (0 → 0.95).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay factor (0 → 0.999).
	ClauseDecay float64

	// Phase is the phase-initialization policy for fresh variables.
	Phase PhasePolicy

	// Restart selects the restart schedule; RestartBase is the first
	// interval in conflicts (0 → 64) and RestartGrowth the geometric
	// multiplier (0 → 1.5, geometric schedule only).
	Restart       RestartPolicy
	RestartBase   int64
	RestartGrowth float64

	// RandomFreq is the probability that a decision picks a uniformly
	// random heap variable instead of the VSIDS maximum (0 disables).
	RandomFreq float64

	// Seed seeds the config's deterministic xorshift64 RNG (random
	// decisions and PhaseRandom). 0 normalizes to a fixed nonzero
	// constant, so the zero Config is still fully deterministic.
	Seed uint64

	// MaxLearntBase is the initial learnt-clause budget before reduceDB
	// triggers (0 → 4000, plus twice the problem-clause count);
	// MaxLearntGrowthPct is its geometric growth per reduction (0 → 10).
	MaxLearntBase      int
	MaxLearntGrowthPct int
}

// withDefaults returns the config with every zero field replaced by the
// historical default.
func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "default"
	}
	if c.VarDecay == 0 {
		c.VarDecay = 0.95
	}
	if c.ClauseDecay == 0 {
		c.ClauseDecay = 0.999
	}
	if c.RestartBase == 0 {
		c.RestartBase = 64
	}
	if c.RestartGrowth == 0 {
		c.RestartGrowth = 1.5
	}
	if c.MaxLearntBase == 0 {
		c.MaxLearntBase = 4000
	}
	if c.MaxLearntGrowthPct == 0 {
		c.MaxLearntGrowthPct = 10
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15 // golden-ratio constant; xorshift needs nonzero
	}
	return c
}

// DefaultConfig returns the historical single-solver configuration.
func DefaultConfig() Config { return Config{}.withDefaults() }

// PortfolioConfigs returns k deterministic, intentionally diverse solver
// configurations for portfolio racing. Index 0 is always the default
// config. The configs differ along the axes that most change search
// trajectories — restart schedule, phase initialization, decay rates and
// randomization — because on heavy-tailed SAT instances the minimum over
// diverse runs beats any single run at the tail. Beyond the four named
// shapes, further entries recycle the shapes with distinct seeds.
func PortfolioConfigs(k int) []Config {
	shapes := []Config{
		{},
		{
			// Aggressive geometric restarts with optimistic phases: finds
			// shallow models fast on SAT-leaning instances.
			Name:          "geo-true",
			Restart:       RestartGeometric,
			RestartBase:   32,
			RestartGrowth: 1.3,
			Phase:         PhaseTrue,
			VarDecay:      0.92,
		},
		{
			// Randomized Luby with long base intervals and a slow clause
			// decay: escapes heavy-tailed stalls the default walks into.
			Name:        "rand-luby",
			RandomFreq:  0.02,
			RestartBase: 256,
			ClauseDecay: 0.995,
			Seed:        0xdecafbadc0ffee,
		},
		{
			// Agile: fast decay, random phases, tight clause database —
			// maximum trajectory divergence from the default.
			Name:               "agile",
			Phase:              PhaseRandom,
			VarDecay:           0.85,
			Restart:            RestartGeometric,
			RestartBase:        16,
			RestartGrowth:      1.2,
			MaxLearntBase:      1500,
			MaxLearntGrowthPct: 5,
			RandomFreq:         0.05,
			Seed:               0xa61e5eed,
		},
	}
	if k < 1 {
		k = 1
	}
	out := make([]Config, 0, k)
	for i := 0; i < k; i++ {
		c := shapes[i%len(shapes)]
		if i >= len(shapes) {
			// Same shape, different trajectory: reseed and rename.
			round := uint64(i / len(shapes))
			c.Seed = c.withDefaults().Seed*2862933555777941757 + round
			c.Name = c.withDefaults().Name + "#" + itoa(i)
		}
		out = append(out, c.withDefaults())
	}
	return out
}

// itoa is a minimal integer-to-string helper (avoids strconv in this file's
// hot import graph; configs are built once per checker).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Counters is a snapshot of the solver's cumulative search counters.
type Counters struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
}

// Sub returns c - o, for before/after deltas around a query.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Decisions:    c.Decisions - o.Decisions,
		Propagations: c.Propagations - o.Propagations,
		Conflicts:    c.Conflicts - o.Conflicts,
		Restarts:     c.Restarts - o.Restarts,
	}
}

// Add returns c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Decisions:    c.Decisions + o.Decisions,
		Propagations: c.Propagations + o.Propagations,
		Conflicts:    c.Conflicts + o.Conflicts,
		Restarts:     c.Restarts + o.Restarts,
	}
}

// Counters returns the solver's cumulative search counters.
func (s *Solver) Counters() Counters {
	return Counters{
		Decisions:    s.decisions,
		Propagations: s.props,
		Conflicts:    s.conflicts,
		Restarts:     s.restarts,
	}
}
