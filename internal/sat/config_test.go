package sat

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// loadPHP loads the pigeonhole principle PHP(holes+1, holes) into s.
func loadPHP(s *Solver, holes int) {
	pigeons := holes + 1
	at := make([][]Var, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]Var, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(at[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
}

// Configs steer search, never the verdict: every portfolio config must
// prove the same UNSAT instance and solve the same SAT instance (with a
// model that satisfies the clauses — models may differ, verdicts not).
func TestConfigVerdictIndependence(t *testing.T) {
	for _, cfg := range PortfolioConfigs(8) {
		s := NewWithConfig(cfg)
		loadPHP(s, 5)
		if got := s.Solve(); got != Unsat {
			t.Errorf("config %s: PHP(6,5) = %v, want unsat", cfg.Name, got)
		}

		s = NewWithConfig(cfg)
		a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
		clauses := [][]Lit{
			{PosLit(a), PosLit(b)},
			{NegLit(a), PosLit(c)},
			{NegLit(b), NegLit(c), PosLit(a)},
		}
		for _, cl := range clauses {
			s.AddClause(cl...)
		}
		if got := s.Solve(); got != Sat {
			t.Fatalf("config %s: satisfiable instance = %v, want sat", cfg.Name, got)
		}
		for i, cl := range clauses {
			ok := false
			for _, l := range cl {
				if s.Value(l.Var()) == l.IsPos() {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("config %s: model violates clause %d", cfg.Name, i)
			}
		}
	}
}

// The portfolio config space is deterministic and well-formed: stable
// across calls, default-first, unique names, and every knob normalized.
func TestPortfolioConfigsShape(t *testing.T) {
	a, b := PortfolioConfigs(8), PortfolioConfigs(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PortfolioConfigs is not deterministic")
	}
	if a[0].Name != "default" || !reflect.DeepEqual(a[0], DefaultConfig()) {
		t.Errorf("index 0 must be the default config, got %+v", a[0])
	}
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.Name] {
			t.Errorf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
		if c.VarDecay == 0 || c.ClauseDecay == 0 || c.RestartBase == 0 ||
			c.RestartGrowth == 0 || c.Seed == 0 || c.MaxLearntBase == 0 || c.MaxLearntGrowthPct == 0 {
			t.Errorf("config %q not fully normalized: %+v", c.Name, c)
		}
	}
	if got := len(PortfolioConfigs(0)); got != 1 {
		t.Errorf("PortfolioConfigs(0) = %d configs, want 1", got)
	}
}

// The zero Config must reproduce the historical defaults bit for bit.
func TestZeroConfigIsDefault(t *testing.T) {
	d := DefaultConfig()
	if d.VarDecay != 0.95 || d.ClauseDecay != 0.999 || d.RestartBase != 64 ||
		d.Restart != RestartLuby || d.Phase != PhaseSaved || d.RandomFreq != 0 ||
		d.MaxLearntBase != 4000 || d.MaxLearntGrowthPct != 10 {
		t.Errorf("default config drifted: %+v", d)
	}
}

// A pre-set stop flag must abort the search as Unknown without consuming
// the instance; clearing it must let the same solver finish.
func TestStopFlag(t *testing.T) {
	s := New()
	loadPHP(s, 7)
	var stop atomic.Bool
	stop.Store(true)
	s.SetStop(&stop)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with stop set = %v, want unknown", got)
	}
	stop.Store(false)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve after clearing stop = %v, want unsat", got)
	}
	s.SetStop(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve with stop detached = %v, want unsat", got)
	}
}
