package sat

import (
	"math/rand"
	"testing"
)

// TestSimplifyRemovesSatisfied: a clause satisfied at the root level after
// later unit propagation is deleted by the preprocessing pass.
func TestSimplifyRemovesSatisfied(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(PosLit(a)) // propagates a=true, satisfying the clause above
	if !s.Simplify() {
		t.Fatal("Simplify reported unsat")
	}
	if got := s.NumClauses(); got != 0 {
		t.Errorf("NumClauses after Simplify = %d, want 0", got)
	}
	if s.SimplifyCounters().Removed == 0 {
		t.Error("Removed counter not incremented")
	}
	if s.Solve() != Sat {
		t.Error("formula should stay sat")
	}
}

// TestSimplifyStrengthens: root-false literals are dropped from surviving
// clauses.
func TestSimplifyStrengthens(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	s.AddClause(NegLit(a)) // a=false: the ternary clause should shrink to (b ∨ c)
	if !s.Simplify() {
		t.Fatal("Simplify reported unsat")
	}
	if got := s.NumClauses(); got != 1 {
		t.Errorf("NumClauses after Simplify = %d, want 1", got)
	}
	if s.SimplifyCounters().Strengthened == 0 {
		t.Error("Strengthened counter not incremented")
	}
	if s.Solve() != Sat {
		t.Error("formula should stay sat")
	}
	if !s.Value(b) && !s.Value(c) {
		t.Error("model violates strengthened clause")
	}
}

// TestSimplifySubsumption: (a ∨ b) subsumes (a ∨ b ∨ c).
func TestSimplifySubsumption(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	if !s.Simplify() {
		t.Fatal("Simplify reported unsat")
	}
	if got := s.NumClauses(); got != 1 {
		t.Errorf("NumClauses after Simplify = %d, want 1", got)
	}
	if s.SimplifyCounters().Subsumed != 1 {
		t.Errorf("Subsumed = %d, want 1", s.SimplifyCounters().Subsumed)
	}
}

// TestSimplifySelfSubsumption: resolving (a ∨ b) against (¬a ∨ b ∨ c) on a
// yields (b ∨ c), which replaces the longer clause.
func TestSimplifySelfSubsumption(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b), PosLit(c))
	if !s.Simplify() {
		t.Fatal("Simplify reported unsat")
	}
	if got := s.NumClauses(); got != 2 {
		t.Errorf("NumClauses after Simplify = %d, want 2", got)
	}
	if s.SimplifyCounters().Strengthened == 0 {
		t.Error("Strengthened counter not incremented by self-subsumption")
	}
	// ¬b must now force both a (first clause) and c (strengthened clause).
	if s.Solve(NegLit(b)) != Sat {
		t.Fatal("should be sat under ¬b")
	}
	if !s.Value(a) || !s.Value(c) {
		t.Error("self-subsumed clause not strengthened: ¬b should force a and c")
	}
}

// TestReleaseVarRecycling exercises the full activation-literal lifecycle:
// guard clauses behind act, query under the assumption, retire the scope
// with ReleaseVar, and observe the variable being handed out again.
func TestReleaseVarRecycling(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	act := s.NewVar()
	s.AddClause(NegLit(act), NegLit(a)) // under act: ¬a, contradicting the base
	if s.Solve(PosLit(act)) != Unsat {
		t.Fatal("query under activation literal should be unsat")
	}
	if s.Solve() != Sat {
		t.Fatal("base formula should stay sat")
	}
	nv := s.NumVars()
	s.ReleaseVar(NegLit(act))
	if !s.Simplify() {
		t.Fatal("Simplify reported unsat")
	}
	if s.SimplifyCounters().VarsRecycled == 0 {
		t.Fatal("released var not recycled")
	}
	if got := s.NewVar(); got != act {
		t.Errorf("NewVar = %v, want recycled %v", got, act)
	}
	if s.NumVars() != nv {
		t.Errorf("NumVars grew from %d to %d despite recycling", nv, s.NumVars())
	}
	if s.Solve() != Sat || !s.Value(a) {
		t.Error("solver unusable after recycling")
	}
}

// TestClearLearnts drops the learnt database and leaves the problem intact.
func TestClearLearnts(t *testing.T) {
	s := New()
	// PHP(6,6) is satisfiable but needs search, producing learnt clauses.
	n := 6
	at := make([][]Var, n)
	for p := 0; p < n; p++ {
		at[p] = make([]Var, n)
		for h := 0; h < n; h++ {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = PosLit(at[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
	nc := s.NumClauses()
	if s.Solve() != Sat {
		t.Fatal("PHP(6,6) should be sat")
	}
	s.ClearLearnts()
	if got := s.LearntClauses(); got != 0 {
		t.Errorf("LearntClauses after ClearLearnts = %d, want 0", got)
	}
	if got := s.NumClauses(); got != nc {
		t.Errorf("problem clauses changed: %d, want %d", got, nc)
	}
	if s.Solve() != Sat {
		t.Error("formula should stay sat after ClearLearnts")
	}
}

// TestIncrementalActivationDifferential is the verdict-equivalence gate for
// the incremental backend: one long-lived solver answers a stream of
// assumption-scoped queries (each batch of extra clauses guarded by a fresh
// activation literal, retired with ReleaseVar afterwards), and every verdict
// must match a fresh solver built from scratch for that query. Periodic
// explicit Simplify calls exercise preprocessing and variable recycling
// mid-stream.
func TestIncrementalActivationDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		nvars := 5 + r.Intn(6)
		inc := New()
		vars := make([]Var, nvars)
		for i := range vars {
			vars[i] = inc.NewVar()
		}
		randClause := func() []Lit {
			width := 1 + r.Intn(3)
			c := make([]Lit, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, MkLit(vars[r.Intn(nvars)], r.Intn(2) == 0))
			}
			return c
		}
		var base [][]Lit
		baseOK := true
		for i := 0; i < nvars*2; i++ {
			c := randClause()
			base = append(base, c)
			if !inc.AddClause(c...) {
				baseOK = false
			}
		}
		for q := 0; q < 12; q++ {
			var extra [][]Lit
			for i := 0; i < 1+r.Intn(3); i++ {
				extra = append(extra, randClause())
			}
			// Fresh-solver reference verdict.
			fresh := New()
			for i := 0; i < nvars; i++ {
				fresh.NewVar()
			}
			freshOK := true
			for _, c := range append(append([][]Lit{}, base...), extra...) {
				if !fresh.AddClause(c...) {
					freshOK = false
				}
			}
			want := Unsat
			if freshOK {
				want = fresh.Solve()
			}
			// Incremental verdict under an activation literal.
			var got Status
			if !baseOK {
				got = Unsat
			} else {
				act := inc.NewVar()
				for _, c := range extra {
					inc.AddClause(append([]Lit{NegLit(act)}, c...)...)
				}
				got = inc.Solve(PosLit(act))
				if got == Sat {
					// The model must satisfy base and extras.
					for _, c := range append(append([][]Lit{}, base...), extra...) {
						sat := false
						for _, l := range c {
							if inc.Value(l.Var()) == l.IsPos() {
								sat = true
							}
						}
						if !sat {
							t.Fatalf("trial %d q %d: incremental model violates %v", trial, q, c)
						}
					}
				}
				inc.ReleaseVar(NegLit(act))
			}
			if got != want {
				t.Fatalf("trial %d q %d: incremental=%v fresh=%v (base=%v extra=%v)",
					trial, q, got, want, base, extra)
			}
			if q%4 == 3 && baseOK {
				if !inc.Simplify() {
					// Root-level conflict: the base formula itself is unsat.
					if fresh := want; fresh != Unsat {
						t.Fatalf("trial %d q %d: Simplify unsat but fresh=%v", trial, q, fresh)
					}
					baseOK = false
				}
			}
		}
		if baseOK && inc.SimplifyCounters().VarsRecycled == 0 {
			t.Errorf("trial %d: no activation literals were recycled", trial)
		}
	}
}

// TestLearntRetentionAcrossQueries checks that learnt clauses survive
// assumption-scoped queries (the whole point of pooling) and that verdicts
// are unaffected.
func TestLearntRetentionAcrossQueries(t *testing.T) {
	s := New()
	// PHP(5+1,5) guarded by an activation literal: unsat under act only.
	holes := 5
	pigeons := holes + 1
	act := s.NewVar()
	at := make([][]Var, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]Var, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := []Lit{NegLit(act)}
		for h := 0; h < holes; h++ {
			lits = append(lits, PosLit(at[p][h]))
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(act), NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
	if s.Solve(PosLit(act)) != Unsat {
		t.Fatal("guarded PHP should be unsat under act")
	}
	learnt := s.LearntClauses()
	if learnt == 0 {
		t.Fatal("expected learnt clauses from PHP search")
	}
	// Learnt clauses persist into the next query and don't change verdicts.
	if s.Solve() != Sat {
		t.Error("formula should be sat without the assumption")
	}
	if s.Solve(PosLit(act)) != Unsat {
		t.Error("second guarded query should still be unsat")
	}
}
