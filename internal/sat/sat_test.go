package sat

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestLitBasics(t *testing.T) {
	v := Var(3)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Error("Var roundtrip")
	}
	if !p.IsPos() || n.IsPos() {
		t.Error("polarity")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Error("negation")
	}
	if MkLit(v, true) != p || MkLit(v, false) != n {
		t.Error("MkLit")
	}
	if p.String() != "x3" || !strings.Contains(n.String(), "x3") {
		t.Error("String")
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(PosLit(a)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.Value(a) {
		t.Error("model violates unit clause")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if s.AddClause(NegLit(a)) {
		t.Fatal("contradictory unit accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(PosLit(a), NegLit(a)) {
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Error("tautology stored")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b)
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(PosLit(a), NegLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(NegLit(a), NegLit(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestModelSatisfiesClauses(t *testing.T) {
	s := New()
	vars := make([]Var, 10)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	var clauses [][]Lit
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		var c []Lit
		for j := 0; j < 3; j++ {
			c = append(c, MkLit(vars[r.Intn(len(vars))], r.Intn(2) == 0))
		}
		clauses = append(clauses, c)
		s.AddClause(c...)
	}
	if got := s.Solve(); got == Sat {
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if s.Value(l.Var()) == l.IsPos() {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("model violates clause %v", c)
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b)) // a → b
	s.AddClause(NegLit(b), NegLit(a)) // b → ¬a... makes a unsatisfiable
	if got := s.Solve(PosLit(a)); got != Unsat {
		t.Fatalf("Solve(a) = %v, want unsat", got)
	}
	// The solver must remain usable and satisfiable without assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want sat", got)
	}
	if got := s.Solve(NegLit(a)); got != Sat {
		t.Fatalf("Solve(¬a) = %v, want sat", got)
	}
	if s.Value(a) {
		t.Error("assumption not respected in model")
	}
}

// Pigeonhole principle PHP(n+1, n) is unsatisfiable and exercises clause
// learning heavily.
func php(t *testing.T, holes int) Status {
	t.Helper()
	s := New()
	pigeons := holes + 1
	at := make([][]Var, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]Var, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(at[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
	return s.Solve()
}

func TestPigeonhole(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		if got := php(t, holes); got != Unsat {
			t.Errorf("PHP(%d+1,%d) = %v, want unsat", holes, holes, got)
		}
	}
}

func TestBudget(t *testing.T) {
	s := New()
	holes := 7
	pigeons := holes + 1
	at := make([][]Var, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]Var, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(at[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
	s.Budget = 50
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with tiny budget = %v, want unknown", got)
	}
	s.Budget = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve unlimited = %v, want unsat", got)
	}
}

// bruteForce decides satisfiability by enumeration over nvars ≤ 20.
func bruteForce(nvars int, clauses [][]Lit) bool {
	for mask := 0; mask < 1<<nvars; mask++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := mask>>(int(l.Var())-1)&1 == 1
				if bit == l.IsPos() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on random small instances of varying density,
// covering both sat and unsat cases.
func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		nvars := 3 + r.Intn(8)
		nclauses := 1 + r.Intn(nvars*5)
		var clauses [][]Lit
		s := New()
		vars := make([]Var, nvars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		okSoFar := true
		for i := 0; i < nclauses; i++ {
			width := 1 + r.Intn(3)
			c := make([]Lit, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, MkLit(vars[r.Intn(nvars)], r.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				okSoFar = false
			}
		}
		want := bruteForce(nvars, clauses)
		var got bool
		if !okSoFar {
			got = false
		} else {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v clauses=%v", trial, got, want, clauses)
		}
		// If sat, the model must satisfy every clause.
		if got {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) == l.IsPos() {
						sat = true
					}
				}
				if !sat {
					t.Fatalf("trial %d: model violates %v", trial, c)
				}
			}
		}
	}
}

// TestIncrementalSolves exercises repeated Solve calls with growing clause
// sets, mirroring how the determinacy checker reuses solvers.
func TestIncrementalSolves(t *testing.T) {
	s := New()
	n := 8
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Chain of implications x1 → x2 → ... → xn.
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	if s.Solve(PosLit(vars[0])) != Sat {
		t.Fatal("chain sat under x1")
	}
	for i := 0; i < n; i++ {
		if !s.Value(vars[i]) {
			t.Fatalf("x%d should be forced true", i+1)
		}
	}
	// Now forbid xn; x1 must be unsat, ¬x1 still sat.
	s.AddClause(NegLit(vars[n-1]))
	if s.Solve(PosLit(vars[0])) != Unsat {
		t.Fatal("x1 should now be unsat")
	}
	if s.Solve() != Sat {
		t.Fatal("formula should still be sat")
	}
}

func TestDimacs(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), NegLit(b))
	d := s.Dimacs()
	if !strings.HasPrefix(d, "p cnf 2 1") {
		t.Errorf("header wrong: %q", d)
	}
	if !strings.Contains(d, "1 -2 0") && !strings.Contains(d, "-2 1 0") {
		t.Errorf("clause missing: %q", d)
	}
}

func TestStatsAndStatusString(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	s.Solve()
	if s.Stats() == "" {
		t.Error("empty stats")
	}
	for st, want := range map[Status]string{Sat: "sat", Unsat: "unsat", Unknown: "unknown"} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q", st, st.String())
		}
	}
	if got := fmt.Sprint(ErrBudget); got == "" {
		t.Error("ErrBudget message empty")
	}
}

// TestReduceDB drives the solver far enough to trigger learnt-clause
// deletion and checks correctness is preserved (PHP stays unsat).
func TestReduceDB(t *testing.T) {
	s := New()
	s.maxLearnt = 50 // force frequent reductions
	holes := 7
	pigeons := holes + 1
	at := make([][]Var, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]Var, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(at[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP with clause deletion = %v, want unsat", got)
	}
	// Glue clauses (lbd <= keepGlue) and binaries are exempt from
	// deletion, so "the DB gets reduced" means the deletable remainder
	// halves per reduceDB call.
	deletable := func() int {
		n := 0
		for i := range s.clauses {
			c := &s.clauses[i]
			if c.learnt && c.lits != nil && len(c.lits) > 2 && c.lbd > keepGlue {
				n++
			}
		}
		return n
	}
	before := deletable()
	if before == 0 {
		t.Fatal("solve learnt no deletable clauses; the reduction path was never exercised")
	}
	s.reduceDB()
	if after := deletable(); after > before-before/2 {
		t.Errorf("reduceDB kept %d of %d deletable clauses; want at most %d", after, before, before-before/2)
	}
}

// TestReduceDBKeepsGlueAndRanksByLBD pins the deletion policy: glue
// clauses (lbd <= keepGlue) survive unconditionally even at zero
// activity, and among candidates LBD outranks activity — a high-activity
// lbd-8 clause is deleted before a low-activity lbd-3 one.
func TestReduceDBKeepsGlueAndRanksByLBD(t *testing.T) {
	s := New()
	vars := make([]Var, 3)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	mk := func(lbd int32, act float64) clauseRef {
		cref := s.allocClause([]Lit{PosLit(vars[0]), PosLit(vars[1]), PosLit(vars[2])}, true)
		s.clauses[cref].lbd = lbd
		s.clauses[cref].act = act
		s.nLearnt++
		s.attach(cref)
		return cref
	}
	var glue, worst, better []clauseRef
	for i := 0; i < 4; i++ {
		glue = append(glue, mk(keepGlue, 0))
		worst = append(worst, mk(8, 100))
		better = append(better, mk(3, 1))
	}
	s.reduceDB()
	alive := func(c clauseRef) bool { return s.clauses[c].lits != nil }
	for _, c := range glue {
		if !alive(c) {
			t.Error("glue clause deleted despite lbd <= keepGlue")
		}
	}
	// Eight candidates (worst + better); the deleted half must be exactly
	// the lbd-8 clauses, their higher activity notwithstanding.
	for _, c := range worst {
		if alive(c) {
			t.Error("lbd-8 clause survived reduceDB while lbd-3 clauses were available")
		}
	}
	for _, c := range better {
		if !alive(c) {
			t.Error("lbd-3 clause deleted before the lbd-8 ones")
		}
	}
}

// Random instances with aggressive clause deletion still agree with brute
// force.
func TestReduceDBRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 150; trial++ {
		nvars := 4 + r.Intn(8)
		nclauses := nvars * 5
		var clauses [][]Lit
		s := New()
		s.maxLearnt = 10
		vars := make([]Var, nvars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		ok := true
		for i := 0; i < nclauses; i++ {
			width := 1 + r.Intn(3)
			c := make([]Lit, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, MkLit(vars[r.Intn(nvars)], r.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
			}
		}
		want := bruteForce(nvars, clauses)
		got := ok && s.Solve() == Sat
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v", trial, got, want)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		holes := 7
		pigeons := holes + 1
		at := make([][]Var, pigeons)
		for p := 0; p < pigeons; p++ {
			at[p] = make([]Var, holes)
			for h := 0; h < holes; h++ {
				at[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = PosLit(at[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(NegLit(at[p1][h]), NegLit(at[p2][h]))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("php should be unsat")
		}
	}
}
