// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watches, VSIDS branching, first-UIP clause
// learning, learnt-clause minimization, phase saving and Luby restarts.
//
// It is the decision-procedure substrate for Rehearsal's determinacy and
// idempotence checks: the paper uses Z3 on effectively-propositional
// formulas over a finite domain, which package smt reduces to propositional
// logic and this package decides.
package sat

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Var is a propositional variable, numbered from 1.
type Var int32

// Lit is a literal: a variable or its negation.
// Internally lit = var<<1 | sign, with sign 1 meaning negated.
type Lit int32

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit returns the literal of v with the given polarity.
func MkLit(v Var, positive bool) Lit {
	if positive {
		return PosLit(v)
	}
	return NegLit(v)
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsPos reports whether the literal is positive.
func (l Lit) IsPos() bool { return l&1 == 0 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// String renders the literal as "x3" or "¬x3".
func (l Lit) String() string {
	if l.IsPos() {
		return fmt.Sprintf("x%d", l.Var())
	}
	return fmt.Sprintf("¬x%d", l.Var())
}

// Status is the result of Solve.
type Status int

// Possible results of Solve.
const (
	Unknown Status = iota // budget exhausted
	Sat                   // a model was found
	Unsat                 // the formula is unsatisfiable
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudget is returned by Solve when the conflict budget was exhausted.
var ErrBudget = errors.New("sat: conflict budget exhausted")

type value int8

const (
	vUnknown value = iota
	vTrue
	vFalse
)

func (v value) neg() value {
	switch v {
	case vTrue:
		return vFalse
	case vFalse:
		return vTrue
	default:
		return vUnknown
	}
}

type clauseRef int32

const nilClause clauseRef = -1

type clause struct {
	lits   []Lit
	learnt bool
	act    float64
	// lbd is the clause's literal-block distance (glue): the number of
	// distinct decision levels among its literals when it was learnt,
	// refreshed downward when the clause is used in later conflicts. Low
	// LBD predicts reuse far better than activity alone (Glucose); clauses
	// with lbd <= keepGlue survive every reduceDB unconditionally.
	lbd int32
}

type watcher struct {
	cref    clauseRef
	blocker Lit // a literal of the clause; if true, skip visiting
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []clause
	free    []clauseRef // recycled learnt clause slots

	watches [][]watcher // indexed by literal

	assigns  []value // indexed by var
	phase    []bool  // saved phase, indexed by var
	level    []int32 // decision level of assignment, indexed by var
	reason   []clauseRef
	activity []float64
	order    *varHeap

	trail    []Lit
	trailLim []int32 // trail index at each decision level
	qhead    int

	varInc    float64
	claInc    float64
	seen      []bool
	unsat     bool // formula already proven unsat by unit propagation at level 0
	conflicts int64
	decisions int64
	props     int64
	restarts  int64
	nLearnt   int
	maxLearnt int

	// cfg holds the normalized search-heuristic knobs (see config.go);
	// rngState is the config-seeded xorshift64 state behind RandomFreq
	// and PhaseRandom. stop, when set, lets another goroutine abandon a
	// running Solve — the portfolio runner's loser cancellation.
	cfg      Config
	rngState uint64
	stop     *atomic.Bool

	// Incremental-solving state (see incremental.go).
	released    []Var // vars retired by ReleaseVar, scrubbed at the next Simplify
	recycled    []Var // fully scrubbed vars available for NewVar reuse
	dirty       bool  // clauses added since the last preprocessing pass
	subsumeHead int   // clause-index watermark for the subsumption pass
	simp        SimplifyStats

	// Budget limits the number of conflicts Solve may encounter; 0 means
	// unlimited. Used by the timeout-bearing configurations of the
	// determinacy checker.
	Budget int64
	// Deadline aborts Solve with Unknown once passed (checked every few
	// conflicts); the zero value means no deadline.
	Deadline time.Time
}

// New creates an empty solver with the default configuration.
func New() *Solver { return NewWithConfig(Config{}) }

// NewWithConfig creates an empty solver with the given search
// configuration. The zero Config reproduces New's historical behavior
// exactly; no Config field can change a SAT/UNSAT verdict.
func NewWithConfig(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	s := &Solver{
		varInc:   1,
		claInc:   1,
		cfg:      cfg,
		rngState: cfg.Seed,
	}
	s.order = newVarHeap(&s.activity)
	// Var 0 is unused so literals index cleanly.
	s.assigns = append(s.assigns, vUnknown)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nilClause)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) - 1 }

// NumClauses returns the number of problem (non-learnt) clauses added.
func (s *Solver) NumClauses() int {
	n := 0
	for _, c := range s.clauses {
		if !c.learnt && c.lits != nil {
			n++
		}
	}
	return n
}

// Conflicts returns the number of conflicts encountered so far.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// NewVar allocates a fresh variable, reusing a recycled one (see
// ReleaseVar) when available.
func (s *Solver) NewVar() Var {
	if n := len(s.recycled); n > 0 {
		v := s.recycled[n-1]
		s.recycled = s.recycled[:n-1]
		s.order.push(v)
		return v
	}
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, vUnknown)
	s.phase = append(s.phase, s.initPhase())
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nilClause)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// initPhase returns the starting branching phase for a fresh variable
// under the configured policy.
func (s *Solver) initPhase() bool {
	switch s.cfg.Phase {
	case PhaseTrue:
		return true
	case PhaseRandom:
		return s.rnd()&1 == 0
	default:
		return false
	}
}

// rnd advances the config-seeded xorshift64 state. Deterministic for a
// given Config: no global randomness, no time.
func (s *Solver) rnd() uint64 {
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	return x
}

// randFloat returns a deterministic float in [0, 1).
func (s *Solver) randFloat() float64 {
	return float64(s.rnd()>>11) / (1 << 53)
}

// SetStop installs (or with nil clears) a cancellation flag checked on
// every Solve iteration: when the flag becomes true, Solve backtracks to
// the root level and returns Unknown. The solver remains usable — losing
// a portfolio race does not poison the session.
func (s *Solver) SetStop(f *atomic.Bool) { s.stop = f }

// ConfigName returns the name of the solver's search configuration.
func (s *Solver) ConfigName() string { return s.cfg.Name }

func (s *Solver) litValue(l Lit) value {
	v := s.assigns[l.Var()]
	if !l.IsPos() {
		return v.neg()
	}
	return v
}

// AddClause adds a clause. Duplicate literals are removed; clauses
// containing both a literal and its negation are dropped as tautologies.
// Returns false if the formula became trivially unsatisfiable (an empty
// clause, or a top-level conflict from unit propagation of a unit clause).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.dirty = true
	// Adding a clause invalidates any previous model: drop back to the root
	// decision level so the level-0 simplification below is sound.
	s.cancelUntil(0)
	// Normalize: sort, dedupe, drop false literals, detect tautology and
	// satisfied clauses (at level 0).
	ls := make([]Lit, 0, len(lits))
	ls = append(ls, lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Neg() {
			return true // tautology
		}
		switch s.litValue(l) {
		case vTrue:
			return true // already satisfied at level 0
		case vFalse:
			// drop
		default:
			out = append(out, l)
		}
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(out[0], nilClause)
		if s.propagate() != nilClause {
			s.unsat = true
			return false
		}
		return true
	}
	cref := s.allocClause(out, false)
	s.attach(cref)
	return true
}

func (s *Solver) allocClause(lits []Lit, learnt bool) clauseRef {
	c := clause{lits: append([]Lit(nil), lits...), learnt: learnt}
	if n := len(s.free); learnt && n > 0 {
		cref := s.free[n-1]
		s.free = s.free[:n-1]
		s.clauses[cref] = c
		return cref
	}
	s.clauses = append(s.clauses, c)
	return clauseRef(len(s.clauses) - 1)
}

func (s *Solver) attach(cref clauseRef) {
	c := &s.clauses[cref]
	w0 := watcher{cref, c.lits[1]}
	w1 := watcher{cref, c.lits[0]}
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], w0)
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], w1)
}

func (s *Solver) enqueue(l Lit, from clauseRef) {
	v := l.Var()
	if l.IsPos() {
		s.assigns[v] = vTrue
	} else {
		s.assigns[v] = vFalse
	}
	s.phase[v] = l.IsPos()
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the conflicting clause or
// nilClause.
func (s *Solver) propagate() clauseRef {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.props++
		ws := s.watches[l]
		out := ws[:0]
		var conflict clauseRef = nilClause
	loop:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.litValue(w.blocker) == vTrue {
				out = append(out, w)
				continue
			}
			c := &s.clauses[w.cref]
			// Ensure the false literal (l.Neg()) is at position 1.
			if c.lits[0] == l.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == vTrue {
				out = append(out, watcher{w.cref, first})
				continue
			}
			// Look for a new watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{w.cref, first})
					continue loop
				}
			}
			// Clause is unit or conflicting.
			out = append(out, w)
			if s.litValue(first) == vFalse {
				conflict = w.cref
				// Copy remaining watchers and stop.
				out = append(out, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.enqueue(first, w.cref)
		}
		s.watches[l] = out
		if conflict != nilClause {
			return conflict
		}
	}
	return nilClause
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assigns[v] = vUnknown
		s.reason[v] = nilClause
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// keepGlue is the LBD at or below which a learnt clause is never deleted:
// glue clauses stitch two decision levels together and are re-derived
// almost immediately if dropped, so keeping them is nearly free insurance.
const keepGlue = 2

// computeLBD returns the literal-block distance of a clause under the
// current assignment: the number of distinct nonzero decision levels among
// its literals. Unassigned literals (level tracked as 0 alongside root
// assignments) collapse into one block, which only underestimates — safe,
// since lower LBD means "keep longer".
func (s *Solver) computeLBD(lits []Lit) int32 {
	var n int32
	seen := make(map[int32]struct{}, len(lits))
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv == 0 {
			continue
		}
		if _, ok := seen[lv]; !ok {
			seen[lv] = struct{}{}
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

func (s *Solver) bumpClause(cref clauseRef) {
	c := &s.clauses[cref]
	if !c.learnt {
		return
	}
	// A clause involved in a conflict gets its glue refreshed downward:
	// the assignment that re-derived it may span fewer decision levels
	// than the one it was learnt under.
	if nl := s.computeLBD(c.lits); nl < c.lbd {
		c.lbd = nl
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for i := range s.clauses {
			s.clauses[i].act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict clauseRef) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	cref := conflict

	for {
		s.bumpClause(cref)
		c := s.clauses[cref].lits
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason clause
		}
		for _, q := range c[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		cref = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Mark remaining literals for the redundancy check. Snapshot first: the
	// in-place filter below overwrites the backing array.
	orig := append([]Lit(nil), learnt...)
	for _, l := range orig[1:] {
		s.seen[l.Var()] = true
	}
	// Learnt-clause minimization: drop literals implied by the rest.
	out := learnt[:1]
	for _, l := range orig[1:] {
		if s.reason[l.Var()] == nilClause || !s.redundant(l) {
			out = append(out, l)
		}
	}
	for _, l := range orig[1:] {
		s.seen[l.Var()] = false
	}
	learnt = out

	// Compute backjump level: highest level among learnt[1:].
	backjump := 0
	if len(learnt) > 1 {
		maxIdx := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxIdx].Var()] {
				maxIdx = i
			}
		}
		learnt[1], learnt[maxIdx] = learnt[maxIdx], learnt[1]
		backjump = int(s.level[learnt[1].Var()])
	}
	return learnt, backjump
}

// redundant reports whether literal l of a learnt clause is implied by the
// other marked literals (local minimization: every literal of l's reason is
// marked or at level 0).
func (s *Solver) redundant(l Lit) bool {
	cref := s.reason[l.Var()]
	c := s.clauses[cref].lits
	for _, q := range c[1:] {
		v := q.Var()
		if s.level[v] != 0 && !s.seen[v] {
			return false
		}
	}
	return true
}

func (s *Solver) record(learnt []Lit) {
	if len(learnt) == 1 {
		s.enqueue(learnt[0], nilClause)
		return
	}
	cref := s.allocClause(learnt, true)
	s.clauses[cref].lbd = s.computeLBD(learnt)
	s.nLearnt++
	s.attach(cref)
	s.bumpClause(cref)
	s.enqueue(learnt[0], cref)
}

// reduceDB removes roughly half of the learnt clauses, ranked by LBD
// (glue) with activity as the tie-breaker. Binary clauses, clauses that
// are reasons for current assignments, and glue clauses (lbd <= keepGlue)
// are kept unconditionally; the remaining candidates are sorted
// worst-first — highest LBD, then lowest activity — and the worst half is
// deleted. Called between restarts (at decision level 0). Deletion only
// ever drops learnt (implied) clauses, so any ranking preserves verdicts;
// the random differential test pins that.
func (s *Solver) reduceDB() {
	locked := make(map[clauseRef]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nilClause {
			locked[r] = true
		}
	}
	type cand struct {
		cref clauseRef
		lbd  int32
		act  float64
	}
	var cands []cand
	for i := range s.clauses {
		c := &s.clauses[i]
		cref := clauseRef(i)
		if !c.learnt || c.lits == nil || len(c.lits) <= 2 || locked[cref] {
			continue
		}
		if c.lbd <= keepGlue {
			continue
		}
		cands = append(cands, cand{cref, c.lbd, c.act})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lbd != cands[j].lbd {
			return cands[i].lbd > cands[j].lbd
		}
		return cands[i].act < cands[j].act
	})
	for _, c := range cands[:len(cands)/2] {
		s.detach(c.cref)
		s.clauses[c.cref] = clause{}
		s.free = append(s.free, c.cref)
		s.nLearnt--
	}
}

// detach removes the clause's two watchers.
func (s *Solver) detach(cref clauseRef) {
	c := &s.clauses[cref]
	for _, w := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].cref == cref {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) pickBranchLit() (Lit, bool) {
	// Random decisions (RandomFreq > 0): peek a uniformly random heap
	// slot without popping; if it is unassigned, branch on it. The
	// variable stays in the heap — a later VSIDS pop skips it once
	// assigned — so no ordering invariant is disturbed.
	if s.cfg.RandomFreq > 0 && len(s.order.heap) > 0 && s.randFloat() < s.cfg.RandomFreq {
		v := s.order.heap[int(s.rnd()%uint64(len(s.order.heap)))]
		if s.assigns[v] == vUnknown {
			return MkLit(v, s.phase[v]), true
		}
	}
	for {
		v, ok := s.order.pop()
		if !ok {
			return 0, false
		}
		if s.assigns[v] == vUnknown {
			return MkLit(v, s.phase[v]), true
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<k {
			continue
		}
		return luby(i - (1 << (k - 1)) + 1)
	}
}

// Solve decides satisfiability under the given assumptions. It returns Sat
// with a model retrievable via Value, Unsat, or Unknown if the conflict
// budget was exhausted.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsat {
		return Unsat
	}
	s.cancelUntil(0)
	// Root-level preprocessing: whenever clauses were added since the last
	// pass, simplify the database before entering the search loop.
	if s.dirty && !s.Simplify() {
		return Unsat
	}
	restartIdx := int64(1)
	conflictsAtStart := s.conflicts
	geomInterval := float64(s.cfg.RestartBase)
	restartBudget := luby(restartIdx) * s.cfg.RestartBase
	if s.cfg.Restart == RestartGeometric {
		restartBudget = int64(geomInterval)
	}

	for {
		if s.stop != nil && s.stop.Load() {
			s.cancelUntil(0)
			return Unknown
		}
		conflict := s.propagate()
		if conflict != nilClause {
			s.conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, backjump := s.analyze(conflict)
			s.cancelUntil(backjump)
			s.record(learnt)
			s.varInc /= s.cfg.VarDecay
			s.claInc /= s.cfg.ClauseDecay
			if s.Budget > 0 && s.conflicts-conflictsAtStart >= s.Budget {
				s.cancelUntil(0)
				return Unknown
			}
			if !s.Deadline.IsZero() && s.conflicts%64 == 0 && time.Now().After(s.Deadline) {
				s.cancelUntil(0)
				return Unknown
			}
			if s.conflicts-conflictsAtStart >= restartBudget {
				restartIdx++
				s.restarts++
				if s.cfg.Restart == RestartGeometric {
					geomInterval *= s.cfg.RestartGrowth
					restartBudget = s.conflicts - conflictsAtStart + int64(geomInterval)
				} else {
					restartBudget = s.conflicts - conflictsAtStart + luby(restartIdx)*s.cfg.RestartBase
				}
				s.cancelUntil(0)
				if s.maxLearnt == 0 {
					s.maxLearnt = s.cfg.MaxLearntBase + 2*s.NumClauses()
				}
				if s.nLearnt > s.maxLearnt {
					s.reduceDB()
					// Geometric growth of the learnt-clause budget.
					s.maxLearnt += s.maxLearnt * s.cfg.MaxLearntGrowthPct / 100
				}
			}
			continue
		}

		// Re-apply assumptions below any decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case vTrue:
				s.newDecisionLevel() // dummy level to keep indices aligned
				continue
			case vFalse:
				// Assumptions conflict with the formula.
				s.cancelUntil(0)
				return Unsat
			default:
				s.newDecisionLevel()
				s.enqueue(a, nilClause)
				continue
			}
		}

		l, ok := s.pickBranchLit()
		if !ok {
			return Sat // all variables assigned
		}
		s.decisions++
		s.newDecisionLevel()
		s.enqueue(l, nilClause)
	}
}

// Value returns the model value of v after Solve returned Sat. Unassigned
// variables (possible only if v was created after Solve) report false.
func (s *Solver) Value(v Var) bool {
	return s.assigns[v] == vTrue
}

// Stats returns a human-readable summary of solver counters.
func (s *Solver) Stats() string {
	return fmt.Sprintf("vars=%d clauses=%d conflicts=%d decisions=%d propagations=%d",
		s.NumVars(), s.NumClauses(), s.conflicts, s.decisions, s.props)
}

// varHeap is a max-heap over variable activity used for VSIDS branching.
type varHeap struct {
	activity *[]float64
	heap     []Var
	indices  map[Var]int
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act, indices: make(map[Var]int)}
}

func (h *varHeap) less(i, j int) bool {
	return (*h.activity)[h.heap[i]] > (*h.activity)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v Var) {
	if _, ok := h.indices[v]; ok {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	delete(h.indices, v)
	if last > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v Var) {
	if i, ok := h.indices[v]; ok {
		h.up(i)
	}
}

// Dimacs renders the problem clauses in DIMACS CNF format, for debugging
// with external solvers.
//
//nolint:unused // debugging aid
func (s *Solver) Dimacs() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", s.NumVars(), s.NumClauses())
	for _, c := range s.clauses {
		if c.learnt || c.lits == nil {
			continue
		}
		for _, l := range c.lits {
			n := int32(l.Var())
			if !l.IsPos() {
				n = -n
			}
			fmt.Fprintf(&b, "%d ", n)
		}
		b.WriteString("0\n")
	}
	return b.String()
}
