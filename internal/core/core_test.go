package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fs"
)

func load(t *testing.T, src string) *System {
	t.Helper()
	s, err := Load(src, DefaultOptions())
	if err != nil {
		t.Fatalf("Load: %v\nsource:\n%s", err, src)
	}
	return s
}

func checkDet(t *testing.T, s *System) *DeterminismResult {
	t.Helper()
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatalf("CheckDeterminism: %v", err)
	}
	return res
}

// Figure 3a: a package and the config file it should precede, with the
// dependency omitted — non-deterministic error.
const fig3aBroken = `
file {"/etc/apache2/sites-available/000-default.conf":
  content => "<VirtualHost *:80>...</VirtualHost>",
}
package {"apache2": ensure => present }
`

const fig3aFixed = fig3aBroken + `
Package["apache2"] -> File["/etc/apache2/sites-available/000-default.conf"]
`

func TestFig3aNondeterministic(t *testing.T) {
	res := checkDet(t, load(t, fig3aBroken))
	if res.Deterministic {
		t.Fatal("fig 3a should be non-deterministic")
	}
	cex := res.Counterexample
	if cex == nil {
		t.Fatal("missing counterexample")
	}
	if len(cex.Order1) != 2 || len(cex.Order2) != 2 {
		t.Errorf("orders: %v / %v", cex.Order1, cex.Order2)
	}
	if cex.Ok1 == cex.Ok2 && cex.Out1.Equal(cex.Out2) {
		t.Error("counterexample does not distinguish")
	}
}

func TestFig3aFixedDeterministicAndIdempotent(t *testing.T) {
	s := load(t, fig3aFixed)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("fixed fig 3a should be deterministic: %+v", res.Counterexample)
	}
	idem, err := s.CheckIdempotence()
	if err != nil {
		t.Fatal(err)
	}
	if !idem.Idempotent {
		t.Fatalf("fixed fig 3a should be idempotent: %s", idem.Counterexample)
	}
}

// Figure 3b: over-constrained modules that cannot be composed — the false
// dependencies between make and m4 form a cycle.
const fig3b = `
define cpp() {
  if !defined(Package["m4"])   { package{"m4": ensure => present } }
  if !defined(Package["make"]) { package{"make": ensure => present } }
  package{"gcc": ensure => present }
  Package["m4"] -> Package["make"]
  Package["make"] -> Package["gcc"]
}
define ocaml() {
  if !defined(Package["make"]) { package{"make": ensure => present } }
  if !defined(Package["m4"])   { package{"m4": ensure => present } }
  package{"ocaml": ensure => present }
  Package["make"] -> Package["m4"]
  Package["m4"] -> Package["ocaml"]
}
cpp{"dev": }
ocaml{"dev": }
`

func TestFig3bCompositionCycle(t *testing.T) {
	_, err := Load(fig3b, DefaultOptions())
	if err == nil {
		t.Fatal("fig 3b should fail with a dependency cycle")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error: %v", err)
	}
	if !strings.Contains(err.Error(), "Package[") {
		t.Errorf("cycle should name resources: %v", err)
	}
	// The error is structured: tools (the service's failure reasons, the
	// CLI) can extract the resources in cycle order without parsing text.
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("Load returned %T, want *core.CycleError", err)
	}
	if len(ce.Resources) < 2 {
		t.Fatalf("cycle resources: %v", ce.Resources)
	}
	for _, r := range ce.Resources {
		if !strings.HasPrefix(r, "Package[") {
			t.Errorf("cycle entry %q should be a resource name", r)
		}
	}
}

// Figure 3c: remove Perl, install Go — on Ubuntu golang-go depends on
// perl, so the two orders reach different success states (silent failure).
const fig3c = `
package{"golang-go": ensure => present }
package{"perl": ensure => absent }
`

func TestFig3cSilentFailure(t *testing.T) {
	res := checkDet(t, load(t, fig3c))
	if res.Deterministic {
		t.Fatal("fig 3c should be non-deterministic")
	}
	cex := res.Counterexample
	// The witness must be a silent failure: both orders succeed with
	// different states (not an error/success split) on at least some
	// model; our replay reports the concrete outcome.
	if cex == nil {
		t.Fatal("missing counterexample")
	}
}

// Adding the dependency makes fig 3c deterministic but *not* idempotent
// (section 2.2): the package manager's check-then-act goes stale.
const fig3cOrdered = fig3c + `
Package["perl"] -> Package["golang-go"]
`

func TestFig3cOrderedNotIdempotent(t *testing.T) {
	s := load(t, fig3cOrdered)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("ordered fig 3c should be deterministic: %+v", res.Counterexample)
	}
	idem, err := s.CheckIdempotence()
	if err != nil {
		t.Fatal(err)
	}
	if idem.Idempotent {
		t.Fatal("ordered fig 3c should not be idempotent")
	}
	if idem.Counterexample == nil {
		t.Fatal("missing idempotence counterexample")
	}
}

// Figure 3d: copy then remove the source — deterministic but the second
// run always fails.
const fig3d = `
file{"/dst": source => "/src" }
file{"/src": ensure => absent }
File["/dst"] -> File["/src"]
`

func TestFig3dNotIdempotent(t *testing.T) {
	s := load(t, fig3d)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("fig 3d should be deterministic: %+v", res.Counterexample)
	}
	idem, err := s.CheckIdempotence()
	if err != nil {
		t.Fatal(err)
	}
	if idem.Idempotent {
		t.Fatal("fig 3d should not be idempotent")
	}
}

// Figure 2: the myuser defined type, fully ordered — deterministic and
// idempotent.
const fig2 = `
define myuser() {
  user {"$title":
    ensure     => present,
    managehome => true
  }
  file {"/home/${title}/.vimrc":
    content => "syntax on"
  }
  User["$title"] -> File["/home/${title}/.vimrc"]
}
myuser {"alice": }
myuser {"carol": }
`

func TestFig2DeterministicIdempotent(t *testing.T) {
	s := load(t, fig2)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("fig 2 should be deterministic: %+v", res.Counterexample)
	}
	idem, err := s.CheckIdempotence()
	if err != nil {
		t.Fatal(err)
	}
	if !idem.Idempotent {
		t.Fatalf("fig 2 should be idempotent: %s", idem.Counterexample)
	}
}

// The intro example (section 1): the vimrc file needs carol's home
// directory, created by the user resource — missing dependency.
const introExample = `
package{"vim": ensure => present }
file{"/home/carol/.vimrc": content => "syntax on" }
user{"carol": ensure => present, managehome => true }
`

func TestIntroExampleNondeterministic(t *testing.T) {
	res := checkDet(t, load(t, introExample))
	if res.Deterministic {
		t.Fatal("intro example should be non-deterministic")
	}
}

func TestIntroExampleFixed(t *testing.T) {
	res := checkDet(t, load(t, introExample+`
User["carol"] -> File["/home/carol/.vimrc"]
`))
	if !res.Deterministic {
		t.Fatalf("fixed intro example should be deterministic: %+v", res.Counterexample)
	}
}

// The evaluation's ssh-key bug class: a key without a dependency on its
// user.
const sshKeyBug = `
user{"deploy": ensure => present, managehome => true }
ssh_authorized_key{"deploy@ci":
  user => "deploy",
  type => "ssh-rsa",
  key  => "AAAAB3NzaC1yc2E",
}
`

func TestSSHKeyMissingUserDependency(t *testing.T) {
	res := checkDet(t, load(t, sshKeyBug))
	if res.Deterministic {
		t.Fatal("ssh key without user dependency should be non-deterministic")
	}
	fixed := load(t, sshKeyBug+`
User["deploy"] -> Ssh_authorized_key["deploy@ci"]
`)
	res = checkDet(t, fixed)
	if !res.Deterministic {
		t.Fatalf("fixed ssh key manifest should be deterministic: %+v", res.Counterexample)
	}
	idem, err := fixed.CheckIdempotence()
	if err != nil || !idem.Idempotent {
		t.Fatalf("fixed ssh key manifest should be idempotent: %v %s", err, idem.Counterexample)
	}
}

// Two keys for the same user commute (the authorized_keys-as-directory
// model, section 3.3).
func TestTwoKeysSameUserDeterministic(t *testing.T) {
	s := load(t, `
user{"deploy": ensure => present, managehome => true }
ssh_authorized_key{"k1": user => "deploy", key => "AAA", require => User["deploy"] }
ssh_authorized_key{"k2": user => "deploy", key => "BBB", require => User["deploy"] }
`)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("two keys should commute: %+v", res.Counterexample)
	}
}

// A file resource overwriting the authorized_keys path conflicts with the
// key model.
func TestFileVsKeyConflict(t *testing.T) {
	res := checkDet(t, load(t, `
user{"deploy": ensure => present, managehome => true }
ssh_authorized_key{"k1": user => "deploy", key => "AAA", require => User["deploy"] }
file{"/home/deploy/.ssh/authorized_keys": content => "hijacked", require => User["deploy"] }
`))
	if res.Deterministic {
		t.Fatal("file overwriting authorized_keys must conflict with keys")
	}
}

// Packages with disjoint closures and shared directories commute: no
// explicit dependencies needed, still deterministic (the point of the
// commutativity analysis, section 4.3).
func TestIndependentPackagesDeterministic(t *testing.T) {
	s := load(t, `
package{"ntp": ensure => present }
package{"monit": ensure => present }
package{"xinetd": ensure => present }
`)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("independent packages should be deterministic: %+v", res.Counterexample)
	}
	if res.Stats.Sequences != 1 {
		t.Errorf("POR should reduce to one sequence, got %d", res.Stats.Sequences)
	}
}

func TestEliminationAndPruningStats(t *testing.T) {
	s := load(t, fig3aFixed)
	res := checkDet(t, s)
	if res.Stats.Eliminated == 0 {
		t.Error("expected elimination to remove fringe resources")
	}
	if res.Stats.TotalPaths == 0 {
		t.Error("TotalPaths not recorded")
	}
	// Without analyses the same manifest must still verify (exactness).
	opts := DefaultOptions()
	opts.Elimination = false
	opts.Pruning = false
	s2, err := Load(fig3aFixed, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2 := checkDet(t, s2)
	if !res2.Deterministic {
		t.Error("analyses must not change the verdict")
	}
	if res2.Stats.Paths < res.Stats.Paths {
		t.Errorf("disabled analyses should model at least as many paths: %d < %d",
			res2.Stats.Paths, res.Stats.Paths)
	}
}

func TestTimeout(t *testing.T) {
	// Disable all reductions on a manifest with several unordered
	// interfering resources and give it no time.
	src := `
user{"u1": }
user{"u2": }
user{"u3": }
user{"u4": }
user{"u5": }
`
	opts := DefaultOptions()
	opts.Commutativity = false
	opts.Elimination = false
	opts.Pruning = false
	opts.Timeout = 1 * time.Nanosecond
	s, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckDeterminism(); err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestInvariant(t *testing.T) {
	s := load(t, `
file{"/etc/motd": content => "welcome" }
`)
	res, err := s.CheckFileInvariant("/etc/motd", "welcome")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("invariant should hold; violated from %s", fs.StateString(res.Input))
	}
	// A later resource overwrites the file: invariant violated.
	s = load(t, `
file{"/etc/motd": content => "welcome" }
file{"/etc/motd2": path => "/etc/motd", content => "pwned", require => File["/etc/motd"] }
`)
	res, err = s.CheckFileInvariant("/etc/motd", "welcome")
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("overwritten file should violate the invariant")
	}
}

func TestStageOrdering(t *testing.T) {
	s := load(t, `
stage{"pre": before => Stage["main"] }
class prep {
  user{"builder": ensure => present, managehome => true }
}
class {"prep": stage => "pre" }
file{"/home/builder/.profile": content => "export PATH" }
`)
	// The stage edge orders the user before the file, so the manifest is
	// deterministic even without an explicit dependency.
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("stage ordering should determinize: %+v", res.Counterexample)
	}
	// Without the stage, it is non-deterministic.
	res = checkDet(t, load(t, `
user{"builder": ensure => present, managehome => true }
file{"/home/builder/.profile": content => "export PATH" }
`))
	if res.Deterministic {
		t.Fatal("missing ordering should be non-deterministic")
	}
}

func TestAutorequireParentDirectory(t *testing.T) {
	// The managed parent directory is auto-required (section 3.1
	// footnote): no explicit edge needed.
	s := load(t, `
file{"/srv/app": ensure => directory }
file{"/srv/app/config": content => "x" }
`)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("autorequire should order dir before file: %+v", res.Counterexample)
	}
}

func TestExecRejected(t *testing.T) {
	_, err := Load(`exec{"curl http://example.com | sh": }`, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "exec") {
		t.Fatalf("exec should be rejected: %v", err)
	}
}

func TestCentosPlatform(t *testing.T) {
	src := `
case $operatingsystem {
  'Ubuntu': { $pkg = 'apache2' }
  'CentOS': { $pkg = 'httpd' }
}
package{"$pkg": ensure => present }
`
	opts := DefaultOptions()
	opts.Platform = "centos"
	s, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ResourceNames(); len(got) != 1 || got[0] != "Package[httpd]" {
		t.Errorf("resources: %v", got)
	}
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatal("single package should be deterministic")
	}
}

// Differential test: the static verdict must agree with exhaustive dynamic
// enumeration on the paper's small examples.
func TestStaticAgreesWithDynamicBaseline(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"fig3a-broken", fig3aBroken},
		{"fig3a-fixed", fig3aFixed},
		{"fig3c", fig3c},
		{"fig3c-ordered", fig3cOrdered},
		{"fig3d", fig3d},
		{"fig2", fig2},
		{"intro", introExample},
		{"sshkey-bug", sshKeyBug},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := load(t, c.src)
			static := checkDet(t, s)
			// Dynamic baseline from a set of initial states: empty, plus
			// the static counterexample's input when one exists.
			inputs := []fs.State{fs.NewState()}
			if static.Counterexample != nil {
				inputs = append(inputs, static.Counterexample.Input)
			}
			dyn := dynamic.Run(s.ExprGraph(), dynamic.Options{Inputs: inputs})
			if static.Deterministic && !dyn.Deterministic {
				t.Fatalf("static=deterministic but dynamic found divergence from %s",
					fs.StateString(dyn.Input))
			}
			if !static.Deterministic && dyn.Deterministic {
				t.Fatalf("static found nondeterminism but dynamic (seeded with the witness) did not; witness input %s",
					fs.StateString(static.Counterexample.Input))
			}
		})
	}
}

func TestDotAndNames(t *testing.T) {
	s := load(t, fig3aFixed)
	if dot := s.Dot(); !strings.Contains(dot, "Package[apache2]") {
		t.Errorf("dot output: %s", dot)
	}
	if names := s.ResourceNames(); len(names) != 2 {
		t.Errorf("names: %v", names)
	}
	g := s.Graph()
	if g.Len() != 2 || g.NumEdges() != 1 {
		t.Errorf("graph copy: %d nodes %d edges", g.Len(), g.NumEdges())
	}
	if s.Size() != 2 {
		t.Errorf("Size: %d", s.Size())
	}
}
