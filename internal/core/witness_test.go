package core

import (
	"testing"

	"repro/internal/fs"
)

// Counterexample inputs are minimized: removing any single entry must stop
// the divergence.
func TestCounterexampleMinimal(t *testing.T) {
	for _, src := range []string{fig3aBroken, introExample, sshKeyBug} {
		s := load(t, src)
		res := checkDet(t, s)
		if res.Deterministic {
			t.Fatal("expected non-deterministic")
		}
		cex := res.Counterexample
		// Rebuild the two sequenced expressions from the reported orders.
		g := s.ExprGraph()
		names := s.ResourceNames()
		byName := map[string]fs.Expr{}
		for i, n := range g.Nodes() {
			byName[names[i]] = g.Label(n)
		}
		seq := func(order []string) fs.Expr {
			var exprs []fs.Expr
			for _, n := range order {
				exprs = append(exprs, byName[n])
			}
			return fs.SeqAll(exprs...)
		}
		e1, e2 := seq(cex.Order1), seq(cex.Order2)
		if !diverges(e1, e2, cex.Input) {
			t.Fatalf("witness does not diverge: %s", fs.StateString(cex.Input))
		}
		for _, p := range cex.Input.Paths() {
			reduced := cex.Input.Clone()
			delete(reduced, p)
			if diverges(e1, e2, reduced) {
				t.Errorf("witness not minimal: %s is removable from %s",
					p, fs.StateString(cex.Input))
			}
		}
	}
}

// WellFormedInit restricts witnesses to realizable machines and never
// changes the verdict on the benchmark examples (their bugs manifest on
// well-formed states).
func TestWellFormedInit(t *testing.T) {
	opts := DefaultOptions()
	opts.WellFormedInit = true
	for _, c := range []struct {
		src  string
		want bool
	}{
		{fig3aBroken, false},
		{fig3aFixed, true},
		{introExample, false},
		{fig2, true},
	} {
		s, err := Load(c.src, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.CheckDeterminism()
		if err != nil {
			t.Fatal(err)
		}
		if res.Deterministic != c.want {
			t.Errorf("well-formed verdict %v, want %v", res.Deterministic, c.want)
		}
		if !res.Deterministic {
			// The witness must itself be a well-formed tree.
			if !res.Counterexample.Input.IsWellFormed() {
				t.Errorf("witness not well-formed: %s",
					fs.StateString(res.Counterexample.Input))
			}
		}
	}
}
