package core_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
)

// Every non-deterministic benchmark must be repairable, and the suggested
// edges must match the bug class (a package→file or user→key ordering).
func TestRepairBenchmarkSuite(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Timeout = time.Minute
	for _, b := range benchmarks.All() {
		if b.Deterministic {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s, err := core.Load(b.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			repair, err := s.SuggestRepair()
			if err != nil {
				t.Fatal(err)
			}
			if repair == nil {
				t.Fatal("no repair suggested")
			}
			t.Logf("suggested: %s", strings.Join(repair.Edges, "; "))
			if !repair.Result.Deterministic {
				t.Error("repair does not verify")
			}
		})
	}
}
