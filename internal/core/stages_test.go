package core

import (
	"strings"
	"testing"
)

func loadErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Load(src, DefaultOptions())
	if err == nil {
		t.Fatalf("expected error containing %q\nsource:\n%s", wantSubstr, src)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestUndeclaredStageRejected(t *testing.T) {
	loadErr(t, `package {'ntp': stage => 'bogus' }`, "undeclared stage")
	// Also with other stages declared.
	loadErr(t, `
stage {'pre': before => Stage['main'] }
package {'ntp': stage => 'bogus' }
`, "undeclared stage")
}

func TestStageCycleRejected(t *testing.T) {
	loadErr(t, `
stage {'pre': before => Stage['main'] }
stage {'post': require => Stage['main'], before => Stage['pre'] }
package {'ntp': }
`, "cycle")
}

func TestStageDependencyOnUndeclaredStage(t *testing.T) {
	loadErr(t, `
stage {'pre': before => Stage['nonexistent'] }
package {'ntp': }
`, "undeclared stage")
}

func TestMixedStageResourceDependency(t *testing.T) {
	loadErr(t, `
stage {'pre': before => Stage['main'] }
package {'ntp': before => Stage['pre'] }
`, "mixes stages and resources")
}

func TestMultiStageOrdering(t *testing.T) {
	// Three stages: pre -> main -> post; ordering is transitive, so a
	// pre-stage user orders before a post-stage file without explicit
	// dependencies.
	s := load(t, `
stage {'pre': before => Stage['main'] }
stage {'post': require => Stage['main'] }
class setup {
	user {'svc': ensure => present, managehome => true }
}
class teardown {
	file {'/home/svc/.done': content => 'ok' }
}
class {'setup': stage => 'pre' }
class {'teardown': stage => 'post' }
package {'ntp': }
`)
	res := checkDet(t, s)
	if !res.Deterministic {
		t.Fatalf("staged manifest should be deterministic: %+v", res.Counterexample)
	}
	// The stage edges must actually order setup before teardown.
	g := s.Graph()
	var userNode, fileNode = -1, -1
	for _, n := range g.Nodes() {
		switch g.Label(n) {
		case "User[svc]":
			userNode = int(n)
		case "File[/home/svc/.done]":
			fileNode = int(n)
		}
	}
	if userNode < 0 || fileNode < 0 {
		t.Fatal("resources missing from graph")
	}
	found := false
	for _, n := range g.Nodes() {
		if int(n) == userNode {
			for d := range g.Descendants(n) {
				if int(d) == fileNode {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("pre-stage resource does not precede post-stage resource")
	}
}

func TestUnresolvedDependencyReference(t *testing.T) {
	loadErr(t, `
package {'ntp': require => Package['ghost'] }
`, "does not match any declared resource")
	loadErr(t, `
@user {'v': }
package {'ntp': require => User['v'] }
`, "unrealized virtual")
}

func TestDuplicatePathViaPathAttribute(t *testing.T) {
	// Two file resources with distinct titles managing the same path are
	// legal Puppet but non-deterministic when contents differ.
	s := load(t, `
file {'motd-a': path => '/etc/motd', content => 'a' }
file {'motd-b': path => '/etc/motd', content => 'b' }
`)
	res := checkDet(t, s)
	if res.Deterministic {
		t.Fatal("conflicting file contents should be non-deterministic")
	}
}
