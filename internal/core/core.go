// Package core is Rehearsal proper: it wires the Puppet frontend, the
// resource compiler and the analyses into the verification pipeline of the
// paper — manifest → resource graph (section 3) → determinacy check
// (section 4) → idempotence and invariant checks (section 5).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/commute"
	"repro/internal/fs"
	"repro/internal/graph"
	"repro/internal/pkgdb"
	"repro/internal/puppet"
	"repro/internal/qcache"
	"repro/internal/resources"
)

// ErrTimeout reports that an analysis exceeded its deadline, mirroring the
// paper's 10-minute benchmark timeout.
var ErrTimeout = errors.New("core: analysis timed out")

// Options configures the pipeline and the determinacy analysis. The three
// analysis switches correspond to the paper's ablations (figure 11):
// commutativity-based partial-order reduction (section 4.3), resource
// elimination and path pruning (section 4.4).
type Options struct {
	// Platform selects the package catalog and facts: "ubuntu" (default)
	// or "centos".
	Platform string
	// Provider supplies package listings; defaults to the built-in
	// synthetic catalog.
	Provider pkgdb.Provider
	// Facts overrides the platform-derived facts.
	Facts map[string]puppet.Value
	// NodeName selects which node block applies (default "default").
	NodeName string

	// Commutativity enables partial-order reduction (figure 9a).
	Commutativity bool
	// DisableSleepSets turns off the sleep-set refinement of the
	// partial-order reduction, leaving only the paper's pivot rule. With
	// sleep sets off, a single conflicting pair among otherwise-commuting
	// resources forces a factorial exploration (an ablation knob; see
	// DESIGN.md).
	DisableSleepSets bool
	// WellFormedInit restricts the quantified initial filesystems to
	// well-formed trees (every present path's modeled ancestors are
	// directories). The paper's definition 1 quantifies over arbitrary
	// maps; real machines are always well-formed, so this option can only
	// remove counterexamples no machine could exhibit. Off by default for
	// paper fidelity.
	WellFormedInit bool
	// SemanticCommute falls back to a solver-based pairwise equivalence
	// check (e1;e2 ≡ e2;e1) when the syntactic commutativity analysis of
	// figure 9b cannot prove a pair commutes. This goes beyond the paper:
	// it proves, for example, that two package resources with overlapping
	// dependency closures commute (both guard shared dependencies with the
	// same installed-marker check), collapsing their traces. Results are
	// cached per pair; inconclusive checks (budget exhausted) count as
	// non-commuting, so the option never affects soundness.
	SemanticCommute bool
	// Elimination enables removing resources that commute with everything
	// that may run after them (section 4.4).
	Elimination bool
	// Pruning enables dropping single-writer definitive writes
	// (figure 10).
	Pruning bool

	// Timeout bounds each check's wall-clock time; 0 means none.
	Timeout time.Duration
	// Context, when non-nil, cancels the analysis from outside: package
	// lookups made while compiling resources observe it (via
	// pkgdb.BindContext, when the Provider supports contexts), in-flight
	// parallel commutativity fan-outs stop scheduling new queries, and
	// CheckDeterminism returns an error wrapping ErrCanceled instead of a
	// verdict. Nil means the analysis only stops on Timeout.
	Context context.Context
	// MaxSequences caps the number of linearizations the checker encodes
	// before giving up with ErrTimeout; 0 means the default of 20000.
	MaxSequences int
	// Parallelism bounds the worker pool that fans independent semantic-
	// commutativity queries (each an isolated encoder+solver) across
	// cores; 0 means runtime.GOMAXPROCS(0). Verdicts are identical at any
	// setting: queries are deterministic and the authoritative analysis
	// order stays sequential (see DESIGN.md, "Parallel determinacy
	// engine").
	Parallelism int
	// SharedQueryCache selects the process-wide content-addressed cache
	// (internal/qcache) for semantic-commutativity verdicts, so checks of
	// manifests with overlapping resources never re-solve the same pair.
	// Nil means qcache.Shared(); benchmarks inject a private cache to
	// measure cold-cache behavior.
	SharedQueryCache *qcache.Cache
	// PerQueryLatency models the round-trip cost of an external solver
	// process on every semantic-commutativity query, mirroring the
	// paper's setup (Z3 behind IPC) the same way internal/dynamic models
	// per-resource container latency. Benchmarks use it to measure how
	// well the worker pool overlaps query latency on hosts with few
	// cores; 0 (production) runs queries at native in-process speed.
	PerQueryLatency time.Duration
	// FreshSolvers disables the incremental solver pool and builds an
	// isolated vocabulary, encoder and solver for every semantic-
	// commutativity query. Verdicts are identical either way (the
	// differential tests enforce it); the fresh path exists as the
	// baseline for those tests and for the incremental benchmark.
	FreshSolvers bool
	// PerSolverLatency models the construction cost of an external solver
	// process (spawning Z3, loading the theory). The fresh-solver path
	// pays it on every query; the pooled path only when a pool miss
	// constructs a new solver. Benchmarks use the pair
	// (PerQueryLatency, PerSolverLatency) to project in-process speedups
	// onto the paper's external-solver setup; 0 (production) adds nothing.
	PerSolverLatency time.Duration
	// PerEncodeLatency models the cost of symbolically compiling one
	// component subtree of a semantic-commutativity query into an external
	// solver's term language. The fresh-solver path pays it four times per
	// query (both resource models, in both orders); a pooled session pays
	// it once per apply-memo miss, so warm sessions over interned
	// expressions pay nearly nothing. Benchmarks use it to project the
	// encode-memoization speedup; 0 (production) adds nothing.
	PerEncodeLatency time.Duration
	// CacheDir enables the on-disk verdict tier (internal/qcache's Disk):
	// semantic-commutativity verdicts computed by this process are written
	// to the directory and later runs pointed at the same directory start
	// warm, answering repeated queries with zero solver work. The store is
	// versioned by the digest/encoder/solver scheme and bounded by a byte
	// budget; empty (production default) keeps the cache memory-only.
	CacheDir string
	// DisableInterning compiles resource models as plain trees instead of
	// hash-consed canonical nodes. Interning is semantics-preserving (the
	// differential tests pin verdicts to this baseline); the knob exists
	// for those tests and for the interning benchmark.
	DisableInterning bool
	// Portfolio enables portfolio SAT racing for hard semantic-
	// commutativity queries (see PortfolioOptions). The zero value keeps
	// every query single-config.
	Portfolio PortfolioOptions
}

// PortfolioOptions configures portfolio SAT racing. A query first runs
// under the default solver config with a small conflict budget
// (EscalateConflicts); only on exhaustion does it escalate to a race of
// K diverse configs under the full budget, first verdict wins. Cheap
// queries — the overwhelming majority — never pay racing overhead, while
// the hosting/amavis-class queries that set cold p99 get the min-of-K
// tail. Verdicts and counterexample witnesses are byte-identical to
// single-config runs by construction (config-independent verdicts plus
// canonical witness extraction; see internal/sym).
type PortfolioOptions struct {
	// K is the number of diverse solver configs raced on escalation
	// (sat.PortfolioConfigs). Values below 2 disable racing.
	K int
	// EscalateConflicts is the conflict budget of the pre-race default-
	// config attempt; 0 means DefaultEscalateConflicts.
	EscalateConflicts int64
}

// DefaultOptions enables every analysis, matching the configuration the
// paper evaluates as "Rehearsal".
func DefaultOptions() Options {
	return Options{
		Platform:      "ubuntu",
		Commutativity: true,
		Elimination:   true,
		Pruning:       true,
	}
}

func (o Options) withDefaults() Options {
	if o.Platform == "" {
		o.Platform = "ubuntu"
	}
	if o.Provider == nil {
		o.Provider = pkgdb.DefaultCatalog()
	}
	if o.MaxSequences == 0 {
		o.MaxSequences = 20000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.SharedQueryCache == nil {
		o.SharedQueryCache = qcache.Shared()
	}
	return o
}

// PlatformFacts returns the fact set for a platform, used by the evaluator
// for $operatingsystem-style conditionals.
func PlatformFacts(platform string) map[string]puppet.Value {
	switch platform {
	case "centos":
		return map[string]puppet.Value{
			"operatingsystem":        puppet.StrV("CentOS"),
			"osfamily":               puppet.StrV("RedHat"),
			"operatingsystemrelease": puppet.StrV("7"),
			"kernel":                 puppet.StrV("Linux"),
		}
	default:
		return map[string]puppet.Value{
			"operatingsystem":        puppet.StrV("Ubuntu"),
			"osfamily":               puppet.StrV("Debian"),
			"operatingsystemrelease": puppet.StrV("14.04"),
			"kernel":                 puppet.StrV("Linux"),
		}
	}
}

// node is one vertex of the compiled resource graph.
type node struct {
	res  *puppet.Resource
	expr fs.Expr // compiled FS model, possibly pruned
	orig fs.Expr // unpruned model, used for replay and idempotence
	sum  *commute.Summary
}

// System is a loaded manifest: the catalog and the compiled resource graph
// of figure 4.
type System struct {
	Catalog *puppet.Catalog
	opts    Options
	g       *graph.Graph[*node]

	// Hash-consing counters from compilation: hits are structurally
	// repeated subtrees (across this system's resources and any manifest
	// loaded earlier in the process) that were shared instead of
	// reallocated.
	internHits   int64
	internMisses int64
}

// Load parses, evaluates and compiles a manifest.
func Load(src string, opts Options) (*System, error) {
	opts = opts.withDefaults()
	facts := opts.Facts
	if facts == nil {
		facts = PlatformFacts(opts.Platform)
	}
	cat, err := puppet.EvaluateSource(src, puppet.Config{Facts: facts, NodeName: opts.NodeName})
	if err != nil {
		return nil, err
	}
	return FromCatalog(cat, opts)
}

// FromCatalog compiles an already-evaluated catalog into a System.
func FromCatalog(cat *puppet.Catalog, opts Options) (*System, error) {
	opts = opts.withDefaults()
	provider := opts.Provider
	if opts.Context != nil {
		// Compilation is where package listings are fetched; binding the
		// caller's context means a canceled run stops waiting on the
		// listing service instead of riding out its retry budget.
		provider = pkgdb.BindContext(opts.Context, provider)
	}
	compiler := resources.NewCompiler(provider, opts.Platform)

	g := graph.New[*node]()
	byKey := make(map[string]graph.Node)
	var internHits, internMisses int64
	for _, r := range cat.Realized() {
		expr, err := compiler.Compile(r)
		if err != nil {
			return nil, err
		}
		var model fs.Expr = expr
		if !opts.DisableInterning {
			// Canonicalize the model: resources sharing package dependency
			// closures (the dominant cost, section 3.2) collapse to shared
			// subtrees, and every downstream layer — digests, the symbolic
			// encoder's apply memo, the commutativity and pruning analyses —
			// keys off node identity instead of re-walking the tree.
			h, st := fs.InternWithStats(expr)
			model = h
			internHits += st.Hits
			internMisses += st.Misses
		}
		n := g.Add(&node{res: r, expr: model, orig: model, sum: commute.Analyze(model)})
		byKey[r.Key()] = n
	}

	addEdge := func(from, to *puppet.Resource, what string) error {
		u, uok := byKey[from.Key()]
		v, vok := byKey[to.Key()]
		if !uok || !vok {
			return fmt.Errorf("%s: unresolved resource reference", what)
		}
		if u == v {
			return nil // self-dependencies via containers are ignored
		}
		if err := g.AddEdge(u, v); err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		return nil
	}

	// Dependency edges from metaparameters and chaining arrows, expanding
	// class/define-instance references to their contents.
	for _, d := range cat.Deps {
		if d.From.Type == "stage" || d.To.Type == "stage" {
			continue // handled by stage elimination below
		}
		froms, err := cat.Expand(d.From)
		if err != nil {
			return nil, fmt.Errorf("dependency at %s: %w", d.Pos, err)
		}
		tos, err := cat.Expand(d.To)
		if err != nil {
			return nil, fmt.Errorf("dependency at %s: %w", d.Pos, err)
		}
		for _, f := range froms {
			for _, t := range tos {
				if err := addEdge(f, t, fmt.Sprintf("dependency at %s", d.Pos)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Autorequire (section 3.1 footnote): a file resource auto-requires
	// the file resource managing its parent directory.
	fileByPath := make(map[fs.Path]*puppet.Resource)
	for _, r := range cat.Realized() {
		if r.Type != "file" {
			continue
		}
		path, ok := r.AttrString("path")
		if !ok {
			path = r.Title
		}
		if strings.HasPrefix(path, "/") {
			fileByPath[fs.ParsePath(path)] = r
		}
	}
	for p, child := range fileByPath {
		if parent, ok := fileByPath[p.Parent()]; ok {
			if err := addEdge(parent, child, "autorequire"); err != nil {
				return nil, err
			}
		}
	}

	// Stage elimination (section 3.1): order the declared stages by their
	// own dependencies, then add edges between the member resources of
	// ordered stage pairs.
	if err := applyStages(cat, g, byKey); err != nil {
		return nil, err
	}

	if err := g.CheckAcyclic(); err != nil {
		return nil, describeCycle(g)
	}
	return &System{Catalog: cat, opts: opts, g: g, internHits: internHits, internMisses: internMisses}, nil
}

// CycleError reports that the manifest's dependencies form a cycle (the
// composition failure of figure 3b). Resources names the offending
// resources in cycle order; tools that need a structured reason — the
// service's failed job state, the CLI's -json output — read it instead of
// parsing the message. It is a manifest error, not an infrastructure one:
// re-running cannot succeed until the manifest changes.
type CycleError struct {
	// Resources are the resources forming the cycle, in order; the
	// dependency from the last back to the first closes it.
	Resources []string
}

func (e *CycleError) Error() string {
	closed := make([]string, 0, len(e.Resources)+1)
	closed = append(closed, e.Resources...)
	if len(e.Resources) > 0 {
		closed = append(closed, e.Resources[0])
	}
	return fmt.Sprintf("dependency cycle: %s", strings.Join(closed, " -> "))
}

// describeCycle renders a dependency cycle with resource names.
func describeCycle(g *graph.Graph[*node]) error {
	var ce *graph.CycleError
	err := g.CheckAcyclicNamed(func(n *node) string { return n.res.String() })
	if !errors.As(err, &ce) {
		return err // raced mutation; report whatever the graph said
	}
	return &CycleError{Resources: ce.Names}
}

// applyStages builds the stage DAG and adds inter-stage resource edges.
func applyStages(cat *puppet.Catalog, g *graph.Graph[*node], byKey map[string]graph.Node) error {
	stages := cat.Stages()
	if len(stages) == 0 {
		// Without stage declarations every resource is in main; a resource
		// naming another stage is an error.
		for _, r := range cat.Realized() {
			if r.Stage != "main" {
				return fmt.Errorf("%s: undeclared stage %q", r, r.Stage)
			}
		}
		return nil
	}
	known := map[string]bool{"main": true}
	for _, s := range stages {
		known[strings.ToLower(s.Title)] = true
	}
	for _, r := range cat.Realized() {
		if !known[r.Stage] {
			return fmt.Errorf("%s: undeclared stage %q", r, r.Stage)
		}
	}
	// Stage ordering graph.
	sg := graph.New[string]()
	stageNode := make(map[string]graph.Node)
	ensure := func(name string) graph.Node {
		if n, ok := stageNode[name]; ok {
			return n
		}
		n := sg.Add(name)
		stageNode[name] = n
		return n
	}
	ensure("main")
	for _, s := range stages {
		ensure(strings.ToLower(s.Title))
	}
	for _, d := range cat.Deps {
		if d.From.Type != "stage" || d.To.Type != "stage" {
			if d.From.Type == "stage" || d.To.Type == "stage" {
				return fmt.Errorf("dependency at %s mixes stages and resources", d.Pos)
			}
			continue
		}
		from, ok := stageNode[strings.ToLower(d.From.Title)]
		if !ok {
			return fmt.Errorf("dependency at %s: undeclared stage %q", d.Pos, d.From.Title)
		}
		to, ok := stageNode[strings.ToLower(d.To.Title)]
		if !ok {
			return fmt.Errorf("dependency at %s: undeclared stage %q", d.Pos, d.To.Title)
		}
		if err := sg.AddEdge(from, to); err != nil {
			return err
		}
	}
	if err := sg.CheckAcyclic(); err != nil {
		return fmt.Errorf("stage ordering: %w", err)
	}
	// Members per stage.
	members := make(map[string][]graph.Node)
	for _, r := range cat.Realized() {
		members[r.Stage] = append(members[r.Stage], byKey[r.Key()])
	}
	// For every ordered stage pair (transitively), add all member edges.
	for name, n := range stageNode {
		for later := range sg.Descendants(n) {
			laterName := sg.Label(later)
			for _, u := range members[name] {
				for _, v := range members[laterName] {
					if err := g.AddEdge(u, v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Size returns the number of resources in the compiled graph.
func (s *System) Size() int { return s.g.Len() }

// ResourceNames returns the resource names in declaration order.
func (s *System) ResourceNames() []string {
	var out []string
	for _, n := range s.g.Nodes() {
		out = append(out, s.g.Label(n).res.String())
	}
	return out
}

// Dot renders the resource graph in Graphviz format.
func (s *System) Dot() string {
	return s.g.Dot(func(n *node) string { return n.res.String() })
}

// Graph exposes a copy of the resource graph labeled with resource names,
// for inspection by tools.
func (s *System) Graph() *graph.Graph[string] {
	out := graph.New[string]()
	m := make(map[graph.Node]graph.Node)
	for _, n := range s.g.Nodes() {
		m[n] = out.Add(s.g.Label(n).res.String())
	}
	for _, n := range s.g.Nodes() {
		for _, v := range s.g.Succs(n) {
			_ = out.AddEdge(m[n], m[v])
		}
	}
	return out
}

// ExprGraph exposes the resource graph labeled with the unpruned FS
// models, as consumed by the dynamic baseline (package dynamic).
func (s *System) ExprGraph() *graph.Graph[fs.Expr] {
	out := graph.New[fs.Expr]()
	m := make(map[graph.Node]graph.Node)
	for _, n := range s.g.Nodes() {
		m[n] = out.Add(s.g.Label(n).orig)
	}
	for _, n := range s.g.Nodes() {
		for _, v := range s.g.Succs(n) {
			_ = out.AddEdge(m[n], m[v])
		}
	}
	return out
}

// ResourceDigests returns the Merkle digest of every resource's compiled
// (unpruned) model, keyed by resource name — the input internal/diff
// consumes to delta two manifest versions. Digests are content addresses
// of the compiled models, so they see through textual changes that
// compile identically and catch semantic changes that leave the
// declaration text untouched (a changed variable flowing into another
// resource's template).
func (s *System) ResourceDigests() map[string]fs.Digest {
	out := make(map[string]fs.Digest, s.g.Len())
	for _, n := range s.g.Nodes() {
		l := s.g.Label(n)
		out[l.res.String()] = fs.DigestExpr(l.orig)
	}
	return out
}

// TotalPaths returns the number of modeled paths before any analysis — the
// unpruned "paths per state" of figure 11a.
func (s *System) TotalPaths() int {
	dom := make(fs.PathSet)
	for _, n := range s.g.Nodes() {
		dom.AddAll(fs.Dom(s.g.Label(n).orig))
	}
	return len(dom)
}
