package core

import (
	"fmt"
	"time"

	"repro/internal/fs"
	"repro/internal/sat"
	"repro/internal/sym"
)

// sequenceExpr returns the manifest as a single FS expression: one valid
// ordering of the (unpruned) resource models. By section 5 this is only
// meaningful for deterministic manifests, where all orderings are
// equivalent.
func (s *System) sequenceExpr() (fs.Expr, error) {
	order, err := s.g.TopoSort()
	if err != nil {
		return nil, err
	}
	exprs := make([]fs.Expr, 0, len(order))
	for _, n := range order {
		exprs = append(exprs, s.g.Label(n).orig)
	}
	return fs.SeqAll(exprs...), nil
}

// IdempotenceResult is the outcome of CheckIdempotence.
type IdempotenceResult struct {
	Idempotent     bool
	Counterexample *sym.Counterexample // input where e and e;e differ
	Duration       time.Duration
}

// CheckIdempotence decides e ≡ e; e for the manifest's sequenced
// expression (section 5). The caller should establish determinism first:
// the check picks one valid order and is only meaningful when all orders
// are equivalent.
func (s *System) CheckIdempotence() (*IdempotenceResult, error) {
	start := time.Now()
	e, err := s.sequenceExpr()
	if err != nil {
		return nil, err
	}
	idem, cex, err := sym.Idempotent(e, sym.Options{})
	if err != nil {
		return nil, err
	}
	return &IdempotenceResult{
		Idempotent:     idem,
		Counterexample: cex,
		Duration:       time.Since(start),
	}, nil
}

// InvariantResult is the outcome of an invariant check.
type InvariantResult struct {
	Holds bool
	// Input violates the invariant when Holds is false: applying the
	// manifest from Input succeeds but leaves the path in another state.
	Input    fs.State
	Duration time.Duration
}

// CheckFileInvariant verifies the section-5 invariant "whenever the
// manifest succeeds, path is a file with exactly the given content" —
// useful to detect one resource silently overwriting another's file.
func (s *System) CheckFileInvariant(path fs.Path, content string) (*InvariantResult, error) {
	start := time.Now()
	e, err := s.sequenceExpr()
	if err != nil {
		return nil, err
	}
	dom := fs.Dom(e)
	dom.Add(path)
	v := sym.NewVocabWithLiterals(dom, []string{content}, e)
	en := sym.NewEncoder(v)
	if s.opts.Timeout > 0 {
		en.S.SetDeadline(time.Now().Add(s.opts.Timeout))
	}
	input := en.FreshInputState("in")
	out := en.Apply(e, input)
	want := sym.PathState{
		Kind:    en.S.EnumConst(v.KindSort, sym.KindFile),
		Content: en.S.EnumConst(v.ContentSort, v.LiteralToken(content)),
	}
	got := out.Lookup(path)
	holds := en.S.And(
		en.S.EnumEq(got.Kind, want.Kind),
		en.S.EnumEq(got.Content, want.Content),
	)
	en.S.Assert(en.S.And(out.Ok, en.S.Not(holds)))
	switch en.S.Check() {
	case sat.Unsat:
		return &InvariantResult{Holds: true, Duration: time.Since(start)}, nil
	case sat.Unknown:
		return nil, ErrTimeout
	}
	in, err := en.ModelState(input)
	if err != nil {
		return nil, err
	}
	// Replay as a sanity check: the manifest must succeed from in and
	// leave the path in a different state.
	outState, ok := fs.Eval(e, in)
	if !ok {
		return nil, fmt.Errorf("core: invariant model failed to replay (run errored)")
	}
	if c, present := outState[path]; present && c == fs.FileContent(content) {
		return nil, fmt.Errorf("core: invariant model failed to replay (state matches)")
	}
	return &InvariantResult{Holds: false, Input: in, Duration: time.Since(start)}, nil
}
