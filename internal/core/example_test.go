package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// Verify the paper's figure-3a manifest: a package and the configuration
// file it must precede, with and without the dependency.
func Example() {
	manifest := `
file {'/etc/apache2/sites-available/000-default.conf':
  content => '<VirtualHost *:80></VirtualHost>',
}
package {'apache2': ensure => present }
`
	sys, err := core.Load(manifest, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deterministic:", res.Deterministic)

	fixed := manifest + `
Package['apache2'] -> File['/etc/apache2/sites-available/000-default.conf']
`
	sys, err = core.Load(fixed, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err = sys.CheckDeterminism()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixed deterministic:", res.Deterministic)
	idem, err := sys.CheckIdempotence()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixed idempotent:", idem.Idempotent)
	// Output:
	// deterministic: false
	// fixed deterministic: true
	// fixed idempotent: true
}

// SuggestRepair finds the missing dependency of a non-deterministic
// manifest (the manifest-repair direction of the paper's section 9).
func ExampleSystem_SuggestRepair() {
	sys, err := core.Load(`
package {'ntp': ensure => present }
file {'/etc/ntp.conf': content => 'server 0.pool.ntp.org' }
`, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	repair, err := sys.SuggestRepair()
	if err != nil {
		log.Fatal(err)
	}
	for _, edge := range repair.Edges {
		fmt.Println(edge)
	}
	fmt.Println("verifies:", repair.Result.Deterministic)
	// Output:
	// Package[ntp] -> File[/etc/ntp.conf]
	// verifies: true
}

// Idempotence checking catches the paper's figure-3d bug: copying a file
// and then deleting the source fails on the second run.
func ExampleSystem_CheckIdempotence() {
	sys, err := core.Load(`
file {'/dst': source => '/src' }
file {'/src': ensure => absent }
File['/dst'] -> File['/src']
`, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	idem, err := sys.CheckIdempotence()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("idempotent:", idem.Idempotent)
	// Output:
	// idempotent: false
}

// File invariants (section 5) prove that no resource silently overwrites
// another's file.
func ExampleSystem_CheckFileInvariant() {
	sys, err := core.Load(`
file {'/etc/motd': content => 'welcome' }
`, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	inv, err := sys.CheckFileInvariant("/etc/motd", "welcome")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("holds:", inv.Holds)
	// Output:
	// holds: true
}
