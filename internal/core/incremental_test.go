package core_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/qcache"
)

// verdict is the comparable outcome of one determinacy check.
type verdict struct {
	deterministic bool
	cex           *core.Counterexample
	eliminated    int
	sequences     int
	err           string
}

func runCheck(t *testing.T, source string, opts core.Options) verdict {
	t.Helper()
	s, err := core.Load(source, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		return verdict{err: err.Error()}
	}
	return verdict{
		deterministic: res.Deterministic,
		cex:           res.Counterexample,
		eliminated:    res.Stats.Eliminated,
		sequences:     res.Stats.Sequences,
	}
}

// TestIncrementalVerdictsMatchFresh is the acceptance gate of the
// incremental backend: on the full example suite, the pooled/incremental
// path must produce verdicts — including counterexamples — identical to the
// fresh-solver path, at 1 and at 8 workers. Every run gets a private query
// cache: with the shared cache, the first run would compute all verdicts
// and the others would merely read them back, making the comparison
// vacuous.
func TestIncrementalVerdictsMatchFresh(t *testing.T) {
	core.ResetSolverPools()
	base := core.DefaultOptions()
	base.SemanticCommute = true
	base.Timeout = time.Minute
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			fresh := base
			fresh.FreshSolvers = true
			fresh.Parallelism = 1
			fresh.SharedQueryCache = qcache.New()
			want := runCheck(t, b.Source, fresh)
			if want.err == "" && want.deterministic != b.Deterministic {
				t.Fatalf("fresh verdict %v disagrees with expected %v",
					want.deterministic, b.Deterministic)
			}
			for _, workers := range []int{1, 8} {
				pooled := base
				pooled.FreshSolvers = false
				pooled.Parallelism = workers
				pooled.SharedQueryCache = qcache.New()
				got := runCheck(t, b.Source, pooled)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: pooled verdict diverges from fresh:\npooled: %+v\nfresh:  %+v",
						workers, got, want)
				}
			}
		})
	}
}

// TestSolverPoolReuse: a check with several semantic queries must actually
// reuse pooled solvers, and re-checking the same manifest must draw on the
// warm pool from the previous check.
func TestSolverPoolReuse(t *testing.T) {
	core.ResetSolverPools()
	opts := core.DefaultOptions()
	opts.SemanticCommute = true
	opts.Parallelism = 1
	opts.Timeout = 2 * time.Minute
	opts.SharedQueryCache = qcache.New()
	// Three packages whose dependency closures all pull in perl: no pair is
	// syntactically commuting, so each of the three pairs costs one semantic
	// query.
	src := `
package {'git': ensure => present }
package {'amavisd-new': ensure => present }
package {'spamassassin': ensure => present }
`
	s, err := core.Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("expected deterministic")
	}
	if res.Stats.SemQueries < 2 {
		t.Skipf("only %d semantic queries; cannot observe reuse", res.Stats.SemQueries)
	}
	// With one worker, every query after the first reuses the same solver.
	if res.Stats.SolverReuses != res.Stats.SemQueries-1 {
		t.Errorf("SolverReuses = %d, want %d (queries-1 at 1 worker)",
			res.Stats.SolverReuses, res.Stats.SemQueries-1)
	}
	// A second check of the same manifest starts from a warm pool: its very
	// first query already reuses a solver.
	opts2 := opts
	opts2.SharedQueryCache = qcache.New() // force re-solving, not cache reads
	s2, err := core.Load(src, opts2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.SemQueries > 0 && res2.Stats.SolverReuses != res2.Stats.SemQueries {
		t.Errorf("warm pool: SolverReuses = %d, want %d (all queries)",
			res2.Stats.SolverReuses, res2.Stats.SemQueries)
	}
	if res2.Deterministic != res.Deterministic {
		t.Error("warm-pool verdict diverged")
	}
}

// TestFreshSolversReportNoReuse: the baseline path must not touch the pool.
func TestFreshSolversReportNoReuse(t *testing.T) {
	core.ResetSolverPools()
	opts := core.DefaultOptions()
	opts.SemanticCommute = true
	opts.FreshSolvers = true
	opts.Timeout = 2 * time.Minute
	opts.SharedQueryCache = qcache.New()
	s, err := core.Load(`
package {'git': ensure => present }
package {'amavisd-new': ensure => present }
`, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SolverReuses != 0 || res.Stats.LearntRetained != 0 {
		t.Errorf("fresh path reported pool activity: reuses=%d learnt=%d",
			res.Stats.SolverReuses, res.Stats.LearntRetained)
	}
}
