package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/commute"
	"repro/internal/fs"
	"repro/internal/qcache"
	"repro/internal/sat"
	"repro/internal/sym"
)

// DefaultCommuteBudget bounds SAT conflicts per semantic-commutativity
// query. Every query runs under this bound — with or without a deadline —
// so one pathological pair can never hang elimination; an inconclusive
// query counts as non-commuting, which is always sound (it only forces
// the exact analysis to do more work).
const DefaultCommuteBudget = 200_000

// DefaultEscalateConflicts is the default pre-race conflict budget when
// portfolio racing is enabled: a query that the default config decides
// within this many conflicts (the overwhelming majority) never pays any
// racing overhead. Chosen well below the conflict counts of the
// hosting/amavis-class queries that set cold p99, and well above the
// single-digit conflict counts of typical pairs.
const DefaultEscalateConflicts = 2_000

// runParallel executes task(0..n-1) on up to workers goroutines and waits
// for all of them. workers <= 1 runs inline, keeping single-threaded runs
// free of goroutine overhead. When ctx ends, no further tasks are started
// — in-flight tasks finish (every query is budget-bounded, so "finish" is
// prompt) and the call still joins every worker before returning, so a
// canceled run never leaks a goroutine.
func runParallel(ctx context.Context, workers, n int, task func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	done := func() bool { return ctx != nil && ctx.Err() != nil }
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done() {
				return
			}
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !done() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// commuteChecker decides whether two resource models commute: the fast
// syntactic check of figure 9b, optionally strengthened by a solver-based
// equivalence check of the two orders (Options.SemanticCommute). It is
// safe for concurrent use: the syntactic summaries are immutable, each
// solver query constructs an isolated encoder+solver, and verdicts are
// memoized in the process-wide content-addressed cache under singleflight
// deduplication. A per-check local memo keeps the per-check hit/query
// statistics honest (prefetched pairs are not double-counted when the
// sequential analysis re-reads them) and avoids shared-cache lock traffic
// on the hot path.
type commuteChecker struct {
	semantic      bool
	budget        int64
	workers       int
	latency       time.Duration
	solverLatency time.Duration
	encodeLatency time.Duration
	cache         *qcache.Cache
	pool          *sessionPool // nil: build an isolated solver per query

	// Portfolio racing (nil/empty when disabled): the diverse config
	// list, the pre-race conflict budget, and — on the pooled path — one
	// warm session pool per config so losing configs keep their learnt
	// state across races. satm accumulates SAT search counters across
	// every query, raced or not.
	portfolio   []sat.Config
	escalate    int64
	cfgPools    []*sessionPool
	satm        *sym.Metrics
	races       atomic.Int64   // portfolio races run
	escalations atomic.Int64   // default-config attempts that exhausted the escalation budget
	wins        []atomic.Int64 // races won, per portfolio config index

	// Cancellation and fail-fast: ctx derives from Options.Context and is
	// additionally canceled by the first hard error (a worker panic), so
	// in-flight pairwise fan-outs stop scheduling promptly. hardErr keeps
	// the first hard error; soft errors (budget exhaustion) never land
	// here — they soundly degrade to "non-commuting" instead.
	ctx    context.Context
	cancel context.CancelFunc
	failMu sync.Mutex
	hard   error

	local      sync.Map     // qcache.Key -> bool, this check's decisions
	queries    atomic.Int64 // solver queries this check executed
	hits       atomic.Int64 // decisions served by the shared cache
	reuses     atomic.Int64 // queries answered by a reused pooled solver
	diskHits   atomic.Int64 // decisions served by the on-disk verdict tier
	remoteHits atomic.Int64 // decisions served by the cluster verdict ring
	panics     atomic.Int64 // worker panics recovered (each aborts the check)

	// Differential accounting (diffAware is set by the VerifyDiff path).
	// Each distinct pair key is classified exactly once, on its first
	// decision: inherited from a warm tier vs solved this run.
	diffAware       bool
	classified      sync.Map     // qcache.Key -> struct{}, pairs already classified
	reusedPairs     atomic.Int64 // unchanged×unchanged pairs answered warm
	reverifiedPairs atomic.Int64 // pairs that executed a solver query
	inheritMisses   atomic.Int64 // unchanged×unchanged pairs that had to solve
}

// classify records one distinct semantic pair's differential outcome.
// solved reports whether the decision executed a solver query this run
// (as opposed to being answered from the memory or disk verdict tier);
// bothUnchanged whether both members are digest-unchanged against the
// base manifest. A changed pair answered warm (possible when another
// manifest already solved the same content) counts in neither bucket —
// it was neither inherited from the base run nor re-verified.
func (c *commuteChecker) classify(key qcache.Key, bothUnchanged, solved bool) {
	if !c.diffAware {
		return
	}
	if _, dup := c.classified.LoadOrStore(key, struct{}{}); dup {
		return
	}
	switch {
	case solved:
		c.reverifiedPairs.Add(1)
		if bothUnchanged {
			c.inheritMisses.Add(1)
		}
	case bothUnchanged:
		c.reusedPairs.Add(1)
	}
}

// solveTestHook, when non-nil, runs inside every semantic-commutativity
// compute (under the worker's panic recovery). Fault-injection tests use
// it to simulate solver crashes and slow queries; production never sets
// it.
var solveTestHook func(e1, e2 fs.Expr)

// fail records err as the check's hard error (first caller wins) and
// cancels the checker's context so concurrent workers stop picking up new
// queries.
func (c *commuteChecker) fail(err error) {
	c.failMu.Lock()
	if c.hard == nil {
		c.hard = err
	}
	c.failMu.Unlock()
	c.cancel()
}

// err returns the error the check must abort with: the first recorded
// hard error, or ErrCanceled when the caller's context ended. nil means
// the check may keep going.
func (c *commuteChecker) err() error {
	c.failMu.Lock()
	hard := c.hard
	c.failMu.Unlock()
	if hard != nil {
		return hard
	}
	if cerr := c.ctx.Err(); cerr != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, cerr)
	}
	return nil
}

func newCommuteChecker(opts Options) *commuteChecker {
	cache := opts.SharedQueryCache
	if cache == nil {
		cache = qcache.Shared()
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = 1
	}
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	cc := &commuteChecker{
		ctx:           ctx,
		cancel:        cancel,
		semantic:      opts.SemanticCommute,
		budget:        DefaultCommuteBudget,
		workers:       workers,
		latency:       opts.PerQueryLatency,
		solverLatency: opts.PerSolverLatency,
		encodeLatency: opts.PerEncodeLatency,
		cache:         cache,
		satm:          &sym.Metrics{},
	}
	if opts.Portfolio.K >= 2 {
		cc.portfolio = sat.PortfolioConfigs(opts.Portfolio.K)
		cc.escalate = opts.Portfolio.EscalateConflicts
		if cc.escalate <= 0 {
			cc.escalate = DefaultEscalateConflicts
		}
		cc.wins = make([]atomic.Int64, len(cc.portfolio))
	}
	return cc
}

// usePool routes this check's solver queries through the incremental
// session pool for the vocabulary. The vocabulary must span every
// expression the check can query (checkDeterminism builds it from the full
// pre-analysis expression set; elimination and pruning only shrink
// expressions, and a query over a superset domain decides the same
// equivalence — see internal/sym's session documentation).
func (c *commuteChecker) usePool(v *sym.Vocab) {
	c.pool = poolFor(v)
	if len(c.portfolio) > 1 {
		// One warm pool per portfolio config; index 0 (the default
		// config) aliases c.pool, so the escalating query's session races
		// with its learnt clauses intact.
		c.cfgPools = make([]*sessionPool, len(c.portfolio))
		c.cfgPools[0] = c.pool
		for i := 1; i < len(c.portfolio); i++ {
			c.cfgPools[i] = poolForConfig(v, c.portfolio[i])
		}
	}
}

// solve runs one semantic equivalence query, through the pool when one is
// attached. The modeled solver-construction latency (PerSolverLatency) is
// paid per query on the fresh path but only on pool misses when pooling;
// the modeled encode latency (PerEncodeLatency) is paid four times per
// fresh query (both models, both orders) but only per apply-memo miss on a
// pooled session — the subtree memoization the latency model projects.
// With portfolio racing enabled, the first attempt runs the default
// config under the small escalation budget; only exhaustion (the
// hosting/amavis-class hard queries) escalates to a k-way race under the
// full budget, first verdict wins, losers cancelled. Modeled latencies
// apply to the pre-race attempt only — the portfolio benchmark models
// race latency itself from per-config conflict counts.
func (c *commuteChecker) solve(e1, e2 fs.Expr) (bool, error) {
	if c.pool != nil {
		sess, created := c.pool.acquire()
		defer c.pool.release(sess)
		if created {
			if c.solverLatency > 0 {
				time.Sleep(c.solverLatency) // modeled solver startup
			}
		} else {
			c.reuses.Add(1)
		}
		budget := c.budget
		if len(c.cfgPools) > 1 {
			budget = c.escalate
		}
		before := sess.ApplyMisses()
		eq, _, err := sess.Commutes(e1, e2, sym.Options{Budget: budget, Metrics: c.satm})
		if c.encodeLatency > 0 {
			if walked := sess.ApplyMisses() - before; walked > 0 {
				time.Sleep(time.Duration(walked) * c.encodeLatency)
			}
		}
		if len(c.cfgPools) > 1 && errors.Is(err, sym.ErrBudget) {
			return c.racePooled(e1, e2, sess)
		}
		return eq, err
	}
	if c.solverLatency > 0 {
		time.Sleep(c.solverLatency) // modeled per-query solver construction
	}
	if c.encodeLatency > 0 {
		time.Sleep(4 * c.encodeLatency) // e1;e2 and e2;e1, compiled from scratch
	}
	budget := c.budget
	if len(c.portfolio) > 1 {
		budget = c.escalate
	}
	eq, _, err := sym.Commutes(e1, e2, sym.Options{Budget: budget, Metrics: c.satm})
	if len(c.portfolio) > 1 && errors.Is(err, sym.ErrBudget) {
		c.escalations.Add(1)
		c.races.Add(1)
		eq, _, w, rerr := sym.PortfolioCommutes(e1, e2, c.portfolio, sym.Options{Budget: c.budget, Metrics: c.satm})
		if w >= 0 {
			c.wins[w].Add(1)
		}
		return eq, rerr
	}
	return eq, err
}

// racePooled escalates one pooled query to the portfolio: one warm
// session per config (the already-held default session races as leg 0),
// full budget, first verdict wins. Every leg's session returns to its
// pool afterwards, win or lose.
func (c *commuteChecker) racePooled(e1, e2 fs.Expr, defaultSess *sym.Session) (bool, error) {
	c.escalations.Add(1)
	c.races.Add(1)
	sessions := make([]*sym.Session, len(c.cfgPools))
	sessions[0] = defaultSess
	for i := 1; i < len(c.cfgPools); i++ {
		s, created := c.cfgPools[i].acquire()
		if !created {
			c.reuses.Add(1)
		}
		sessions[i] = s
		defer c.cfgPools[i].release(s)
	}
	eq, _, w, err := sym.RaceCommutes(sessions, e1, e2, sym.Options{Budget: c.budget, Metrics: c.satm})
	if w >= 0 {
		c.wins[w].Add(1)
	}
	return eq, err
}

// commutes reports whether a and b commute (a;b ≡ b;a). After the check's
// context ends (caller cancellation or a prior hard error) it answers
// false without touching the solver — the value is irrelevant by then,
// because the check aborts with the recorded error instead of a verdict.
func (c *commuteChecker) commutes(a, b *workNode) bool {
	if commute.Commute(a.sum, b.sum) {
		return true
	}
	if !c.semantic {
		return false
	}
	if c.ctx.Err() != nil {
		return false
	}
	key := qcache.PairKey(a.digest(), b.digest(), c.budget)
	if v, ok := c.local.Load(key); ok {
		return v.(bool)
	}
	v, src, err := c.cache.Do(key, func() (val bool, err error) {
		// Panic isolation: a crash inside the encoder or solver is
		// recovered here, on the goroutine that hit it, and converted into
		// a typed error — it never kills the process, never strands the
		// singleflight waiters, and never leaks the worker.
		defer func() {
			if r := recover(); r != nil {
				c.panics.Add(1)
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		c.queries.Add(1)
		if solveTestHook != nil {
			solveTestHook(a.expr, b.expr)
		}
		if c.latency > 0 {
			time.Sleep(c.latency) // modeled external-solver round trip
		}
		return c.solve(a.expr, b.expr)
	})
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			// A panic is a bug or an injected fault, not an inconclusive
			// query: abort the whole check rather than fold it into a
			// verdict.
			c.fail(pe)
			return false
		}
		// Inconclusive (budget exhausted): non-commuting is always sound.
		// The shared cache deliberately keeps no entry — a later check can
		// retry — but this check memoizes the decision locally so repeated
		// asks of the pair stay consistent and cheap.
		c.classify(key, a.unchanged && b.unchanged, true)
		c.local.Store(key, false)
		return false
	}
	switch src {
	case qcache.SrcDisk:
		c.diskHits.Add(1)
		c.hits.Add(1)
	case qcache.SrcRemote:
		c.remoteHits.Add(1)
		c.hits.Add(1)
	case qcache.SrcMemory, qcache.SrcCoalesced:
		c.hits.Add(1)
	}
	// SrcCoalesced means this process ran the solver for the key (on a
	// concurrent goroutine), so it re-verified the pair rather than
	// inheriting it.
	c.classify(key, a.unchanged && b.unchanged, src == qcache.SrcComputed || src == qcache.SrcCoalesced)
	c.local.Store(key, v)
	return v
}

// pair is one candidate commutativity query.
type pair struct{ a, b *workNode }

// prefetch warms the checker's memo for the given pairs by fanning the
// semantic queries across the worker pool. Pairs the syntactic check
// already proves commuting are skipped without a worker, and symmetric
// duplicates collapse to one query via the content-addressed key.
// Prefetching is a pure cache warm-up: the authoritative sequential
// analysis re-asks each pair and reads the identical memoized verdict, so
// results do not depend on worker count or scheduling.
func (c *commuteChecker) prefetch(pairs []pair) {
	if !c.semantic || len(pairs) == 0 {
		return
	}
	seen := make(map[qcache.Key]struct{}, len(pairs))
	todo := pairs[:0]
	for _, p := range pairs {
		if commute.Commute(p.a.sum, p.b.sum) {
			continue
		}
		key := qcache.PairKey(p.a.digest(), p.b.digest(), c.budget)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		todo = append(todo, p)
	}
	runParallel(c.ctx, c.workers, len(todo), func(i int) {
		c.commutes(todo[i].a, todo[i].b)
	})
}
