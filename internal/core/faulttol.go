package core

// Fault tolerance for the analysis engine: typed errors that let callers
// distinguish "the manifest is non-deterministic" (a verdict) from "the
// analysis could not run" (infrastructure), plus the panic-isolation error
// carrying a worker's recovered stack. The cancellation and fail-fast
// machinery itself lives on commuteChecker (parallel.go); these are the
// types it surfaces.

import (
	"errors"
	"fmt"

	"repro/internal/pkgdb"
)

// ErrCanceled reports that the analysis stopped because the caller's
// context (Options.Context) was canceled before a verdict was reached.
// Like ErrTimeout it is an infrastructure outcome, not a verdict: the
// manifest was neither proven deterministic nor non-deterministic.
var ErrCanceled = errors.New("core: analysis canceled")

// PanicError reports that a worker goroutine panicked during a semantic-
// commutativity query. The panic is recovered inside the worker — it never
// crashes the process or strands the worker pool — and the first one aborts
// the check with this error, carrying the recovered value and stack for
// diagnosis. A panic means a bug (or an injected fault), so the check
// refuses to report a verdict built on top of it.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: worker panic: %v", e.Value)
}

// IsInfraError reports whether err is an infrastructure failure — the
// analysis machinery could not complete — rather than a verdict or an
// input error. Callers use it to pick exit codes and retry policy:
// re-running the same check may succeed, whereas a manifest or verdict
// error is stable.
func IsInfraError(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) || errors.Is(err, pkgdb.ErrUnavailable)
}
