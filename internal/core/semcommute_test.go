package core

import (
	"testing"
	"time"
)

// Two packages whose dependency closures overlap (git and amavisd-new
// both pull in perl): the syntactic check cannot prove the shared
// guarded install blocks commute, so the plain configuration must fall
// back to enumerating and solving; the semantic-commutativity extension
// proves the pair commutes and collapses the exploration to a single
// linearization.
const overlappingClosures = `
package {'git': ensure => present }
package {'amavisd-new': ensure => present }
`

func TestOverlappingClosuresDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.Timeout = 2 * time.Minute
	s, err := Load(overlappingClosures, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatalf("overlapping closures should be deterministic: %+v", res.Counterexample)
	}
	baselineSeqs := res.Stats.Sequences

	opts.SemanticCommute = true
	s2, err := Load(overlappingClosures, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Deterministic {
		t.Fatal("semantic commute changed the verdict")
	}
	// With the semantic check, the two resources commute outright: both
	// are eliminated and no sequence needs solving.
	if res2.Stats.Eliminated != 2 {
		t.Errorf("semantic commute should eliminate both resources, eliminated=%d",
			res2.Stats.Eliminated)
	}
	if res2.Stats.Sequences > baselineSeqs {
		t.Errorf("semantic commute explored more sequences (%d) than baseline (%d)",
			res2.Stats.Sequences, baselineSeqs)
	}
}

// Semantic commutativity must never turn a genuinely conflicting pair
// into a commuting one.
func TestSemanticCommuteKeepsRealConflicts(t *testing.T) {
	opts := DefaultOptions()
	opts.SemanticCommute = true
	opts.Timeout = time.Minute
	s, err := Load(fig3c, opts) // golang-go install vs perl removal
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic {
		t.Fatal("fig 3c must stay non-deterministic under semantic commute")
	}
}
