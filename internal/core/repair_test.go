package core

import (
	"strings"
	"testing"
)

func TestRepairFig3a(t *testing.T) {
	s := load(t, fig3aBroken)
	repair, err := s.SuggestRepair()
	if err != nil {
		t.Fatal(err)
	}
	if repair == nil {
		t.Fatal("expected a repair for the broken manifest")
	}
	if len(repair.Edges) != 1 {
		t.Fatalf("edges: %v", repair.Edges)
	}
	want := "Package[apache2] -> File[/etc/apache2/sites-available/000-default.conf]"
	if repair.Edges[0] != want {
		t.Errorf("suggested %q, want %q", repair.Edges[0], want)
	}
	if !repair.Result.Deterministic {
		t.Error("repair result not deterministic")
	}
}

func TestRepairAlreadyDeterministic(t *testing.T) {
	s := load(t, fig3aFixed)
	repair, err := s.SuggestRepair()
	if err != nil {
		t.Fatal(err)
	}
	if repair != nil {
		t.Fatalf("deterministic manifest repaired: %v", repair.Edges)
	}
}

// Figure 3c is repairable to a deterministic ordering in either
// direction; the repaired manifest must itself verify when re-loaded with
// the suggested chaining appended. (The paper's chosen orientation,
// remove-perl before install-go, is deterministic but non-idempotent —
// covered by TestFig3cOrderedNotIdempotent; the repair search may pick the
// other orientation, which converges.)
func TestRepairFig3cVerifies(t *testing.T) {
	s := load(t, fig3c)
	repair, err := s.SuggestRepair()
	if err != nil {
		t.Fatal(err)
	}
	if repair == nil || len(repair.Edges) != 1 {
		t.Fatalf("repair: %+v", repair)
	}
	chain := repair.Edges[0]
	if !strings.Contains(chain, "Package[") {
		t.Fatalf("unexpected edge %q", chain)
	}
	src := fig3c + "\n" + toChainSyntax(chain) + "\n"
	s2 := load(t, src)
	det, err := s2.CheckDeterminism()
	if err != nil || !det.Deterministic {
		t.Fatalf("repaired fig3c not deterministic: %v %v", det, err)
	}
}

// toChainSyntax converts "Package[ntp] -> File[/x]" into valid Puppet
// chaining syntax with quoted titles: Package['ntp'] -> File['/x'].
func toChainSyntax(edge string) string {
	out := strings.ReplaceAll(edge, "[", "['")
	return strings.ReplaceAll(out, "]", "']")
}
