package core

import (
	"fmt"

	"repro/internal/commute"
	"repro/internal/fs"
	"repro/internal/graph"
)

// Repair is a suggested fix for a non-deterministic manifest: dependency
// edges that, when added, make the determinacy check pass. This implements
// the manifest-repair direction the paper's conclusion proposes (section
// 9) on top of the determinacy analysis.
type Repair struct {
	// Edges are the suggested dependencies in Puppet chaining syntax,
	// e.g. "Package[ntp] -> File[/etc/ntp.conf]".
	Edges []string
	// Result is the verification result of the repaired manifest.
	Result *DeterminismResult
}

// maxRepairEdges bounds the greedy search.
const maxRepairEdges = 8

// SuggestRepair searches for a small set of dependency edges that makes
// the manifest deterministic. It greedily picks an unordered,
// non-commuting resource pair, tries both orientations (skipping any that
// would create a cycle), keeps an orientation whose augmented graph
// verifies — or, when neither verifies outright, keeps one and continues.
// It returns nil when the manifest is already deterministic and an error
// when no repair within the budget verifies.
//
// A suggested repair restores determinism only; the caller should still
// check idempotence (figure 3c's silent failure is repairable to a
// deterministic but non-idempotent manifest, which the paper argues
// should be rejected outright).
func (s *System) SuggestRepair() (*Repair, error) {
	base, err := s.CheckDeterminism()
	if err != nil {
		return nil, err
	}
	if base.Deterministic {
		return nil, nil
	}

	work := s.cloneSystem()
	var added []string
	for len(added) < maxRepairEdges {
		u, v, found := work.conflictingPair()
		if !found {
			return nil, fmt.Errorf("core: non-deterministic but no unordered conflicting pair found")
		}
		type candidate struct {
			sys   *System
			res   *DeterminismResult
			edge  string
			fresh bool // the repaired manifest succeeds on a fresh machine
		}
		var verifying []candidate
		var fallback *candidate
		for _, dir := range [][2]graph.Node{{u, v}, {v, u}} {
			cand := work.cloneSystem()
			if err := cand.g.AddEdge(dir[0], dir[1]); err != nil {
				continue
			}
			if cand.g.CheckAcyclic() != nil {
				continue
			}
			res, err := cand.CheckDeterminism()
			if err != nil {
				return nil, err
			}
			edge := fmt.Sprintf("%s -> %s",
				cand.g.Label(dir[0]).res, cand.g.Label(dir[1]).res)
			c := candidate{sys: cand, res: res, edge: edge, fresh: cand.succeedsFromEmpty()}
			if res.Deterministic {
				verifying = append(verifying, c)
			} else if fallback == nil || (c.fresh && !fallback.fresh) {
				fallback = &c
			}
		}
		// Both orientations may verify: an ordering that reliably errors is
		// deterministic too. Prefer one that also succeeds on a fresh
		// machine — the fix a human would write.
		if len(verifying) > 0 {
			best := verifying[0]
			for _, c := range verifying[1:] {
				if c.fresh && !best.fresh {
					best = c
				}
			}
			return &Repair{Edges: append(added, best.edge), Result: best.res}, nil
		}
		if fallback == nil {
			return nil, fmt.Errorf("core: conflicting pair %s / %s cannot be ordered without a cycle",
				work.g.Label(u).res, work.g.Label(v).res)
		}
		// Keep one orientation and continue resolving remaining conflicts.
		work = fallback.sys
		added = append(added, fallback.edge)
	}
	return nil, fmt.Errorf("core: no repair found within %d added edges", maxRepairEdges)
}

// succeedsFromEmpty reports whether one valid ordering of the manifest
// succeeds when applied to an empty filesystem (a fresh machine) — the
// repair heuristic's notion of a useful manifest. For a deterministic
// manifest the choice of ordering does not matter.
func (s *System) succeedsFromEmpty() bool {
	order, err := s.g.TopoSort()
	if err != nil {
		return false
	}
	st := fs.NewState()
	for _, n := range order {
		next, ok := fs.Eval(s.g.Label(n).orig, st)
		if !ok {
			return false
		}
		st = next
	}
	return true
}

// conflictingPair finds an unordered (incomparable) pair of resources
// whose models do not commute — a candidate cause of non-determinism.
func (s *System) conflictingPair() (graph.Node, graph.Node, bool) {
	nodes := s.g.Nodes()
	for i, u := range nodes {
		descU := s.g.Descendants(u)
		ancU := s.g.Ancestors(u)
		for _, v := range nodes[i+1:] {
			if _, ok := descU[v]; ok {
				continue
			}
			if _, ok := ancU[v]; ok {
				continue
			}
			if !commute.Commute(s.g.Label(u).sum, s.g.Label(v).sum) {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}

// cloneSystem copies the System with an independent graph (labels shared:
// they are immutable after load).
func (s *System) cloneSystem() *System {
	return &System{Catalog: s.Catalog, opts: s.opts, g: s.g.Clone()}
}
