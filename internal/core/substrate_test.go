package core_test

// Differential tests of the shared substrate: verdicts produced by many
// goroutines through one warm Substrate must be identical to fresh
// single-shot runs — the contract that lets rehearsald share solver pools,
// the interner and the verdict cache across concurrent jobs. Run with
// -race; the scheduler in internal/service leans entirely on this.

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/qcache"
)

// runVerdict is a goroutine-safe variant of runCheck: it returns the load
// error instead of calling t.Fatal.
func runVerdict(source string, opts core.Options) (verdict, error) {
	s, err := core.Load(source, opts)
	if err != nil {
		return verdict{}, err
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		return verdict{err: err.Error()}, nil
	}
	return verdict{
		deterministic: res.Deterministic,
		cex:           res.Counterexample,
		eliminated:    res.Stats.Eliminated,
		sequences:     res.Stats.Sequences,
	}, nil
}

// TestSubstrateConcurrentMatchesFresh: for every example manifest, N
// goroutines checking through one shared warm substrate — where later
// goroutines are answered largely by caches the earlier ones populated —
// must all produce the verdict a fresh, isolated, single-worker run
// produces, at per-check parallelism 1 and 8.
func TestSubstrateConcurrentMatchesFresh(t *testing.T) {
	core.ResetSolverPools()
	base := core.DefaultOptions()
	base.SemanticCommute = true
	base.Timeout = time.Minute
	const goroutines = 4

	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			fresh := base
			fresh.FreshSolvers = true
			fresh.Parallelism = 1
			fresh.SharedQueryCache = qcache.New()
			want, err := runVerdict(b.Source, fresh)
			if err != nil {
				t.Fatal(err)
			}
			if want.err == "" && want.deterministic != b.Deterministic {
				t.Fatalf("fresh verdict %v disagrees with expected %v",
					want.deterministic, b.Deterministic)
			}
			for _, workers := range []int{1, 8} {
				sub, err := core.NewSubstrate(core.SubstrateConfig{})
				if err != nil {
					t.Fatal(err)
				}
				got := make([]verdict, goroutines)
				errs := make([]error, goroutines)
				var wg sync.WaitGroup
				for i := 0; i < goroutines; i++ {
					i := i
					wg.Add(1)
					go func() {
						defer wg.Done()
						opts := sub.Bind(base)
						opts.Parallelism = workers
						got[i], errs[i] = runVerdict(b.Source, opts)
					}()
				}
				wg.Wait()
				for i := 0; i < goroutines; i++ {
					if errs[i] != nil {
						t.Fatalf("workers=%d goroutine=%d: %v", workers, i, errs[i])
					}
					if !reflect.DeepEqual(got[i], want) {
						t.Errorf("workers=%d goroutine=%d: substrate verdict diverges from fresh:\nshared: %+v\nfresh:  %+v",
							workers, i, got[i], want)
					}
				}
			}
		})
	}
}

// TestSubstrateDiskTierWarmRestart: a substrate with a cache directory
// persists verdicts; a second substrate over the same directory (a daemon
// restart) answers semantic queries from disk and agrees with the first.
func TestSubstrateDiskTierWarmRestart(t *testing.T) {
	core.ResetSolverPools()
	dir := filepath.Join(t.TempDir(), "qcache")
	opts := core.DefaultOptions()
	opts.SemanticCommute = true
	opts.Timeout = time.Minute
	src := `
package {'make': ensure => present }
package {'gcc': ensure => present }
`

	sub1, err := core.NewSubstrate(core.SubstrateConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runVerdict(src, sub1.Bind(opts))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub1.DiskStats(); !ok {
		t.Fatal("substrate with CacheDir should have a disk tier")
	}

	sub2, err := core.NewSubstrate(core.SubstrateConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Load(src, sub2.Bind(opts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	got := verdict{
		deterministic: res.Deterministic,
		cex:           res.Counterexample,
		eliminated:    res.Stats.Eliminated,
		sequences:     res.Stats.Sequences,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restart verdict diverges:\nwarm: %+v\ncold: %+v", got, want)
	}
	if res.Stats.DiskCacheHits == 0 {
		t.Error("restarted substrate should answer semantic queries from the disk tier")
	}
}

// TestSubstrateBindPreservesKnobs: Bind must overlay only the shared state.
func TestSubstrateBindPreservesKnobs(t *testing.T) {
	sub, err := core.NewSubstrate(core.SubstrateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Platform = "centos"
	opts.Parallelism = 7
	opts.Timeout = 42 * time.Second
	opts.CacheDir = "/should/be/cleared"
	bound := sub.Bind(opts)
	if bound.Platform != "centos" || bound.Parallelism != 7 || bound.Timeout != 42*time.Second {
		t.Errorf("Bind clobbered per-job knobs: %+v", bound)
	}
	if bound.SharedQueryCache == nil {
		t.Error("Bind must attach the shared query cache")
	}
	if bound.CacheDir != "" {
		t.Error("Bind must clear CacheDir (the disk tier lives on the substrate)")
	}
	if !sub.ProviderHealthy() {
		t.Error("a substrate without a client provider is always healthy")
	}
}
