package core

// A Substrate is the warm, process-resident state a long-running
// verification service amortizes across requests: the content-addressed
// semantic-commutativity verdict cache (with its optional on-disk tier),
// the package-listing provider with its in-memory listings, negative cache
// and circuit breaker, and — by virtue of being process-wide already — the
// incremental solver-pool registry (pool.go) and the hash-consing interner
// (internal/fs). A one-shot CLI run pays all of these cold on every
// invocation; a daemon builds one Substrate at boot and binds every job's
// Options to it, so the ten-thousandth request starts as warm as the
// second.
//
// A Substrate is safe for concurrent use: any number of goroutines may
// construct Systems and run checks against options bound to the same
// Substrate. The qcache layer is singleflight-deduplicated, the disk tier
// uses atomic renames, the pkgdb client coalesces concurrent fetches, and
// the solver pools hand each worker an isolated session. The differential
// tests (substrate_test.go) pin the contract that matters: verdicts
// produced through a shared warm Substrate are identical to fresh
// single-shot runs.

import (
	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// SubstrateConfig configures a shared substrate.
type SubstrateConfig struct {
	// CacheDir, when non-empty, attaches the on-disk verdict tier: semantic-
	// commutativity verdicts survive process restarts, so a redeployed
	// daemon starts warm.
	CacheDir string
	// QueryCacheCap bounds the in-memory verdict cache; 0 means
	// qcache.DefaultCap, < 0 unbounded.
	QueryCacheCap int
	// Provider, when non-nil, is shared by every bound job — typically a
	// hardened *pkgdb.Client whose listings cache, snapshot fallback and
	// circuit breaker then amortize across requests. Nil leaves each job on
	// the built-in catalog.
	Provider pkgdb.Provider
}

// Substrate owns the cross-request warm state. Create one with
// NewSubstrate and bind per-job Options to it with Bind.
type Substrate struct {
	cache    *qcache.Cache
	disk     *qcache.Disk // nil without CacheDir
	provider pkgdb.Provider
}

// NewSubstrate builds a substrate, opening the on-disk verdict tier when
// configured.
func NewSubstrate(cfg SubstrateConfig) (*Substrate, error) {
	cap := cfg.QueryCacheCap
	if cap == 0 {
		cap = qcache.DefaultCap
	}
	s := &Substrate{
		cache:    qcache.NewWithCap(cap),
		provider: cfg.Provider,
	}
	if cfg.CacheDir != "" {
		disk, err := qcache.OpenDiskShared(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.cache.AttachDisk(disk)
	}
	return s, nil
}

// Bind returns opts wired to the substrate's warm state: the shared
// verdict cache (with the disk tier already attached, so opts.CacheDir is
// cleared rather than re-opened per check) and, unless the options name
// their own, the shared provider. Everything else in opts is preserved, so
// per-job knobs — platform, timeout, context, parallelism — keep working.
func (s *Substrate) Bind(opts Options) Options {
	opts.SharedQueryCache = s.cache
	opts.CacheDir = "" // the disk tier is attached to the substrate cache
	if opts.Provider == nil {
		opts.Provider = s.provider
	}
	return opts
}

// QueryCacheStats snapshots the shared verdict cache's counters.
func (s *Substrate) QueryCacheStats() qcache.Stats {
	return s.cache.StatsSnapshot()
}

// DiskStats snapshots the on-disk tier's counters; ok is false when the
// substrate has no disk tier.
func (s *Substrate) DiskStats() (stats qcache.DiskStats, ok bool) {
	if s.disk == nil {
		return qcache.DiskStats{}, false
	}
	return s.disk.StatsSnapshot(), true
}

// ClientStats snapshots the shared provider's client counters; ok is false
// when the provider is not a *pkgdb.Client (or is nil).
func (s *Substrate) ClientStats() (stats pkgdb.ClientStats, ok bool) {
	c, isClient := s.provider.(*pkgdb.Client)
	if !isClient {
		return pkgdb.ClientStats{}, false
	}
	return c.Stats(), true
}

// ProviderHealthy reports whether the shared provider is currently able to
// serve queries: true when there is no shared client, or when the client's
// circuit breaker is closed. Readiness probes use it to take a daemon out
// of rotation while its listing service is down.
func (s *Substrate) ProviderHealthy() bool {
	c, isClient := s.provider.(*pkgdb.Client)
	if !isClient {
		return true
	}
	return !c.BreakerOpen()
}
