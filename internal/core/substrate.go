package core

// A Substrate is the warm, process-resident state a long-running
// verification service amortizes across requests: the content-addressed
// semantic-commutativity verdict cache (with its optional on-disk tier),
// the package-listing provider with its in-memory listings, negative cache
// and circuit breaker, and — by virtue of being process-wide already — the
// incremental solver-pool registry (pool.go) and the hash-consing interner
// (internal/fs). A one-shot CLI run pays all of these cold on every
// invocation; a daemon builds one Substrate at boot and binds every job's
// Options to it, so the ten-thousandth request starts as warm as the
// second.
//
// A Substrate is safe for concurrent use: any number of goroutines may
// construct Systems and run checks against options bound to the same
// Substrate. The qcache layer is singleflight-deduplicated, the disk tier
// uses atomic renames, the pkgdb client coalesces concurrent fetches, and
// the solver pools hand each worker an isolated session. The differential
// tests (substrate_test.go) pin the contract that matters: verdicts
// produced through a shared warm Substrate are identical to fresh
// single-shot runs.

import (
	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// SubstrateConfig configures a shared substrate.
type SubstrateConfig struct {
	// CacheDir, when non-empty, attaches the on-disk verdict tier: semantic-
	// commutativity verdicts survive process restarts, so a redeployed
	// daemon starts warm.
	CacheDir string
	// QueryCacheCap bounds the in-memory verdict cache; 0 means
	// qcache.DefaultCap, < 0 unbounded.
	QueryCacheCap int
	// Provider, when non-nil, is shared by every bound job — typically a
	// hardened *pkgdb.Client whose listings cache, snapshot fallback and
	// circuit breaker then amortize across requests. Nil leaves each job on
	// the built-in catalog.
	Provider pkgdb.Provider
	// RemoteTier, when non-nil, attaches a networked verdict tier behind
	// the disk tier — in a rehearsald cluster, the consistent-hash peer
	// ring (internal/cluster). Lookup order is then memory → disk → ring,
	// and computed verdicts replicate to their ring owner. Per the tier
	// contract a dead ring degrades to misses, never failures.
	RemoteTier qcache.Tier
}

// Substrate owns the cross-request warm state. Create one with
// NewSubstrate and bind per-job Options to it with Bind.
type Substrate struct {
	cache    *qcache.Cache
	disk     *qcache.Disk // nil without CacheDir
	remote   qcache.Tier  // nil without RemoteTier
	provider pkgdb.Provider
}

// NewSubstrate builds a substrate, opening the on-disk verdict tier when
// configured.
func NewSubstrate(cfg SubstrateConfig) (*Substrate, error) {
	cap := cfg.QueryCacheCap
	if cap == 0 {
		cap = qcache.DefaultCap
	}
	s := &Substrate{
		cache:    qcache.NewWithCap(cap),
		provider: cfg.Provider,
	}
	if cfg.CacheDir != "" {
		disk, err := qcache.OpenDiskShared(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.cache.AttachDisk(disk)
	}
	if cfg.RemoteTier != nil {
		// Attached after the disk tier: a ring lookup costs a network round
		// trip, so it runs only when both local tiers miss.
		s.remote = cfg.RemoteTier
		s.cache.AttachTier(cfg.RemoteTier)
	}
	return s, nil
}

// Bind returns opts wired to the substrate's warm state: the shared
// verdict cache (with the disk tier already attached, so opts.CacheDir is
// cleared rather than re-opened per check) and, unless the options name
// their own, the shared provider. Everything else in opts is preserved, so
// per-job knobs — platform, timeout, context, parallelism — keep working.
func (s *Substrate) Bind(opts Options) Options {
	opts.SharedQueryCache = s.cache
	opts.CacheDir = "" // the disk tier is attached to the substrate cache
	if opts.Provider == nil {
		opts.Provider = s.provider
	}
	return opts
}

// QueryCacheStats snapshots the shared verdict cache's counters.
func (s *Substrate) QueryCacheStats() qcache.Stats {
	return s.cache.StatsSnapshot()
}

// DiskStats snapshots the on-disk tier's counters; ok is false when the
// substrate has no disk tier.
func (s *Substrate) DiskStats() (stats qcache.DiskStats, ok bool) {
	if s.disk == nil {
		return qcache.DiskStats{}, false
	}
	return s.disk.StatsSnapshot(), true
}

// RemoteStats snapshots the remote verdict tier's counters; ok is false
// when the substrate has no remote tier.
func (s *Substrate) RemoteStats() (stats qcache.TierStats, ok bool) {
	if s.remote == nil {
		return qcache.TierStats{}, false
	}
	return s.remote.Stats(), true
}

// LocalVerdict returns the verdict this process holds for key in its
// memory or local (disk) tiers, never asking peers or computing. The peer
// cache protocol serves from it, which keeps ring lookups single-hop.
func (s *Substrate) LocalVerdict(key qcache.Key) (val, ok bool) {
	return s.cache.LookupLocal(key)
}

// StoreLocal ingests a ring-replicated verdict into the memory table and
// local tiers. Remote tiers are skipped by qcache.Seed, so ingestion can
// never echo back into the ring.
func (s *Substrate) StoreLocal(key qcache.Key, val bool) {
	s.cache.Seed(key, val)
}

// ClientStats snapshots the shared provider's client counters; ok is false
// when the provider is not a *pkgdb.Client (or is nil).
func (s *Substrate) ClientStats() (stats pkgdb.ClientStats, ok bool) {
	c, isClient := s.provider.(*pkgdb.Client)
	if !isClient {
		return pkgdb.ClientStats{}, false
	}
	return c.Stats(), true
}

// ProviderHealthy reports whether the shared provider is currently able to
// serve queries: true when there is no shared client, or when the client's
// circuit breaker is closed. Readiness probes use it to take a daemon out
// of rotation while its listing service is down.
func (s *Substrate) ProviderHealthy() bool {
	c, isClient := s.provider.(*pkgdb.Client)
	if !isClient {
		return true
	}
	return !c.BreakerOpen()
}
