package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fs"
)

// TestIdempotenceAgreesWithDynamicSampling: the symbolic idempotence
// verdict on random manifests must agree with test-based idempotence
// checking (the Hummer et al. approach the paper contrasts against,
// section 7) — in the sound direction: if the static check says
// idempotent, no sampled input may disagree; if it says non-idempotent,
// its counterexample input must disagree dynamically.
func TestIdempotenceAgreesWithDynamicSampling(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	opts := DefaultOptions()
	opts.Timeout = time.Minute
	nonIdem := 0
	// Random manifests (mostly idempotent models) plus the paper's known
	// non-idempotent shapes, so both verdict branches are exercised.
	sources := []string{fig3d, fig3cOrdered, `
file {'/dst2': source => '/src2' }
file {'/src2': ensure => absent }
user {'u': ensure => present, managehome => true }
File['/dst2'] -> File['/src2']
`}
	for trial := 0; trial < 20; trial++ {
		sources = append(sources, genManifest(r))
	}
	for trial, src := range sources {
		s, err := Load(src, opts)
		if err != nil {
			continue // cycles from random edges are rejected; fine
		}
		res, err := s.CheckIdempotence()
		if err != nil {
			t.Fatalf("trial %d: %v\nmanifest:\n%s", trial, err, src)
		}
		g := s.ExprGraph()
		if res.Idempotent {
			// Sample random-ish inputs: empty plus states reached by
			// partial applications.
			inputs := []fs.State{fs.NewState()}
			if order, err := g.TopoSort(); err == nil {
				st := fs.NewState()
				for _, n := range order {
					if next, ok := fs.Eval(g.Label(n), st); ok {
						st = next
						inputs = append(inputs, st.Clone())
					}
				}
			}
			ok, witness := dynamic.CheckIdempotence(g, inputs)
			if !ok {
				t.Fatalf("trial %d: static says idempotent, dynamic disagrees on %s\nmanifest:\n%s",
					trial, fs.StateString(witness), src)
			}
		} else {
			nonIdem++
			cex := res.Counterexample
			if cex == nil {
				t.Fatalf("trial %d: non-idempotent without counterexample", trial)
			}
			ok, _ := dynamic.CheckIdempotence(g, []fs.State{cex.Input})
			if ok {
				t.Fatalf("trial %d: idempotence witness does not reproduce dynamically\nmanifest:\n%s\ninput: %s",
					trial, src, fs.StateString(cex.Input))
			}
		}
	}
	if nonIdem == 0 {
		t.Error("no non-idempotent manifests exercised; property vacuous")
	}
	t.Logf("%d manifests non-idempotent", nonIdem)
}

// TestCrossPlatformVerification re-verifies a platform-conditional
// manifest on both supported platforms, the section-8 workflow.
func TestCrossPlatformVerification(t *testing.T) {
	src := `
case $osfamily {
  'Debian': {
    package {'ntp': ensure => present }
    file {'/etc/ntp.conf': content => 'server 0.pool.ntp.org', require => Package['ntp'] }
    service {'ntp': ensure => running, subscribe => File['/etc/ntp.conf'] }
  }
  'RedHat': {
    package {'ntp': ensure => present }
    file {'/etc/ntp.conf': content => 'server 0.pool.ntp.org', require => Package['ntp'] }
    service {'ntpd': ensure => running, subscribe => File['/etc/ntp.conf'] }
  }
  default: { fail("unsupported ${osfamily}") }
}
`
	for _, platform := range []string{"ubuntu", "centos"} {
		opts := DefaultOptions()
		opts.Platform = platform
		s, err := Load(src, opts)
		if err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		det, err := s.CheckDeterminism()
		if err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		if !det.Deterministic {
			t.Errorf("%s: not deterministic", platform)
		}
		idem, err := s.CheckIdempotence()
		if err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		if !idem.Idempotent {
			t.Errorf("%s: not idempotent", platform)
		}
	}
	// A manifest that forgets the RedHat branch fails cleanly on centos.
	opts := DefaultOptions()
	opts.Platform = "centos"
	if _, err := Load(`
case $osfamily {
  'Debian': { package {'ntp': } }
  default:  { fail("unsupported ${osfamily}") }
}
`, opts); err == nil {
		t.Error("expected fail() on centos")
	}
}
