package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fs"
)

// genManifest generates a small random Puppet manifest over a fixed
// resource pool: files into shared directories, users, groups and
// services, with random dependency edges (index-increasing, so always
// acyclic) and occasional deliberate conflicts (two file resources
// managing the same path via the path attribute).
func genManifest(r *rand.Rand) string {
	var b strings.Builder
	type decl struct {
		typ   string
		title string
	}
	var decls []decl
	nFiles := 2 + r.Intn(3)
	dirs := []string{"/srv/app", "/srv/data"}
	for i := 0; i < nFiles; i++ {
		dir := dirs[r.Intn(len(dirs))]
		// A small path pool makes two resources managing the same path
		// (under distinct titles — which the frontend permits and the
		// checker must analyze) reasonably likely.
		path := fmt.Sprintf("%s/f%d", dir, r.Intn(2))
		title := fmt.Sprintf("file-%d", i)
		fmt.Fprintf(&b, "file {'%s': path => '%s', content => 'c%d' }\n", title, path, i)
		decls = append(decls, decl{"File", title})
	}
	// The parent directories, sometimes managed, sometimes not.
	for _, d := range dirs {
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "file {'%s': ensure => directory }\n", d)
			decls = append(decls, decl{"File", d})
			if d == "/srv/app" || d == "/srv/data" {
				// Parent of both managed dirs.
			}
		}
	}
	if r.Intn(2) == 0 {
		fmt.Fprintf(&b, "file {'/srv': ensure => directory }\n")
		decls = append(decls, decl{"File", "/srv"})
	}
	if r.Intn(2) == 0 {
		name := fmt.Sprintf("u%d", r.Intn(2))
		fmt.Fprintf(&b, "user {'%s': ensure => present, managehome => true }\n", name)
		decls = append(decls, decl{"User", name})
	}
	if r.Intn(3) == 0 {
		fmt.Fprintf(&b, "group {'g': ensure => present }\n")
		decls = append(decls, decl{"Group", "g"})
	}
	if r.Intn(3) == 0 {
		fmt.Fprintf(&b, "service {'svc': ensure => running }\n")
		decls = append(decls, decl{"Service", "svc"})
	}
	// Random forward dependency edges.
	for i := 0; i < len(decls); i++ {
		for j := i + 1; j < len(decls); j++ {
			if r.Intn(4) == 0 {
				fmt.Fprintf(&b, "%s['%s'] -> %s['%s']\n",
					decls[i].typ, decls[i].title, decls[j].typ, decls[j].title)
			}
		}
	}
	return b.String()
}

// TestVerdictStableAcrossConfigurations: the analyses (commutativity POR,
// sleep sets, elimination, pruning) are performance optimizations and must
// never change the verdict. Random manifests are checked under every
// configuration.
func TestVerdictStableAcrossConfigurations(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	configs := []Options{}
	for _, commut := range []bool{true, false} {
		for _, elim := range []bool{true, false} {
			for _, prune := range []bool{true, false} {
				o := DefaultOptions()
				o.Commutativity = commut
				o.Elimination = elim
				o.Pruning = prune
				o.Timeout = time.Minute
				configs = append(configs, o)
			}
		}
	}
	noSleep := DefaultOptions()
	noSleep.DisableSleepSets = true
	noSleep.Timeout = time.Minute
	configs = append(configs, noSleep)

	nondet := 0
	for trial := 0; trial < 25; trial++ {
		src := genManifest(r)
		var first *DeterminismResult
		skip := false
		for ci, opts := range configs {
			sys, err := Load(src, opts)
			if err != nil {
				// Random edges can contradict autorequire edges and form a
				// cycle; rejecting the manifest is the correct behavior
				// and is configuration-independent, so skip the trial.
				if strings.Contains(err.Error(), "cycle") && ci == 0 {
					skip = true
					break
				}
				t.Fatalf("trial %d cfg %d: load: %v\nmanifest:\n%s", trial, ci, err, src)
			}
			res, err := sys.CheckDeterminism()
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v\nmanifest:\n%s", trial, ci, err, src)
			}
			if first == nil {
				first = res
				if !res.Deterministic {
					nondet++
				}
				continue
			}
			if res.Deterministic != first.Deterministic {
				t.Fatalf("trial %d: config %d verdict %v differs from config 0 verdict %v\nmanifest:\n%s",
					trial, ci, res.Deterministic, first.Deterministic, src)
			}
		}
		if skip {
			continue
		}
		// Cross-check against the dynamic oracle.
		sys, err := Load(src, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		inputs := []fs.State{fs.NewState()}
		if first.Counterexample != nil {
			inputs = append(inputs, first.Counterexample.Input)
		}
		dyn := dynamic.Run(sys.ExprGraph(), dynamic.Options{Inputs: inputs, MaxPermutations: 5040})
		if first.Deterministic && !dyn.Deterministic {
			t.Fatalf("trial %d: static says deterministic, dynamic diverges from %s\nmanifest:\n%s",
				trial, fs.StateString(dyn.Input), src)
		}
		if !first.Deterministic && dyn.Deterministic && dyn.Exhaustive {
			t.Fatalf("trial %d: static says non-deterministic (witness seeded) but dynamic agrees nowhere\nmanifest:\n%s",
				trial, src)
		}
	}
	if nondet == 0 {
		t.Log("note: no non-deterministic manifests sampled this seed")
	} else {
		t.Logf("%d/25 random manifests non-deterministic", nondet)
	}
}
