package core

import (
	"sync"

	"repro/internal/fs"
	"repro/internal/sat"
	"repro/internal/sym"
)

// sessionPool hands out incremental solver sessions (sym.Session) over one
// fixed vocabulary. A session held by a worker answers queries with learnt
// clauses, compiled terms and the shared symbolic input state retained from
// every query it answered before; releasing parks it for the next worker.
// The pool never blocks: when all parked sessions are in use, acquire
// constructs a fresh one, so at most Options.Parallelism sessions exist per
// check.
type sessionPool struct {
	vocab *sym.Vocab
	cfg   sat.Config // search config for sessions this pool constructs
	mu    sync.Mutex
	free  []*sym.Session
}

// acquire returns a session and whether it had to be constructed (false
// means an existing solver was reused).
func (p *sessionPool) acquire() (*sym.Session, bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s, false
	}
	p.mu.Unlock()
	return sym.NewSessionConfig(p.vocab, p.cfg), true
}

func (p *sessionPool) release(s *sym.Session) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// applyHits sums the parked sessions' apply-memo hits — symbolic
// applications answered without walking a subtree. Like snapshot, it only
// sees sessions parked at call time; internal/core reads before/after
// deltas around a check, so the figure is approximate under concurrency.
func (p *sessionPool) applyHits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, s := range p.free {
		n += s.Stats().ApplyHits
	}
	return n
}

// snapshot sums solver gauges over the parked sessions: live learnt clauses
// and clauses removed by root-level preprocessing.
func (p *sessionPool) snapshot() (learnt int, preprocessed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.free {
		st := s.Stats()
		learnt += st.LearntRetained
		preprocessed += st.Simplify.Removed + st.Simplify.Subsumed
	}
	return learnt, preprocessed
}

// poolKey identifies a pool: the vocabulary digest plus the solver search
// configuration. Portfolio racing keeps one warm pool per config so a
// losing config's learnt clauses and memos still accumulate for its next
// race, without ever mixing search state between configs.
type poolKey struct {
	vocab fs.Digest
	cfg   string // normalized config name; "" never occurs (defaults to "default")
}

// The process-wide pool registry, keyed by vocabulary digest and solver
// config: re-checking a manifest (or its exact-configuration fallback,
// which shares the unpruned expression set) reuses warm solvers across
// checks, the same way qcache reuses verdicts. Bounded so a long
// multi-manifest run cannot accumulate solvers without limit; eviction is
// least-recently-used.
var (
	poolsMu   sync.Mutex
	pools     = make(map[poolKey]*sessionPool)
	poolOrder []poolKey // LRU order, oldest first
)

// maxPools bounds the number of distinct (vocabulary, config) pools.
const maxPools = 32

// poolFor returns the default-config pool for the vocabulary.
func poolFor(v *sym.Vocab) *sessionPool { return poolForConfig(v, sat.Config{}) }

// poolForConfig returns the pool for the vocabulary under the given
// solver config, creating (and registering) it if needed.
func poolForConfig(v *sym.Vocab, cfg sat.Config) *sessionPool {
	k := poolKey{vocab: v.Digest(), cfg: cfg.Name}
	if k.cfg == "" {
		k.cfg = "default"
	}
	poolsMu.Lock()
	defer poolsMu.Unlock()
	if p, ok := pools[k]; ok {
		for i, od := range poolOrder {
			if od == k {
				poolOrder = append(append(poolOrder[:i:i], poolOrder[i+1:]...), k)
				break
			}
		}
		return p
	}
	if len(pools) >= maxPools {
		oldest := poolOrder[0]
		poolOrder = poolOrder[1:]
		delete(pools, oldest)
	}
	p := &sessionPool{vocab: v, cfg: cfg}
	pools[k] = p
	poolOrder = append(poolOrder, k)
	return p
}

// ResetSolverPools drops every pooled solver. Benchmarks call it to measure
// cold-pool behavior; production code never needs to.
func ResetSolverPools() {
	poolsMu.Lock()
	defer poolsMu.Unlock()
	pools = make(map[poolKey]*sessionPool)
	poolOrder = nil
}
