package core

import (
	"sync"

	"repro/internal/fs"
	"repro/internal/sym"
)

// sessionPool hands out incremental solver sessions (sym.Session) over one
// fixed vocabulary. A session held by a worker answers queries with learnt
// clauses, compiled terms and the shared symbolic input state retained from
// every query it answered before; releasing parks it for the next worker.
// The pool never blocks: when all parked sessions are in use, acquire
// constructs a fresh one, so at most Options.Parallelism sessions exist per
// check.
type sessionPool struct {
	vocab *sym.Vocab
	mu    sync.Mutex
	free  []*sym.Session
}

// acquire returns a session and whether it had to be constructed (false
// means an existing solver was reused).
func (p *sessionPool) acquire() (*sym.Session, bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s, false
	}
	p.mu.Unlock()
	return sym.NewSession(p.vocab), true
}

func (p *sessionPool) release(s *sym.Session) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// applyHits sums the parked sessions' apply-memo hits — symbolic
// applications answered without walking a subtree. Like snapshot, it only
// sees sessions parked at call time; internal/core reads before/after
// deltas around a check, so the figure is approximate under concurrency.
func (p *sessionPool) applyHits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, s := range p.free {
		n += s.Stats().ApplyHits
	}
	return n
}

// snapshot sums solver gauges over the parked sessions: live learnt clauses
// and clauses removed by root-level preprocessing.
func (p *sessionPool) snapshot() (learnt int, preprocessed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.free {
		st := s.Stats()
		learnt += st.LearntRetained
		preprocessed += st.Simplify.Removed + st.Simplify.Subsumed
	}
	return learnt, preprocessed
}

// The process-wide pool registry, keyed by vocabulary digest: re-checking a
// manifest (or its exact-configuration fallback, which shares the unpruned
// expression set) reuses warm solvers across checks, the same way qcache
// reuses verdicts. Bounded so a long multi-manifest run cannot accumulate
// solvers without limit; eviction is least-recently-used.
var (
	poolsMu   sync.Mutex
	pools     = make(map[fs.Digest]*sessionPool)
	poolOrder []fs.Digest // LRU order, oldest first
)

// maxPools bounds the number of distinct vocabularies with live pools.
const maxPools = 32

// poolFor returns the pool for the vocabulary, creating (and registering)
// it if needed.
func poolFor(v *sym.Vocab) *sessionPool {
	d := v.Digest()
	poolsMu.Lock()
	defer poolsMu.Unlock()
	if p, ok := pools[d]; ok {
		for i, od := range poolOrder {
			if od == d {
				poolOrder = append(append(poolOrder[:i:i], poolOrder[i+1:]...), d)
				break
			}
		}
		return p
	}
	if len(pools) >= maxPools {
		oldest := poolOrder[0]
		poolOrder = poolOrder[1:]
		delete(pools, oldest)
	}
	p := &sessionPool{vocab: v}
	pools[d] = p
	poolOrder = append(poolOrder, d)
	return p
}

// ResetSolverPools drops every pooled solver. Benchmarks call it to measure
// cold-pool behavior; production code never needs to.
func ResetSolverPools() {
	poolsMu.Lock()
	defer poolsMu.Unlock()
	pools = make(map[fs.Digest]*sessionPool)
	poolOrder = nil
}
