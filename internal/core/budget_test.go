package core

import (
	"testing"
	"time"

	"repro/internal/qcache"
)

// Satellite coverage for enumerate under resource exhaustion: when the
// deadline passes or the sequence cap is hit mid-enumeration, the check must
// surface ErrTimeout — never a silent "deterministic" built from a partial
// set of linearizations.

// TestMaxSequencesExhaustion: the sequence cap aborts the check even when
// the manifest is, in truth, deterministic. Two independent file writes with
// commutativity off encode 2 linearizations; a cap of 1 must refuse to
// answer rather than report the single explored order as the whole story.
func TestMaxSequencesExhaustion(t *testing.T) {
	src := `
file{"/a": content => "x" }
file{"/b": content => "y" }
`
	opts := DefaultOptions()
	opts.Commutativity = false
	opts.Elimination = false
	opts.Pruning = false
	opts.MaxSequences = 1
	opts.Timeout = time.Minute
	s, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != ErrTimeout {
		t.Fatalf("expected ErrTimeout at MaxSequences=1, got res=%+v err=%v", res, err)
	}
	if res != nil {
		t.Fatalf("exhausted check must not return a result, got %+v", res)
	}

	// Control: the same manifest with an adequate cap completes and is
	// deterministic (the two writes touch disjoint paths).
	opts.MaxSequences = 16
	s2, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Deterministic {
		t.Fatalf("control run should be deterministic, got %+v", res2)
	}
	if res2.Stats.Sequences != 2 {
		t.Fatalf("control run encoded %d sequences, want 2", res2.Stats.Sequences)
	}
}

// TestMaxSequencesExhaustionNondeterministic: a genuinely nondeterministic
// manifest under a too-small cap must also abort with ErrTimeout — the
// checker may not claim either verdict from a truncated enumeration.
func TestMaxSequencesExhaustionNondeterministic(t *testing.T) {
	src := `
file{"/shared": content => "one" }
file{"/shared2": content => "two" }
user{"u1": }
user{"u2": }
user{"u3": }
`
	opts := DefaultOptions()
	opts.Commutativity = false
	opts.Elimination = false
	opts.Pruning = false
	opts.MaxSequences = 3
	opts.Timeout = time.Minute
	s, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != ErrTimeout {
		t.Fatalf("expected ErrTimeout at MaxSequences=3, got res=%+v err=%v", res, err)
	}
}

// TestDeadlineDuringEnumeration: a deadline that expires while enumeration
// is in flight surfaces as ErrTimeout. The factorial workload (7 unordered
// interfering users, all reductions off) cannot finish within a nanosecond
// on any machine, so the test is not timing-sensitive.
func TestDeadlineDuringEnumeration(t *testing.T) {
	src := `
user{"u1": }
user{"u2": }
user{"u3": }
user{"u4": }
user{"u5": }
user{"u6": }
user{"u7": }
`
	opts := DefaultOptions()
	opts.Commutativity = false
	opts.Elimination = false
	opts.Pruning = false
	opts.Timeout = time.Nanosecond
	s, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != ErrTimeout {
		t.Fatalf("expected ErrTimeout under expired deadline, got res=%+v err=%v", res, err)
	}
	if res != nil {
		t.Fatalf("timed-out check must not return a result, got %+v", res)
	}
}

// TestSemanticBudgetConservative: exhausting the per-query SAT budget on the
// semantic-commutativity path must degrade conservatively — the pair counts
// as non-commuting and the exact analysis still decides the manifest — not
// flip a verdict. With a budget of 1 conflict, essentially every semantic
// query is inconclusive, which is the worst case the option allows.
func TestSemanticBudgetConservative(t *testing.T) {
	src := `
package {'git': ensure => present }
package {'amavisd-new': ensure => present }
`
	opts := DefaultOptions()
	opts.SemanticCommute = true
	opts.Timeout = 2 * time.Minute
	opts.Parallelism = 1

	s, err := Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := s.g.Nodes()
	if len(nodes) < 2 {
		t.Fatalf("want at least 2 resources, got %d", len(nodes))
	}
	la, lb := s.g.Label(nodes[0]), s.g.Label(nodes[1])
	a := &workNode{name: la.res.String(), expr: la.expr, orig: la.orig, sum: la.sum}
	b := &workNode{name: lb.res.String(), expr: lb.expr, orig: lb.orig, sum: lb.sum}

	// Starve every semantic query: force the checker's budget down to a
	// single conflict (Options doesn't expose the budget; this test pins the
	// conservative-degradation contract directly). The overlapping package
	// pair is exactly the case the syntactic check cannot prove and the
	// semantic check normally can — with one conflict of budget the solver
	// is inconclusive, and the only sound answer is "does not commute".
	cc := newCommuteChecker(s.opts)
	cc.budget = 1
	if cc.commutes(a, b) {
		t.Fatal("starved semantic query reported commuting")
	}

	// Sanity: with the real budget the same pair does commute, so the false
	// above really was the conservative fallback, not the true verdict.
	cc2 := newCommuteChecker(s.opts)
	cc2.cache = qcache.New() // don't read cc's starved verdict back
	if !cc2.commutes(a, b) {
		t.Fatal("expected overlapping packages to commute semantically")
	}

	// End-to-end: the full check still terminates with a sound verdict.
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatalf("manifest is deterministic regardless of budget, got %+v", res)
	}
}
