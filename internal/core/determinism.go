package core

import (
	"sync"
	"time"

	"repro/internal/commute"
	"repro/internal/diff"
	"repro/internal/fs"
	"repro/internal/graph"
	"repro/internal/prune"
	"repro/internal/qcache"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/sym"
)

// Counterexample witnesses non-determinism: two valid orders of the same
// resources that produce different outcomes from the same initial
// filesystem.
type Counterexample struct {
	Input          fs.State
	Order1, Order2 []string
	Ok1, Ok2       bool
	Out1, Out2     fs.State
}

// Stats summarizes the work a determinacy check performed.
type Stats struct {
	Resources   int           // resources in the compiled graph
	Eliminated  int           // resources removed by elimination
	PrunedPaths int           // paths whose writes were pruned
	TotalPaths  int           // modeled paths before analyses (fig. 11a "No")
	Paths       int           // modeled paths after analyses (fig. 11a "Yes")
	Sequences   int           // linearizations encoded after POR
	Duration    time.Duration // wall-clock time of the check

	// Workers is the worker-pool size semantic-commutativity queries ran
	// under (Options.Parallelism after defaulting).
	Workers int
	// SemQueries counts the solver queries this check executed — the
	// shared-cache misses among its semantic-commutativity decisions.
	SemQueries int
	// SemCacheHits counts decisions served by the process-wide
	// content-addressed cache (warmed by earlier checks of manifests with
	// overlapping resources).
	SemCacheHits int
	// SolverReuses counts solver queries answered by a pooled incremental
	// solver that had already served earlier queries (0 with
	// Options.FreshSolvers or without SemanticCommute).
	SolverReuses int
	// LearntRetained is the number of learnt clauses alive across the
	// check's solver pool when the check finished — knowledge later
	// queries inherit instead of rediscovering.
	LearntRetained int
	// PreprocessRemoved counts clauses deleted by the pooled solvers'
	// root-level preprocessing passes (satisfied-clause removal and
	// subsumption), cumulative over the pool.
	PreprocessRemoved int64

	// InternHits counts hash-consing table hits while compiling and
	// re-compiling this system's resource models — structurally repeated
	// subtrees shared instead of reallocated (0 with
	// Options.DisableInterning).
	InternHits int64
	// EncodeMemoHits counts symbolic applications the check's pooled
	// sessions answered from their subtree memos instead of re-encoding.
	// Read as a before/after delta over parked sessions, so, like
	// LearntRetained, it is approximate when workers hold sessions across
	// the snapshot.
	EncodeMemoHits int64
	// DiskCacheHits counts semantic-commutativity decisions answered by
	// the on-disk verdict tier (0 without Options.CacheDir).
	DiskCacheHits int
	// RemoteCacheHits counts semantic-commutativity decisions answered by
	// the cluster verdict ring (0 without a remote tier attached — i.e.
	// outside a rehearsald cluster).
	RemoteCacheHits int
	// WorkerPanics counts panics recovered inside semantic-commutativity
	// workers. The first panic aborts the check with a *PanicError, so a
	// successfully returned result always reports 0; the counter exists
	// for the error path's diagnostics (see CheckDeterminism's error
	// contract) and for tests.
	WorkerPanics int

	// Core solver search counters, cumulative over every SAT query the
	// check ran (semantic-commutativity queries across all workers and
	// portfolio legs, plus the final determinacy disjunction).
	SolverDecisions    int64
	SolverPropagations int64
	SolverConflicts    int64
	SolverRestarts     int64

	// Portfolio-racing counters (all zero unless Options.Portfolio.K >= 2).

	// PortfolioEscalations counts default-config attempts that exhausted
	// the escalation budget; PortfolioRaces counts the k-way races those
	// escalations triggered.
	PortfolioEscalations int
	PortfolioRaces       int
	// WinnerByConfig maps a portfolio config name to the races it won;
	// only configs with at least one win appear (nil when no race ran).
	WinnerByConfig map[string]int

	// Differential-verification counters, populated only by the VerifyDiff
	// path (all zero on a full check).

	// DiffChanged counts head resources that cannot inherit base verdicts:
	// compiled models that changed plus resources added since base.
	DiffChanged int
	// DiffUnchanged counts head resources whose compiled-model digests
	// match base.
	DiffUnchanged int
	// PairsReused counts distinct semantic-commutativity pairs between two
	// unchanged resources whose verdicts were inherited from the warm
	// verdict tiers (memory or disk) with zero solver work.
	PairsReused int
	// PairsReverified counts distinct semantic-commutativity pairs that
	// executed a solver query in this check — pairs touching a changed or
	// added resource, plus any inherit misses.
	PairsReverified int
	// InheritMisses counts the subset of PairsReverified whose members
	// were both unchanged: the base verdict was not in the warm tiers (a
	// cold cache, or context-dependent pruning shifted the pair's content
	// address), so soundness forced a re-solve.
	InheritMisses int
}

// SemCacheHitRate returns the fraction of semantic-commutativity
// decisions answered without running the solver; 0 when no semantic
// decisions were made.
func (s Stats) SemCacheHitRate() float64 {
	total := s.SemQueries + s.SemCacheHits
	if total == 0 {
		return 0
	}
	return float64(s.SemCacheHits) / float64(total)
}

// DeterminismResult is the outcome of CheckDeterminism.
type DeterminismResult struct {
	Deterministic  bool
	Counterexample *Counterexample // set when non-deterministic
	Stats          Stats
}

// workNode is a mutable copy of a graph node used during one check.
type workNode struct {
	name string
	expr fs.Expr
	orig fs.Expr
	sum  *commute.Summary

	// unchanged marks the resource's compiled model as digest-identical to
	// the base manifest's (differential checks only; always false on a
	// full check). Pair classification reads it: a pair of two unchanged
	// resources is expected to inherit its verdict from the warm tiers.
	unchanged bool

	digOnce sync.Once
	dig     fs.Digest
}

// digest returns the canonical content hash of the node's current model,
// computed once per workNode (pruning replaces the workNode, so the memo
// never goes stale). Safe for concurrent use by pool workers.
func (w *workNode) digest() fs.Digest {
	w.digOnce.Do(func() { w.dig = fs.DigestExpr(w.expr) })
	return w.dig
}

// CheckDeterminism decides whether the manifest's resource graph is
// deterministic (definition 1): every input filesystem leads to exactly
// one outcome regardless of the order resources are applied in. The check
// is sound and complete; see DESIGN.md for the replay-validated fallback
// that keeps it exact when elimination or pruning are enabled.
func (s *System) CheckDeterminism() (*DeterminismResult, error) {
	return s.checkDeterminism(s.opts, nil)
}

// VerifyDiff runs the differential determinacy check: head is verified in
// full soundness, but the pairwise commutativity matrix is partitioned by
// the resource-level delta against base — pairs of digest-unchanged
// resources inherit the base run's verdicts from the warm content-
// addressed tiers (memory cache or the CacheDir disk tier) with zero
// solver work, and only pairs touching a changed or added resource enter
// the worker pool. The verdict is identical to head.CheckDeterminism()
// at any delta: inheritance is content-addressed (identical models →
// identical cache keys), and an unchanged pair whose key misses the warm
// tiers — a cold cache, or pruning shifted under it — is simply
// re-solved and counted as an inherit miss. Both systems should be loaded
// under the same platform/provider options; head's options drive the
// check.
func VerifyDiff(base, head *System) (*DeterminismResult, error) {
	return head.CheckDeterminismDiff(base)
}

// CheckDeterminismDiff is VerifyDiff as a method on the head system.
func (s *System) CheckDeterminismDiff(base *System) (*DeterminismResult, error) {
	d := diff.Compute(base.ResourceDigests(), s.ResourceDigests())
	return s.checkDeterminism(s.opts, d)
}

// checkDeterminism runs one determinacy check. delta, when non-nil, is
// the resource-level difference against a base manifest: it drives the
// reused/re-verified pair accounting and marks unchanged resources, but
// never weakens the analysis — every pair is still decided, just
// preferentially from the warm verdict tiers.
func (s *System) checkDeterminism(opts Options, delta *diff.Delta) (*DeterminismResult, error) {
	start := time.Now()
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}

	var unchanged map[string]bool
	if delta != nil {
		unchanged = delta.UnchangedSet()
	}

	// Working copies: analyses must not mutate the System.
	wg := graph.New[*workNode]()
	remap := make(map[graph.Node]graph.Node)
	for _, n := range s.g.Nodes() {
		l := s.g.Label(n)
		name := l.res.String()
		remap[n] = wg.Add(&workNode{name: name, expr: l.expr, orig: l.orig, sum: l.sum, unchanged: unchanged[name]})
	}
	for _, n := range s.g.Nodes() {
		for _, v := range s.g.Succs(n) {
			_ = wg.AddEdge(remap[n], remap[v])
		}
	}

	cc := newCommuteChecker(opts)
	cc.diffAware = delta != nil
	defer cc.cancel() // release the derived context on every exit path
	stats := Stats{Resources: wg.Len(), TotalPaths: s.TotalPaths(), Workers: cc.workers, InternHits: s.internHits}
	if delta != nil {
		stats.DiffChanged = len(delta.Changed) + len(delta.Added)
		stats.DiffUnchanged = len(delta.Unchanged)
	}

	// Second verdict tier: persist this check's semantic-commutativity
	// verdicts and warm-start from verdicts earlier processes left behind.
	if opts.CacheDir != "" {
		disk, err := qcache.OpenDiskShared(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		cc.cache.AttachDisk(disk)
	}

	// Incremental solving: route this check's semantic queries through a
	// pooled solver per worker, sharing one vocabulary built from the full
	// pre-analysis expression set. Elimination and pruning only ever
	// shrink expressions and their domains, so this vocabulary spans every
	// later query; a query over a superset domain decides the same
	// equivalence (bounded-domain lemma), keeping verdicts identical to
	// the fresh-solver path.
	if opts.SemanticCommute && !opts.FreshSolvers {
		poolDom := make(fs.PathSet)
		poolExprs := make([]fs.Expr, 0, wg.Len())
		for _, n := range wg.Nodes() {
			poolExprs = append(poolExprs, wg.Label(n).expr)
			poolDom.AddAll(fs.Dom(wg.Label(n).expr))
		}
		cc.usePool(sym.NewVocab(poolDom, poolExprs...))
	}
	// Pools outlive checks (re-checks reuse warm sessions), so the memo-hit
	// stat below is the delta this check contributed.
	var applyHitsBase int64
	if cc.pool != nil {
		applyHitsBase = cc.pool.applyHits()
	}

	// Step 1 (section 4.4): eliminate resources that commute with every
	// resource that may run after them. Removal order matters for replay:
	// the first-removed resource commutes with everything else and can be
	// placed last in any linearization.
	var eliminated []*workNode
	if opts.Elimination {
		eliminated = eliminate(wg, cc)
		stats.Eliminated = len(eliminated)
		if err := cc.err(); err != nil {
			return nil, err
		}
	}

	// Step 2 (section 4.4): prune definitive writes to paths that only a
	// single resource touches.
	if opts.Pruning {
		pruned, reinternHits := pruneGraph(wg, !opts.DisableInterning)
		stats.PrunedPaths = pruned
		stats.InternHits += reinternHits
	}

	// Step 3 (sections 4.1–4.3): encode all POR-reduced linearizations
	// symbolically and ask the solver for an input that distinguishes two
	// of them.
	nodes := wg.Nodes()
	exprs := make([]fs.Expr, 0, len(nodes))
	dom := make(fs.PathSet)
	for _, n := range nodes {
		exprs = append(exprs, wg.Label(n).expr)
		dom.AddAll(fs.Dom(wg.Label(n).expr))
	}
	vocab := sym.NewVocab(dom, exprs...)
	stats.Paths = len(vocab.Paths)
	en := sym.NewEncoder(vocab)
	if !deadline.IsZero() {
		en.S.SetDeadline(deadline)
	}
	input := en.FreshInputState("in")
	if opts.WellFormedInit {
		en.S.Assert(en.WellFormed(input))
	}

	outs, orders, err := enumerate(wg, en, input, opts, deadline, cc)
	if err != nil {
		return nil, err
	}
	stats.Sequences = len(outs)
	stats.WorkerPanics = int(cc.panics.Load())
	stats.SemQueries = int(cc.queries.Load())
	stats.SemCacheHits = int(cc.hits.Load())
	stats.SolverReuses = int(cc.reuses.Load())
	stats.DiskCacheHits = int(cc.diskHits.Load())
	stats.RemoteCacheHits = int(cc.remoteHits.Load())
	if delta != nil {
		stats.PairsReused = int(cc.reusedPairs.Load())
		stats.PairsReverified = int(cc.reverifiedPairs.Load())
		stats.InheritMisses = int(cc.inheritMisses.Load())
	}
	if cc.pool != nil {
		stats.LearntRetained, stats.PreprocessRemoved = cc.pool.snapshot()
		if d := cc.pool.applyHits() - applyHitsBase; d > 0 {
			stats.EncodeMemoHits = d
		}
	}
	stats.PortfolioEscalations = int(cc.escalations.Load())
	stats.PortfolioRaces = int(cc.races.Load())
	if len(cc.portfolio) > 1 {
		byConfig := make(map[string]int)
		for i := range cc.wins {
			if n := cc.wins[i].Load(); n > 0 {
				byConfig[cc.portfolio[i].Name] = int(n)
			}
		}
		if len(byConfig) > 0 {
			stats.WinnerByConfig = byConfig
		}
	}
	// Search counters span the worker queries (cc.satm) plus the final
	// determinacy disjunction on the big encoder below; filled at return.
	fillSearch := func() {
		co := cc.satm.Counters().Add(en.S.Counters())
		stats.SolverDecisions = co.Decisions
		stats.SolverPropagations = co.Propagations
		stats.SolverConflicts = co.Conflicts
		stats.SolverRestarts = co.Restarts
	}

	if len(outs) <= 1 {
		// A single linearization after POR is deterministic by
		// construction: every order was proven equivalent to it.
		fillSearch()
		stats.Duration = time.Since(start)
		return &DeterminismResult{Deterministic: true, Stats: stats}, nil
	}

	// All-pairwise equality is equivalent to all-equal-to-first under a
	// shared input (equality of concrete outcomes is transitive), so a
	// linear number of disequalities suffices.
	diffTerms := make([]smt.T, len(outs))
	ts := make([]smt.T, 0, len(outs)-1)
	for i := 1; i < len(outs); i++ {
		diffTerms[i] = en.StatesDiffer(outs[0], outs[i])
		ts = append(ts, diffTerms[i])
	}
	en.S.Assert(en.S.Or(ts...))

	switch en.S.Check() {
	case sat.Unsat:
		fillSearch()
		stats.Duration = time.Since(start)
		return &DeterminismResult{Deterministic: true, Stats: stats}, nil
	case sat.Unknown:
		return nil, ErrTimeout
	}
	fillSearch()

	// A model: decode the input and identify a distinguishing pair.
	in, err := en.ModelState(input)
	if err != nil {
		return nil, err
	}
	second := 1
	for i := 1; i < len(outs); i++ {
		differs, err := en.S.BoolValue(diffTerms[i])
		if err != nil {
			return nil, err
		}
		if differs {
			second = i
			break
		}
	}

	cex := s.replay(wg, eliminated, in, orders[0], orders[second], opts.WellFormedInit)
	if cex != nil {
		stats.Duration = time.Since(start)
		return &DeterminismResult{Deterministic: false, Counterexample: cex, Stats: stats}, nil
	}

	// The distinguishing input did not replay on the full graph: the
	// abstraction introduced by elimination/pruning was too coarse for
	// this manifest. Fall back to the exact configuration (POR only).
	exact := opts
	exact.Elimination = false
	exact.Pruning = false
	if opts.Elimination || opts.Pruning {
		res, err := s.checkDeterminism(exact, delta)
		if err != nil {
			return nil, err
		}
		res.Stats.TotalPaths = stats.TotalPaths
		return res, nil
	}
	// POR and the base encoding are exact; an unreplayable model here is a
	// bug in the encoder.
	panic("core: determinism model failed to replay under the exact configuration")
}

// replay applies the two orders (plus eliminated resources, in reverse
// elimination order) to the decoded input using the unpruned resource
// models and the concrete evaluator. It returns nil when the outcomes do
// not actually differ.
func (s *System) replay(wg *graph.Graph[*workNode], eliminated []*workNode, in fs.State, order1, order2 []graph.Node, keepWellFormed bool) *Counterexample {
	build := func(order []graph.Node) ([]string, fs.Expr) {
		var names []string
		var exprs []fs.Expr
		for _, n := range order {
			names = append(names, wg.Label(n).name)
			exprs = append(exprs, wg.Label(n).orig)
		}
		for i := len(eliminated) - 1; i >= 0; i-- {
			names = append(names, eliminated[i].name)
			exprs = append(exprs, eliminated[i].orig)
		}
		return names, fs.SeqAll(exprs...)
	}
	names1, e1 := build(order1)
	names2, e2 := build(order2)
	if !diverges(e1, e2, in) {
		return nil
	}
	in = minimizeInput(e1, e2, in, keepWellFormed)
	out1, ok1 := fs.Eval(e1, in)
	out2, ok2 := fs.Eval(e2, in)
	return &Counterexample{
		Input:  in,
		Order1: names1, Order2: names2,
		Ok1: ok1, Ok2: ok2,
		Out1: out1, Out2: out2,
	}
}

// diverges reports whether the two sequenced expressions produce different
// outcomes from in.
func diverges(e1, e2 fs.Expr, in fs.State) bool {
	out1, ok1 := fs.Eval(e1, in)
	out2, ok2 := fs.Eval(e2, in)
	if ok1 != ok2 {
		return true
	}
	return ok1 && !out1.Equal(out2)
}

// minimizeInput greedily removes entries from the witness filesystem while
// the two orders still diverge, so reported counterexamples mention only
// the state that matters. Removing one entry can unblock another (e.g. a
// file inside a directory), so the pass repeats until a fixpoint.
func minimizeInput(e1, e2 fs.Expr, in fs.State, keepWellFormed bool) fs.State {
	min := in.Clone()
	for changed := true; changed; {
		changed = false
		for _, p := range min.Paths() {
			saved := min[p]
			delete(min, p)
			if diverges(e1, e2, min) && (!keepWellFormed || min.IsWellFormed()) {
				changed = true
				continue
			}
			min[p] = saved
		}
	}
	return min
}

// eliminate repeatedly removes fringe resources (no dependents) that
// commute with every incomparable resource, returning them in removal
// order. Each round first batches the candidate pairs it is about to ask
// and fans the semantic-commutativity queries across the worker pool;
// the removal pass itself stays sequential and identical to the
// single-threaded analysis, so the removal order — which replay depends
// on — is the same at any parallelism.
func eliminate(wg *graph.Graph[*workNode], cc *commuteChecker) []*workNode {
	var removed []*workNode
	for {
		// Batch this round's candidate queries: every fringe node against
		// every incomparable node, as of the round-start graph. The
		// sequential pass below may skip some (early break on the first
		// conflict) or add some (nodes that become fringe mid-round);
		// prefetching a near-exact superset is only a cache warm-up and
		// cannot change any verdict.
		if cc.semantic && cc.workers > 1 {
			var pairs []pair
			for _, v := range wg.Nodes() {
				if wg.OutDegree(v) != 0 {
					continue
				}
				anc := wg.Ancestors(v)
				for _, u := range wg.Nodes() {
					if u == v {
						continue
					}
					if _, isAnc := anc[u]; isAnc {
						continue
					}
					pairs = append(pairs, pair{wg.Label(v), wg.Label(u)})
				}
			}
			cc.prefetch(pairs)
		}

		changed := false
		for _, v := range wg.Nodes() {
			if wg.OutDegree(v) != 0 {
				continue
			}
			anc := wg.Ancestors(v)
			ok := true
			for _, u := range wg.Nodes() {
				if u == v {
					continue
				}
				if _, isAnc := anc[u]; isAnc {
					continue
				}
				if !cc.commutes(wg.Label(v), wg.Label(u)) {
					ok = false
					break
				}
			}
			if ok {
				removed = append(removed, wg.Label(v))
				wg.Remove(v)
				changed = true
			}
		}
		if !changed {
			return removed
		}
	}
}

// pruneGraph prunes, for every resource, the definitive writes to paths no
// other resource touches. Returns the number of pruned paths and, when
// intern is set, the hash-consing hits from re-canonicalizing the rebuilt
// models (pruning shrinks trees, so most subtrees are already canonical).
func pruneGraph(wg *graph.Graph[*workNode], intern bool) (int, int64) {
	nodes := wg.Nodes()
	// Count how many resources touch each path.
	touchers := make(map[fs.Path]int)
	for _, n := range nodes {
		for p := range wg.Label(n).sum.Paths() {
			touchers[p]++
		}
		for d := range wg.Label(n).sum.ChildObserved() {
			// Observing the children of d counts as touching every
			// modeled child of d; handled below per candidate.
			_ = d
		}
	}
	pruned := 0
	var internHits int64
	for _, n := range nodes {
		wn := wg.Label(n)
		defs := prune.DefinitiveWrites(wn.expr)
		expr := wn.expr
		changed := false
		for p, v := range defs {
			if !v.Definitive() {
				continue
			}
			if touchers[p] != 1 {
				continue
			}
			// No other resource may observe p's presence through its
			// parent's child-set.
			shared := false
			for _, m := range nodes {
				if m == n {
					continue
				}
				if wg.Label(m).sum.ObservesChildrenOf(p.Parent()) {
					shared = true
					break
				}
			}
			if shared {
				continue
			}
			next, ok := prune.Prune(p, expr)
			if !ok {
				continue
			}
			expr = next
			pruned++
			changed = true
		}
		if changed {
			if intern {
				h, st := fs.InternWithStats(expr)
				expr = h
				internHits += st.Hits
			}
			wg.SetLabel(n, &workNode{name: wn.name, expr: expr, orig: wn.orig, sum: commute.Analyze(expr), unchanged: wn.unchanged})
		}
	}
	return pruned, internHits
}

// enumerate explores the POR-reduced linearizations of wg, applying each
// resource's model symbolically (ΦG of figures 7 and 9a). It returns the
// symbolic output state and resource order of every explored
// linearization.
func enumerate(wg *graph.Graph[*workNode], en *sym.Encoder, input *sym.State, opts Options, deadline time.Time, cc *commuteChecker) ([]*sym.State, [][]graph.Node, error) {
	nodes := wg.Nodes()
	idx := make(map[graph.Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	// Pairwise commutativity matrix and descendant sets. Every upper-
	// triangle entry is needed, so the pairs fan across the worker pool
	// directly (no early exits to preserve).
	canCommute := make([][]bool, len(nodes))
	for i := range nodes {
		canCommute[i] = make([]bool, len(nodes))
	}
	if opts.Commutativity {
		var pairs [][2]int
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		runParallel(cc.ctx, cc.workers, len(pairs), func(k int) {
			i, j := pairs[k][0], pairs[k][1]
			v := cc.commutes(wg.Label(nodes[i]), wg.Label(nodes[j]))
			canCommute[i][j] = v
			canCommute[j][i] = v
		})
		if err := cc.err(); err != nil {
			// A worker panicked or the caller canceled: the matrix may be
			// partial, so abort instead of enumerating over it.
			return nil, nil, err
		}
	}
	desc := make([]map[graph.Node]struct{}, len(nodes))
	for i, n := range nodes {
		desc[i] = wg.Descendants(n)
	}

	indeg := make(map[graph.Node]int, len(nodes))
	for _, n := range nodes {
		indeg[n] = wg.InDegree(n)
	}
	remaining := make(map[graph.Node]bool, len(nodes))
	for _, n := range nodes {
		remaining[n] = true
	}

	var outs []*sym.State
	var orders [][]graph.Node
	order := make([]graph.Node, 0, len(nodes))

	// The exploration combines two sound reductions:
	//
	//  1. The pivot rule of figure 9a: a ready resource that commutes with
	//     every remaining non-descendant can be scheduled first in every
	//     linearization, so only that branch is explored.
	//  2. Sleep sets: after exploring a branch that schedules t first, t
	//     is put to sleep for the sibling branches and stays asleep as
	//     long as only commuting resources execute — any linearization in
	//     which t could be swapped back to the front was already covered
	//     by the first branch. This collapses the n! interleavings of a
	//     mostly-commuting resource set to one representative per
	//     Mazurkiewicz trace even when no global pivot exists.
	//
	// Both use lemma 4's semantic commutativity, so every pruned
	// linearization is equivalent to an explored one.
	var rec func(st *sym.State, sleep map[graph.Node]bool) error
	rec = func(st *sym.State, sleep map[graph.Node]bool) error {
		if err := cc.err(); err != nil {
			return err
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrTimeout
		}
		if len(order) == len(nodes) {
			if len(outs) >= opts.MaxSequences {
				return ErrTimeout
			}
			outs = append(outs, st)
			orders = append(orders, append([]graph.Node(nil), order...))
			return nil
		}
		var ready []graph.Node
		for _, n := range nodes {
			if remaining[n] && indeg[n] == 0 && !sleep[n] {
				ready = append(ready, n)
			}
		}
		if len(ready) == 0 {
			// Everything ready is asleep: all linearizations below are
			// permutations of branches explored earlier.
			return nil
		}
		if opts.Commutativity {
			for _, e := range ready {
				pivot := true
				for _, m := range nodes {
					if m == e || !remaining[m] {
						continue
					}
					if _, isDesc := desc[idx[e]][m]; isDesc {
						continue
					}
					if !canCommute[idx[e]][idx[m]] {
						pivot = false
						break
					}
				}
				if pivot {
					ready = []graph.Node{e}
					break
				}
			}
		}
		accumulated := sleep
		for branch, n := range ready {
			childSleep := make(map[graph.Node]bool)
			for s := range accumulated {
				if canCommute[idx[s]][idx[n]] {
					childSleep[s] = true
				}
			}
			remaining[n] = false
			for _, m := range wg.Succs(n) {
				indeg[m]--
			}
			order = append(order, n)
			err := rec(en.Apply(wg.Label(n).expr, st), childSleep)
			order = order[:len(order)-1]
			remaining[n] = true
			for _, m := range wg.Succs(n) {
				indeg[m]++
			}
			if err != nil {
				return err
			}
			if opts.Commutativity && !opts.DisableSleepSets && branch < len(ready)-1 {
				if accumulated == nil || len(accumulated) == len(sleep) {
					// Copy-on-write: extend the sleep set for siblings.
					next := make(map[graph.Node]bool, len(sleep)+len(ready))
					for s := range sleep {
						next[s] = true
					}
					accumulated = next
				}
				accumulated[n] = true
			}
		}
		return nil
	}
	if err := rec(input, nil); err != nil {
		return nil, nil, err
	}
	return outs, orders, nil
}
