package core

// Fault-tolerance tests for the analysis pipeline: verdicts must be
// byte-identical under injected network faults that stay within the
// client's retry budget (at any worker count), faults beyond the budget
// must fail fast with a typed error, worker panics must be isolated, and
// cancellation must stop a check promptly — all without leaking a
// goroutine (this file is part of the -race CI set).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/fs"
	"repro/internal/leakcheck"
	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// faultClient serves cat over real HTTP behind a fault-injecting
// transport and returns a hardened client with a fast, test-sized retry
// discipline. Keep-alives are disabled so net/http cannot transparently
// replay a request on a dead reused connection, which would consume
// fault-plan decisions and make the schedule depend on connection state.
func faultClient(t *testing.T, cat *pkgdb.Catalog, cfg faults.Config, attempts int) *pkgdb.Client {
	t.Helper()
	srv := httptest.NewServer(pkgdb.Handler(cat))
	t.Cleanup(srv.Close)
	hc := &http.Client{Transport: &faults.Transport{
		Base: &http.Transport{DisableKeepAlives: true},
		Plan: faults.NewPlan(cfg),
	}}
	return pkgdb.NewClientConfig(srv.URL, pkgdb.ClientConfig{
		HTTPClient:   hc,
		Attempts:     attempts,
		RetryBackoff: time.Microsecond,
		MaxBackoff:   10 * time.Microsecond,
	})
}

// TestDifferentialVerdictsUnderFaults is the acceptance property: with
// injected faults that stay within the retry budget (burst 2 per path,
// 4 attempts), the verdict — counterexample and all — is identical to
// the fault-free run, at 1 worker and at 8.
func TestDifferentialVerdictsUnderFaults(t *testing.T) {
	manifest, provider := parallelWorkload(4)
	cat := provider.(*pkgdb.Catalog)
	clean := checkWorkload(t, manifest, cat, 1, qcache.New())

	for _, workers := range []int{1, 8} {
		client := faultClient(t, cat, faults.Config{Seed: 42, Burst: 2}, 4)
		res := checkWorkload(t, manifest, client, workers, qcache.New())

		if res.Deterministic != clean.Deterministic {
			t.Fatalf("workers=%d: verdict under faults %v, clean %v", workers, res.Deterministic, clean.Deterministic)
		}
		if !reflect.DeepEqual(res.Counterexample, clean.Counterexample) {
			t.Errorf("workers=%d: counterexamples differ:\nfaulty: %+v\nclean:  %+v", workers, res.Counterexample, clean.Counterexample)
		}
		if res.Stats.Eliminated != clean.Stats.Eliminated ||
			res.Stats.Sequences != clean.Stats.Sequences ||
			res.Stats.Paths != clean.Stats.Paths ||
			res.Stats.Resources != clean.Stats.Resources {
			t.Errorf("workers=%d: stats differ:\nfaulty: %+v\nclean:  %+v", workers, res.Stats, clean.Stats)
		}
		if st := client.Stats(); st.Retries == 0 {
			t.Errorf("workers=%d: no retries recorded; the fault plan never fired", workers)
		}
	}
}

// TestFaultsBeyondBudgetFailFast: when every attempt faults, loading the
// manifest fails with the typed infrastructure error — promptly, without
// hanging, panicking, or leaking goroutines.
func TestFaultsBeyondBudgetFailFast(t *testing.T) {
	manifest, provider := parallelWorkload(2)
	cat := provider.(*pkgdb.Catalog)
	client := faultClient(t, cat, faults.Config{Seed: 42, Burst: 1 << 20}, 2)
	base := leakcheck.Take()

	opts := DefaultOptions()
	opts.Provider = client
	_, err := Load(manifest, opts)
	if err == nil {
		t.Fatal("load succeeded with every attempt faulted")
	}
	if !errors.Is(err, pkgdb.ErrUnavailable) {
		t.Fatalf("err = %v, want pkgdb.ErrUnavailable", err)
	}
	if !IsInfraError(err) {
		t.Fatalf("IsInfraError(%v) = false", err)
	}
	leakcheck.Assert(t, base)
}

// TestWorkerPanicIsolation: a panic inside a solver worker is recovered on
// that worker, aborts the check with a *PanicError carrying the stack, and
// strands neither the pool nor any goroutine — at 1 worker and at 8.
func TestWorkerPanicIsolation(t *testing.T) {
	manifest, provider := parallelWorkload(4)
	for _, workers := range []int{1, 8} {
		solveTestHook = func(e1, e2 fs.Expr) { panic("injected solver crash") }
		base := leakcheck.Take()

		opts := DefaultOptions()
		opts.Provider = provider
		opts.SemanticCommute = true
		opts.Parallelism = workers
		opts.SharedQueryCache = qcache.New()
		s, err := Load(manifest, opts)
		if err != nil {
			solveTestHook = nil
			t.Fatal(err)
		}
		res, err := s.CheckDeterminism()
		solveTestHook = nil

		if err == nil {
			t.Fatalf("workers=%d: check returned a verdict (%+v) despite panicking workers", workers, res)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "injected solver crash" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error = %v (stack %d bytes)", workers, pe.Value, len(pe.Stack))
		}
		if !IsInfraError(err) {
			t.Errorf("workers=%d: IsInfraError = false for a worker panic", workers)
		}
		leakcheck.Assert(t, base)
	}
}

// TestCancellationStopsCheck: canceling Options.Context mid-analysis stops
// the check promptly with ErrCanceled, joining every worker.
func TestCancellationStopsCheck(t *testing.T) {
	manifest, provider := parallelWorkload(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	started := make(chan struct{})
	var once sync.Once
	solveTestHook = func(e1, e2 fs.Expr) {
		once.Do(func() { close(started) })
		<-ctx.Done() // hold workers mid-query until the caller cancels
	}
	defer func() { solveTestHook = nil }()
	go func() {
		<-started
		cancel()
	}()
	base := leakcheck.Take()

	opts := DefaultOptions()
	opts.Provider = provider
	opts.SemanticCommute = true
	opts.Parallelism = 4
	opts.SharedQueryCache = qcache.New()
	opts.Context = ctx
	s, err := Load(manifest, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err == nil {
		t.Fatalf("canceled check returned a verdict: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	leakcheck.Assert(t, base)
}

// TestCancellationBeforeStart: a context canceled before the check begins
// yields ErrCanceled without doing any solver work.
func TestCancellationBeforeStart(t *testing.T) {
	manifest, provider := parallelWorkload(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	opts := DefaultOptions()
	opts.Provider = provider
	opts.SemanticCommute = true
	opts.SharedQueryCache = qcache.New()
	s, err := Load(manifest, opts) // load without ctx: the catalog is local
	if err != nil {
		t.Fatal(err)
	}
	opts.Context = ctx
	if _, err := s.checkDeterminism(opts, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
