package core

// Engine-level portfolio tests: Options.Portfolio must change latency
// and nothing else. Reports — verdict, counterexample, and the analysis
// stats that fingerprint a check — must be byte-identical to
// single-config runs at any worker count, while the racing counters
// surface the escalations through Stats.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/qcache"
)

// checkPortfolio runs a determinacy check with the given racing width
// (k <= 1 disables racing). EscalateConflicts 1 forces every semantic
// query past the default-config attempt and into a race.
func checkPortfolio(t *testing.T, manifest string, opts Options, workers, k int) *DeterminismResult {
	t.Helper()
	opts.SemanticCommute = true
	opts.Parallelism = workers
	opts.SharedQueryCache = qcache.New()
	opts.Timeout = 2 * time.Minute
	if k > 1 {
		opts.Portfolio = PortfolioOptions{K: k, EscalateConflicts: 1}
	}
	// Cold pools: a session warmed by an earlier run answers these small
	// queries without a single conflict, and nothing would ever escalate.
	ResetSolverPools()
	s, err := Load(manifest, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A deterministic semantic-commute-heavy workload must produce identical
// reports with and without portfolio racing, at 1 and at 8 workers, and
// the portfolio run must actually have escalated and raced.
func TestPortfolioReportIdentical(t *testing.T) {
	manifest, provider := parallelWorkload(4)
	for _, workers := range []int{1, 8} {
		opts := DefaultOptions()
		opts.Provider = provider
		single := checkPortfolio(t, manifest, opts, workers, 1)
		portfolio := checkPortfolio(t, manifest, opts, workers, 4)

		if single.Deterministic != portfolio.Deterministic {
			t.Fatalf("workers=%d: verdict differs: single=%v portfolio=%v",
				workers, single.Deterministic, portfolio.Deterministic)
		}
		if !reflect.DeepEqual(single.Counterexample, portfolio.Counterexample) {
			t.Errorf("workers=%d: counterexamples differ:\nsingle: %+v\nportfolio: %+v",
				workers, single.Counterexample, portfolio.Counterexample)
		}
		if single.Stats.Eliminated != portfolio.Stats.Eliminated ||
			single.Stats.Sequences != portfolio.Stats.Sequences ||
			single.Stats.Paths != portfolio.Stats.Paths ||
			single.Stats.Resources != portfolio.Stats.Resources {
			t.Errorf("workers=%d: analysis stats differ:\nsingle: %+v\nportfolio: %+v",
				workers, single.Stats, portfolio.Stats)
		}

		// The single run must not have raced; the portfolio run must have.
		if single.Stats.PortfolioRaces != 0 || single.Stats.PortfolioEscalations != 0 {
			t.Errorf("workers=%d: single-config run reports %d races, %d escalations",
				workers, single.Stats.PortfolioRaces, single.Stats.PortfolioEscalations)
		}
		if portfolio.Stats.PortfolioEscalations == 0 || portfolio.Stats.PortfolioRaces == 0 {
			t.Errorf("workers=%d: portfolio run with EscalateConflicts=1 never raced (escalations=%d races=%d, %d sem queries)",
				workers, portfolio.Stats.PortfolioEscalations, portfolio.Stats.PortfolioRaces, portfolio.Stats.SemQueries)
		}
		wins := 0
		for _, n := range portfolio.Stats.WinnerByConfig {
			wins += n
		}
		if wins != portfolio.Stats.PortfolioRaces {
			t.Errorf("workers=%d: WinnerByConfig sums to %d wins over %d races",
				workers, wins, portfolio.Stats.PortfolioRaces)
		}
		// The search counters must be live on both runs.
		for name, res := range map[string]*DeterminismResult{"single": single, "portfolio": portfolio} {
			if res.Stats.SolverPropagations == 0 || res.Stats.SolverDecisions == 0 {
				t.Errorf("workers=%d %s: solver search counters empty: %+v", workers, name, res.Stats)
			}
		}
	}
}

// A non-deterministic manifest must keep the exact same counterexample
// under portfolio racing at any worker count: witnesses are re-derived
// canonically, so report fingerprints cannot depend on which config won.
func TestPortfolioCounterexampleIdentical(t *testing.T) {
	single := checkPortfolio(t, fig3c, DefaultOptions(), 1, 1)
	if single.Deterministic {
		t.Fatal("fig 3c must be non-deterministic")
	}
	for _, workers := range []int{1, 8} {
		portfolio := checkPortfolio(t, fig3c, DefaultOptions(), workers, 4)
		if portfolio.Deterministic {
			t.Fatalf("workers=%d: portfolio run flipped fig 3c to deterministic", workers)
		}
		if !reflect.DeepEqual(single.Counterexample, portfolio.Counterexample) {
			t.Errorf("workers=%d: counterexample differs under portfolio racing:\nsingle: %+v\nportfolio: %+v",
				workers, single.Counterexample, portfolio.Counterexample)
		}
	}
}
