package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// parallelWorkload builds a manifest of n packages whose dependency
// closures all overlap (every svc package depends on libcommon), so every
// pair fails the syntactic commutativity check and needs one semantic
// solver query.
func parallelWorkload(n int) (string, pkgdb.Provider) {
	catalog := pkgdb.NewCatalog()
	lib := &pkgdb.Package{Name: "libcommon", Version: "1.0"}
	for i := 0; i < 4; i++ {
		lib.Files = append(lib.Files, fmt.Sprintf("/usr/lib/libcommon/lib%03d", i))
	}
	catalog.Add("ubuntu", lib)
	manifest := ""
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("svc-%d", i)
		p := &pkgdb.Package{Name: name, Version: "1.0", Depends: []string{"libcommon"}}
		p.Files = append(p.Files, fmt.Sprintf("/usr/lib/%s/lib000", name))
		catalog.Add("ubuntu", p)
		manifest += fmt.Sprintf("package {'%s': ensure => present }\n", name)
	}
	return manifest, catalog
}

func checkWorkload(t *testing.T, manifest string, provider pkgdb.Provider, workers int, cache *qcache.Cache) *DeterminismResult {
	t.Helper()
	opts := DefaultOptions()
	opts.Provider = provider
	opts.SemanticCommute = true
	opts.Parallelism = workers
	opts.SharedQueryCache = cache
	opts.Timeout = 2 * time.Minute
	s, err := Load(manifest, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunParallel(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 17} {
		for _, n := range []int{0, 1, 5, 64} {
			hits := make([]atomicFlag, n)
			runParallel(context.Background(), workers, n, func(i int) { hits[i].set(t) })
			for i := range hits {
				if !hits[i].hit {
					t.Errorf("workers=%d n=%d: index %d never ran", workers, n, i)
				}
			}
		}
	}
}

type atomicFlag struct {
	mu  sync.Mutex
	hit bool
}

func (f *atomicFlag) set(t *testing.T) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hit {
		t.Error("index ran twice")
	}
	f.hit = true
}

// The analysis must return identical verdicts — counterexample included —
// at any worker count: prefetching is a pure cache warm-up and the
// authoritative analysis order is unchanged.
func TestParallelVerdictsIdentical(t *testing.T) {
	manifest, provider := parallelWorkload(4)
	seq := checkWorkload(t, manifest, provider, 1, qcache.New())
	par := checkWorkload(t, manifest, provider, 8, qcache.New())

	if seq.Deterministic != par.Deterministic {
		t.Fatalf("verdict differs: seq=%v par=%v", seq.Deterministic, par.Deterministic)
	}
	if !reflect.DeepEqual(seq.Counterexample, par.Counterexample) {
		t.Errorf("counterexamples differ:\nseq: %+v\npar: %+v", seq.Counterexample, par.Counterexample)
	}
	if seq.Stats.Eliminated != par.Stats.Eliminated ||
		seq.Stats.Sequences != par.Stats.Sequences ||
		seq.Stats.Paths != par.Stats.Paths ||
		seq.Stats.Resources != par.Stats.Resources {
		t.Errorf("stats differ:\nseq: %+v\npar: %+v", seq.Stats, par.Stats)
	}
	if seq.Stats.Workers != 1 || par.Stats.Workers != 8 {
		t.Errorf("workers stat: seq=%d par=%d", seq.Stats.Workers, par.Stats.Workers)
	}
	if !seq.Deterministic {
		t.Error("overlapping-closure workload should be deterministic")
	}
}

// A genuinely conflicting manifest must stay non-deterministic with the
// same counterexample at any worker count.
func TestParallelConflictVerdictsIdentical(t *testing.T) {
	opts := DefaultOptions()
	opts.SemanticCommute = true
	opts.Timeout = 2 * time.Minute
	var results []*DeterminismResult
	for _, workers := range []int{1, 8} {
		o := opts
		o.Parallelism = workers
		o.SharedQueryCache = qcache.New()
		s, err := Load(fig3c, o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.CheckDeterminism()
		if err != nil {
			t.Fatal(err)
		}
		if res.Deterministic {
			t.Fatalf("fig 3c must be non-deterministic at %d workers", workers)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0].Counterexample, results[1].Counterexample) {
		t.Errorf("counterexamples differ across worker counts:\nseq: %+v\npar: %+v",
			results[0].Counterexample, results[1].Counterexample)
	}
}

// A second check of the same manifest through the same shared cache must
// answer every semantic decision from the cache without re-running the
// solver.
func TestSharedCacheWarmSecondCheck(t *testing.T) {
	manifest, provider := parallelWorkload(4)
	cache := qcache.New()

	cold := checkWorkload(t, manifest, provider, 4, cache)
	if cold.Stats.SemQueries == 0 {
		t.Fatal("cold check ran no solver queries; workload is not semantic-commute-heavy")
	}

	warm := checkWorkload(t, manifest, provider, 4, cache)
	if warm.Stats.SemQueries != 0 {
		t.Errorf("warm check re-ran %d solver queries", warm.Stats.SemQueries)
	}
	if warm.Stats.SemCacheHits == 0 {
		t.Error("warm check recorded no cache hits")
	}
	if rate := warm.Stats.SemCacheHitRate(); rate != 1 {
		t.Errorf("warm hit rate = %v, want 1", rate)
	}
	if cold.Deterministic != warm.Deterministic ||
		cold.Stats.Eliminated != warm.Stats.Eliminated ||
		cold.Stats.Sequences != warm.Stats.Sequences {
		t.Errorf("cache warm-up changed the result:\ncold: %+v\nwarm: %+v", cold.Stats, warm.Stats)
	}
}

// Many checks sharing one cache concurrently; designed to run under -race.
func TestConcurrentChecksStress(t *testing.T) {
	manifest, provider := parallelWorkload(3)
	cache := qcache.New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			opts := DefaultOptions()
			opts.Provider = provider
			opts.SemanticCommute = true
			opts.Parallelism = workers
			opts.SharedQueryCache = cache
			opts.Timeout = 2 * time.Minute
			s, err := Load(manifest, opts)
			if err != nil {
				t.Error(err)
				return
			}
			res, err := s.CheckDeterminism()
			if err != nil {
				t.Error(err)
				return
			}
			if !res.Deterministic {
				t.Error("workload must be deterministic")
			}
		}(1 + g%4)
	}
	wg.Wait()
}
