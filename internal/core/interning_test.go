package core_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/qcache"
)

// TestInternedVerdictsMatchPlain is the acceptance gate of the hash-consed
// IR: on the full example suite, checks over interned, memoized models must
// produce verdicts — including counterexamples — identical to the plain-tree
// baseline, at 1 and at 8 workers. Private query caches keep every run
// solving for itself.
func TestInternedVerdictsMatchPlain(t *testing.T) {
	core.ResetSolverPools()
	base := core.DefaultOptions()
	base.SemanticCommute = true
	base.Timeout = time.Minute
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			plain := base
			plain.DisableInterning = true
			plain.Parallelism = 1
			plain.SharedQueryCache = qcache.New()
			want := runCheck(t, b.Source, plain)
			if want.err == "" && want.deterministic != b.Deterministic {
				t.Fatalf("plain verdict %v disagrees with expected %v",
					want.deterministic, b.Deterministic)
			}
			for _, workers := range []int{1, 8} {
				interned := base
				interned.Parallelism = workers
				interned.SharedQueryCache = qcache.New()
				got := runCheck(t, b.Source, interned)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: interned verdict diverges from plain:\ninterned: %+v\nplain:    %+v",
						workers, got, want)
				}
			}
		})
	}
}

// TestWarmDiskCache: a second check suite pointed at the same cache
// directory must answer every semantic query from disk — zero solver
// queries — with verdicts identical to the cold run.
func TestWarmDiskCache(t *testing.T) {
	dir := t.TempDir()
	base := core.DefaultOptions()
	base.SemanticCommute = true
	base.Timeout = time.Minute
	base.CacheDir = dir

	type outcome struct {
		v       verdict
		queries int
		disk    int
	}
	run := func(t *testing.T, source string) outcome {
		t.Helper()
		opts := base
		opts.SharedQueryCache = qcache.New() // fresh memory tier each run
		s, err := core.Load(source, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.CheckDeterminism()
		if err != nil {
			return outcome{v: verdict{err: err.Error()}}
		}
		return outcome{
			v: verdict{
				deterministic: res.Deterministic,
				cex:           res.Counterexample,
				eliminated:    res.Stats.Eliminated,
				sequences:     res.Stats.Sequences,
			},
			queries: res.Stats.SemQueries,
			disk:    res.Stats.DiskCacheHits,
		}
	}

	semQueries := 0
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			core.ResetSolverPools()
			cold := run(t, b.Source)
			semQueries += cold.queries
			core.ResetSolverPools() // a warm pool would mask missing disk hits
			warm := run(t, b.Source)
			if !reflect.DeepEqual(warm.v, cold.v) {
				t.Errorf("warm verdict diverges from cold:\nwarm: %+v\ncold: %+v", warm.v, cold.v)
			}
			if warm.queries != 0 {
				t.Errorf("warm run executed %d solver queries; want 0", warm.queries)
			}
			if cold.queries > 0 && warm.disk == 0 {
				t.Errorf("cold run solved %d queries but warm run had no disk hits", cold.queries)
			}
		})
	}
	if semQueries == 0 {
		t.Error("suite produced no semantic queries; disk tier never exercised")
	}
}

// TestInterningStats: compiling a manifest whose resources share dependency
// closures must report intern hits, and the pooled encode memo must be
// visible in the check stats.
func TestInterningStats(t *testing.T) {
	core.ResetSolverPools()
	opts := core.DefaultOptions()
	opts.SemanticCommute = true
	opts.Parallelism = 1
	opts.Timeout = 2 * time.Minute
	opts.SharedQueryCache = qcache.New()
	src := `
package {'git': ensure => present }
package {'amavisd-new': ensure => present }
package {'spamassassin': ensure => present }
`
	s, err := core.Load(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CheckDeterminism()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InternHits == 0 {
		t.Error("overlapping dependency closures produced no intern hits")
	}
	if res.Stats.SemQueries >= 2 && res.Stats.EncodeMemoHits == 0 {
		t.Errorf("%d semantic queries at 1 worker but no encode-memo hits", res.Stats.SemQueries)
	}
	if res.Stats.DiskCacheHits != 0 {
		t.Errorf("DiskCacheHits = %d without CacheDir", res.Stats.DiskCacheHits)
	}
}
