package core

// Tests for differential verification (CheckDeterminismDiff): the diff
// verdict must be byte-identical to a full re-verification at any worker
// count, unchanged-pair verdicts must be inherited from the warm cache
// with zero solver work, and the two adversarial cases — variable
// indirection changing a textually-unchanged resource, and a changed
// third resource shifting an unchanged pair's pruned models — must be
// classified conservatively (re-verified, never stale).

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/diff"
	"repro/internal/pkgdb"
	"repro/internal/qcache"
)

// diffWorkload returns base and head manifests over the parallelWorkload
// catalog: head adds one package (svc-<n+1>) to a base of n, so every
// base pair is unchanged and every new pair touches the added resource.
func diffWorkload(n int) (base, head string, provider pkgdb.Provider) {
	head, provider = parallelWorkload(n + 1)
	base, _ = parallelWorkload(n)
	return base, head, provider
}

// checkWorkloadDiff runs head's differential verification against base
// with a shared cache (warm when the caller ran base through it first).
func checkWorkloadDiff(t *testing.T, base, head string, provider pkgdb.Provider, workers int, cache *qcache.Cache) *DeterminismResult {
	t.Helper()
	opts := DefaultOptions()
	opts.Provider = provider
	opts.SemanticCommute = true
	opts.Parallelism = workers
	opts.SharedQueryCache = cache
	opts.Timeout = 2 * time.Minute
	baseSys, err := Load(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	headSys, err := Load(head, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := VerifyDiff(baseSys, headSys)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDiffVerdictsMatchFull: at 1 and 8 workers, a differential run
// against a warm base cache returns the same verdict as a full cold
// verification of head, inherits every unchanged pair without a solver
// query, and re-solves exactly the pairs touching the added resource.
func TestDiffVerdictsMatchFull(t *testing.T) {
	const n = 8
	base, head, provider := diffWorkload(n)
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cache := qcache.New()
			// Warm: a full verification of the base version.
			baseRes := checkWorkload(t, base, provider, workers, cache)
			if !baseRes.Deterministic {
				t.Fatal("base workload should be deterministic")
			}
			if baseRes.Stats.SemQueries != n*(n-1)/2 {
				t.Fatalf("base solved %d queries, want %d", baseRes.Stats.SemQueries, n*(n-1)/2)
			}

			res := checkWorkloadDiff(t, base, head, provider, workers, cache)
			full := checkWorkload(t, head, provider, workers, qcache.New())

			if res.Deterministic != full.Deterministic {
				t.Fatalf("verdict differs: diff=%v full=%v", res.Deterministic, full.Deterministic)
			}
			if !reflect.DeepEqual(res.Counterexample, full.Counterexample) {
				t.Errorf("counterexamples differ:\ndiff: %+v\nfull: %+v", res.Counterexample, full.Counterexample)
			}
			if res.Stats.Sequences != full.Stats.Sequences || res.Stats.Paths != full.Stats.Paths {
				t.Errorf("exploration stats differ:\ndiff: %+v\nfull: %+v", res.Stats, full.Stats)
			}

			if res.Stats.DiffChanged != 1 || res.Stats.DiffUnchanged != n {
				t.Errorf("partition: changed=%d unchanged=%d, want 1/%d",
					res.Stats.DiffChanged, res.Stats.DiffUnchanged, n)
			}
			// Every unchanged pair inherited, every new pair re-solved,
			// and no unchanged pair fell back to the solver.
			if res.Stats.PairsReused != n*(n-1)/2 {
				t.Errorf("pairs reused = %d, want %d", res.Stats.PairsReused, n*(n-1)/2)
			}
			if res.Stats.PairsReverified != n {
				t.Errorf("pairs re-verified = %d, want %d", res.Stats.PairsReverified, n)
			}
			if res.Stats.InheritMisses != 0 {
				t.Errorf("inherit misses = %d, want 0", res.Stats.InheritMisses)
			}
			// Zero solver queries for inherited pairs: the run's query
			// count is exactly the re-verified pair count.
			if res.Stats.SemQueries != n {
				t.Errorf("diff run solved %d queries, want %d (inherited pairs must not reach the solver)",
					res.Stats.SemQueries, n)
			}
		})
	}
}

// TestDiffIdenticalManifests: diffing a manifest against itself classifies
// everything unchanged and inherits the entire matrix.
func TestDiffIdenticalManifests(t *testing.T) {
	const n = 6
	manifest, provider := parallelWorkload(n)
	cache := qcache.New()
	checkWorkload(t, manifest, provider, 4, cache)

	res := checkWorkloadDiff(t, manifest, manifest, provider, 4, cache)
	if !res.Deterministic {
		t.Fatal("workload should be deterministic")
	}
	if res.Stats.DiffChanged != 0 || res.Stats.DiffUnchanged != n {
		t.Errorf("partition: changed=%d unchanged=%d", res.Stats.DiffChanged, res.Stats.DiffUnchanged)
	}
	if res.Stats.PairsReused != n*(n-1)/2 || res.Stats.PairsReverified != 0 || res.Stats.SemQueries != 0 {
		t.Errorf("reused=%d reverified=%d queries=%d, want %d/0/0",
			res.Stats.PairsReused, res.Stats.PairsReverified, res.Stats.SemQueries, n*(n-1)/2)
	}
}

// TestDiffClassifiesVariableIndirection: editing a variable changes the
// compiled model of a file resource whose declaration text is untouched;
// the digest-level delta must classify that resource as changed.
func TestDiffClassifiesVariableIndirection(t *testing.T) {
	const baseSrc = `
$msg = 'alpha'
file {'/x': content => $msg }
file {'/y': content => 'static' }
`
	const headSrc = `
$msg = 'beta'
file {'/x': content => $msg }
file {'/y': content => 'static' }
`
	opts := DefaultOptions()
	baseSys, err := Load(baseSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	headSys, err := Load(headSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := diff.Compute(baseSys.ResourceDigests(), headSys.ResourceDigests())
	if !reflect.DeepEqual(d.Changed, []string{"File[/x]"}) {
		t.Errorf("changed = %v, want [File[/x]]", d.Changed)
	}
	if !reflect.DeepEqual(d.Unchanged, []string{"File[/y]"}) {
		t.Errorf("unchanged = %v, want [File[/y]]", d.Unchanged)
	}
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Errorf("added=%v removed=%v, want none", d.Added, d.Removed)
	}
}

// TestDiffPruningShiftForcesReverify: the adversarial soundness case. The
// pair (u, u2) is unchanged between versions — both manage the same user
// marker, a syntactic conflict discharged by one semantic query — but the
// head version adds a file under /home/u. In base only u touches the
// /home/u tree, so pruning drops those definitive mkdirs from u's model;
// in head the new file resource also touches /home/u, the prune no longer
// applies, and the pair's content-addressed cache key changes with u's
// pruned model. Inheritance must miss and the pair must be re-solved
// (never served the stale base verdict), and the verdict must still match
// a full verification.
func TestDiffPruningShiftForcesReverify(t *testing.T) {
	const base = `
user {'u': managehome => true }
user {'u2': name => 'u' }
`
	// The file requires User['u'] so its genuine read-after-create of
	// /home/u is ordered away; (u, u2) stays the only concurrent
	// conflicting pair.
	const head = `
user {'u': managehome => true }
user {'u2': name => 'u' }
file {'/home/u/readme': content => 'hi', require => User['u'] }
`
	// Elimination would remove order-independent resources before pruning
	// ever counts path touchers, hiding the shift this test exists to
	// pin; disable it so the pruned models see the toucher change.
	mkOpts := func(cache *qcache.Cache) Options {
		opts := DefaultOptions()
		opts.SemanticCommute = true
		opts.Elimination = false
		opts.Parallelism = 1
		opts.SharedQueryCache = cache
		opts.Timeout = 2 * time.Minute
		return opts
	}
	load := func(src string, opts Options) *System {
		sys, err := Load(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	check := func(src string, opts Options) *DeterminismResult {
		res, err := load(src, opts).CheckDeterminism()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cache := qcache.New()
	warm := mkOpts(cache)
	baseRes := check(base, warm)
	if !baseRes.Deterministic {
		t.Fatal("base should be deterministic")
	}

	res, err := VerifyDiff(load(base, warm), load(head, warm))
	if err != nil {
		t.Fatal(err)
	}
	full := check(head, mkOpts(qcache.New()))
	if res.Deterministic != full.Deterministic {
		t.Fatalf("verdict differs: diff=%v full=%v", res.Deterministic, full.Deterministic)
	}
	if !reflect.DeepEqual(res.Counterexample, full.Counterexample) {
		t.Errorf("counterexamples differ:\ndiff: %+v\nfull: %+v", res.Counterexample, full.Counterexample)
	}

	// (u, u2) is unchanged at the manifest level but its pruned models
	// shifted: it must show up as an inherit miss, not a reused pair.
	if res.Stats.InheritMisses == 0 {
		t.Error("expected the unchanged (u, u2) pair to miss inheritance after the pruning shift")
	}
	if res.Stats.PairsReused != 0 {
		t.Errorf("pairs reused = %d, want 0 (the only unchanged pair's key shifted)", res.Stats.PairsReused)
	}
	if res.Stats.SemQueries == 0 {
		t.Error("the shifted pair must be re-solved, not inherited")
	}
}
