package sym

// Portfolio racing: k solver configurations attack the same query
// concurrently, the first decided verdict wins, and losers are cancelled
// through the SAT stop flag. Racing is sound because the SAT/UNSAT
// verdict is config-independent — configs steer search order, never the
// answer — and deterministic in its observable output because witnesses
// are re-derived by canonicalCounterexample, which depends only on the
// formula (see equiv.go). The race therefore changes latency and nothing
// else.
//
// Two shapes are provided: RaceEquiv/RaceCommutes over pre-built
// Sessions (the warm pooled path of internal/core, one session per
// config) and PortfolioEquiv/PortfolioCommutes over fresh encoders (the
// stateless path; also what the differential fuzzer exercises).

import (
	"sync"
	"sync/atomic"

	"repro/internal/fs"
	"repro/internal/sat"
)

// Metrics accumulates SAT search counters across concurrent queries.
// All methods are safe for concurrent use.
type Metrics struct {
	decisions    atomic.Int64
	propagations atomic.Int64
	conflicts    atomic.Int64
	restarts     atomic.Int64
}

func (m *Metrics) add(c sat.Counters) {
	m.decisions.Add(c.Decisions)
	m.propagations.Add(c.Propagations)
	m.conflicts.Add(c.Conflicts)
	m.restarts.Add(c.Restarts)
}

// Counters returns the accumulated totals.
func (m *Metrics) Counters() sat.Counters {
	return sat.Counters{
		Decisions:    m.decisions.Load(),
		Propagations: m.propagations.Load(),
		Conflicts:    m.conflicts.Load(),
		Restarts:     m.restarts.Load(),
	}
}

// raceCheck runs one session's leg of a race: encode, assert inside a
// fresh scope, and Check under the shared stop flag. It returns the raw
// status and leaves the scope OPEN — the winner's model must survive
// until canonical extraction; every leg must eventually be closed with
// endRace by whoever owns the session next.
func (s *Session) raceCheck(e1, e2 fs.Expr, opts Options, stop *atomic.Bool) sat.Status {
	s.stats.Queries++
	if s.en.S.LearntClauses() > sessionLearntCap {
		s.en.S.ClearLearnts()
	}
	before := s.en.S.Counters()
	out1 := s.applyMemo(e1)
	out2 := s.applyMemo(e2)
	s.en.S.SetBudget(opts.Budget)
	s.en.S.SetStop(stop)
	s.en.S.Push()
	s.en.S.Assert(s.en.StatesDiffer(out1, out2))
	st := s.en.S.Check()
	delta := s.en.S.Counters().Sub(before)
	s.stats.Search = s.stats.Search.Add(delta)
	if opts.Metrics != nil {
		opts.Metrics.add(delta)
	}
	return st
}

// endRace closes a race leg: clears the stop flag and retires the query
// scope, leaving the session ready for its next query.
func (s *Session) endRace() {
	s.en.S.SetStop(nil)
	s.en.S.Pop()
}

// RaceEquiv decides e1 ≡ e2 by racing the given sessions (one goroutine
// each; every session must be otherwise idle and share one vocabulary).
// The first session to decide wins; the rest are stopped and their
// scopes retired before RaceEquiv returns — no goroutine and no open
// scope outlives the call. On inequivalence the counterexample is the
// canonical witness, independent of which config won. All legs
// exhausting their budget returns ErrBudget. The winner's index is
// returned for attribution (-1 on ErrBudget).
func RaceEquiv(sessions []*Session, e1, e2 fs.Expr, opts Options) (bool, *Counterexample, int, error) {
	if len(sessions) == 1 {
		eq, cex, err := sessions[0].Equiv(e1, e2, opts)
		return eq, cex, 0, err
	}
	var (
		stop     atomic.Bool
		winner   atomic.Int32
		statuses = make([]sat.Status, len(sessions))
		wg       sync.WaitGroup
	)
	winner.Store(-1)
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			st := sess.raceCheck(e1, e2, opts, &stop)
			statuses[i] = st
			if st != sat.Unknown && winner.CompareAndSwap(-1, int32(i)) {
				stop.Store(true)
				return // scope stays open for extraction
			}
			sess.endRace()
		}(i, sess)
	}
	wg.Wait()
	w := int(winner.Load())
	if w < 0 {
		return false, nil, -1, ErrBudget
	}
	sess := sessions[w]
	defer sess.endRace()
	if statuses[w] == sat.Unsat {
		return true, nil, w, nil
	}
	// The winner set the stop flag to cancel the losers; clear it before
	// the canonicalization probes or they would abort instantly.
	sess.en.S.SetStop(nil)
	before := sess.en.S.Counters()
	cex := canonicalCounterexample(sess.en, sess.input, e1, e2)
	delta := sess.en.S.Counters().Sub(before)
	sess.stats.Search = sess.stats.Search.Add(delta)
	if opts.Metrics != nil {
		opts.Metrics.add(delta)
	}
	return false, cex, w, nil
}

// RaceCommutes decides e1; e2 ≡ e2; e1 by racing the sessions.
func RaceCommutes(sessions []*Session, e1, e2 fs.Expr, opts Options) (bool, *Counterexample, int, error) {
	return RaceEquiv(sessions, fs.Seq{E1: e1, E2: e2}, fs.Seq{E1: e2, E2: e1}, opts)
}

// PortfolioEquiv decides e1 ≡ e2 by racing fresh single-use encoders,
// one per config. Semantics match RaceEquiv; use it when no warm
// session pool exists.
func PortfolioEquiv(e1, e2 fs.Expr, cfgs []sat.Config, opts Options) (bool, *Counterexample, int, error) {
	if len(cfgs) == 0 {
		cfgs = []sat.Config{{}}
	}
	dom := fs.Dom(e1)
	dom.AddAll(fs.Dom(e2))
	v := NewVocab(dom, e1, e2)
	var (
		stop     atomic.Bool
		winner   atomic.Int32
		encoders = make([]*Encoder, len(cfgs))
		inputs   = make([]*State, len(cfgs))
		statuses = make([]sat.Status, len(cfgs))
		wg       sync.WaitGroup
	)
	winner.Store(-1)
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg sat.Config) {
			defer wg.Done()
			en := NewEncoderConfig(v, cfg)
			if opts.Budget > 0 {
				en.S.SetBudget(opts.Budget)
			}
			en.S.SetStop(&stop)
			input := en.FreshInputState("in")
			out1 := en.Apply(e1, input)
			out2 := en.Apply(e2, input)
			en.S.Assert(en.StatesDiffer(out1, out2))
			st := en.S.Check()
			encoders[i], inputs[i], statuses[i] = en, input, st
			if opts.Metrics != nil {
				opts.Metrics.add(en.S.Counters())
			}
			if st != sat.Unknown && winner.CompareAndSwap(-1, int32(i)) {
				stop.Store(true)
			}
		}(i, cfg)
	}
	wg.Wait()
	w := int(winner.Load())
	if w < 0 {
		return false, nil, -1, ErrBudget
	}
	if statuses[w] == sat.Unsat {
		return true, nil, w, nil
	}
	en := encoders[w]
	en.S.SetStop(nil)
	before := en.S.Counters()
	cex := canonicalCounterexample(en, inputs[w], e1, e2)
	if opts.Metrics != nil {
		opts.Metrics.add(en.S.Counters().Sub(before))
	}
	return false, cex, w, nil
}

// PortfolioCommutes decides e1; e2 ≡ e2; e1 by racing fresh encoders.
func PortfolioCommutes(e1, e2 fs.Expr, cfgs []sat.Config, opts Options) (bool, *Counterexample, int, error) {
	return PortfolioEquiv(fs.Seq{E1: e1, E2: e2}, fs.Seq{E1: e2, E2: e1}, cfgs, opts)
}
