package sym_test

import (
	"fmt"
	"log"

	"repro/internal/fs"
	"repro/internal/sym"
)

// Equiv decides semantic equivalence of FS programs over every initial
// filesystem — here the paper's section-4.4 example.
func ExampleEquiv() {
	lhs := fs.Seq{
		E1: fs.Mkdir{Path: "/a/b"},
		E2: fs.If{A: fs.IsDir{Path: "/a/b"}, Then: fs.Id{}, Else: fs.Err{}},
	}
	rhs := fs.Mkdir{Path: "/a/b"}
	eq, _, err := sym.Equiv(lhs, rhs, sym.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent:", eq)
	// Output:
	// equivalent: true
}

// Inequivalent programs come with a concrete counterexample input.
func ExampleEquiv_counterexample() {
	overwrite := func(content string) fs.Expr {
		return fs.SeqAll(
			fs.Guard(fs.IsFile{Path: "/f"}, fs.Rm{Path: "/f"}),
			fs.Creat{Path: "/f", Content: content},
		)
	}
	a, b := overwrite("one"), overwrite("two")
	eq, cex, err := sym.Equiv(fs.Seq{E1: a, E2: b}, fs.Seq{E1: b, E2: a}, sym.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent:", eq)
	fmt.Println("have witness:", cex != nil)
	// Output:
	// equivalent: false
	// have witness: true
}

// Idempotent decides e ≡ e;e (paper section 5).
func ExampleIdempotent() {
	idem, _, err := sym.Idempotent(fs.MkdirIfMissing("/cache"), sym.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("guarded mkdir idempotent:", idem)

	idem, _, err = sym.Idempotent(fs.Mkdir{Path: "/cache"}, sym.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bare mkdir idempotent:", idem)
	// Output:
	// guarded mkdir idempotent: true
	// bare mkdir idempotent: false
}
