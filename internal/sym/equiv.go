package sym

import (
	"errors"
	"fmt"

	"repro/internal/fs"
	"repro/internal/sat"
)

// ErrBudget reports that the solver exhausted its conflict budget before
// deciding the query; callers treat it as a timeout.
var ErrBudget = errors.New("sym: solver budget exhausted")

// Counterexample witnesses the inequivalence of two expressions: a concrete
// input filesystem on which they produce different outcomes.
type Counterexample struct {
	Input      fs.State
	Ok1, Ok2   bool     // success/error outcome of each expression
	Out1, Out2 fs.State // final states; nil when the run errored
}

// String renders the counterexample for human consumption.
func (c *Counterexample) String() string {
	render := func(ok bool, out fs.State) string {
		if !ok {
			return "error"
		}
		return fs.StateString(out)
	}
	return fmt.Sprintf("input %s\n  first:  %s\n  second: %s",
		fs.StateString(c.Input), render(c.Ok1, c.Out1), render(c.Ok2, c.Out2))
}

// Options configures equivalence queries.
type Options struct {
	// Budget bounds SAT conflicts; 0 means unlimited. Exhaustion returns
	// ErrBudget.
	Budget int64
}

// Equiv decides whether e1 ≡ e2: the same outcome (final state or error) on
// every input filesystem over the bounded domain of figure 8. It is sound
// and complete (lemmas 2 and 3). On inequivalence it returns a concrete
// counterexample that has been replayed through the concrete evaluator.
//
// Equiv is safe for concurrent use: every call constructs an isolated
// vocabulary, encoder and solver and touches no shared state, so
// independent queries parallelize embarrassingly — the parallel
// determinacy engine (internal/core) fans them across a worker pool.
func Equiv(e1, e2 fs.Expr, opts Options) (bool, *Counterexample, error) {
	dom := fs.Dom(e1)
	dom.AddAll(fs.Dom(e2))
	v := NewVocab(dom, e1, e2)
	en := NewEncoder(v)
	if opts.Budget > 0 {
		en.S.SetBudget(opts.Budget)
	}
	input := en.FreshInputState("in")
	out1 := en.Apply(e1, input)
	out2 := en.Apply(e2, input)
	en.S.Assert(en.StatesDiffer(out1, out2))
	switch en.S.Check() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, ErrBudget
	}
	cex := extractCounterexample(en, input, e1, e2)
	return false, cex, nil
}

// extractCounterexample decodes the model into a concrete input and replays
// both expressions on it with the concrete evaluator. The replay is a
// soundness self-check: the decoded input must actually distinguish the
// expressions.
func extractCounterexample(en *Encoder, input *State, e1, e2 fs.Expr) *Counterexample {
	in, err := en.ModelState(input)
	if err != nil {
		// Callers only reach here straight after Check returned Sat.
		panic(fmt.Sprintf("sym: no model for counterexample extraction: %v", err))
	}
	out1, ok1 := fs.Eval(e1, in)
	out2, ok2 := fs.Eval(e2, in)
	if ok1 == ok2 && (!ok1 || out1.Equal(out2)) {
		panic(fmt.Sprintf(
			"sym: model does not distinguish expressions (encoding bug)\ninput: %s\ne1: %s\ne2: %s",
			fs.StateString(in), fs.String(e1), fs.String(e2)))
	}
	return &Counterexample{Input: in, Ok1: ok1, Ok2: ok2, Out1: out1, Out2: out2}
}

// Idempotent decides whether e ≡ e; e (section 5). On failure the
// counterexample's first outcome is one application, the second is two.
func Idempotent(e fs.Expr, opts Options) (bool, *Counterexample, error) {
	return Equiv(e, fs.Seq{E1: e, E2: e}, opts)
}

// Commutes decides whether e1; e2 ≡ e2; e1 — the solver-backed semantic
// commutativity query of lemma 4 that the determinacy engine issues for
// every pair the syntactic analysis cannot prove. Inconclusive (budget
// exhaustion) surfaces as an error; treating it as non-commuting is
// always sound.
func Commutes(e1, e2 fs.Expr, opts Options) (bool, *Counterexample, error) {
	return Equiv(fs.Seq{E1: e1, E2: e2}, fs.Seq{E1: e2, E2: e1}, opts)
}
