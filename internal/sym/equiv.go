package sym

import (
	"errors"
	"fmt"

	"repro/internal/fs"
	"repro/internal/sat"
	"repro/internal/smt"
)

// ErrBudget reports that the solver exhausted its conflict budget before
// deciding the query; callers treat it as a timeout.
var ErrBudget = errors.New("sym: solver budget exhausted")

// Counterexample witnesses the inequivalence of two expressions: a concrete
// input filesystem on which they produce different outcomes.
type Counterexample struct {
	Input      fs.State
	Ok1, Ok2   bool     // success/error outcome of each expression
	Out1, Out2 fs.State // final states; nil when the run errored
}

// String renders the counterexample for human consumption.
func (c *Counterexample) String() string {
	render := func(ok bool, out fs.State) string {
		if !ok {
			return "error"
		}
		return fs.StateString(out)
	}
	return fmt.Sprintf("input %s\n  first:  %s\n  second: %s",
		fs.StateString(c.Input), render(c.Ok1, c.Out1), render(c.Ok2, c.Out2))
}

// Options configures equivalence queries.
type Options struct {
	// Budget bounds SAT conflicts; 0 means unlimited. Exhaustion returns
	// ErrBudget.
	Budget int64
	// Config selects the SAT search configuration (zero = default). It
	// steers search order only and can never change a verdict.
	Config sat.Config
	// Metrics, when non-nil, accumulates the search counters the query
	// spends. Safe for concurrent use across queries.
	Metrics *Metrics
}

// Equiv decides whether e1 ≡ e2: the same outcome (final state or error) on
// every input filesystem over the bounded domain of figure 8. It is sound
// and complete (lemmas 2 and 3). On inequivalence it returns a concrete
// counterexample that has been replayed through the concrete evaluator.
//
// Equiv is safe for concurrent use: every call constructs an isolated
// vocabulary, encoder and solver and touches no shared state, so
// independent queries parallelize embarrassingly — the parallel
// determinacy engine (internal/core) fans them across a worker pool.
func Equiv(e1, e2 fs.Expr, opts Options) (bool, *Counterexample, error) {
	dom := fs.Dom(e1)
	dom.AddAll(fs.Dom(e2))
	v := NewVocab(dom, e1, e2)
	en := NewEncoderConfig(v, opts.Config)
	if opts.Metrics != nil {
		defer func() { opts.Metrics.add(en.S.Counters()) }()
	}
	if opts.Budget > 0 {
		en.S.SetBudget(opts.Budget)
	}
	input := en.FreshInputState("in")
	out1 := en.Apply(e1, input)
	out2 := en.Apply(e2, input)
	en.S.Assert(en.StatesDiffer(out1, out2))
	switch en.S.Check() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, ErrBudget
	}
	cex := canonicalCounterexample(en, input, e1, e2)
	return false, cex, nil
}

// canonicalCounterexample derives the canonical counterexample input: the
// lexicographically minimal model over the vocabulary's sorted paths with
// kinds ordered none < dir < file. Minimality is a property of the
// asserted formula alone — not of the model the search happened to find,
// the solver configuration, the restart schedule or the worker count — so
// every portfolio config, and the single-config baseline, extracts the
// byte-identical witness. That is what keeps report fingerprints stable
// when races are enabled.
//
// The walk pins one path at a time: for each path in order it finds the
// smallest kind consistent with the formula and the pins so far. The
// current model shortcuts the search — a kind the model already assigns
// needs no solver call, and every successful probe refreshes the model —
// so the typical cost is a handful of assumption-only Checks. Contents
// need no pinning: input contents are constant init tokens, so the kinds
// determine the witness completely.
//
// The replayed fs.Eval comparison at the end is a soundness self-check:
// the canonical input must actually distinguish the expressions.
func canonicalCounterexample(en *Encoder, input *State, e1, e2 fs.Expr) *Counterexample {
	s := en.S
	s.SetBudget(0) // minimization probes must not hit a query budget
	w, err := en.ModelState(input)
	if err != nil {
		// Callers only reach here straight after Check returned Sat.
		panic(fmt.Sprintf("sym: no model for counterexample extraction: %v", err))
	}
	pins := make([]smt.T, 0, len(en.V.Paths))
	for _, p := range en.V.Paths {
		ps := input.Lookup(p)
		cur := modelKind(w, p)
		for k := 0; k < cur; k++ {
			probe := append(pins[:len(pins):len(pins)], s.EnumIs(ps.Kind, k))
			if s.Check(probe...) != sat.Sat {
				continue
			}
			w2, err := en.ModelState(input)
			if err != nil {
				panic(fmt.Sprintf("sym: no model after canonicalization probe: %v", err))
			}
			w, cur = w2, k
			break
		}
		pins = append(pins, s.EnumIs(ps.Kind, cur))
	}
	out1, ok1 := fs.Eval(e1, w)
	out2, ok2 := fs.Eval(e2, w)
	if ok1 == ok2 && (!ok1 || out1.Equal(out2)) {
		panic(fmt.Sprintf(
			"sym: model does not distinguish expressions (encoding bug)\ninput: %s\ne1: %s\ne2: %s",
			fs.StateString(w), fs.String(e1), fs.String(e2)))
	}
	return &Counterexample{Input: w, Ok1: ok1, Ok2: ok2, Out1: out1, Out2: out2}
}

// modelKind returns the kind code of p in the concrete state.
func modelKind(st fs.State, p fs.Path) int {
	c, ok := st[p]
	switch {
	case !ok:
		return KindNone
	case c.Kind == fs.KindDir:
		return KindDir
	default:
		return KindFile
	}
}

// Idempotent decides whether e ≡ e; e (section 5). On failure the
// counterexample's first outcome is one application, the second is two.
func Idempotent(e fs.Expr, opts Options) (bool, *Counterexample, error) {
	return Equiv(e, fs.Seq{E1: e, E2: e}, opts)
}

// Commutes decides whether e1; e2 ≡ e2; e1 — the solver-backed semantic
// commutativity query of lemma 4 that the determinacy engine issues for
// every pair the syntactic analysis cannot prove. Inconclusive (budget
// exhaustion) surfaces as an error; treating it as non-commuting is
// always sound.
func Commutes(e1, e2 fs.Expr, opts Options) (bool, *Counterexample, error) {
	return Equiv(fs.Seq{E1: e1, E2: e2}, fs.Seq{E1: e2, E2: e1}, opts)
}
