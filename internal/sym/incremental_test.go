package sym

import (
	"math/rand"
	"testing"

	"repro/internal/fs"
)

func TestVocabDigest(t *testing.T) {
	e := fs.Creat{Path: "/a/f", Content: "x"}
	d1 := NewVocab(fs.Dom(e), e).Digest()
	d2 := NewVocab(fs.Dom(e), e).Digest()
	if d1 != d2 {
		t.Error("digest not deterministic")
	}
	dom := fs.Dom(e)
	dom.Add("/extra")
	if NewVocab(dom, e).Digest() == d1 {
		t.Error("digest ignores the path domain")
	}
	if NewVocabWithLiterals(fs.Dom(e), []string{"zzz"}, e).Digest() == d1 {
		t.Error("digest ignores content literals")
	}
}

// TestSessionEquivMatchesFresh is the verdict-equivalence gate for the
// session layer: for random expression pairs, a shared session over the
// union vocabulary must return exactly the verdicts of the fresh-solver
// Equiv path (which uses the minimal per-query vocabulary), including the
// presence of counterexamples. Counterexamples from both paths are already
// replay-validated inside extractCounterexample.
func TestSessionEquivMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cfg := fs.DefaultGenConfig()
	// A pool of expressions; the session vocabulary spans all of them, the
	// way core.checkDeterminism builds one vocabulary per manifest.
	pool := make([]fs.Expr, 12)
	dom := fs.NewPathSet()
	for i := range pool {
		pool[i] = fs.GenExpr(r, cfg, 3)
		dom.AddAll(fs.Dom(pool[i]))
	}
	sess := NewSession(NewVocab(dom, pool...))
	opts := Options{}
	queries := 0
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			e1, e2 := pool[i], pool[j]
			gotEq, gotCex, gotErr := sess.Commutes(e1, e2, opts)
			wantEq, wantCex, wantErr := Commutes(e1, e2, opts)
			if gotEq != wantEq || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("pair (%d,%d): session=(%v,%v) fresh=(%v,%v)\ne1=%s\ne2=%s",
					i, j, gotEq, gotErr, wantEq, wantErr, fs.String(e1), fs.String(e2))
			}
			if (gotCex == nil) != (wantCex == nil) {
				t.Fatalf("pair (%d,%d): counterexample presence differs: session=%v fresh=%v",
					i, j, gotCex != nil, wantCex != nil)
			}
			queries++
		}
	}
	st := sess.Stats()
	if st.Queries != int64(queries) {
		t.Errorf("Queries = %d, want %d", st.Queries, queries)
	}
	// Each pool expression occurs in many pairs; the apply memo must have
	// absorbed the repeats (2 fresh applications per query at most, and the
	// per-side Seq composites repeat whenever an expression reappears).
	if st.ApplyHits == 0 {
		t.Error("apply memo never hit across overlapping pairs")
	}
}

// TestSessionIdempotentMatchesFresh covers the second query shape the
// checker issues.
func TestSessionIdempotentMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	cfg := fs.DefaultGenConfig()
	pool := make([]fs.Expr, 16)
	dom := fs.NewPathSet()
	for i := range pool {
		pool[i] = fs.GenExpr(r, cfg, 3)
		dom.AddAll(fs.Dom(pool[i]))
	}
	sess := NewSession(NewVocab(dom, pool...))
	for i, e := range pool {
		gotEq, _, gotErr := sess.Idempotent(e, Options{})
		wantEq, _, wantErr := Idempotent(e, Options{})
		if gotEq != wantEq || (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("expr %d: session=(%v,%v) fresh=(%v,%v)\ne=%s",
				i, gotEq, gotErr, wantEq, wantErr, fs.String(e))
		}
	}
}

// TestSessionCounterexampleReplay: session counterexamples must concretely
// distinguish the two expressions on the decoded input.
func TestSessionCounterexampleReplay(t *testing.T) {
	e1 := fs.Expr(fs.Creat{Path: "/a/f", Content: "x"})
	e2 := fs.Expr(fs.Rm{Path: "/a/f"})
	dom := fs.Dom(e1)
	dom.AddAll(fs.Dom(e2))
	sess := NewSession(NewVocab(dom, e1, e2))
	eq, cex, err := sess.Commutes(e1, e2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq || cex == nil {
		t.Fatal("creat/rm on the same path must not commute")
	}
	out1, ok1 := fs.Eval(fs.Seq{E1: e1, E2: e2}, cex.Input)
	out2, ok2 := fs.Eval(fs.Seq{E1: e2, E2: e1}, cex.Input)
	if ok1 == ok2 && (!ok1 || out1.Equal(out2)) {
		t.Fatal("counterexample does not distinguish the orders")
	}
	// The session stays usable after a Sat query.
	eq, _, err = sess.Commutes(e1, e1, Options{})
	if err != nil || !eq {
		t.Fatalf("e1 must commute with itself after a prior counterexample: %v %v", eq, err)
	}
}

// TestSessionLearntRetention: learnt clauses and recycled activation
// variables accumulate across session queries.
func TestSessionLearntRetention(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cfg := fs.DefaultGenConfig()
	pool := make([]fs.Expr, 10)
	dom := fs.NewPathSet()
	for i := range pool {
		pool[i] = fs.GenExpr(r, cfg, 4)
		dom.AddAll(fs.Dom(pool[i]))
	}
	sess := NewSession(NewVocab(dom, pool...))
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			sess.Commutes(pool[i], pool[j], Options{})
		}
	}
	st := sess.Stats()
	if st.Simplify.VarsRecycled == 0 {
		t.Error("no activation variables recycled over the query stream")
	}
}
