package sym

// The standing SAT differential fuzzer (ISSUE 7 satellite, ROADMAP SAT
// item): random FS expression pairs, the solver's Commutes verdict checked
// against the brute-force oracle in internal/dynamic — a two-node
// dependency-free graph run in both orders over sampled concrete inputs.
// Any divergence means the SAT/SMT/symbolic stack changed a verdict, which
// no ring, heuristic or preprocessing change is ever allowed to do.
//
// Since portfolio racing landed, every case is also solved under each
// diverse portfolio config individually and as a k-way race
// (PortfolioCommutes): the verdict must match the default config and the
// oracle everywhere, and non-commuting cases must yield the byte-identical
// canonical counterexample regardless of config or race outcome — the
// determinism contract that keeps report fingerprints stable.
//
// CI runs it as a dedicated job with a fixed seed and time box; both knobs
// are environment-driven so a failure reproduces exactly:
//
//	REHEARSAL_FUZZ_SEED=12345 REHEARSAL_FUZZ_MS=30000 go test ./internal/sym -run TestFuzzCommutesAgainstOracle

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/fs"
	"repro/internal/graph"
	"repro/internal/sat"
)

// fuzzEnvInt reads an integer knob from the environment.
func fuzzEnvInt(t *testing.T, name string, def int64) int64 {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", name, v, err)
	}
	return n
}

// oracleCommutes decides e1;e2 ≡ e2;e1 by brute force: both orders of a
// two-node graph, applied to every sampled input. Sound and complete over
// the sampled inputs only — the solver must agree on "does not commute"
// whenever the oracle finds a distinguishing input, and whenever the
// solver says "commutes" the oracle must find none.
func oracleCommutes(e1, e2 fs.Expr, inputs []fs.State) bool {
	g := graph.New[fs.Expr]()
	g.Add(e1)
	g.Add(e2)
	res := dynamic.Run(g, dynamic.Options{Inputs: inputs})
	return res.Deterministic
}

// fuzzWitness renders a counterexample for byte-identity comparison
// across configs ("" when the pair commutes).
func fuzzWitness(cex *Counterexample) string {
	if cex == nil {
		return ""
	}
	return cex.String()
}

func TestFuzzCommutesAgainstOracle(t *testing.T) {
	seed := fuzzEnvInt(t, "REHEARSAL_FUZZ_SEED", 1)
	budget := time.Duration(fuzzEnvInt(t, "REHEARSAL_FUZZ_MS", 3000)) * time.Millisecond
	r := rand.New(rand.NewSource(seed))
	cfg := fs.DefaultGenConfig()
	portfolio := sat.PortfolioConfigs(4)

	deadline := time.Now().Add(budget)
	pairs, disagreements := 0, 0
	var commuting, nonCommuting int
	for time.Now().Before(deadline) {
		e1 := fs.GenExpr(r, cfg, 3)
		e2 := fs.GenExpr(r, cfg, 3)

		got, cex, err := Commutes(e1, e2, Options{})
		if err != nil {
			// Budget exhaustion cannot happen with Budget 0; any error here
			// is a real solver failure.
			t.Fatalf("seed %d pair %d: Commutes failed: %v\ne1: %s\ne2: %s",
				seed, pairs, err, fs.String(e1), fs.String(e2))
		}
		witness := fuzzWitness(cex)

		// Every case also runs under each diverse config individually and
		// as a k-way race; verdicts and canonical witnesses must be
		// byte-identical to the default config's.
		for _, c := range portfolio[1:] {
			cgot, ccex, err := Commutes(e1, e2, Options{Config: c})
			if err != nil {
				t.Fatalf("seed %d pair %d config %s: Commutes failed: %v", seed, pairs, c.Name, err)
			}
			if cgot != got {
				t.Fatalf("seed %d pair %d: config %s verdict %v != default %v\ne1: %s\ne2: %s",
					seed, pairs, c.Name, cgot, got, fs.String(e1), fs.String(e2))
			}
			if w := fuzzWitness(ccex); w != witness {
				t.Fatalf("seed %d pair %d: config %s canonical witness differs from default\ne1: %s\ne2: %s\ndefault:\n%s\n%s:\n%s",
					seed, pairs, c.Name, fs.String(e1), fs.String(e2), witness, c.Name, w)
			}
		}
		rgot, rcex, _, err := PortfolioCommutes(e1, e2, portfolio, Options{})
		if err != nil {
			t.Fatalf("seed %d pair %d: PortfolioCommutes failed: %v", seed, pairs, err)
		}
		if rgot != got {
			t.Fatalf("seed %d pair %d: race verdict %v != single-config %v\ne1: %s\ne2: %s",
				seed, pairs, rgot, got, fs.String(e1), fs.String(e2))
		}
		if w := fuzzWitness(rcex); w != witness {
			t.Fatalf("seed %d pair %d: race canonical witness differs from single-config\ne1: %s\ne2: %s",
				seed, pairs, fs.String(e1), fs.String(e2))
		}

		// Sample inputs for the oracle; a solver counterexample input joins
		// the sample so a "does not commute" verdict is always checkable.
		inputs := []fs.State{fs.NewState()}
		for i := 0; i < 12; i++ {
			inputs = append(inputs, fs.GenState(r, cfg))
		}
		if cex != nil {
			inputs = append(inputs, cex.Input)
		}
		want := oracleCommutes(e1, e2, inputs)

		switch {
		case got && !want:
			// Unsound: the solver proved commutativity but a concrete input
			// distinguishes the orders.
			disagreements++
			t.Errorf("seed %d pair %d: solver says COMMUTES, oracle found a distinguishing input\ne1: %s\ne2: %s",
				seed, pairs, fs.String(e1), fs.String(e2))
		case !got && cex == nil:
			t.Errorf("seed %d pair %d: non-commuting verdict without a counterexample", seed, pairs)
		case !got && want:
			// The oracle's sample (which includes the counterexample input)
			// found no divergence, yet the solver produced a replayed
			// counterexample — impossible unless the replay lied.
			disagreements++
			t.Errorf("seed %d pair %d: solver counterexample not confirmed by the oracle\ne1: %s\ne2: %s",
				seed, pairs, fs.String(e1), fs.String(e2))
		}
		if got {
			commuting++
		} else {
			nonCommuting++
		}
		pairs++
	}
	if pairs == 0 {
		t.Fatalf("time box %v admitted zero pairs", budget)
	}
	if commuting == 0 || nonCommuting == 0 {
		// Both verdicts must be exercised or the fuzz run proves nothing
		// about one of them; the default vocabulary comfortably yields both.
		t.Errorf("degenerate fuzz mix: %d commuting, %d non-commuting of %d pairs",
			commuting, nonCommuting, pairs)
	}
	t.Logf("fuzz: seed=%d pairs=%d commuting=%d non-commuting=%d disagreements=%d",
		seed, pairs, commuting, nonCommuting, disagreements)
}
