package sym

// Portfolio race tests: racing must change latency and nothing else.
// Adversarial multi-witness pairs must yield the byte-identical canonical
// counterexample under every config and every race width; loser
// cancellation must leak no goroutines (this package is in the -race CI
// set); and budget exhaustion across all legs must surface as ErrBudget.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fs"
	"repro/internal/leakcheck"
	"repro/internal/sat"
)

// mkdirIfMissing is the package-model idiom: create the directory only
// when absent, so two installations of it commute.
func mkdirIfMissing(path fs.Path) fs.Expr {
	return fs.If{A: fs.IsDir{Path: path}, Then: fs.Id{}, Else: fs.Mkdir{Path: path}}
}

// heavyCommutingPair builds two expressions that write disjoint files
// into n shared directories — they commute, and the UNSAT proof is large
// enough that race losers are cancelled mid-search.
func heavyCommutingPair(n int) (fs.Expr, fs.Expr) {
	var a, b []fs.Expr
	for i := 0; i < n; i++ {
		d := fs.Path(fmt.Sprintf("/app/dir%02d", i))
		a = append(a, mkdirIfMissing(d), fs.Creat{Path: d + "/f1", Content: "a"})
		b = append(b, mkdirIfMissing(d), fs.Creat{Path: d + "/f2", Content: "b"})
	}
	return fs.SeqAll(a...), fs.SeqAll(b...)
}

// Adversarial multi-witness pair: mkdir /a vs rm /a do not commute, and
// several input classes witness it (/a absent, /a an empty dir), so
// diverse configs are free to find different SAT models. The canonical
// extraction must collapse them all to one byte-identical witness.
func TestPortfolioCanonicalWitness(t *testing.T) {
	e1, e2 := fs.Expr(fs.Mkdir{Path: "/a"}), fs.Expr(fs.Rm{Path: "/a"})
	cfgs := sat.PortfolioConfigs(8)

	ok, cex, err := Commutes(e1, e2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok || cex == nil {
		t.Fatal("mkdir/rm must not commute and must carry a witness")
	}
	want := cex.String()

	// Every config individually: trajectories may differ (and for at
	// least one config must — otherwise the pair is not adversarial),
	// witnesses may not.
	var defaultConflicts, divergent int64
	for i, cfg := range cfgs {
		var m Metrics
		cok, ccex, err := Commutes(e1, e2, Options{Config: cfg, Metrics: &m})
		if err != nil {
			t.Fatalf("config %s: %v", cfg.Name, err)
		}
		if cok || ccex == nil {
			t.Fatalf("config %s: verdict flipped to commuting", cfg.Name)
		}
		if got := ccex.String(); got != want {
			t.Errorf("config %s: canonical witness differs\nwant:\n%s\ngot:\n%s", cfg.Name, want, got)
		}
		c := m.Counters()
		if i == 0 {
			defaultConflicts = c.Conflicts
		} else if c.Conflicts != defaultConflicts || c.Decisions == 0 {
			divergent++
		}
	}
	_ = divergent // search divergence is expected but not guaranteed on tiny instances

	// Every race width, repeated so different legs get to win.
	for _, k := range []int{2, 4, 8} {
		for round := 0; round < 5; round++ {
			rok, rcex, w, err := PortfolioCommutes(e1, e2, cfgs[:k], Options{})
			if err != nil {
				t.Fatalf("k=%d round %d: %v", k, round, err)
			}
			if rok || rcex == nil {
				t.Fatalf("k=%d round %d: verdict flipped to commuting", k, round)
			}
			if w < 0 || w >= k {
				t.Fatalf("k=%d round %d: winner index %d out of range", k, round, w)
			}
			if got := rcex.String(); got != want {
				t.Errorf("k=%d round %d (winner %s): race witness differs from canonical\nwant:\n%s\ngot:\n%s",
					k, round, cfgs[w].Name, want, got)
			}
		}
	}
}

// Racing over fresh encoders must cancel losers and join every leg: no
// goroutine survives the call, across many rounds and race widths.
func TestPortfolioLoserCancellationNoLeaks(t *testing.T) {
	e1, e2 := heavyCommutingPair(12)
	cfgs := sat.PortfolioConfigs(4)
	base := leakcheck.Take()
	for round := 0; round < 20; round++ {
		k := 2 + round%3 // 2, 3, 4
		ok, cex, _, err := PortfolioCommutes(e1, e2, cfgs[:k], Options{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !ok || cex != nil {
			t.Fatalf("round %d: disjoint-file pair must commute", round)
		}
	}
	leakcheck.Assert(t, base)
}

// Racing over warm pooled sessions (the engine's path) must behave the
// same: verdicts and witnesses identical to a single session, scopes
// retired so sessions stay reusable, and no goroutine leaked.
func TestRaceSessionsReusableNoLeaks(t *testing.T) {
	e1, e2 := heavyCommutingPair(8)
	n1, n2 := fs.Expr(fs.Mkdir{Path: "/app/dir00"}), fs.Expr(fs.Rm{Path: "/app/dir00"})

	dom := fs.Dom(e1)
	dom.AddAll(fs.Dom(e2))
	dom.AddAll(fs.Dom(n1))
	dom.AddAll(fs.Dom(n2))
	pair := func(a, b fs.Expr) (fs.Expr, fs.Expr) {
		return fs.Seq{E1: a, E2: b}, fs.Seq{E1: b, E2: a}
	}
	l1, r1 := pair(e1, e2)
	l2, r2 := pair(n1, n2)
	v := NewVocab(dom, l1, r1, l2, r2)

	cfgs := sat.PortfolioConfigs(4)
	sessions := make([]*Session, len(cfgs))
	for i, cfg := range cfgs {
		sessions[i] = NewSessionConfig(v, cfg)
	}
	single := NewSession(v)

	base := leakcheck.Take()
	for round := 0; round < 6; round++ {
		// Alternate a commuting and a non-commuting query through the SAME
		// sessions: a scope leaked by a race would poison the next query.
		ok, cex, _, err := RaceCommutes(sessions, e1, e2, Options{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sok, scex, serr := single.Commutes(e1, e2, Options{})
		if serr != nil {
			t.Fatalf("round %d: %v", round, serr)
		}
		if ok != sok {
			t.Fatalf("round %d: race verdict %v != session verdict %v", round, ok, sok)
		}
		if (cex == nil) != (scex == nil) || (cex != nil && cex.String() != scex.String()) {
			t.Fatalf("round %d: race witness differs from session witness", round)
		}

		ok, cex, _, err = RaceCommutes(sessions, n1, n2, Options{})
		if err != nil {
			t.Fatalf("round %d (witness query): %v", round, err)
		}
		sok, scex, serr = single.Commutes(n1, n2, Options{})
		if serr != nil {
			t.Fatalf("round %d (witness query): %v", round, serr)
		}
		if ok != sok || ok {
			t.Fatalf("round %d: mkdir/rm race verdict %v (session %v), want non-commuting", round, ok, sok)
		}
		if cex == nil || scex == nil || cex.String() != scex.String() {
			t.Fatalf("round %d: race witness differs from session witness", round)
		}
	}
	leakcheck.Assert(t, base)
}

// When every leg exhausts its budget the race reports ErrBudget with a
// winnerless outcome — and still joins all goroutines.
func TestPortfolioBudgetExhausted(t *testing.T) {
	e1, e2 := heavyCommutingPair(12)
	base := leakcheck.Take()
	ok, cex, w, err := PortfolioCommutes(e1, e2, sat.PortfolioConfigs(4), Options{Budget: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("got (%v, %v, %d, %v), want ErrBudget", ok, cex, w, err)
	}
	if w != -1 {
		t.Errorf("winner index = %d on budget exhaustion, want -1", w)
	}
	leakcheck.Assert(t, base)
}
