package sym

import (
	"math/rand"
	"testing"

	"repro/internal/fs"
	"repro/internal/sat"
)

func TestVocab(t *testing.T) {
	e := fs.SeqAll(fs.Creat{Path: "/a/f", Content: "x"}, fs.Rm{Path: "/b"})
	dom := fs.Dom(e)
	v := NewVocab(dom, e)
	if !v.HasPath("/a/f") || !v.HasPath("/a") || !v.HasPath("/b") {
		t.Error("dom paths missing")
	}
	if !v.HasPath(fs.Path("/b").FreshChild()) {
		t.Error("fresh child missing")
	}
	if v.HasPath("/zzz") {
		t.Error("unexpected path")
	}
	_ = v.LiteralToken("x")
	// Tokens are pairwise distinct and concretize distinctly.
	seen := map[string]bool{}
	for i := range v.Tokens {
		s := v.TokenString(i)
		if seen[s] {
			t.Errorf("token %d concretizes to duplicate %q", i, s)
		}
		seen[s] = true
	}
	if v.ContentSort.Size != len(v.Tokens) {
		t.Error("content sort size mismatch")
	}
}

func TestEquivTrivial(t *testing.T) {
	eq, cex, err := Equiv(fs.Id{}, fs.Id{}, Options{})
	if err != nil || !eq || cex != nil {
		t.Fatalf("id ≡ id: %v %v %v", eq, cex, err)
	}
	eq, cex, err = Equiv(fs.Id{}, fs.Err{}, Options{})
	if err != nil || eq {
		t.Fatalf("id ≢ err: %v %v", eq, err)
	}
	if cex == nil || cex.Ok1 == cex.Ok2 {
		t.Fatalf("bad counterexample: %v", cex)
	}
	if cex.String() == "" {
		t.Error("empty counterexample rendering")
	}
}

// The paper's example (section 4.4).
func TestPaperExampleEquivalence(t *testing.T) {
	lhs := fs.Seq{E1: fs.Mkdir{Path: "/a/b"}, E2: fs.If{A: fs.IsDir{Path: "/a/b"}, Then: fs.Id{}, Else: fs.Err{}}}
	rhs := fs.Mkdir{Path: "/a/b"}
	eq, _, err := Equiv(lhs, rhs, Options{})
	if err != nil || !eq {
		t.Fatalf("expected equivalent, got %v %v", eq, err)
	}
}

// The paper's completeness example (section 4.2): emptydir? differs from
// dir? only on inputs containing an unmentioned child, which the fresh
// child of figure 8 supplies.
func TestEmptyDirCompleteness(t *testing.T) {
	e1 := fs.If{A: fs.IsEmptyDir{Path: "/a"}, Then: fs.Id{}, Else: fs.Err{}}
	e2 := fs.If{A: fs.IsDir{Path: "/a"}, Then: fs.Id{}, Else: fs.Err{}}
	eq, cex, err := Equiv(e1, e2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("emptydir?/dir? guards must be distinguishable")
	}
	// The witness must put something inside /a.
	found := false
	for p := range cex.Input {
		if p.IsDescendantOf("/a") {
			found = true
		}
	}
	if !found {
		t.Errorf("counterexample has no child of /a: %s", fs.StateString(cex.Input))
	}
}

// A similar completeness corner for rm: removing a directory fails when it
// has an unmentioned child.
func TestRmCompleteness(t *testing.T) {
	e1 := fs.Rm{Path: "/a"}
	e2 := fs.If{A: fs.IsFile{Path: "/a"}, Then: fs.Rm{Path: "/a"}, Else: fs.If{A: fs.IsDir{Path: "/a"}, Then: fs.Id{}, Else: fs.Err{}}}
	// e1 errs on a non-empty dir; e2 does not. They also differ on empty
	// dirs (e1 removes, e2 keeps) — but the point is they must be seen as
	// inequivalent.
	eq, _, err := Equiv(e1, e2, Options{})
	if err != nil || eq {
		t.Fatalf("expected inequivalent, got eq=%v err=%v", eq, err)
	}
}

// Copy semantics: contents flow through cp and distinguish outcomes.
func TestCpContentFlow(t *testing.T) {
	// e1 copies /src to /d/f; e2 creates /d/f with literal "x". They differ
	// on inputs where /src is a file with contents ≠ "x".
	e1 := fs.Cp{Src: "/src", Dst: "/d/f"}
	e2 := fs.Seq{
		E1: fs.If{A: fs.IsFile{Path: "/src"}, Then: fs.Id{}, Else: fs.Err{}},
		E2: fs.Creat{Path: "/d/f", Content: "x"},
	}
	eq, cex, err := Equiv(e1, e2, Options{})
	if err != nil || eq {
		t.Fatalf("expected inequivalent, got eq=%v err=%v", eq, err)
	}
	if cex.Input["/src"].Kind != fs.KindFile {
		t.Errorf("witness should have /src as a file: %s", fs.StateString(cex.Input))
	}
}

// Two creats to different paths commute; same path conflicts via error
// order — still equivalent since both orders err... actually both orders
// err identically, so they are equivalent; test that.
func TestCreatSamePathBothOrdersEquivalent(t *testing.T) {
	a := fs.Creat{Path: "/f", Content: "a"}
	b := fs.Creat{Path: "/f", Content: "b"}
	eq, _, err := Equiv(fs.Seq{E1: a, E2: b}, fs.Seq{E1: b, E2: a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("both orders always err; they should be equivalent")
	}
}

// Guarded writes to the same path with different contents do not commute.
func TestGuardedCreatConflict(t *testing.T) {
	mk := func(content string) fs.Expr {
		return fs.SeqAll(
			fs.If{A: fs.IsFile{Path: "/f"}, Then: fs.Rm{Path: "/f"}, Else: fs.Id{}},
			fs.Creat{Path: "/f", Content: content},
		)
	}
	a, b := mk("a"), mk("b")
	eq, cex, err := Equiv(fs.Seq{E1: a, E2: b}, fs.Seq{E1: b, E2: a}, Options{})
	if err != nil || eq {
		t.Fatalf("overwrites with different contents must not commute: %v %v", eq, err)
	}
	if cex == nil {
		t.Fatal("missing counterexample")
	}
}

func TestIdempotent(t *testing.T) {
	// Guarded creation is idempotent.
	e := fs.Guard(fs.Not{P: fs.IsDir{Path: "/a"}}, fs.Mkdir{Path: "/a"})
	idem, _, err := Idempotent(e, Options{})
	if err != nil || !idem {
		t.Fatalf("guarded mkdir should be idempotent: %v %v", idem, err)
	}
	// Unguarded creation is not (fails the second time)... actually
	// mkdir;mkdir always errs while mkdir may succeed, so they differ.
	idem, cex, err := Idempotent(fs.Mkdir{Path: "/a"}, Options{})
	if err != nil || idem {
		t.Fatalf("bare mkdir should not be idempotent: %v %v", idem, err)
	}
	if cex == nil {
		t.Fatal("missing counterexample")
	}
	// Figure 3d: copy then remove source — second run always fails.
	fig3d := fs.SeqAll(fs.Cp{Src: "/src", Dst: "/dst"}, fs.Rm{Path: "/src"})
	idem, _, err = Idempotent(fig3d, Options{})
	if err != nil || idem {
		t.Fatalf("fig 3d should not be idempotent: %v %v", idem, err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// Build a pair of larger expressions and give the solver no room.
	var parts1, parts2 []fs.Expr
	for _, p := range []fs.Path{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"} {
		parts1 = append(parts1, fs.MkdirIfMissing(p))
		parts2 = append([]fs.Expr{fs.MkdirIfMissing(p)}, parts2...)
	}
	// Add a genuine conflict so the query is non-trivial.
	parts1 = append(parts1, fs.Creat{Path: "/a/x", Content: "1"})
	parts2 = append(parts2, fs.Creat{Path: "/a/x", Content: "2"})
	_, _, err := Equiv(fs.SeqAll(parts1...), fs.SeqAll(parts2...), Options{Budget: 1})
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

// restrict returns s limited to the vocabulary's domain.
func restrict(s fs.State, dom fs.PathSet) fs.State {
	out := fs.NewState()
	for p, c := range s {
		if dom.Has(p) {
			out[p] = c
		}
	}
	return out
}

// TestSymbolicMatchesConcrete is the central encoding property test: for
// random programs and random concrete inputs, the symbolic postcondition
// Φ(e) evaluated on the encoded input must match the concrete evaluator
// exactly (outcome and final state).
func TestSymbolicMatchesConcrete(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	cfg := fs.DefaultGenConfig()
	for trial := 0; trial < 300; trial++ {
		e := fs.GenExpr(r, cfg, 4)
		dom := fs.Dom(e)
		in := restrict(fs.GenState(r, cfg), dom)

		v := NewVocabWithLiterals(dom, cfg.Contents, e)
		en := NewEncoder(v)
		inSt := en.ConstState(in)
		outSt := en.Apply(e, inSt)

		wantOut, wantOk := fs.Eval(e, in)
		if !wantOk {
			// The symbolic ok must be false: asserting it is unsat.
			en.S.Assert(outSt.Ok)
			if en.S.Check() != sat.Unsat {
				t.Fatalf("trial %d: concrete errs but symbolic ok satisfiable\ne=%s\nin=%s",
					trial, fs.String(e), fs.StateString(in))
			}
			continue
		}
		expected := en.ConstState(restrict(wantOut, dom))
		en.S.Assert(en.S.Or(en.S.Not(outSt.Ok), en.StatesDiffer(outSt, expected)))
		if en.S.Check() != sat.Unsat {
			t.Fatalf("trial %d: symbolic output differs from concrete\ne=%s\nin=%s\nwant=%s",
				trial, fs.String(e), fs.StateString(in), fs.StateString(wantOut))
		}
	}
}

// TestEquivSoundOnRandomPairs: whenever Equiv declares two random programs
// equivalent, no randomly sampled concrete state may distinguish them
// (including states with paths outside the bounded domain — figure 8's
// fresh children make the domain adequate).
func TestEquivSoundOnRandomPairs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cfg := fs.DefaultGenConfig()
	equivalentPairs := 0
	for trial := 0; trial < 120; trial++ {
		e1 := fs.GenExpr(r, cfg, 3)
		e2 := fs.GenExpr(r, cfg, 3)
		eq, cex, err := Equiv(e1, e2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			equivalentPairs++
			for i := 0; i < 200; i++ {
				s := fs.GenState(r, cfg)
				if !fs.EquivOn(e1, e2, s) {
					t.Fatalf("trial %d: declared equivalent but differ on %s\ne1=%s\ne2=%s",
						trial, fs.StateString(s), fs.String(e1), fs.String(e2))
				}
			}
		} else if cex == nil {
			t.Fatalf("trial %d: inequivalent without counterexample", trial)
		}
		// Counterexamples are replayed concretely inside Equiv; reaching
		// here means the witness is genuine.
	}
	if equivalentPairs == 0 {
		t.Log("warning: no equivalent pairs sampled; property vacuous this seed")
	}
}

// Idempotence agrees with concrete sampling.
func TestIdempotentSoundOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cfg := fs.DefaultGenConfig()
	for trial := 0; trial < 80; trial++ {
		e := fs.GenExpr(r, cfg, 3)
		idem, _, err := Idempotent(e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ee := fs.Seq{E1: e, E2: e}
		for i := 0; i < 100; i++ {
			s := fs.GenState(r, cfg)
			if idem && !fs.EquivOn(e, ee, s) {
				t.Fatalf("trial %d: declared idempotent but e≠e;e on %s\ne=%s",
					trial, fs.StateString(s), fs.String(e))
			}
		}
	}
}

func TestModelStateRoundTrip(t *testing.T) {
	e := fs.Creat{Path: "/a/f", Content: "x"}
	dom := fs.Dom(e)
	v := NewVocab(dom, e)
	en := NewEncoder(v)
	input := en.FreshInputState("in")
	out := en.Apply(e, input)
	// Ask for a successful run.
	en.S.Assert(out.Ok)
	if en.S.Check() != sat.Sat {
		t.Fatal("creat must be satisfiable")
	}
	in, err := en.ModelState(input)
	if err != nil {
		t.Fatalf("ModelState: %v", err)
	}
	// The model must make /a a directory and /a/f absent.
	if !in.IsDir("/a") || in.Exists("/a/f") {
		t.Fatalf("bad model input: %s", fs.StateString(in))
	}
	ok, err := en.ModelOk(out)
	if err != nil {
		t.Fatalf("ModelOk: %v", err)
	}
	if !ok {
		t.Fatal("asserted ok not reflected in model")
	}
	got, ok := fs.Eval(e, in)
	if !ok || !got.IsFile("/a/f") {
		t.Fatal("replay failed")
	}
}
