package sym

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/sat"
	"repro/internal/smt"
)

// PathState is the symbolic state of one path: its kind and, when the kind
// is file, its content token.
type PathState struct {
	Kind    smt.Enum
	Content smt.Enum
}

// State is a logical state Σ (figure 7): an ok formula plus a symbolic
// filesystem over the vocabulary's path domain. States are immutable;
// Encoder.Apply returns new states.
type State struct {
	Ok smt.T
	fs map[fs.Path]PathState
}

// Lookup returns the symbolic state of p.
func (st *State) Lookup(p fs.Path) PathState {
	ps, ok := st.fs[p]
	if !ok {
		panic(fmt.Sprintf("sym: path %s not in state", p))
	}
	return ps
}

func (st *State) with(p fs.Path, ps PathState) *State {
	out := &State{Ok: st.Ok, fs: make(map[fs.Path]PathState, len(st.fs))}
	for q, v := range st.fs {
		out.fs[q] = v
	}
	out.fs[p] = ps
	return out
}

func (st *State) withOk(ok smt.T) *State {
	return &State{Ok: ok, fs: st.fs}
}

// Encoder translates FS expressions into formulas over a Solver.
type Encoder struct {
	S *smt.Solver
	V *Vocab
}

// NewEncoder creates an encoder for the vocabulary using a fresh solver.
func NewEncoder(v *Vocab) *Encoder {
	return &Encoder{S: smt.NewSolver(), V: v}
}

// NewEncoderConfig creates an encoder whose fresh solver uses the given
// SAT search configuration (zero value = default).
func NewEncoderConfig(v *Vocab, cfg sat.Config) *Encoder {
	return &Encoder{S: smt.NewSolverConfig(cfg), V: v}
}

// FreshInputState creates the symbolic initial state: one kind variable per
// path and the constant initial-content token ι_p. Contents need no
// variables — they are only moved around by the program, never branched on.
func (en *Encoder) FreshInputState(prefix string) *State {
	st := &State{Ok: smt.TrueT, fs: make(map[fs.Path]PathState, len(en.V.Paths))}
	for _, p := range en.V.Paths {
		st.fs[p] = PathState{
			Kind:    en.S.EnumVar(en.V.KindSort, fmt.Sprintf("%s:kind:%s", prefix, p)),
			Content: en.S.EnumConst(en.V.ContentSort, en.V.InitToken(p)),
		}
	}
	return st
}

// ConstState encodes a concrete filesystem as a constant logical state.
// Paths of the domain absent from s are encoded as does-not-exist; file
// contents must be literals of the vocabulary or concretized init tokens.
func (en *Encoder) ConstState(s fs.State) *State {
	st := &State{Ok: smt.TrueT, fs: make(map[fs.Path]PathState, len(en.V.Paths))}
	for _, p := range en.V.Paths {
		kind := KindNone
		tok := canonicalToken
		if c, ok := s[p]; ok {
			if c.Kind == fs.KindDir {
				kind = KindDir
			} else {
				kind = KindFile
				tok = en.V.LiteralToken(c.Data)
			}
		}
		st.fs[p] = PathState{
			Kind:    en.S.EnumConst(en.V.KindSort, kind),
			Content: en.S.EnumConst(en.V.ContentSort, tok),
		}
	}
	return st
}

// isDir returns the formula "p is a directory in st". The root is always a
// directory.
func (en *Encoder) isDir(st *State, p fs.Path) smt.T {
	if p.IsRoot() {
		return smt.TrueT
	}
	if !en.V.HasPath(p) {
		panic(fmt.Sprintf("sym: isDir on unmodeled path %s", p))
	}
	return en.S.EnumIs(st.Lookup(p).Kind, KindDir)
}

func (en *Encoder) isFile(st *State, p fs.Path) smt.T {
	if p.IsRoot() {
		return smt.FalseT
	}
	return en.S.EnumIs(st.Lookup(p).Kind, KindFile)
}

func (en *Encoder) isNone(st *State, p fs.Path) smt.T {
	if p.IsRoot() {
		return smt.FalseT
	}
	return en.S.EnumIs(st.Lookup(p).Kind, KindNone)
}

func (en *Encoder) isEmptyDir(st *State, p fs.Path) smt.T {
	none := []smt.T{en.isDir(st, p)}
	for _, q := range en.V.Children(p) {
		none = append(none, en.isNone(st, q))
	}
	return en.S.And(none...)
}

// Pred encodes predicate a over st (encPred in figure 7).
func (en *Encoder) Pred(a fs.Pred, st *State) smt.T {
	switch a := fs.UnwrapPred(a).(type) {
	case fs.True:
		return smt.TrueT
	case fs.False:
		return smt.FalseT
	case fs.Not:
		return en.S.Not(en.Pred(a.P, st))
	case fs.And:
		return en.S.And(en.Pred(a.L, st), en.Pred(a.R, st))
	case fs.Or:
		return en.S.Or(en.Pred(a.L, st), en.Pred(a.R, st))
	case fs.IsFile:
		return en.isFile(st, a.Path)
	case fs.IsDir:
		return en.isDir(st, a.Path)
	case fs.IsEmptyDir:
		return en.isEmptyDir(st, a.Path)
	case fs.IsNone:
		return en.isNone(st, a.Path)
	default:
		panic("sym: unknown predicate")
	}
}

// Apply computes Φ(e)Σ (figure 7): the symbolic strongest postcondition of
// e from st, fusing the ok(e) and f(e) functions.
func (en *Encoder) Apply(e fs.Expr, st *State) *State {
	switch e := fs.Unwrap(e).(type) {
	case fs.Id:
		return st
	case fs.Err:
		return st.withOk(smt.FalseT)
	case fs.Mkdir:
		ok := en.S.And(st.Ok, en.isDir(st, e.Path.Parent()), en.isNone(st, e.Path))
		out := st.with(e.Path, PathState{
			Kind:    en.S.EnumConst(en.V.KindSort, KindDir),
			Content: en.S.EnumConst(en.V.ContentSort, canonicalToken),
		})
		return out.withOk(ok)
	case fs.Creat:
		ok := en.S.And(st.Ok, en.isDir(st, e.Path.Parent()), en.isNone(st, e.Path))
		out := st.with(e.Path, PathState{
			Kind:    en.S.EnumConst(en.V.KindSort, KindFile),
			Content: en.S.EnumConst(en.V.ContentSort, en.V.LiteralToken(e.Content)),
		})
		return out.withOk(ok)
	case fs.Rm:
		ok := en.S.And(st.Ok, en.S.Or(en.isFile(st, e.Path), en.isEmptyDir(st, e.Path)))
		out := st.with(e.Path, PathState{
			Kind:    en.S.EnumConst(en.V.KindSort, KindNone),
			Content: en.S.EnumConst(en.V.ContentSort, canonicalToken),
		})
		return out.withOk(ok)
	case fs.Cp:
		ok := en.S.And(st.Ok,
			en.isFile(st, e.Src),
			en.isDir(st, e.Dst.Parent()),
			en.isNone(st, e.Dst))
		out := st.with(e.Dst, PathState{
			Kind:    en.S.EnumConst(en.V.KindSort, KindFile),
			Content: st.Lookup(e.Src).Content,
		})
		return out.withOk(ok)
	case fs.Seq:
		return en.Apply(e.E2, en.Apply(e.E1, st))
	case fs.If:
		c := en.Pred(e.A, st)
		switch c {
		case smt.TrueT:
			return en.Apply(e.Then, st)
		case smt.FalseT:
			return en.Apply(e.Else, st)
		}
		thenSt := en.Apply(e.Then, st)
		elseSt := en.Apply(e.Else, st)
		return en.merge(c, thenSt, elseSt)
	default:
		panic("sym: unknown expression")
	}
}

// merge joins two branch states under condition c.
func (en *Encoder) merge(c smt.T, a, b *State) *State {
	out := &State{
		Ok: en.S.Ite(c, a.Ok, b.Ok),
		fs: make(map[fs.Path]PathState, len(a.fs)),
	}
	for p, pa := range a.fs {
		pb := b.fs[p]
		if pa.Kind.Same(pb.Kind) && pa.Content.Same(pb.Content) {
			out.fs[p] = pa
			continue
		}
		out.fs[p] = PathState{
			Kind:    en.S.EnumIte(c, pa.Kind, pb.Kind),
			Content: en.S.EnumIte(c, pa.Content, pb.Content),
		}
	}
	return out
}

// PathDiffers returns the formula "path p differs between a and b":
// different kinds, or both files with different contents.
func (en *Encoder) PathDiffers(a, b *State, p fs.Path) smt.T {
	pa, pb := a.Lookup(p), b.Lookup(p)
	kindNeq := en.S.Not(en.S.EnumEq(pa.Kind, pb.Kind))
	bothFile := en.S.And(
		en.S.EnumIs(pa.Kind, KindFile),
		en.S.EnumIs(pb.Kind, KindFile))
	contentNeq := en.S.Not(en.S.EnumEq(pa.Content, pb.Content))
	return en.S.Or(kindNeq, en.S.And(bothFile, contentNeq))
}

// StatesDiffer returns the formula "a and b are observably different
// outcomes": exactly one errored, or both succeeded with different
// filesystems. Two error states are equal regardless of their filesystems.
func (en *Encoder) StatesDiffer(a, b *State) smt.T {
	diffs := make([]smt.T, 0, len(en.V.Paths)+1)
	for _, p := range en.V.Paths {
		diffs = append(diffs, en.PathDiffers(a, b, p))
	}
	bothOk := en.S.And(a.Ok, b.Ok)
	return en.S.Or(
		en.S.Xor(a.Ok, b.Ok),
		en.S.And(bothOk, en.S.Or(diffs...)),
	)
}

// WellFormed returns the formula asserting st is a well-formed tree over
// the modeled domain: every present path whose parent is also modeled has
// that parent present as a directory. Real machines always satisfy this;
// the paper's semantics quantifies over arbitrary maps, so this is an
// optional strengthening of the initial state (it can only remove
// counterexamples that no real machine could exhibit).
func (en *Encoder) WellFormed(st *State) smt.T {
	var parts []smt.T
	for _, p := range en.V.Paths {
		parent := p.Parent()
		if parent.IsRoot() || !en.V.HasPath(parent) {
			continue
		}
		exists := en.S.Not(en.isNone(st, p))
		parts = append(parts, en.S.Implies(exists, en.isDir(st, parent)))
	}
	return en.S.And(parts...)
}

// ModelState extracts the concrete filesystem assigned to st by the current
// model. Initial-content tokens concretize to unique synthetic strings;
// literal tokens to themselves. It returns smt.ErrNoModel when the last
// Check did not produce a model.
func (en *Encoder) ModelState(st *State) (fs.State, error) {
	out := fs.NewState()
	for _, p := range en.V.Paths {
		ps := st.Lookup(p)
		kind, err := en.S.EnumValue(ps.Kind)
		if err != nil {
			return nil, err
		}
		switch kind {
		case KindDir:
			out[p] = fs.DirContent()
		case KindFile:
			content, err := en.S.EnumValue(ps.Content)
			if err != nil {
				return nil, err
			}
			out[p] = fs.FileContent(en.V.TokenString(content))
		}
	}
	return out, nil
}

// ModelOk reports whether st is a success state in the current model. It
// returns smt.ErrNoModel when the last Check did not produce a model.
func (en *Encoder) ModelOk(st *State) (bool, error) {
	return en.S.BoolValue(st.Ok)
}
