// Package sym encodes FS programs as finite-domain logical formulas,
// implementing Φ(e), ok(e) and f(e) from figure 7 of the paper, the bounded
// path domain of figure 8, and equivalence checking of FS expressions
// (lemmas 2 and 3).
//
// A logical state Σ pairs an ok formula with a map from paths to symbolic
// path states. Each path state is a (kind, content) pair: kind ranges over
// {does-not-exist, directory, file} and content over a finite token
// vocabulary — the program's string literals plus one "initial content"
// token ι_p per path. Because FS predicates never observe file contents,
// treating tokens as pairwise-distinct values is exactly as precise as the
// paper's EUF encoding (see DESIGN.md, "Content-token completeness").
package sym

import (
	"fmt"
	"sort"

	"repro/internal/fs"
	"repro/internal/smt"
)

// Kind values of the kind sort.
const (
	KindNone = 0 // path does not exist
	KindDir  = 1 // path is a directory
	KindFile = 2 // path is a regular file
)

// canonicalToken is the content token used for path states whose content is
// meaningless (directories and absent paths). It is index 0 of every
// content sort and is never compared against file contents because state
// equality only compares contents when both sides are files.
const canonicalToken = 0

// Vocab is the finite vocabulary of an encoding problem: the bounded path
// domain and the content tokens.
type Vocab struct {
	Paths    []fs.Path // sorted
	pathIdx  map[fs.Path]int
	Tokens   []string // index 0 is the canonical token
	tokenIdx map[string]int
	initTok  []int // per path index, the token index of ι_p

	KindSort    smt.Sort
	ContentSort smt.Sort
}

// NewVocab builds the vocabulary for the given bounded domain and the
// content literals of the given expressions. The domain should be the
// union of fs.Dom over every expression involved in the query (figure 8).
func NewVocab(dom fs.PathSet, exprs ...fs.Expr) *Vocab {
	return NewVocabWithLiterals(dom, nil, exprs...)
}

// NewVocabWithLiterals is NewVocab with additional content literals beyond
// those appearing in the expressions, for encoding concrete states whose
// file contents the programs never write.
func NewVocabWithLiterals(dom fs.PathSet, extra []string, exprs ...fs.Expr) *Vocab {
	v := &Vocab{
		pathIdx:  make(map[fs.Path]int),
		tokenIdx: make(map[string]int),
	}
	v.Paths = dom.Sorted()
	for i, p := range v.Paths {
		v.pathIdx[p] = i
	}

	v.Tokens = append(v.Tokens, "<canonical>")
	lits := make(map[string]struct{})
	for _, s := range extra {
		lits[s] = struct{}{}
	}
	for _, e := range exprs {
		for lit := range fs.Contents(e) {
			lits[lit] = struct{}{}
		}
	}
	sorted := make([]string, 0, len(lits))
	for lit := range lits {
		sorted = append(sorted, lit)
	}
	sort.Strings(sorted)
	for _, lit := range sorted {
		v.tokenIdx[lit] = len(v.Tokens)
		v.Tokens = append(v.Tokens, lit)
	}
	v.initTok = make([]int, len(v.Paths))
	for i, p := range v.Paths {
		v.initTok[i] = len(v.Tokens)
		v.Tokens = append(v.Tokens, initTokenName(p))
	}

	v.KindSort = smt.Sort{Name: "kind", Size: 3}
	v.ContentSort = smt.Sort{Name: "content", Size: len(v.Tokens)}
	return v
}

func initTokenName(p fs.Path) string { return "ι:" + string(p) }

// HasPath reports whether p is in the modeled domain.
func (v *Vocab) HasPath(p fs.Path) bool {
	_, ok := v.pathIdx[p]
	return ok
}

// PathIndex returns the index of p; p must be in the domain.
func (v *Vocab) PathIndex(p fs.Path) int {
	i, ok := v.pathIdx[p]
	if !ok {
		panic(fmt.Sprintf("sym: path %s not in vocabulary", p))
	}
	return i
}

// LiteralToken returns the token index of the content literal s; s must
// appear in one of the vocabulary's expressions.
func (v *Vocab) LiteralToken(s string) int {
	i, ok := v.tokenIdx[s]
	if !ok {
		panic(fmt.Sprintf("sym: content literal %q not in vocabulary", s))
	}
	return i
}

// InitToken returns the token index of ι_p, the symbolic initial content of
// path p.
func (v *Vocab) InitToken(p fs.Path) int {
	return v.initTok[v.PathIndex(p)]
}

// TokenString returns a concrete string realizing token index t: literals
// map to themselves and initial-content tokens to a unique synthetic string
// so that all tokens concretize to pairwise-distinct contents exactly when
// their indices differ (except literals, which equal themselves).
func (v *Vocab) TokenString(t int) string {
	return v.Tokens[t]
}

// Children returns the modeled direct children of p, in sorted order.
func (v *Vocab) Children(p fs.Path) []fs.Path {
	var out []fs.Path
	for _, q := range v.Paths {
		if q.IsChildOf(p) {
			out = append(out, q)
		}
	}
	return out
}
