package sym

// Incremental query sessions. Equiv builds an isolated vocabulary, encoder
// and solver per query — perfectly parallel, but every query pays Tseitin
// compilation and variable setup from scratch and discards all learnt
// clauses. A Session amortizes that: it owns one encoder and one shared
// symbolic input state over a fixed vocabulary, answers each query inside a
// Push/Pop scope of the underlying smt.Solver, and memoizes symbolic
// application so repeated sub-expressions (the common case in pairwise
// commutativity checking, where each resource appears in many pairs) encode
// once.
//
// Soundness of the shared vocabulary: a query over any domain D ⊇
// dom(e1) ∪ dom(e2) decides the same equivalence as the minimal domain
// (the paper's bounded-domain lemma, §4.1). Paths untouched by both
// expressions carry syntactically identical symbolic states on both sides,
// so their disequality terms fold to false during construction; only the
// touched paths contribute to the query. Content tokens are likewise a
// superset, which only widens the space of distinguishable contents — and
// contents never influence control flow (FS predicates don't read them).
//
// A Session is NOT safe for concurrent use; the parallel engine keeps one
// session per worker (internal/core's solver pool).

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/fs"
	"repro/internal/sat"
)

// Digest returns a canonical content hash of the vocabulary: equal digests
// mean identical path domains and token sets, hence interchangeable
// encoders. It keys the solver pools of internal/core.
func (v *Vocab) Digest() fs.Digest {
	h := sha256.New()
	var n [4]byte
	write := func(s string) {
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	binary.LittleEndian.PutUint32(n[:], uint32(len(v.Paths)))
	h.Write(n[:])
	for _, p := range v.Paths {
		write(string(p))
	}
	for _, t := range v.Tokens {
		write(t)
	}
	var d fs.Digest
	h.Sum(d[:0])
	return d
}

// SessionStats counts the work a session has amortized.
type SessionStats struct {
	Queries        int64             // equivalence queries answered
	ApplyHits      int64             // symbolic applications served by the memo
	ApplyMisses    int64             // symbolic applications that walked a subtree
	LearntRetained int               // learnt clauses currently live in the solver
	Simplify       sat.SimplifyStats // cumulative preprocessing counters
	Search         sat.Counters      // cumulative SAT search counters
}

// Session answers a stream of equivalence queries over one fixed vocabulary
// with a single long-lived encoder and solver.
type Session struct {
	en        *Encoder
	input     *State
	apply     map[fs.Digest]*State // DigestExpr(e) -> Apply(e, input), plain trees
	applyNode map[*fs.HExpr]*State // interned node -> Apply(e, input): O(1) key
	stats     SessionStats
}

// NewSession creates a session over the vocabulary. Every expression later
// passed to Equiv or Commutes must draw its paths and content literals from
// this vocabulary (callers build it from the union of all expressions they
// will query — see core.checkDeterminism).
func NewSession(v *Vocab) *Session {
	return NewSessionConfig(v, sat.Config{})
}

// NewSessionConfig creates a session whose solver uses the given SAT
// search configuration (zero value = default). Sessions over different
// configs answer every query identically; only search order differs.
func NewSessionConfig(v *Vocab, cfg sat.Config) *Session {
	en := NewEncoderConfig(v, cfg)
	return &Session{
		en:        en,
		input:     en.FreshInputState("in"),
		apply:     make(map[fs.Digest]*State),
		applyNode: make(map[*fs.HExpr]*State),
	}
}

// ConfigName returns the name of the session solver's search config.
func (s *Session) ConfigName() string { return s.en.S.ConfigName() }

// Stats returns the session's counters.
func (s *Session) Stats() SessionStats {
	s.stats.LearntRetained = s.en.S.LearntClauses()
	s.stats.Simplify = s.en.S.SimplifyCounters()
	return s.stats
}

// applyMemo returns Apply(e, input), memoized per subtree. Hash-consed
// expressions key on node identity — an O(1) pointer read, no hashing at
// all — while plain trees fall back to the digest key, which keeps the
// non-interned baseline exactly as fast as before. Seq spines recurse
// through the memo, so Apply(e1, input) is computed once even though e1
// heads many different Seq composites (every commutativity query pairs it
// with a different second component). The memo survives Pop: symbolic
// application creates only terms (never assertions), and the term DAG and
// its compilation are permanent. A miss walks exactly one component
// subtree (the Seq right child, or the whole non-Seq expression), which is
// the unit the modeled per-encode latency of internal/core charges.
func (s *Session) applyMemo(e fs.Expr) *State {
	if h, ok := e.(*fs.HExpr); ok {
		if st, ok := s.applyNode[h]; ok {
			s.stats.ApplyHits++
			return st
		}
		st := s.applyCompute(e)
		s.applyNode[h] = st
		s.stats.ApplyMisses++
		return st
	}
	d := fs.DigestExpr(e)
	if st, ok := s.apply[d]; ok {
		s.stats.ApplyHits++
		return st
	}
	st := s.applyCompute(e)
	s.apply[d] = st
	s.stats.ApplyMisses++
	return st
}

// applyCompute performs the (unmemoized) symbolic application of e.
func (s *Session) applyCompute(e fs.Expr) *State {
	if seq, ok := fs.Unwrap(e).(fs.Seq); ok {
		return s.en.Apply(seq.E2, s.applyMemo(seq.E1))
	}
	return s.en.Apply(e, s.input)
}

// ApplyMisses returns the number of subtree walks the session has paid;
// internal/core uses before/after deltas to model external-encoder cost.
func (s *Session) ApplyMisses() int64 { return s.stats.ApplyMisses }

// sessionLearntCap bounds the learnt clauses a session carries from query
// to query. Retention pays off while the learnt database is hot and small;
// past a few thousand clauses, propagation drag on every later query
// outweighs the pruning the clauses buy (measured on the pairwise
// commutativity workload), so the session periodically starts the learnt
// database over. Problem clauses, compiled terms and the apply memo are
// unaffected.
const sessionLearntCap = 2000

// Equiv decides e1 ≡ e2 over the session's vocabulary, like the package
// function Equiv but reusing the session's solver. The query runs in a
// Push/Pop scope: its assertion is retired afterwards while learnt clauses
// and compiled terms stay for the next query.
func (s *Session) Equiv(e1, e2 fs.Expr, opts Options) (bool, *Counterexample, error) {
	s.stats.Queries++
	if s.en.S.LearntClauses() > sessionLearntCap {
		s.en.S.ClearLearnts()
	}
	before := s.en.S.Counters()
	defer func() {
		delta := s.en.S.Counters().Sub(before)
		s.stats.Search = s.stats.Search.Add(delta)
		if opts.Metrics != nil {
			opts.Metrics.add(delta)
		}
	}()
	out1 := s.applyMemo(e1)
	out2 := s.applyMemo(e2)
	s.en.S.SetBudget(opts.Budget)
	s.en.S.Push()
	defer s.en.S.Pop()
	s.en.S.Assert(s.en.StatesDiffer(out1, out2))
	switch s.en.S.Check() {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, ErrBudget
	}
	// Extract before the deferred Pop invalidates the model.
	cex := canonicalCounterexample(s.en, s.input, e1, e2)
	return false, cex, nil
}

// Commutes decides e1; e2 ≡ e2; e1 within the session.
func (s *Session) Commutes(e1, e2 fs.Expr, opts Options) (bool, *Counterexample, error) {
	return s.Equiv(fs.Seq{E1: e1, E2: e2}, fs.Seq{E1: e2, E2: e1}, opts)
}

// Idempotent decides e ≡ e; e within the session.
func (s *Session) Idempotent(e fs.Expr, opts Options) (bool, *Counterexample, error) {
	return s.Equiv(e, fs.Seq{E1: e, E2: e}, opts)
}
