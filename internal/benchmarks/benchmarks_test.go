package benchmarks

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestInventory(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("suite has %d benchmarks, want 13", len(all))
	}
	nondet := 0
	for _, b := range all {
		if !b.Deterministic {
			nondet++
			if b.FixedName == "" {
				t.Errorf("%s has no fixed variant", b.Name)
			}
		}
	}
	if nondet != 6 {
		t.Errorf("suite has %d non-deterministic benchmarks, want 6 (section 6)", nondet)
	}
	if len(Fixed()) != 6 {
		t.Errorf("Fixed() = %d, want 6", len(Fixed()))
	}
	if len(Verified()) != 13 {
		t.Errorf("Verified() = %d, want 13", len(Verified()))
	}
	if len(Names()) != 19 {
		t.Errorf("Names() = %d, want 19", len(Names()))
	}
	if _, err := Get("no-such"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestSuiteVerdicts reproduces the paper's headline result (section 6,
// "Bugs found"): Rehearsal flags exactly the six buggy benchmarks, and
// each fix verifies as deterministic AND idempotent.
func TestSuiteVerdicts(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Timeout = 2 * time.Minute
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s, err := core.Load(b.Source, opts)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res, err := s.CheckDeterminism()
			if err != nil {
				t.Fatalf("determinism: %v", err)
			}
			if res.Deterministic != b.Deterministic {
				if res.Counterexample != nil {
					t.Logf("orders:\n  %v\n  %v", res.Counterexample.Order1, res.Counterexample.Order2)
				}
				t.Fatalf("verdict %v, want %v", res.Deterministic, b.Deterministic)
			}
			if !b.Deterministic {
				if res.Counterexample == nil {
					t.Fatal("non-deterministic without counterexample")
				}
				// And the fix must verify.
				fixed, err := Get(b.FixedName)
				if err != nil {
					t.Fatal(err)
				}
				fs, err := core.Load(fixed.Source, opts)
				if err != nil {
					t.Fatalf("load fixed: %v", err)
				}
				fres, err := fs.CheckDeterminism()
				if err != nil {
					t.Fatalf("fixed determinism: %v", err)
				}
				if !fres.Deterministic {
					t.Fatalf("fix does not verify: orders\n  %v\n  %v",
						fres.Counterexample.Order1, fres.Counterexample.Order2)
				}
			}
		})
	}
}

// TestVerifiedIdempotent reproduces figure 12's precondition: every
// verified (deterministic or fixed) benchmark is idempotent.
func TestVerifiedIdempotent(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Timeout = 2 * time.Minute
	for _, b := range Verified() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s, err := core.Load(b.Source, opts)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res, err := s.CheckIdempotence()
			if err != nil {
				t.Fatalf("idempotence: %v", err)
			}
			if !res.Idempotent {
				t.Fatalf("not idempotent:\n%s", res.Counterexample)
			}
		})
	}
}
