package benchmarks

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qcache"
)

// The parallel runner must return every benchmark's verdict, in suite
// order, matching the manually-verified expectations — at any worker
// count.
func TestRunParallelMatchesSuite(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Timeout = 2 * time.Minute
	opts.SharedQueryCache = qcache.New()

	for _, workers := range []int{1, 4} {
		results := Run(opts, workers)
		suite := All()
		if len(results) != len(suite) {
			t.Fatalf("workers=%d: %d results for %d benchmarks", workers, len(results), len(suite))
		}
		for i, r := range results {
			if r.Name != suite[i].Name {
				t.Errorf("workers=%d: result %d is %q, want %q (order lost)", workers, i, r.Name, suite[i].Name)
			}
			if r.Err != nil {
				t.Errorf("workers=%d: %s: %v", workers, r.Name, r.Err)
				continue
			}
			if r.TimedOut {
				t.Errorf("workers=%d: %s timed out", workers, r.Name)
				continue
			}
			if r.Deterministic != r.Expected {
				t.Errorf("workers=%d: %s: deterministic=%v, want %v", workers, r.Name, r.Deterministic, r.Expected)
			}
		}
	}
}
