# xinetd-nondet: super-server with a custom service entry.
# BUG: the /etc/xinetd.d entry does not require the xinetd package that
# creates the directory.
class xinetd {
  package { 'xinetd':
    ensure => present,
  }

  file { '/etc/xinetd.d/backup-agent':
    content => "service backup-agent\n{\n  port = 9911\n  socket_type = stream\n  wait = no\n}\n",
    # require => Package['xinetd'],   # <-- omitted
  }

  service { 'xinetd':
    ensure    => running,
    subscribe => File['/etc/xinetd.d/backup-agent'],
  }
}

include xinetd
