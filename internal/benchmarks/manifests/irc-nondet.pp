# irc-nondet: IRC server with an operator account.
# BUG: the operator's SSH key never declares a dependency on the user
# account, so Puppet may try to install the key before the account (and
# its home directory) exists — the user/key bug class the paper reports
# finding in its evaluation.
class irc {
  package { 'ngircd':
    ensure => present,
  }

  file { '/etc/ngircd/ngircd.conf':
    content => "[Global]\nName = irc.example.com\nInfo = Example IRC\n",
    require => Package['ngircd'],
  }

  service { 'ngircd':
    ensure    => running,
    subscribe => File['/etc/ngircd/ngircd.conf'],
  }

  user { 'ircop':
    ensure     => present,
    managehome => true,
  }
  ssh_authorized_key { 'ircop@admin':
    user => 'ircop',
    type => 'ssh-rsa',
    key  => 'AAAAB3NzaC1yc2EAAAADAQABAAABAQC0ircop',
    # require => User['ircop'],   # <-- omitted
  }
}

include irc
