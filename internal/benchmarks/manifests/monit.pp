# monit: process supervision. Deterministic.
class monit {
  package { 'monit':
    ensure => present,
  }

  file { '/etc/monit/monitrc':
    content => "set daemon 120\nset httpd port 2812 allow localhost\n",
    mode    => '0600',
    require => Package['monit'],
  }

  service { 'monit':
    ensure    => running,
    subscribe => File['/etc/monit/monitrc'],
  }

  cron { 'monit-summary':
    command => '/usr/bin/monit summary',
    hour    => '8',
    minute  => '5',
    require => Service['monit'],
  }
}

include monit
