# nginx: web server with two virtual hosts built from a defined type.
# Deterministic.
class nginx {
  package { 'nginx':
    ensure => present,
  }

  File {
    owner => 'root',
    mode  => '0644',
  }

  file { '/etc/nginx/nginx.conf':
    content => "user www-data;\nworker_processes 4;\nhttp { include /etc/nginx/sites-available/*; }\n",
    require => Package['nginx'],
  }

  service { 'nginx':
    ensure    => running,
    subscribe => File['/etc/nginx/nginx.conf'],
  }
}

define nginx_site($port = 80, $root = undef) {
  $docroot = $root ? {
    undef   => "/srv/www/${title}",
    default => $root,
  }
  file { "/etc/nginx/sites-available/${title}":
    content => "server {\n  listen ${port};\n  server_name ${title};\n  root ${docroot};\n}\n",
    require => Package['nginx'],
    notify  => Service['nginx'],
  }
}

nginx_site { 'www.example.com': }
nginx_site { 'api.example.com':
  port => 8080,
  root => '/srv/api',
}

include nginx
