# dns-fixed: the dns-nondet benchmark with the missing package
# dependencies restored; deterministic and idempotent.
class dns {
  package { 'bind9':
    ensure => present,
  }

  file { '/etc/bind/named.conf.options':
    content => "options { forwarders { 8.8.8.8; 8.8.4.4; }; recursion yes; };\n",
    require => Package['bind9'],
  }
  file { '/etc/bind/zones.rfc1918':
    content => "zone \"10.in-addr.arpa\" { type master; file \"/etc/bind/db.empty\"; };\n",
    require => Package['bind9'],
  }

  service { 'bind9':
    ensure  => running,
    require => [File['/etc/bind/named.conf.options'],
                File['/etc/bind/zones.rfc1918']],
  }
}

include dns
