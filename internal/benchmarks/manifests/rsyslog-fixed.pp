# rsyslog-fixed: the rsyslog-nondet benchmark with the drop-in's package
# dependency restored; deterministic and idempotent.
class rsyslog {
  package { 'rsyslog':
    ensure => present,
  }

  file { '/etc/rsyslog.conf':
    content => "module(load=\"imuxsock\")\n\$IncludeConfig /etc/rsyslog.d/*.conf\n",
    require => Package['rsyslog'],
  }
  file { '/etc/rsyslog.d/30-remote.conf':
    content => "*.* @@loghost.example.com:514\n",
    require => Package['rsyslog'],
  }

  service { 'rsyslog':
    ensure    => running,
    subscribe => [File['/etc/rsyslog.conf'], File['/etc/rsyslog.d/30-remote.conf']],
  }
}

include rsyslog
