# irc-fixed: the irc-nondet benchmark with the user dependency restored;
# deterministic and idempotent.
class irc {
  package { 'ngircd':
    ensure => present,
  }

  file { '/etc/ngircd/ngircd.conf':
    content => "[Global]\nName = irc.example.com\nInfo = Example IRC\n",
    require => Package['ngircd'],
  }

  service { 'ngircd':
    ensure    => running,
    subscribe => File['/etc/ngircd/ngircd.conf'],
  }

  user { 'ircop':
    ensure     => present,
    managehome => true,
  }
  ssh_authorized_key { 'ircop@admin':
    user    => 'ircop',
    type    => 'ssh-rsa',
    key     => 'AAAAB3NzaC1yc2EAAAADAQABAAABAQC0ircop',
    require => User['ircop'],
  }
}

include irc
