# amavis: mail content filter with spam/virus scanning.
# Deterministic: every configuration file requires its package and the
# service is ordered after the configuration.
class amavis {
  package { 'amavisd-new':
    ensure => present,
  }
  package { 'postfix':
    ensure => present,
  }

  File {
    owner => 'root',
    mode  => '0644',
  }

  file { '/etc/amavis/conf.d/05-node_id':
    content => "use strict;\n\$myhostname = \"mail.example.com\";\n1;\n",
    require => Package['amavisd-new'],
  }
  file { '/etc/amavis/conf.d/50-user':
    content => "use strict;\n\$sa_tag_level_deflt = 2.0;\n1;\n",
    require => Package['amavisd-new'],
  }
  file { '/etc/postfix/main.cf':
    content => "content_filter = smtp-amavis:[127.0.0.1]:10024\n",
    require => Package['postfix'],
  }

  service { 'amavis':
    ensure  => running,
    require => [File['/etc/amavis/conf.d/05-node_id'],
                File['/etc/amavis/conf.d/50-user']],
  }
  service { 'postfix':
    ensure  => running,
    require => File['/etc/postfix/main.cf'],
  }

  cron { 'sa-update':
    command => '/usr/bin/sa-learn --sync',
    hour    => '2',
    minute  => '15',
    require => Package['amavisd-new'],
  }
}

include amavis
