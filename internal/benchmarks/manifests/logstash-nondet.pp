# logstash-nondet: log aggregation pipeline.
# BUG: the pipeline configuration is dropped into /etc/logstash/conf.d
# without requiring the logstash package that creates the directory.
class logstash {
  package { 'logstash':
    ensure => present,
  }

  file { '/etc/logstash/conf.d/pipeline.conf':
    content => "input { syslog { port => 5514 } }\noutput { stdout {} }\n",
    # require => Package['logstash'],   # <-- omitted
  }

  service { 'logstash':
    ensure    => running,
    subscribe => File['/etc/logstash/conf.d/pipeline.conf'],
    require   => Package['logstash'],
  }

  cron { 'logstash-rotate':
    command => '/usr/sbin/logrotate /etc/logrotate.d/logstash',
    hour    => '1',
    minute  => '30',
  }
}

include logstash
