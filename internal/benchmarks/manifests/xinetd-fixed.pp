# xinetd-fixed: the xinetd-nondet benchmark with the package dependency
# restored; deterministic and idempotent.
class xinetd {
  package { 'xinetd':
    ensure => present,
  }

  file { '/etc/xinetd.d/backup-agent':
    content => "service backup-agent\n{\n  port = 9911\n  socket_type = stream\n  wait = no\n}\n",
    require => Package['xinetd'],
  }

  service { 'xinetd':
    ensure    => running,
    subscribe => File['/etc/xinetd.d/backup-agent'],
  }
}

include xinetd
