# hosting: shared web hosting node — LAMP stack, per-site virtual hosts,
# shell accounts with SSH keys. The largest benchmark. Deterministic.
class lamp {
  package { 'apache2':
    ensure => present,
  }
  package { 'mysql-server':
    ensure => present,
  }
  package { 'php5':
    ensure => present,
  }

  file { '/etc/apache2/ports.conf':
    content => "Listen 80\nListen 443\n",
    require => Package['apache2'],
  }
  file { '/etc/mysql/my.cnf':
    content => "[mysqld]\nbind-address = 127.0.0.1\n",
    require => Package['mysql-server'],
  }
  file { '/etc/php5/cli/php.ini':
    content => "memory_limit = 128M\n",
    require => Package['php5'],
  }

  service { 'apache2':
    ensure    => running,
    subscribe => File['/etc/apache2/ports.conf'],
    require   => Package['php5'],
  }
  service { 'mysql':
    ensure    => running,
    subscribe => File['/etc/mysql/my.cnf'],
  }
}

define vhost($docroot, $server_admin = 'webmaster@example.com') {
  file { "/etc/apache2/sites-available/${title}.conf":
    content => "<VirtualHost *:80>\n  ServerName ${title}\n  DocumentRoot ${docroot}\n  ServerAdmin ${server_admin}\n</VirtualHost>\n",
    require => Package['apache2'],
    notify  => Service['apache2'],
  }
}

define account($key) {
  user { $title:
    ensure     => present,
    managehome => true,
  }
  ssh_authorized_key { "${title}@hosting":
    user    => $title,
    type    => 'ssh-rsa',
    key     => $key,
    require => User[$title],
  }
}

class sites {
  vhost { 'blog.example.com':
    docroot => '/srv/www/blog',
  }
  vhost { 'shop.example.com':
    docroot => '/srv/www/shop',
  }
  vhost { 'wiki.example.com':
    docroot => '/srv/www/wiki',
  }

  account { 'alice':
    key => 'AAAAB3NzaC1yc2EAAAADAQABAAABAQC0alice',
  }
  account { 'bob':
    key => 'AAAAB3NzaC1yc2EAAAADAQABAAABAQC0bob',
  }

  group { 'www-data':
    ensure => present,
  }
}

include lamp
include sites
