# ntp-fixed: the ntp-nondet benchmark with the package dependency
# restored; deterministic and idempotent.
class ntp {
  package { 'ntp':
    ensure => present,
  }

  file { '/etc/ntp.conf':
    content => "driftfile /var/lib/ntp/ntp.drift\nserver 0.pool.ntp.org iburst\nserver 1.pool.ntp.org iburst\n",
    require => Package['ntp'],
  }

  service { 'ntp':
    ensure    => running,
    subscribe => File['/etc/ntp.conf'],
  }
}

include ntp
