# bind: authoritative DNS server with one managed zone.
# Deterministic: configuration requires the package, the service follows
# the configuration, host entries are independent.
class bind {
  package { 'bind9':
    ensure => present,
  }

  file { '/etc/bind/named.conf.options':
    content => "options { directory \"/var/cache/bind\"; recursion no; };\n",
    require => Package['bind9'],
  }
  file { '/etc/bind/named.conf.local':
    content => "zone \"example.com\" { type master; file \"/etc/bind/db.example.com\"; };\n",
    require => Package['bind9'],
  }
  file { '/etc/bind/db.example.com':
    content => "\$TTL 604800\n@ IN SOA ns1.example.com. admin.example.com. ( 3 604800 86400 2419200 604800 )\n",
    require => Package['bind9'],
  }

  service { 'bind9':
    ensure    => running,
    subscribe => [File['/etc/bind/named.conf.options'],
                  File['/etc/bind/named.conf.local'],
                  File['/etc/bind/db.example.com']],
  }
}

host { 'ns1.example.com':
  ip => '192.0.2.1',
}
host { 'ns2.example.com':
  ip => '192.0.2.2',
}

include bind
