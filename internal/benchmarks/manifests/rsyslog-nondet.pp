# rsyslog-nondet: central syslog configuration.
# BUG: the main configuration declares its package dependency but the
# drop-in under /etc/rsyslog.d does not; the drop-in may be created before
# the package creates the directory.
class rsyslog {
  package { 'rsyslog':
    ensure => present,
  }

  file { '/etc/rsyslog.conf':
    content => "module(load=\"imuxsock\")\n\$IncludeConfig /etc/rsyslog.d/*.conf\n",
    require => Package['rsyslog'],
  }
  file { '/etc/rsyslog.d/30-remote.conf':
    content => "*.* @@loghost.example.com:514\n",
    # require => Package['rsyslog'],   # <-- omitted
  }

  service { 'rsyslog':
    ensure    => running,
    subscribe => [File['/etc/rsyslog.conf'], File['/etc/rsyslog.d/30-remote.conf']],
  }
}

include rsyslog
