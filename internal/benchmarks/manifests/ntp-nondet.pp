# ntp-nondet: time synchronization.
# BUG: the common Puppet idiom of installing a package and overwriting its
# default configuration, with the dependency omitted (the paper's
# figure 3a bug class): /etc/ntp.conf is shipped by the ntp package, so
# creating the file first makes the package installation collide — and the
# two orders disagree.
class ntp {
  package { 'ntp':
    ensure => present,
  }

  file { '/etc/ntp.conf':
    content => "driftfile /var/lib/ntp/ntp.drift\nserver 0.pool.ntp.org iburst\nserver 1.pool.ntp.org iburst\n",
    # require => Package['ntp'],   # <-- omitted
  }

  service { 'ntp':
    ensure    => running,
    subscribe => File['/etc/ntp.conf'],
  }
}

include ntp
