# dns-nondet: caching resolver configuration.
# BUG: the zone file and the forwarders configuration never declare a
# dependency on the bind9 package, so Puppet may create them before the
# package has created /etc/bind — a non-deterministic error.
class dns {
  package { 'bind9':
    ensure => present,
  }

  file { '/etc/bind/named.conf.options':
    content => "options { forwarders { 8.8.8.8; 8.8.4.4; }; recursion yes; };\n",
    # require => Package['bind9'],   # <-- omitted
  }
  file { '/etc/bind/zones.rfc1918':
    content => "zone \"10.in-addr.arpa\" { type master; file \"/etc/bind/db.empty\"; };\n",
    # require => Package['bind9'],   # <-- omitted
  }

  service { 'bind9':
    ensure  => running,
    require => [File['/etc/bind/named.conf.options'],
                File['/etc/bind/zones.rfc1918']],
  }
}

include dns
