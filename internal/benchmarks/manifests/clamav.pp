# clamav: antivirus scanner with a dedicated system user and signature
# update cron job. Deterministic.
class clamav {
  package { 'clamav':
    ensure => present,
  }

  user { 'clamav':
    ensure     => present,
    home       => '/var/lib/clamav',
    managehome => true,
    shell      => '/bin/false',
  }

  file { '/etc/clamav/clamd.conf':
    content => "LocalSocket /var/run/clamav/clamd.ctl\nUser clamav\n",
    require => [Package['clamav'], User['clamav']],
  }
  file { '/etc/clamav/freshclam.conf':
    content => "DatabaseOwner clamav\nChecks 24\n",
    require => [Package['clamav'], User['clamav']],
  }

  service { 'clamav-daemon':
    ensure  => running,
    require => File['/etc/clamav/clamd.conf'],
  }

  cron { 'freshclam':
    command => '/usr/bin/freshclam --quiet',
    user    => 'clamav',
    minute  => '47',
    require => [File['/etc/clamav/freshclam.conf'], User['clamav']],
  }
}

include clamav
