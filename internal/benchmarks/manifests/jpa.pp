# jpa: Java web application on Tomcat (a JPA/Hibernate deployment).
# Deterministic: the servlet container configuration requires the package
# and the application user owns the deployment directory.
class jpa {
  package { 'tomcat7':
    ensure => present,
  }

  user { 'tomcat':
    ensure     => present,
    home       => '/srv/tomcat',
    managehome => true,
    shell      => '/bin/false',
  }

  file { '/etc/tomcat7/server.xml':
    content => "<Server port=\"8005\" shutdown=\"SHUTDOWN\">\n  <Connector port=\"8080\"/>\n</Server>\n",
    require => Package['tomcat7'],
  }
  file { '/etc/tomcat7/context.xml':
    content => "<Context>\n  <Resource name=\"jdbc/AppDB\" type=\"javax.sql.DataSource\"/>\n</Context>\n",
    require => Package['tomcat7'],
  }
  file { '/srv/tomcat/app.properties':
    content => "hibernate.dialect=org.hibernate.dialect.MySQLDialect\n",
    require => User['tomcat'],
  }

  service { 'tomcat7':
    ensure    => running,
    subscribe => [File['/etc/tomcat7/server.xml'], File['/etc/tomcat7/context.xml']],
    require   => [User['tomcat'], File['/srv/tomcat/app.properties']],
  }
}

include jpa
