package benchmarks

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// Result is the outcome of checking one benchmark manifest.
type Result struct {
	Name          string
	Deterministic bool
	Expected      bool // the manually-verified verdict
	TimedOut      bool
	Err           error
	Stats         core.Stats
	Elapsed       time.Duration
}

// Run checks every benchmark of the suite (All()) under opts, fanning the
// manifests across up to workers goroutines; workers <= 1 runs
// sequentially, workers <= 0 means one per benchmark. Results come back in
// suite order regardless of completion order. Each check is independent —
// its own System, encoder and solver — and all share the process-wide
// semantic-commutativity cache, so overlapping resources across manifests
// are solved once.
func Run(opts core.Options, workers int) []Result {
	suite := All()
	results := make([]Result, len(suite))
	if workers <= 0 || workers > len(suite) {
		workers = len(suite)
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, b := range suite {
		i, b := i, b
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			results[i] = runOne(b, opts)
		}()
	}
	wg.Wait()
	return results
}

func runOne(b Benchmark, opts core.Options) Result {
	r := Result{Name: b.Name, Expected: b.Deterministic}
	start := time.Now()
	sys, err := core.Load(b.Source, opts)
	if err != nil {
		r.Err = err
		r.Elapsed = time.Since(start)
		return r
	}
	res, err := sys.CheckDeterminism()
	r.Elapsed = time.Since(start)
	switch {
	case errors.Is(err, core.ErrTimeout):
		r.TimedOut = true
	case err != nil:
		r.Err = err
	default:
		r.Deterministic = res.Deterministic
		r.Stats = res.Stats
	}
	return r
}
