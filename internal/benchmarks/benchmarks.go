// Package benchmarks embeds the third-party benchmark suite of section 6:
// thirteen Puppet configurations of the same names, sizes and bug classes
// as the GitHub/Puppet Forge manifests the paper evaluates — six with
// determinism bugs — plus the fixed variants the authors verified
// deterministic and idempotent (see DESIGN.md for the substitution
// rationale).
package benchmarks

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed manifests/*.pp
var manifestFS embed.FS

// Benchmark is one manifest of the suite.
type Benchmark struct {
	// Name as reported in figure 11 (e.g. "ntp-nondet").
	Name string
	// Source is the Puppet manifest text.
	Source string
	// Deterministic is the manually-verified expected verdict.
	Deterministic bool
	// FixedName names the repaired variant for the non-deterministic
	// benchmarks; empty otherwise.
	FixedName string
}

// All returns the thirteen benchmarks in the order of figure 11.
func All() []Benchmark {
	names := []string{
		"amavis", "bind", "clamav", "dns-nondet", "hosting", "irc-nondet",
		"jpa", "logstash-nondet", "monit", "nginx", "ntp-nondet",
		"rsyslog-nondet", "xinetd-nondet",
	}
	out := make([]Benchmark, 0, len(names))
	for _, n := range names {
		b, err := Get(n)
		if err != nil {
			panic(err) // embedded files are fixed at build time
		}
		out = append(out, b)
	}
	return out
}

// Fixed returns the six repaired variants.
func Fixed() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.FixedName == "" {
			continue
		}
		f, err := Get(b.FixedName)
		if err != nil {
			panic(err)
		}
		out = append(out, f)
	}
	return out
}

// Verified returns the seven deterministic originals plus the six fixed
// variants — the thirteen configurations figure 12's idempotence run uses.
func Verified() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Deterministic {
			out = append(out, b)
		}
	}
	out = append(out, Fixed()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get loads one benchmark by name.
func Get(name string) (Benchmark, error) {
	data, err := manifestFS.ReadFile("manifests/" + name + ".pp")
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmarks: unknown benchmark %q", name)
	}
	b := Benchmark{
		Name:          name,
		Source:        string(data),
		Deterministic: !strings.HasSuffix(name, "-nondet"),
	}
	if !b.Deterministic {
		b.FixedName = strings.TrimSuffix(name, "-nondet") + "-fixed"
	}
	return b, nil
}

// Names returns every embedded manifest name (originals and fixed).
func Names() []string {
	entries, err := manifestFS.ReadDir("manifests")
	if err != nil {
		panic(err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".pp"))
	}
	sort.Strings(out)
	return out
}
