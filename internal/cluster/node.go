package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qcache"
)

// RoutedHeader marks a request forwarded by a peer. Receivers serve routed
// requests locally and never forward them again, so routing is single-hop
// by construction even when two nodes briefly disagree about ring
// membership.
const RoutedHeader = "X-Rehearsald-Routed"

// RemoteTierName is the name the ring-backed verdict tier registers under
// in the qcache tier stack.
const RemoteTierName = "remote"

const (
	// deadPeerThreshold consecutive transport failures mark a peer dead.
	deadPeerThreshold = 3
	// deadPeerCooldown is how long a dead peer is skipped before being
	// probed again. While skipped, every lookup that would have gone to it
	// is a miss — never an error.
	deadPeerCooldown = 5 * time.Second
	// peerTimeout bounds every peer call. Verdicts are one boolean; a peer
	// that cannot answer in this window is slower than computing locally.
	peerTimeout = 2 * time.Second
)

// peerHealth tracks one peer's transport failures.
type peerHealth struct {
	mu          sync.Mutex
	consecFails int
	downUntil   time.Time
}

// fail records a transport failure; crossing the threshold starts the
// cooldown.
func (h *peerHealth) fail(now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails++
	if h.consecFails >= deadPeerThreshold {
		h.downUntil = now.Add(deadPeerCooldown)
	}
}

// ok records a successful exchange, reviving the peer.
func (h *peerHealth) ok() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = 0
	h.downUntil = time.Time{}
}

// available reports whether the peer should be tried now.
func (h *peerHealth) available(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return now.After(h.downUntil)
}

// Node is one rehearsald process's view of the cluster: its own advertised
// URL, the membership ring, per-peer health, and the HTTP client used for
// the peer verdict protocol and job forwarding. The zero value is not
// ready; use NewNode.
type Node struct {
	self   string
	client *http.Client

	mu   sync.Mutex // serializes membership changes
	ring atomic.Pointer[Ring]

	health sync.Map // member URL → *peerHealth

	// Remote-tier counters, in the common TierStats shape.
	hits, misses, puts, errors atomic.Int64
	// deadSkips counts lookups skipped because the owner was in cooldown;
	// a subset of misses, surfaced separately so operators can tell "peer
	// cold" from "peer dead".
	deadSkips atomic.Int64
}

// NormalizeURL canonicalizes a peer URL for ring membership: trims
// whitespace and trailing slashes and defaults the scheme to http. Every
// node must address a given peer by the same string or ring ownership
// would disagree across the fleet.
func NormalizeURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// NewNode builds a cluster node advertising self, with the given initial
// peers (self is always a member; listing it again is harmless).
func NewNode(self string, peers []string) *Node {
	n := &Node{
		self:   NormalizeURL(self),
		client: &http.Client{Timeout: peerTimeout},
	}
	members := []string{n.self}
	for _, p := range peers {
		members = append(members, NormalizeURL(p))
	}
	n.ring.Store(NewRing(members))
	return n
}

// SetHTTPClient replaces the peer HTTP client; tests use it to tighten
// timeouts or inject transports.
func (n *Node) SetHTTPClient(c *http.Client) {
	if c != nil {
		n.client = c
	}
}

// Self returns the node's advertised URL.
func (n *Node) Self() string { return n.self }

// Ring returns the current membership ring snapshot.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Members returns the current member URLs, sorted.
func (n *Node) Members() []string { return n.Ring().Members() }

// AddPeer adds a member to the ring. Returns true if membership changed.
func (n *Node) AddPeer(url string) bool {
	url = NormalizeURL(url)
	if url == "" {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.ring.Load()
	next := old.WithMember(url)
	if next == old {
		return false
	}
	n.ring.Store(next)
	return true
}

// RemovePeer removes a member from the ring; the node's own URL cannot be
// removed. Returns true if membership changed.
func (n *Node) RemovePeer(url string) bool {
	url = NormalizeURL(url)
	if url == "" || url == n.self {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.ring.Load()
	next := old.WithoutMember(url)
	if next == old {
		return false
	}
	n.ring.Store(next)
	return true
}

// OwnerOf returns the ring owner for a route ID and whether it is this
// node. An empty or single-node ring always owns locally.
func (n *Node) OwnerOf(routeID string) (owner string, isSelf bool) {
	owner = n.Ring().Owner(routeID)
	return owner, owner == "" || owner == n.self
}

// healthOf returns (creating if needed) the health record for a peer.
func (n *Node) healthOf(member string) *peerHealth {
	if h, ok := n.health.Load(member); ok {
		return h.(*peerHealth)
	}
	h, _ := n.health.LoadOrStore(member, &peerHealth{})
	return h.(*peerHealth)
}

// Available reports whether a peer is currently worth contacting (not in
// dead-peer cooldown).
func (n *Node) Available(member string) bool {
	return n.healthOf(member).available(time.Now())
}

// DeadPeers lists members currently in cooldown.
func (n *Node) DeadPeers() []string {
	now := time.Now()
	var dead []string
	for _, m := range n.Members() {
		if m == n.self {
			continue
		}
		if !n.healthOf(m).available(now) {
			dead = append(dead, m)
		}
	}
	return dead
}

// PeerRequest issues one request of the peer protocol: the routed-loop
// header is set, the peer's health record absorbs the outcome, and a
// transport failure returns an error for the caller to degrade on. The
// caller owns the response body.
func (n *Node) PeerRequest(ctx context.Context, method, member, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, member+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(RoutedHeader, "1")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.healthOf(member).fail(time.Now())
		return nil, err
	}
	if resp.StatusCode >= 500 {
		// A 5xx is the peer's problem, not ours; count it against health so
		// a crashlooping node ages out, but hand the response back.
		n.healthOf(member).fail(time.Now())
	} else {
		n.healthOf(member).ok()
	}
	return resp, nil
}

// cacheVerdict is the peer verdict wire document.
type cacheVerdict struct {
	Val bool `json:"val"`
}

// verdictTier adapts the ring to qcache.Tier: Get asks the key's ring
// owner for its locally-held verdict, Put replicates a computed verdict to
// the owner. Both degrade every failure to a miss/no-op per the tier
// contract.
type verdictTier struct{ node *Node }

// Tier returns the node's ring-backed verdict tier, for attaching behind
// the disk tier in a qcache stack.
func (n *Node) Tier() qcache.Tier { return &verdictTier{node: n} }

func (t *verdictTier) Name() string          { return RemoteTierName }
func (t *verdictTier) Source() qcache.Source { return qcache.SrcRemote }

func (t *verdictTier) Get(key qcache.Key) (bool, bool) {
	n := t.node
	owner, isSelf := n.OwnerOf(key.RouteID())
	if isSelf {
		// This node owns the key; its memory/disk tiers were already
		// consulted ahead of this one, so there is nothing new to ask.
		n.misses.Add(1)
		return false, false
	}
	if !n.Available(owner) {
		n.deadSkips.Add(1)
		n.misses.Add(1)
		return false, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
	defer cancel()
	resp, err := n.PeerRequest(ctx, http.MethodGet, owner, "/v1/cache/"+key.Encode(), nil)
	if err != nil {
		n.errors.Add(1)
		n.misses.Add(1)
		return false, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var v cacheVerdict
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<10)).Decode(&v); err != nil {
			n.errors.Add(1)
			n.misses.Add(1)
			return false, false
		}
		n.hits.Add(1)
		return v.Val, true
	case http.StatusNotFound:
		n.misses.Add(1)
		return false, false
	default:
		n.errors.Add(1)
		n.misses.Add(1)
		return false, false
	}
}

func (t *verdictTier) Put(key qcache.Key, val bool) {
	n := t.node
	owner, isSelf := n.OwnerOf(key.RouteID())
	if isSelf || !n.Available(owner) {
		return
	}
	body, err := json.Marshal(cacheVerdict{Val: val})
	if err != nil {
		return
	}
	n.puts.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
	defer cancel()
	resp, err := n.PeerRequest(ctx, http.MethodPut, owner, "/v1/cache/"+key.Encode(), body)
	if err != nil {
		n.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		n.errors.Add(1)
	}
}

func (t *verdictTier) Stats() qcache.TierStats { return t.node.TierStats() }

// TierStats snapshots the remote tier's counters.
func (n *Node) TierStats() qcache.TierStats {
	return qcache.TierStats{
		Hits:   n.hits.Load(),
		Misses: n.misses.Load(),
		Puts:   n.puts.Load(),
		Errors: n.errors.Load(),
	}
}

// DeadSkips returns how many lookups were skipped because the owner was in
// dead-peer cooldown.
func (n *Node) DeadSkips() int64 { return n.deadSkips.Load() }

// RingInfo is the /v1/ring wire document.
type RingInfo struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	Dead    []string `json:"dead,omitempty"`
}

// Info snapshots the node's membership view.
func (n *Node) Info() RingInfo {
	return RingInfo{Self: n.self, Members: n.Members(), Dead: n.DeadPeers()}
}

// String describes the node for logs.
func (n *Node) String() string {
	return fmt.Sprintf("cluster.Node{self=%s members=%d}", n.self, len(n.Members()))
}
