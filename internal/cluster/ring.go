// Package cluster shards rehearsald's content-addressed verdict space
// across a fleet of nodes. Every semantic verdict is keyed by a structural
// digest (qcache.Key.RouteID), so a verdict computed on one machine is
// valid on any other; the cluster exploits that by placing each key on a
// consistent-hash ring over the member nodes. A node consults its memory
// and disk tiers first, then asks the key's ring owner before ever running
// the solver, and whole jobs are routed to the owner of their request
// digest so identical submissions land where caches are hot.
//
// The failure model is inherited from the qcache tier contract: peers are
// accelerators, never correctness dependencies. A slow or dead peer
// degrades to a cache miss — the local node computes the verdict itself —
// and membership changes only move ownership of the minimal slice of the
// key space (consistent hashing), so churn changes hit rates, never
// verdicts.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringReplicas is the number of virtual nodes per member. 64 points per
// member keeps the largest/smallest ownership share within a small factor
// of even for the fleet sizes rehearsald targets (single digits to low
// tens of nodes) while membership updates stay cheap to rebuild.
const ringReplicas = 64

// ringPoint is one virtual node: a position on the hash circle owned by a
// member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over member URLs. Membership
// changes build a new Ring (copy-on-write), so lookups never lock: readers
// hold a snapshot, writers swap the pointer.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

// hashPoint maps a label to its position on the circle: the first eight
// bytes of its sha256. The label space is tiny compared to the digest
// space, so cryptographic hashing is about uniformity, not security.
func hashPoint(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given member URLs. Duplicates are
// collapsed; an empty member list yields an empty ring whose Owner always
// returns "".
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*ringReplicas),
		members: uniq,
	}
	for _, m := range uniq {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hashPoint(m + "#" + strconv.Itoa(i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Members returns the ring's member URLs, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Owner returns the member owning routeID: the first virtual node at or
// after the key's position on the circle, wrapping at the top. An empty
// ring owns nothing and returns "".
func (r *Ring) Owner(routeID string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashPoint(routeID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// WithMember returns a ring with member added (or r itself if already
// present).
func (r *Ring) WithMember(member string) *Ring {
	if member == "" || r.Has(member) {
		return r
	}
	return NewRing(append(append([]string(nil), r.members...), member))
}

// WithoutMember returns a ring with member removed (or r itself if
// absent).
func (r *Ring) WithoutMember(member string) *Ring {
	if !r.Has(member) {
		return r
	}
	keep := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			keep = append(keep, m)
		}
	}
	return NewRing(keep)
}
