package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("route-%d", i)
	}
	return out
}

func TestRingOwnerDeterministic(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(members)
	r2 := NewRing([]string{members[2], members[0], members[1], members[0]}) // order + dup insensitive
	if r1.Len() != 3 || r2.Len() != 3 {
		t.Fatalf("len = %d, %d", r1.Len(), r2.Len())
	}
	for _, k := range keys(200) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs across equivalent rings", k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(members)
	counts := map[string]int{}
	const n = 4000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	// With 64 vnodes per member, shares should be within a factor of ~2 of
	// even. The bound is deliberately loose: the test pins "no member is
	// starved or hogging", not a particular hash layout.
	for _, m := range members {
		got := counts[m]
		if got < n/len(members)/2 || got > n*2/len(members) {
			t.Errorf("member %s owns %d of %d keys (expected near %d)", m, got, n, n/len(members))
		}
	}
}

func TestRingMinimalRebalancing(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	full := NewRing(members)
	without := full.WithoutMember("http://b:1")
	moved := 0
	for _, k := range keys(2000) {
		before := full.Owner(k)
		after := without.Owner(k)
		if before != "http://b:1" {
			// Consistent hashing's whole point: removing b must not move
			// keys between a and c.
			if after != before {
				t.Fatalf("key %q moved %s -> %s though its owner stayed", k, before, after)
			}
		} else {
			moved++
			if after == "http://b:1" {
				t.Fatalf("key %q still owned by removed member", k)
			}
		}
	}
	if moved == 0 {
		t.Fatal("b owned no keys; distribution test should have caught this")
	}
	// Re-adding b restores exactly the original ownership.
	back := without.WithMember("http://b:1")
	for _, k := range keys(2000) {
		if back.Owner(k) != full.Owner(k) {
			t.Fatalf("re-adding member did not restore ownership of %q", k)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil)
	if empty.Owner("anything") != "" {
		t.Error("empty ring must own nothing")
	}
	one := NewRing([]string{"http://solo:1"})
	for _, k := range keys(50) {
		if one.Owner(k) != "http://solo:1" {
			t.Fatal("single-member ring must own everything")
		}
	}
	if r := one.WithMember("http://solo:1"); r != one {
		t.Error("adding an existing member must return the same ring")
	}
	if r := one.WithoutMember("http://ghost:1"); r != one {
		t.Error("removing an absent member must return the same ring")
	}
	if !one.Has("http://solo:1") || one.Has("http://ghost:1") {
		t.Error("Has is wrong")
	}
}
