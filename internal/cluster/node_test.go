package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/fs"
	"repro/internal/qcache"
)

// fakePeer serves the verdict wire protocol from an in-memory map,
// recording that routed requests carry the loop-guard header.
type fakePeer struct {
	mu       sync.Mutex
	verdicts map[string]bool
	unrouted int
}

func (p *fakePeer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if r.Header.Get(RoutedHeader) == "" {
			p.unrouted++
		}
		key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		switch r.Method {
		case http.MethodGet:
			if v, ok := p.verdicts[key]; ok {
				json.NewEncoder(w).Encode(cacheVerdict{Val: v})
				return
			}
			http.Error(w, "miss", http.StatusNotFound)
		case http.MethodPut:
			var v cacheVerdict
			if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			p.verdicts[key] = v.Val
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
}

// peerOwnedKey finds a key whose ring owner is the given member, so tests
// can force a remote lookup deterministically.
func peerOwnedKey(t *testing.T, n *Node, owner string) qcache.Key {
	t.Helper()
	for i := 0; i < 10000; i++ {
		a := fs.DigestExpr(fs.Creat{Path: fs.ParsePath(fmt.Sprintf("/o%d", i)), Content: "x"})
		b := fs.DigestExpr(fs.Id{})
		k := qcache.TestKey(a, b, 1)
		if got, _ := n.OwnerOf(k.RouteID()); got == owner {
			return k
		}
	}
	t.Fatal("no key owned by peer in 10000 tries")
	return qcache.Key{}
}

func TestVerdictTierRoundTrip(t *testing.T) {
	peer := &fakePeer{verdicts: make(map[string]bool)}
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()

	n := NewNode("http://self.invalid", []string{srv.URL})
	tier := n.Tier()
	if tier.Name() != RemoteTierName || tier.Source() != qcache.SrcRemote {
		t.Fatalf("tier identity: %s/%v", tier.Name(), tier.Source())
	}
	key := peerOwnedKey(t, n, NormalizeURL(srv.URL))

	if _, ok := tier.Get(key); ok {
		t.Fatal("empty peer hit")
	}
	tier.Put(key, true)
	if v, ok := peer.verdicts[key.Encode()]; !ok || !v {
		t.Fatal("put did not reach the peer")
	}
	v, ok := tier.Get(key)
	if !ok || !v {
		t.Fatalf("get after put: v=%v ok=%v", v, ok)
	}
	st := tier.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if peer.unrouted != 0 {
		t.Errorf("%d peer requests missing the routed header", peer.unrouted)
	}
}

func TestVerdictTierSelfOwnedIsMiss(t *testing.T) {
	// Single-member ring: every key is self-owned; the tier must never
	// issue a request (there is no one to ask) and must report a miss.
	n := NewNode("http://self.invalid", nil)
	tier := n.Tier()
	key := qcache.TestKey(
		fs.DigestExpr(fs.Id{}),
		fs.DigestExpr(fs.Mkdir{Path: fs.ParsePath("/d")}), 1)
	if _, ok := tier.Get(key); ok {
		t.Fatal("self-owned key hit remotely")
	}
	tier.Put(key, true) // no-op, must not panic or count a put
	st := tier.Stats()
	if st.Misses != 1 || st.Puts != 0 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeadPeerDegradesToMiss(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close() // nothing listens: every request is a transport error

	n := NewNode("http://self.invalid", []string{dead})
	tier := n.Tier()
	key := peerOwnedKey(t, n, NormalizeURL(dead))

	// Every attempt is a miss, never a panic or error surfaced to the
	// caller; after the threshold the peer enters cooldown and is skipped.
	for i := 0; i < deadPeerThreshold+2; i++ {
		if _, ok := tier.Get(key); ok {
			t.Fatal("dead peer produced a hit")
		}
	}
	if n.Available(NormalizeURL(dead)) {
		t.Fatal("peer should be in cooldown after repeated failures")
	}
	if n.DeadSkips() == 0 {
		t.Error("cooldown lookups should count as dead skips")
	}
	if got := n.DeadPeers(); len(got) != 1 {
		t.Errorf("dead peers = %v", got)
	}
	st := tier.Stats()
	if st.Errors < deadPeerThreshold {
		t.Errorf("stats = %+v", st)
	}
	// A dead peer also absorbs puts silently.
	tier.Put(key, true)
}

func TestMembershipChanges(t *testing.T) {
	n := NewNode("http://a:1", []string{"http://b:1"})
	if len(n.Members()) != 2 {
		t.Fatalf("members = %v", n.Members())
	}
	if !n.AddPeer("http://c:1/") || n.AddPeer("http://c:1") {
		t.Fatal("add peer idempotence broken")
	}
	if !n.RemovePeer("http://b:1") || n.RemovePeer("http://b:1") {
		t.Fatal("remove peer idempotence broken")
	}
	if n.RemovePeer("http://a:1") {
		t.Fatal("a node must not remove itself from its own ring")
	}
	got := n.Members()
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://c:1" {
		t.Fatalf("members = %v", got)
	}
	info := n.Info()
	if info.Self != "http://a:1" || len(info.Members) != 2 {
		t.Fatalf("info = %+v", info)
	}
}

func TestNormalizeURL(t *testing.T) {
	cases := map[string]string{
		"http://a:1/":     "http://a:1",
		"  http://a:1  ":  "http://a:1",
		"a:1":             "http://a:1",
		"https://b:2":     "https://b:2",
		"":                "",
		"localhost:8080/": "http://localhost:8080",
	}
	for in, want := range cases {
		if got := NormalizeURL(in); got != want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCacheWithRemoteTier wires a real qcache in front of the ring tier:
// a verdict computed once is served to a second node from the ring without
// recomputing — the cluster-wide warm path.
func TestCacheWithRemoteTier(t *testing.T) {
	// Peer node holds the verdict space behind a real cache.
	peerCache := qcache.New()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key, err := qcache.DecodeKey(strings.TrimPrefix(r.URL.Path, "/v1/cache/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			if v, ok := peerCache.LookupLocal(key); ok {
				json.NewEncoder(w).Encode(cacheVerdict{Val: v})
				return
			}
			http.Error(w, "miss", http.StatusNotFound)
		case http.MethodPut:
			var v cacheVerdict
			if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			peerCache.Seed(key, v.Val)
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer srv.Close()

	n := NewNode("http://self.invalid", []string{srv.URL})
	local := qcache.New()
	local.AttachTier(n.Tier())
	key := peerOwnedKey(t, n, NormalizeURL(srv.URL))

	// First compute runs locally and replicates to the ring owner.
	computes := 0
	v, src, err := local.Do(key, func() (bool, error) { computes++; return true, nil })
	if err != nil || !v || src != qcache.SrcComputed {
		t.Fatalf("first: v=%v src=%v err=%v", v, src, err)
	}
	if v, ok := peerCache.Lookup(key); !ok || !v {
		t.Fatal("verdict not replicated to ring owner")
	}

	// A cold restart of this node finds the verdict on the ring.
	cold := qcache.New()
	cold.AttachTier(n.Tier())
	v, src, err = cold.Do(key, func() (bool, error) { computes++; return false, nil })
	if err != nil || !v || src != qcache.SrcRemote {
		t.Fatalf("cold: v=%v src=%v err=%v", v, src, err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
	if st := cold.StatsSnapshot(); st.RemoteHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}
