// Package commute implements the fast syntactic commutativity check of
// section 4.3 (figure 9b): an abstract interpretation mapping each path to
// one of ⊥ (untouched), R (read), D (idempotent directory creation) or W
// (written), plus a record of directories whose child-set is observed
// (emptydir? and rm observe children that may not appear in the program
// text).
//
// The D value is the paper's key insight: packages routinely create shared
// directories like /usr/bin with the guarded idiom
//
//	if (¬dir?(p)) mkdir(p)
//
// which a conventional read/write-set check would flag as conflicting
// (false sharing), forcing the determinacy checker to explore factorially
// many orders. Two D effects on the same path commute.
package commute

import (
	"sync"

	"repro/internal/fs"
)

// Effect is the abstract value of a path.
type Effect uint8

// The abstract lattice: Bot ⊏ Read, EnsureDir ⊏ Write.
const (
	Bot       Effect = iota // not touched
	Read                    // observed only
	EnsureDir               // idempotent directory creation (D)
	Write                   // written (or mixed read/ensure/write)
)

func (e Effect) String() string {
	switch e {
	case Bot:
		return "⊥"
	case Read:
		return "R"
	case EnsureDir:
		return "D"
	default:
		return "W"
	}
}

// lub is the least upper bound in the ⊥ ⊏ R,D ⊏ W lattice.
func lub(a, b Effect) Effect {
	if a == b {
		return a
	}
	if a == Bot {
		return b
	}
	if b == Bot {
		return a
	}
	return Write // R ⊔ D = W, and anything with W is W
}

// Summary is the abstract effect of an expression. A Summary is immutable
// after Analyze returns, so any number of goroutines may query it
// concurrently — the parallel determinacy engine's pool workers call
// Commute on shared summaries without synchronization.
type Summary struct {
	paths map[fs.Path]Effect
	// childObs holds directories whose set of children the expression
	// observes: emptydir?(d) and rm(d) succeed or fail depending on
	// children of d, including children the program never names.
	childObs fs.PathSet
}

// Effect returns the abstract value of p.
func (s *Summary) Effect(p fs.Path) Effect { return s.paths[p] }

// Paths returns the set of paths with a non-⊥ effect.
func (s *Summary) Paths() fs.PathSet {
	out := make(fs.PathSet, len(s.paths))
	for p, e := range s.paths {
		if e != Bot {
			out.Add(p)
		}
	}
	return out
}

// ObservesChildrenOf reports whether the expression's behavior depends on
// the presence of children of d.
func (s *Summary) ObservesChildrenOf(d fs.Path) bool { return s.childObs.Has(d) }

// ChildObserved returns the set of directories whose child-sets are
// observed.
func (s *Summary) ChildObserved() fs.PathSet { return s.childObs.Clone() }

// Touches reports whether the expression reads, writes or ensures p, or
// observes the child-set of p's parent (which observes p's presence).
func (s *Summary) Touches(p fs.Path) bool {
	if s.paths[p] != Bot {
		return true
	}
	return s.childObs.Has(p.Parent())
}

// Summaries of hash-consed expressions are memoized process-wide by node
// identity: re-analyzing an interned model (re-checks of the same manifest,
// the exact-configuration fallback, fleets sharing resource models) is a
// map lookup. Safe because an interned node is immutable and a Summary is
// immutable after Analyze returns. Bounded by clearing on overflow.
var (
	analyzeMu     sync.Mutex
	analyzeMemo   = make(map[*fs.HExpr]*Summary)
	analyzeHits   int64
	analyzeMisses int64
)

const analyzeMemoCap = 1 << 16

// AnalyzeMemoStats returns the cumulative hit/miss counters of the
// interned-summary memo (hits = Analyze calls answered without
// re-traversal).
func AnalyzeMemoStats() (hits, misses int64) {
	analyzeMu.Lock()
	defer analyzeMu.Unlock()
	return analyzeHits, analyzeMisses
}

// Analyze computes the abstract effect summary of e ([e]C ⊥ in figure 9b).
// Interned expressions are summarized once per canonical node.
func Analyze(e fs.Expr) *Summary {
	h, ok := e.(*fs.HExpr)
	if !ok {
		return analyze(e)
	}
	analyzeMu.Lock()
	if s, ok := analyzeMemo[h]; ok {
		analyzeHits++
		analyzeMu.Unlock()
		return s
	}
	analyzeMu.Unlock()
	s := analyze(e)
	analyzeMu.Lock()
	if len(analyzeMemo) >= analyzeMemoCap {
		analyzeMemo = make(map[*fs.HExpr]*Summary)
	}
	analyzeMemo[h] = s
	analyzeMisses++
	analyzeMu.Unlock()
	return s
}

func analyze(e fs.Expr) *Summary {
	a := &analyzer{
		sum:  &Summary{paths: make(map[fs.Path]Effect), childObs: make(fs.PathSet)},
		defD: make(fs.PathSet),
	}
	a.expr(e)
	return a.sum
}

// analyzer threads the accumulated effect summary together with the set of
// paths that are *definitely* ensured to be directories on every control
// path so far. Only definitely-ensured parents may enable the D effect on
// their children: a D that holds on just one branch of a conditional must
// not license child directory creation after the join (the figure-9b rule
// that trees are created root-first, made join-aware).
type analyzer struct {
	sum  *Summary
	defD fs.PathSet
}

func (a *analyzer) read(p fs.Path) {
	if p.IsRoot() {
		return
	}
	// A read of a path this expression has definitely ensured to be a
	// directory observes the ensured state, not the initial one, so it
	// does not constrain commutativity. This keeps the package idiom
	// (ensure /usr/bin, then creat files inside it) at effect D.
	if a.defD.Has(p) {
		return
	}
	a.sum.paths[p] = lub(a.sum.paths[p], Read)
}

func (a *analyzer) write(p fs.Path) {
	if p.IsRoot() {
		return
	}
	a.sum.paths[p] = lub(a.sum.paths[p], Write)
	delete(a.defD, p)
}

func (a *analyzer) ensureDir(p fs.Path) {
	parent := p.Parent()
	parentOK := parent.IsRoot() || a.defD.Has(parent)
	cur := a.sum.paths[p]
	if parentOK && (cur == Bot || cur == EnsureDir) {
		a.sum.paths[p] = EnsureDir
		a.defD.Add(p)
		return
	}
	// Degraded case: the inner mkdir still observes the parent.
	a.read(p.Parent())
	a.write(p)
}

func (a *analyzer) pred(pr fs.Pred) {
	switch pr := fs.UnwrapPred(pr).(type) {
	case fs.Not:
		a.pred(pr.P)
	case fs.And:
		a.pred(pr.L)
		a.pred(pr.R)
	case fs.Or:
		a.pred(pr.L)
		a.pred(pr.R)
	case fs.IsFile:
		a.read(pr.Path)
	case fs.IsDir:
		a.read(pr.Path)
	case fs.IsNone:
		a.read(pr.Path)
	case fs.IsEmptyDir:
		a.read(pr.Path)
		a.sum.childObs.Add(pr.Path)
	}
}

func (a *analyzer) expr(e fs.Expr) {
	// Recognize the idempotent directory-creation idioms first.
	if p, ok := GuardedMkdirPath(e); ok {
		a.ensureDir(p)
		return
	}
	switch e := fs.Unwrap(e).(type) {
	case fs.Id, fs.Err:
		// no effect
	case fs.Mkdir:
		a.read(e.Path.Parent())
		a.write(e.Path)
	case fs.Creat:
		a.read(e.Path.Parent())
		a.write(e.Path)
	case fs.Rm:
		a.write(e.Path)
		a.sum.childObs.Add(e.Path)
	case fs.Cp:
		a.read(e.Src)
		a.read(e.Dst.Parent())
		a.write(e.Dst)
	case fs.Seq:
		a.expr(e.E1)
		a.expr(e.E2)
	case fs.If:
		a.pred(e.A)
		// Effects accumulate as an upper bound of the branch join; the
		// definitely-ensured set becomes the intersection of the branches.
		thenDefD := a.defD.Clone()
		elseDefD := a.defD
		a.defD = thenDefD
		a.expr(e.Then)
		thenDefD = a.defD
		a.defD = elseDefD
		a.expr(e.Else)
		joined := make(fs.PathSet)
		for p := range thenDefD {
			if a.defD.Has(p) {
				joined.Add(p)
			}
		}
		a.defD = joined
	default:
		panic("commute: unknown expression")
	}
}

// GuardedMkdirPath recognizes the guarded directory-creation idioms of
// section 4.3:
//
//	if (¬dir?(p)) mkdir(p) else id
//	if (dir?(p)) id else mkdir(p)
//	if (none?(p)) mkdir(p) else if (file?(p)) err else id
func GuardedMkdirPath(e fs.Expr) (fs.Path, bool) {
	iff, ok := fs.Unwrap(e).(fs.If)
	if !ok {
		return "", false
	}
	isId := func(x fs.Expr) bool { _, ok := fs.Unwrap(x).(fs.Id); return ok }
	isErr := func(x fs.Expr) bool { _, ok := fs.Unwrap(x).(fs.Err); return ok }
	mkdirOf := func(x fs.Expr) (fs.Path, bool) {
		m, ok := fs.Unwrap(x).(fs.Mkdir)
		if !ok {
			return "", false
		}
		return m.Path, true
	}

	// if (¬dir?(p)) mkdir(p) else id
	if n, ok := fs.UnwrapPred(iff.A).(fs.Not); ok {
		if d, ok := fs.UnwrapPred(n.P).(fs.IsDir); ok && isId(iff.Else) {
			if p, ok := mkdirOf(iff.Then); ok && p == d.Path {
				return p, true
			}
		}
	}
	// if (dir?(p)) id else mkdir(p)
	if d, ok := fs.UnwrapPred(iff.A).(fs.IsDir); ok && isId(iff.Then) {
		if p, ok := mkdirOf(iff.Else); ok && p == d.Path {
			return p, true
		}
	}
	// if (none?(p)) mkdir(p) else if (file?(p)) err else id
	if nn, ok := fs.UnwrapPred(iff.A).(fs.IsNone); ok {
		if p, ok := mkdirOf(iff.Then); ok && p == nn.Path {
			if inner, ok := fs.Unwrap(iff.Else).(fs.If); ok {
				if f, ok := fs.UnwrapPred(inner.A).(fs.IsFile); ok && f.Path == p &&
					isErr(inner.Then) && isId(inner.Else) {
					return p, true
				}
			}
		}
	}
	return "", false
}

// Commute conservatively decides e1;e2 ≡ e2;e1 from the two summaries
// (lemma 4). The compatible overlaps on a path are: ⊥ with anything,
// R with R, and D with D. Additionally, an expression that observes the
// child-set of a directory d conflicts with any expression that writes or
// ensures a child of d.
func Commute(a, b *Summary) bool {
	for p, ea := range a.paths {
		if ea == Bot {
			continue
		}
		eb := b.paths[p]
		if !compatible(ea, eb) {
			return false
		}
	}
	// (The loop above covers all overlaps since compatible is symmetric and
	// paths absent from a.paths have effect ⊥ there.)
	if childObsConflict(a, b) || childObsConflict(b, a) {
		return false
	}
	return true
}

func compatible(x, y Effect) bool {
	switch {
	case x == Bot || y == Bot:
		return true
	case x == Read && y == Read:
		return true
	case x == EnsureDir && y == EnsureDir:
		return true
	default:
		return false
	}
}

// childObsConflict reports whether a observes the child-set of a directory
// in which b creates or removes entries.
func childObsConflict(a, b *Summary) bool {
	for d := range a.childObs {
		for p, eb := range b.paths {
			if eb == Bot || eb == Read {
				continue
			}
			if p.IsChildOf(d) {
				return true
			}
		}
	}
	return false
}
