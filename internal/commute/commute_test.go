package commute

import (
	"math/rand"
	"testing"

	"repro/internal/fs"
	"repro/internal/sym"
)

func TestEffects(t *testing.T) {
	s := Analyze(fs.SeqAll(
		fs.Mkdir{Path: "/w"},
		fs.If{A: fs.IsFile{Path: "/r"}, Then: fs.Id{}, Else: fs.Err{}},
		fs.MkdirIfMissing("/d"),
	))
	if s.Effect("/w") != Write {
		t.Errorf("mkdir effect = %v", s.Effect("/w"))
	}
	if s.Effect("/r") != Read {
		t.Errorf("read effect = %v", s.Effect("/r"))
	}
	if s.Effect("/d") != EnsureDir {
		t.Errorf("guarded mkdir effect = %v", s.Effect("/d"))
	}
	if s.Effect("/untouched") != Bot {
		t.Errorf("untouched effect = %v", s.Effect("/untouched"))
	}
	if !s.Touches("/w") || s.Touches("/untouched") {
		t.Error("Touches wrong")
	}
}

func TestEffectString(t *testing.T) {
	for e, want := range map[Effect]string{Bot: "⊥", Read: "R", EnsureDir: "D", Write: "W"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q", e, e.String())
		}
	}
}

func TestGuardedMkdirForms(t *testing.T) {
	forms := []fs.Expr{
		fs.If{A: fs.Not{P: fs.IsDir{Path: "/d"}}, Then: fs.Mkdir{Path: "/d"}, Else: fs.Id{}},
		fs.If{A: fs.IsDir{Path: "/d"}, Then: fs.Id{}, Else: fs.Mkdir{Path: "/d"}},
		fs.If{A: fs.IsNone{Path: "/d"}, Then: fs.Mkdir{Path: "/d"},
			Else: fs.If{A: fs.IsFile{Path: "/d"}, Then: fs.Err{}, Else: fs.Id{}}},
	}
	for i, f := range forms {
		if got := Analyze(f).Effect("/d"); got != EnsureDir {
			t.Errorf("form %d: effect = %v, want D", i, got)
		}
	}
	// A bare mkdir is not an ensure.
	if got := Analyze(fs.Mkdir{Path: "/d"}).Effect("/d"); got != Write {
		t.Errorf("bare mkdir effect = %v", got)
	}
	// Mismatched paths in guard and body are not an ensure.
	e := fs.If{A: fs.Not{P: fs.IsDir{Path: "/x"}}, Then: fs.Mkdir{Path: "/d"}, Else: fs.Id{}}
	if got := Analyze(e).Effect("/d"); got != Write {
		t.Errorf("mismatched guard effect = %v", got)
	}
}

// ensureTree builds the package idiom: guarded mkdir of every ancestor then
// the directory itself, root-first.
func ensureTree(p fs.Path) fs.Expr {
	var parts []fs.Expr
	for _, q := range p.Ancestors() {
		parts = append(parts, fs.MkdirIfMissing(q))
	}
	parts = append(parts, fs.MkdirIfMissing(p))
	return fs.SeqAll(parts...)
}

func TestSharedDirectoriesCommute(t *testing.T) {
	// The motivating case: two packages creating files under a shared
	// directory tree commute even though their write-sets overlap on /usr.
	pkg1 := fs.SeqAll(ensureTree("/usr/bin"), fs.Creat{Path: "/usr/bin/gcc", Content: "gcc"})
	pkg2 := fs.SeqAll(ensureTree("/usr/bin"), fs.Creat{Path: "/usr/bin/ocaml", Content: "ocaml"})
	s1, s2 := Analyze(pkg1), Analyze(pkg2)
	if s1.Effect("/usr") != EnsureDir || s1.Effect("/usr/bin") != EnsureDir {
		t.Fatalf("tree not recognized as D: /usr=%v /usr/bin=%v",
			s1.Effect("/usr"), s1.Effect("/usr/bin"))
	}
	if !Commute(s1, s2) {
		t.Fatal("packages with shared directories must commute")
	}
	// Sanity: they really do commute.
	eq, _, err := sym.Equiv(
		fs.Seq{E1: pkg1, E2: pkg2}, fs.Seq{E1: pkg2, E2: pkg1}, sym.Options{})
	if err != nil || !eq {
		t.Fatalf("semantic check failed: eq=%v err=%v", eq, err)
	}
}

func TestConflicts(t *testing.T) {
	w := func(p fs.Path, c string) fs.Expr { return fs.Creat{Path: p, Content: c} }
	cases := []struct {
		name   string
		e1, e2 fs.Expr
		want   bool
	}{
		{"write-write same path", w("/f", "a"), w("/f", "b"), false},
		{"write-read", w("/f", "a"), fs.If{A: fs.IsFile{Path: "/f"}, Then: fs.Id{}, Else: fs.Err{}}, false},
		{"read-read", fs.If{A: fs.IsFile{Path: "/f"}, Then: fs.Id{}, Else: fs.Err{}},
			fs.If{A: fs.IsNone{Path: "/f"}, Then: fs.Id{}, Else: fs.Err{}}, true},
		{"disjoint writes", w("/f", "a"), w("/g", "b"), true},
		{"ensure vs write", fs.MkdirIfMissing("/d"), fs.Mkdir{Path: "/d"}, false},
		{"ensure vs read", fs.MkdirIfMissing("/d"), fs.If{A: fs.IsDir{Path: "/d"}, Then: fs.Id{}, Else: fs.Err{}}, false},
		{"rm vs write inside", fs.Rm{Path: "/d"}, w("/d/f", "x"), false},
		{"emptydir vs write inside", fs.If{A: fs.IsEmptyDir{Path: "/d"}, Then: fs.Id{}, Else: fs.Err{}}, w("/d/f", "x"), false},
		{"emptydir vs sibling write", fs.If{A: fs.IsEmptyDir{Path: "/d"}, Then: fs.Id{}, Else: fs.Err{}}, w("/e/f", "x"), true},
	}
	for _, c := range cases {
		got := Commute(Analyze(c.e1), Analyze(c.e2))
		if got != c.want {
			t.Errorf("%s: Commute = %v, want %v", c.name, got, c.want)
		}
		// Commute must be symmetric.
		if rev := Commute(Analyze(c.e2), Analyze(c.e1)); rev != got {
			t.Errorf("%s: asymmetric result", c.name)
		}
	}
}

// The join-soundness regression: a D established on only one branch of a
// conditional must not license child directory creation after the join.
func TestConditionalEnsureDoesNotEnableChild(t *testing.T) {
	e := fs.SeqAll(
		fs.If{A: fs.IsFile{Path: "/flag"}, Then: fs.MkdirIfMissing("/a"), Else: fs.Id{}},
		fs.MkdirIfMissing("/a/b"),
	)
	s := Analyze(e)
	if got := s.Effect("/a/b"); got != Write {
		t.Errorf("child after conditional parent: effect = %v, want W", got)
	}
}

func TestSummaryAccessors(t *testing.T) {
	s := Analyze(fs.SeqAll(
		fs.Rm{Path: "/d"},
		fs.Creat{Path: "/f", Content: "x"},
		fs.If{A: fs.IsEmptyDir{Path: "/e"}, Then: fs.Id{}, Else: fs.Err{}},
	))
	paths := s.Paths()
	for _, want := range []fs.Path{"/d", "/f", "/e"} {
		if !paths.Has(want) {
			t.Errorf("Paths missing %s: %v", want, paths.Sorted())
		}
	}
	if !s.ObservesChildrenOf("/d") || !s.ObservesChildrenOf("/e") {
		t.Error("rm/emptydir child observation missing")
	}
	if s.ObservesChildrenOf("/f") {
		t.Error("creat does not observe children")
	}
	obs := s.ChildObserved()
	if len(obs) != 2 {
		t.Errorf("ChildObserved = %v", obs.Sorted())
	}
	// ChildObserved returns a copy.
	obs.Add("/zzz")
	if s.ObservesChildrenOf("/zzz") {
		t.Error("ChildObserved aliases internal state")
	}
	// Touching via the parent's child-set: /d/x is "touched" because the
	// expression observes /d's children.
	if !s.Touches("/d/x") {
		t.Error("child of observed dir should count as touched")
	}
}

// genBlock produces random expressions biased toward the idioms the
// analysis cares about (guarded mkdirs, package-style trees, reads).
func genBlock(r *rand.Rand) fs.Expr {
	paths := []fs.Path{"/a", "/a/b", "/a/b/f", "/c", "/c/f", "/d"}
	contents := []string{"x", "y"}
	p := func() fs.Path { return paths[r.Intn(len(paths))] }
	var parts []fs.Expr
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		switch r.Intn(7) {
		case 0:
			parts = append(parts, ensureTree(p()))
		case 1:
			parts = append(parts, fs.MkdirIfMissing(p()))
		case 2:
			parts = append(parts, fs.Creat{Path: p(), Content: contents[r.Intn(2)]})
		case 3:
			parts = append(parts, fs.If{A: fs.IsFile{Path: p()}, Then: fs.Id{}, Else: fs.Err{}})
		case 4:
			parts = append(parts, fs.Rm{Path: p()})
		case 5:
			parts = append(parts, fs.If{A: fs.IsEmptyDir{Path: p()}, Then: fs.Id{}, Else: fs.Err{}})
		case 6:
			parts = append(parts, fs.Cp{Src: p(), Dst: p()})
		}
	}
	return fs.SeqAll(parts...)
}

// TestCommuteSound is the lemma-4 property test: whenever the syntactic
// check says two expressions commute, the symbolic engine must agree that
// e1;e2 ≡ e2;e1.
func TestCommuteSound(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	commuting := 0
	for trial := 0; trial < 250; trial++ {
		e1, e2 := genBlock(r), genBlock(r)
		if !Commute(Analyze(e1), Analyze(e2)) {
			continue
		}
		commuting++
		eq, cex, err := sym.Equiv(
			fs.Seq{E1: e1, E2: e2}, fs.Seq{E1: e2, E2: e1}, sym.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: claimed commuting but inequivalent\ne1=%s\ne2=%s\n%s",
				trial, fs.String(e1), fs.String(e2), cex)
		}
	}
	if commuting == 0 {
		t.Error("no commuting pairs sampled; property vacuous")
	}
	t.Logf("verified %d commuting pairs", commuting)
}
