package commute

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fs"
)

// deepSharedTrees builds n roots that all embed one deep shared prefix (a
// guarded-mkdir chain, the shape package models take), returning the plain
// trees. Interning them canonicalizes the prefix to a single node.
func deepSharedTrees(n, depth int) []fs.Expr {
	prefix := fs.Expr(fs.Id{})
	p := ""
	for i := 0; i < depth; i++ {
		p += fmt.Sprintf("/d%d", i)
		prefix = fs.Seq{E1: prefix, E2: fs.MkdirIfMissing(fs.ParsePath(p))}
	}
	roots := make([]fs.Expr, n)
	for i := range roots {
		leaf := fs.Creat{Path: fs.ParsePath(fmt.Sprintf("%s/f%d", p, i)), Content: "x"}
		roots[i] = fs.Seq{E1: prefix, E2: leaf}
	}
	return roots
}

// TestAnalyzeMemoDeepSharing: analyzing interned roots over a deeply shared
// prefix hits the summary memo on re-analysis, and every memoized summary
// is semantically identical to the uncached plain-tree analysis.
func TestAnalyzeMemoDeepSharing(t *testing.T) {
	roots := deepSharedTrees(6, 40)
	interned := make([]*fs.HExpr, len(roots))
	for i, r := range roots {
		interned[i] = fs.Intern(r)
	}
	// First analysis of each root fills the memo ...
	_, m0 := AnalyzeMemoStats()
	first := make([]*Summary, len(interned))
	for i, h := range interned {
		first[i] = Analyze(h)
	}
	_, m1 := AnalyzeMemoStats()
	if misses := m1 - m0; misses < int64(len(interned)) {
		t.Fatalf("first pass recorded %d memo misses; want >= %d", misses, len(interned))
	}
	// ... and re-analysis is pure memo hits, returning the same summaries.
	h1, _ := AnalyzeMemoStats()
	for i, h := range interned {
		if again := Analyze(h); again != first[i] {
			t.Fatalf("re-analysis of root %d returned a different summary", i)
		}
	}
	h2, m2 := AnalyzeMemoStats()
	if hits := h2 - h1; hits != int64(len(interned)) {
		t.Errorf("re-analysis recorded %d memo hits; want %d", h2-h1, len(interned))
	}
	if m2 != m1 {
		t.Errorf("re-analysis recorded %d new misses; want 0", m2-m1)
	}
	// Memoized summaries match the plain, uncached analysis observationally.
	for i, r := range roots {
		plain := Analyze(r)
		if !reflect.DeepEqual(first[i].Paths(), plain.Paths()) {
			t.Errorf("root %d: memoized path set diverges from plain analysis", i)
		}
		if !reflect.DeepEqual(first[i].ChildObserved(), plain.ChildObserved()) {
			t.Errorf("root %d: memoized child-observation set diverges", i)
		}
		for p := range plain.Paths() {
			if first[i].Effect(p) != plain.Effect(p) {
				t.Errorf("root %d: effect of %s diverges", i, p)
			}
		}
	}
	// Commutativity verdicts agree between memoized and plain summaries.
	for i := range roots {
		for j := range roots {
			want := Commute(Analyze(roots[i]), Analyze(roots[j]))
			if got := Commute(first[i], first[j]); got != want {
				t.Errorf("Commute(%d,%d) = %v on memoized summaries, %v on plain", i, j, got, want)
			}
		}
	}
}
