package prune

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fs"
)

// sharedPrefixRoots mirrors the package-model shape: n roots over one deep
// guarded-mkdir prefix plus a distinct definitive file write each.
func sharedPrefixRoots(n, depth int) []fs.Expr {
	prefix := fs.Expr(fs.Id{})
	p := ""
	for i := 0; i < depth; i++ {
		p += fmt.Sprintf("/s%d", i)
		prefix = fs.Seq{E1: prefix, E2: fs.MkdirIfMissing(fs.ParsePath(p))}
	}
	roots := make([]fs.Expr, n)
	for i := range roots {
		leaf := fs.Creat{Path: fs.ParsePath(fmt.Sprintf("%s/cfg%d", p, i)), Content: "v"}
		roots[i] = fs.Seq{E1: prefix, E2: leaf}
	}
	return roots
}

// TestDefinitiveMemoDeepSharing: definitive-write maps of interned roots
// are memoized per canonical node, re-queries are pure hits, and the cached
// maps equal the uncached plain-tree interpretation. Each caller gets a
// private clone, so mutating a result cannot poison the memo.
func TestDefinitiveMemoDeepSharing(t *testing.T) {
	roots := sharedPrefixRoots(5, 30)
	interned := make([]*fs.HExpr, len(roots))
	for i, r := range roots {
		interned[i] = fs.Intern(r)
	}
	_, m0 := DefinitiveMemoStats()
	first := make([]map[fs.Path]AbsValue, len(interned))
	for i, h := range interned {
		first[i] = DefinitiveWrites(h)
	}
	_, m1 := DefinitiveMemoStats()
	if misses := m1 - m0; misses != int64(len(interned)) {
		t.Fatalf("first pass recorded %d memo misses; want %d", misses, len(interned))
	}
	h1, _ := DefinitiveMemoStats()
	for i, h := range interned {
		again := DefinitiveWrites(h)
		if !reflect.DeepEqual(again, first[i]) {
			t.Fatalf("re-query of root %d returned a different map", i)
		}
	}
	h2, m2 := DefinitiveMemoStats()
	if hits := h2 - h1; hits != int64(len(interned)) {
		t.Errorf("re-query recorded %d memo hits; want %d", hits, len(interned))
	}
	if m2 != m1 {
		t.Errorf("re-query recorded %d new misses; want 0", m2-m1)
	}
	for i, r := range roots {
		if plain := DefinitiveWrites(r); !reflect.DeepEqual(first[i], plain) {
			t.Errorf("root %d: memoized definitive writes diverge from plain:\nmemo:  %v\nplain: %v",
				i, first[i], plain)
		}
	}
	// Clone isolation: corrupting a returned map must not reach the memo.
	victim := DefinitiveWrites(interned[0])
	for p := range victim {
		victim[p] = AbsValue{Kind: AbsTop}
	}
	if fresh := DefinitiveWrites(interned[0]); !reflect.DeepEqual(fresh, first[0]) {
		t.Error("mutating a returned map corrupted the memoized copy")
	}
}

// TestPruneOnInternedTrees: the pruning partial evaluator accepts interned
// input and produces results equivalent to pruning the plain tree.
func TestPruneOnInternedTrees(t *testing.T) {
	roots := sharedPrefixRoots(3, 10)
	for i, r := range roots {
		h := fs.Intern(r)
		target := fs.ParsePath(fmt.Sprintf("/s0/s1/s2/s3/s4/s5/s6/s7/s8/s9/cfg%d", i))
		plainOut, plainOK := Prune(target, r)
		internOut, internOK := Prune(target, h)
		if plainOK != internOK {
			t.Fatalf("root %d: prune ok=%v on plain, %v on interned", i, plainOK, internOK)
		}
		if !plainOK {
			continue
		}
		if fs.DigestExpr(plainOut) != fs.DigestExpr(internOut) {
			t.Errorf("root %d: pruned results differ:\nplain:    %s\ninterned: %s",
				i, fs.String(plainOut), fs.String(internOut))
		}
	}
}
