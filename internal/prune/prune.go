// Package prune implements the resource-shrinking machinery of section 4.4:
// a definitive-write abstract interpretation (figure 10b) that detects
// paths an expression always leaves in the same state, and a pruning
// partial evaluator (figure 10a) that removes writes to a path while
// residualizing the reads and error checks that depended on them.
//
// Pruning a path from the single resource that touches it can shrink a
// several-hundred-file package model down to the handful of paths other
// resources interact with, which is what makes the determinacy check of
// section 4 scale (figure 11).
package prune

import (
	"sync"

	"repro/internal/commute"
	"repro/internal/fs"
)

// AbsKind classifies the definitive effect of an expression on a path.
type AbsKind uint8

// The abstract lattice of figure 10b: Bot ⊏ Dir, File, Dne ⊏ Top.
const (
	AbsBot  AbsKind = iota // not written
	AbsDir                 // ensured to be a directory on all success paths
	AbsFile                // ensured to be a file on all success paths
	AbsDne                 // ensured to not exist on all success paths
	AbsTop                 // indeterminate (input- or branch-dependent)
)

func (k AbsKind) String() string {
	switch k {
	case AbsBot:
		return "⊥"
	case AbsDir:
		return "dir"
	case AbsFile:
		return "file"
	case AbsDne:
		return "dne"
	default:
		return "⊤"
	}
}

// AbsValue is the abstract final state of a path.
type AbsValue struct {
	Kind         AbsKind
	Content      string // meaningful when Kind == AbsFile and ContentKnown
	ContentKnown bool
}

// Definitive reports whether the value pins the path's final state
// independent of the input (a definitive write in the paper's sense).
func (v AbsValue) Definitive() bool {
	switch v.Kind {
	case AbsDir, AbsDne:
		return true
	case AbsFile:
		return v.ContentKnown
	default:
		return false
	}
}

func joinAbs(a, b AbsValue) AbsValue {
	if a == b {
		return a
	}
	if a.Kind == AbsFile && b.Kind == AbsFile {
		return AbsValue{Kind: AbsFile} // content unknown
	}
	return AbsValue{Kind: AbsTop}
}

// Definitive-write maps of hash-consed expressions are memoized
// process-wide by node identity (same scheme as commute's summary memo);
// callers receive a private clone, so the cached map is never aliased.
var (
	defMu     sync.Mutex
	defMemo   = make(map[*fs.HExpr]map[fs.Path]AbsValue)
	defHits   int64
	defMisses int64
)

const definitiveMemoCap = 1 << 16

// DefinitiveMemoStats returns the cumulative hit/miss counters of the
// interned definitive-writes memo.
func DefinitiveMemoStats() (hits, misses int64) {
	defMu.Lock()
	defer defMu.Unlock()
	return defHits, defMisses
}

// DefinitiveWrites computes ĴeK⊥ (figure 10b): for every path the
// expression writes, the abstract value characterizing its state on every
// successful run. Paths the expression never writes are absent (⊥).
// Control-flow branches that definitely error are excluded, since their
// final states are unobservable. Interned expressions are interpreted once
// per canonical node.
func DefinitiveWrites(e fs.Expr) map[fs.Path]AbsValue {
	h, ok := e.(*fs.HExpr)
	if !ok {
		state := make(map[fs.Path]AbsValue)
		definitive(e, state)
		return state
	}
	defMu.Lock()
	if m, ok := defMemo[h]; ok {
		defHits++
		defMu.Unlock()
		return cloneAbs(m)
	}
	defMu.Unlock()
	state := make(map[fs.Path]AbsValue)
	definitive(e, state)
	defMu.Lock()
	if len(defMemo) >= definitiveMemoCap {
		defMemo = make(map[*fs.HExpr]map[fs.Path]AbsValue)
	}
	defMemo[h] = state
	defMisses++
	defMu.Unlock()
	return cloneAbs(state)
}

// definitive interprets e over state, returning whether e definitely
// errors on every run.
func definitive(e fs.Expr, state map[fs.Path]AbsValue) bool {
	// The guarded directory-creation idioms ensure the path is a directory
	// on every success path even though only one branch writes; recognize
	// them so package models (trees of guarded mkdirs) stay definitive.
	if p, ok := commute.GuardedMkdirPath(e); ok {
		state[p] = AbsValue{Kind: AbsDir}
		return false
	}
	switch e := fs.Unwrap(e).(type) {
	case fs.Id:
		return false
	case fs.Err:
		return true
	case fs.Mkdir:
		state[e.Path] = AbsValue{Kind: AbsDir}
		return false
	case fs.Creat:
		state[e.Path] = AbsValue{Kind: AbsFile, Content: e.Content, ContentKnown: true}
		return false
	case fs.Rm:
		state[e.Path] = AbsValue{Kind: AbsDne}
		return false
	case fs.Cp:
		state[e.Dst] = AbsValue{Kind: AbsFile} // content flows from input
		return false
	case fs.Seq:
		if definitive(e.E1, state) {
			return true
		}
		return definitive(e.E2, state)
	case fs.If:
		thenState := cloneAbs(state)
		elseState := cloneAbs(state)
		thenErrs := definitive(e.Then, thenState)
		elseErrs := definitive(e.Else, elseState)
		switch {
		case thenErrs && elseErrs:
			return true
		case thenErrs:
			replaceAbs(state, elseState)
		case elseErrs:
			replaceAbs(state, thenState)
		default:
			merged := make(map[fs.Path]AbsValue)
			for p := range union(thenState, elseState) {
				merged[p] = joinAbs(lookupAbs(thenState, p), lookupAbs(elseState, p))
			}
			replaceAbs(state, merged)
		}
		return false
	default:
		panic("prune: unknown expression")
	}
}

func cloneAbs(m map[fs.Path]AbsValue) map[fs.Path]AbsValue {
	out := make(map[fs.Path]AbsValue, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func replaceAbs(dst, src map[fs.Path]AbsValue) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func lookupAbs(m map[fs.Path]AbsValue, p fs.Path) AbsValue {
	if v, ok := m[p]; ok {
		return v
	}
	return AbsValue{Kind: AbsBot}
}

func union(a, b map[fs.Path]AbsValue) map[fs.Path]struct{} {
	out := make(map[fs.Path]struct{}, len(a)+len(b))
	for p := range a {
		out[p] = struct{}{}
	}
	for p := range b {
		out[p] = struct{}{}
	}
	return out
}
