package prune

import (
	"repro/internal/fs"
)

// trackKind is the pruner's knowledge of the pruned path's state at a
// program point: what the *original* program would have made it by now.
type trackKind uint8

const (
	trInitial  trackKind = iota // no writes dropped yet: runtime state is accurate
	trNone                      // dropped writes ensure the path does not exist
	trDir                       // dropped writes ensure the path is a directory
	trFile                      // dropped writes ensure the path is a file
	trDiverged                  // branches disagree; any further touch aborts
)

type tracked struct {
	kind         trackKind
	content      string // for trFile with contentKnown
	contentKnown bool
}

// pruner rewrites an expression to drop writes to a single path. abort is
// set when the rewrite cannot be performed soundly; the caller then skips
// pruning this path.
type pruner struct {
	path  fs.Path
	abort bool
}

// Prune removes the writes to p from e, residualizing the reads and error
// checks that observed them (figure 10a). It reports ok=false when the
// rewrite would be unsound (e.g. the expression later observes structure
// the dropped write created, such as emptiness of a directory it made).
//
// On success, for every input state σ: e and the result have the same
// error behavior and identical final states on every path except p, and
// the result never writes p.
func Prune(p fs.Path, e fs.Expr) (fs.Expr, bool) {
	pr := &pruner{path: p}
	out, _ := pr.expr(e, tracked{kind: trInitial})
	if pr.abort {
		return nil, false
	}
	return out, true
}

// boolOrUnknown is a three-valued truth for partial predicate evaluation.
type boolOrUnknown uint8

const (
	tvUnknown boolOrUnknown = iota
	tvTrue
	tvFalse
)

// pred partially evaluates a predicate with respect to the pruned path,
// returning a residual predicate and, when fully determined, its value.
func (pr *pruner) pred(a fs.Pred, t tracked) (fs.Pred, boolOrUnknown) {
	switch a := fs.UnwrapPred(a).(type) {
	case fs.True:
		return a, tvTrue
	case fs.False:
		return a, tvFalse
	case fs.Not:
		inner, v := pr.pred(a.P, t)
		switch v {
		case tvTrue:
			return fs.False{}, tvFalse
		case tvFalse:
			return fs.True{}, tvTrue
		}
		return fs.Not{P: inner}, tvUnknown
	case fs.And:
		l, lv := pr.pred(a.L, t)
		r, rv := pr.pred(a.R, t)
		switch {
		case lv == tvFalse || rv == tvFalse:
			return fs.False{}, tvFalse
		case lv == tvTrue && rv == tvTrue:
			return fs.True{}, tvTrue
		case lv == tvTrue:
			return r, tvUnknown
		case rv == tvTrue:
			return l, tvUnknown
		}
		return fs.And{L: l, R: r}, tvUnknown
	case fs.Or:
		l, lv := pr.pred(a.L, t)
		r, rv := pr.pred(a.R, t)
		switch {
		case lv == tvTrue || rv == tvTrue:
			return fs.True{}, tvTrue
		case lv == tvFalse && rv == tvFalse:
			return fs.False{}, tvFalse
		case lv == tvFalse:
			return r, tvUnknown
		case rv == tvFalse:
			return l, tvUnknown
		}
		return fs.Or{L: l, R: r}, tvUnknown
	case fs.IsFile:
		if a.Path != pr.path {
			return a, tvUnknown
		}
		switch pr.require(t).kind {
		case trInitial:
			return a, tvUnknown
		case trFile:
			return fs.True{}, tvTrue
		case trNone, trDir:
			return fs.False{}, tvFalse
		}
		return a, tvUnknown // aborted
	case fs.IsDir:
		if a.Path != pr.path {
			return a, tvUnknown
		}
		switch pr.require(t).kind {
		case trInitial:
			return a, tvUnknown
		case trDir:
			return fs.True{}, tvTrue
		case trNone, trFile:
			return fs.False{}, tvFalse
		}
		return a, tvUnknown
	case fs.IsNone:
		if a.Path != pr.path {
			return a, tvUnknown
		}
		switch pr.require(t).kind {
		case trInitial:
			return a, tvUnknown
		case trNone:
			return fs.True{}, tvTrue
		case trDir, trFile:
			return fs.False{}, tvFalse
		}
		return a, tvUnknown
	case fs.IsEmptyDir:
		// emptydir?(q) observes q itself and the presence of q's children.
		if a.Path == pr.path {
			switch pr.require(t).kind {
			case trInitial:
				return a, tvUnknown
			case trNone, trFile:
				return fs.False{}, tvFalse
			default:
				// A dropped write made it a directory; its emptiness now
				// depends on state the residual cannot express.
				pr.abort = true
				return a, tvUnknown
			}
		}
		if pr.path.IsChildOf(a.Path) && t.kind != trInitial {
			// The predicate observes the pruned path's presence.
			pr.abort = true
		}
		return a, tvUnknown
	default:
		panic("prune: unknown predicate")
	}
}

// require aborts on diverged tracking and returns t.
func (pr *pruner) require(t tracked) tracked {
	if t.kind == trDiverged {
		pr.abort = true
	}
	return t
}

// preGuard wraps the residual precondition of a dropped write: the
// original operation errored unless cond held.
func preGuard(cond fs.Pred) fs.Expr {
	if _, ok := fs.UnwrapPred(cond).(fs.True); ok {
		return fs.Id{}
	}
	return fs.If{A: cond, Then: fs.Id{}, Else: fs.Err{}}
}

// expr rewrites e under tracking state t, returning the residual
// expression and the tracking state afterwards.
func (pr *pruner) expr(e fs.Expr, t tracked) (fs.Expr, tracked) {
	if pr.abort {
		return fs.Id{}, t
	}
	switch e := fs.Unwrap(e).(type) {
	case fs.Id, fs.Err:
		return e, t
	case fs.Mkdir:
		if e.Path == pr.path {
			switch pr.require(t).kind {
			case trInitial:
				return preGuard(fs.And{
					L: fs.IsDir{Path: e.Path.Parent()},
					R: fs.IsNone{Path: e.Path},
				}), tracked{kind: trDir}
			case trNone:
				return preGuard(fs.IsDir{Path: e.Path.Parent()}), tracked{kind: trDir}
			case trDir, trFile:
				return fs.Err{}, t
			}
			return fs.Id{}, t // aborted
		}
		if e.Path.Parent() == pr.path {
			// The operation's precondition reads the pruned path.
			switch pr.require(t).kind {
			case trInitial:
				return e, t
			case trDir:
				// Parent check is known true, but mkdir itself would still
				// re-check it at runtime against the unwritten state.
				pr.abort = true
				return fs.Id{}, t
			default:
				return fs.Err{}, t
			}
		}
		return e, t
	case fs.Creat:
		if e.Path == pr.path {
			switch pr.require(t).kind {
			case trInitial:
				return preGuard(fs.And{
					L: fs.IsDir{Path: e.Path.Parent()},
					R: fs.IsNone{Path: e.Path},
				}), tracked{kind: trFile, content: e.Content, contentKnown: true}
			case trNone:
				return preGuard(fs.IsDir{Path: e.Path.Parent()}),
					tracked{kind: trFile, content: e.Content, contentKnown: true}
			case trDir, trFile:
				return fs.Err{}, t
			}
			return fs.Id{}, t
		}
		if e.Path.Parent() == pr.path {
			switch pr.require(t).kind {
			case trInitial:
				return e, t
			case trDir:
				pr.abort = true
				return fs.Id{}, t
			default:
				return fs.Err{}, t
			}
		}
		return e, t
	case fs.Rm:
		if e.Path == pr.path {
			switch pr.require(t).kind {
			case trInitial:
				return preGuard(fs.Or{
					L: fs.IsFile{Path: e.Path},
					R: fs.IsEmptyDir{Path: e.Path},
				}), tracked{kind: trNone}
			case trFile:
				return fs.Id{}, tracked{kind: trNone}
			case trDir:
				// Emptiness depends on children the residual cannot see
				// relative to the dropped mkdir.
				pr.abort = true
				return fs.Id{}, t
			case trNone:
				return fs.Err{}, t
			}
			return fs.Id{}, t
		}
		if pr.path.IsChildOf(e.Path) && t.kind != trInitial {
			// rm(parent) observes the pruned path's presence.
			pr.abort = true
			return fs.Id{}, t
		}
		return e, t
	case fs.Cp:
		srcIsP := e.Src == pr.path
		dstIsP := e.Dst == pr.path
		switch {
		case srcIsP && dstIsP:
			// cp(p, p) always errors (dst must not exist while src must).
			return fs.Err{}, t
		case dstIsP:
			switch pr.require(t).kind {
			case trInitial:
				return preGuard(fs.AndAll(
					fs.IsFile{Path: e.Src},
					fs.IsDir{Path: e.Dst.Parent()},
					fs.IsNone{Path: e.Dst},
				)), tracked{kind: trFile} // content flows from src: unknown
			case trNone:
				return preGuard(fs.And{
					L: fs.IsFile{Path: e.Src},
					R: fs.IsDir{Path: e.Dst.Parent()},
				}), tracked{kind: trFile}
			case trDir, trFile:
				return fs.Err{}, t
			}
			return fs.Id{}, t
		case srcIsP:
			switch pr.require(t).kind {
			case trInitial:
				return e, t
			case trFile:
				if t.contentKnown {
					// creat has exactly the remaining preconditions of cp.
					return fs.Creat{Path: e.Dst, Content: t.content}, t
				}
				pr.abort = true
				return fs.Id{}, t
			default:
				return fs.Err{}, t
			}
		}
		if e.Dst.Parent() == pr.path {
			switch pr.require(t).kind {
			case trInitial:
				return e, t
			case trDir:
				pr.abort = true
				return fs.Id{}, t
			default:
				return fs.Err{}, t
			}
		}
		return e, t
	case fs.Seq:
		e1, t1 := pr.expr(e.E1, t)
		e2, t2 := pr.expr(e.E2, t1)
		return fs.SeqAll(e1, e2), t2
	case fs.If:
		cond, cv := pr.pred(e.A, t)
		switch cv {
		case tvTrue:
			return pr.expr(e.Then, t)
		case tvFalse:
			return pr.expr(e.Else, t)
		}
		thenE, thenT := pr.expr(e.Then, t)
		elseE, elseT := pr.expr(e.Else, t)
		return fs.If{A: cond, Then: thenE, Else: elseE}, joinTracked(thenE, thenT, elseE, elseT)
	default:
		panic("prune: unknown expression")
	}
}

// joinTracked merges branch tracking states. Branches that are literally
// err contribute nothing (their final state is unobservable).
func joinTracked(thenE fs.Expr, thenT tracked, elseE fs.Expr, elseT tracked) tracked {
	if _, ok := fs.Unwrap(thenE).(fs.Err); ok {
		return elseT
	}
	if _, ok := fs.Unwrap(elseE).(fs.Err); ok {
		return thenT
	}
	if thenT.kind == elseT.kind {
		out := thenT
		if out.kind == trFile && (!elseT.contentKnown || !thenT.contentKnown || thenT.content != elseT.content) {
			out.contentKnown = false
			out.content = ""
		}
		return out
	}
	return tracked{kind: trDiverged}
}
