package prune

import (
	"math/rand"
	"testing"

	"repro/internal/fs"
	"repro/internal/sym"
)

func TestDefinitiveWritesBasics(t *testing.T) {
	e := fs.SeqAll(
		fs.Mkdir{Path: "/d"},
		fs.Creat{Path: "/d/f", Content: "x"},
		fs.Rm{Path: "/g"},
	)
	w := DefinitiveWrites(e)
	if w["/d"].Kind != AbsDir {
		t.Errorf("/d = %v", w["/d"])
	}
	if v := w["/d/f"]; v.Kind != AbsFile || !v.ContentKnown || v.Content != "x" {
		t.Errorf("/d/f = %v", v)
	}
	if w["/g"].Kind != AbsDne {
		t.Errorf("/g = %v", w["/g"])
	}
	if _, ok := w["/untouched"]; ok {
		t.Error("untouched path present")
	}
	if !w["/d"].Definitive() || !w["/d/f"].Definitive() || !w["/g"].Definitive() {
		t.Error("Definitive() wrong")
	}
}

func TestDefinitiveWritesBranches(t *testing.T) {
	cond := fs.IsFile{Path: "/flag"}
	// Both branches write the same value: definitive.
	e := fs.If{A: cond, Then: fs.Creat{Path: "/f", Content: "x"},
		Else: fs.Creat{Path: "/f", Content: "x"}}
	if v := DefinitiveWrites(e)["/f"]; v.Kind != AbsFile || !v.ContentKnown {
		t.Errorf("same-branch write = %v", v)
	}
	// Different contents: file with unknown content — not definitive.
	e2 := fs.If{A: cond, Then: fs.Creat{Path: "/f", Content: "x"},
		Else: fs.Creat{Path: "/f", Content: "y"}}
	if v := DefinitiveWrites(e2)["/f"]; v.Kind != AbsFile || v.ContentKnown || v.Definitive() {
		t.Errorf("diverging contents = %v", v)
	}
	// Written on one branch only: indeterminate.
	e3 := fs.If{A: cond, Then: fs.Creat{Path: "/f", Content: "x"}, Else: fs.Id{}}
	if v := DefinitiveWrites(e3)["/f"]; v.Kind != AbsTop {
		t.Errorf("one-branch write = %v", v)
	}
	// Error branches are unreachable on success: write remains definitive.
	e4 := fs.If{A: cond, Then: fs.Creat{Path: "/f", Content: "x"}, Else: fs.Err{}}
	if v := DefinitiveWrites(e4)["/f"]; v.Kind != AbsFile || !v.ContentKnown {
		t.Errorf("err-else write = %v", v)
	}
	// The guarded-creation idiom: definitive dir.
	if v := DefinitiveWrites(fs.MkdirIfMissing("/d"))["/d"]; v.Kind != AbsDir {
		t.Errorf("guarded mkdir = %v", v)
	}
}

func TestDefinitiveWritesSequenceOverride(t *testing.T) {
	e := fs.SeqAll(fs.Creat{Path: "/f", Content: "x"}, fs.Rm{Path: "/f"})
	if v := DefinitiveWrites(e)["/f"]; v.Kind != AbsDne {
		t.Errorf("overridden write = %v", v)
	}
	// Definite error makes the suffix unreachable.
	e2 := fs.SeqAll(fs.Err{}, fs.Creat{Path: "/f", Content: "x"})
	if _, ok := DefinitiveWrites(e2)["/f"]; ok {
		t.Error("write after definite error recorded")
	}
	if v := DefinitiveWrites(fs.Cp{Src: "/s", Dst: "/f"})["/f"]; v.Kind != AbsFile || v.ContentKnown {
		t.Errorf("cp dst = %v", v)
	}
}

// The paper's pruning example (section 4.4):
//
//	mkdir(p); if (dir?(p)) id else err ≡ mkdir(p)
//
// and pruning p from both sides preserves the equivalence.
func TestPaperPruneExample(t *testing.T) {
	p := fs.Path("/a/b")
	e1 := fs.Seq{E1: fs.Mkdir{Path: p}, E2: fs.If{A: fs.IsDir{Path: p}, Then: fs.Id{}, Else: fs.Err{}}}
	e2 := fs.Mkdir{Path: p}
	p1, ok1 := Prune(p, e1)
	p2, ok2 := Prune(p, e2)
	if !ok1 || !ok2 {
		t.Fatalf("prune failed: %v %v", ok1, ok2)
	}
	eq, cex, err := sym.Equiv(p1, p2, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("pruned expressions differ:\np1=%s\np2=%s\n%s", fs.String(p1), fs.String(p2), cex)
	}
	// The naive rewrite (dropping mkdir to id without residualizing the
	// read) would be wrong; check the residual still reads p's guard:
	// pruned e1 must error when p's parent is not a directory.
	_, ok := fs.Eval(p1, fs.NewState())
	if ok {
		t.Error("residual lost the parent-directory precondition")
	}
}

func TestPruneRemovesWrites(t *testing.T) {
	p := fs.Path("/pkg/file")
	e := fs.SeqAll(
		fs.MkdirIfMissing("/pkg"),
		fs.Creat{Path: p, Content: "payload"},
	)
	pruned, ok := Prune(p, e)
	if !ok {
		t.Fatal("prune failed")
	}
	in := fs.State{"/pkg": fs.DirContent()}
	out, evalOK := fs.Eval(pruned, in)
	if !evalOK {
		t.Fatalf("pruned program errored: %s", fs.String(pruned))
	}
	if out.Exists(p) {
		t.Errorf("pruned program still writes %s: %s", p, fs.StateString(out))
	}
	// Error behavior must be preserved: original errors when /pkg/file
	// already exists (creat), so must the residual.
	in2 := fs.State{"/pkg": fs.DirContent(), p: fs.FileContent("old")}
	_, origOK := fs.Eval(e, in2)
	_, prunedOK := fs.Eval(pruned, in2)
	if origOK != prunedOK {
		t.Errorf("error behavior diverged: orig=%v pruned=%v", origOK, prunedOK)
	}
}

func TestPruneAbortsOnEmptydirOfWritten(t *testing.T) {
	p := fs.Path("/d")
	e := fs.SeqAll(
		fs.Mkdir{Path: p},
		fs.If{A: fs.IsEmptyDir{Path: p}, Then: fs.Id{}, Else: fs.Err{}},
	)
	if _, ok := Prune(p, e); ok {
		t.Error("pruning should abort: emptiness of a dropped mkdir is unobservable")
	}
}

func TestPruneCpKnownContent(t *testing.T) {
	p := fs.Path("/src")
	e := fs.SeqAll(
		fs.Creat{Path: p, Content: "data"},
		fs.Cp{Src: p, Dst: "/dst"},
	)
	pruned, ok := Prune(p, e)
	if !ok {
		t.Fatal("prune failed")
	}
	out, evalOK := fs.Eval(pruned, fs.NewState())
	if !evalOK {
		t.Fatalf("pruned errored: %s", fs.String(pruned))
	}
	if c, present := out["/dst"]; !present || c != fs.FileContent("data") {
		t.Errorf("cp not folded to creat: %s", fs.StateString(out))
	}
	if out.Exists(p) {
		t.Error("src still written")
	}
}

func TestPruneCpUnknownContentAborts(t *testing.T) {
	p := fs.Path("/mid")
	e := fs.SeqAll(
		fs.Cp{Src: "/orig", Dst: p}, // p's content now input-dependent
		fs.Cp{Src: p, Dst: "/dst"},  // and must be materialized: abort
	)
	if _, ok := Prune(p, e); ok {
		t.Error("pruning should abort on unknown-content copy-through")
	}
}

// equalExcept reports deep equality of two states ignoring path p.
func equalExcept(a, b fs.State, p fs.Path) bool {
	for q, c := range a {
		if q == p {
			continue
		}
		if oc, ok := b[q]; !ok || oc != c {
			return false
		}
	}
	for q := range b {
		if q == p {
			continue
		}
		if _, ok := a[q]; !ok {
			return false
		}
	}
	return true
}

// TestPruneSoundOnRandomPrograms is the property test for the pruning
// transformation: on every input, the pruned program has the same error
// behavior, the same final state away from p, and never writes p.
func TestPruneSoundOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	cfg := fs.DefaultGenConfig()
	prunedCount := 0
	for trial := 0; trial < 400; trial++ {
		e := fs.GenExpr(r, cfg, 4)
		p := cfg.Paths[r.Intn(len(cfg.Paths))]
		pruned, ok := Prune(p, e)
		if !ok {
			continue
		}
		prunedCount++
		for i := 0; i < 120; i++ {
			in := fs.GenState(r, cfg)
			origOut, origOK := fs.Eval(e, in)
			prunedOut, prunedOK := fs.Eval(pruned, in)
			if origOK != prunedOK {
				t.Fatalf("trial %d: error behavior diverged on %s\np=%s\ne=%s\npruned=%s",
					trial, fs.StateString(in), p, fs.String(e), fs.String(pruned))
			}
			if !origOK {
				continue
			}
			if !equalExcept(origOut, prunedOut, p) {
				t.Fatalf("trial %d: states diverge away from %s\nin=%s\ne=%s\npruned=%s\norig=%s\npruned=%s",
					trial, p, fs.StateString(in), fs.String(e), fs.String(pruned),
					fs.StateString(origOut), fs.StateString(prunedOut))
			}
			// The pruned program must leave p exactly as it was.
			ic, iok := in[p]
			oc, ook := prunedOut[p]
			if iok != ook || (iok && ic != oc) {
				t.Fatalf("trial %d: pruned program wrote %s\ne=%s\npruned=%s",
					trial, p, fs.String(e), fs.String(pruned))
			}
		}
	}
	if prunedCount == 0 {
		t.Error("no successful prunes; property vacuous")
	}
	t.Logf("verified %d pruned programs", prunedCount)
}

func TestAbsKindString(t *testing.T) {
	for k, want := range map[AbsKind]string{
		AbsBot: "⊥", AbsDir: "dir", AbsFile: "file", AbsDne: "dne", AbsTop: "⊤",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
