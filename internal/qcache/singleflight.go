package qcache

import "sync"

// Group coalesces concurrent calls with the same key into a single
// execution of the underlying function — the classic singleflight
// pattern, here generic and dependency-free. Unlike Cache, a Group does
// not memoize: once the in-flight call completes and every waiter has its
// result, the key is forgotten. Callers that want memoization layer their
// own table above it (see pkgdb.Client).
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn once per key among concurrent callers. shared reports
// whether this caller received another caller's result instead of running
// fn itself.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
