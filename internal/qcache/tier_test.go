package qcache

import (
	"strings"
	"testing"
)

// mapTier is an in-memory Tier for tests, optionally wired to misbehave.
type mapTier struct {
	name    string
	source  Source
	entries map[Key]bool
	panics  bool // every call panics: the cache must treat it as a miss
	gets    int
	puts    int
}

func newMapTier(name string, source Source) *mapTier {
	return &mapTier{name: name, source: source, entries: make(map[Key]bool)}
}

func (t *mapTier) Name() string   { return t.name }
func (t *mapTier) Source() Source { return t.source }

func (t *mapTier) Get(key Key) (bool, bool) {
	if t.panics {
		panic("tier get crashed")
	}
	t.gets++
	v, ok := t.entries[key]
	return v, ok
}

func (t *mapTier) Put(key Key, val bool) {
	if t.panics {
		panic("tier put crashed")
	}
	t.puts++
	t.entries[key] = val
}

func (t *mapTier) Stats() TierStats {
	return TierStats{Hits: int64(len(t.entries)), Puts: int64(t.puts)}
}

func TestTierWriteThroughAndHit(t *testing.T) {
	c := New()
	tier := newMapTier("disk", SrcDisk)
	c.AttachTier(tier)
	d := digests(2)
	key := PairKey(d[0], d[1], 1)

	if _, src, err := c.Do(key, func() (bool, error) { return true, nil }); src != SrcComputed || err != nil {
		t.Fatalf("first call: src=%v err=%v", src, err)
	}
	if v, ok := tier.entries[key]; !ok || !v {
		t.Fatal("computed verdict not written through the tier")
	}

	// A fresh cache with the same tier answers from it, not from compute.
	c2 := New()
	c2.AttachTier(tier)
	v, src, err := c2.Do(key, func() (bool, error) { t.Fatal("compute ran"); return false, nil })
	if !v || src != SrcDisk || err != nil {
		t.Fatalf("tier hit: v=%v src=%v err=%v", v, src, err)
	}
	if st := c2.StatsSnapshot(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTierPanicIsAMiss(t *testing.T) {
	c := New()
	bad := newMapTier("disk", SrcDisk)
	bad.panics = true
	c.AttachTier(bad)
	d := digests(2)
	key := PairKey(d[0], d[1], 1)

	v, src, err := c.Do(key, func() (bool, error) { return true, nil })
	if !v || src != SrcComputed || err != nil {
		t.Fatalf("crashing tier must degrade to a miss: v=%v src=%v err=%v", v, src, err)
	}
	// Second call is a memory hit; the tier never blocks correctness.
	if _, src, _ := c.Do(key, nil); src != SrcMemory {
		t.Fatalf("src = %v", src)
	}
}

func TestTierPromotionOnFarHit(t *testing.T) {
	c := New()
	near := newMapTier("disk", SrcDisk)
	far := newMapTier("remote", SrcRemote)
	c.AttachTier(near)
	c.AttachTier(far)
	d := digests(2)
	key := PairKey(d[0], d[1], 9)
	far.entries[key] = true

	v, src, err := c.Do(key, func() (bool, error) { t.Fatal("compute ran"); return false, nil })
	if !v || src != SrcRemote || err != nil {
		t.Fatalf("far hit: v=%v src=%v err=%v", v, src, err)
	}
	if st := c.StatsSnapshot(); st.RemoteHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The far-tier verdict is promoted into the nearer tier…
	if v, ok := near.entries[key]; !ok || !v {
		t.Error("remote hit not promoted to the disk tier")
	}
	// …but not re-put into the tier that answered.
	if far.puts != 0 {
		t.Errorf("far tier re-put %d times", far.puts)
	}
}

func TestAttachTierReplacesByName(t *testing.T) {
	c := New()
	a := newMapTier("disk", SrcDisk)
	b := newMapTier("remote", SrcRemote)
	c.AttachTier(a)
	c.AttachTier(b)
	a2 := newMapTier("disk", SrcDisk)
	c.AttachTier(a2)
	tiers := c.tierSnapshot()
	if len(tiers) != 2 || tiers[0] != Tier(a2) || tiers[1] != Tier(b) {
		t.Fatalf("replacement must keep position: %v", tiers)
	}
	c.DetachTier("disk")
	if tiers := c.tierSnapshot(); len(tiers) != 1 || tiers[0] != Tier(b) {
		t.Fatalf("after detach: %v", tiers)
	}
	c.DetachTier("no-such") // no-op
}

func TestSeedSkipsRemoteTiers(t *testing.T) {
	c := New()
	disk := newMapTier("disk", SrcDisk)
	remote := newMapTier("remote", SrcRemote)
	c.AttachTier(disk)
	c.AttachTier(remote)
	d := digests(2)
	key := PairKey(d[0], d[1], 3)

	c.Seed(key, true)
	if v, ok := c.Lookup(key); !ok || !v {
		t.Fatal("seed must populate the memory table")
	}
	if v, ok := disk.entries[key]; !ok || !v {
		t.Fatal("seed must write through local tiers")
	}
	if remote.puts != 0 {
		t.Fatal("seed must never echo into a remote tier")
	}
}

func TestLookupLocalIgnoresRemote(t *testing.T) {
	c := New()
	disk := newMapTier("disk", SrcDisk)
	remote := newMapTier("remote", SrcRemote)
	c.AttachTier(disk)
	c.AttachTier(remote)
	d := digests(3)
	inDisk := PairKey(d[0], d[1], 1)
	inRemote := PairKey(d[0], d[2], 1)
	disk.entries[inDisk] = true
	remote.entries[inRemote] = true

	if v, ok := c.LookupLocal(inDisk); !ok || !v {
		t.Fatal("local lookup must consult local tiers")
	}
	// The disk hit is seeded into memory for the next lookup.
	if v, ok := c.Lookup(inDisk); !ok || !v {
		t.Fatal("local tier hit not seeded into memory")
	}
	if _, ok := c.LookupLocal(inRemote); ok {
		t.Fatal("local lookup must never ask a remote tier")
	}
	if remote.gets != 0 {
		t.Fatalf("remote tier consulted %d times", remote.gets)
	}
}

func TestTierStatsSnapshot(t *testing.T) {
	c := New()
	tier := newMapTier("disk", SrcDisk)
	c.AttachTier(tier)
	d := digests(2)
	tier.entries[PairKey(d[0], d[1], 1)] = true
	st, ok := c.TierStatsSnapshot("disk")
	if !ok || st.Hits != 1 {
		t.Fatalf("snapshot = %+v ok=%v", st, ok)
	}
	if _, ok := c.TierStatsSnapshot("remote"); ok {
		t.Fatal("unknown tier must report !ok")
	}
}

func TestKeyEncodeDecodeRoundTrip(t *testing.T) {
	d := digests(2)
	for _, budget := range []int64{0, 1, 1 << 40} {
		key := PairKey(d[0], d[1], budget)
		enc := key.Encode()
		got, err := DecodeKey(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if got != key {
			t.Fatalf("round trip changed key: %q", enc)
		}
	}
}

func TestDecodeKeyRejectsMalformed(t *testing.T) {
	d := digests(2)
	good := PairKey(d[0], d[1], 5).Encode()
	parts := strings.SplitN(good, ".", 3)
	// Swap the halves: violates order normalization unless equal.
	swapped := parts[1] + "." + parts[0] + "." + parts[2]
	bad := []string{
		"", "x", "a.b", "a.b.c.d",
		"zz." + parts[1] + "." + parts[2],
		parts[0] + ".zz." + parts[2],
		parts[0] + "." + parts[1] + ".notanumber",
		"ab." + parts[1] + "." + parts[2], // short digest
	}
	if parts[0] != parts[1] {
		bad = append(bad, swapped)
	}
	for _, s := range bad {
		if _, err := DecodeKey(s); err == nil {
			t.Errorf("DecodeKey(%q) accepted malformed key", s)
		}
	}
	if _, err := DecodeKey(good); err != nil {
		t.Errorf("DecodeKey(%q): %v", good, err)
	}
}

func TestRouteIDStable(t *testing.T) {
	d := digests(2)
	a := PairKey(d[0], d[1], 7).RouteID()
	b := PairKey(d[1], d[0], 7).RouteID()
	if a != b {
		t.Error("route ID must be order-insensitive")
	}
	if len(a) != 64 {
		t.Errorf("route ID should be hex sha256, got %d chars", len(a))
	}
	if PairKey(d[0], d[1], 8).RouteID() == a {
		t.Error("route ID must separate budgets")
	}
}

func TestFuncTier(t *testing.T) {
	store := map[Key]bool{}
	tier := NewFuncTier("x", SrcDisk,
		func(k Key) (bool, bool) { v, ok := store[k]; return v, ok },
		func(k Key, v bool) { store[k] = v })
	d := digests(2)
	key := PairKey(d[0], d[1], 1)
	if _, ok := tier.Get(key); ok {
		t.Fatal("empty tier hit")
	}
	tier.Put(key, true)
	if v, ok := tier.Get(key); !ok || !v {
		t.Fatal("func tier lost the verdict")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
	ro := NewFuncTier("ro", SrcDisk, nil, nil)
	ro.Put(key, true)
	if _, ok := ro.Get(key); ok {
		t.Fatal("nil-get tier must miss")
	}
}
