package qcache

// The on-disk verdict tier: a directory of content-addressed files, one
// per (expression pair, budget) key, carrying a single boolean verdict.
// Repeated CLI runs and the benchmark suite warm-start from it with zero
// solver calls. The format is deliberately trivial:
//
//	<scheme version line>
//	commutes | conflicts
//	sum:<crc32 of the two lines above>
//
// Writes go through a temp file plus rename, so a reader (or a crashed
// writer) can never observe a torn verdict from this process. The cache
// directory is still subject to the filesystem underneath — crashes
// mid-rename on non-atomic filesystems, bit rot, truncation by full
// disks — so every file carries a checksum over its content, and a file
// that fails it (truncated, garbled, zero-length) is treated as a miss,
// moved to a quarantine/ subdirectory for post-mortem, and counted as
// CorruptEntries; the verdict is simply re-derived. A wrong verdict
// served from a flipped bit would silently change analysis results, which
// is why damage detection is structural, not best-effort.
//
// Every file embeds DiskSchemeVersion, which names the file format, the
// digest scheme, the symbolic encoding and the solver revision the
// verdict depends on: a verdict is only as durable as the semantics that
// produced it, so bumping any of those layers must orphan the whole
// store. A file whose header mismatches (but is undamaged) is deleted on
// first touch and counted as Invalidated.
//
// The tier is LRU-bounded by a byte budget: the in-memory index is seeded
// from a directory scan at open (oldest modification time first) and
// every hit refreshes the file's mtime best-effort, so recency survives
// process restarts.

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskSchemeVersion identifies every layer a stored verdict depends on:
// the cache file format (qcache/2 adds the trailing checksum line), the
// expression digest scheme (fs.DigestExpr), the symbolic encoding
// (internal/sym, figure 7) and the solver backend. Changing any of them
// invalidates every stored verdict — readers delete files whose header
// does not match byte-for-byte.
const DiskSchemeVersion = "qcache/2 digest=merkle-sha256/1 encode=fig7-enum/1 solver=cdcl-incremental/2 sum=crc32/1"

// quarantineDir is the subdirectory (under the store's directory) that
// damaged verdict files are moved into instead of being served or
// silently deleted: the bytes stay available for diagnosing how the
// store got damaged, while the index treats the entry as a plain miss.
const quarantineDir = "quarantine"

// DefaultDiskBudget bounds the tier at 32 MiB — roughly half a million
// verdict files, far beyond any benchmark suite, while keeping a shared
// cache directory from growing without limit.
const DefaultDiskBudget = 32 << 20

// diskExt is the verdict file extension; foreign files in the directory
// are ignored.
const diskExt = ".qv"

// DiskStats snapshots the tier's counters.
type DiskStats struct {
	Hits           int64 // lookups answered from disk
	Misses         int64 // lookups with no usable file
	Writes         int64 // verdicts stored
	Evictions      int64 // files removed by the byte budget
	Invalidated    int64 // files deleted for a stale scheme version
	CorruptEntries int64 // damaged files quarantined (bad checksum/structure)
	Files          int   // verdict files currently indexed
	Bytes          int64 // bytes currently indexed
}

// diskEntry is one verdict file on the LRU list (front = most recent).
type diskEntry struct {
	name string
	size int64
}

// Disk is the on-disk tier. Safe for concurrent use within a process;
// across processes, atomic renames keep concurrent writers safe and a
// fresh open re-scans the directory.
type Disk struct {
	dir    string
	budget int64

	mu     sync.Mutex
	byName map[string]*list.Element
	lru    *list.List // of *diskEntry
	bytes  int64
	stats  DiskStats
}

// OpenDisk opens (creating if needed) the verdict store in dir, bounded at
// budget bytes (<= 0 means DefaultDiskBudget). Existing verdict files are
// indexed oldest-first so eviction preserves the hottest entries.
func OpenDisk(dir string, budget int64) (*Disk, error) {
	if budget <= 0 {
		budget = DefaultDiskBudget
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Disk{
		dir:    dir,
		budget: budget,
		byName: make(map[string]*list.Element),
		lru:    list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type aged struct {
		name string
		size int64
		mod  time.Time
	}
	var found []aged
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{name: e.Name(), size: info.Size(), mod: info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod.Before(found[j].mod) })
	for _, f := range found {
		d.byName[f.name] = d.lru.PushFront(&diskEntry{name: f.name, size: f.size})
		d.bytes += f.size
	}
	d.evictLocked()
	return d, nil
}

// Dir returns the store's directory.
func (d *Disk) Dir() string { return d.dir }

// diskTierName is the Disk tier's Name in the tier stack.
const diskTierName = "disk"

// The Tier interface: the disk store is one pluggable tier of the verdict
// stack (see tier.go). Lookup/Store remain the native API; Get/Put adapt
// them, and Stats condenses DiskStats into the common tier shape.

// Name implements Tier.
func (d *Disk) Name() string { return diskTierName }

// Source implements Tier: disk hits are reported as SrcDisk.
func (d *Disk) Source() Source { return SrcDisk }

// Get implements Tier.
func (d *Disk) Get(key Key) (val, ok bool) { return d.Lookup(key) }

// Put implements Tier.
func (d *Disk) Put(key Key, val bool) { d.Store(key, val) }

// Stats implements Tier. Damaged and invalidated files count as errors —
// they were swallowed, not surfaced.
func (d *Disk) Stats() TierStats {
	s := d.StatsSnapshot()
	return TierStats{
		Hits:   s.Hits,
		Misses: s.Misses,
		Puts:   s.Writes,
		Errors: s.CorruptEntries + s.Invalidated,
	}
}

// contentAddress hashes a key to its canonical hex sha256 content address
// over the digest pair and budget. The key material is already
// collision-resistant, so the address identifies the query exactly; the
// disk tier files verdicts under it and the cluster ring places keys by
// it.
func (k Key) contentAddress() string {
	h := sha256.New()
	h.Write(k.lo[:])
	h.Write(k.hi[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(k.budget))
	h.Write(b[:])
	return hex.EncodeToString(h.Sum(nil))
}

// fileName is the key's verdict file name in a disk store.
func (k Key) fileName() string { return k.contentAddress() + diskExt }

// Lookup reads the stored verdict for key, if a current-scheme file holds
// one. A hit refreshes the entry's recency (and, best-effort, the file's
// mtime, so recency survives restarts).
func (d *Disk) Lookup(key Key) (val, ok bool) {
	name := key.fileName()
	path := filepath.Join(d.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		d.mu.Lock()
		d.dropLocked(name)
		d.stats.Misses++
		d.mu.Unlock()
		return false, false
	}
	verdict, state := parseVerdictFile(data)
	switch state {
	case fileStale:
		os.Remove(path)
		d.mu.Lock()
		d.dropLocked(name)
		d.stats.Invalidated++
		d.stats.Misses++
		d.mu.Unlock()
		return false, false
	case fileCorrupt:
		d.quarantine(name)
		d.mu.Lock()
		d.dropLocked(name)
		d.stats.CorruptEntries++
		d.stats.Misses++
		d.mu.Unlock()
		return false, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	d.mu.Lock()
	if el, indexed := d.byName[name]; indexed {
		d.lru.MoveToFront(el)
	} else { // written by another process since open
		d.byName[name] = d.lru.PushFront(&diskEntry{name: name, size: int64(len(data))})
		d.bytes += int64(len(data))
		d.evictLocked()
	}
	d.stats.Hits++
	d.mu.Unlock()
	return verdict, true
}

// Store writes the verdict for key atomically (temp file + rename) and
// evicts least-recently-used files beyond the byte budget. Failures are
// swallowed: the disk tier is an accelerator, never a correctness
// dependency.
func (d *Disk) Store(key Key, val bool) {
	name := key.fileName()
	word := "conflicts"
	if val {
		word = "commutes"
	}
	content := DiskSchemeVersion + "\n" + word + "\n" + checksumLine(DiskSchemeVersion, word) + "\n"
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.mu.Lock()
	d.dropLocked(name) // replaced in place: refresh size and recency
	d.byName[name] = d.lru.PushFront(&diskEntry{name: name, size: int64(len(content))})
	d.bytes += int64(len(content))
	d.stats.Writes++
	d.evictLocked()
	d.mu.Unlock()
}

// StatsSnapshot returns the tier's counters plus live size.
func (d *Disk) StatsSnapshot() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Files = d.lru.Len()
	s.Bytes = d.bytes
	return s
}

// dropLocked removes name from the index (not from disk). Callers hold
// d.mu.
func (d *Disk) dropLocked(name string) {
	if el, ok := d.byName[name]; ok {
		d.bytes -= el.Value.(*diskEntry).size
		d.lru.Remove(el)
		delete(d.byName, name)
	}
}

// evictLocked removes least-recently-used files until the byte budget
// holds. Callers hold d.mu.
func (d *Disk) evictLocked() {
	for d.bytes > d.budget && d.lru.Len() > 0 {
		oldest := d.lru.Back()
		e := oldest.Value.(*diskEntry)
		d.lru.Remove(oldest)
		delete(d.byName, e.name)
		d.bytes -= e.size
		os.Remove(filepath.Join(d.dir, e.name))
		d.stats.Evictions++
	}
}

// verdictFileState classifies a read verdict file.
type verdictFileState int

const (
	fileValid   verdictFileState = iota // current scheme, checksum ok
	fileStale                           // undamaged, but written by a different scheme
	fileCorrupt                         // truncated, garbled, or checksum mismatch
)

// parseVerdictFile classifies a verdict file and extracts its verdict.
// Stale means a structurally sound file written under another scheme
// version (including pre-checksum qcache/1 files, which have no sum
// line); anything that fails structure or checksum is corrupt.
func parseVerdictFile(data []byte) (val bool, state verdictFileState) {
	header, rest, found := strings.Cut(string(data), "\n")
	if !found {
		return false, fileCorrupt
	}
	word, tail, _ := strings.Cut(rest, "\n")
	wordOK := word == "commutes" || word == "conflicts"
	if header != DiskSchemeVersion {
		if !strings.HasPrefix(header, "qcache/") || !wordOK {
			return false, fileCorrupt
		}
		// A sum line that does not match its own content means damage,
		// not just age — a bit flip inside the header lands here.
		if t := strings.TrimSuffix(tail, "\n"); t != "" && t != checksumLine(header, word) {
			return false, fileCorrupt
		}
		return false, fileStale
	}
	if !wordOK || strings.TrimSuffix(tail, "\n") != checksumLine(header, word) {
		return false, fileCorrupt
	}
	return word == "commutes", fileValid
}

// checksumLine returns the third line of a verdict file: an IEEE crc32
// over the header and verdict lines, newlines included. Covering the
// header too means a flipped bit anywhere in the file is caught.
func checksumLine(header, word string) string {
	sum := crc32.ChecksumIEEE([]byte(header + "\n" + word + "\n"))
	return fmt.Sprintf("sum:%08x", sum)
}

// quarantine moves a damaged verdict file into the quarantine
// subdirectory instead of deleting it, keeping the bytes available for
// diagnosing how the store got damaged. If the move fails the file is
// removed outright — either way it can never be served again.
func (d *Disk) quarantine(name string) {
	src := filepath.Join(d.dir, name)
	qdir := filepath.Join(d.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(src, filepath.Join(qdir, name)) == nil {
			return
		}
	}
	os.Remove(src)
}

// The process-wide store registry: one Disk per directory, so every check
// pointed at the same -cache-dir shares one index and one byte budget.
var (
	disksMu sync.Mutex
	disks   = make(map[string]*Disk)
)

// OpenDiskShared returns the process-wide store for dir, opening it with
// the default budget on first use.
func OpenDiskShared(dir string) (*Disk, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	disksMu.Lock()
	defer disksMu.Unlock()
	if d, ok := disks[abs]; ok {
		return d, nil
	}
	d, err := OpenDisk(abs, 0)
	if err != nil {
		return nil, err
	}
	disks[abs] = d
	return d, nil
}
