package qcache

// The pluggable tier stack. The Cache's completed-verdict table is the
// always-on first tier; everything behind it — the on-disk store, a
// rehearsald peer ring, anything else content-addressed — plugs in through
// the Tier interface. Tiers are consulted in attachment order on a memory
// miss, before compute runs, and computed verdicts are written through
// every tier.
//
// Tiers are strictly accelerators, never correctness dependencies, so the
// Cache isolates their failures: a Get or Put that panics is recovered and
// treated as a miss (tierGet/tierPut below), and implementations are
// required to swallow their own I/O and transport errors the same way — a
// slow or dead tier degrades the hit rate, it can never fail a query.

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/fs"
)

// TierStats snapshots one tier's effectiveness counters in the common
// shape operators monitor; tier implementations usually keep richer
// internal counters too (see DiskStats).
type TierStats struct {
	Hits   int64 // lookups the tier answered
	Misses int64 // lookups the tier could not answer
	Puts   int64 // verdicts written through
	Errors int64 // swallowed failures (I/O, transport, damaged entries)
}

// Tier is one verdict tier behind the in-memory table. Implementations
// must be safe for concurrent use and must degrade every internal failure
// to a miss — Get and Put have no error returns on purpose.
type Tier interface {
	// Name identifies the tier in stats and metrics ("disk", "remote").
	// Attaching a tier replaces any earlier tier with the same name.
	Name() string
	// Source is the Source a hit on this tier is reported as (SrcDisk for
	// local persistent tiers, SrcRemote for network tiers).
	Source() Source
	// Get returns the stored verdict for key, if the tier holds one.
	Get(key Key) (val, ok bool)
	// Put stores a verdict, best-effort.
	Put(key Key, val bool)
	// Stats snapshots the tier's counters.
	Stats() TierStats
}

// tierGet consults a tier with panic isolation: a crashing tier is a miss.
func tierGet(t Tier, key Key) (val, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			val, ok = false, false
		}
	}()
	return t.Get(key)
}

// tierPut writes through a tier with panic isolation.
func tierPut(t Tier, key Key, val bool) {
	defer func() { _ = recover() }()
	t.Put(key, val)
}

// Encode renders the key for the peer wire protocol: the two digest
// halves and the budget, dot-joined hex — self-describing enough that the
// receiving node can rebuild the exact Key and consult its own tiers.
func (k Key) Encode() string {
	return hex.EncodeToString(k.lo[:]) + "." + hex.EncodeToString(k.hi[:]) + "." +
		strconv.FormatInt(k.budget, 10)
}

// DecodeKey parses a key encoded by Encode.
func DecodeKey(s string) (Key, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return Key{}, fmt.Errorf("qcache: malformed key %q", s)
	}
	var k Key
	lo, err := hex.DecodeString(parts[0])
	if err != nil || len(lo) != len(k.lo) {
		return Key{}, fmt.Errorf("qcache: malformed key digest %q", parts[0])
	}
	hi, err := hex.DecodeString(parts[1])
	if err != nil || len(hi) != len(k.hi) {
		return Key{}, fmt.Errorf("qcache: malformed key digest %q", parts[1])
	}
	budget, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Key{}, fmt.Errorf("qcache: malformed key budget %q", parts[2])
	}
	copy(k.lo[:], lo)
	copy(k.hi[:], hi)
	k.budget = budget
	// Keys are order-normalized at construction; reject wire keys that are
	// not, so every node addresses the pair identically.
	norm := PairKey(k.lo, k.hi, budget)
	if norm != k {
		return Key{}, fmt.Errorf("qcache: key %q not order-normalized", s)
	}
	return k, nil
}

// RouteID returns the key's content address — the same sha256 the disk
// tier files verdicts under — used for consistent-hash ring placement.
// Identical queries route to the same ring owner on every node.
func (k Key) RouteID() string { return k.contentAddress() }

// TestKey builds a key from raw digest material; only tests and the
// cluster wire protocol's own tests need keys without expressions behind
// them.
func TestKey(a, b fs.Digest, budget int64) Key { return PairKey(a, b, budget) }

// funcTier adapts plain functions to the Tier interface; tests and small
// adapters use it.
type funcTier struct {
	name   string
	source Source
	get    func(Key) (bool, bool)
	put    func(Key, bool)

	hits, misses, puts atomic.Int64
}

// NewFuncTier wraps get/put functions as a Tier. A nil put makes the tier
// read-only.
func NewFuncTier(name string, source Source, get func(Key) (bool, bool), put func(Key, bool)) Tier {
	return &funcTier{name: name, source: source, get: get, put: put}
}

func (t *funcTier) Name() string   { return t.name }
func (t *funcTier) Source() Source { return t.source }

func (t *funcTier) Get(key Key) (bool, bool) {
	if t.get == nil {
		t.misses.Add(1)
		return false, false
	}
	v, ok := t.get(key)
	if ok {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return v, ok
}

func (t *funcTier) Put(key Key, val bool) {
	if t.put == nil {
		return
	}
	t.puts.Add(1)
	t.put(key, val)
}

func (t *funcTier) Stats() TierStats {
	return TierStats{Hits: t.hits.Load(), Misses: t.misses.Load(), Puts: t.puts.Load()}
}
