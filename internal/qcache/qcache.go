// Package qcache is a process-wide, content-addressed cache of solver
// query verdicts. The determinacy analysis (internal/core) performs O(n²)
// pairwise semantic-commutativity queries, each a full symbolic
// equivalence check; fleets of manifests share resource models (the same
// package appears in many manifests), so keying the memo table on a
// canonical hash of the two expressions — rather than on resource names
// within one check — lets every check in the process reuse earlier
// verdicts. The cache is concurrency-safe and singleflight-deduplicated:
// when several workers ask the same query at once, exactly one runs the
// solver and the rest wait for its answer.
package qcache

import (
	"sync"

	"repro/internal/fs"
)

// Key identifies one equivalence query: the canonical digests of the two
// expressions (order-normalized, since e1;e2 ≡ e2;e1 is symmetric in the
// pair) plus the solver budget the query runs under. Including the budget
// keeps verdicts comparable: a pair that is inconclusive under a small
// budget must not shadow a conclusive verdict computed under a larger one.
type Key struct {
	lo, hi fs.Digest
	budget int64
}

// PairKey builds the order-normalized key for a commutativity query on
// the expressions behind the two digests.
func PairKey(a, b fs.Digest, budget int64) Key {
	for i := range a {
		if a[i] < b[i] {
			return Key{lo: a, hi: b, budget: budget}
		}
		if a[i] > b[i] {
			return Key{lo: b, hi: a, budget: budget}
		}
	}
	return Key{lo: a, hi: b, budget: budget}
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64 // calls answered from the completed-verdict table
	Misses    int64 // calls that ran the compute function
	Coalesced int64 // calls that waited on another caller's in-flight query
}

// call tracks one in-flight computation.
type call struct {
	done chan struct{}
	val  bool
}

// Cache memoizes boolean query verdicts under singleflight deduplication.
// The zero value is not ready; use New.
type Cache struct {
	mu       sync.Mutex
	done     map[Key]bool
	inflight map[Key]*call
	stats    Stats
}

// New creates an empty cache.
func New() *Cache {
	return &Cache{
		done:     make(map[Key]bool),
		inflight: make(map[Key]*call),
	}
}

var shared = New()

// Shared returns the process-wide cache used by every determinacy check
// in this process.
func Shared() *Cache { return shared }

// Do returns the cached verdict for key, computing it with compute on a
// miss. Concurrent calls for the same key run compute exactly once; the
// others block until the leader finishes. hit reports whether the verdict
// was served without running compute in this call (either from the
// completed table or by waiting on an in-flight leader).
func (c *Cache) Do(key Key, compute func() bool) (val, hit bool) {
	c.mu.Lock()
	if v, ok := c.done[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return v, true
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-cl.done
		return cl.val, true
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	cl.val = compute()

	c.mu.Lock()
	c.done[key] = cl.val
	delete(c.inflight, key)
	c.mu.Unlock()
	close(cl.done)
	return cl.val, false
}

// Lookup returns the cached verdict without computing.
func (c *Cache) Lookup(key Key) (val, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.done[key]
	return v, ok
}

// Len returns the number of completed verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// StatsSnapshot returns the current counters.
func (c *Cache) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset clears verdicts and counters. In-flight computations complete and
// publish into the fresh table. Benchmarks use this to measure cold-cache
// behavior; production code never needs it.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done = make(map[Key]bool)
	c.stats = Stats{}
}
