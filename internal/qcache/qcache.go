// Package qcache is a process-wide, content-addressed cache of solver
// query verdicts. The determinacy analysis (internal/core) performs O(n²)
// pairwise semantic-commutativity queries, each a full symbolic
// equivalence check; fleets of manifests share resource models (the same
// package appears in many manifests), so keying the memo table on a
// canonical hash of the two expressions — rather than on resource names
// within one check — lets every check in the process reuse earlier
// verdicts. The cache is concurrency-safe and singleflight-deduplicated:
// when several workers ask the same query at once, exactly one runs the
// solver and the rest wait for its answer. It is bounded: beyond the
// configured capacity (DefaultCap unless NewWithCap says otherwise) the
// least-recently-used verdict is evicted, so a long-running process holds
// the hot working set without unbounded growth.
package qcache

import (
	"container/list"
	"sync"

	"repro/internal/fs"
)

// Key identifies one equivalence query: the canonical digests of the two
// expressions (order-normalized, since e1;e2 ≡ e2;e1 is symmetric in the
// pair) plus the solver budget the query runs under. Including the budget
// keeps verdicts comparable: a pair that is inconclusive under a small
// budget must not shadow a conclusive verdict computed under a larger one.
type Key struct {
	lo, hi fs.Digest
	budget int64
}

// PairKey builds the order-normalized key for a commutativity query on
// the expressions behind the two digests.
func PairKey(a, b fs.Digest, budget int64) Key {
	for i := range a {
		if a[i] < b[i] {
			return Key{lo: a, hi: b, budget: budget}
		}
		if a[i] > b[i] {
			return Key{lo: b, hi: a, budget: budget}
		}
	}
	return Key{lo: a, hi: b, budget: budget}
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits       int64 // calls answered from the completed-verdict table
	Misses     int64 // calls that ran the compute function
	Coalesced  int64 // calls that waited on another caller's in-flight query
	DiskHits   int64 // calls answered by the on-disk tier (AttachDisk)
	RemoteHits int64 // calls answered by a remote tier (the peer verdict ring)
	Evictions  int64 // verdicts dropped by the LRU bound
	Size       int   // completed verdicts currently held
	Cap        int   // configured bound; 0 means unbounded
}

// Source says where a Do verdict came from.
type Source uint8

// The verdict sources, cheapest first. Everything except SrcComputed was
// served without running compute in the calling goroutine.
const (
	SrcComputed  Source = iota // compute ran in this call
	SrcMemory                  // completed-verdict table
	SrcCoalesced               // waited on another caller's in-flight query
	SrcDisk                    // read from the on-disk tier
	SrcRemote                  // fetched from a peer over the verdict ring
)

func (s Source) String() string {
	switch s {
	case SrcComputed:
		return "computed"
	case SrcMemory:
		return "memory"
	case SrcCoalesced:
		return "coalesced"
	case SrcDisk:
		return "disk"
	case SrcRemote:
		return "remote"
	default:
		return "unknown"
	}
}

// call tracks one in-flight computation.
type call struct {
	done chan struct{}
	val  bool
	err  error
}

// entry is one completed verdict on the LRU list (front = most recent).
type entry struct {
	key Key
	val bool
}

// DefaultCap bounds the process-wide cache. A verdict is one boolean plus
// a 72-byte key, so the default admits the full pairwise closure of a
// ~360-resource fleet (~65k distinct pairs) in a few MB while guaranteeing
// a long-running process can never grow without bound.
const DefaultCap = 1 << 16

// Cache memoizes boolean query verdicts under singleflight deduplication,
// bounded by LRU eviction. The zero value is not ready; use New or
// NewWithCap.
type Cache struct {
	mu       sync.Mutex
	cap      int // 0: unbounded
	done     map[Key]*list.Element
	lru      *list.List // of *entry, front = most recently used
	inflight map[Key]*call
	tiers    []Tier // consulted in order on memory misses; may be empty
	stats    Stats
}

// New creates an empty cache bounded at DefaultCap verdicts.
func New() *Cache { return NewWithCap(DefaultCap) }

// NewWithCap creates an empty cache holding at most cap completed
// verdicts, evicting least-recently-used ones beyond that. cap <= 0 means
// unbounded.
func NewWithCap(cap int) *Cache {
	if cap < 0 {
		cap = 0
	}
	return &Cache{
		cap:      cap,
		done:     make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*call),
	}
}

// insert publishes a completed verdict, evicting the LRU entry when the
// bound is exceeded. Callers hold c.mu.
func (c *Cache) insert(key Key, val bool) {
	if el, ok := c.done[key]; ok { // raced Reset+recompute; refresh in place
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.done[key] = c.lru.PushFront(&entry{key: key, val: val})
	if c.cap > 0 && c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.done, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

var shared = New()

// Shared returns the process-wide cache used by every determinacy check
// in this process.
func Shared() *Cache { return shared }

// AttachTier appends a verdict tier: memory misses consult tiers in
// attachment order before computing, and computed verdicts are written
// through every tier. A tier with the same Name as an attached one
// replaces it in place, keeping its position in the consultation order.
func (c *Cache) AttachTier(t Tier) {
	if t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, old := range c.tiers {
		if old.Name() == t.Name() {
			c.tiers[i] = t
			return
		}
	}
	c.tiers = append(c.tiers, t)
}

// DetachTier removes the named tier; detaching an unknown name is a no-op.
func (c *Cache) DetachTier(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, t := range c.tiers {
		if t.Name() == name {
			c.tiers = append(c.tiers[:i], c.tiers[i+1:]...)
			return
		}
	}
}

// AttachDisk adds the on-disk tier: memory misses consult the disk before
// computing, and computed verdicts are written through. Attaching nil
// detaches the tier. Kept as sugar over AttachTier for the common case.
func (c *Cache) AttachDisk(d *Disk) {
	if d == nil {
		c.DetachTier(diskTierName)
		return
	}
	c.AttachTier(d)
}

// tierSnapshot returns the current tier stack without holding c.mu while
// tiers run (a tier Get may block on I/O or the network).
func (c *Cache) tierSnapshot() []Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.tiers) == 0 {
		return nil
	}
	return append([]Tier(nil), c.tiers...)
}

// Do returns the cached verdict for key, computing it with compute on a
// miss. Concurrent calls for the same key run compute exactly once; the
// others block until the leader finishes. src says where the verdict came
// from; anything but SrcComputed means this call did not run the solver.
//
// A failed compute (transient solver timeout, budget exhaustion surfaced
// as an error) is NOT cached: the error propagates to this caller and any
// coalesced waiters, the in-flight entry is dropped, and the next call for
// the key computes afresh. Before this rule, a single transient failure
// poisoned the verdict for every later caller.
func (c *Cache) Do(key Key, compute func() (bool, error)) (val bool, src Source, err error) {
	c.mu.Lock()
	if el, ok := c.done[key]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(el)
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, SrcMemory, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-cl.done
		return cl.val, SrcCoalesced, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	tiers := make([]Tier, len(c.tiers))
	copy(tiers, c.tiers)
	c.mu.Unlock()

	src = SrcComputed
	hitTier := -1
	for i, t := range tiers {
		if v, ok := tierGet(t, key); ok {
			cl.val, src, hitTier = v, t.Source(), i
			break
		}
	}
	if src == SrcComputed {
		cl.val, cl.err = compute()
	}

	c.mu.Lock()
	if cl.err == nil {
		c.insert(key, cl.val)
		switch src {
		case SrcDisk:
			c.stats.DiskHits++
		case SrcRemote:
			c.stats.RemoteHits++
		default:
			c.stats.Misses++
		}
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(cl.done)
	if cl.err == nil {
		switch {
		case src == SrcComputed:
			// Write-through, best-effort: the disk tier makes the verdict
			// survive restarts, a remote tier replicates it to its ring
			// owner so the whole fleet shares it.
			for _, t := range tiers {
				tierPut(t, key, cl.val)
			}
		case hitTier > 0:
			// Promote: a verdict found in a farther tier (e.g. fetched from
			// a peer) is seeded into the nearer ones, so the next restart or
			// request answers locally.
			for _, t := range tiers[:hitTier] {
				tierPut(t, key, cl.val)
			}
		}
	}
	return cl.val, src, cl.err
}

// Seed publishes a completed verdict into the memory table and writes it
// through every local (non-remote) tier. Peer nodes use it to ingest
// ring-replicated verdicts; remote tiers are deliberately skipped so
// ingestion can never echo back into the ring.
func (c *Cache) Seed(key Key, val bool) {
	c.mu.Lock()
	c.insert(key, val)
	tiers := make([]Tier, len(c.tiers))
	copy(tiers, c.tiers)
	c.mu.Unlock()
	for _, t := range tiers {
		if t.Source() != SrcRemote {
			tierPut(t, key, val)
		}
	}
}

// LookupLocal returns the verdict held by this process — the memory table
// or any local (non-remote) tier — without computing and without asking
// peers. The peer cache protocol serves from it, which is what keeps ring
// lookups single-hop: a node answers only from what it holds, never by
// fanning out further.
func (c *Cache) LookupLocal(key Key) (val, ok bool) {
	if v, ok := c.Lookup(key); ok {
		return v, true
	}
	for _, t := range c.tierSnapshot() {
		if t.Source() == SrcRemote {
			continue
		}
		if v, ok := tierGet(t, key); ok {
			c.mu.Lock()
			c.insert(key, v)
			c.mu.Unlock()
			return v, true
		}
	}
	return false, false
}

// TierStatsSnapshot returns the named attached tier's counters; ok is
// false when no such tier is attached.
func (c *Cache) TierStatsSnapshot(name string) (TierStats, bool) {
	for _, t := range c.tierSnapshot() {
		if t.Name() == name {
			return t.Stats(), true
		}
	}
	return TierStats{}, false
}

// Lookup returns the cached verdict without computing. A found verdict
// counts as a use for eviction ordering.
func (c *Cache) Lookup(key Key) (val, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.done[key]
	if !ok {
		return false, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Len returns the number of completed verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// StatsSnapshot returns the current counters plus the live size and the
// configured bound.
func (c *Cache) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	s.Cap = c.cap
	return s
}

// Reset clears verdicts and counters. In-flight computations complete and
// publish into the fresh table. Benchmarks use this to measure cold-cache
// behavior; production code never needs it.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done = make(map[Key]*list.Element)
	c.lru = list.New()
	c.stats = Stats{}
}
