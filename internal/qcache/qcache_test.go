package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fs"
)

func digests(n int) []fs.Digest {
	out := make([]fs.Digest, n)
	for i := range out {
		out[i] = fs.DigestExpr(fs.Creat{Path: fs.ParsePath(fmt.Sprintf("/f%d", i)), Content: "x"})
	}
	return out
}

func TestPairKeySymmetric(t *testing.T) {
	d := digests(2)
	if PairKey(d[0], d[1], 7) != PairKey(d[1], d[0], 7) {
		t.Error("pair key must be order-insensitive")
	}
	if PairKey(d[0], d[1], 7) == PairKey(d[0], d[1], 8) {
		t.Error("pair key must separate budgets")
	}
	if PairKey(d[0], d[0], 7) != PairKey(d[0], d[0], 7) {
		t.Error("self pair must be stable")
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := New()
	d := digests(2)
	key := PairKey(d[0], d[1], 1)
	calls := 0
	compute := func() (bool, error) { calls++; return true, nil }
	if v, src, err := c.Do(key, compute); !v || src != SrcComputed || err != nil {
		t.Errorf("first call: v=%v src=%v err=%v", v, src, err)
	}
	if v, src, err := c.Do(key, compute); !v || src != SrcMemory || err != nil {
		t.Errorf("second call: v=%v src=%v err=%v", v, src, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	st := c.StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 {
		t.Errorf("stats = %+v", st)
	}
	if v, ok := c.Lookup(key); !ok || !v {
		t.Errorf("lookup = %v %v", v, ok)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset did not clear")
	}
}

// Concurrent callers of the same key must coalesce into one computation;
// designed to run under -race.
func TestCacheSingleflight(t *testing.T) {
	c := New()
	d := digests(2)
	key := PairKey(d[0], d[1], 1)
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, _ := c.Do(key, func() (bool, error) {
				computes.Add(1)
				return true, nil
			})
			if !v {
				t.Error("wrong value")
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", computes.Load())
	}
	st := c.StatsSnapshot()
	if st.Misses != 1 || st.Hits+st.Coalesced != callers-1 {
		t.Errorf("stats = %+v", st)
	}
}

// Distinct keys must not block each other; hammer the cache from many
// goroutines over a small key space under -race.
func TestCacheStress(t *testing.T) {
	c := New()
	ds := digests(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, b := ds[(g+i)%len(ds)], ds[(g*i)%len(ds)]
				// The computed verdict is a function of the unordered pair,
				// so every caller — first or cached — must see the same
				// value regardless of argument order or interleaving.
				want := (int(a[0])+int(b[0]))%2 == 0
				got, _, _ := c.Do(PairKey(a, b, 1), func() (bool, error) { return want, nil })
				if got != want {
					t.Errorf("inconsistent verdict for pair")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestGroupCoalesces(t *testing.T) {
	var g Group[string, int]
	var computes atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	const callers = 16
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				if computes.Add(1) == 1 {
					close(entered)
				}
				<-release
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("v=%d err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	<-entered
	// Give the remaining callers time to queue behind the in-flight call
	// before releasing it. Stragglers that only reach Do afterwards become
	// fresh leaders (the key is forgotten on completion), so the hard
	// invariant is conservation, not an exact count.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if computes.Load()+sharedCount.Load() != callers {
		t.Errorf("computes (%d) + shared (%d) != callers (%d)",
			computes.Load(), sharedCount.Load(), callers)
	}
	if sharedCount.Load() == 0 {
		t.Error("no caller coalesced onto the in-flight call")
	}
}

func TestGroupPropagatesError(t *testing.T) {
	var g Group[int, string]
	want := errors.New("boom")
	_, err, _ := g.Do(1, func() (string, error) { return "", want })
	if !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
	// The key is forgotten after completion: a retry runs fn again.
	v, err, _ := g.Do(1, func() (string, error) { return "ok", nil })
	if v != "ok" || err != nil {
		t.Errorf("retry: v=%q err=%v", v, err)
	}
}

func TestCacheBounded(t *testing.T) {
	const cap = 8
	c := NewWithCap(cap)
	ds := digests(100)
	for i, d := range ds {
		c.Do(PairKey(d, d, 1), func() (bool, error) { return true, nil })
		if c.Len() > cap {
			t.Fatalf("after %d inserts cache holds %d verdicts, cap %d", i+1, c.Len(), cap)
		}
	}
	st := c.StatsSnapshot()
	if st.Size != cap {
		t.Errorf("Size = %d, want %d", st.Size, cap)
	}
	if st.Cap != cap {
		t.Errorf("Cap = %d, want %d", st.Cap, cap)
	}
	if st.Evictions != int64(len(ds)-cap) {
		t.Errorf("Evictions = %d, want %d", st.Evictions, len(ds)-cap)
	}
	// The most recent cap keys are present; the oldest are gone.
	for _, d := range ds[len(ds)-cap:] {
		if _, ok := c.Lookup(PairKey(d, d, 1)); !ok {
			t.Error("recently inserted verdict evicted")
		}
	}
	if _, ok := c.Lookup(PairKey(ds[0], ds[0], 1)); ok {
		t.Error("oldest verdict survived past the bound")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewWithCap(2)
	ds := digests(3)
	k := func(i int) Key { return PairKey(ds[i], ds[i], 1) }
	c.Do(k(0), func() (bool, error) { return true, nil })
	c.Do(k(1), func() (bool, error) { return true, nil })
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Lookup(k(0)); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Do(k(2), func() (bool, error) { return true, nil })
	if _, ok := c.Lookup(k(0)); !ok {
		t.Error("recently used verdict was evicted")
	}
	if _, ok := c.Lookup(k(1)); ok {
		t.Error("least recently used verdict survived")
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewWithCap(0)
	ds := digests(64)
	for _, d := range ds {
		c.Do(PairKey(d, d, 1), func() (bool, error) { return false, nil })
	}
	if c.Len() != len(ds) {
		t.Fatalf("unbounded cache holds %d, want %d", c.Len(), len(ds))
	}
	if ev := c.StatsSnapshot().Evictions; ev != 0 {
		t.Fatalf("unbounded cache evicted %d", ev)
	}
}

func TestCacheEvictedRecomputes(t *testing.T) {
	c := NewWithCap(1)
	ds := digests(2)
	var computes atomic.Int64
	compute := func() (bool, error) { computes.Add(1); return true, nil }
	k0, k1 := PairKey(ds[0], ds[0], 1), PairKey(ds[1], ds[1], 1)
	c.Do(k0, compute)
	c.Do(k1, compute) // evicts k0
	if _, src, _ := c.Do(k0, compute); src != SrcComputed {
		t.Error("evicted verdict reported as hit")
	}
	if computes.Load() != 3 {
		t.Errorf("computes = %d, want 3 (k0 recomputed after eviction)", computes.Load())
	}
}
