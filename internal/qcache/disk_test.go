package qcache

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
)

// TestDoDropsFailedComputation is the regression test for error poisoning:
// a failed compute must not publish a verdict, so the next caller retries
// and gets the real answer.
func TestDoDropsFailedComputation(t *testing.T) {
	c := New()
	d := digests(2)
	key := PairKey(d[0], d[1], 1)
	boom := errors.New("solver timeout")
	if _, _, err := c.Do(key, func() (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want %v", err, boom)
	}
	if c.Len() != 0 {
		t.Fatalf("failed computation was cached (len=%d)", c.Len())
	}
	if _, ok := c.Lookup(key); ok {
		t.Fatal("Lookup sees a verdict after a failed compute")
	}
	v, src, err := c.Do(key, func() (bool, error) { return true, nil })
	if err != nil || !v || src != SrcComputed {
		t.Fatalf("retry: v=%v src=%v err=%v, want computed true", v, src, err)
	}
	if v, src, err := c.Do(key, func() (bool, error) { return false, nil }); !v || src != SrcMemory || err != nil {
		t.Fatalf("after retry: v=%v src=%v err=%v, want memory-cached true", v, src, err)
	}
}

// TestDoCoalescedSeeLeaderError: waiters coalesced behind a failing leader
// receive the error, and none of them poisons the table either.
func TestDoCoalescedSeeLeaderError(t *testing.T) {
	c := New()
	d := digests(2)
	key := PairKey(d[0], d[1], 1)
	boom := errors.New("budget exhausted")
	entered := make(chan struct{})
	release := make(chan struct{})
	var errs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(key, func() (bool, error) {
			close(entered)
			<-release
			return false, boom
		})
		if errors.Is(err, boom) {
			errs.Add(1)
		}
	}()
	<-entered
	const waiters = 8
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, src, err := c.Do(key, func() (bool, error) { return false, boom })
			// A waiter sees the leader's error; a straggler that became a
			// fresh leader runs compute itself and fails the same way.
			if errors.Is(err, boom) {
				errs.Add(1)
			} else {
				t.Errorf("waiter got err=%v src=%v, want the leader error", err, src)
			}
		}()
	}
	close(release)
	wg.Wait()
	if errs.Load() != waiters+1 {
		t.Errorf("%d of %d callers saw the error", errs.Load(), waiters+1)
	}
	if c.Len() != 0 {
		t.Errorf("failed singleflight cached %d verdicts", c.Len())
	}
}

func testKeys(n int) []Key {
	ds := digests(n)
	out := make([]Key, n)
	for i := range out {
		out[i] = PairKey(ds[i], ds[i], 1)
	}
	return out
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := testKeys(2)
	d.Store(ks[0], true)
	d.Store(ks[1], false)
	if v, ok := d.Lookup(ks[0]); !ok || !v {
		t.Fatalf("lookup k0 = %v %v", v, ok)
	}
	if v, ok := d.Lookup(ks[1]); !ok || v {
		t.Fatalf("lookup k1 = %v %v", v, ok)
	}

	// A fresh open over the same directory sees the stored verdicts: the
	// warm-start path across CLI runs.
	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d2.Lookup(ks[0]); !ok || !v {
		t.Fatalf("reopened lookup k0 = %v %v", v, ok)
	}
	st := d2.StatsSnapshot()
	if st.Files != 2 || st.Hits != 1 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

// TestDiskSchemeInvalidation: a verdict written under a different scheme
// version is deleted on first touch and reported as a miss.
func TestDiskSchemeInvalidation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKeys(1)[0]
	stale := "qcache/0 some-older-scheme\ncommutes\n"
	path := filepath.Join(dir, k.fileName())
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup(k); ok {
		t.Fatal("stale-scheme verdict served")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale-scheme file not deleted")
	}
	if st := d.StatsSnapshot(); st.Invalidated != 1 {
		t.Fatalf("stats = %+v, want Invalidated=1", st)
	}
}

// TestDiskByteBudget: the store evicts oldest files beyond the budget.
func TestDiskByteBudget(t *testing.T) {
	dir := t.TempDir()
	oneFile := int64(len(DiskSchemeVersion) + 1 + len("conflicts") + 1 + len("sum:00000000") + 1)
	d, err := OpenDisk(dir, 3*oneFile)
	if err != nil {
		t.Fatal(err)
	}
	ks := testKeys(8)
	for _, k := range ks {
		d.Store(k, false)
	}
	st := d.StatsSnapshot()
	if st.Files != 3 {
		t.Fatalf("files = %d, want 3 (budget %d bytes)", st.Files, 3*oneFile)
	}
	if st.Evictions != int64(len(ks)-3) {
		t.Fatalf("evictions = %d, want %d", st.Evictions, len(ks)-3)
	}
	entries, _ := os.ReadDir(dir)
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), diskExt) {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("%d verdict files on disk, want 3", n)
	}
	// The most recent writes survived.
	for _, k := range ks[len(ks)-3:] {
		if _, ok := d.Lookup(k); !ok {
			t.Fatal("recently stored verdict evicted")
		}
	}
}

// TestCacheDiskTier: a cache with an attached disk tier writes computed
// verdicts through and a second cache (fresh memory, same directory) is
// answered from disk without computing.
func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := testKeys(3)
	warm := New()
	warm.AttachDisk(disk)
	for i, k := range ks {
		want := i%2 == 0
		if v, src, err := warm.Do(k, func() (bool, error) { return want, nil }); v != want || src != SrcComputed || err != nil {
			t.Fatalf("warm-up %d: v=%v src=%v err=%v", i, v, src, err)
		}
	}

	cold := New() // fresh memory tier, same disk
	cold.AttachDisk(disk)
	computes := 0
	for i, k := range ks {
		want := i%2 == 0
		v, src, err := cold.Do(k, func() (bool, error) { computes++; return !want, nil })
		if err != nil || src != SrcDisk || v != want {
			t.Fatalf("cold %d: v=%v src=%v err=%v, want disk-served %v", i, v, src, err, want)
		}
	}
	if computes != 0 {
		t.Fatalf("disk-warm run computed %d times", computes)
	}
	// Disk hits are published to the memory tier: the next read is memory.
	if _, src, _ := cold.Do(ks[0], func() (bool, error) { return false, nil }); src != SrcMemory {
		t.Fatalf("after disk hit, src = %v, want memory", src)
	}
	if st := cold.StatsSnapshot(); st.DiskHits != int64(len(ks)) {
		t.Fatalf("stats = %+v, want DiskHits=%d", st, len(ks))
	}
	// Failed computes are not written through either.
	boom := errors.New("x")
	kf := PairKey(digests(5)[4], digests(5)[4], 9)
	cold.Do(kf, func() (bool, error) { return false, boom })
	if _, ok := disk.Lookup(kf); ok {
		t.Fatal("failed compute reached the disk tier")
	}
}

// TestDiskCorruptionQuarantine: damaged verdict files — torn writes
// (truncated mid-file), flipped bytes, zero-length files — are never
// served: each is treated as a miss, quarantined rather than silently
// deleted, and counted. Undamaged neighbours keep working, and a re-store
// over a quarantined entry serves again.
func TestDiskCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := testKeys(4)
	for _, k := range ks {
		d.Store(k, true)
	}

	// Damage three of the four files in three different ways; ks[3] stays
	// intact as the control.
	paths := make([]string, len(ks))
	for i, k := range ks {
		paths[i] = filepath.Join(dir, k.fileName())
	}
	full := int64(len(DiskSchemeVersion) + 1 + len("commutes") + 1 + len("sum:00000000") + 1)
	if err := faults.TruncateFile(paths[0], full/2); err != nil { // torn write
		t.Fatal(err)
	}
	if err := faults.FlipByte(paths[1], int64(len(DiskSchemeVersion))+3); err != nil { // bit rot in the verdict word
		t.Fatal(err)
	}
	if err := faults.ZeroFile(paths[2]); err != nil {
		t.Fatal(err)
	}

	// Warm start over the damaged directory must succeed, and lookups must
	// classify each damaged file as a miss — never a served verdict.
	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatalf("warm start over damaged store: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := d2.Lookup(ks[i]); ok {
			t.Fatalf("damaged file %d served a verdict", i)
		}
	}
	if v, ok := d2.Lookup(ks[3]); !ok || !v {
		t.Fatalf("intact neighbour not served: v=%v ok=%v", v, ok)
	}
	st := d2.StatsSnapshot()
	if st.CorruptEntries != 3 {
		t.Fatalf("stats = %+v, want CorruptEntries=3", st)
	}
	if st.Invalidated != 0 {
		t.Fatalf("damage misclassified as scheme staleness: %+v", st)
	}

	// The damaged bytes were quarantined, not deleted, and the main
	// directory no longer holds them.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qents) != 3 {
		t.Fatalf("quarantine dir: entries=%d err=%v, want 3", len(qents), err)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(paths[i]); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("damaged file %d still in the main directory", i)
		}
	}

	// Re-deriving (re-storing) a quarantined key serves again.
	d2.Store(ks[0], false)
	if v, ok := d2.Lookup(ks[0]); !ok || v {
		t.Fatalf("re-derived verdict not served: v=%v ok=%v", v, ok)
	}
}

// TestDiskHeaderFlipIsCorrupt: a bit flip inside the header of a
// current-format file fails its own checksum and is classified as damage
// (quarantined), not as a stale scheme (deleted).
func TestDiskHeaderFlipIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKeys(1)[0]
	d.Store(k, true)
	if err := faults.FlipByte(filepath.Join(dir, k.fileName()), 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup(k); ok {
		t.Fatal("header-flipped verdict served")
	}
	st := d.StatsSnapshot()
	if st.CorruptEntries != 1 || st.Invalidated != 0 {
		t.Fatalf("stats = %+v, want CorruptEntries=1 Invalidated=0", st)
	}
}

// TestCacheDiskTierRederivesCorrupt: the full cache stack re-derives a
// verdict whose disk file was damaged — the compute callback runs again,
// the fresh verdict is written back through, and a third cache over the
// same directory is disk-served without computing.
func TestCacheDiskTierRederivesCorrupt(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKeys(1)[0]
	warm := New()
	warm.AttachDisk(disk)
	if _, _, err := warm.Do(k, func() (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if err := faults.TruncateFile(filepath.Join(dir, k.fileName()), 5); err != nil {
		t.Fatal(err)
	}

	cold := New()
	cold.AttachDisk(disk)
	computes := 0
	v, src, err := cold.Do(k, func() (bool, error) { computes++; return true, nil })
	if err != nil || !v || src != SrcComputed || computes != 1 {
		t.Fatalf("re-derive: v=%v src=%v err=%v computes=%d", v, src, err, computes)
	}

	third := New()
	third.AttachDisk(disk)
	if v, src, err := third.Do(k, func() (bool, error) { return false, nil }); err != nil || !v || src != SrcDisk {
		t.Fatalf("after re-derive: v=%v src=%v err=%v, want disk-served true", v, src, err)
	}
}
