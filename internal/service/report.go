package service

// The verification report: one JSON document per manifest, produced
// identically by the daemon's workers and the CLI's -json mode. Everything
// a caller needs is structured — verdicts, witnesses, repair suggestions,
// engine statistics, and typed failure reasons (a dependency cycle names
// its resources instead of burying them in a message string).

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/sym"
)

// Verdict values of a Report.
const (
	VerdictPass  = "pass"  // every requested check passed
	VerdictFail  = "fail"  // a check failed or the manifest is invalid
	VerdictError = "error" // the analysis could not complete (timeout, canceled, infra)
)

// Error classes of an ErrorReport.
const (
	ClassManifest = "manifest" // the manifest itself is invalid (cycle, bad reference)
	ClassTimeout  = "timeout"  // the analysis exceeded its deadline
	ClassCanceled = "canceled" // the job was canceled before a verdict
	ClassInfra    = "infra"    // infrastructure failure; retrying may succeed
)

// Report is the outcome of verifying one manifest.
type Report struct {
	// Manifest names the source (a file path in CLI mode, empty for the
	// service, whose jobs carry the source inline).
	Manifest  string `json:"manifest,omitempty"`
	Platform  string `json:"platform"`
	Resources int    `json:"resources,omitempty"`
	// Verdict is the rolled-up outcome: pass, fail or error.
	Verdict string `json:"verdict"`

	Determinism *CheckReport     `json:"determinism,omitempty"`
	Idempotence *CheckReport     `json:"idempotence,omitempty"`
	Invariant   *InvariantReport `json:"invariant,omitempty"`
	Repair      *RepairReport    `json:"repair,omitempty"`

	Stats *StatsReport `json:"stats,omitempty"`
	Error *ErrorReport `json:"error,omitempty"`
}

// CheckReport is one analysis verdict plus its witness when it failed.
type CheckReport struct {
	Ok         bool     `json:"ok"`
	DurationMS float64  `json:"duration_ms"`
	Witness    *Witness `json:"witness,omitempty"`
}

// InvariantReport is the outcome of a file-invariant check.
type InvariantReport struct {
	Spec       string  `json:"spec"`
	Ok         bool    `json:"ok"`
	DurationMS float64 `json:"duration_ms"`
	// Input is a violating initial state when Ok is false.
	Input FSState `json:"input,omitempty"`
}

// RepairReport carries suggested dependency edges that restore
// determinism.
type RepairReport struct {
	// Edges in Puppet chaining syntax, e.g. "Package[ntp] -> File[/x]".
	Edges []string `json:"edges,omitempty"`
	// Found is false when the search exhausted its budget; Note then says
	// why.
	Found bool   `json:"found"`
	Note  string `json:"note,omitempty"`
}

// ErrorReport is a typed failure reason.
type ErrorReport struct {
	Class   string `json:"class"`
	Message string `json:"message"`
	// Cycle names the resources of a dependency cycle, in order, when the
	// failure is one (class "manifest").
	Cycle []string `json:"cycle,omitempty"`
}

// FSEntry is one path's content in a witness state.
type FSEntry struct {
	Kind string `json:"kind"` // "file" or "dir"
	Data string `json:"data,omitempty"`
}

// FSState is a filesystem state rendered for JSON.
type FSState map[string]FSEntry

// Witness is a counterexample: an input filesystem plus the outcome(s)
// that expose the bug. For determinism failures Order1/Order2 are two
// valid application orders with differing outcomes; for idempotence
// failures they are absent and Out1/Out2 are the once- and twice-applied
// outcomes.
type Witness struct {
	Input  FSState  `json:"input"`
	Order1 []string `json:"order1,omitempty"`
	Order2 []string `json:"order2,omitempty"`
	Ok1    bool     `json:"ok1"`
	Ok2    bool     `json:"ok2"`
	Out1   FSState  `json:"out1,omitempty"`
	Out2   FSState  `json:"out2,omitempty"`
}

// StatsReport mirrors the engine counters of core.Stats that operators
// care about, in JSON form.
type StatsReport struct {
	Resources         int     `json:"resources"`
	Eliminated        int     `json:"eliminated"`
	PrunedPaths       int     `json:"pruned_paths"`
	Paths             int     `json:"paths"`
	TotalPaths        int     `json:"total_paths"`
	Sequences         int     `json:"sequences"`
	Workers           int     `json:"workers"`
	SemQueries        int     `json:"solver_queries"`
	SemCacheHits      int     `json:"sem_cache_hits"`
	SemCacheHitRate   float64 `json:"sem_cache_hit_rate"`
	SolverReuses      int     `json:"solver_reuses"`
	LearntRetained    int     `json:"learnt_retained"`
	PreprocessRemoved int64   `json:"preprocess_removed"`
	InternHits        int64   `json:"intern_hits"`
	EncodeMemoHits    int64   `json:"encode_memo_hits"`
	DiskCacheHits     int     `json:"disk_cache_hits"`
	RemoteCacheHits   int     `json:"remote_cache_hits,omitempty"`
	DurationMS        float64 `json:"duration_ms"`

	// Differential-verification counters, present only on jobs with a
	// base manifest (see core.Stats for the semantics).
	DiffChanged     int `json:"diff_changed,omitempty"`
	DiffUnchanged   int `json:"diff_unchanged,omitempty"`
	PairsReused     int `json:"pairs_reused,omitempty"`
	PairsReverified int `json:"pairs_reverified,omitempty"`
	InheritMisses   int `json:"inherit_misses,omitempty"`

	// Core solver search counters, summed over every SAT query the job
	// issued (see core.Stats for the semantics).
	SolverDecisions    int64 `json:"solver_decisions,omitempty"`
	SolverPropagations int64 `json:"solver_propagations,omitempty"`
	SolverConflicts    int64 `json:"solver_conflicts,omitempty"`
	SolverRestarts     int64 `json:"solver_restarts,omitempty"`

	// Portfolio-racing counters, present only when Options.Portfolio is
	// enabled and a query escalated to a race.
	PortfolioEscalations int            `json:"portfolio_escalations,omitempty"`
	PortfolioRaces       int            `json:"portfolio_races,omitempty"`
	WinnerByConfig       map[string]int `json:"winner_by_config,omitempty"`
}

func stateJSON(st fs.State) FSState {
	if st == nil {
		return nil
	}
	out := make(FSState, len(st))
	for p, c := range st {
		e := FSEntry{Kind: "dir"}
		if c.Kind == fs.KindFile {
			e = FSEntry{Kind: "file", Data: c.Data}
		}
		out[string(p)] = e
	}
	return out
}

func witnessFromDeterminism(cex *core.Counterexample) *Witness {
	if cex == nil {
		return nil
	}
	return &Witness{
		Input:  stateJSON(cex.Input),
		Order1: cex.Order1, Order2: cex.Order2,
		Ok1: cex.Ok1, Ok2: cex.Ok2,
		Out1: stateJSON(cex.Out1), Out2: stateJSON(cex.Out2),
	}
}

func witnessFromSym(cex *sym.Counterexample) *Witness {
	if cex == nil {
		return nil
	}
	return &Witness{
		Input: stateJSON(cex.Input),
		Ok1:   cex.Ok1, Ok2: cex.Ok2,
		Out1: stateJSON(cex.Out1), Out2: stateJSON(cex.Out2),
	}
}

func statsJSON(s core.Stats) *StatsReport {
	return &StatsReport{
		Resources:         s.Resources,
		Eliminated:        s.Eliminated,
		PrunedPaths:       s.PrunedPaths,
		Paths:             s.Paths,
		TotalPaths:        s.TotalPaths,
		Sequences:         s.Sequences,
		Workers:           s.Workers,
		SemQueries:        s.SemQueries,
		SemCacheHits:      s.SemCacheHits,
		SemCacheHitRate:   s.SemCacheHitRate(),
		SolverReuses:      s.SolverReuses,
		LearntRetained:    s.LearntRetained,
		PreprocessRemoved: s.PreprocessRemoved,
		InternHits:        s.InternHits,
		EncodeMemoHits:    s.EncodeMemoHits,
		DiskCacheHits:     s.DiskCacheHits,
		RemoteCacheHits:   s.RemoteCacheHits,
		DurationMS:        float64(s.Duration) / float64(time.Millisecond),
		DiffChanged:       s.DiffChanged,
		DiffUnchanged:     s.DiffUnchanged,
		PairsReused:       s.PairsReused,
		PairsReverified:   s.PairsReverified,
		InheritMisses:     s.InheritMisses,

		SolverDecisions:    s.SolverDecisions,
		SolverPropagations: s.SolverPropagations,
		SolverConflicts:    s.SolverConflicts,
		SolverRestarts:     s.SolverRestarts,

		PortfolioEscalations: s.PortfolioEscalations,
		PortfolioRaces:       s.PortfolioRaces,
		WinnerByConfig:       s.WinnerByConfig,
	}
}

// Classify maps a check error to its structured class, mirroring the CLI's
// exit-code classes (timeout/interrupt 3, infrastructure 4, everything
// else a manifest-class failure).
func Classify(err error) *ErrorReport {
	if err == nil {
		return nil
	}
	rep := &ErrorReport{Message: err.Error()}
	var cycle *core.CycleError
	switch {
	case errors.Is(err, core.ErrCanceled), errors.Is(err, context.Canceled):
		rep.Class = ClassCanceled
	case errors.Is(err, core.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		rep.Class = ClassTimeout
	case core.IsInfraError(err):
		rep.Class = ClassInfra
	case errors.As(err, &cycle):
		rep.Class = ClassManifest
		rep.Cycle = cycle.Resources
	default:
		rep.Class = ClassManifest
	}
	return rep
}

// ExitCode maps a report to the CLI's process exit-code classes: 0 every
// check passed, 1 a check failed (or the manifest is invalid), 3 the
// analysis timed out or was canceled, 4 infrastructure failure (retrying
// may succeed). It lives here — not in cmd/rehearsal — so the CLI and
// the scenario replayer agree on what each code means.
func ExitCode(rep *Report) int {
	if rep.Error != nil {
		switch rep.Error.Class {
		case ClassTimeout, ClassCanceled:
			return 3
		case ClassInfra:
			return 4
		}
	}
	if rep.Verdict == VerdictPass {
		return 0
	}
	return 1
}

// BuildReport loads and verifies one manifest under the (already
// substrate-bound, context-carrying) options, running the checks the
// request names. It never returns an error: failures land in the report's
// Error field with a typed class, so daemon workers and the CLI's -json
// mode share one code path and one output shape.
func BuildReport(req JobRequest, opts core.Options) *Report {
	req = req.Normalize()
	rep := &Report{Platform: req.Platform, Verdict: VerdictPass}

	sys, err := core.Load(req.Manifest, opts)
	if err != nil {
		rep.Error = Classify(err)
		if rep.Error.Class == ClassManifest {
			rep.Verdict = VerdictFail
		} else {
			rep.Verdict = VerdictError
		}
		return rep
	}
	rep.Resources = sys.Size()

	var det *core.DeterminismResult
	if req.BaseManifest != "" {
		// Differential verification: delta against the base version and
		// inherit unchanged pairs' verdicts from the warm tiers. A base
		// that no longer loads is a manifest-class failure — CI chained to
		// a broken parent should hear about it, not silently pay for a
		// full run.
		baseSys, berr := core.Load(req.BaseManifest, opts)
		if berr != nil {
			rep.Error = Classify(fmt.Errorf("base manifest: %w", berr))
			if rep.Error.Class == ClassManifest {
				rep.Verdict = VerdictFail
			} else {
				rep.Verdict = VerdictError
			}
			return rep
		}
		det, err = sys.CheckDeterminismDiff(baseSys)
	} else {
		det, err = sys.CheckDeterminism()
	}
	if err != nil {
		rep.Error = Classify(err)
		rep.Verdict = VerdictError
		return rep
	}
	rep.Stats = statsJSON(det.Stats)
	rep.Determinism = &CheckReport{
		Ok:         det.Deterministic,
		DurationMS: float64(det.Stats.Duration) / float64(time.Millisecond),
		Witness:    witnessFromDeterminism(det.Counterexample),
	}
	if !det.Deterministic {
		rep.Verdict = VerdictFail
		if req.Has(CheckRepair) {
			repair, err := sys.SuggestRepair()
			switch {
			case err != nil:
				rep.Repair = &RepairReport{Found: false, Note: err.Error()}
			case repair != nil:
				rep.Repair = &RepairReport{Found: true, Edges: repair.Edges}
			}
		}
		// Idempotence and invariants are only meaningful on a
		// deterministic manifest (section 5): stop here.
		return rep
	}

	if req.Has(CheckIdempotence) {
		idem, err := sys.CheckIdempotence()
		if err != nil {
			rep.Error = Classify(err)
			rep.Verdict = VerdictError
			return rep
		}
		rep.Idempotence = &CheckReport{
			Ok:         idem.Idempotent,
			DurationMS: float64(idem.Duration) / float64(time.Millisecond),
			Witness:    witnessFromSym(idem.Counterexample),
		}
		if !idem.Idempotent {
			rep.Verdict = VerdictFail
		}
	}

	if req.Invariant != "" {
		path, content, _ := strings.Cut(req.Invariant, "=")
		inv, err := sys.CheckFileInvariant(fs.ParsePath(path), content)
		if err != nil {
			rep.Error = Classify(err)
			rep.Verdict = VerdictError
			return rep
		}
		rep.Invariant = &InvariantReport{
			Spec:       req.Invariant,
			Ok:         inv.Holds,
			DurationMS: float64(inv.Duration) / float64(time.Millisecond),
			Input:      stateJSON(inv.Input),
		}
		if !inv.Holds {
			rep.Verdict = VerdictFail
		}
	}
	return rep
}

// WitnessDoc returns the report's counterexample witness, if any: the
// determinism counterexample when present, else the idempotence one.
func (r *Report) WitnessDoc() *Witness {
	if r.Determinism != nil && r.Determinism.Witness != nil {
		return r.Determinism.Witness
	}
	if r.Idempotence != nil && r.Idempotence.Witness != nil {
		return r.Idempotence.Witness
	}
	return nil
}
