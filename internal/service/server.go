package service

// The HTTP surface of rehearsald. Endpoints:
//
//	POST   /v1/jobs              submit a manifest-analysis job (202; 429
//	                             when the queue is full, 503 when draining)
//	GET    /v1/jobs/{id}         job lifecycle + report when finished
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/jobs/{id}/witness the counterexample witness document
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              process liveness
//	GET    /readyz               accepting work and listing service healthy
//
// The handler reuses the hardening patterns of cmd/pkgserver: request
// bodies are size-capped before decoding, and the optional faults
// middleware injects deterministic chaos for end-to-end fault drills. The
// companion NewHTTPServer applies header/read/write/idle timeouts;
// Shutdown drains the scheduler (canceling in-flight jobs) before the
// listener closes.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/faults"
)

// Server is the verification daemon: a scheduler plus its HTTP handler.
type Server struct {
	cfg   Config
	sched *scheduler
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	sched, err := newScheduler(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: sched.cfg, sched: sched}, nil
}

// Scheduler internals exposed for white-box tests and benchmarks.

// Submit admits a job programmatically (the benchmark harness drives the
// scheduler without HTTP).
func (s *Server) Submit(req JobRequest) (*Job, bool, error) { return s.sched.submit(req) }

// Job returns a live job by id. The scenario engine and the soak rig
// wait on Job.Done instead of polling the HTTP surface, which keeps
// their latency measurements free of polling quantization.
func (s *Server) Job(id string) (*Job, bool) { return s.sched.store.get(id) }

// Metrics returns the live counter set.
func (s *Server) MetricsText() string {
	var b strings.Builder
	s.writeMetrics(&b)
	return b.String()
}

// Shutdown gracefully drains the daemon: admission stops (new submissions
// get 503), queued and in-flight jobs are canceled and finish in the
// canceled state, and every worker joins before it returns. Bounded by
// ctx. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.sched.drain(ctx)
}

// Handler returns the daemon's HTTP handler, wrapped in the body-size cap
// and, when configured, the fault-injection middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/witness", s.handleWitness)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Cluster != nil {
		s.registerCluster(mux)
	}
	var h http.Handler = mux
	if s.cfg.Faults != nil {
		h = faults.Middleware(s.cfg.Faults, h)
	}
	return http.MaxBytesHandler(h, s.cfg.MaxBodyBytes)
}

// NewHTTPServer wraps the handler in an http.Server with the hardened
// timeouts every exposed listener should run under.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Base job references are node-local, so they resolve here — on the
	// node that ran the base job — before any cluster routing; the routed
	// request carries the resolved base manifest inline.
	req, err := s.sched.resolveBase(req)
	if errors.Is(err, ErrUnknownBase) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if s.routeSubmit(w, r, req) {
		return
	}
	job, deduped, err := s.sched.submit(req)
	switch {
	case errors.Is(err, ErrUnknownBase):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		// Admission control: tell the client when to come back — one
		// median job latency is a decent guess, floored at a second.
		w.Header().Set("Retry-After", retryAfter(s.sched.met))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		// Draining is as transient as a full queue — a rolling restart
		// replaces the process — so the 503 carries the same backoff hint
		// as the 429, letting clients retry against the successor.
		w.Header().Set("Retry-After", retryAfter(s.sched.met))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	view := job.View()
	view.Deduped = deduped
	writeJSON(w, http.StatusAccepted, view)
}

// retryAfter derives a Retry-After value from observed job latency.
func retryAfter(m *metrics) string {
	secs := int(m.jobLatency.quantile(0.5)) + 1
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconvItoa(secs)
}

func strconvItoa(n int) string {
	// strconv.Itoa without the import dance elsewhere in this file.
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 && i > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.sched.store.get(id)
	if !ok {
		// In a cluster the job may live on the ring owner it was proxied
		// to; ask the peers before giving up.
		if s.fanoutLookup(w, r, "/v1/jobs/"+id) {
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.store.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	if job.requestCancel("canceled by client") {
		s.sched.met.cancels.Add(1)
		if job.State() == JobCanceled {
			// Canceled on the spot (it was still queued); a running job
			// transitions when its worker observes the canceled context.
			s.sched.met.jobsCanceled.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleWitness(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.sched.store.get(id)
	if !ok {
		if s.fanoutLookup(w, r, "/v1/jobs/"+id+"/witness") {
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	if !job.State().Terminal() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished"})
		return
	}
	rep := job.Report()
	if rep == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no report (job canceled before a verdict)"})
		return
	}
	wit := rep.WitnessDoc()
	if wit == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no witness: every check passed"})
		return
	}
	writeJSON(w, http.StatusOK, wit)
}

func (s *Server) writeMetrics(w interface{ Write([]byte) (int, error) }) {
	s.sched.met.write(w,
		len(s.sched.queue), cap(s.sched.queue), s.cfg.Workers,
		s.ready(), s.sched.store.counts(), s.sched.sub, s.cfg.Cluster)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write([]byte("ok\n"))
}

// ready reports whether the daemon should receive traffic: it is not
// draining and the listing-service circuit breaker (if any) is closed.
func (s *Server) ready() bool {
	return !s.sched.isDraining() && s.sched.sub.ProviderHealthy()
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if !s.ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready\n"))
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}
