package service

// Cluster tests: an in-process fleet of daemons wired into one
// consistent-hash ring. Nodes advertise stable fake hosts (node0.cluster,
// node1.cluster, ...) mapped onto the per-run httptest listeners by a
// rewriting transport, so ring ownership — and therefore which assertions
// exercise the remote path — is deterministic across runs. The contract
// under test is the ISSUE's: clustering changes hit rates and placement,
// never verdicts.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/leakcheck"
)

// rewriteTransport dials stable advertise hosts via the real listeners.
type rewriteTransport struct{ hosts map[string]string }

func (rt rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if real, ok := rt.hosts[req.URL.Host]; ok {
		clone := req.Clone(req.Context())
		clone.URL.Host = real
		clone.URL.Scheme = "http"
		return http.DefaultTransport.RoundTrip(clone)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// swapHandler gives each listener a URL before the service behind it
// exists (the cluster node needs every member's URL at construction).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testFleet struct {
	svcs  []*Server
	ts    []*httptest.Server
	nodes []*cluster.Node
}

// startFleet boots n clustered daemons, each with its own substrate whose
// remote tier is the shared ring.
func startFleet(t *testing.T, n int, tweak func(i int, cfg *Config)) *testFleet {
	t.Helper()
	// Every fleet test doubles as a leak test: snapshot before the fleet
	// boots and assert settle after the last node has shut down (cleanups
	// run LIFO, so registering first runs last). The peer client's idle
	// ring connections are flushed so fd counts return to base.
	base := leakcheck.Take()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Assert(t, base)
	})
	f := &testFleet{
		svcs:  make([]*Server, n),
		ts:    make([]*httptest.Server, n),
		nodes: make([]*cluster.Node, n),
	}
	handlers := make([]*swapHandler, n)
	hosts := make(map[string]string, n)
	advertise := make([]string, n)
	for i := 0; i < n; i++ {
		handlers[i] = &swapHandler{}
		f.ts[i] = httptest.NewServer(handlers[i])
		advertise[i] = fmt.Sprintf("http://node%d.cluster", i)
		hosts[fmt.Sprintf("node%d.cluster", i)] = strings.TrimPrefix(f.ts[i].URL, "http://")
	}
	peerClient := &http.Client{
		Timeout:   2 * time.Second,
		Transport: rewriteTransport{hosts: hosts},
	}
	for i := 0; i < n; i++ {
		node := cluster.NewNode(advertise[i], advertise)
		node.SetHTTPClient(peerClient)
		sub, err := core.NewSubstrate(core.SubstrateConfig{RemoteTier: node.Tier()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Workers: 2, Substrate: sub, Cluster: node}
		if tweak != nil {
			tweak(i, &cfg)
		}
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i].set(svc.Handler())
		f.svcs[i], f.nodes[i] = svc, node
	}
	t.Cleanup(func() {
		for i := range f.svcs {
			f.ts[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := f.svcs[i].Shutdown(ctx); err != nil {
				t.Errorf("node %d shutdown: %v", i, err)
			}
			cancel()
		}
	})
	return f
}

// postJobRouted submits with the routed-loop header set, pinning the job
// to the addressed node (tests use it to control placement).
func postJobRouted(t *testing.T, ts *httptest.Server, req JobRequest) JobView {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(cluster.RoutedHeader, "1")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("routed submit: status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// verdictFingerprint renders the verdict-bearing part of a report —
// everything except timings and cache statistics, which legitimately vary
// with placement. Byte equality of fingerprints is the cluster soundness
// contract.
func verdictFingerprint(t *testing.T, rep *Report) string {
	t.Helper()
	if rep == nil {
		return "<no report>"
	}
	cp := *rep
	cp.Stats = nil
	if cp.Determinism != nil {
		d := *cp.Determinism
		d.DurationMS = 0
		cp.Determinism = &d
	}
	if cp.Idempotence != nil {
		d := *cp.Idempotence
		d.DurationMS = 0
		cp.Idempotence = &d
	}
	if cp.Invariant != nil {
		d := *cp.Invariant
		d.DurationMS = 0
		cp.Invariant = &d
	}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// clusterWorkload is the manifest mix the differential tests verify at
// every fleet size: a passing manifest, a determinism bug, a dependency
// cycle, and a solver-exercising semantic pair.
var clusterWorkload = []JobRequest{
	{Manifest: okManifest},
	{Manifest: buggyManifest},
	{Manifest: cycleManifest},
	{Manifest: semManifest, SemanticCommute: true},
}

// singleNodeFingerprints runs the workload on a fresh unclustered daemon.
func singleNodeFingerprints(t *testing.T, reqs []JobRequest) []string {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 2})
	out := make([]string, len(reqs))
	for i, req := range reqs {
		view, status := postJob(t, ts, req)
		if status != http.StatusAccepted {
			t.Fatalf("single-node submit %d: status %d", i, status)
		}
		out[i] = verdictFingerprint(t, waitTerminal(t, ts, view.ID).Report)
	}
	return out
}

// TestClusterVerdictsMatchSingleNode is the core differential guarantee:
// the same workload through a 3-node ring — submissions digest-routed,
// lifecycle polled through the entry node (exercising peer fan-out) —
// produces byte-identical verdicts to an unclustered daemon.
func TestClusterVerdictsMatchSingleNode(t *testing.T) {
	want := singleNodeFingerprints(t, clusterWorkload)
	f := startFleet(t, 3, nil)
	for i, req := range clusterWorkload {
		entry := f.ts[i%3]
		view, status := postJob(t, entry, req)
		if status != http.StatusAccepted {
			t.Fatalf("cluster submit %d: status %d", i, status)
		}
		got := verdictFingerprint(t, waitTerminal(t, entry, view.ID).Report)
		if got != want[i] {
			t.Errorf("workload %d: cluster verdict diverged\ncluster: %s\nsingle:  %s", i, got, want[i])
		}
	}
	// Each job ran on exactly one node (routedLocal counts executions:
	// self-owned entries plus routed arrivals), and nothing fell back.
	var local, proxied, fallbacks int64
	for _, svc := range f.svcs {
		local += svc.sched.met.routedLocal.Load()
		proxied += svc.sched.met.routedProxied.Load()
		fallbacks += svc.sched.met.proxyFallbacks.Load()
	}
	if local != int64(len(clusterWorkload)) || fallbacks != 0 {
		t.Errorf("routing accounting: local=%d proxied=%d fallbacks=%d", local, proxied, fallbacks)
	}
}

// TestClusterWarmRoundRemoteHits pins the cluster-wide warm path: a job
// computed on node 0 leaves every pair verdict reachable through the ring,
// so re-running the same manifest pinned to node 1 costs zero solver
// queries, with at least one verdict fetched from a peer.
func TestClusterWarmRoundRemoteHits(t *testing.T) {
	f := startFleet(t, 2, nil)
	req := JobRequest{Manifest: semManifest, SemanticCommute: true}

	cold := waitTerminal(t, f.ts[0], postJobRouted(t, f.ts[0], req).ID)
	if cold.Report == nil || cold.Report.Stats == nil || cold.Report.Stats.SemQueries == 0 {
		t.Fatalf("cold job should have run solver queries: %+v", cold.Report)
	}

	warm := waitTerminal(t, f.ts[1], postJobRouted(t, f.ts[1], req).ID)
	if verdictFingerprint(t, warm.Report) != verdictFingerprint(t, cold.Report) {
		t.Errorf("warm verdict diverged from cold")
	}
	if q := warm.Report.Stats.SemQueries; q != 0 {
		t.Errorf("warm job ran %d solver queries; the ring should have answered all of them", q)
	}
	// At least one verdict crossed the wire: either node 1 pulled it from
	// node 0 (remote hit) or node 0's write-through seeded node 1 (a put
	// that became a memory hit). Both counters are visible on /metrics.
	remoteHits := metricValue(t, scrapeMetrics(t, f.ts[1]), "rehearsald_qcache_remote_hits_total")
	puts := metricValue(t, scrapeMetrics(t, f.ts[0]), "rehearsald_qcache_remote_puts_total")
	if remoteHits+puts == 0 {
		t.Errorf("no verdict crossed the ring: remoteHits=%d puts=%d", remoteHits, puts)
	}
	if warm.Report.Stats.RemoteCacheHits != int(remoteHits) {
		t.Errorf("report remote_cache_hits=%d, node metrics say %d",
			warm.Report.Stats.RemoteCacheHits, remoteHits)
	}
}

// TestClusterMembershipChurn exercises join/leave mid-workload: verdicts
// never change, whatever the ring looked like when each job ran.
func TestClusterMembershipChurn(t *testing.T) {
	want := singleNodeFingerprints(t, clusterWorkload)
	f := startFleet(t, 3, nil)

	check := func(phase string, entries []int) {
		t.Helper()
		for i, req := range clusterWorkload {
			entry := f.ts[entries[i%len(entries)]]
			view, status := postJob(t, entry, req)
			if status != http.StatusAccepted {
				t.Fatalf("%s submit %d: status %d", phase, i, status)
			}
			got := verdictFingerprint(t, waitTerminal(t, entry, view.ID).Report)
			if got != want[i] {
				t.Errorf("%s: workload %d verdict diverged", phase, i)
			}
		}
	}

	check("full ring", []int{0, 1, 2})

	// Node 2 leaves: the survivors' rings shrink; keys it owned move.
	for i := 0; i < 2; i++ {
		if !f.nodes[i].RemovePeer("http://node2.cluster") {
			t.Fatalf("node %d: remove peer failed", i)
		}
	}
	check("after leave", []int{0, 1})

	// Node 2 rejoins: ownership returns exactly (consistent hashing).
	for i := 0; i < 2; i++ {
		if !f.nodes[i].AddPeer("http://node2.cluster") {
			t.Fatalf("node %d: re-add peer failed", i)
		}
	}
	check("after rejoin", []int{0, 1, 2})
}

// TestClusterDeadNodeFallback kills one node's listener while it is still
// on the others' rings: submissions owned by the dead node fall back to
// local execution — degraded caching, same verdicts, no failures.
func TestClusterDeadNodeFallback(t *testing.T) {
	want := singleNodeFingerprints(t, clusterWorkload)
	f := startFleet(t, 3, nil)
	f.ts[2].Close() // node 2 dies without leaving the ring

	for i, req := range clusterWorkload {
		entry := f.ts[i%2] // survivors only
		view, status := postJob(t, entry, req)
		if status != http.StatusAccepted {
			t.Fatalf("submit %d with dead peer: status %d", i, status)
		}
		got := verdictFingerprint(t, waitTerminal(t, entry, view.ID).Report)
		if got != want[i] {
			t.Errorf("workload %d: verdict diverged with a dead peer", i)
		}
	}
}

// TestClusterEndpoints covers the peer protocol and ring admin surface
// over real HTTP: ring info, peer add/remove, per-node stats, and the
// verdict GET/PUT wire including its validation.
func TestClusterEndpoints(t *testing.T) {
	f := startFleet(t, 2, nil)

	var info cluster.RingInfo
	getJSON(t, f.ts[0].URL+"/v1/ring", &info)
	if info.Self != "http://node0.cluster" || len(info.Members) != 2 {
		t.Fatalf("ring info = %+v", info)
	}

	// Add then remove a peer through the admin endpoints.
	resp, err := http.Post(f.ts[0].URL+"/v1/ring/peers", "application/json",
		strings.NewReader(`{"url":"http://node9.cluster"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	getJSON(t, f.ts[0].URL+"/v1/ring", &info)
	if len(info.Members) != 3 {
		t.Fatalf("after add: %+v", info)
	}
	delReq, _ := http.NewRequest(http.MethodDelete,
		f.ts[0].URL+"/v1/ring/peers?url=http://node9.cluster", nil)
	resp, err = http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	getJSON(t, f.ts[0].URL+"/v1/ring", &info)
	if len(info.Members) != 2 {
		t.Fatalf("after remove: %+v", info)
	}

	// Cluster stats decodes and names this node.
	var st ClusterStats
	getJSON(t, f.ts[0].URL+"/v1/cluster/stats", &st)
	if st.Self != "http://node0.cluster" || st.Remote == nil {
		t.Fatalf("cluster stats = %+v", st)
	}

	// Verdict wire: malformed keys are rejected, round trips work.
	resp, err = http.Get(f.ts[0].URL + "/v1/cache/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: status %d", resp.StatusCode)
	}

	// Metrics exposition includes the cluster series.
	scrape := scrapeMetrics(t, f.ts[0])
	for _, name := range []string{
		"rehearsald_cluster_members",
		"rehearsald_qcache_remote_hits_total",
		"rehearsald_qcache_disk_misses_total",
		"rehearsald_jobs_routed_local_total",
	} {
		if !strings.Contains(scrape, name) {
			// disk series only appear with a disk tier; skip that one.
			if name == "rehearsald_qcache_disk_misses_total" {
				continue
			}
			t.Errorf("metrics scrape missing %s", name)
		}
	}
	if got := metricValue(t, scrape, "rehearsald_cluster_members"); got != 2 {
		t.Errorf("rehearsald_cluster_members = %d", got)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
