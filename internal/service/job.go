package service

// Job lifecycle and the job store. The store is both the lifecycle index
// (GET /v1/jobs/{id}) and the warm result layer: finished jobs stay
// addressable by their request key for ResultTTL, so re-submitting the
// same manifest within the window is answered without enqueueing anything
// — the second pillar of request dedup next to singleflight coalescing of
// concurrent submissions.

import (
	"context"
	"sync"
	"time"
)

// JobState is a job's lifecycle state.
type JobState string

// The job lifecycle: queued → running → one of the three terminal states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"     // a verdict was produced (pass or fail)
	JobFailed   JobState = "failed"   // no verdict: manifest, timeout or infra failure
	JobCanceled JobState = "canceled" // canceled before a verdict (DELETE or drain)
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is one verification job. All mutable fields are guarded by mu; the
// request and identity fields are immutable after creation.
type Job struct {
	ID      string
	Key     string
	Req     JobRequest
	Created time.Time

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	report   *Report
	reason   *ErrorReport
	cancel   context.CancelFunc // set while running
	done     chan struct{}      // closed on any terminal transition
}

func newJob(id string, req JobRequest) *Job {
	return &Job{
		ID:      id,
		Key:     req.Key(),
		Req:     req,
		Created: time.Now(),
		state:   JobQueued,
		done:    make(chan struct{}),
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Report returns the job's report; nil until the job finished.
func (j *Job) Report() *Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// start transitions queued → running, recording the cancel hook; it
// reports false when the job is no longer queued (canceled while waiting).
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records the report and moves to the matching terminal state.
func (j *Job) finish(rep *Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.report = rep
	j.finished = time.Now()
	switch {
	case rep.Error == nil:
		j.state = JobDone
	case rep.Error.Class == ClassCanceled:
		j.state = JobCanceled
		j.reason = rep.Error
	default:
		j.state = JobFailed
		j.reason = rep.Error
	}
	j.cancel = nil
	close(j.done)
}

// requestCancel asks the job to stop: a queued job is canceled on the
// spot, a running one has its context canceled (the worker will observe
// ErrCanceled and finish the job as canceled). It reports whether the
// request had any effect.
func (j *Job) requestCancel(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.finished = time.Now()
		j.reason = &ErrorReport{Class: ClassCanceled, Message: reason}
		close(j.done)
		return true
	case JobRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

// View renders the job for JSON responses.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		State:   j.state,
		Created: j.Created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state.Terminal() {
		v.Report = j.report
		v.Reason = j.reason
	}
	return v
}

// JobView is the JSON shape of a job in API responses.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Deduped  bool     `json:"deduped,omitempty"` // this submission coalesced onto existing work
	Created  string   `json:"created,omitempty"`
	Started  string   `json:"started,omitempty"`
	Finished string   `json:"finished,omitempty"`
	Report   *Report  `json:"report,omitempty"`
	// Reason is the structured failure reason of a failed or canceled job
	// (duplicated from Report.Error when a report exists).
	Reason *ErrorReport `json:"reason,omitempty"`
}

// jobStore indexes jobs by ID and by request key, bounded by a record cap
// (oldest terminal jobs evicted first) and a TTL on the result layer.
type jobStore struct {
	cap int
	ttl time.Duration
	now func() time.Time // test hook

	mu    sync.Mutex
	byID  map[string]*Job
	byKey map[string]*Job
	order []*Job // insertion order, eviction scan
}

func newJobStore(cap int, ttl time.Duration) *jobStore {
	return &jobStore{
		cap:   cap,
		ttl:   ttl,
		now:   time.Now,
		byID:  make(map[string]*Job),
		byKey: make(map[string]*Job),
	}
}

// expired reports whether a terminal job has outlived the result TTL.
func (s *jobStore) expired(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && !j.finished.IsZero() &&
		s.ttl > 0 && s.now().Sub(j.finished) > s.ttl
}

// get returns the job by ID.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// lookupKey returns the live or still-fresh job for a request key. Expired
// results are dropped from the key index so the caller re-runs the work.
func (s *jobStore) lookupKey(key string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.byKey[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	if s.expired(j) {
		s.mu.Lock()
		if s.byKey[key] == j {
			delete(s.byKey, key)
		}
		s.mu.Unlock()
		return nil, false
	}
	return j, true
}

// insert registers a new job, evicting the oldest terminal records beyond
// the cap. Live (queued/running) jobs are never evicted — admission
// control bounds how many of those can exist.
func (s *jobStore) insert(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.ID] = j
	s.byKey[j.Key] = j
	s.order = append(s.order, j)
	if s.cap <= 0 || len(s.byID) <= s.cap {
		return
	}
	kept := s.order[:0]
	for i, old := range s.order {
		if len(s.byID) <= s.cap {
			kept = append(kept, s.order[i:]...)
			break
		}
		if old.State().Terminal() {
			delete(s.byID, old.ID)
			if s.byKey[old.Key] == old {
				delete(s.byKey, old.Key)
			}
			continue
		}
		kept = append(kept, old)
	}
	s.order = kept
}

// counts tallies jobs by state.
func (s *jobStore) counts() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int, 5)
	for _, j := range s.byID {
		out[j.State()]++
	}
	return out
}
