// Package service is rehearsald: a long-running verification service that
// accepts manifest-analysis jobs over HTTP/JSON and runs them on a bounded
// worker pool sharing one warm core.Substrate — pooled incremental
// solvers, the hash-consed interner, the in-memory verdict cache and its
// on-disk tier all amortize across requests, which is exactly the per-run
// setup cost that makes one-shot CLI verification too slow for CI.
//
// The service layer adds what a multi-tenant daemon needs and the CLI
// never did:
//
//   - admission control: a queue-depth cap answered with 429 + Retry-After
//     and per-job deadlines, on top of the engine's always-on solver
//     budget;
//   - request dedup: identical (manifest, platform, check set) submissions
//     coalesce onto one in-flight job via singleflight, and re-submissions
//     of completed work are answered from a TTL-bounded result layer with
//     zero new solver queries;
//   - lifecycle: jobs move queued → running → {done, failed, canceled},
//     are cancelable mid-run (DELETE, or a SIGTERM drain), and expose
//     their counterexample witness as a separate document;
//   - observability: /metrics (queue depth, jobs by state, cache hit
//     ratios, per-check latency histograms), /healthz and /readyz wired to
//     the listing-service circuit breaker.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// Check names accepted in JobRequest.Checks.
const (
	CheckDeterminism = "determinism"
	CheckIdempotence = "idempotence"
	CheckRepair      = "repair"
)

// JobRequest is the body of POST /v1/jobs: one manifest to verify and the
// checks to run on it. The same struct parameterizes the CLI's -json mode,
// so a manifest verified locally and one verified through the daemon go
// through identical code.
type JobRequest struct {
	// Manifest is the Puppet manifest source text.
	Manifest string `json:"manifest"`
	// Platform selects facts and the package catalog ("ubuntu" default, or
	// "centos").
	Platform string `json:"platform,omitempty"`
	// Node selects the node block (default "default").
	Node string `json:"node,omitempty"`
	// Checks lists the analyses to run: determinism, idempotence, repair.
	// Empty means determinism + idempotence. Determinism always runs — the
	// other checks are only meaningful on top of its verdict.
	Checks []string `json:"checks,omitempty"`
	// Invariant, when non-empty ("path=content"), additionally checks the
	// section-5 file invariant.
	Invariant string `json:"invariant,omitempty"`
	// SemanticCommute strengthens the syntactic commutativity analysis
	// with solver-based pairwise equivalence (Options.SemanticCommute).
	SemanticCommute bool `json:"semantic_commute,omitempty"`
	// WellFormedInit restricts initial states to well-formed trees.
	WellFormedInit bool `json:"well_formed_init,omitempty"`
	// TimeoutMS bounds this job's wall-clock time in milliseconds; 0 or
	// anything above the server's per-job cap means the cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Base, when non-empty, names an earlier job (by ID) whose manifest is
	// the base version for differential verification: the scheduler
	// resolves it to that job's manifest source, and the determinacy check
	// re-verifies only resource pairs whose compiled models changed,
	// inheriting the rest from the warm verdict tiers. CI pipelines chain
	// each commit's job to its parent's this way. The base job need not
	// have finished — an unfinished base only means fewer warm verdicts to
	// inherit, never a different verdict.
	Base string `json:"base,omitempty"`
	// BaseManifest is the base version's manifest source, inline. Set it
	// directly when no prior job exists (the CLI's -diff mode does);
	// mutually exclusive with Base.
	BaseManifest string `json:"base_manifest,omitempty"`
}

// Normalize fills defaults and canonicalizes the check set (sorted,
// deduplicated, aliases resolved) so equal requests have equal digests.
func (r JobRequest) Normalize() JobRequest {
	if r.Platform == "" {
		r.Platform = "ubuntu"
	}
	if r.Node == "" {
		r.Node = "default"
	}
	if len(r.Checks) == 0 {
		r.Checks = []string{CheckDeterminism, CheckIdempotence}
	}
	set := make(map[string]bool, len(r.Checks)+1)
	set[CheckDeterminism] = true // determinism always runs
	for _, c := range r.Checks {
		c = strings.ToLower(strings.TrimSpace(c))
		if c == "determinacy" { // the paper's noun; accept both
			c = CheckDeterminism
		}
		set[c] = true
	}
	checks := make([]string, 0, len(set))
	for c := range set {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	r.Checks = checks
	return r
}

// Validate reports the first problem with a normalized request.
func (r JobRequest) Validate() error {
	if strings.TrimSpace(r.Manifest) == "" {
		return fmt.Errorf("manifest must not be empty")
	}
	for _, c := range r.Checks {
		switch c {
		case CheckDeterminism, CheckIdempotence, CheckRepair:
		default:
			return fmt.Errorf("unknown check %q (want determinism, idempotence or repair)", c)
		}
	}
	if r.Invariant != "" {
		if _, _, ok := strings.Cut(r.Invariant, "="); !ok {
			return fmt.Errorf("invariant must be path=content")
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	if r.Base != "" && r.BaseManifest != "" {
		return fmt.Errorf("base and base_manifest are mutually exclusive")
	}
	return nil
}

// Has reports whether the normalized request includes the named check.
func (r JobRequest) Has(check string) bool {
	for _, c := range r.Checks {
		if c == check {
			return true
		}
	}
	return false
}

// Key is the request's content address: equal keys mean equal verification
// work, so the scheduler coalesces them onto one job and the result layer
// answers re-submissions without re-running anything. The timeout is
// deliberately excluded — a longer deadline asks the same question. The
// base manifest participates (a differential job reports different stats
// than a full one), but the Base job reference does not: the scheduler
// resolves it to BaseManifest before keying, so two jobs chained to
// different base jobs with identical manifests still coalesce.
func (r JobRequest) Key() string {
	h := sha256.New()
	manifest := sha256.Sum256([]byte(r.Manifest))
	h.Write(manifest[:])
	fmt.Fprintf(h, "|%s|%s|%s|%s|%t|%t",
		r.Platform, r.Node, strings.Join(r.Checks, ","), r.Invariant,
		r.SemanticCommute, r.WellFormedInit)
	if r.BaseManifest != "" {
		base := sha256.Sum256([]byte(r.BaseManifest))
		h.Write([]byte("|base|"))
		h.Write(base[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ApplyTo overlays the request's per-job knobs on a set of base options.
// The scheduler binds the result to the substrate and adds context and
// deadline before running.
func (r JobRequest) ApplyTo(opts core.Options) core.Options {
	opts.Platform = r.Platform
	opts.NodeName = r.Node
	if r.SemanticCommute {
		opts.SemanticCommute = true
	}
	if r.WellFormedInit {
		opts.WellFormedInit = true
	}
	return opts
}

// Timeout resolves the job's effective deadline under the server cap.
func (r JobRequest) Timeout(cap time.Duration) time.Duration {
	d := time.Duration(r.TimeoutMS) * time.Millisecond
	if d <= 0 || (cap > 0 && d > cap) {
		return cap
	}
	return d
}
