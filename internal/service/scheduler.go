package service

// The scheduler: a bounded queue feeding a fixed worker pool, all workers
// sharing one warm core.Substrate. Admission control is structural — the
// queue has a hard depth cap and a full queue rejects with ErrQueueFull
// (the HTTP layer turns that into 429 + Retry-After) — and dedup is
// content-addressed: submissions with equal request keys coalesce onto one
// job via a qcache singleflight Group, and re-submissions of finished work
// are answered from the job store's TTL-bounded result layer without
// touching the queue at all.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/qcache"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull reports that admission control rejected the job: the
	// queue is at capacity. Retry after a backoff.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports that the server is shutting down and accepts no
	// new work.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownBase reports that a differential submission named a base
	// job the store no longer holds (never existed, or evicted/expired).
	// The client should re-submit without a base — a full verification —
	// or chain to a fresher job.
	ErrUnknownBase = errors.New("service: unknown base job")
)

// Config parameterizes the service.
type Config struct {
	// Workers is the number of concurrent verification workers; 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth caps jobs waiting to run; a full queue rejects new
	// submissions with 429. 0 means 64.
	QueueDepth int
	// JobTimeout caps each job's wall-clock time; 0 means 10 minutes (the
	// paper's benchmark limit). Requests may ask for less, never more.
	JobTimeout time.Duration
	// ResultTTL is how long finished jobs keep answering re-submissions
	// from the result layer; 0 means 15 minutes.
	ResultTTL time.Duration
	// MaxJobs bounds job records held for lifecycle queries; oldest
	// finished jobs are evicted beyond it. 0 means 4096.
	MaxJobs int
	// MaxBodyBytes caps request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// Substrate is the shared warm state; nil builds a default (memory-only
	// caches, built-in catalog).
	Substrate *core.Substrate
	// BaseOptions seeds every job's engine options before the request's
	// overlays; zero means core.DefaultOptions(). Platform/NodeName are
	// per-request and overwritten.
	BaseOptions *core.Options
	// Faults, when non-nil, wraps the HTTP handler in the deterministic
	// fault-injection middleware so chaos testing works against the daemon
	// out of the box.
	Faults *faults.Plan
	// Cluster, when non-nil, joins this daemon to a rehearsald cluster:
	// the node's ring tier should also be attached to the Substrate (see
	// core.SubstrateConfig.RemoteTier), submissions are digest-routed to
	// their ring owner, and the peer cache/ring endpoints are served.
	Cluster *cluster.Node
	// ModeledJobLatency, when > 0, floors each job's execution time with a
	// sleep. Benchmarks use it to model real per-job work (solver time,
	// catalog I/O) so scheduling and routing effects are measurable on one
	// machine; production leaves it 0.
	ModeledJobLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// scheduler owns the queue, the workers and the job store.
type scheduler struct {
	cfg   Config
	sub   *core.Substrate
	base  core.Options
	store *jobStore
	met   *metrics

	flight qcache.Group[string, *submitOutcome]

	// admitMu guards the queue against a send racing the drain-time close:
	// submitters hold it shared, drain holds it exclusively.
	admitMu  sync.RWMutex
	queue    chan *Job
	draining bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	seq        int64 // job sequence, under admitMu (write side only on submit)
	seqMu      sync.Mutex
}

// submitOutcome is what a submission resolves to before HTTP rendering.
type submitOutcome struct {
	job   *Job
	fresh bool // this submission created the job (vs dedup/result hit)
}

func newScheduler(cfg Config) (*scheduler, error) {
	cfg = cfg.withDefaults()
	sub := cfg.Substrate
	if sub == nil {
		var err error
		sub, err = core.NewSubstrate(core.SubstrateConfig{})
		if err != nil {
			return nil, err
		}
	}
	base := core.DefaultOptions()
	if cfg.BaseOptions != nil {
		base = *cfg.BaseOptions
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		cfg:        cfg,
		sub:        sub,
		base:       base,
		store:      newJobStore(cfg.MaxJobs, cfg.ResultTTL),
		met:        &metrics{},
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// submit admits one job request: a result-layer or in-flight hit returns
// the existing job (deduped true), otherwise a new job is created and
// enqueued. Admission failures return ErrQueueFull or ErrDraining.
func (s *scheduler) submit(req JobRequest) (job *Job, deduped bool, err error) {
	req, err = s.resolveBase(req)
	if err != nil {
		return nil, false, err
	}
	key := req.Key()
	out, err, shared := s.flight.Do(key, func() (*submitOutcome, error) {
		// The result/dedup layer: a live job or a finished one inside the
		// TTL answers the submission without any new work.
		if existing, ok := s.store.lookupKey(key); ok {
			if existing.State().Terminal() {
				s.met.resultHits.Add(1)
			} else {
				s.met.dedupCoalesced.Add(1)
			}
			return &submitOutcome{job: existing}, nil
		}
		s.admitMu.RLock()
		defer s.admitMu.RUnlock()
		if s.draining {
			s.met.drainRejects.Add(1)
			return nil, ErrDraining
		}
		s.seqMu.Lock()
		s.seq++
		id := fmt.Sprintf("j%06d-%s", s.seq, key[:12])
		s.seqMu.Unlock()
		j := newJob(id, req)
		select {
		case s.queue <- j:
		default:
			s.met.admissionRejects.Add(1)
			return nil, ErrQueueFull
		}
		s.store.insert(j)
		s.met.submitted.Add(1)
		return &submitOutcome{job: j, fresh: true}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if shared && out.fresh {
		// Concurrent identical submissions coalesced on the creator's
		// singleflight call: all but the creator are dedup hits.
		s.met.dedupCoalesced.Add(1)
	}
	return out.job, !out.fresh || shared, nil
}

// resolveBase normalizes the request and resolves a base job reference to
// its manifest source, so the job is self-contained: content-addressed on
// the base source, immune to the base job's later eviction, and — in a
// cluster — routable to a peer that has never seen the base job ID. Base
// IDs are node-local, so resolution must happen on the node that received
// the submission, before any routing; a request that already carries a
// BaseManifest (one we routed here) resolves to itself.
func (s *scheduler) resolveBase(req JobRequest) (JobRequest, error) {
	req = req.Normalize()
	if req.Base == "" {
		return req, nil
	}
	base, ok := s.store.get(req.Base)
	if !ok {
		return req, fmt.Errorf("%w: %q", ErrUnknownBase, req.Base)
	}
	req.BaseManifest = base.Req.Manifest
	req.Base = ""
	return req, nil
}

// worker runs jobs until the queue closes.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job end to end.
func (s *scheduler) runJob(job *Job) {
	// A drain cancels everything derived from baseCtx; jobs still queued at
	// that point are canceled without running.
	if s.baseCtx.Err() != nil {
		job.requestCancel("server shutting down")
		s.met.jobsCanceled.Add(1)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !job.start(cancel) {
		return // canceled while queued
	}
	s.met.running.Add(1)
	start := time.Now()

	opts := s.sub.Bind(job.Req.ApplyTo(s.base))
	opts.Context = ctx
	opts.Timeout = job.Req.Timeout(s.cfg.JobTimeout)

	if d := s.cfg.ModeledJobLatency; d > 0 {
		// Model real per-job work with a cancelable sleep floor. Sleeps
		// don't burn CPU, so N colocated bench nodes each keep their full
		// modeled capacity — aggregate throughput then reflects scheduling
		// and routing, not contention for one machine's cores.
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}
	rep := BuildReport(job.Req, opts)
	job.finish(rep)
	s.met.running.Add(-1)
	s.met.jobLatency.observe(time.Since(start))
	s.met.absorb(rep)
	switch job.State() {
	case JobDone:
		s.met.jobsDone.Add(1)
	case JobFailed:
		s.met.jobsFailed.Add(1)
	case JobCanceled:
		s.met.jobsCanceled.Add(1)
	}
}

// drain stops admission, cancels queued and in-flight jobs, and waits for
// the workers — bounded by ctx — so a SIGTERM never strands a goroutine or
// leaves a job in a non-terminal state.
func (s *scheduler) drain(ctx context.Context) error {
	s.admitMu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	if !alreadyDraining {
		close(s.queue)
	}
	s.admitMu.Unlock()
	if alreadyDraining {
		return nil
	}
	// Cancel in-flight work: running jobs observe ErrCanceled through
	// Options.Context and finish as canceled; jobs still queued are
	// canceled by the workers as they dequeue them.
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain incomplete: %w", ctx.Err())
	}
}

// isDraining reports whether the scheduler has begun shutting down.
func (s *scheduler) isDraining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}
