package service

// Observability surface: counters and histograms kept with atomics (the
// hot path never takes a lock for metrics) and rendered in Prometheus text
// exposition format by GET /metrics. Cache effectiveness is harvested from
// two places — per-job core.Stats deltas (solver queries, semantic-cache
// and disk hits) accumulated as jobs finish, and the substrate's own cache
// snapshots at scrape time — so both "work the engine did" and "state the
// daemon holds" are visible.

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// numBuckets must equal len(latencyBuckets); checked at init.
const numBuckets = 13

func init() {
	if len(latencyBuckets) != numBuckets {
		panic("service: numBuckets out of sync with latencyBuckets")
	}
}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	counts [numBuckets + 1]atomic.Int64 // per bucket, last = +Inf
	sum    atomic.Int64                 // nanoseconds
	total  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// write renders the histogram in Prometheus exposition format.
func (h *histogram) write(w io.Writer, name string, labels string) {
	series := func(suffix string) string {
		if labels == "" {
			return name + suffix
		}
		return fmt.Sprintf("%s%s{%s}", name, suffix, trimComma(labels))
	}
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, ub, cum)
	}
	cum += h.counts[numBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s %g\n", series("_sum"), time.Duration(h.sum.Load()).Seconds())
	fmt.Fprintf(w, "%s %d\n", series("_count"), h.total.Load())
}

// quantile approximates the q-quantile from the bucket counts (upper bound
// of the bucket the quantile falls in; +Inf reported as the largest
// finite bound). Benchmark reporting uses it; /metrics exposes raw
// buckets.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		if cum > rank {
			return ub
		}
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

func trimComma(labels string) string {
	if n := len(labels); n > 0 && labels[n-1] == ',' {
		return labels[:n-1]
	}
	return labels
}

// metrics is the daemon's counter set.
type metrics struct {
	submitted        atomic.Int64 // POST admissions (one per job created)
	admissionRejects atomic.Int64 // 429s: queue at capacity
	drainRejects     atomic.Int64 // 503s: submitted while draining
	dedupCoalesced   atomic.Int64 // submissions attached to an in-flight job
	resultHits       atomic.Int64 // submissions answered by the finished-result layer
	cancels          atomic.Int64 // DELETE cancellations accepted

	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64
	running      atomic.Int64 // gauge

	// Engine counters accumulated from each finished job's core.Stats.
	solverQueries   atomic.Int64
	semCacheHits    atomic.Int64
	diskCacheHits   atomic.Int64
	remoteCacheHits atomic.Int64
	solverReuses    atomic.Int64
	internHits      atomic.Int64

	// SAT search counters summed over every query the engine issued.
	solverDecisions    atomic.Int64
	solverPropagations atomic.Int64
	solverConflicts    atomic.Int64
	solverRestarts     atomic.Int64

	// Portfolio-racing counters (all zero unless -portfolio is set).
	portfolioEscalations atomic.Int64
	portfolioRaces       atomic.Int64

	// Cluster routing counters (all zero outside a cluster).
	routedLocal    atomic.Int64 // submissions this node owned and ran
	routedProxied  atomic.Int64 // submissions forwarded to their ring owner
	proxyFallbacks atomic.Int64 // forwards that failed and ran locally instead
	fanoutLookups  atomic.Int64 // job GETs answered by asking peers

	detLatency  histogram
	idemLatency histogram
	jobLatency  histogram
}

// absorb folds one finished report's engine stats into the counters.
func (m *metrics) absorb(rep *Report) {
	if rep == nil {
		return
	}
	if rep.Stats != nil {
		m.solverQueries.Add(int64(rep.Stats.SemQueries))
		m.semCacheHits.Add(int64(rep.Stats.SemCacheHits))
		m.diskCacheHits.Add(int64(rep.Stats.DiskCacheHits))
		m.remoteCacheHits.Add(int64(rep.Stats.RemoteCacheHits))
		m.solverReuses.Add(int64(rep.Stats.SolverReuses))
		m.internHits.Add(rep.Stats.InternHits)
		m.solverDecisions.Add(rep.Stats.SolverDecisions)
		m.solverPropagations.Add(rep.Stats.SolverPropagations)
		m.solverConflicts.Add(rep.Stats.SolverConflicts)
		m.solverRestarts.Add(rep.Stats.SolverRestarts)
		m.portfolioEscalations.Add(int64(rep.Stats.PortfolioEscalations))
		m.portfolioRaces.Add(int64(rep.Stats.PortfolioRaces))
	}
	if rep.Determinism != nil {
		m.detLatency.observe(time.Duration(rep.Determinism.DurationMS * float64(time.Millisecond)))
	}
	if rep.Idempotence != nil {
		m.idemLatency.observe(time.Duration(rep.Idempotence.DurationMS * float64(time.Millisecond)))
	}
}

// write renders every counter, plus scrape-time snapshots of the shared
// substrate and queue, in Prometheus text format.
func (m *metrics) write(w io.Writer, queueDepth, queueCap, workers int, ready bool, counts map[JobState]int, sub *core.Substrate, node *cluster.Node) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	p("rehearsald_up 1")
	p("rehearsald_ready %d", b2i(ready))
	p("rehearsald_workers %d", workers)
	p("rehearsald_queue_depth %d", queueDepth)
	p("rehearsald_queue_capacity %d", queueCap)
	p("rehearsald_jobs_running %d", m.running.Load())
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		p("rehearsald_jobs{state=%q} %d", string(st), counts[st])
	}
	p("rehearsald_jobs_submitted_total %d", m.submitted.Load())
	p("rehearsald_jobs_done_total %d", m.jobsDone.Load())
	p("rehearsald_jobs_failed_total %d", m.jobsFailed.Load())
	p("rehearsald_jobs_canceled_total %d", m.jobsCanceled.Load())
	p("rehearsald_admission_rejects_total %d", m.admissionRejects.Load())
	p("rehearsald_drain_rejects_total %d", m.drainRejects.Load())
	p("rehearsald_dedup_coalesced_total %d", m.dedupCoalesced.Load())
	p("rehearsald_result_hits_total %d", m.resultHits.Load())
	p("rehearsald_cancels_total %d", m.cancels.Load())

	p("rehearsald_solver_queries_total %d", m.solverQueries.Load())
	p("rehearsald_sem_cache_hits_total %d", m.semCacheHits.Load())
	p("rehearsald_disk_cache_hits_total %d", m.diskCacheHits.Load())
	p("rehearsald_remote_cache_hits_total %d", m.remoteCacheHits.Load())
	p("rehearsald_solver_reuses_total %d", m.solverReuses.Load())
	p("rehearsald_intern_hits_total %d", m.internHits.Load())
	p("rehearsald_solver_decisions_total %d", m.solverDecisions.Load())
	p("rehearsald_solver_propagations_total %d", m.solverPropagations.Load())
	p("rehearsald_solver_conflicts_total %d", m.solverConflicts.Load())
	p("rehearsald_solver_restarts_total %d", m.solverRestarts.Load())
	p("rehearsald_portfolio_escalations_total %d", m.portfolioEscalations.Load())
	p("rehearsald_portfolio_races_total %d", m.portfolioRaces.Load())
	if q, h := m.solverQueries.Load(), m.semCacheHits.Load(); q+h > 0 {
		p("rehearsald_sem_cache_hit_ratio %.4f", float64(h)/float64(q+h))
	} else {
		p("rehearsald_sem_cache_hit_ratio 0")
	}

	if sub != nil {
		qs := sub.QueryCacheStats()
		p("rehearsald_qcache_hits_total %d", qs.Hits)
		p("rehearsald_qcache_misses_total %d", qs.Misses)
		p("rehearsald_qcache_coalesced_total %d", qs.Coalesced)
		p("rehearsald_qcache_evictions_total %d", qs.Evictions)
		p("rehearsald_qcache_size %d", qs.Size)
		if qs.Hits+qs.Misses > 0 {
			p("rehearsald_qcache_hit_ratio %.4f", float64(qs.Hits)/float64(qs.Hits+qs.Misses))
		} else {
			p("rehearsald_qcache_hit_ratio 0")
		}
		if ds, ok := sub.DiskStats(); ok {
			p("rehearsald_qcache_disk_hits_total %d", ds.Hits)
			p("rehearsald_qcache_disk_misses_total %d", ds.Misses)
			p("rehearsald_qcache_disk_writes_total %d", ds.Writes)
			p("rehearsald_qcache_disk_evictions_total %d", ds.Evictions)
			p("rehearsald_qcache_disk_invalidated_total %d", ds.Invalidated)
			p("rehearsald_qcache_disk_files %d", ds.Files)
			p("rehearsald_qcache_disk_bytes %d", ds.Bytes)
			// Corrupt entries are quarantined, not deleted, so the two
			// series track together; both names exposed for dashboards.
			p("rehearsald_qcache_disk_corrupt_total %d", ds.CorruptEntries)
			p("rehearsald_qcache_disk_quarantined_total %d", ds.CorruptEntries)
		}
		if rs, ok := sub.RemoteStats(); ok {
			p("rehearsald_qcache_remote_hits_total %d", rs.Hits)
			p("rehearsald_qcache_remote_misses_total %d", rs.Misses)
			p("rehearsald_qcache_remote_puts_total %d", rs.Puts)
			p("rehearsald_qcache_remote_errors_total %d", rs.Errors)
		}
		if cs, ok := sub.ClientStats(); ok {
			p("rehearsald_pkgdb_attempts_total %d", cs.Attempts)
			p("rehearsald_pkgdb_retries_total %d", cs.Retries)
			p("rehearsald_pkgdb_snapshot_serves_total %d", cs.SnapshotServes)
			p("rehearsald_pkgdb_breaker_opens_total %d", cs.BreakerOpens)
			p("rehearsald_pkgdb_breaker_fast_fails_total %d", cs.BreakerFastFails)
		}
		p("rehearsald_pkgdb_healthy %d", b2i(sub.ProviderHealthy()))
	}

	if node != nil {
		p("rehearsald_cluster_members %d", len(node.Members()))
		p("rehearsald_cluster_dead_peers %d", len(node.DeadPeers()))
		p("rehearsald_cluster_dead_skips_total %d", node.DeadSkips())
		p("rehearsald_jobs_routed_local_total %d", m.routedLocal.Load())
		p("rehearsald_jobs_routed_proxied_total %d", m.routedProxied.Load())
		p("rehearsald_jobs_proxy_fallbacks_total %d", m.proxyFallbacks.Load())
		p("rehearsald_jobs_fanout_lookups_total %d", m.fanoutLookups.Load())
	}

	m.detLatency.write(w, "rehearsald_check_latency_seconds", `check="determinism",`)
	m.idemLatency.write(w, "rehearsald_check_latency_seconds", `check="idempotence",`)
	m.jobLatency.write(w, "rehearsald_job_latency_seconds", "")
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
