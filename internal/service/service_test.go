package service

// End-to-end tests of the daemon: job lifecycle over HTTP, the dedup /
// result layer (a second identical submission must cost zero new solver
// queries), admission control, cancellation and graceful drain. A gated
// package-listing provider makes the concurrency deterministic: jobs whose
// manifests reference packages block inside Load until the test releases
// the gate (or their context is canceled).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/pkgdb"
)

const okManifest = `
package {'ntp': ensure => present }
file {'/etc/ntp.conf': content => 'server pool.ntp.org', require => Package['ntp'] }
`

const buggyManifest = `
package {'ntp': ensure => present }
file {'/etc/ntp.conf': content => 'server pool.ntp.org' }
`

const cycleManifest = `
package {'ntp': ensure => present, require => Package['git'] }
package {'git': ensure => present, require => Package['ntp'] }
`

// semManifest issues a semantic-commutativity solver query: gcc's closure
// pulls in make, so the pair writes overlapping paths and does not commute
// syntactically. The closures are small enough to stay fast under -race.
const semManifest = `
package {'make': ensure => present }
package {'gcc': ensure => present }
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	// Snapshot before anything is spawned; the matching Assert is
	// registered first so it runs last, after the server and scheduler
	// have been torn down — every test through this helper is a leak test.
	base := leakcheck.Take()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		leakcheck.Assert(t, base)
	})
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// waitTerminal polls the job until it reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view := getJob(t, ts, id)
		if view.State.Terminal() {
			return view
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue extracts one un-labelled counter from a metrics scrape.
func metricValue(t *testing.T, scrape, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, scrape)
	return 0
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// A passing manifest.
	view, status := postJob(t, ts, JobRequest{Manifest: okManifest})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	if view.ID == "" || view.Deduped {
		t.Fatalf("unexpected accepted view: %+v", view)
	}
	final := waitTerminal(t, ts, view.ID)
	if final.State != JobDone {
		t.Fatalf("state %s, want done (reason %+v)", final.State, final.Reason)
	}
	if final.Report == nil || final.Report.Verdict != VerdictPass {
		t.Fatalf("report: %+v", final.Report)
	}
	if final.Report.Determinism == nil || !final.Report.Determinism.Ok {
		t.Fatalf("determinism report: %+v", final.Report.Determinism)
	}

	// No witness for a passing job.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/witness")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("witness of passing job: status %d, want 404", resp.StatusCode)
	}

	// A failing manifest exposes its witness as a separate document.
	view2, _ := postJob(t, ts, JobRequest{Manifest: buggyManifest})
	final2 := waitTerminal(t, ts, view2.ID)
	if final2.State != JobDone || final2.Report.Verdict != VerdictFail {
		t.Fatalf("buggy job: state %s report %+v", final2.State, final2.Report)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + view2.ID + "/witness")
	if err != nil {
		t.Fatal(err)
	}
	var wit Witness
	if err := json.NewDecoder(resp.Body).Decode(&wit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(wit.Order1) == 0 || len(wit.Order2) == 0 {
		t.Fatalf("witness: status %d doc %+v", resp.StatusCode, wit)
	}

	// A cyclic manifest ends in the failed state with a structured reason
	// naming the offending resources.
	view3, _ := postJob(t, ts, JobRequest{Manifest: cycleManifest})
	final3 := waitTerminal(t, ts, view3.ID)
	if final3.State != JobFailed || final3.Report.Verdict != VerdictFail {
		t.Fatalf("cycle job: state %s verdict %+v", final3.State, final3.Report)
	}
	if final3.Reason == nil || final3.Reason.Class != ClassManifest ||
		len(final3.Reason.Cycle) == 0 {
		t.Fatalf("cycle reason: %+v", final3.Reason)
	}
	for _, res := range final3.Reason.Cycle {
		if !strings.Contains(res, "Package[") {
			t.Errorf("cycle entry %q should name a resource", res)
		}
	}

	// Unknown jobs and bad bodies.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	if _, status := postJob(t, ts, JobRequest{}); status != http.StatusBadRequest {
		t.Errorf("empty manifest: status %d, want 400", status)
	}
	if _, status := postJob(t, ts, JobRequest{Manifest: okManifest, Checks: []string{"nope"}}); status != http.StatusBadRequest {
		t.Errorf("bad check: status %d, want 400", status)
	}
}

// TestDedupSecondSubmissionZeroQueries is the acceptance criterion of the
// dedup layer: re-submitting an identical manifest within the result TTL
// is answered from the finished job — zero new solver queries, asserted
// through /metrics.
func TestDedupSecondSubmissionZeroQueries(t *testing.T) {
	core.ResetSolverPools()
	_, ts := newTestServer(t, Config{Workers: 2})

	// Determinism only: the point is the solver-query counter, and the
	// idempotence check over these packages' large closures is slow under
	// the race detector.
	req := JobRequest{Manifest: semManifest, SemanticCommute: true, Checks: []string{CheckDeterminism}}
	view, _ := postJob(t, ts, req)
	first := waitTerminal(t, ts, view.ID)
	if first.State != JobDone {
		t.Fatalf("first run: %+v", first)
	}
	before := scrapeMetrics(t, ts)
	queries := metricValue(t, before, "rehearsald_solver_queries_total")
	if queries == 0 {
		t.Fatal("expected the first run to issue solver queries")
	}

	view2, status := postJob(t, ts, req)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", status)
	}
	if !view2.Deduped {
		t.Fatalf("resubmission not marked deduped: %+v", view2)
	}
	if view2.ID != view.ID {
		t.Fatalf("resubmission got a new job: %s vs %s", view2.ID, view.ID)
	}
	if view2.State != JobDone || view2.Report == nil {
		t.Fatalf("resubmission should carry the finished report: %+v", view2)
	}

	after := scrapeMetrics(t, ts)
	if q2 := metricValue(t, after, "rehearsald_solver_queries_total"); q2 != queries {
		t.Errorf("second submission cost %d new solver queries, want 0", q2-queries)
	}
	if hits := metricValue(t, after, "rehearsald_result_hits_total"); hits < 1 {
		t.Errorf("result_hits_total = %d, want >= 1", hits)
	}
	if subs := metricValue(t, after, "rehearsald_jobs_submitted_total"); subs != 1 {
		t.Errorf("jobs_submitted_total = %d, want 1 (no second job created)", subs)
	}
}

// gateProvider wraps the built-in catalog but blocks every context-aware
// query until the gate channel is closed (or the context is canceled),
// making job concurrency deterministic in tests.
type gateProvider struct {
	cat  pkgdb.Provider
	gate chan struct{}
}

func newGateProvider() *gateProvider {
	return &gateProvider{cat: pkgdb.DefaultCatalog(), gate: make(chan struct{})}
}

func (g *gateProvider) wait(ctx context.Context) error {
	select {
	case <-g.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gateProvider) Lookup(platform, name string) (*pkgdb.Package, error) {
	<-g.gate
	return g.cat.Lookup(platform, name)
}

func (g *gateProvider) Closure(platform, name string) ([]*pkgdb.Package, error) {
	<-g.gate
	return g.cat.Closure(platform, name)
}

func (g *gateProvider) ReverseDependents(platform, name string) ([]*pkgdb.Package, error) {
	<-g.gate
	return g.cat.ReverseDependents(platform, name)
}

func (g *gateProvider) LookupContext(ctx context.Context, platform, name string) (*pkgdb.Package, error) {
	if err := g.wait(ctx); err != nil {
		return nil, err
	}
	return g.cat.Lookup(platform, name)
}

func (g *gateProvider) ClosureContext(ctx context.Context, platform, name string) ([]*pkgdb.Package, error) {
	if err := g.wait(ctx); err != nil {
		return nil, err
	}
	return g.cat.Closure(platform, name)
}

func (g *gateProvider) ReverseDependentsContext(ctx context.Context, platform, name string) ([]*pkgdb.Package, error) {
	if err := g.wait(ctx); err != nil {
		return nil, err
	}
	return g.cat.ReverseDependents(platform, name)
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, job *Job) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := job.State(); st != JobQueued {
			if st != JobRunning {
				t.Fatalf("job jumped to %s", st)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never started")
}

func pkgManifest(name string) string {
	return fmt.Sprintf("package {'%s': ensure => present }\n", name)
}

// detOnly keeps gate-provider jobs cheap: single-resource manifests are
// trivially deterministic, and skipping idempotence avoids symbolically
// executing a large package closure under the race detector.
func detOnly(manifest string) JobRequest {
	return JobRequest{Manifest: manifest, Checks: []string{CheckDeterminism}}
}

// TestAdmissionControlAndCancel: with one worker and a queue depth of one,
// a third distinct submission is rejected with 429 + Retry-After, and a
// DELETE of the running job cancels it mid-run.
func TestAdmissionControlAndCancel(t *testing.T) {
	gp := newGateProvider()
	sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: gp})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Substrate: sub})

	viewA, _ := postJob(t, ts, detOnly(pkgManifest("ntp")))
	jobA, ok := svc.sched.store.get(viewA.ID)
	if !ok {
		t.Fatal("job A not in store")
	}
	waitRunning(t, jobA) // the worker is now blocked on the gate

	viewB, status := postJob(t, ts, detOnly(pkgManifest("git")))
	if status != http.StatusAccepted {
		t.Fatalf("job B: status %d", status)
	}

	// Queue full: the third distinct job is rejected.
	body, _ := json.Marshal(detOnly(pkgManifest("gcc")))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Cancel the running job: its bound context unblocks the provider.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+viewA.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	finalA := waitTerminal(t, ts, viewA.ID)
	if finalA.State != JobCanceled {
		t.Fatalf("canceled job state %s, want canceled (reason %+v)", finalA.State, finalA.Reason)
	}
	if finalA.Reason == nil || finalA.Reason.Class != ClassCanceled {
		t.Fatalf("cancel reason: %+v", finalA.Reason)
	}

	// Release the gate: the queued job now runs to completion.
	close(gp.gate)
	finalB := waitTerminal(t, ts, viewB.ID)
	if finalB.State != JobDone || finalB.Report.Verdict != VerdictPass {
		t.Fatalf("job B: state %s report %+v", finalB.State, finalB.Report)
	}
}

// TestDrainCancelsInFlight is the SIGTERM acceptance criterion: Shutdown
// stops admission, the running job finishes in the canceled state, the
// queued job is canceled without running, and workers join.
func TestDrainCancelsInFlight(t *testing.T) {
	gp := newGateProvider()
	sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: gp})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Workers: 1, QueueDepth: 4, Substrate: sub})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	viewA, _ := postJob(t, ts, detOnly(pkgManifest("ntp")))
	jobA, _ := svc.sched.store.get(viewA.ID)
	waitRunning(t, jobA)
	viewB, _ := postJob(t, ts, detOnly(pkgManifest("git")))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if st := getJob(t, ts, viewA.ID).State; st != JobCanceled {
		t.Errorf("in-flight job state %s, want canceled", st)
	}
	if st := getJob(t, ts, viewB.ID).State; st != JobCanceled {
		t.Errorf("queued job state %s, want canceled", st)
	}

	// Admission is closed and readiness reflects it.
	if _, status := postJob(t, ts, JobRequest{Manifest: okManifest}); status != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: status %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: status %d, want 503", resp.StatusCode)
	}

	// A second Shutdown is a no-op, not a panic.
	if err := svc.Shutdown(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestConcurrentIdenticalSubmissions: many goroutines posting the same
// request must coalesce onto one job.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := JobRequest{Manifest: okManifest}
	const n = 16
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			view, status := postJob(t, ts, req)
			if status != http.StatusAccepted {
				ids <- fmt.Sprintf("status-%d", status)
				return
			}
			ids <- view.ID
		}()
	}
	first := ""
	for i := 0; i < n; i++ {
		id := <-ids
		if strings.HasPrefix(id, "status-") {
			t.Fatalf("submission rejected: %s", id)
		}
		if first == "" {
			first = id
		} else if id != first {
			t.Fatalf("identical submissions produced distinct jobs: %s vs %s", id, first)
		}
	}
	if final := waitTerminal(t, ts, first); final.State != JobDone {
		t.Fatalf("coalesced job: %+v", final)
	}
}

func TestRequestKeyNormalization(t *testing.T) {
	a := JobRequest{Manifest: "m", Checks: []string{"idempotence", "determinacy"}}.Normalize()
	b := JobRequest{Manifest: "m", Checks: []string{"determinism", "idempotence", "idempotence"}}.Normalize()
	if a.Key() != b.Key() {
		t.Error("aliased/duplicated check sets should share a key")
	}
	c := JobRequest{Manifest: "m"}.Normalize()
	if a.Key() != c.Key() {
		t.Error("the default check set is determinism+idempotence")
	}
	d := JobRequest{Manifest: "m", Platform: "centos"}.Normalize()
	if c.Key() == d.Key() {
		t.Error("platform must be part of the key")
	}
	e := JobRequest{Manifest: "m", TimeoutMS: 5000}.Normalize()
	if c.Key() != e.Key() {
		t.Error("the timeout must not be part of the key")
	}
}

func TestJobStoreTTLAndEviction(t *testing.T) {
	store := newJobStore(2, time.Minute)
	now := time.Now()
	store.now = func() time.Time { return now }

	j1 := newJob("j1", JobRequest{Manifest: "a"}.Normalize())
	store.insert(j1)
	j1.finish(&Report{Verdict: VerdictPass})
	if _, ok := store.lookupKey(j1.Key); !ok {
		t.Fatal("fresh result should be served")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := store.lookupKey(j1.Key); ok {
		t.Fatal("expired result still served")
	}

	// Eviction keeps live jobs and drops the oldest terminal ones.
	j2 := newJob("j2", JobRequest{Manifest: "b"}.Normalize())
	j3 := newJob("j3", JobRequest{Manifest: "c"}.Normalize())
	j2.finish(&Report{Verdict: VerdictPass})
	store.insert(j2)
	store.insert(j3) // live
	j4 := newJob("j4", JobRequest{Manifest: "d"}.Normalize())
	store.insert(j4) // over cap: evicts terminal j1/j2, never live j3
	if _, ok := store.get("j3"); !ok {
		t.Error("live job evicted")
	}
	if _, ok := store.get("j1"); ok {
		t.Error("oldest terminal job should be evicted first")
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	view, _ := postJob(t, ts, JobRequest{Manifest: okManifest})
	waitTerminal(t, ts, view.ID)
	scrape := scrapeMetrics(t, ts)
	for _, want := range []string{
		"rehearsald_up 1",
		"rehearsald_ready 1",
		"rehearsald_jobs_done_total 1",
		`rehearsald_jobs{state="done"} 1`,
		"rehearsald_job_latency_seconds_count 1",
		`rehearsald_check_latency_seconds_bucket{check="determinism",le="+Inf"} 1`,
		"rehearsald_qcache_hit_ratio",
		"rehearsald_pkgdb_healthy 1",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}

// TestDifferentialJobChaining: a head job submitted with a Base job
// reference resolves the base's manifest at admission, runs the
// determinacy check differentially, and inherits the unchanged pair's
// verdict from the substrate's warm cache — zero new solver queries.
func TestDifferentialJobChaining(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Head adds git (disjoint closure): the (make, gcc) pair is unchanged
	// and its verdict must be inherited, not re-solved.
	const headManifest = semManifest + `package {'git': ensure => present }
`
	base, status := postJob(t, ts, JobRequest{Manifest: semManifest, SemanticCommute: true,
		Checks: []string{CheckDeterminism}})
	if status != http.StatusAccepted {
		t.Fatalf("base submit: status %d", status)
	}
	baseView := waitTerminal(t, ts, base.ID)
	if baseView.State != JobDone || baseView.Report.Stats.SemQueries == 0 {
		t.Fatalf("base job: state=%s stats=%+v", baseView.State, baseView.Report.Stats)
	}

	head, status := postJob(t, ts, JobRequest{Manifest: headManifest, SemanticCommute: true,
		Checks: []string{CheckDeterminism}, Base: base.ID})
	if status != http.StatusAccepted {
		t.Fatalf("head submit: status %d", status)
	}
	view := waitTerminal(t, ts, head.ID)
	if view.State != JobDone || view.Report == nil || view.Report.Verdict != VerdictPass {
		t.Fatalf("head job: %+v", view)
	}
	st := view.Report.Stats
	if st.DiffChanged != 1 || st.DiffUnchanged != 2 {
		t.Errorf("diff partition: changed=%d unchanged=%d, want 1/2", st.DiffChanged, st.DiffUnchanged)
	}
	if st.PairsReused != 1 || st.PairsReverified != 0 || st.InheritMisses != 0 {
		t.Errorf("pair accounting: reused=%d reverified=%d misses=%d, want 1/0/0",
			st.PairsReused, st.PairsReverified, st.InheritMisses)
	}
	if st.SemQueries != 0 {
		t.Errorf("head job solved %d queries, want 0 (inherited)", st.SemQueries)
	}

	// The same head manifest without a base is different verification
	// work: it must not dedup onto the differential job.
	full, status := postJob(t, ts, JobRequest{Manifest: headManifest, SemanticCommute: true,
		Checks: []string{CheckDeterminism}})
	if status != http.StatusAccepted {
		t.Fatalf("full submit: status %d", status)
	}
	if full.ID == head.ID || full.Deduped {
		t.Errorf("full job coalesced onto differential job: %+v", full)
	}
	fullView := waitTerminal(t, ts, full.ID)
	if fullView.Report.Verdict != view.Report.Verdict {
		t.Errorf("verdicts differ: diff=%s full=%s", view.Report.Verdict, fullView.Report.Verdict)
	}
}

// TestBaseValidation: an unknown base job is a 400, and base plus inline
// base_manifest in one request is rejected.
func TestBaseValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	_, status := postJob(t, ts, JobRequest{Manifest: okManifest, Base: "j000000-deadbeef"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown base: status %d, want 400", status)
	}
	_, status = postJob(t, ts, JobRequest{Manifest: okManifest, Base: "x", BaseManifest: okManifest})
	if status != http.StatusBadRequest {
		t.Errorf("base + base_manifest: status %d, want 400", status)
	}
}

// rawSubmit posts a job and returns the status plus the response headers,
// for header-level contracts (Retry-After) that postJob hides.
func rawSubmit(t *testing.T, ts *httptest.Server, req JobRequest) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header
}

// Both rejection modes are transient from the client's point of view, so
// both must carry a parseable Retry-After backoff hint and each must be
// counted under its own /metrics series.
func TestRejectionsCarryRetryAfterAndCount(t *testing.T) {
	gp := newGateProvider()
	sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: gp})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Substrate: sub})

	// One job running (held at the provider gate), one filling the queue.
	viewA, _ := postJob(t, ts, detOnly(pkgManifest("ntp")))
	jobA, ok := svc.Job(viewA.ID)
	if !ok {
		t.Fatalf("job %s not found", viewA.ID)
	}
	waitRunning(t, jobA)
	postJob(t, ts, detOnly(pkgManifest("git")))

	assertRetryAfter := func(hdr http.Header, label string) {
		t.Helper()
		ra := hdr.Get("Retry-After")
		if ra == "" {
			t.Fatalf("%s response has no Retry-After header", label)
		}
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 60 {
			t.Fatalf("%s Retry-After = %q, want integer seconds in [1,60]", label, ra)
		}
	}

	status, hdr := rawSubmit(t, ts, detOnly(pkgManifest("gcc")))
	if status != http.StatusTooManyRequests {
		t.Fatalf("submit with full queue: status %d, want 429", status)
	}
	assertRetryAfter(hdr, "429")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, hdr = rawSubmit(t, ts, detOnly(pkgManifest("make")))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: status %d, want 503", status)
	}
	assertRetryAfter(hdr, "503")

	scrape := scrapeMetrics(t, ts)
	if n := metricValue(t, scrape, "rehearsald_admission_rejects_total"); n != 1 {
		t.Errorf("admission_rejects_total = %d, want 1", n)
	}
	if n := metricValue(t, scrape, "rehearsald_drain_rejects_total"); n != 1 {
		t.Errorf("drain_rejects_total = %d, want 1", n)
	}
}

// Jobs caught by a drain — already running, sitting in the queue, or
// submitted while the drain is in progress — must land canceled with the
// structured canceled reason, never failed: "the operator restarted the
// daemon" and "your manifest is broken" are different client contracts.
// Exercised at 1 and 8 workers because the drain/queue race interleaves
// differently when many workers pull from the queue concurrently.
func TestDrainRaceQueuedJobsCanceledNeverFailed(t *testing.T) {
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			gp := newGateProvider()
			sub, err := core.NewSubstrate(core.SubstrateConfig{Provider: gp})
			if err != nil {
				t.Fatal(err)
			}
			svc, ts := newTestServer(t, Config{Workers: workers, QueueDepth: 32, Substrate: sub})

			// Occupy every worker with a gated job, then stack more behind
			// them so the drain catches both populations.
			manifest := func(kind string, i int) JobRequest {
				return detOnly(fmt.Sprintf("# %s %d\n%s", kind, i, pkgManifest("ntp")))
			}
			ids := make([]string, 0, workers+8)
			for i := 0; i < workers; i++ {
				view, _ := postJob(t, ts, manifest("running", i))
				job, ok := svc.Job(view.ID)
				if !ok {
					t.Fatalf("job %s not found", view.ID)
				}
				waitRunning(t, job)
				ids = append(ids, view.ID)
			}
			for i := 0; i < 8; i++ {
				view, status := postJob(t, ts, manifest("queued", i))
				if status != http.StatusAccepted {
					t.Fatalf("queue fill %d: status %d, want 202", i, status)
				}
				ids = append(ids, view.ID)
			}

			// Race more submissions against the drain itself: each must be
			// either rejected outright (503) or accepted and then canceled.
			raced := make(chan string, 4)
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					body, err := json.Marshal(manifest("raced", i))
					if err != nil {
						return
					}
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						return
					}
					defer resp.Body.Close()
					var view JobView
					if resp.StatusCode == http.StatusAccepted && json.NewDecoder(resp.Body).Decode(&view) == nil {
						raced <- view.ID
					}
				}()
			}

			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := svc.Shutdown(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
			wg.Wait()
			close(raced)
			for id := range raced {
				ids = append(ids, id)
			}

			for _, id := range ids {
				view := getJob(t, ts, id)
				if view.State == JobFailed {
					t.Fatalf("job %s failed during drain; reason %+v — drains must cancel, not fail", id, view.Reason)
				}
				if view.State != JobCanceled {
					t.Errorf("job %s state %s, want canceled", id, view.State)
					continue
				}
				if view.Reason == nil {
					t.Errorf("canceled job %s has no structured reason", id)
					continue
				}
				if view.Reason.Class != ClassCanceled {
					t.Errorf("canceled job %s reason class %q, want %q", id, view.Reason.Class, ClassCanceled)
				}
			}
		})
	}
}
