package service

// The cluster surface of rehearsald. When Config.Cluster is set, the
// daemon joins a consistent-hash ring of peers and the handler grows:
//
//	GET    /v1/cache/{key}    peer verdict lookup (this node's local tiers
//	                          only — single-hop by construction)
//	PUT    /v1/cache/{key}    peer verdict replication (ingested locally)
//	GET    /v1/ring           membership view: self, members, dead peers
//	POST   /v1/ring/peers     add a member {"url": ...}
//	DELETE /v1/ring/peers     remove a member (?url=...)
//	GET    /v1/cluster/stats  one node's cache/routing counters as JSON
//
// and job submissions are digest-routed: a node that does not own a
// request's key proxies it to the ring owner (identical submissions from
// anywhere in the fleet land on one node, whose singleflight and result
// layer then coalesce them — cluster-wide dedup), with a dead or failing
// owner degrading to local execution, never an error. Job IDs stay
// node-local, so lifecycle GETs fan out to peers on a local miss.

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/qcache"
)

// verdictDoc is the peer verdict wire document (matches the client side in
// internal/cluster).
type verdictDoc struct {
	Val bool `json:"val"`
}

// peerURLDoc is the body of POST /v1/ring/peers.
type peerURLDoc struct {
	URL string `json:"url"`
}

// ClusterStats is the GET /v1/cluster/stats document: one node's view.
// rehearsalctl aggregates it across members.
type ClusterStats struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	Dead    []string `json:"dead,omitempty"`

	Qcache qcache.Stats      `json:"qcache"`
	Disk   *qcache.DiskStats `json:"disk,omitempty"`
	Remote *qcache.TierStats `json:"remote,omitempty"`

	RoutedLocal    int64 `json:"routed_local"`
	RoutedProxied  int64 `json:"routed_proxied"`
	ProxyFallbacks int64 `json:"proxy_fallbacks"`
	FanoutLookups  int64 `json:"fanout_lookups"`
	DeadSkips      int64 `json:"dead_skips"`

	Jobs map[string]int `json:"jobs"`
}

// registerCluster adds the peer protocol and ring-admin endpoints; called
// by Handler only when the daemon is clustered.
func (s *Server) registerCluster(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	mux.HandleFunc("GET /v1/ring", s.handleRing)
	mux.HandleFunc("POST /v1/ring/peers", s.handleRingAdd)
	mux.HandleFunc("DELETE /v1/ring/peers", s.handleRingRemove)
	mux.HandleFunc("GET /v1/cluster/stats", s.handleClusterStats)
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key, err := qcache.DecodeKey(r.PathValue("key"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Local tiers only: a node answers from what it holds, never by asking
	// the ring in turn, so peer lookups are single-hop even when two nodes
	// briefly disagree about ownership.
	if v, ok := s.sched.sub.LocalVerdict(key); ok {
		writeJSON(w, http.StatusOK, verdictDoc{Val: v})
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "verdict not held"})
}

func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key, err := qcache.DecodeKey(r.PathValue("key"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	var doc verdictDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad verdict body: " + err.Error()})
		return
	}
	s.sched.sub.StoreLocal(key, doc.Val)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Cluster.Info())
}

func (s *Server) handleRingAdd(w http.ResponseWriter, r *http.Request) {
	var doc peerURLDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil || doc.URL == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "want body {\"url\": ...}"})
		return
	}
	s.cfg.Cluster.AddPeer(doc.URL)
	writeJSON(w, http.StatusOK, s.cfg.Cluster.Info())
}

func (s *Server) handleRingRemove(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "want ?url=..."})
		return
	}
	s.cfg.Cluster.RemovePeer(url)
	writeJSON(w, http.StatusOK, s.cfg.Cluster.Info())
}

func (s *Server) handleClusterStats(w http.ResponseWriter, _ *http.Request) {
	node := s.cfg.Cluster
	m := s.sched.met
	doc := ClusterStats{
		Self:           node.Self(),
		Members:        node.Members(),
		Dead:           node.DeadPeers(),
		Qcache:         s.sched.sub.QueryCacheStats(),
		RoutedLocal:    m.routedLocal.Load(),
		RoutedProxied:  m.routedProxied.Load(),
		ProxyFallbacks: m.proxyFallbacks.Load(),
		FanoutLookups:  m.fanoutLookups.Load(),
		DeadSkips:      node.DeadSkips(),
		Jobs:           map[string]int{},
	}
	if ds, ok := s.sched.sub.DiskStats(); ok {
		doc.Disk = &ds
	}
	if rs, ok := s.sched.sub.RemoteStats(); ok {
		doc.Remote = &rs
	}
	for st, n := range s.sched.store.counts() {
		doc.Jobs[string(st)] = n
	}
	writeJSON(w, http.StatusOK, doc)
}

// routeSubmit digest-routes a validated, base-resolved submission: when a
// different ring member owns the request key, the submission is proxied
// there and the owner's response relayed. Returns true when the request
// was fully handled. False means "run it here": this node owns the key,
// the request was already routed once (loop guard), or the owner is
// dead/failing — the fallback that keeps a partitioned cluster serving,
// at the cost of a cold cache for that job.
func (s *Server) routeSubmit(w http.ResponseWriter, r *http.Request, req JobRequest) bool {
	node := s.cfg.Cluster
	if node == nil {
		return false
	}
	if r.Header.Get(cluster.RoutedHeader) != "" {
		s.sched.met.routedLocal.Add(1)
		return false
	}
	owner, isSelf := node.OwnerOf(req.Key())
	if isSelf {
		s.sched.met.routedLocal.Add(1)
		return false
	}
	if !node.Available(owner) {
		s.sched.met.proxyFallbacks.Add(1)
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		s.sched.met.proxyFallbacks.Add(1)
		return false
	}
	resp, err := node.PeerRequest(r.Context(), http.MethodPost, owner, "/v1/jobs", body)
	if err != nil || resp.StatusCode >= http.StatusInternalServerError {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		s.sched.met.proxyFallbacks.Add(1)
		return false
	}
	defer resp.Body.Close()
	s.sched.met.routedProxied.Add(1)
	w.Header().Set("X-Rehearsald-Owner", owner)
	relayResponse(w, resp)
	return true
}

// fanoutLookup answers a local job miss by asking every live peer the same
// GET; the first 200 wins. Job IDs are node-local, so a client that
// submitted through node A (whose submission was proxied to owner B) can
// poll any member and still find its job. Returns true when a peer
// answered.
func (s *Server) fanoutLookup(w http.ResponseWriter, r *http.Request, path string) bool {
	node := s.cfg.Cluster
	if node == nil || r.Header.Get(cluster.RoutedHeader) != "" {
		return false
	}
	for _, member := range node.Members() {
		if member == node.Self() || !node.Available(member) {
			continue
		}
		resp, err := node.PeerRequest(r.Context(), http.MethodGet, member, path, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			defer resp.Body.Close()
			s.sched.met.fanoutLookups.Add(1)
			w.Header().Set("X-Rehearsald-Owner", member)
			relayResponse(w, resp)
			return true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return false
}

// relayResponse copies a proxied peer response to the client.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
