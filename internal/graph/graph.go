// Package graph implements the resource graphs of section 3.1 (figure 4):
// directed acyclic graphs whose vertices are labeled with resources, plus
// the graph algorithms the determinacy analysis needs — cycle detection,
// topological orders, ancestor sets and bounded permutation enumeration.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Node identifies a vertex of a Graph.
type Node int

// Graph is a mutable directed graph with labeled vertices. An edge u → v
// means v depends on u (u must be applied before v). Graphs intended as
// resource graphs must be acyclic; CheckAcyclic reports violations.
type Graph[L any] struct {
	labels  map[Node]L
	out     map[Node]map[Node]struct{}
	in      map[Node]map[Node]struct{}
	nextID  Node
	ordered []Node // insertion order for deterministic iteration
}

// New creates an empty graph.
func New[L any]() *Graph[L] {
	return &Graph[L]{
		labels: make(map[Node]L),
		out:    make(map[Node]map[Node]struct{}),
		in:     make(map[Node]map[Node]struct{}),
	}
}

// Add inserts a vertex with the given label and returns its handle.
func (g *Graph[L]) Add(label L) Node {
	n := g.nextID
	g.nextID++
	g.labels[n] = label
	g.out[n] = make(map[Node]struct{})
	g.in[n] = make(map[Node]struct{})
	g.ordered = append(g.ordered, n)
	return n
}

// AddEdge inserts the dependency edge u → v (v depends on u). Self-edges
// are rejected.
func (g *Graph[L]) AddEdge(u, v Node) error {
	if u == v {
		return fmt.Errorf("graph: self-dependency on node %d", u)
	}
	if _, ok := g.labels[u]; !ok {
		return fmt.Errorf("graph: unknown node %d", u)
	}
	if _, ok := g.labels[v]; !ok {
		return fmt.Errorf("graph: unknown node %d", v)
	}
	g.out[u][v] = struct{}{}
	g.in[v][u] = struct{}{}
	return nil
}

// HasEdge reports whether the edge u → v exists.
func (g *Graph[L]) HasEdge(u, v Node) bool {
	_, ok := g.out[u][v]
	return ok
}

// Label returns the label of n.
func (g *Graph[L]) Label(n Node) L { return g.labels[n] }

// SetLabel replaces the label of n.
func (g *Graph[L]) SetLabel(n Node, label L) { g.labels[n] = label }

// Len returns the number of vertices.
func (g *Graph[L]) Len() int { return len(g.labels) }

// NumEdges returns the number of edges.
func (g *Graph[L]) NumEdges() int {
	n := 0
	for _, succ := range g.out {
		n += len(succ)
	}
	return n
}

// Nodes returns the vertices in insertion order.
func (g *Graph[L]) Nodes() []Node {
	out := make([]Node, 0, len(g.labels))
	for _, n := range g.ordered {
		if _, ok := g.labels[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Succs returns the direct dependents of n, sorted.
func (g *Graph[L]) Succs(n Node) []Node { return sortedKeys(g.out[n]) }

// Preds returns the direct dependencies of n, sorted.
func (g *Graph[L]) Preds(n Node) []Node { return sortedKeys(g.in[n]) }

// InDegree returns the number of dependencies of n.
func (g *Graph[L]) InDegree(n Node) int { return len(g.in[n]) }

// OutDegree returns the number of dependents of n.
func (g *Graph[L]) OutDegree(n Node) int { return len(g.out[n]) }

// Remove deletes n and all incident edges.
func (g *Graph[L]) Remove(n Node) {
	for m := range g.out[n] {
		delete(g.in[m], n)
	}
	for m := range g.in[n] {
		delete(g.out[m], n)
	}
	delete(g.out, n)
	delete(g.in, n)
	delete(g.labels, n)
}

// Clone returns a deep copy sharing labels by value.
func (g *Graph[L]) Clone() *Graph[L] {
	c := New[L]()
	c.nextID = g.nextID
	c.ordered = append([]Node(nil), g.ordered...)
	for n, l := range g.labels {
		c.labels[n] = l
		c.out[n] = make(map[Node]struct{}, len(g.out[n]))
		c.in[n] = make(map[Node]struct{}, len(g.in[n]))
	}
	for n, succ := range g.out {
		for m := range succ {
			c.out[n][m] = struct{}{}
			c.in[m][n] = struct{}{}
		}
	}
	return c
}

// CycleError reports one directed cycle found where the caller required a
// DAG. It names the offending vertices — by their labels, not their
// internal node numbers — so a user can see which resources form the
// cycle; callers with richer labels can render their own names via
// CheckAcyclicNamed.
type CycleError struct {
	// Nodes are the vertices of the cycle in order; the edge from the last
	// back to the first closes it.
	Nodes []Node
	// Names are the rendered labels of Nodes, index-aligned.
	Names []string
}

func (e *CycleError) Error() string {
	closed := make([]string, 0, len(e.Names)+1)
	closed = append(closed, e.Names...)
	if len(e.Names) > 0 {
		closed = append(closed, e.Names[0])
	}
	return fmt.Sprintf("graph: dependency cycle: %s", strings.Join(closed, " -> "))
}

// CheckAcyclic returns nil when the graph has no directed cycle, or a
// *CycleError naming one cycle by vertex labels otherwise.
func (g *Graph[L]) CheckAcyclic() error {
	return g.CheckAcyclicNamed(func(l L) string { return fmt.Sprint(l) })
}

// CheckAcyclicNamed is CheckAcyclic with a caller-supplied label renderer,
// for graphs whose labels do not print usefully with fmt (e.g. pointers to
// compiled resources).
func (g *Graph[L]) CheckAcyclicNamed(name func(L) string) error {
	cycle := g.Cycle()
	if cycle == nil {
		return nil
	}
	names := make([]string, 0, len(cycle))
	for _, c := range cycle {
		names = append(names, name(g.labels[c]))
	}
	return &CycleError{Nodes: cycle, Names: names}
}

// Cycle returns one directed cycle as a node slice, or nil if acyclic.
func (g *Graph[L]) Cycle() []Node {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Node]int, len(g.labels))
	parent := make(map[Node]Node)
	var cycle []Node
	var visit func(n Node) bool
	visit = func(n Node) bool {
		color[n] = gray
		for _, m := range g.Succs(n) {
			switch color[m] {
			case white:
				parent[m] = n
				if visit(m) {
					return true
				}
			case gray:
				cycle = []Node{m}
				for x := n; x != m; x = parent[x] {
					cycle = append(cycle, x)
				}
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.Nodes() {
		if color[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}

// TopoSort returns one topological order (dependencies first). The graph
// must be acyclic.
func (g *Graph[L]) TopoSort() ([]Node, error) {
	indeg := make(map[Node]int, len(g.labels))
	for _, n := range g.Nodes() {
		indeg[n] = g.InDegree(n)
	}
	var ready []Node
	for _, n := range g.Nodes() {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var order []Node
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, m := range g.Succs(n) {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(order) != g.Len() {
		return nil, fmt.Errorf("graph: cyclic (sorted %d of %d nodes)", len(order), g.Len())
	}
	return order, nil
}

// Ancestors returns the transitive dependencies of n (excluding n).
func (g *Graph[L]) Ancestors(n Node) map[Node]struct{} {
	seen := make(map[Node]struct{})
	var visit func(Node)
	visit = func(m Node) {
		for p := range g.in[m] {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				visit(p)
			}
		}
	}
	visit(n)
	return seen
}

// Descendants returns the transitive dependents of n (excluding n).
func (g *Graph[L]) Descendants(n Node) map[Node]struct{} {
	seen := make(map[Node]struct{})
	var visit func(Node)
	visit = func(m Node) {
		for p := range g.out[m] {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				visit(p)
			}
		}
	}
	visit(n)
	return seen
}

// CountLinearizations counts the number of topological orders, stopping at
// limit (returns limit when there are at least that many). This quantifies
// the permutation blow-up of section 4.3.
func (g *Graph[L]) CountLinearizations(limit int) int {
	indeg := make(map[Node]int, len(g.labels))
	for _, n := range g.Nodes() {
		indeg[n] = g.InDegree(n)
	}
	count := 0
	var rec func(remaining int)
	rec = func(remaining int) {
		if count >= limit {
			return
		}
		if remaining == 0 {
			count++
			return
		}
		for _, n := range g.Nodes() {
			if indeg[n] != 0 {
				continue
			}
			indeg[n] = -1
			for _, m := range g.Succs(n) {
				indeg[m]--
			}
			rec(remaining - 1)
			indeg[n] = 0
			for _, m := range g.Succs(n) {
				indeg[m]++
			}
			if count >= limit {
				return
			}
		}
	}
	rec(g.Len())
	return count
}

// Linearizations enumerates topological orders, invoking fn for each until
// fn returns false or limit orders have been produced (limit ≤ 0 means
// unbounded). It reports whether enumeration ran to completion.
func (g *Graph[L]) Linearizations(limit int, fn func(order []Node) bool) bool {
	indeg := make(map[Node]int, len(g.labels))
	for _, n := range g.Nodes() {
		indeg[n] = g.InDegree(n)
	}
	produced := 0
	complete := true
	order := make([]Node, 0, g.Len())
	var rec func() bool
	rec = func() bool {
		if len(order) == g.Len() {
			produced++
			if !fn(append([]Node(nil), order...)) {
				complete = false
				return false
			}
			if limit > 0 && produced >= limit {
				complete = false
				return false
			}
			return true
		}
		for _, n := range g.Nodes() {
			if indeg[n] != 0 {
				continue
			}
			indeg[n] = -1
			for _, m := range g.Succs(n) {
				indeg[m]--
			}
			order = append(order, n)
			ok := rec()
			order = order[:len(order)-1]
			indeg[n] = 0
			for _, m := range g.Succs(n) {
				indeg[m]++
			}
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	return complete
}

// Dot renders the graph in Graphviz format using the provided label
// renderer.
func (g *Graph[L]) Dot(name func(L) string) string {
	var b strings.Builder
	b.WriteString("digraph G {\n")
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n, name(g.Label(n)))
	}
	for _, n := range g.Nodes() {
		for _, m := range g.Succs(n) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n, m)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sortedKeys(m map[Node]struct{}) []Node {
	out := make([]Node, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
