package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func diamond() (*Graph[string], Node, Node, Node, Node) {
	g := New[string]()
	a := g.Add("a")
	b := g.Add("b")
	c := g.Add("c")
	d := g.Add("d")
	// a → b, a → c, b → d, c → d
	for _, e := range [][2]Node{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g, a, b, c, d
}

func TestBasics(t *testing.T) {
	g, a, b, c, d := diamond()
	if g.Len() != 4 || g.NumEdges() != 4 {
		t.Fatalf("Len=%d NumEdges=%d", g.Len(), g.NumEdges())
	}
	if g.Label(a) != "a" {
		t.Error("label")
	}
	g.SetLabel(a, "A")
	if g.Label(a) != "A" {
		t.Error("SetLabel")
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Error("HasEdge")
	}
	if g.InDegree(d) != 2 || g.OutDegree(a) != 2 {
		t.Error("degrees")
	}
	if got := g.Succs(a); !reflect.DeepEqual(got, []Node{b, c}) {
		t.Errorf("Succs = %v", got)
	}
	if got := g.Preds(d); !reflect.DeepEqual(got, []Node{b, c}) {
		t.Errorf("Preds = %v", got)
	}
}

func TestEdgeErrors(t *testing.T) {
	g := New[string]()
	a := g.Add("a")
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-edge accepted")
	}
	if err := g.AddEdge(a, Node(99)); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge(Node(99), a); err == nil {
		t.Error("edge from unknown node accepted")
	}
}

func TestRemove(t *testing.T) {
	g, a, b, c, d := diamond()
	g.Remove(b)
	if g.Len() != 3 {
		t.Fatal("Len after remove")
	}
	if g.HasEdge(a, b) || g.HasEdge(b, d) {
		t.Error("dangling edges")
	}
	if g.InDegree(d) != 1 {
		t.Error("in-degree not updated")
	}
	_ = c
}

func TestClone(t *testing.T) {
	g, a, b, _, _ := diamond()
	c := g.Clone()
	c.Remove(a)
	if g.Len() != 4 || !g.HasEdge(a, b) {
		t.Error("clone aliases original")
	}
}

func TestAcyclic(t *testing.T) {
	g, _, b, c, _ := diamond()
	if err := g.CheckAcyclic(); err != nil {
		t.Fatalf("diamond reported cyclic: %v", err)
	}
	// Close a cycle b → c → b (c → d → ... no path back; add direct).
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(c, b); err != nil {
		t.Fatal(err)
	}
	err := g.CheckAcyclic()
	if err == nil {
		t.Fatal("cycle not detected")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error text: %v", err)
	}
	cyc := g.Cycle()
	if len(cyc) < 2 {
		t.Fatalf("Cycle() = %v", cyc)
	}
	// The returned nodes must actually form a cycle.
	for i := range cyc {
		if !g.HasEdge(cyc[i], cyc[(i+1)%len(cyc)]) {
			t.Errorf("edge %v → %v missing in reported cycle %v", cyc[i], cyc[(i+1)%len(cyc)], cyc)
		}
	}
}

// TestCycleErrorNamesNodes: the error from CheckAcyclic is a structured
// *CycleError whose Names renders the offending labels in cycle order, and
// CheckAcyclicNamed lets callers substitute richer names.
func TestCycleErrorNamesNodes(t *testing.T) {
	g, _, b, c, _ := diamond()
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(c, b); err != nil {
		t.Fatal(err)
	}
	err := g.CheckAcyclic()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("CheckAcyclic returned %T, want *CycleError", err)
	}
	if len(ce.Names) != len(ce.Nodes) || len(ce.Names) < 2 {
		t.Fatalf("CycleError names %v nodes %v", ce.Names, ce.Nodes)
	}
	// The labels of the b↔c cycle must appear, and the message must show
	// the cycle closed back on its first node.
	for _, want := range []string{"b", "c"} {
		found := false
		for _, n := range ce.Names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("cycle names %v missing %q", ce.Names, want)
		}
	}
	if !strings.Contains(err.Error(), ce.Names[0]) ||
		!strings.Contains(err.Error(), " -> ") {
		t.Errorf("error text should render the cycle path: %q", err.Error())
	}

	// A custom namer decorates every node.
	err = g.CheckAcyclicNamed(func(l string) string { return "Node[" + l + "]" })
	if !errors.As(err, &ce) {
		t.Fatalf("CheckAcyclicNamed returned %T", err)
	}
	for _, n := range ce.Names {
		if !strings.HasPrefix(n, "Node[") {
			t.Errorf("custom namer not applied: %v", ce.Names)
		}
	}
}

func TestTopoSort(t *testing.T) {
	g, a, _, _, d := diamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range g.Nodes() {
		for _, m := range g.Succs(n) {
			if pos[n] >= pos[m] {
				t.Errorf("order violates %v → %v", n, m)
			}
		}
	}
	if order[0] != a || order[3] != d {
		t.Errorf("diamond order: %v", order)
	}
	// Cyclic graph errors.
	g2 := New[string]()
	x := g2.Add("x")
	y := g2.Add("y")
	g2.AddEdge(x, y)
	g2.AddEdge(y, x)
	if _, err := g2.TopoSort(); err == nil {
		t.Error("cyclic TopoSort succeeded")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g, a, b, c, d := diamond()
	anc := g.Ancestors(d)
	if len(anc) != 3 {
		t.Errorf("Ancestors(d) = %v", anc)
	}
	for _, n := range []Node{a, b, c} {
		if _, ok := anc[n]; !ok {
			t.Errorf("missing ancestor %v", n)
		}
	}
	desc := g.Descendants(a)
	if len(desc) != 3 {
		t.Errorf("Descendants(a) = %v", desc)
	}
	if len(g.Ancestors(a)) != 0 || len(g.Descendants(d)) != 0 {
		t.Error("root/leaf closure not empty")
	}
}

func TestCountLinearizations(t *testing.T) {
	g, _, _, _, _ := diamond()
	if got := g.CountLinearizations(100); got != 2 {
		t.Errorf("diamond has 2 linearizations, got %d", got)
	}
	// n independent nodes have n! orders; check limit clamping.
	g2 := New[int]()
	for i := 0; i < 5; i++ {
		g2.Add(i)
	}
	if got := g2.CountLinearizations(1000); got != 120 {
		t.Errorf("5 free nodes: %d, want 120", got)
	}
	if got := g2.CountLinearizations(7); got != 7 {
		t.Errorf("limit: %d, want 7", got)
	}
	// Empty graph has exactly one (empty) order.
	if got := New[int]().CountLinearizations(10); got != 1 {
		t.Errorf("empty graph: %d, want 1", got)
	}
}

func TestLinearizations(t *testing.T) {
	g, a, b, c, d := diamond()
	var orders [][]Node
	complete := g.Linearizations(0, func(order []Node) bool {
		orders = append(orders, order)
		return true
	})
	if !complete || len(orders) != 2 {
		t.Fatalf("complete=%v n=%d", complete, len(orders))
	}
	for _, o := range orders {
		if o[0] != a || o[3] != d {
			t.Errorf("bad order %v", o)
		}
	}
	if orders[0][1] == orders[1][1] {
		t.Error("orders not distinct")
	}
	_ = b
	_ = c
	// Early stop.
	n := 0
	complete = g.Linearizations(0, func([]Node) bool { n++; return false })
	if complete || n != 1 {
		t.Errorf("early stop: complete=%v n=%d", complete, n)
	}
	// Limit.
	n = 0
	complete = g.Linearizations(1, func([]Node) bool { n++; return true })
	if complete || n != 1 {
		t.Errorf("limit: complete=%v n=%d", complete, n)
	}
}

// Every enumerated linearization respects every edge, on random DAGs.
func TestLinearizationsRespectEdgesRandom(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		g := New[int]()
		n := 3 + r.Intn(5)
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = g.Add(i)
		}
		// Edges only forward in index order: guaranteed acyclic.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					g.AddEdge(nodes[i], nodes[j])
				}
			}
		}
		count := 0
		g.Linearizations(200, func(order []Node) bool {
			count++
			pos := map[Node]int{}
			for i, x := range order {
				pos[x] = i
			}
			for _, u := range g.Nodes() {
				for _, v := range g.Succs(u) {
					if pos[u] >= pos[v] {
						t.Fatalf("order %v violates %v → %v", order, u, v)
					}
				}
			}
			return true
		})
		if count == 0 {
			t.Fatal("no linearizations for acyclic graph")
		}
		if c := g.CountLinearizations(200); c != count {
			t.Fatalf("CountLinearizations=%d but enumerated %d", c, count)
		}
	}
}

func TestDot(t *testing.T) {
	g, _, _, _, _ := diamond()
	dot := g.Dot(func(s string) string { return s })
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "\"a\"") || !strings.Contains(dot, "->") {
		t.Errorf("dot output: %s", dot)
	}
}
