// Package faults injects deterministic faults into the analysis pipeline's
// I/O layers. The paper's toolchain depends on an external package-listing
// web service and on solver queries that take real wall-clock time; a
// production deployment must tolerate that service hanging, erroring in
// bursts, resetting connections or returning torn JSON, and must tolerate
// torn or garbled files in the on-disk verdict cache. This package supplies
// the fault side of that contract so the tolerant side (internal/pkgdb's
// retrying client, internal/qcache's corruption-safe disk tier) can be
// exercised both in tests and end-to-end via `pkgserver -chaos`.
//
// Faults are driven by a Plan: a seed-derived schedule that decides, per
// request, whether to inject a fault and which Kind. Two modes exist:
//
//   - Per-path burst (Config.Burst > 0): the first Burst requests for each
//     distinct request key fault, later ones succeed. The schedule is a
//     pure function of (key, per-key request count), so it is fully
//     deterministic under any concurrency — the mode differential tests
//     use, because a retry budget larger than the burst guarantees every
//     logical request eventually succeeds.
//   - Rate (Config.Rate > 0): each request faults with the given
//     probability, drawn from a PRNG seeded by Config.Seed. Deterministic
//     for a fixed request order; the chaos-flag mode.
//
// The same Plan drives the client-side Transport (an http.RoundTripper),
// the server-side Middleware, and the io wrappers.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is one injectable fault.
type Kind uint8

const (
	// None injects nothing; the request proceeds untouched.
	None Kind = iota
	// Latency delays the request, then lets it proceed.
	Latency
	// Status short-circuits the request with a synthesized 503.
	Status
	// Reset fails the request with a connection-reset error (client side)
	// or aborts the response mid-flight (server side).
	Reset
	// Truncate serves the real response body cut off mid-JSON.
	Truncate
	// Corrupt serves the real response body with bytes flipped.
	Corrupt
)

var kindNames = map[Kind]string{
	None:     "none",
	Latency:  "latency",
	Status:   "status",
	Reset:    "reset",
	Truncate: "truncate",
	Corrupt:  "corrupt",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("faults.Kind(%d)", uint8(k))
}

// AllKinds is every injectable fault kind, in injection-rotation order.
var AllKinds = []Kind{Status, Reset, Truncate, Corrupt}

// Config parameterizes a Plan.
type Config struct {
	// Seed drives the PRNG behind Rate mode and the byte positions Corrupt
	// flips. The same seed yields the same schedule.
	Seed int64
	// Rate is the per-request fault probability in [0,1]; ignored when
	// Burst > 0.
	Rate float64
	// Burst, when positive, switches to per-path burst mode: the first
	// Burst requests of every distinct key fault (kinds rotating in
	// Kinds order), all later ones succeed.
	Burst int
	// Latency is the delay injected by Latency faults, and additionally by
	// every fault when Delay is set on all kinds (see spec "latency=").
	Latency time.Duration
	// Kinds is the rotation of fault kinds to inject; empty means
	// AllKinds. A Latency entry requires Latency > 0 to have any effect.
	Kinds []Kind
}

// Stats counts a plan's decisions.
type Stats struct {
	Requests int64          // decisions made
	Injected int64          // decisions that were a fault
	ByKind   map[Kind]int64 // injected faults per kind
}

// Plan is a deterministic fault schedule. Safe for concurrent use.
type Plan struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	perKey map[string]int
	rotate int
	stats  Stats
}

// NewPlan builds a schedule from cfg.
func NewPlan(cfg Config) *Plan {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = append([]Kind(nil), AllKinds...)
	}
	return &Plan{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		perKey: make(map[string]int),
		stats:  Stats{ByKind: make(map[Kind]int64)},
	}
}

// Config returns the plan's configuration (kinds defaulted).
func (p *Plan) Config() Config { return p.cfg }

// Next decides the fault for the next request identified by key (for HTTP,
// the URL path). None means the request proceeds untouched.
func (p *Plan) Next(key string) Kind {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Requests++
	k := None
	if p.cfg.Burst > 0 {
		n := p.perKey[key]
		p.perKey[key] = n + 1
		if n < p.cfg.Burst {
			k = p.cfg.Kinds[n%len(p.cfg.Kinds)]
		}
	} else if p.cfg.Rate > 0 && p.rng.Float64() < p.cfg.Rate {
		k = p.cfg.Kinds[p.rotate%len(p.cfg.Kinds)]
		p.rotate++
	}
	if k != None {
		p.stats.Injected++
		p.stats.ByKind[k]++
	}
	return k
}

// StatsSnapshot returns a copy of the plan's counters.
func (p *Plan) StatsSnapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.ByKind = make(map[Kind]int64, len(p.stats.ByKind))
	for k, v := range p.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// corruptPositions returns deterministic byte offsets to flip in a body of
// length n, derived from the plan's seed (not its PRNG, so corruption is
// independent of decision order).
func (p *Plan) corruptPositions(n int) []int {
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.cfg.Seed ^ int64(n)*2654435761))
	flips := 1 + n/64
	out := make([]int, 0, flips)
	for i := 0; i < flips; i++ {
		out = append(out, rng.Intn(n))
	}
	sort.Ints(out)
	return out
}

// ParseSpec parses a chaos-flag specification of comma-separated key=value
// pairs into a Config:
//
//	seed=42,rate=0.2,latency=10ms,kinds=status+reset+truncate+corrupt
//	seed=7,burst=2,kinds=status+reset
//
// Keys: seed (int), rate (float in [0,1]), burst (int), latency (duration),
// kinds ('+'-separated from status|reset|truncate|corrupt|latency).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: malformed field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			cfg.Rate, err = strconv.ParseFloat(val, 64)
			if err == nil && (cfg.Rate < 0 || cfg.Rate > 1) {
				err = fmt.Errorf("rate %v outside [0,1]", cfg.Rate)
			}
		case "burst":
			cfg.Burst, err = strconv.Atoi(val)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "kinds":
			for _, name := range strings.Split(val, "+") {
				k, kerr := kindByName(name)
				if kerr != nil {
					return Config{}, kerr
				}
				cfg.Kinds = append(cfg.Kinds, k)
			}
		default:
			return Config{}, fmt.Errorf("faults: unknown field %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad %s: %v", key, err)
		}
	}
	if cfg.Rate == 0 && cfg.Burst == 0 {
		return Config{}, fmt.Errorf("faults: spec %q injects nothing (set rate= or burst=)", spec)
	}
	return cfg, nil
}

// Spec renders the configuration back into ParseSpec's key=value syntax;
// the scenario recorder uses it to serialize a live plan into a replayable
// scenario file. Zero-valued fields are omitted, so for any config that
// injects something ParseSpec(cfg.Spec()) reproduces cfg (modulo the
// kinds default, which NewPlan applies identically on both sides).
func (c Config) Spec() string {
	var parts []string
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	if c.Rate != 0 {
		parts = append(parts, "rate="+strconv.FormatFloat(c.Rate, 'g', -1, 64))
	}
	if c.Burst != 0 {
		parts = append(parts, fmt.Sprintf("burst=%d", c.Burst))
	}
	if c.Latency != 0 {
		parts = append(parts, "latency="+c.Latency.String())
	}
	if len(c.Kinds) != 0 {
		names := make([]string, len(c.Kinds))
		for i, k := range c.Kinds {
			names[i] = k.String()
		}
		parts = append(parts, "kinds="+strings.Join(names, "+"))
	}
	return strings.Join(parts, ",")
}

func kindByName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name && k != None {
			return k, nil
		}
	}
	return None, fmt.Errorf("faults: unknown kind %q", name)
}
