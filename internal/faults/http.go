package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"syscall"
	"time"
)

// Transport is an http.RoundTripper that injects the plan's faults into
// outgoing requests. Status and Reset faults never reach the base
// transport; Truncate and Corrupt perform the real request and damage the
// response body on the way back, so the damage looks exactly like a torn
// or bit-rotted wire read to the caller.
type Transport struct {
	// Base performs real requests; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Plan decides each request's fate; nil injects nothing.
	Plan *Plan
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Plan == nil {
		return t.base().RoundTrip(req)
	}
	kind := t.Plan.Next(req.URL.Path)
	if d := t.Plan.cfg.Latency; d > 0 && kind != None {
		if err := sleepRequest(req, d); err != nil {
			return nil, err
		}
	}
	switch kind {
	case None:
		return t.base().RoundTrip(req)
	case Latency:
		// Delay already paid above; when Latency is the scheduled kind but
		// no duration is configured there is nothing to inject.
		return t.base().RoundTrip(req)
	case Status:
		return synthesized(req, http.StatusServiceUnavailable, "faults: injected 503"), nil
	case Reset:
		return nil, fmt.Errorf("faults: injected reset: %w", syscall.ECONNRESET)
	case Truncate, Corrupt:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if kind == Truncate {
			body = body[:len(body)/2]
		} else {
			body = flip(body, t.Plan.corruptPositions(len(body)))
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		return resp, nil
	default:
		return t.base().RoundTrip(req)
	}
}

// sleepRequest waits d or until the request's context is done.
func sleepRequest(req *http.Request, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-req.Context().Done():
		return req.Context().Err()
	}
}

// synthesized builds an in-memory error response, as a flaky proxy or
// load-shedding server would return.
func synthesized(req *http.Request, status int, msg string) *http.Response {
	body := msg + "\n"
	return &http.Response{
		Status:        strconv.Itoa(status) + " " + http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// flip XOR-flips one bit at each position.
func flip(body []byte, positions []int) []byte {
	out := append([]byte(nil), body...)
	for _, i := range positions {
		out[i] ^= 0x20
	}
	return out
}

// Middleware wraps an http.Handler with server-side fault injection — the
// engine behind `pkgserver -chaos`. Responses are buffered so Truncate can
// advertise the full Content-Length while writing only half the body (the
// client observes an unexpected EOF, exactly like a torn proxy read), and
// Corrupt can flip bytes post-encoding. Reset aborts the response without
// writing anything, which net/http turns into a closed connection.
func Middleware(plan *Plan, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if plan == nil {
			next.ServeHTTP(w, r)
			return
		}
		kind := plan.Next(r.URL.Path)
		if d := plan.cfg.Latency; d > 0 && kind != None {
			if err := sleepRequest(r, d); err != nil {
				return
			}
		}
		switch kind {
		case None, Latency:
			next.ServeHTTP(w, r)
		case Status:
			http.Error(w, "faults: injected 503", http.StatusServiceUnavailable)
		case Reset:
			panic(http.ErrAbortHandler)
		case Truncate, Corrupt:
			rec := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
			next.ServeHTTP(rec, r)
			body := rec.body.Bytes()
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			if kind == Truncate {
				// Promise the full body, deliver half, then abort so the
				// connection tears instead of terminating cleanly.
				w.Header().Set("Content-Length", strconv.Itoa(len(body)))
				w.WriteHeader(rec.status)
				_, _ = w.Write(body[:len(body)/2])
				panic(http.ErrAbortHandler)
			}
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.status)
			_, _ = w.Write(flip(body, plan.corruptPositions(len(body))))
		}
	})
}

// bufferedResponse captures a handler's response for post-processing.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }
