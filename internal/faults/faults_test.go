package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.5}
	a, b := NewPlan(cfg), NewPlan(cfg)
	for i := 0; i < 200; i++ {
		if ka, kb := a.Next("/x"), b.Next("/x"); ka != kb {
			t.Fatalf("request %d: plans diverged: %v vs %v", i, ka, kb)
		}
	}
	st := a.StatsSnapshot()
	if st.Requests != 200 || st.Injected == 0 || st.Injected == 200 {
		t.Errorf("rate-mode stats out of range: %+v", st)
	}
}

func TestPlanPerPathBurst(t *testing.T) {
	p := NewPlan(Config{Burst: 2, Kinds: []Kind{Status, Reset}})
	for _, path := range []string{"/a", "/b"} {
		if k := p.Next(path); k != Status {
			t.Errorf("%s request 1: %v, want status", path, k)
		}
		if k := p.Next(path); k != Reset {
			t.Errorf("%s request 2: %v, want reset", path, k)
		}
		for i := 3; i <= 5; i++ {
			if k := p.Next(path); k != None {
				t.Errorf("%s request %d: %v, want none", path, i, k)
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,rate=0.25,latency=10ms,kinds=status+reset")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Rate != 0.25 || cfg.Latency != 10*time.Millisecond {
		t.Errorf("parsed %+v", cfg)
	}
	if len(cfg.Kinds) != 2 || cfg.Kinds[0] != Status || cfg.Kinds[1] != Reset {
		t.Errorf("kinds = %v", cfg.Kinds)
	}
	if _, err := ParseSpec("seed=1"); err == nil {
		t.Error("spec injecting nothing accepted")
	}
	if _, err := ParseSpec("rate=2"); err == nil {
		t.Error("rate outside [0,1] accepted")
	}
	if _, err := ParseSpec("burst=1,kinds=frobnicate"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Error("unknown field accepted")
	}
}

// chatty serves a fixed JSON document.
func chatty() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"name":  "pkg",
			"files": []string{"/usr/bin/pkg", "/usr/share/doc/pkg/README"},
		})
	})
}

func get(t *testing.T, client *http.Client, url string) (map[string]any, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, errors.New(resp.Status)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

func TestTransportKinds(t *testing.T) {
	srv := httptest.NewServer(chatty())
	defer srv.Close()

	plan := NewPlan(Config{Burst: 4, Kinds: []Kind{Status, Reset, Truncate, Corrupt}})
	client := &http.Client{Transport: &Transport{Base: http.DefaultTransport, Plan: plan}}

	// Request 1: synthesized 503.
	if _, err := get(t, client, srv.URL+"/doc"); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("status fault: err = %v", err)
	}
	// Request 2: connection reset.
	if _, err := get(t, client, srv.URL+"/doc"); !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("reset fault: err = %v", err)
	}
	// Request 3: truncated JSON fails to decode.
	if _, err := get(t, client, srv.URL+"/doc"); err == nil {
		t.Error("truncated body decoded cleanly")
	}
	// Request 4: corrupted JSON fails to decode or decodes to damaged data.
	v, err := get(t, client, srv.URL+"/doc")
	if err == nil && v["name"] == "pkg" {
		t.Error("corrupt fault left body undamaged")
	}
	// Request 5 on: clean.
	v, err = get(t, client, srv.URL+"/doc")
	if err != nil || v["name"] != "pkg" {
		t.Errorf("past the burst: %v, %v", v, err)
	}
}

func TestMiddlewareKinds(t *testing.T) {
	plan := NewPlan(Config{Burst: 4, Kinds: []Kind{Status, Reset, Truncate, Corrupt}})
	srv := httptest.NewServer(Middleware(plan, chatty()))
	defer srv.Close()
	// Disable keep-alives: net/http transparently replays idempotent GETs
	// that die on a reused connection, which would consume extra plan
	// decisions and make the assertions below nondeterministic.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	if _, err := get(t, client, srv.URL+"/doc"); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("status fault: err = %v", err)
	}
	if _, err := get(t, client, srv.URL+"/doc"); err == nil {
		t.Error("reset fault produced a clean response")
	}
	if _, err := get(t, client, srv.URL+"/doc"); err == nil {
		t.Error("truncated response decoded cleanly")
	}
	v, err := get(t, client, srv.URL+"/doc")
	if err == nil && v["name"] == "pkg" {
		t.Error("corrupt fault left body undamaged")
	}
	v, err = get(t, client, srv.URL+"/doc")
	if err != nil || v["name"] != "pkg" {
		t.Errorf("past the burst: %v, %v", v, err)
	}
	st := plan.StatsSnapshot()
	if st.Injected != 4 {
		t.Errorf("injected = %d, want 4 (%+v)", st.Injected, st)
	}
}

func TestLatencyInjection(t *testing.T) {
	srv := httptest.NewServer(chatty())
	defer srv.Close()
	plan := NewPlan(Config{Burst: 1, Kinds: []Kind{Latency}, Latency: 30 * time.Millisecond})
	client := &http.Client{Transport: &Transport{Plan: plan}}
	start := time.Now()
	if _, err := get(t, client, srv.URL+"/doc"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency fault took only %v", d)
	}
}

func TestFileDamagers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	content := []byte("hello, fault injection")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(path, 5); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "hello" {
		t.Errorf("truncated = %q", b)
	}
	if err := FlipByte(path, 1); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) == "hello" {
		t.Error("flip changed nothing")
	}
	if err := ZeroFile(path); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); len(b) != 0 {
		t.Errorf("zeroed file holds %q", b)
	}
}

func TestReaders(t *testing.T) {
	src := strings.Repeat("abcdefgh", 64)
	got, err := io.ReadAll(TruncatingReader(strings.NewReader(src), 10))
	if err != nil || len(got) != 10 {
		t.Errorf("truncating reader: %d bytes, %v", len(got), err)
	}
	damaged, err := io.ReadAll(CorruptingReader(strings.NewReader(src), 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(damaged) == src {
		t.Error("corrupting reader changed nothing")
	}
	if len(damaged) != len(src) {
		t.Errorf("corrupting reader changed length: %d != %d", len(damaged), len(src))
	}
}
