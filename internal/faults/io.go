package faults

import (
	"io"
	"math/rand"
	"os"
)

// TruncatingReader returns a reader that yields at most n bytes of r and
// then reports a clean EOF — a torn read that looks complete, the hardest
// corruption for a consumer to notice without a length or checksum.
func TruncatingReader(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// corruptingReader flips one bit in roughly every 64 bytes it passes
// through, at seed-deterministic positions.
type corruptingReader struct {
	r   io.Reader
	rng *rand.Rand
}

// CorruptingReader returns a reader that deterministically damages the
// bytes of r: roughly one flipped bit per 64 bytes, positions derived from
// seed.
func CorruptingReader(r io.Reader, seed int64) io.Reader {
	return &corruptingReader{r: r, rng: rand.New(rand.NewSource(seed))}
}

func (c *corruptingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		if c.rng.Intn(64) == 0 {
			p[i] ^= 0x20
		}
	}
	return n, err
}

// The file damagers simulate the disk-level faults the qcache corruption
// tests exercise: a crash mid-write (truncation), bit rot (a flipped byte)
// and a file created but never written (zero length). They operate in
// place, like the underlying filesystem fault would.

// TruncateFile cuts the file to its first keep bytes (a torn write).
func TruncateFile(path string, keep int64) error {
	return os.Truncate(path, keep)
}

// FlipByte XOR-flips one bit of the byte at offset (bit rot).
func FlipByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 0x20
	_, err = f.WriteAt(b[:], offset)
	return err
}

// ZeroFile empties the file (created, never written, crash before flush).
func ZeroFile(path string) error {
	return os.Truncate(path, 0)
}
