package puppet

import (
	"strings"
	"testing"
)

// evalWithNode evaluates with an explicit node name.
func evalWithNode(t *testing.T, src, node string) *Catalog {
	t.Helper()
	cat, err := EvaluateSource(src, Config{
		Facts:    map[string]Value{"operatingsystem": StrV("Ubuntu")},
		NodeName: node,
	})
	if err != nil {
		t.Fatalf("evaluate: %v\nsource:\n%s", err, src)
	}
	return cat
}

func TestStatementChaining(t *testing.T) {
	cat := mustEval(t, `
package {'ntp': ensure => present } ->
file {'/etc/ntp.conf': content => 'server pool' } ~>
service {'ntp': ensure => running }
`)
	if len(cat.Realized()) != 3 {
		t.Fatalf("resources: %s", cat.Summary())
	}
	if len(cat.Deps) != 2 {
		t.Fatalf("deps: %+v", cat.Deps)
	}
	d0, d1 := cat.Deps[0], cat.Deps[1]
	if d0.From.Type != "package" || d0.To.Type != "file" || d0.Kind != DepBefore {
		t.Errorf("first edge: %+v", d0)
	}
	if d1.From.Type != "file" || d1.To.Type != "service" || d1.Kind != DepNotify {
		t.Errorf("second edge: %+v", d1)
	}
}

func TestMixedChaining(t *testing.T) {
	// Reference on the left, declaration on the right.
	cat := mustEval(t, `
package {'ntp': }
Package['ntp'] -> file {'/etc/ntp.conf': content => 'x' }
`)
	if len(cat.Deps) != 1 {
		t.Fatalf("deps: %+v", cat.Deps)
	}
	if cat.Lookup("file", "/etc/ntp.conf") == nil {
		t.Error("inline declaration not evaluated")
	}
	// Multi-title declarations fan out.
	cat = mustEval(t, `
package {['m4', 'make']: } -> package {'gcc': }
`)
	if len(cat.Deps) != 2 {
		t.Fatalf("multi-title chain deps: %+v", cat.Deps)
	}
}

func TestUnless(t *testing.T) {
	cat := mustEval(t, `
unless $operatingsystem == 'CentOS' {
	package {'apt-tools': }
} else {
	package {'yum-tools': }
}
`)
	if cat.Lookup("package", "apt-tools") == nil {
		t.Errorf("unless body not taken: %s", cat.Summary())
	}
	if cat.Lookup("package", "yum-tools") != nil {
		t.Error("else branch taken")
	}
}

func TestNodeBlocks(t *testing.T) {
	src := `
package {'base': }
node 'web01.example.com', 'web02.example.com' {
	package {'nginx-node': }
}
node 'db01.example.com' {
	package {'mysql-node': }
}
node default {
	package {'generic': }
}
`
	// Exact match.
	cat := evalWithNode(t, src, "web01.example.com")
	if cat.Lookup("package", "nginx-node") == nil || cat.Lookup("package", "base") == nil {
		t.Errorf("web01: %s", cat.Summary())
	}
	if cat.Lookup("package", "mysql-node") != nil || cat.Lookup("package", "generic") != nil {
		t.Errorf("web01 leaked other nodes: %s", cat.Summary())
	}
	// Default fallback.
	cat = evalWithNode(t, src, "unknown-host")
	if cat.Lookup("package", "generic") == nil {
		t.Errorf("default node not taken: %s", cat.Summary())
	}
	if cat.Lookup("package", "nginx-node") != nil {
		t.Error("exact node leaked into default")
	}
}

func TestNodeScopeIsLocal(t *testing.T) {
	// Variables assigned in a node block do not leak to other blocks.
	src := `
node 'a' {
	$x = '1'
	file {"/f$x": content => 'x' }
}
`
	cat := evalWithNode(t, src, "a")
	if cat.Lookup("file", "/f1") == nil {
		t.Errorf("node body: %s", cat.Summary())
	}
}

func TestRealize(t *testing.T) {
	cat := mustEval(t, `
@user {'alice': ensure => present }
@user {'bob': ensure => present }
realize User['alice']
`)
	if cat.Lookup("user", "alice").Virtual {
		t.Error("alice not realized")
	}
	if !cat.Lookup("user", "bob").Virtual {
		t.Error("bob should stay virtual")
	}
	// Realize before declaration works (deferred).
	cat = mustEval(t, `
realize(User['carol'])
@user {'carol': }
`)
	if cat.Lookup("user", "carol").Virtual {
		t.Error("deferred realize failed")
	}
	// Realizing an undeclared resource fails.
	mustFail(t, `realize User['ghost']`, "not declared")
}

func TestFail(t *testing.T) {
	_, err := EvaluateSource(`
case $operatingsystem {
	'Solaris': { package {'x': } }
	default:   { fail("unsupported OS ${operatingsystem}") }
}
`, Config{Facts: map[string]Value{"operatingsystem": StrV("Ubuntu")}})
	if err == nil || !strings.Contains(err.Error(), "unsupported OS Ubuntu") {
		t.Errorf("fail(): %v", err)
	}
	// fail in a dead branch is harmless.
	cat := mustEval(t, `
if $operatingsystem == 'Ubuntu' {
	package {'fine': }
} else {
	fail('never reached')
}
`)
	if cat.Lookup("package", "fine") == nil {
		t.Error("live branch not evaluated")
	}
}

func TestChainingParseErrors(t *testing.T) {
	for _, src := range []string{
		`Package['x'] ->`,
		`-> package {'x': }`,
		`Package['x'] -> include y`,
		`node { }`,
		`realize`,
		`fail 'x'`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	cat := mustEval(t, `
@user {'v': }
package {'p': ensure => present }
`)
	s := cat.Summary()
	if !strings.Contains(s, "@User[v]") || !strings.Contains(s, "Package[p] ensure=present") {
		t.Errorf("summary:\n%s", s)
	}
}

func TestIndexing(t *testing.T) {
	cat := mustEval(t, `
$ports = { 'http' => 80, 'https' => 443 }
$names = ['web', 'api']
file {"/etc/app/${names[0]}.conf": content => "listen ${ports['http']}" }
file {"/etc/app/${names[1]}.conf": content => "listen ${ports['https']}" }
`)
	web := cat.Lookup("file", "/etc/app/web.conf")
	if web == nil {
		t.Fatalf("indexing failed: %s", cat.Summary())
	}
	if got, _ := web.AttrString("content"); got != "listen 80" {
		t.Errorf("web content: %q", got)
	}
	api := cat.Lookup("file", "/etc/app/api.conf")
	if got, _ := api.AttrString("content"); got != "listen 443" {
		t.Errorf("api content: %q", got)
	}
}

func TestIndexingEdgeCases(t *testing.T) {
	// Missing keys and out-of-range indices are undef, like Puppet.
	cat := mustEval(t, `
$h = { 'a' => 1 }
$a = [1, 2]
if $h['missing'] == undef { package {'hash-undef': } }
if $a[9] == undef { package {'arr-undef': } }
`)
	for _, p := range []string{"hash-undef", "arr-undef"} {
		if cat.Lookup("package", p) == nil {
			t.Errorf("package[%s] missing: %s", p, cat.Summary())
		}
	}
	// Indexing a scalar is an error.
	mustFail(t, `
$s = 'str'
$x = $s[0]
file {"/$x": }
`, "cannot index")
	// Non-numeric array index is an error.
	mustFail(t, `
$a = [1]
$x = $a['k']
file {"/$x": }
`, "must be numeric")
}
