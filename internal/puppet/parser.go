package puppet

import "strings"

// ParseExpression parses a single expression (used for ${...}
// interpolations that go beyond a plain variable name).
func ParseExpression(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, errf(t.Pos, "unexpected %s after expression", describe(t))
	}
	return e, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete manifest into a statement list.
func Parse(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for p.peek().Kind != TokEOF {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}
func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.peek()
	if t.Kind != kind {
		return t, errf(t.Pos, "expected %s, found %s", kind, describe(t))
	}
	return p.advance(), nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokName, TokTypeRef, TokNumber:
		return "'" + t.Text + "'"
	case TokVariable:
		return "'$" + t.Text + "'"
	case TokString:
		return "string"
	default:
		return t.Kind.String()
	}
}

// normalizeType lowercases a resource type name (Package → package).
func normalizeType(name string) string { return strings.ToLower(name) }

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case TokName:
		switch t.Text {
		case "define":
			return p.defineDecl()
		case "class":
			// 'class {' is a class resource declaration; 'class name' is a
			// class definition.
			if p.peekAt(1).Kind == TokLBrace {
				return p.maybeChained(t.Pos)
			}
			return p.classDecl()
		case "include", "require_class":
			return p.includeStmt()
		case "if":
			return p.ifStmt()
		case "unless":
			return p.unlessStmt()
		case "case":
			return p.caseStmt()
		case "node":
			return p.nodeDecl()
		case "realize":
			return p.realizeStmt()
		case "fail":
			return p.failStmt()
		default:
			if p.peekAt(1).Kind == TokLBrace {
				return p.maybeChained(t.Pos)
			}
			return nil, errf(t.Pos, "unexpected %s at statement position", describe(t))
		}
	case TokVariable:
		if p.peekAt(1).Kind == TokAssign {
			return p.assignStmt()
		}
		return nil, errf(t.Pos, "expected '=' after variable at statement position")
	case TokAt:
		p.advance()
		if p.peek().Kind != TokName || p.peekAt(1).Kind != TokLBrace {
			return nil, errf(t.Pos, "expected virtual resource declaration after '@'")
		}
		return p.resourceDecl(true)
	case TokTypeRef:
		switch p.peekAt(1).Kind {
		case TokLBracket:
			return p.maybeChained(t.Pos)
		case TokCollectorOpen:
			return p.collectorStmt()
		case TokLBrace:
			return p.defaultsDecl()
		}
		return nil, errf(t.Pos, "expected '[', '<|' or '{' after type name %q", t.Text)
	}
	return nil, errf(t.Pos, "unexpected %s at statement position", describe(t))
}

// chainElem parses one operand of a chaining expression: a resource
// reference or an inline resource declaration.
func (p *parser) chainElem() (ChainElem, error) {
	t := p.peek()
	switch {
	case t.Kind == TokTypeRef && p.peekAt(1).Kind == TokLBracket:
		ref, err := p.refExpr()
		if err != nil {
			return ChainElem{}, err
		}
		return ChainElem{Ref: &ref}, nil
	case t.Kind == TokName && p.peekAt(1).Kind == TokLBrace:
		decl, err := p.resourceDecl(false)
		if err != nil {
			return ChainElem{}, err
		}
		rd := decl.(ResourceDecl)
		return ChainElem{Decl: &rd}, nil
	default:
		return ChainElem{}, errf(t.Pos, "expected resource reference or declaration in chain, found %s", describe(t))
	}
}

// maybeChained parses a chainable operand (reference or declaration) and
// any following -> / ~> chain. A bare declaration is returned as-is; a
// bare reference is an error (it has no effect).
func (p *parser) maybeChained(pos Pos) (Stmt, error) {
	first, err := p.chainElem()
	if err != nil {
		return nil, err
	}
	chain := ChainStmt{Elems: []ChainElem{first}, Pos: pos}
	for {
		var op ChainOp
		switch p.peek().Kind {
		case TokArrow:
			op = ChainBefore
		case TokTildeArrow:
			op = ChainNotify
		default:
			if len(chain.Ops) > 0 {
				return chain, nil
			}
			if first.Decl != nil {
				return *first.Decl, nil
			}
			return nil, errf(pos, "expected '->' or '~>' after resource reference")
		}
		p.advance()
		next, err := p.chainElem()
		if err != nil {
			return nil, err
		}
		chain.Ops = append(chain.Ops, op)
		chain.Elems = append(chain.Elems, next)
	}
}

func (p *parser) unlessStmt() (Stmt, error) {
	pos := p.advance().Pos // unless
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.peek().Kind == TokName && p.peek().Text == "else" {
		p.advance()
		els, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return IfStmt{Cond: NotExpr{X: cond, Pos: pos}, Then: then, Else: els, Pos: pos}, nil
}

func (p *parser) nodeDecl() (Stmt, error) {
	pos := p.advance().Pos // node
	var names []string
	for {
		t := p.peek()
		if t.Kind != TokName && t.Kind != TokString {
			return nil, errf(t.Pos, "expected node name, found %s", describe(t))
		}
		p.advance()
		names = append(names, strings.ToLower(t.Text))
		if p.peek().Kind != TokComma {
			break
		}
		p.advance()
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return NodeDecl{Names: names, Body: body, Pos: pos}, nil
}

func (p *parser) realizeStmt() (Stmt, error) {
	pos := p.advance().Pos // realize
	parens := false
	if p.peek().Kind == TokLParen {
		parens = true
		p.advance()
	}
	var refs []RefExpr
	for {
		ref, err := p.refExpr()
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
		if p.peek().Kind != TokComma {
			break
		}
		p.advance()
	}
	if parens {
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	return RealizeStmt{Refs: refs, Pos: pos}, nil
}

func (p *parser) failStmt() (Stmt, error) {
	pos := p.advance().Pos // fail
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	msg, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return FailStmt{Message: msg, Pos: pos}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, errf(p.peek().Pos, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.advance() // }
	return out, nil
}

func (p *parser) paramList() ([]Param, error) {
	var params []Param
	if p.peek().Kind != TokLParen {
		return nil, nil
	}
	p.advance() // (
	for p.peek().Kind != TokRParen {
		v, err := p.expect(TokVariable)
		if err != nil {
			return nil, err
		}
		param := Param{Name: v.Text}
		if p.peek().Kind == TokAssign {
			p.advance()
			def, err := p.expression()
			if err != nil {
				return nil, err
			}
			param.Default = def
		}
		params = append(params, param)
		if p.peek().Kind == TokComma {
			p.advance()
		}
	}
	p.advance() // )
	return params, nil
}

func (p *parser) defineDecl() (Stmt, error) {
	pos := p.advance().Pos // define
	name, err := p.expect(TokName)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return DefineDecl{Name: normalizeType(name.Text), Params: params, Body: body, Pos: pos}, nil
}

func (p *parser) classDecl() (Stmt, error) {
	pos := p.advance().Pos // class
	name, err := p.expect(TokName)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	// Optional 'inherits' is not supported; report it clearly.
	if p.peek().Kind == TokName && p.peek().Text == "inherits" {
		return nil, errf(p.peek().Pos, "class inheritance is not supported")
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return ClassDecl{Name: normalizeType(name.Text), Params: params, Body: body, Pos: pos}, nil
}

func (p *parser) includeStmt() (Stmt, error) {
	pos := p.advance().Pos // include
	var names []string
	for {
		n := p.peek()
		if n.Kind != TokName && n.Kind != TokString {
			return nil, errf(n.Pos, "expected class name after include")
		}
		p.advance()
		names = append(names, normalizeType(n.Text))
		if p.peek().Kind != TokComma {
			break
		}
		p.advance()
	}
	return IncludeStmt{Names: names, Pos: pos}, nil
}

func (p *parser) assignStmt() (Stmt, error) {
	v := p.advance() // variable
	p.advance()      // =
	val, err := p.expression()
	if err != nil {
		return nil, err
	}
	return AssignStmt{Name: v.Text, Value: val, Pos: v.Pos}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.advance().Pos // if / elsif
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.peek().Kind == TokName {
		switch p.peek().Text {
		case "elsif":
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = []Stmt{nested}
		case "else":
			p.advance()
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil
}

func (p *parser) caseStmt() (Stmt, error) {
	pos := p.advance().Pos // case
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var cases []CaseClause
	for p.peek().Kind != TokRBrace {
		var clause CaseClause
		if p.peek().Kind == TokName && p.peek().Text == "default" {
			p.advance()
		} else {
			for {
				m, err := p.expression()
				if err != nil {
					return nil, err
				}
				clause.Matches = append(clause.Matches, m)
				if p.peek().Kind != TokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		clause.Body = body
		cases = append(cases, clause)
	}
	p.advance() // }
	return CaseStmt{Cond: cond, Cases: cases, Pos: pos}, nil
}

func (p *parser) resourceDecl(virtual bool) (Stmt, error) {
	t := p.advance() // type name
	decl := ResourceDecl{Virtual: virtual, Type: normalizeType(t.Text), Pos: t.Pos}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for {
		title, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		attrs, err := p.attrList(TokRBrace, TokSemi)
		if err != nil {
			return nil, err
		}
		decl.Bodies = append(decl.Bodies, ResourceBody{Title: title, Attrs: attrs})
		if p.peek().Kind == TokSemi {
			p.advance()
			if p.peek().Kind == TokRBrace {
				break
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return decl, nil
}

// attrList parses name => value pairs until one of the stop tokens.
func (p *parser) attrList(stops ...TokenKind) ([]Attr, error) {
	var attrs []Attr
	isStop := func(k TokenKind) bool {
		for _, s := range stops {
			if k == s {
				return true
			}
		}
		return false
	}
	for !isStop(p.peek().Kind) {
		name := p.peek()
		if name.Kind != TokName {
			return nil, errf(name.Pos, "expected attribute name, found %s", describe(name))
		}
		p.advance()
		if t := p.peek(); t.Kind == TokPlusArrow {
			return nil, errf(t.Pos, "the +> operator is not supported")
		}
		if _, err := p.expect(TokFatArrow); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attr{Name: name.Text, Value: val, Pos: name.Pos})
		if p.peek().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	return attrs, nil
}

func (p *parser) defaultsDecl() (Stmt, error) {
	t := p.advance() // Type
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	attrs, err := p.attrList(TokRBrace)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return DefaultsDecl{Type: normalizeType(t.Text), Attrs: attrs, Pos: t.Pos}, nil
}

func (p *parser) refExpr() (RefExpr, error) {
	t, err := p.expect(TokTypeRef)
	if err != nil {
		return RefExpr{}, err
	}
	ref := RefExpr{Type: normalizeType(t.Text), Pos: t.Pos}
	if _, err := p.expect(TokLBracket); err != nil {
		return RefExpr{}, err
	}
	for {
		title, err := p.expression()
		if err != nil {
			return RefExpr{}, err
		}
		ref.Titles = append(ref.Titles, title)
		if p.peek().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return RefExpr{}, err
	}
	return ref, nil
}

func (p *parser) collectorStmt() (Stmt, error) {
	t := p.advance() // Type
	p.advance()      // <|
	coll := CollectorStmt{Type: normalizeType(t.Text), Pos: t.Pos}
	if p.peek().Kind != TokCollectorEnd {
		attr, err := p.expect(TokName)
		if err != nil {
			return nil, err
		}
		var neq bool
		switch p.peek().Kind {
		case TokEq:
			neq = false
		case TokNeq:
			neq = true
		default:
			return nil, errf(p.peek().Pos, "expected '==' or '!=' in collector query")
		}
		p.advance()
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		coll.Query = &CollQuery{Attr: attr.Text, Neq: neq, Value: val}
	}
	if _, err := p.expect(TokCollectorEnd); err != nil {
		return nil, err
	}
	if p.peek().Kind == TokLBrace {
		p.advance()
		attrs, err := p.attrList(TokRBrace)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		coll.Overrides = attrs
	}
	return coll, nil
}

// expression parses with precedence: or < and < comparison < unary.
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokName && p.peek().Text == "or" {
		pos := p.advance().Pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpOr, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokName && p.peek().Text == "and" {
		pos := p.advance().Pos
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpAnd, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch t := p.peek(); {
		case t.Kind == TokEq:
			op = OpEq
		case t.Kind == TokNeq:
			op = OpNeq
		case t.Kind == TokLt:
			op = OpLt
		case t.Kind == TokGt:
			op = OpGt
		case t.Kind == TokLe:
			op = OpLe
		case t.Kind == TokGe:
			op = OpGe
		case t.Kind == TokName && t.Text == "in":
			op = OpIn
		default:
			return l, nil
		}
		pos := p.advance().Pos
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.peek().Kind == TokBang {
		pos := p.advance().Pos
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x, Pos: pos}, nil
	}
	return p.postfixExpr()
}

// postfixExpr parses a primary expression optionally followed by
// subscripts ($h['k'], $a[0]) and the selector operator ?.
func (p *parser) postfixExpr() (Expr, error) {
	prim, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	// Subscripting applies to variables and parenthesized values, not to
	// resource references (whose brackets were already consumed).
	if _, isRef := prim.(RefExpr); !isRef {
		for p.peek().Kind == TokLBracket {
			pos := p.advance().Pos // [
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			prim = IndexExpr{X: prim, Index: idx, Pos: pos}
		}
	}
	if p.peek().Kind != TokQuestion {
		return prim, nil
	}
	pos := p.advance().Pos // ?
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	sel := SelectorExpr{Cond: prim, Pos: pos}
	for p.peek().Kind != TokRBrace {
		var c SelCase
		if p.peek().Kind == TokName && p.peek().Text == "default" {
			p.advance()
		} else {
			m, err := p.expression()
			if err != nil {
				return nil, err
			}
			c.Match = m
		}
		if _, err := p.expect(TokFatArrow); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		c.Value = v
		sel.Cases = append(sel.Cases, c)
		if p.peek().Kind == TokComma {
			p.advance()
		}
	}
	p.advance() // }
	return sel, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokString:
		p.advance()
		return StrExpr{Parts: t.Parts, Pos: t.Pos}, nil
	case TokNumber:
		p.advance()
		return NumExpr{Text: t.Text, Pos: t.Pos}, nil
	case TokVariable:
		p.advance()
		return VarExpr{Name: t.Text, Pos: t.Pos}, nil
	case TokLBracket:
		p.advance()
		arr := ArrayExpr{Pos: t.Pos}
		for p.peek().Kind != TokRBracket {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, e)
			if p.peek().Kind == TokComma {
				p.advance()
			}
		}
		p.advance() // ]
		return arr, nil
	case TokLBrace:
		p.advance()
		h := HashExpr{Pos: t.Pos}
		for p.peek().Kind != TokRBrace {
			k, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokFatArrow); err != nil {
				return nil, err
			}
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			h.Pairs = append(h.Pairs, HashPair{Key: k, Value: v})
			if p.peek().Kind == TokComma {
				p.advance()
			}
		}
		p.advance() // }
		return h, nil
	case TokLParen:
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokTypeRef:
		return p.refExpr()
	case TokName:
		switch t.Text {
		case "true":
			p.advance()
			return BoolExpr{V: true, Pos: t.Pos}, nil
		case "false":
			p.advance()
			return BoolExpr{V: false, Pos: t.Pos}, nil
		case "undef":
			p.advance()
			return UndefExpr{Pos: t.Pos}, nil
		case "defined":
			p.advance()
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			ref, err := p.refExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return DefinedExpr{Ref: ref, Pos: t.Pos}, nil
		default:
			// Bare words are string literals.
			p.advance()
			return StrExpr{Parts: []StringPart{{Lit: t.Text}}, Pos: t.Pos}, nil
		}
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}
