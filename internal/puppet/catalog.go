package puppet

import (
	"fmt"
	"sort"
	"strings"
)

// Resource is a fully-evaluated resource instance.
type Resource struct {
	Type    string // normalized lowercase: file, package, user, ...
	Title   string
	Attrs   map[string]Value
	Virtual bool   // declared with @; excluded unless realized
	Stage   string // run stage, default "main"
	// Container is the chain of enclosing class/define instances, innermost
	// last; empty for top-level resources.
	Container []string
	Pos       Pos
}

// Key returns the canonical identity "type[title]".
func (r *Resource) Key() string { return resourceKey(r.Type, r.Title) }

func resourceKey(typ, title string) string {
	return typ + "[" + strings.ToLower(title) + "]"
}

// String renders the resource reference as Puppet would: Type[title].
func (r *Resource) String() string { return titleCase(r.Type) + "[" + r.Title + "]" }

// Attr returns an attribute value, or nil when unset.
func (r *Resource) Attr(name string) Value { return r.Attrs[name] }

// AttrString returns a string-coerced attribute, with ok=false when unset
// or undef.
func (r *Resource) AttrString(name string) (string, bool) {
	v, ok := r.Attrs[name]
	if !ok {
		return "", false
	}
	if _, isUndef := v.(UndefV); isUndef {
		return "", false
	}
	return ValueString(v), true
}

// DepKind distinguishes ordering-only edges from refresh edges. Rehearsal
// treats both as ordering constraints (section 3.1).
type DepKind int

// Dependency edge kinds.
const (
	DepBefore DepKind = iota // before/require/-> edges
	DepNotify                // notify/subscribe/~> edges
)

// Dep is a dependency edge between resource references (possibly referring
// to classes or define instances, which expand to their contents).
type Dep struct {
	From RefV
	To   RefV
	Kind DepKind
	Pos  Pos
}

// Catalog is the result of evaluating a manifest: resources, dependency
// edges and containment information.
type Catalog struct {
	Resources []*Resource
	Deps      []Dep

	index map[string]*Resource
	// members maps a container id (e.g. "class[nginx]" or "myuser[alice]")
	// to the keys of the resources it transitively contains.
	members map[string][]string
}

func newCatalog() *Catalog {
	return &Catalog{
		index:   make(map[string]*Resource),
		members: make(map[string][]string),
	}
}

// Lookup finds a resource by type and title; nil when absent.
func (c *Catalog) Lookup(typ, title string) *Resource {
	return c.index[resourceKey(typ, title)]
}

// Realized returns the non-virtual resources, excluding stage resources
// (which order other resources but are not applied themselves).
func (c *Catalog) Realized() []*Resource {
	var out []*Resource
	for _, r := range c.Resources {
		if !r.Virtual && r.Type != "stage" {
			out = append(out, r)
		}
	}
	return out
}

// Stages returns the declared stage resources.
func (c *Catalog) Stages() []*Resource {
	var out []*Resource
	for _, r := range c.Resources {
		if r.Type == "stage" {
			out = append(out, r)
		}
	}
	return out
}

func (c *Catalog) add(r *Resource) error {
	key := r.Key()
	if prev, ok := c.index[key]; ok {
		return errf(r.Pos, "duplicate declaration of %s (first declared at %s)", r, prev.Pos)
	}
	c.index[key] = r
	c.Resources = append(c.Resources, r)
	for _, container := range r.Container {
		c.members[container] = append(c.members[container], key)
	}
	return nil
}

// IsContainer reports whether the reference names a class or define
// instance rather than a primitive resource.
func (c *Catalog) IsContainer(ref RefV) bool {
	_, ok := c.members[resourceKey(ref.Type, ref.Title)]
	return ok
}

// Expand resolves a reference to concrete resources: a primitive reference
// resolves to itself; a class or define-instance reference expands to every
// resource it contains.
func (c *Catalog) Expand(ref RefV) ([]*Resource, error) {
	key := resourceKey(ref.Type, ref.Title)
	if r, ok := c.index[key]; ok {
		if r.Virtual {
			return nil, fmt.Errorf("reference %s targets an unrealized virtual resource", ValueString(ref))
		}
		return []*Resource{r}, nil
	}
	if keys, ok := c.members[key]; ok {
		out := make([]*Resource, 0, len(keys))
		for _, k := range keys {
			r := c.index[k]
			if r.Virtual || r.Type == "stage" {
				continue
			}
			out = append(out, r)
		}
		return out, nil
	}
	return nil, fmt.Errorf("reference %s does not match any declared resource", ValueString(ref))
}

// Summary renders a sorted one-line-per-resource overview, for debugging
// and tests.
func (c *Catalog) Summary() string {
	lines := make([]string, 0, len(c.Resources))
	for _, r := range c.Resources {
		attrs := make([]string, 0, len(r.Attrs))
		for k := range r.Attrs {
			attrs = append(attrs, k)
		}
		sort.Strings(attrs)
		var b strings.Builder
		if r.Virtual {
			b.WriteString("@")
		}
		b.WriteString(r.String())
		for _, a := range attrs {
			fmt.Fprintf(&b, " %s=%s", a, ValueString(r.Attrs[a]))
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
