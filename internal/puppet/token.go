// Package puppet implements the frontend of Rehearsal: a lexer, parser and
// evaluator for the subset of the Puppet DSL described in section 2
// (figure 1) extended with the features the paper's compiler handles in
// section 3.1 — classes, defined types, conditionals, selectors, resource
// defaults, virtual resources and collectors, stages, chaining arrows and
// dependency metaparameters. Evaluation produces a catalog of primitive
// resources and dependency edges, from which package resources builds the
// resource graph of figure 4.
package puppet

import "fmt"

// TokenKind enumerates lexical token types.
type TokenKind int

// Token kinds.
const (
	TokEOF           TokenKind = iota
	TokName                    // bare word: package, present, apache2
	TokTypeRef                 // capitalized name: Package, File (possibly A::B)
	TokVariable                // $x
	TokString                  // quoted string (parts carry interpolation)
	TokNumber                  // 42, 3.14
	TokLBrace                  // {
	TokRBrace                  // }
	TokLBracket                // [
	TokRBracket                // ]
	TokLParen                  // (
	TokRParen                  // )
	TokColon                   // :
	TokSemi                    // ;
	TokComma                   // ,
	TokFatArrow                // =>
	TokPlusArrow               // +>
	TokArrow                   // ->
	TokTildeArrow              // ~>
	TokEq                      // ==
	TokNeq                     // !=
	TokLt                      // <
	TokGt                      // >
	TokLe                      // <=
	TokGe                      // >=
	TokAssign                  // =
	TokBang                    // !
	TokQuestion                // ?
	TokAt                      // @
	TokCollectorOpen           // <|
	TokCollectorEnd            // |>
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokName:
		return "name"
	case TokTypeRef:
		return "type reference"
	case TokVariable:
		return "variable"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokColon:
		return "':'"
	case TokSemi:
		return "';'"
	case TokComma:
		return "','"
	case TokFatArrow:
		return "'=>'"
	case TokPlusArrow:
		return "'+>'"
	case TokArrow:
		return "'->'"
	case TokTildeArrow:
		return "'~>'"
	case TokEq:
		return "'=='"
	case TokNeq:
		return "'!='"
	case TokLt:
		return "'<'"
	case TokGt:
		return "'>'"
	case TokLe:
		return "'<='"
	case TokGe:
		return "'>='"
	case TokAssign:
		return "'='"
	case TokBang:
		return "'!'"
	case TokQuestion:
		return "'?'"
	case TokAt:
		return "'@'"
	case TokCollectorOpen:
		return "'<|'"
	case TokCollectorEnd:
		return "'|>'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// StringPart is a piece of a double-quoted string: either literal text or
// an interpolated variable.
type StringPart struct {
	Lit string // literal text, when Var is empty
	Var string // variable name (without $), when non-empty
}

// Token is a lexical token.
type Token struct {
	Kind  TokenKind
	Text  string       // raw text (name, variable name without $, number)
	Parts []StringPart // for TokString
	Pos   Pos
}

// Error is a frontend error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
